// Package wgtt's root benchmark harness: one testing.B benchmark per table
// and figure in the paper's evaluation. Each benchmark runs the experiment
// (trimmed via eval.QuickOptions so a -bench sweep completes in minutes; run
// cmd/wgtt-experiments for the full axes) and reports the headline metric
// with b.ReportMetric, so `go test -bench=. -benchmem` regenerates every
// artifact and prints the numbers the paper's tables quote.
package wgtt_test

import (
	"testing"

	"wgtt/internal/core"
	"wgtt/internal/eval"
	"wgtt/internal/stats"
)

func opts() eval.Options { return eval.QuickOptions() }

func BenchmarkFig02BestAPChurn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := eval.Fig02BestAPChurn(opts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.FlipsPerSecond, "bestAP-flips/s")
	}
}

func BenchmarkFig04RoamingFailure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := eval.Fig04RoamingFailure(opts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.CapacityLossMbps[len(r.CapacityLossMbps)-1], "capacity-loss-Mb/s@20mph")
	}
}

func BenchmarkFig10Heatmap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := eval.Fig10Heatmap(opts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(r.XsM)), "positions")
	}
}

func BenchmarkTable1SwitchTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := eval.Table1SwitchTime(opts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(stats.Mean(r.MeanMS), "switch-ms")
	}
}

func BenchmarkFig13ThroughputVsSpeed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := eval.Fig13ThroughputVsSpeed(opts())
		if err != nil {
			b.Fatal(err)
		}
		last := len(r.SpeedsMPH) - 1
		b.ReportMetric(r.TCPWGTT[last], "tcp-wgtt-Mb/s")
		b.ReportMetric(r.TCPBase[last], "tcp-base-Mb/s")
	}
}

func BenchmarkFig14TCPTimeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := eval.Fig14TCPTimeline(core.ModeWGTT, opts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Switches), "switches")
	}
}

func BenchmarkFig15UDPTimeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := eval.Fig15UDPTimeline(core.ModeWGTT, opts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(stats.Mean(r.Mbps), "mean-Mb/s")
	}
}

func BenchmarkFig16BitrateCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := eval.Fig16BitrateCDF(opts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[0].P90, "wgtt-tcp-p90-Mb/s")
	}
}

func BenchmarkTable2SwitchingAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := eval.Table2SwitchingAccuracy(opts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[0].WGTT, "wgtt-accuracy-%")
		b.ReportMetric(r.Rows[0].Baseline, "base-accuracy-%")
	}
}

func BenchmarkFig17MultiClient(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := eval.Fig17MultiClient(opts())
		if err != nil {
			b.Fatal(err)
		}
		rows := r.Rows["UDP-WGTT"]
		b.ReportMetric(rows[len(rows)-1], "udp-wgtt-per-client-Mb/s")
	}
}

func BenchmarkFig18UplinkLoss(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := eval.Fig18UplinkLoss(opts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(stats.Mean(r.MeanWGTT), "wgtt-loss")
		b.ReportMetric(stats.Mean(r.MeanBase), "base-loss")
	}
}

func BenchmarkFig20DrivingPatterns(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := eval.Fig20DrivingPatterns(opts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(stats.Mean(r.Rows["UDP-WGTT"]), "udp-wgtt-Mb/s")
	}
}

func BenchmarkFig21WindowSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := eval.Fig21WindowSize(opts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.BestWindowMS, "best-window-ms")
	}
}

func BenchmarkTable3AckCollision(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := eval.Table3AckCollision(opts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.CollisionPct[0], "collision-%")
	}
}

func BenchmarkFig22Hysteresis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := eval.Fig22Hysteresis(opts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Mbps[0], "tcp-Mb/s@40ms")
	}
}

func BenchmarkFig23APDensity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := eval.Fig23APDensity(opts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(stats.Mean(r.Rows["dense-WGTT"]), "dense-wgtt-Mb/s")
		b.ReportMetric(stats.Mean(r.Rows["sparse-WGTT"]), "sparse-wgtt-Mb/s")
	}
}

func BenchmarkTable4VideoRebuffer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := eval.Table4VideoRebuffer(opts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(stats.Mean(r.WGTT), "wgtt-rebuffer")
		b.ReportMetric(stats.Mean(r.Baseline), "base-rebuffer")
	}
}

func BenchmarkFig24ConferenceFPS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := eval.Fig24ConferenceFPS(opts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[0].P85, "wgtt-p85-fps")
	}
}

func BenchmarkTable5PageLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := eval.Table5PageLoad(opts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.WGTT[0], "wgtt-load-s")
	}
}

func BenchmarkAblationBAForwarding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := eval.AblationBAForwarding(opts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.OnValue, "on-Mb/s")
		b.ReportMetric(r.OffValue, "off-Mb/s")
	}
}

func BenchmarkAblationUplinkDiversity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := eval.AblationUplinkDiversity(opts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.OnValue, "on-loss")
		b.ReportMetric(r.OffValue, "off-loss")
	}
}

func BenchmarkAblationFanout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := eval.AblationFanout(opts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.OnValue, "on-Mb/s")
		b.ReportMetric(r.OffValue, "off-Mb/s")
	}
}

func BenchmarkAblationSelectionMetric(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := eval.AblationSelectionMetric(opts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.OnValue, "median-loss-Mb/s")
		b.ReportMetric(r.OffValue, "mean-loss-Mb/s")
	}
}

func BenchmarkExtSelector(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := eval.ExtSelector(opts())
		if err != nil {
			b.Fatal(err)
		}
		// Headline deltas of DESIGN.md §15: how fast each policy leaves a
		// collapsed serving link, and the pile-up GlobalAssign's budget caps.
		b.ReportMetric(r.CollapseLagMS[0], "median-collapse-lag-ms")
		b.ReportMetric(r.CollapseLagMS[1], "predictive-collapse-lag-ms")
		b.ReportMetric(r.MeanAPLoad[0], "median-mean-AP-load")
		b.ReportMetric(r.MeanAPLoad[2], "global-assign-mean-AP-load")
	}
}
