module wgtt

go 1.22
