// Handover anatomy: a millisecond-level view of WGTT doing its job. One
// client drives past two cells while a UDP stream flows; we print every
// switching-protocol event (stop → start → ack), the per-AP windowed
// median ESNR around each switch, and the queue state that the start(c, k)
// index hands from the old AP to the new one.
//
//	go run ./examples/handover-anatomy
package main

import (
	"fmt"
	"log"

	"wgtt/internal/controller"
	"wgtt/internal/core"
	"wgtt/internal/sim"
)

func main() {
	s := core.DriveScenario(core.ModeWGTT, 15, 3)
	s.Duration = 6 * sim.Second // the first two cells are plenty
	n, err := core.Build(s)
	if err != nil {
		log.Fatal(err)
	}
	clientMAC := n.Clients[0].Config().MAC

	n.Ctl.OnSwitch = func(rec controller.SwitchRecord) {
		fmt.Printf("t=%8.3fs  SWITCH AP%d → AP%d  (stop→ack %v, %d stop attempt(s))\n",
			rec.At.Seconds(), rec.From+1, rec.To+1, rec.Duration, rec.Attempts)
		fmt.Printf("             medians:")
		for apID := range n.APs {
			if med, ok := n.Ctl.MedianESNR(clientMAC, apID); ok {
				fmt.Printf("  AP%d=%.1fdB", apID+1, med)
			}
		}
		fmt.Println()
		fmt.Printf("             queues:  old AP backlog %d pkts (drains its NIC queue), new AP resumes mid-ring\n",
			n.APs[rec.From].QueueDepth(clientMAC))
	}

	flow := n.AddDownlinkUDP(0, 30, 1400)
	flow.Sender.Start()

	n.Every(sim.Second, func(at sim.Time) {
		best, esnr := n.BestESNRAP(0, at)
		fmt.Printf("t=%8.3fs  position x=%.1fm  serving=AP%d  oracle=AP%d (%.1f dB)  rx=%d pkts\n",
			at.Seconds(), n.Clients[0].Station().Endpoint.Position(at).X,
			n.ServingAP(0)+1, best+1, esnr, flow.Receiver.Received)
	})

	n.Run()

	fmt.Printf("\n%d switches in %v; controller stats: %d CSI reports, %d stop retransmissions\n",
		len(n.Ctl.History), s.Duration, n.Ctl.Stats.CSIReports, n.Ctl.Stats.StopRetransmits)
}
