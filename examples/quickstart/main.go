// Quickstart: build the eight-AP WGTT testbed, drive one client past it at
// 15 mph with a bulk TCP download, and print what happened.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"wgtt/internal/core"
	"wgtt/internal/sim"
)

func main() {
	// A Scenario describes everything: the system under test, the road,
	// the client's drive, and the radio environment.
	scenario := core.DriveScenario(core.ModeWGTT, 15 /* mph */, 42 /* seed */)

	// Build assembles the radio channel, the 802.11 MAC, the eight APs,
	// the controller, and the client into a runnable network.
	n, err := core.Build(scenario)
	if err != nil {
		log.Fatal(err)
	}

	// Attach a bulk TCP download from the content server to the client.
	flow := n.AddDownlinkTCP(0, 0, nil)
	flow.Sender.Start()

	// Watch the controller's millisecond-level switching while driving.
	n.Every(sim.Second, func(at sim.Time) {
		fmt.Printf("t=%4.1fs  serving AP%d  delivered %.1f MB\n",
			at.Seconds(), n.ServingAP(0)+1,
			float64(flow.Receiver.DeliveredBytes)/1e6)
	})

	n.Run()

	goodput := float64(flow.Receiver.DeliveredBytes) * 8 / 1e6 / scenario.Duration.Seconds()
	fmt.Printf("\ndrive complete: %.2f Mb/s TCP goodput over %v\n", goodput, scenario.Duration)
	fmt.Printf("switches: %d (the controller moved the client between APs %0.1f times/s)\n",
		len(n.Ctl.History), float64(len(n.Ctl.History))/scenario.Duration.Seconds())
	uniq, dup := n.Ctl.ClientUplinkCounts(n.Clients[0].Config().MAC)
	fmt.Printf("uplink de-dup: %d unique, %d duplicates suppressed\n", uniq, dup)
}
