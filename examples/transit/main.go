// Transit: the commute workloads from the paper's introduction — web
// browsing, HD video streaming, and a video call — each run over both WGTT
// and the Enhanced 802.11r baseline at commuting speed.
//
//	go run ./examples/transit
package main

import (
	"fmt"
	"log"
	"math"

	"wgtt/internal/apps"
	"wgtt/internal/core"
	"wgtt/internal/sim"
	"wgtt/internal/transport"
)

const speedMPH = 15

func main() {
	for _, mode := range []core.Mode{core.ModeWGTT, core.ModeBaseline} {
		fmt.Printf("=== %v at %d mph ===\n", mode, speedMPH)
		web(mode)
		video(mode)
		call(mode)
		fmt.Println()
	}
}

// web loads the paper's 2.1 MB cached page during the drive.
func web(mode core.Mode) {
	s := core.DriveScenario(mode, speedMPH, 7)
	n, err := core.Build(s)
	if err != nil {
		log.Fatal(err)
	}
	cfg := apps.DefaultWebConfig()
	var done sim.Time
	completed := false
	flow := n.AddDownlinkTCP(0, cfg.Segments(), func(at sim.Time) { done, completed = at, true })
	start := sim.Second
	n.Eng.At(start, flow.Sender.Start)
	n.Run()
	lt := apps.PageLoadSeconds(start, done, completed)
	if math.IsInf(lt, 1) {
		fmt.Printf("  web:   2.1 MB page NEVER finished during the drive\n")
	} else {
		fmt.Printf("  web:   2.1 MB page loaded in %.2f s\n", lt)
	}
}

// video streams a 2.5 Mb/s HD video with a 1.5 s pre-buffer.
func video(mode core.Mode) {
	s := core.DriveScenario(mode, speedMPH, 8)
	n, err := core.Build(s)
	if err != nil {
		log.Fatal(err)
	}
	flow := n.AddDownlinkTCP(0, 0, nil)
	flow.Receiver.Record = true
	flow.Sender.Start()
	n.Run()
	res := apps.PlayVideo(apps.DefaultVideoConfig(), flow.Receiver.Progress, transport.DefaultMSS, s.Duration)
	fmt.Printf("  video: rebuffer ratio %.2f (%d stalls, started=%v)\n",
		res.RebufferRatio, res.Stalls, res.Started)
}

// call runs a bidirectional Hangouts-like video conference.
func call(mode core.Mode) {
	s := core.DriveScenario(mode, speedMPH, 9)
	n, err := core.Build(s)
	if err != nil {
		log.Fatal(err)
	}
	cfg := apps.HangoutsLike()
	down := n.AddDownlinkUDP(0, cfg.RateMbps(), cfg.PacketBytes)
	down.Receiver.Record = true
	down.Sender.Start()
	up := n.AddUplinkUDP(0, cfg.RateMbps(), cfg.PacketBytes)
	up.Sender.Start()
	n.Run()
	res := apps.AnalyzeConference(cfg, down.Receiver.Arrivals, s.Duration)
	cdf := res.CDF()
	fmt.Printf("  call:  delivered fps p50=%.0f p85=%.0f (nominal %d)\n",
		cdf.Quantile(0.5), cdf.Quantile(0.85), cfg.FPS)
}
