// Multiclient: the three two-car driving patterns of the paper's Fig. 19 —
// following, parallel, opposing — each with a UDP download per car, on both
// systems, showing how WGTT's uplink diversity and per-client switching
// hold up under inter-vehicle contention and scattering.
//
//	go run ./examples/multiclient
package main

import (
	"fmt"
	"log"

	"wgtt/internal/core"
	"wgtt/internal/mobility"
)

func main() {
	patterns := []mobility.Pattern{mobility.Following, mobility.Parallel, mobility.Opposing}
	fmt.Printf("%-10s  %-18s  %-18s\n", "pattern", "WGTT (per client)", "Enh-802.11r (per client)")
	for _, pat := range patterns {
		var cells [2]string
		for mi, mode := range []core.Mode{core.ModeWGTT, core.ModeBaseline} {
			s := core.MultiClientScenario(mode, pat, 2, 15, 11)
			n, err := core.Build(s)
			if err != nil {
				log.Fatal(err)
			}
			flows := []*core.DownUDP{
				n.AddDownlinkUDP(0, 15, 1400),
				n.AddDownlinkUDP(1, 15, 1400),
			}
			for _, f := range flows {
				f.Sender.Start()
			}
			n.Run()
			var total float64
			for _, f := range flows {
				total += float64(f.Receiver.Bytes) * 8 / 1e6 / s.Duration.Seconds()
			}
			cells[mi] = fmt.Sprintf("%.2f Mb/s", total/2)
		}
		fmt.Printf("%-10s  %-18s  %-18s\n", pat, cells[0], cells[1])
	}
}
