// Command wgtt-live runs the WGTT protocol cores as separate OS processes
// over a real UDP backhaul (DESIGN.md §12): one controller and N APs on
// loopback, each with its own wall-clock run loop and socket, driving the
// scripted crossing-ramp CSI scenario through a complete §3.1.2
// stop→start→ack switch.
//
// Usage:
//
//	wgtt-live                   # orchestrate: spawn controller + 2 APs, wait for the switch
//	wgtt-live -aps 3 -timeout 5s
//	wgtt-live -federation       # two controller processes hand the client across domains
//	wgtt-live -fanout -aps 32   # measure downlink fan-out pkts/s, batched vs per-copy
//
// With -federation the orchestrator spawns two controller processes — one
// per single-AP domain (DESIGN.md §13) — plus the two APs; the run succeeds
// when domain 1 adopts the client from domain 0 over the wire and completes
// the stop→start→ack on its own domain.
//
// The orchestrator re-execs itself for the node roles (-role controller,
// -role fedcontroller, -role ap); those are plumbing, not user entry points.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"strings"
	"time"

	"wgtt/internal/live"
	"wgtt/internal/packet"
	"wgtt/internal/selector"
	"wgtt/internal/sim"
)

func main() {
	var (
		role       = flag.String("role", "run", "run | controller | fedcontroller | ap (node roles are spawned internally)")
		apID       = flag.Int("id", 0, "AP id (role=ap)")
		domain     = flag.Int("domain", 0, "controller domain id (role=fedcontroller)")
		listen     = flag.String("listen", "", "UDP address to bind (node roles)")
		table      = flag.String("table", "", "comma-separated endpoints: controller,ap0,ap1,... (node roles)")
		aps        = flag.Int("aps", 2, "number of AP processes (role=run), or fan-out width (-fanout)")
		federation = flag.Bool("federation", false, "run the two-controller inter-domain handoff scenario (role=run)")
		fanout     = flag.Bool("fanout", false, "measure downlink fan-out pkts/s over loopback instead of orchestrating")
		packets    = flag.Int("packets", 50000, "downlink messages to push per fan-out measurement (-fanout)")
		timeout    = flag.Duration("timeout", 10*time.Second, "give up if no switch completes in this long")
		selectorF  = flag.String("selector", "",
			"AP-selection policy for the controller process (DESIGN.md §15): windowed-median | predictive | global-assign")
	)
	flag.Parse()

	pol, err := selector.ParsePolicy(*selectorF)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wgtt-live:", err)
		os.Exit(1)
	}
	switch *role {
	case "run":
		if *fanout {
			err = measureFanout(*aps, *packets)
		} else if *federation {
			err = orchestrateFed(*timeout)
		} else {
			err = orchestrate(*aps, *timeout, pol)
		}
	case "controller":
		err = runController(*listen, strings.Split(*table, ","), *timeout, pol)
	case "fedcontroller":
		err = runFedController(*domain, *listen, strings.Split(*table, ","), *timeout)
	case "ap":
		err = runAP(*apID, *listen, strings.Split(*table, ","), *federation, *timeout)
	default:
		err = fmt.Errorf("unknown role %q", *role)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "wgtt-live:", err)
		os.Exit(1)
	}
}

// freeAddrs reserves n loopback UDP addresses by binding ephemeral ports,
// then releasing them for the node processes to re-bind. The window between
// release and re-bind is a benign race on loopback smoke runs.
func freeAddrs(n int) ([]string, error) {
	addrs := make([]string, n)
	conns := make([]*net.UDPConn, n)
	for i := 0; i < n; i++ {
		c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			return nil, err
		}
		conns[i] = c
		addrs[i] = c.LocalAddr().String()
	}
	for _, c := range conns {
		c.Close()
	}
	return addrs, nil
}

// orchestrate spawns one controller and numAPs AP processes over loopback
// and waits for the controller to report a completed switch.
func orchestrate(numAPs int, timeout time.Duration, pol selector.Policy) error {
	if numAPs < 2 {
		return fmt.Errorf("need at least 2 APs for a switch, got %d", numAPs)
	}
	if len(live.DefaultScripts()) < numAPs {
		return fmt.Errorf("the scripted scenario defines %d CSI ramps, cannot drive %d APs",
			len(live.DefaultScripts()), numAPs)
	}
	self, err := os.Executable()
	if err != nil {
		return err
	}
	addrs, err := freeAddrs(numAPs + 1)
	if err != nil {
		return err
	}
	tableArg := strings.Join(addrs, ",")

	spawn := func(args ...string) (*exec.Cmd, error) {
		cmd := exec.Command(self, args...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		return cmd, cmd.Start()
	}

	apProcs := make([]*exec.Cmd, 0, numAPs)
	defer func() {
		for _, p := range apProcs {
			_ = p.Process.Kill()
			_ = p.Wait()
		}
	}()
	for i := 0; i < numAPs; i++ {
		p, err := spawn("-role", "ap", "-id", fmt.Sprint(i),
			"-listen", addrs[i+1], "-table", tableArg, "-timeout", timeout.String())
		if err != nil {
			return fmt.Errorf("spawning AP %d: %w", i, err)
		}
		apProcs = append(apProcs, p)
	}
	ctl, err := spawn("-role", "controller", "-selector", string(pol),
		"-listen", addrs[0], "-table", tableArg, "-timeout", timeout.String())
	if err != nil {
		return fmt.Errorf("spawning controller: %w", err)
	}
	if err := ctl.Wait(); err != nil {
		return fmt.Errorf("controller: %w", err)
	}
	fmt.Printf("wgtt-live: OK — %d processes over UDP loopback\n", numAPs+1)
	return nil
}

// orchestrateFed spawns the federated topology — two controller processes
// (one per single-AP domain) plus two APs — and waits for the adopting
// domain to report a completed inter-controller handoff. Only stable facts
// reach stdout, so back-to-back runs are byte-identical (the smoke check
// compares them).
func orchestrateFed(timeout time.Duration) error {
	self, err := os.Executable()
	if err != nil {
		return err
	}
	// Endpoint layout (live.FedTable): controller0, controller1, ap0, ap1.
	addrs, err := freeAddrs(live.FedDomains + 2)
	if err != nil {
		return err
	}
	tableArg := strings.Join(addrs, ",")

	spawn := func(args ...string) (*exec.Cmd, error) {
		cmd := exec.Command(self, args...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		return cmd, cmd.Start()
	}

	var procs []*exec.Cmd
	defer func() {
		for _, p := range procs {
			_ = p.Process.Kill()
			_ = p.Wait()
		}
	}()
	for i := 0; i < 2; i++ {
		p, err := spawn("-role", "ap", "-id", fmt.Sprint(i), "-federation",
			"-listen", addrs[live.FedDomains+i], "-table", tableArg, "-timeout", timeout.String())
		if err != nil {
			return fmt.Errorf("spawning AP %d: %w", i, err)
		}
		procs = append(procs, p)
	}
	ctl0, err := spawn("-role", "fedcontroller", "-domain", "0",
		"-listen", addrs[0], "-table", tableArg, "-timeout", timeout.String())
	if err != nil {
		return fmt.Errorf("spawning controller 0: %w", err)
	}
	procs = append(procs, ctl0)
	ctl1, err := spawn("-role", "fedcontroller", "-domain", "1",
		"-listen", addrs[1], "-table", tableArg, "-timeout", timeout.String())
	if err != nil {
		return fmt.Errorf("spawning controller 1: %w", err)
	}
	if err := ctl1.Wait(); err != nil {
		return fmt.Errorf("controller 1: %w", err)
	}
	fmt.Printf("wgtt-live: federation OK — %d processes over UDP loopback\n", live.FedDomains+2)
	return nil
}

// measureFanout runs the in-process fan-out load generator (DESIGN.md §14)
// on both send paths and prints the sustained copy rates plus the batching
// speedup. Rates are hardware-dependent, so this mode stays out of the
// byte-compared smoke paths.
func measureFanout(numAPs, packets int) error {
	batched, err := live.MeasureFanout(numAPs, packets, true)
	if err != nil {
		return err
	}
	perCopy, err := live.MeasureFanout(numAPs, packets, false)
	if err != nil {
		return err
	}
	fmt.Printf("wgtt-live: fan-out %d APs x %d packets over UDP loopback\n", numAPs, packets)
	fmt.Printf("  batched:  %12.0f pkts/s  (%d datagrams for %d copies)\n",
		batched.PktsPerSec, batched.Stats.Sent, batched.Copies)
	fmt.Printf("  per-copy: %12.0f pkts/s  (%d datagrams for %d copies)\n",
		perCopy.PktsPerSec, perCopy.Stats.Sent, perCopy.Copies)
	if perCopy.PktsPerSec > 0 {
		fmt.Printf("  speedup:  %.1fx\n", batched.PktsPerSec/perCopy.PktsPerSec)
	}
	return nil
}

// bindAndTable is the node-role common setup: bind the assigned address and
// strip self from a full endpoint table.
func bindAndTable(listen string, full map[packet.IPv4Addr]string, self packet.IPv4Addr) (*net.UDPConn, map[packet.IPv4Addr]string, error) {
	ua, err := net.ResolveUDPAddr("udp", listen)
	if err != nil {
		return nil, nil, err
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, nil, err
	}
	delete(full, self)
	return conn, full, nil
}

func runController(listen string, endpoints []string, timeout time.Duration, pol selector.Policy) error {
	conn, table, err := bindAndTable(listen, live.Table(endpoints), packet.ControllerIP)
	if err != nil {
		return err
	}
	numAPs := len(endpoints) - 1
	rec, err := live.RunController(conn, table, numAPs, sim.Time(timeout), pol)
	if err != nil {
		return err
	}
	fmt.Printf("wgtt-live: switch complete client=%v ap%d->ap%d duration=%.1fms attempts=%d\n",
		rec.Client, rec.From+1, rec.To+1, float64(rec.Duration)/float64(sim.Millisecond), rec.Attempts)
	return nil
}

func runFedController(domain int, listen string, endpoints []string, timeout time.Duration) error {
	conn, table, err := bindAndTable(listen, live.FedTable(endpoints), packet.DomainControllerIP(domain))
	if err != nil {
		return err
	}
	rec, got, err := live.RunFedController(domain, conn, table, sim.Time(timeout))
	if err != nil {
		return err
	}
	if got {
		// Stable facts only: the federation smoke compares two runs' stdout
		// byte for byte, so no durations or attempt counts here.
		fmt.Printf("wgtt-live: federation handoff complete client=%v domain%d->domain%d ap%d->ap%d forced=%v\n",
			rec.Client, rec.From, rec.To, rec.FromAP, rec.ToAP, rec.Forced)
	}
	return nil
}

func runAP(id int, listen string, endpoints []string, fed bool, timeout time.Duration) error {
	full := live.Table(endpoints)
	ctlAddr := packet.ControllerIP
	if fed {
		// Federated topology: AP i belongs to domain i and reports to its
		// own domain controller (live.FedCity).
		full = live.FedTable(endpoints)
		ctlAddr = packet.DomainControllerIP(id)
	}
	conn, table, err := bindAndTable(listen, full, packet.APIP(id))
	if err != nil {
		return err
	}
	scripts := live.DefaultScripts()
	if id >= len(scripts) {
		return fmt.Errorf("no CSI script for AP %d", id)
	}
	// APs outlive the switch by running to the full timeout; the
	// orchestrator kills them once the controller reports success.
	_, err = live.RunAP(id, conn, table, ctlAddr, scripts[id], id == 0, sim.Time(timeout))
	return err
}
