// Command wgtt-live runs the WGTT protocol cores as separate OS processes
// over a real UDP backhaul (DESIGN.md §12): one controller and N APs on
// loopback, each with its own wall-clock run loop and socket, driving the
// scripted crossing-ramp CSI scenario through a complete §3.1.2
// stop→start→ack switch.
//
// Usage:
//
//	wgtt-live                   # orchestrate: spawn controller + 2 APs, wait for the switch
//	wgtt-live -aps 3 -timeout 5s
//
// The orchestrator re-execs itself for the node roles (-role controller,
// -role ap); those are plumbing, not user entry points.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"strings"
	"time"

	"wgtt/internal/live"
	"wgtt/internal/packet"
	"wgtt/internal/sim"
)

func main() {
	var (
		role    = flag.String("role", "run", "run | controller | ap (node roles are spawned internally)")
		apID    = flag.Int("id", 0, "AP id (role=ap)")
		listen  = flag.String("listen", "", "UDP address to bind (node roles)")
		table   = flag.String("table", "", "comma-separated endpoints: controller,ap0,ap1,... (node roles)")
		aps     = flag.Int("aps", 2, "number of AP processes (role=run)")
		timeout = flag.Duration("timeout", 10*time.Second, "give up if no switch completes in this long")
	)
	flag.Parse()

	var err error
	switch *role {
	case "run":
		err = orchestrate(*aps, *timeout)
	case "controller":
		err = runController(*listen, strings.Split(*table, ","), *timeout)
	case "ap":
		err = runAP(*apID, *listen, strings.Split(*table, ","), *timeout)
	default:
		err = fmt.Errorf("unknown role %q", *role)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "wgtt-live:", err)
		os.Exit(1)
	}
}

// freeAddrs reserves n loopback UDP addresses by binding ephemeral ports,
// then releasing them for the node processes to re-bind. The window between
// release and re-bind is a benign race on loopback smoke runs.
func freeAddrs(n int) ([]string, error) {
	addrs := make([]string, n)
	conns := make([]*net.UDPConn, n)
	for i := 0; i < n; i++ {
		c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			return nil, err
		}
		conns[i] = c
		addrs[i] = c.LocalAddr().String()
	}
	for _, c := range conns {
		c.Close()
	}
	return addrs, nil
}

// orchestrate spawns one controller and numAPs AP processes over loopback
// and waits for the controller to report a completed switch.
func orchestrate(numAPs int, timeout time.Duration) error {
	if numAPs < 2 {
		return fmt.Errorf("need at least 2 APs for a switch, got %d", numAPs)
	}
	if len(live.DefaultScripts()) < numAPs {
		return fmt.Errorf("the scripted scenario defines %d CSI ramps, cannot drive %d APs",
			len(live.DefaultScripts()), numAPs)
	}
	self, err := os.Executable()
	if err != nil {
		return err
	}
	addrs, err := freeAddrs(numAPs + 1)
	if err != nil {
		return err
	}
	tableArg := strings.Join(addrs, ",")

	spawn := func(args ...string) (*exec.Cmd, error) {
		cmd := exec.Command(self, args...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		return cmd, cmd.Start()
	}

	apProcs := make([]*exec.Cmd, 0, numAPs)
	defer func() {
		for _, p := range apProcs {
			_ = p.Process.Kill()
			_ = p.Wait()
		}
	}()
	for i := 0; i < numAPs; i++ {
		p, err := spawn("-role", "ap", "-id", fmt.Sprint(i),
			"-listen", addrs[i+1], "-table", tableArg, "-timeout", timeout.String())
		if err != nil {
			return fmt.Errorf("spawning AP %d: %w", i, err)
		}
		apProcs = append(apProcs, p)
	}
	ctl, err := spawn("-role", "controller",
		"-listen", addrs[0], "-table", tableArg, "-timeout", timeout.String())
	if err != nil {
		return fmt.Errorf("spawning controller: %w", err)
	}
	if err := ctl.Wait(); err != nil {
		return fmt.Errorf("controller: %w", err)
	}
	fmt.Printf("wgtt-live: OK — %d processes over UDP loopback\n", numAPs+1)
	return nil
}

// bindAndTable is the node-role common setup: bind the assigned address and
// build the peer table (everyone but self).
func bindAndTable(listen string, endpoints []string, self packet.IPv4Addr) (*net.UDPConn, map[packet.IPv4Addr]string, error) {
	ua, err := net.ResolveUDPAddr("udp", listen)
	if err != nil {
		return nil, nil, err
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, nil, err
	}
	table := live.Table(endpoints)
	delete(table, self)
	return conn, table, nil
}

func runController(listen string, endpoints []string, timeout time.Duration) error {
	conn, table, err := bindAndTable(listen, endpoints, packet.ControllerIP)
	if err != nil {
		return err
	}
	numAPs := len(endpoints) - 1
	rec, err := live.RunController(conn, table, numAPs, sim.Time(timeout))
	if err != nil {
		return err
	}
	fmt.Printf("wgtt-live: switch complete client=%v ap%d->ap%d duration=%.1fms attempts=%d\n",
		rec.Client, rec.From+1, rec.To+1, float64(rec.Duration)/float64(sim.Millisecond), rec.Attempts)
	return nil
}

func runAP(id int, listen string, endpoints []string, timeout time.Duration) error {
	conn, table, err := bindAndTable(listen, endpoints, packet.APIP(id))
	if err != nil {
		return err
	}
	scripts := live.DefaultScripts()
	if id >= len(scripts) {
		return fmt.Errorf("no CSI script for AP %d", id)
	}
	// APs outlive the switch by running to the full timeout; the
	// orchestrator kills them once the controller reports success.
	_, err = live.RunAP(id, conn, table, scripts[id], id == 0, sim.Time(timeout))
	return err
}
