// Command wgtt-benchjson converts `go test -bench` text output into a
// machine-readable JSON report, so `make bench` leaves a perf trajectory
// (BENCH_results.json) that future changes can be diffed against.
//
// It reads benchmark output on stdin, echoes every line to stderr so
// progress stays visible inside a pipe, and writes the JSON report to the
// -o path (stdout by default). Benchmark lines follow the standard format:
//
//	BenchmarkName-8   1234   987.6 ns/op   12 B/op   1 allocs/op   3.4 extra-metric
//
// Every value/unit pair, including b.ReportMetric extras, lands in the
// benchmark's metrics map keyed by unit.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark name without the -GOMAXPROCS suffix.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS the benchmark ran at (1 if unsuffixed).
	Procs int `json:"procs"`
	// Iterations is b.N.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value for every reported pair (ns/op, B/op,
	// allocs/op, and any b.ReportMetric custom units).
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the full JSON document.
type Report struct {
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	Pkg    string `json:"pkg,omitempty"`
	// Failed records whether the run printed FAIL anywhere.
	Failed     bool        `json:"failed"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output path for the JSON report (default stdout)")
	flag.Parse()

	rep := Report{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(os.Stderr, line)
		parseLine(&rep, line)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "wgtt-benchjson: read: %v\n", err)
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "wgtt-benchjson: encode: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "wgtt-benchjson: write: %v\n", err)
		os.Exit(1)
	}
	if rep.Failed {
		os.Exit(1)
	}
}

func parseLine(rep *Report, line string) {
	switch {
	case strings.HasPrefix(line, "goos: "):
		rep.Goos = strings.TrimPrefix(line, "goos: ")
		return
	case strings.HasPrefix(line, "goarch: "):
		rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		return
	case strings.HasPrefix(line, "cpu: "):
		rep.CPU = strings.TrimPrefix(line, "cpu: ")
		return
	case strings.HasPrefix(line, "pkg: "):
		rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		return
	case strings.HasPrefix(line, "FAIL"), strings.HasPrefix(line, "--- FAIL"):
		rep.Failed = true
		return
	}
	if !strings.HasPrefix(line, "Benchmark") {
		return
	}
	fields := strings.Fields(line)
	// name, iterations, then value/unit pairs.
	if len(fields) < 4 || len(fields)%2 != 0 {
		return
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return
	}
	b := Benchmark{
		Name:       strings.TrimPrefix(fields[0], "Benchmark"),
		Procs:      1,
		Iterations: iters,
		Metrics:    make(map[string]float64, (len(fields)-2)/2),
	}
	if i := strings.LastIndex(b.Name, "-"); i >= 0 {
		if p, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name, b.Procs = b.Name[:i], p
		}
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return
		}
		b.Metrics[fields[i+1]] = v
	}
	rep.Benchmarks = append(rep.Benchmarks, b)
}
