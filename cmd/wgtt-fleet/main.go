// Command wgtt-fleet deploys N independent WGTT corridor cells — each a
// complete simulated road segment with its own APs, controller, and
// Poisson-arriving vehicles — runs them across a worker pool, and prints a
// fleet-wide deployment report (per-cell capacity table plus merged
// throughput/accuracy/loss distributions).
//
// The report on stdout is a pure function of (flags, fleet seed): running
// with -workers 1 and -workers 8 produces byte-identical output. Timing
// goes to stderr.
//
// Usage:
//
//	wgtt-fleet -cells 32 -seed 7 -workers 8
//	wgtt-fleet -cells 4 -aps 16 -arrivals 12 -trace-dir /tmp/fleet
//	wgtt-fleet -cells 8 -domains 2        # sharded controller tier per cell (DESIGN.md §13)
//	wgtt-fleet -cells 4 -urban -rate 0.5  # street-grid city cells (DESIGN.md §16)
//	wgtt-fleet -cells 2 -urban -rate 0.5 -compare-selectors
//	wgtt-fleet -metro -rate 1             # one connected city, 2x2 metro cells (DESIGN.md §17)
//	wgtt-fleet -metro -metro-tiles 32x32 -urban-rows 33 -urban-cols 33 \
//	    -urban-spacing 60 -urban-duration 30 -progress   # 1,024-tile metro
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"wgtt/internal/chaos"
	"wgtt/internal/fleet"
	"wgtt/internal/profiling"
	"wgtt/internal/selector"
	"wgtt/internal/sim"
	"wgtt/internal/urban"
)

func main() {
	var (
		cells      = flag.Int("cells", 8, "number of corridor cells")
		seed       = flag.Uint64("seed", 1, "fleet master seed")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent cell simulations")
		aps        = flag.Int("aps", 8, "APs per cell")
		spacing    = flag.Float64("spacing", 7.5, "AP spacing, meters")
		arrivals   = flag.Float64("arrivals", 6, "vehicle arrivals per minute per cell")
		window     = flag.Float64("window", 20, "arrival window, seconds")
		maxVeh     = flag.Int("max-vehicles", 4, "vehicle cap per cell")
		speeds     = flag.String("speeds", "15,25,35", "speed mix, mph (comma-separated)")
		tcpFrac    = flag.Float64("tcp-frac", 0.5, "fraction of vehicles with TCP workload")
		udpRate    = flag.Float64("rate", 20, "UDP offered load per vehicle, Mb/s")
		domains    = flag.Int("domains", 1, "controller domains per cell (DESIGN.md §13; 1 = single controller)")
		traceDir   = flag.String("trace-dir", "", "write per-cell JSONL event traces here")
		metricsOut = flag.String("metrics", "",
			"write a merged metrics snapshot (JSON) to this file; '-' prints a table to stdout")
		chaosOn      = flag.Bool("chaos", false, "inject deterministic faults into every cell (DESIGN.md §11)")
		chaosMTBF    = flag.Float64("chaos-ap-mtbf", 60, "AP-crash mean time between failures per cell, seconds")
		selectorFlag = flag.String("selector", "",
			"AP-selection policy per cell (DESIGN.md §15): windowed-median | predictive | global-assign")
		urbanOn = flag.Bool("urban", false,
			"make every cell a street-grid city (DESIGN.md §16) instead of a corridor; "+
				"-aps/-spacing/-arrivals/-max-vehicles/-tcp-frac are ignored and -rate is per client (try 0.5)")
		urbanRows     = flag.Int("urban-rows", 0, "city grid rows (0 = default)")
		urbanCols     = flag.Int("urban-cols", 0, "city grid columns (0 = default)")
		urbanBlock    = flag.Float64("urban-block", 0, "city block edge length, meters (0 = default)")
		urbanSpacing  = flag.Float64("urban-spacing", 0, "street AP spacing, meters (0 = default)")
		urbanBuses    = flag.Int("urban-buses", -1, "buses per city (-1 = default)")
		urbanRiders   = flag.Int("urban-riders", -1, "riders per bus (-1 = default)")
		urbanCars     = flag.Int("urban-cars", -1, "routed cars per city (-1 = default)")
		urbanPeds     = flag.Int("urban-peds", -1, "pedestrians per city (-1 = default)")
		urbanDuration = flag.Float64("urban-duration", 0, "city horizon cap, seconds (0 = default)")
		urbanDomains  = flag.Int("urban-domains", 0, "city federation domains (0 = default)")
		metroOn       = flag.Bool("metro", false,
			"run one connected city tiled into metro cells with cross-cell client migration "+
				"(DESIGN.md §17) instead of N independent cells; -cells is ignored, the urban-* "+
				"flags shape the city, and -rate is per client (try 1)")
		metroTiles = flag.String("metro-tiles", "2x2", "metro cell grid, RxC")
		metroEpoch = flag.Float64("metro-epoch-ms", 0,
			"epoch length between migration barriers, milliseconds (0 = default 500)")
		metroIsolated = flag.Bool("metro-isolated", false,
			"cut the tile seams: clients stay in their birth tile for the whole run (the ext-metro ablation)")
		runID = flag.String("run-id", "",
			"prefix per-cell trace file names with this ID so concurrent runs can share -trace-dir")
		progressOn = flag.Bool("progress", false,
			"report completion progress (cells done, or metro epochs done) on stderr")
		comparePol = flag.Bool("compare-selectors", false,
			"run the whole fleet once per AP-selection policy and print the comparison table")
		prof = profiling.AddFlags()
	)
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stopProf()

	mix, err := parseSpeeds(*speeds)
	if err != nil {
		fmt.Fprintln(os.Stderr, "speeds:", err)
		stopProf()
		os.Exit(1)
	}
	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "trace-dir:", err)
			stopProf()
			os.Exit(1)
		}
	}

	cfg := fleet.Config{
		Cells:          *cells,
		Seed:           *seed,
		Workers:        *workers,
		APsPerCell:     *aps,
		SpacingM:       *spacing,
		ArrivalsPerMin: *arrivals,
		ArrivalWindow:  sim.FromSeconds(*window),
		MaxVehicles:    *maxVeh,
		SpeedsMPH:      mix,
		TCPFraction:    *tcpFrac,
		UDPRateMbps:    *udpRate,
		Domains:        *domains,
		TraceDir:       *traceDir,
		RunID:          *runID,
		Metrics:        *metricsOut != "",
	}
	if *progressOn {
		cfg.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "progress: %d/%d\n", done, total)
		}
	}
	if *chaosOn {
		ccfg := chaos.DefaultConfig()
		ccfg.APCrashMTBF = sim.FromSeconds(*chaosMTBF)
		cfg.Chaos = &ccfg
	}
	if *selectorFlag != "" {
		pol, err := selector.ParsePolicy(*selectorFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "selector:", err)
			stopProf()
			os.Exit(1)
		}
		cfg.Selector = &selector.Config{Policy: pol}
	}
	applyCityFlags := func(ucfg *urban.Config) {
		if *urbanRows > 0 {
			ucfg.Rows = *urbanRows
		}
		if *urbanCols > 0 {
			ucfg.Cols = *urbanCols
		}
		if *urbanBlock > 0 {
			ucfg.BlockM = *urbanBlock
		}
		if *urbanSpacing > 0 {
			ucfg.APSpacingM = *urbanSpacing
		}
		if *urbanBuses >= 0 {
			ucfg.Buses = *urbanBuses
		}
		if *urbanRiders >= 0 {
			ucfg.RidersPerBus = *urbanRiders
		}
		if *urbanCars >= 0 {
			ucfg.Cars = *urbanCars
		}
		if *urbanPeds >= 0 {
			ucfg.Pedestrians = *urbanPeds
		}
		if *urbanDuration > 0 {
			ucfg.MaxDurationS = *urbanDuration
		}
		if *urbanDomains > 0 {
			ucfg.Domains = *urbanDomains
		}
	}
	if *urbanOn {
		ucfg := urban.DefaultConfig()
		applyCityFlags(&ucfg)
		cfg.Urban = &ucfg
	}
	if *metroOn {
		tiles, err := urban.ParseTiling(*metroTiles)
		if err != nil {
			fmt.Fprintln(os.Stderr, "metro-tiles:", err)
			stopProf()
			os.Exit(1)
		}
		mcfg := urban.DefaultMetroConfig()
		mcfg.Tiles = tiles
		applyCityFlags(&mcfg.City)
		mcfg.City.Domains = 1 // metro tiles are the sharding story
		cfg.Metro = &mcfg
		cfg.MetroEpoch = sim.FromSeconds(*metroEpoch / 1000)
		cfg.MetroIsolated = *metroIsolated
	}
	start := time.Now()
	if *metroOn {
		res, err := fleet.RunMetro(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fleet:", err)
			stopProf()
			os.Exit(1)
		}
		fmt.Print(res.Render())
		if *metricsOut != "" && res.Metrics != nil {
			if err := res.Metrics.WriteFile(*metricsOut); err != nil {
				fmt.Fprintln(os.Stderr, "metrics:", err)
				stopProf()
				os.Exit(1)
			}
			if *metricsOut != "-" {
				fmt.Fprintf(os.Stderr, "metrics: metro snapshot -> %s\n", *metricsOut)
			}
		}
		fmt.Fprintf(os.Stderr, "metro %s: %d tiles (%d built) in %.1fs with %d workers\n",
			res.Tiling, res.Tiling.N(), res.BuiltTiles, time.Since(start).Seconds(), *workers)
		stopProf()
		return
	}
	if *comparePol {
		pc, err := fleet.ComparePolicies(cfg, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fleet:", err)
			stopProf()
			os.Exit(1)
		}
		fmt.Print(pc.Render())
		fmt.Fprintf(os.Stderr, "%d cells x %d policies in %.1fs with %d workers\n",
			*cells, len(pc.Outcomes), time.Since(start).Seconds(), *workers)
		stopProf()
		return
	}
	res, err := fleet.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleet:", err)
		stopProf()
		os.Exit(1)
	}
	fmt.Print(res.Render())
	if *traceDir != "" {
		events := 0
		for _, c := range res.Cells {
			events += c.TraceEvents
		}
		fmt.Fprintf(os.Stderr, "traces: %d events across %d files in %s\n",
			events, len(res.Cells), *traceDir)
	}
	if *metricsOut != "" {
		if snap := res.MergedMetrics(); snap != nil {
			if err := snap.WriteFile(*metricsOut); err != nil {
				fmt.Fprintln(os.Stderr, "metrics:", err)
				stopProf()
				os.Exit(1)
			}
			if *metricsOut != "-" {
				fmt.Fprintf(os.Stderr, "metrics: merged snapshot of %d cells -> %s\n",
					len(res.Cells), *metricsOut)
			}
		}
	}
	fmt.Fprintf(os.Stderr, "%d cells in %.1fs with %d workers\n",
		*cells, time.Since(start).Seconds(), *workers)
}

// parseSpeeds parses the comma-separated speed mix.
func parseSpeeds(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseFloat(f, 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad speed %q", f)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty speed mix")
	}
	return out, nil
}
