// Command wgtt-experiments regenerates every table and figure from the
// paper's evaluation on the simulated substrate (see DESIGN.md for the
// experiment index and EXPERIMENTS.md for recorded paper-vs-measured
// comparisons). Experiments run concurrently across a worker pool; output
// is always printed in registry order, so -workers never changes what you
// see, only how long you wait.
//
// Usage:
//
//	wgtt-experiments                # run everything (takes minutes)
//	wgtt-experiments -quick         # trimmed sweeps
//	wgtt-experiments -workers 8     # parallel regeneration
//	wgtt-experiments fig13 table2   # run selected artifacts
//	wgtt-experiments -chaos         # just the fault-injection experiment
//	wgtt-experiments -list
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"wgtt/internal/eval"
	"wgtt/internal/metrics"
	"wgtt/internal/profiling"
	"wgtt/internal/selector"
)

func main() {
	var (
		quick      = flag.Bool("quick", false, "trimmed sweeps")
		list       = flag.Bool("list", false, "list experiment IDs")
		chaosOnly  = flag.Bool("chaos", false, "run only the fault-injection experiment (ext-resilience)")
		seed       = flag.Uint64("seed", 2017, "base seed")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent experiments")
		metricsOut = flag.String("metrics", "",
			"write a merged metrics snapshot (JSON) to this file; '-' prints a table to stdout")
		selectorFlag = flag.String("selector", "",
			"AP-selection policy override for every experiment (DESIGN.md §15): windowed-median | predictive | global-assign")
		prof = profiling.AddFlags()
	)
	flag.Parse()

	if *list {
		for _, e := range eval.Experiments() {
			fmt.Printf("%-16s %s\n", e.ID, e.Title)
		}
		return
	}
	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stopProf()
	opt := eval.Options{Seed: *seed, Quick: *quick, CollectMetrics: *metricsOut != ""}
	if *selectorFlag != "" {
		pol, err := selector.ParsePolicy(*selectorFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "selector:", err)
			stopProf()
			os.Exit(1)
		}
		opt.Selector = &selector.Config{Policy: pol}
	}
	ids := flag.Args()
	if *chaosOnly {
		ids = append(ids, "ext-resilience")
	}
	outs, err := eval.RunAll(opt, *workers, ids)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		stopProf()
		os.Exit(1)
	}

	failed := 0
	for _, o := range outs {
		fmt.Printf("==== %s: %s ====\n", o.ID, o.Title)
		if o.Err != nil {
			fmt.Printf("ERROR: %v\n\n", o.Err)
			failed++
			continue
		}
		fmt.Print(o.Text)
		fmt.Printf("(%.1fs)\n\n", o.Elapsed.Seconds())
	}
	if failed > 0 {
		stopProf()
		os.Exit(1)
	}
	if *metricsOut != "" {
		// Merge per-experiment snapshots in registry order so the combined
		// snapshot is independent of worker count.
		var snaps []metrics.Snapshot
		for _, o := range outs {
			if o.Metrics != nil {
				snaps = append(snaps, *o.Metrics)
			}
		}
		merged := metrics.Merge(snaps...)
		if err := merged.WriteFile(*metricsOut); err != nil {
			fmt.Fprintln(os.Stderr, "metrics:", err)
			stopProf()
			os.Exit(1)
		}
		if *metricsOut != "-" {
			fmt.Printf("metrics: merged snapshot of %d experiments -> %s\n", len(snaps), *metricsOut)
		}
	}
}
