// Command wgtt-experiments regenerates every table and figure from the
// paper's evaluation on the simulated substrate (see DESIGN.md for the
// experiment index and EXPERIMENTS.md for recorded paper-vs-measured
// comparisons).
//
// Usage:
//
//	wgtt-experiments                # run everything (takes minutes)
//	wgtt-experiments -quick         # trimmed sweeps
//	wgtt-experiments fig13 table2   # run selected artifacts
//	wgtt-experiments -list
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"wgtt/internal/eval"
)

func main() {
	var (
		quick = flag.Bool("quick", false, "trimmed sweeps")
		list  = flag.Bool("list", false, "list experiment IDs")
		seed  = flag.Uint64("seed", 2017, "base seed")
	)
	flag.Parse()

	exps := eval.Experiments()
	if *list {
		for _, e := range exps {
			fmt.Printf("%-16s %s\n", e.ID, e.Title)
		}
		return
	}
	want := map[string]bool{}
	for _, a := range flag.Args() {
		want[a] = true
	}
	opt := eval.Options{Seed: *seed, Quick: *quick}

	failed := 0
	for _, e := range exps {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		fmt.Printf("==== %s: %s ====\n", e.ID, e.Title)
		start := time.Now()
		res, err := e.Run(opt)
		if err != nil {
			fmt.Printf("ERROR: %v\n\n", err)
			failed++
			continue
		}
		fmt.Print(res.Render())
		fmt.Printf("(%.1fs)\n\n", time.Since(start).Seconds())
	}
	if failed > 0 {
		os.Exit(1)
	}
}
