// Command wgttsim runs one WGTT (or Enhanced 802.11r baseline) scenario and
// prints a throughput/switching summary.
//
// Usage:
//
//	wgttsim -mode wgtt -speed 15 -proto tcp -rate 50 -clients 1 -seed 42
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"wgtt/internal/chaos"
	"wgtt/internal/core"
	"wgtt/internal/fleet"
	"wgtt/internal/mobility"
	"wgtt/internal/selector"
	"wgtt/internal/sim"
	"wgtt/internal/trace"
	"wgtt/internal/urban"
)

func main() {
	var (
		modeFlag   = flag.String("mode", "wgtt", "wgtt | baseline")
		speed      = flag.Float64("speed", 15, "client speed, mph")
		proto      = flag.String("proto", "udp", "udp | tcp")
		rate       = flag.Float64("rate", 50, "UDP offered load, Mb/s")
		clients    = flag.Int("clients", 1, "number of clients (1-3)")
		pattern    = flag.String("pattern", "following", "following | parallel | opposing")
		seed       = flag.Uint64("seed", 42, "scenario seed")
		domains    = flag.Int("domains", 1, "controller domains (DESIGN.md §13; 1 = single controller)")
		verbose    = flag.Bool("v", false, "per-second progress")
		traceOut   = flag.String("trace", "", "write a JSONL event trace to this file")
		metricsOut = flag.String("metrics", "",
			"write a metrics snapshot (JSON) to this file; '-' prints a table to stdout")
		chaosOn       = flag.Bool("chaos", false, "enable deterministic fault injection (DESIGN.md §11)")
		chaosMTBF     = flag.Float64("chaos-ap-mtbf", 60, "AP-crash mean time between failures, seconds")
		chaosDowntime = flag.Float64("chaos-downtime", 2, "AP downtime before restart, seconds")
		selectorFlag  = flag.String("selector", "",
			"AP-selection policy (DESIGN.md §15): windowed-median | predictive | global-assign")
		urbanOn = flag.Bool("urban", false,
			"run the street-grid city workload (DESIGN.md §16) instead of the corridor; "+
				"-speed/-clients/-pattern are ignored, and -rate is per client (try 0.5)")
		urbanRows    = flag.Int("urban-rows", 0, "city grid rows (0 = default)")
		urbanCols    = flag.Int("urban-cols", 0, "city grid columns (0 = default)")
		urbanBlock   = flag.Float64("urban-block", 0, "city block edge, meters (0 = default)")
		urbanBuses   = flag.Int("urban-buses", -1, "bus count (-1 = default)")
		urbanRiders  = flag.Int("urban-riders", -1, "riders per bus (-1 = default)")
		urbanCars    = flag.Int("urban-cars", -1, "car count (-1 = default)")
		urbanPeds    = flag.Int("urban-peds", -1, "pedestrian count (-1 = default)")
		urbanDomains = flag.Int("urban-domains", 0, "city federation domains (0 = default)")
		metroOn      = flag.Bool("metro", false,
			"run the connected-metro workload (DESIGN.md §17): one city tiled into metro cells "+
				"with cross-cell client migration; the urban-* flags shape the city, "+
				"-rate is per client (try 1), and all corridor flags are ignored")
		metroTiles = flag.String("metro-tiles", "2x2", "metro cell grid, RxC")
	)
	flag.Parse()

	applyCityFlags := func(ucfg *urban.Config) {
		if *urbanRows > 0 {
			ucfg.Rows = *urbanRows
		}
		if *urbanCols > 0 {
			ucfg.Cols = *urbanCols
		}
		if *urbanBlock > 0 {
			ucfg.BlockM = *urbanBlock
		}
		if *urbanBuses >= 0 {
			ucfg.Buses = *urbanBuses
		}
		if *urbanRiders >= 0 {
			ucfg.RidersPerBus = *urbanRiders
		}
		if *urbanCars >= 0 {
			ucfg.Cars = *urbanCars
		}
		if *urbanPeds >= 0 {
			ucfg.Pedestrians = *urbanPeds
		}
		if *urbanDomains > 0 {
			ucfg.Domains = *urbanDomains
		}
	}
	if *metroOn {
		runMetro(*metroTiles, *seed, *rate, *selectorFlag, *metricsOut, applyCityFlags)
		return
	}

	mode := core.ModeWGTT
	if *modeFlag == "baseline" {
		mode = core.ModeBaseline
	}
	var s core.Scenario
	switch {
	case *urbanOn:
		ucfg := urban.DefaultConfig()
		applyCityFlags(&ucfg)
		s = core.UrbanScenario(mode, ucfg, *seed)
	case *clients <= 1:
		s = core.DriveScenario(mode, *speed, *seed)
	default:
		pat := mobility.Following
		switch *pattern {
		case "parallel":
			pat = mobility.Parallel
		case "opposing":
			pat = mobility.Opposing
		}
		s = core.MultiClientScenario(mode, pat, *clients, *speed, *seed)
	}
	if !*urbanOn {
		s.Domains = *domains
	}
	if *chaosOn {
		ccfg := chaos.DefaultConfig()
		ccfg.APCrashMTBF = sim.FromSeconds(*chaosMTBF)
		ccfg.APDowntime = sim.FromSeconds(*chaosDowntime)
		s.Chaos = &ccfg
	}
	if *selectorFlag != "" {
		pol, err := selector.ParsePolicy(*selectorFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "selector:", err)
			os.Exit(1)
		}
		s.Selector = &selector.Config{Policy: pol}
	}
	n, err := core.Build(s)
	if err != nil {
		fmt.Fprintln(os.Stderr, "build:", err)
		os.Exit(1)
	}
	// Urban scenarios expand their AP/client sets inside Build; adopt the
	// expanded form for the flow setup and the summary below.
	s = n.Scenario
	if *metricsOut != "" {
		n.EnableMetrics()
	}

	var tcps []*core.DownTCP
	var udps []*core.DownUDP
	for c := 0; c < len(s.Clients); c++ {
		if *proto == "tcp" {
			f := n.AddDownlinkTCP(c, 0, nil)
			f.Sender.Start()
			tcps = append(tcps, f)
		} else {
			f := n.AddDownlinkUDP(c, *rate, 1400)
			f.Sender.Start()
			udps = append(udps, f)
		}
	}
	if *verbose {
		n.Every(sim.Second, func(at sim.Time) {
			fmt.Printf("t=%5.1fs serving=%d\n", at.Seconds(), n.ServingAP(0))
		})
	}
	var rec *trace.Recorder
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			os.Exit(1)
		}
		defer f.Close()
		rec = trace.NewRecorder(f)
		n.AttachRecorder(rec)
	}
	n.Run()
	if rec != nil {
		if err := rec.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
		} else {
			fmt.Printf("trace: %d events -> %s\n", rec.N, *traceOut)
		}
	}

	if n.Urban != nil {
		st := n.Urban.Stats
		fmt.Printf("scenario: %v, %dx%d city (%d street APs), %d client(s), %v, seed %d\n",
			mode, s.Urban.Rows, s.Urban.Cols, len(n.APPosition), len(s.Clients), s.Duration, *seed)
		fmt.Printf("city: %d bus(es) / %d riders / %d cars / %d pedestrians, %d turns, %d light stops, %d route crossings\n",
			st.Buses, st.Riders, st.Cars, st.Pedestrians, st.Turns, st.LightStops, st.RouteCrossings)
	} else {
		fmt.Printf("scenario: %v, %.0f mph, %d client(s), %v, seed %d\n",
			mode, *speed, len(s.Clients), s.Duration, *seed)
	}
	for c := range s.Clients {
		var mbps float64
		if *proto == "tcp" {
			mbps = float64(tcps[c].Receiver.DeliveredBytes) * 8 / 1e6 / s.Duration.Seconds()
			fmt.Printf("client %d: TCP %6.2f Mb/s (%d rtx, %d timeouts)\n",
				c+1, mbps, tcps[c].Sender.Retransmits, tcps[c].Sender.Timeouts)
		} else {
			mbps = float64(udps[c].Receiver.Bytes) * 8 / 1e6 / s.Duration.Seconds()
			fmt.Printf("client %d: UDP %6.2f Mb/s (loss %.3f)\n",
				c+1, mbps, udps[c].Receiver.LossRate())
		}
	}
	if mode == core.ModeWGTT {
		st := n.CtlStats()
		fmt.Printf("controller: %d switches (%d retransmitted stops), %d CSI reports, uplink %d unique / %d dup\n",
			st.SwitchesDone, st.StopRetransmits, st.CSIReports, st.UplinkUnique, st.UplinkDuplicate)
		if n.Fed != nil {
			fs := n.FedStats()
			fmt.Printf("federation: %d domains, %d handoffs (%d offers, %d aborts), %d cross-domain switches\n",
				s.Domains, fs.Adoptions, fs.OffersSent, fs.Aborts, fs.CrossSwitches)
		}
	} else {
		fmt.Printf("baseline: %d handovers\n", len(n.Base.Handovers))
	}
	fmt.Printf("medium: %.0f%% airtime, %d tx collisions, %d/%d response collisions\n",
		100*n.Medium.Utilization(), n.Medium.TxCollisions, n.Medium.RespCollisions, n.Medium.RespTotal)
	if n.Chaos != nil {
		cs := n.Chaos.Stats
		fmt.Printf("chaos: %d AP crashes (%d restarts, %d skipped), %d burst drops, %d CSI-blackout drops\n",
			cs.APCrashes, cs.APRestarts, cs.CrashesSkipped, cs.BurstDrops, cs.BlackoutDrops)
		if mode == core.ModeWGTT {
			st := n.CtlStats()
			fmt.Printf("recovery: %d APs marked dead, %d readmitted, %d forced switches, %d health probes\n",
				st.APsMarkedDead, st.APsReadmitted, st.ForcedSwitches, st.HealthProbes)
		}
	}
	if *metricsOut != "" {
		snap := n.Metrics.Snapshot()
		if err := snap.WriteFile(*metricsOut); err != nil {
			fmt.Fprintln(os.Stderr, "metrics:", err)
			os.Exit(1)
		}
		if *metricsOut != "-" {
			fmt.Printf("metrics: snapshot -> %s\n", *metricsOut)
		}
	}
}

// runMetro runs the §17 connected-metro workload: a single city tiled into
// metro cells, each its own simulation, advancing in lockstep epochs with
// clients migrating across tile seams. The report is fleet.MetroResult's —
// the same one `wgtt-fleet -metro` prints.
func runMetro(tilesSpec string, seed uint64, rate float64, selectorFlag, metricsOut string,
	applyCityFlags func(*urban.Config)) {
	tiles, err := urban.ParseTiling(tilesSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "metro-tiles:", err)
		os.Exit(1)
	}
	mcfg := urban.DefaultMetroConfig()
	mcfg.Tiles = tiles
	applyCityFlags(&mcfg.City)
	mcfg.City.Domains = 1 // tiles are the metro's sharding story
	cfg := fleet.Config{
		Seed:        seed,
		Workers:     runtime.GOMAXPROCS(0),
		UDPRateMbps: rate,
		Metro:       &mcfg,
		Metrics:     metricsOut != "",
	}
	if selectorFlag != "" {
		pol, err := selector.ParsePolicy(selectorFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "selector:", err)
			os.Exit(1)
		}
		cfg.Selector = &selector.Config{Policy: pol}
	}
	res, err := fleet.RunMetro(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "metro:", err)
		os.Exit(1)
	}
	fmt.Print(res.Render())
	if metricsOut != "" && res.Metrics != nil {
		if err := res.Metrics.WriteFile(metricsOut); err != nil {
			fmt.Fprintln(os.Stderr, "metrics:", err)
			os.Exit(1)
		}
		if metricsOut != "-" {
			fmt.Printf("metrics: snapshot -> %s\n", metricsOut)
		}
	}
}
