# Tier-1 gate: everything `make check` runs must pass before a change
# lands. `race` covers the concurrency-bearing packages (the fleet worker
# pool, the parallel experiment registry, shared trace recorders, and the
# stats merging they feed).

GO ?= go

RACE_PKGS = ./internal/fleet ./internal/eval ./internal/trace ./internal/stats \
	./internal/runtime ./internal/backhaul/udp ./internal/live ./internal/federation \
	./internal/urban ./internal/core

.PHONY: check vet build test race bench bench-smoke fleet-determinism docs-check lint chaos-smoke live-smoke federation-smoke fanout-smoke selector-smoke urban-smoke metro-smoke metro-scale fuzz-smoke

check: vet lint build test race bench-smoke chaos-smoke live-smoke federation-smoke fanout-smoke selector-smoke urban-smoke metro-smoke fuzz-smoke docs-check

# Static analysis beyond vet. The tools are optional — not every build
# environment ships them — so each is gated on availability rather than
# failing the tier-1 gate on a missing binary.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./... || exit 1; \
	else \
		echo "lint: staticcheck not installed, skipping"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./... || exit 1; \
	else \
		echo "lint: govulncheck not installed, skipping"; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# Hot-path packages with microbenchmarks and AllocsPerRun assertions.
BENCH_PKGS = ./internal/sim ./internal/radio ./internal/phy ./internal/csi ./internal/controller ./internal/selector \
	./internal/metrics ./internal/backhaul ./internal/backhaul/udp ./internal/urban

# Fast allocation-regression gate (part of check): every ZeroAlloc
# assertion plus one iteration of each hot-path microbenchmark and of the
# root fan-out benchmark family, so a steady-state allocation or a broken
# bench fails tier-1 immediately.
bench-smoke:
	$(GO) test -run ZeroAlloc $(BENCH_PKGS)
	$(GO) test -run '^$$' -bench 'GainsDB|ESNR|Median|Engine|BER|Selector|Urban' -benchtime 1x -benchmem $(BENCH_PKGS)
	$(GO) test -run '^$$' -bench '^BenchmarkFanout' -benchtime 1x -benchmem .
	$(GO) test -run '^$$' -bench '^BenchmarkMetroEpoch' -benchtime 1x -benchmem ./internal/fleet

# Documentation lint: every internal package's godoc must carry at least one
# paper-section marker (§) mapping the package to the part of the paper it
# reproduces. `go doc <pkg>` prints the package comment plus bare
# declarations (symbol comments stripped), so grepping it for § tests
# exactly the package comment.
docs-check:
	@fail=0; for d in internal/*/; do \
		pkg=$${d%/}; \
		if ! $(GO) doc ./$$pkg 2>/dev/null | grep -q '§'; then \
			echo "docs-check: $$pkg package godoc has no paper-section (§) marker"; fail=1; \
		fi; \
	done; \
	if [ $$fail -ne 0 ]; then exit 1; fi
	@echo docs-check: all internal packages carry a paper-section mapping

# Chaos determinism smoke (part of check): the same fault-injected drive run
# twice must print byte-identical summaries — the CLI face of the DESIGN.md
# §11 determinism contract (per-seed reproducible faults and recovery).
chaos-smoke:
	$(GO) build -o /tmp/wgttsim ./cmd/wgttsim
	/tmp/wgttsim -chaos -speed 25 -seed 11 > /tmp/chaos-run1.txt
	/tmp/wgttsim -chaos -speed 25 -seed 11 > /tmp/chaos-run2.txt
	cmp /tmp/chaos-run1.txt /tmp/chaos-run2.txt
	@echo chaos-smoke: fault-injected runs byte-identical

# Live-mode smoke (part of check): one controller and two AP processes over
# UDP loopback, each on its own wall-clock run loop, must complete a full
# §3.1.2 stop→start→ack switch with every backhaul message passing through
# its wire encoding (DESIGN.md §12).
live-smoke:
	$(GO) build -o /tmp/wgtt-live ./cmd/wgtt-live
	/tmp/wgtt-live -aps 2 -timeout 10s
	@echo live-smoke: multi-process switch over UDP loopback complete

# Federation smoke (part of check, DESIGN.md §13): two controller OS
# processes hand one client across domains over UDP loopback — run twice
# and compared byte for byte — then a 2-domain fleet must render identical
# reports for 1 and 4 workers (the sim half of the same contract).
federation-smoke:
	$(GO) build -o /tmp/wgtt-live ./cmd/wgtt-live
	/tmp/wgtt-live -federation -timeout 10s > /tmp/fed-run1.txt
	/tmp/wgtt-live -federation -timeout 10s > /tmp/fed-run2.txt
	cmp /tmp/fed-run1.txt /tmp/fed-run2.txt
	$(GO) build -o /tmp/wgtt-fleet ./cmd/wgtt-fleet
	/tmp/wgtt-fleet -cells 2 -domains 2 -seed 7 -workers 1 2>/dev/null > /tmp/fed-fleet-w1.txt
	/tmp/wgtt-fleet -cells 2 -domains 2 -seed 7 -workers 4 2>/dev/null > /tmp/fed-fleet-w4.txt
	cmp /tmp/fed-fleet-w1.txt /tmp/fed-fleet-w4.txt
	@echo federation-smoke: inter-controller handoff deterministic live and in sim

# Fan-out determinism smoke (part of check, DESIGN.md §14): the same drive
# run twice must produce byte-identical summaries AND metrics tables — the
# fan-out counters (downlink_encodes, downlink_copies) and the batched-write
# depth histogram pin the data plane's replication decisions per seed.
fanout-smoke:
	$(GO) build -o /tmp/wgttsim ./cmd/wgttsim
	/tmp/wgttsim -speed 25 -seed 7 -metrics /tmp/fanout-m1.json | grep -v '^metrics:' > /tmp/fanout-run1.txt
	/tmp/wgttsim -speed 25 -seed 7 -metrics /tmp/fanout-m2.json | grep -v '^metrics:' > /tmp/fanout-run2.txt
	cmp /tmp/fanout-run1.txt /tmp/fanout-run2.txt
	cmp /tmp/fanout-m1.json /tmp/fanout-m2.json
	@echo fanout-smoke: fan-out data plane deterministic, metrics byte-identical

# Selection-policy smoke (part of check, DESIGN.md §15): the ext-selector
# ablation run twice per policy must print byte-identical tables — selectors
# are pure functions of the CSI sequence, so policy choice must never break
# the per-seed determinism contract.
selector-smoke:
	$(GO) build -o /tmp/wgtt-experiments ./cmd/wgtt-experiments
	/tmp/wgtt-experiments -quick ext-selector | grep -v '(.*s)$$' > /tmp/sel-abl-1.txt
	/tmp/wgtt-experiments -quick ext-selector | grep -v '(.*s)$$' > /tmp/sel-abl-2.txt
	cmp /tmp/sel-abl-1.txt /tmp/sel-abl-2.txt
	$(GO) build -o /tmp/wgttsim ./cmd/wgttsim
	@for pol in windowed-median predictive global-assign; do \
		/tmp/wgttsim -selector $$pol -speed 25 -seed 7 > /tmp/sel-$$pol-1.txt || exit 1; \
		/tmp/wgttsim -selector $$pol -speed 25 -seed 7 > /tmp/sel-$$pol-2.txt || exit 1; \
		cmp /tmp/sel-$$pol-1.txt /tmp/sel-$$pol-2.txt || exit 1; \
	done
	@echo selector-smoke: selection policies deterministic in ablation and CLI

# Urban determinism smoke (part of check, DESIGN.md §16): the same city
# run twice must print byte-identical summaries — routes, lights, rider
# seats, the geographic federation binding, and the street-canyon radio
# are all pure functions of (config, seed).
urban-smoke:
	$(GO) build -o /tmp/wgttsim ./cmd/wgttsim
	/tmp/wgttsim -urban -urban-rows 2 -urban-cols 2 -urban-riders 2 -rate 0.5 -seed 11 > /tmp/urban-run1.txt
	/tmp/wgttsim -urban -urban-rows 2 -urban-cols 2 -urban-riders 2 -rate 0.5 -seed 11 > /tmp/urban-run2.txt
	cmp /tmp/urban-run1.txt /tmp/urban-run2.txt
	@echo urban-smoke: city runs byte-identical

# Metro determinism smoke (part of check, DESIGN.md §17): one small connected
# metro — tiles advancing in lockstep epochs with cross-cell client migration
# at the seams — must print byte-identical reports for 1, 4, and 8 workers,
# and again on a second 8-worker run. This is the CLI face of the metro's
# headline contract: the epoch-barrier migration exchange keeps reports a
# pure function of (flags, seed) no matter how tiles are scheduled.
METRO_SMOKE_FLAGS = -metro -rate 1 -seed 7 -urban-rows 4 -urban-cols 4 \
	-urban-riders 3 -urban-cars 1 -urban-peds 1 -urban-duration 20
metro-smoke:
	$(GO) build -o /tmp/wgtt-fleet ./cmd/wgtt-fleet
	/tmp/wgtt-fleet $(METRO_SMOKE_FLAGS) -workers 1 2>/dev/null > /tmp/metro-w1.txt
	/tmp/wgtt-fleet $(METRO_SMOKE_FLAGS) -workers 4 2>/dev/null > /tmp/metro-w4.txt
	/tmp/wgtt-fleet $(METRO_SMOKE_FLAGS) -workers 8 2>/dev/null > /tmp/metro-w8.txt
	cmp /tmp/metro-w1.txt /tmp/metro-w4.txt
	cmp /tmp/metro-w1.txt /tmp/metro-w8.txt
	/tmp/wgtt-fleet $(METRO_SMOKE_FLAGS) -workers 8 2>/dev/null > /tmp/metro-w8b.txt
	cmp /tmp/metro-w8.txt /tmp/metro-w8b.txt
	@echo metro-smoke: metro reports byte-identical across worker counts

# Slow (minutes, opt-in): the 1,000+-tile metro from the §17 acceptance
# criteria — a 32x32 tile grid over a 33x33-intersection city — must complete
# with cross-cell migrations happening (the report's "migrations" line is
# asserted non-zero). Only tiles that clients actually visit are built, so
# the run exercises metro *scale* (tiling, planning, epoch barriers over
# 1,024 cells) without simulating a thousand idle radios.
metro-scale:
	$(GO) build -o /tmp/wgtt-fleet ./cmd/wgtt-fleet
	/tmp/wgtt-fleet -metro -metro-tiles 32x32 -urban-rows 33 -urban-cols 33 \
		-urban-spacing 60 -urban-duration 30 -urban-riders 4 -urban-cars 2 \
		-urban-peds 1 -rate 1 -seed 7 -progress 2>/dev/null > /tmp/metro-scale.txt
	grep -q '^tiles 32x32' /tmp/metro-scale.txt
	grep '^migrations ' /tmp/metro-scale.txt | awk '{ exit ($$2 > 0) ? 0 : 1 }'
	@grep '^migrations ' /tmp/metro-scale.txt
	@echo metro-scale: 1024-tile metro completed with cross-cell migrations

# Wire-codec fuzz smoke (part of check): a short coverage-guided run of
# FuzzDecode on top of its seed corpus — malformed backhaul bytes must never
# panic the decoder, and accepted inputs must round-trip stably.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzDecode -fuzztime 10s ./internal/packet
	@echo fuzz-smoke: decoder survived coverage-guided malformed input

# Slow (tens of minutes): the full perf trajectory — every figure/table
# benchmark from the root bench_test.go plus the hot-path micros — written
# to BENCH_results.json for future PRs to diff against. wgtt-benchjson
# echoes progress to stderr and exits nonzero if the run printed FAIL.
bench:
	$(GO) build -o /tmp/wgtt-benchjson ./cmd/wgtt-benchjson
	{ $(GO) test -run '^$$' -bench . -benchmem -timeout 60m . && \
	  $(GO) test -run '^$$' -bench '^BenchmarkMetroEpoch' -benchmem ./internal/fleet; } \
		| /tmp/wgtt-benchjson -o BENCH_results.json

# Slow (minutes): the CLI-level determinism check from the fleet engine's
# acceptance criteria — 32 cells, 1 worker vs 8 workers, byte-identical
# stdout. The in-repo unit test covers the same invariant on a small fleet.
fleet-determinism:
	$(GO) build -o /tmp/wgtt-fleet ./cmd/wgtt-fleet
	/tmp/wgtt-fleet -cells 32 -seed 7 -workers 1 2>/dev/null > /tmp/fleet-w1.txt
	/tmp/wgtt-fleet -cells 32 -seed 7 -workers 8 2>/dev/null > /tmp/fleet-w8.txt
	cmp /tmp/fleet-w1.txt /tmp/fleet-w8.txt
	@echo fleet reports byte-identical
