# Tier-1 gate: everything `make check` runs must pass before a change
# lands. `race` covers the concurrency-bearing packages (the fleet worker
# pool, the parallel experiment registry, shared trace recorders, and the
# stats merging they feed).

GO ?= go

RACE_PKGS = ./internal/fleet ./internal/eval ./internal/trace ./internal/stats

.PHONY: check vet build test race fleet-determinism

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# Slow (minutes): the CLI-level determinism check from the fleet engine's
# acceptance criteria — 32 cells, 1 worker vs 8 workers, byte-identical
# stdout. The in-repo unit test covers the same invariant on a small fleet.
fleet-determinism:
	$(GO) build -o /tmp/wgtt-fleet ./cmd/wgtt-fleet
	/tmp/wgtt-fleet -cells 32 -seed 7 -workers 1 2>/dev/null > /tmp/fleet-w1.txt
	/tmp/wgtt-fleet -cells 32 -seed 7 -workers 8 2>/dev/null > /tmp/fleet-w8.txt
	cmp /tmp/fleet-w1.txt /tmp/fleet-w8.txt
	@echo fleet reports byte-identical
