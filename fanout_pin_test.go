// End-to-end fan-out accounting pins: the incremental relevance set
// (internal/controller/fanout.go) must reproduce the retired per-packet
// O(#APs) scan's fan-out decisions exactly. These constants were captured
// by running the identical scenarios on the scan implementation; any drift
// in DownlinkCopies or delivered datagrams means the fast path changed
// which APs replicate a client's downlink.
package wgtt_test

import (
	"testing"

	"wgtt/internal/core"
)

func TestFanoutCopiesPinned(t *testing.T) {
	cases := []struct {
		seed         uint64
		sent, copies uint64
		received     uint64
	}{
		{seed: 7, sent: 6004, copies: 14817, received: 4371},
		{seed: 11, sent: 6004, copies: 14314, received: 4578},
	}
	for _, tc := range cases {
		sc := core.DriveScenario(core.ModeWGTT, 25, tc.seed)
		n, err := core.Build(sc)
		if err != nil {
			t.Fatal(err)
		}
		flow := n.AddDownlinkUDP(0, 6, 1200)
		flow.Sender.Start()
		n.Run()
		st := n.CtlStats()
		if st.DownlinkSent != tc.sent || st.DownlinkCopies != tc.copies ||
			flow.Receiver.Received != tc.received {
			t.Errorf("seed %d: sent/copies/received = %d/%d/%d, want %d/%d/%d (pre-relevance-set baseline)",
				tc.seed, st.DownlinkSent, st.DownlinkCopies, flow.Receiver.Received,
				tc.sent, tc.copies, tc.received)
		}
	}
}
