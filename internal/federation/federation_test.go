package federation_test

import (
	"testing"

	"wgtt/internal/backhaul"
	"wgtt/internal/federation"
	"wgtt/internal/metrics"
	"wgtt/internal/packet"
	"wgtt/internal/selector"
	wrt "wgtt/internal/runtime"
	"wgtt/internal/sim"
)

// fedAP is a scripted AP for federation tests: it answers stops with a
// start at the switch target and starts with an ack to ITS OWN domain
// controller — the addressing property the cross-domain switch depends on.
type fedAP struct {
	bh     *backhaul.Switch
	ip     packet.IPv4Addr
	ctl    packet.IPv4Addr
	stops  []*packet.Stop
	starts []*packet.Start
	downs  []*packet.DownData
	cursor uint16
	ack    bool // answer stops (false black-holes the switch at this AP)
}

func (f *fedAP) HandleBackhaul(from packet.IPv4Addr, msg packet.Message) {
	switch m := msg.(type) {
	case *packet.HealthProbe:
		_ = f.bh.Send(f.ip, f.ctl, &packet.HealthAck{AP: f.ip, Seq: m.Seq, At: m.At})
	case *packet.Stop:
		f.stops = append(f.stops, m)
		if f.ack {
			_ = f.bh.Send(f.ip, m.NextAP, &packet.Start{Client: m.Client, Index: f.cursor, SwitchID: m.SwitchID})
		}
	case *packet.Start:
		f.starts = append(f.starts, m)
		f.cursor = m.Index
		_ = f.bh.Send(f.ip, f.ctl, &packet.SwitchAck{Client: m.Client, AP: f.ip, SwitchID: m.SwitchID})
	case *packet.DownData:
		f.downs = append(f.downs, m)
	}
}

// fedHarness assembles nDomains × apsPer domains over one virtual-clock
// switch, with scripted APs wired to their domain controllers.
type fedHarness struct {
	t    *testing.T
	eng  *sim.Engine
	bh   *backhaul.Switch
	city []federation.APAssignment
	doms []*federation.Domain
	tier *federation.Tier
	aps  []*fedAP
}

func newFedHarness(t *testing.T, nDomains, apsPer int, cfg federation.Config) *fedHarness {
	t.Helper()
	eng := sim.NewEngine()
	bh := backhaul.NewSwitch(eng, 200*sim.Microsecond)
	h := &fedHarness{t: t, eng: eng, bh: bh}
	for g := 0; g < nDomains*apsPer; g++ {
		dom := g / apsPer
		h.city = append(h.city, federation.APAssignment{
			ID: g, Domain: dom, IP: packet.APIP(g), MAC: packet.APMAC(g),
		})
		ap := &fedAP{bh: bh, ip: packet.APIP(g), ctl: packet.DomainControllerIP(dom), ack: true}
		h.aps = append(h.aps, ap)
		bh.Attach(ap.ip, ap)
	}
	for d := 0; d < nDomains; d++ {
		h.doms = append(h.doms, federation.NewDomain(cfg, wrt.Virtual(eng), bh, d, h.city))
	}
	h.tier = federation.NewTier(h.doms)
	return h
}

// feedCSI delivers one CSI report from AP g to g's domain controller, as
// the AP MAC-side would.
func (h *fedHarness) feedCSI(client packet.MACAddr, g int, esnrDB float64) {
	rep := &packet.CSIReport{Client: client, AP: packet.APIP(g), At: int64(h.eng.Now())}
	snr := make([]float64, packet.CSISubcarriers)
	for i := range snr {
		snr[i] = esnrDB
	}
	rep.QuantizeSNR(snr)
	_ = h.bh.Send(packet.APIP(g), packet.DomainControllerIP(h.city[g].Domain), rep)
}

func (h *fedHarness) run(d sim.Time) { h.eng.RunUntil(h.eng.Now() + d) }

// quickConfig shrinks the dwell times so tests converge in simulated
// milliseconds.
func quickConfig() federation.Config {
	cfg := federation.DefaultConfig()
	cfg.Hysteresis = 15 * sim.Millisecond
	cfg.Controller.Hysteresis = 20 * sim.Millisecond
	return cfg
}

// A vehicle client crossing from domain 0's corridor into domain 1's must
// be handed off: offer/accept/commit between the controllers, then a
// cross-domain stop→start→ack driven by the adopter — with the downlink
// index cursor and dedup window surviving the move.
func TestCrossDomainHandoffCompletes(t *testing.T) {
	h := newFedHarness(t, 2, 2, quickConfig())
	client := packet.ClientMAC(1)
	if err := h.tier.RegisterClient(client, packet.ClientIP(1), 0); err != nil {
		t.Fatal(err)
	}

	// Pre-handoff traffic: 5 downlink packets advance domain 0's index
	// cursor; one uplink packet charges the dedup window.
	for i := 0; i < 5; i++ {
		if err := h.tier.SendDownlink(&packet.Packet{ClientMAC: client, Bytes: 1400}); err != nil {
			t.Fatal(err)
		}
	}
	up := &packet.Packet{ClientMAC: client, SrcIP: packet.ClientIP(1), IPID: 777, Uplink: true, Bytes: 200}
	_ = h.bh.Send(packet.APIP(0), packet.DomainControllerIP(0), &packet.UpData{APSrc: packet.APIP(0), Pkt: up})
	h.run(2 * sim.Millisecond)

	// Drive across the boundary: AP0 (domain 0) fades, AP2 (domain 1)
	// strengthens. AP2's reports reach controller 1, which relays them to
	// the owner, controller 0 — the evidence that triggers the offer.
	for i := 0; i < 80 && h.doms[1].Stats.CrossSwitches == 0; i++ {
		h.feedCSI(client, 0, 6)
		h.feedCSI(client, 2, 22)
		h.run(2 * sim.Millisecond)
	}

	if h.tier.Owner(client) != 1 || !h.doms[1].Owns(client) {
		t.Fatalf("owner = %d, want domain 1", h.tier.Owner(client))
	}
	d0, d1 := h.doms[0].Stats, h.doms[1].Stats
	if d0.OffersSent != 1 || d0.Commits != 1 {
		t.Errorf("domain 0 stats = %+v, want 1 offer, 1 commit", d0)
	}
	if d1.Adoptions != 1 || d1.CrossSwitches != 1 {
		t.Errorf("domain 1 stats = %+v, want 1 adoption, 1 cross-switch", d1)
	}
	if got := h.tier.ServingAP(client); got != 2 {
		t.Errorf("serving AP = %d, want global 2", got)
	}
	if len(h.aps[0].stops) == 0 {
		t.Error("old domain's AP never received the cross-domain stop")
	}
	if len(h.aps[2].starts) == 0 {
		t.Error("new domain's AP never received the start")
	}
	if len(h.doms[0].Offered) != 1 || len(h.doms[1].Adopted) != 1 {
		t.Fatalf("handoff records: offered=%d adopted=%d", len(h.doms[0].Offered), len(h.doms[1].Adopted))
	}
	if rec := h.doms[1].Adopted[0]; rec.From != 0 || rec.To != 1 || rec.SwitchDuration <= 0 || rec.Forced {
		t.Errorf("adopted record = %+v", rec)
	}
	if rec := h.doms[0].Offered[0]; rec.OfferToCommit <= 0 || rec.FromAP != 0 || rec.ToAP != 2 {
		t.Errorf("offered record = %+v", rec)
	}

	// Index continuity: domain 1 continues the cursor at 5 — no reset, no
	// re-association gap in the 12-bit sequence.
	if idx := h.doms[1].Controller().NextDownIndex(client); idx != 5 {
		t.Errorf("adopted index cursor = %d, want 5", idx)
	}
	if err := h.tier.SendDownlink(&packet.Packet{ClientMAC: client, Bytes: 1400}); err != nil {
		t.Fatal(err)
	}
	h.run(2 * sim.Millisecond)
	found := false
	for _, ap := range h.aps[2:] { // domain 1's APs
		for _, dd := range ap.downs {
			if dd.Pkt.Index == 5 {
				found = true
			}
		}
	}
	if !found {
		t.Error("post-handoff downlink did not continue at index 5")
	}

	// Dedup continuity: replaying the pre-handoff uplink key at domain 1
	// must be recognized as a duplicate, not delivered again.
	_ = h.bh.Send(packet.APIP(2), packet.DomainControllerIP(1), &packet.UpData{APSrc: packet.APIP(2), Pkt: up})
	h.run(2 * sim.Millisecond)
	if dup := h.doms[1].Controller().Stats.UplinkDuplicate; dup != 1 {
		t.Errorf("uplink duplicates after handoff = %d, want 1 (dedup window transferred)", dup)
	}
}

// A handoff decision arriving while the inner controller has a switch in
// flight (stop sent, start pending) must be deferred, and the client must
// come out the other side unstranded: the intra-domain switch completes,
// then the cross-domain handoff proceeds.
func TestHandoffDeferredMidSwitch(t *testing.T) {
	cfg := quickConfig()
	cfg.Controller.Hysteresis = 0
	h := newFedHarness(t, 2, 2, cfg)
	client := packet.ClientMAC(1)
	if err := h.tier.RegisterClient(client, packet.ClientIP(1), 0); err != nil {
		t.Fatal(err)
	}
	h.aps[0].ack = false // strand the intra-domain switch AP0→AP1 in flight

	// AP1 (same domain) looks better → controller 0 starts a switch that
	// cannot complete; AP2 (domain 1) looks better still → the federation
	// layer must hold its offer.
	for i := 0; i < 10; i++ {
		h.feedCSI(client, 0, 5)
		h.feedCSI(client, 1, 15)
		h.run(2 * sim.Millisecond)
	}
	if h.doms[0].Controller().Stats.SwitchesStarted != 1 {
		t.Fatalf("setup: no intra-domain switch in flight")
	}
	for i := 0; i < 10; i++ {
		h.feedCSI(client, 2, 25)
		h.run(2 * sim.Millisecond)
	}
	if h.doms[0].Stats.OffersSent != 0 {
		t.Fatalf("offer sent while a switch was in flight")
	}

	// Un-jam the old AP: the stop retransmission completes the inner
	// switch, after which the still-superior foreign evidence may fire.
	h.aps[0].ack = true
	for i := 0; i < 100 && h.doms[1].Stats.CrossSwitches == 0; i++ {
		h.feedCSI(client, 1, 15)
		h.feedCSI(client, 2, 25)
		h.run(2 * sim.Millisecond)
	}

	if h.doms[0].Controller().Stats.SwitchesDone != 1 {
		t.Errorf("inner switch never completed: %+v", h.doms[0].Controller().Stats)
	}
	if h.doms[1].Stats.CrossSwitches != 1 {
		t.Fatalf("cross-domain switch never completed: %+v", h.doms[1].Stats)
	}
	if !h.doms[1].Owns(client) || h.tier.ServingAP(client) != 2 {
		t.Errorf("client stranded: owner=%d serving=%d", h.tier.Owner(client), h.tier.ServingAP(client))
	}
	// The client must not be left frozen: domain 1 can still switch it.
	if h.doms[0].Controller().ServingAP(client) != -1 {
		t.Error("old domain still holds client state after release")
	}
}

// An offer toward a dead controller must abort on timeout and leave the
// client owned, thawed, and switchable at home.
func TestOfferTimeoutAborts(t *testing.T) {
	h := newFedHarness(t, 2, 2, quickConfig())
	client := packet.ClientMAC(1)
	if err := h.tier.RegisterClient(client, packet.ClientIP(1), 0); err != nil {
		t.Fatal(err)
	}
	h.doms[1].Fail() // peer controller down: offers go unanswered

	// With controller 1 dead the AP2 relay path is dead too, so deliver the
	// foreign reports straight to the owner (exactly what the relay does).
	for i := 0; i < 12; i++ {
		h.feedCSI(client, 0, 6)
		rep := &packet.CSIReport{Client: client, AP: packet.APIP(2), At: int64(h.eng.Now())}
		snr := make([]float64, packet.CSISubcarriers)
		for j := range snr {
			snr[j] = 22
		}
		rep.QuantizeSNR(snr)
		_ = h.bh.Send(packet.DomainControllerIP(1), packet.DomainControllerIP(0), rep)
		h.run(2 * sim.Millisecond)
	}
	h.run(60 * sim.Millisecond) // past OfferTimeout

	if h.doms[0].Stats.OffersSent == 0 {
		t.Fatal("setup: no offer was ever sent")
	}
	if h.doms[0].Stats.Aborts == 0 {
		t.Error("unanswered offer never aborted")
	}
	if !h.doms[0].Owns(client) || h.tier.Owner(client) != 0 {
		t.Error("client lost its owner after an aborted offer")
	}
	// Thawed: the home controller can still run §3.1.1 switches (AP1 is
	// local and better than AP0).
	for i := 0; i < 60 && h.doms[0].Controller().Stats.SwitchesDone == 0; i++ {
		h.feedCSI(client, 0, 6)
		h.feedCSI(client, 1, 20)
		h.run(2 * sim.Millisecond)
	}
	if h.doms[0].Controller().Stats.SwitchesDone == 0 {
		t.Error("client left frozen after abort: home controller cannot switch it")
	}
}

// The commit carries released state, so it must survive loss: drop the
// first commit datagram and let the retransmission loop deliver it.
func TestCommitRetransmitOnLoss(t *testing.T) {
	h := newFedHarness(t, 2, 2, quickConfig())
	client := packet.ClientMAC(1)
	if err := h.tier.RegisterClient(client, packet.ClientIP(1), 0); err != nil {
		t.Fatal(err)
	}
	dropped := 0
	h.bh.Drop = func(to packet.IPv4Addr, msg packet.Message) bool {
		if c, ok := msg.(*packet.DomainHandoffCommit); ok && len(c.DedupKeys)+len(c.Evidence) > 0 && dropped == 0 {
			dropped++ // lose only the first full commit, not the slim echoes
			return true
		}
		return false
	}
	// Charge the dedup window so the full commit is distinguishable from
	// the slim announcement.
	up := &packet.Packet{ClientMAC: client, SrcIP: packet.ClientIP(1), IPID: 9, Uplink: true, Bytes: 100}
	_ = h.bh.Send(packet.APIP(0), packet.DomainControllerIP(0), &packet.UpData{APSrc: packet.APIP(0), Pkt: up})

	for i := 0; i < 120 && h.doms[1].Stats.CrossSwitches == 0; i++ {
		h.feedCSI(client, 0, 6)
		h.feedCSI(client, 2, 22)
		h.run(2 * sim.Millisecond)
	}

	if dropped != 1 {
		t.Fatalf("setup: commit was never dropped")
	}
	if h.doms[0].Stats.CommitRetransmits == 0 {
		t.Error("lost commit was never retransmitted")
	}
	if h.doms[1].Stats.Adoptions != 1 || h.doms[1].Stats.CrossSwitches != 1 {
		t.Fatalf("handoff never completed after commit loss: %+v", h.doms[1].Stats)
	}
	if !h.doms[1].Owns(client) {
		t.Error("ownership did not transfer")
	}
}

// If the old domain's AP never cooperates with the cross-domain stop, the
// adopter must escalate to a direct start after MaxStopRetries.
func TestCrossSwitchForcedStart(t *testing.T) {
	cfg := quickConfig()
	cfg.SwitchTimeout = 5 * sim.Millisecond
	cfg.MaxStopRetries = 3
	h := newFedHarness(t, 2, 2, cfg)
	client := packet.ClientMAC(1)
	if err := h.tier.RegisterClient(client, packet.ClientIP(1), 0); err != nil {
		t.Fatal(err)
	}
	h.aps[0].ack = false // the old AP ignores stops forever

	for i := 0; i < 150 && h.doms[1].Stats.CrossSwitches == 0; i++ {
		h.feedCSI(client, 0, 6)
		h.feedCSI(client, 2, 22)
		h.run(2 * sim.Millisecond)
	}

	st := h.doms[1].Stats
	if st.CrossSwitches != 1 || st.ForcedStarts != 1 {
		t.Fatalf("stats = %+v, want a forced cross-switch", st)
	}
	if len(h.doms[1].Adopted) != 1 || !h.doms[1].Adopted[0].Forced {
		t.Error("adopted record not marked forced")
	}
	if h.tier.ServingAP(client) != 2 {
		t.Errorf("serving = %d, want 2", h.tier.ServingAP(client))
	}
}

// Handoff counters and spans must land in the metrics registry under the
// federation component and the handoff tracker.
func TestFederationMetrics(t *testing.T) {
	h := newFedHarness(t, 2, 2, quickConfig())
	reg := metrics.NewRegistry()
	for _, d := range h.doms {
		d.UseMetrics(reg)
		d.Controller().UseMetrics(reg)
	}
	client := packet.ClientMAC(1)
	if err := h.tier.RegisterClient(client, packet.ClientIP(1), 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 80 && h.doms[1].Stats.CrossSwitches == 0; i++ {
		h.feedCSI(client, 0, 6)
		h.feedCSI(client, 2, 22)
		h.run(2 * sim.Millisecond)
	}
	snap := reg.Snapshot()
	get := func(name string) uint64 {
		for _, c := range snap.Counters {
			if c.Component == "federation" && c.Name == name {
				return c.Value
			}
		}
		return 0
	}
	if get("handoff_offers") != 1 || get("handoff_commits") != 1 {
		t.Errorf("counters: offers=%d commits=%d, want 1/1", get("handoff_offers"), get("handoff_commits"))
	}
	var handoffSpans, fedSwitchSpans int
	for _, sp := range snap.Spans {
		if sp.Tracker == metrics.HandoffSpanTracker {
			handoffSpans++
			if !sp.Completed || sp.Cause != metrics.CauseDomainHandoff {
				t.Errorf("handoff span = %+v", sp)
			}
		}
		if sp.Tracker == "" && sp.Cause == metrics.CauseDomainHandoff {
			fedSwitchSpans++
			if !sp.Completed {
				t.Errorf("fed switch span incomplete: %+v", sp)
			}
		}
	}
	if handoffSpans != 1 || fedSwitchSpans != 1 {
		t.Errorf("spans: handoff=%d fed-switch=%d, want 1/1", handoffSpans, fedSwitchSpans)
	}
}

// A handoff must carry the client's selection evidence whichever policy
// the domains run (DESIGN.md §15): all policies share the median-window
// evidence store, so the commit's quantized medians seed the adopter's
// selector and the handoff completes identically under each. Asserts, per
// policy: the adoption happens, the adopter runs the policy, and its
// selector holds warm evidence for the target AP immediately after the
// cross-domain switch.
func TestHandoffCarriesSelectorStateAllPolicies(t *testing.T) {
	for _, pol := range selector.Policies() {
		t.Run(string(pol), func(t *testing.T) {
			cfg := quickConfig()
			cfg.Controller.Selector.Policy = pol
			h := newFedHarness(t, 2, 2, cfg)
			client := packet.ClientMAC(1)
			if err := h.tier.RegisterClient(client, packet.ClientIP(1), 0); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 80 && h.doms[1].Stats.CrossSwitches == 0; i++ {
				h.feedCSI(client, 0, 6)
				h.feedCSI(client, 2, 22)
				h.run(2 * sim.Millisecond)
			}
			if h.tier.Owner(client) != 1 {
				t.Fatalf("owner = %d, want domain 1 (policy %s)", h.tier.Owner(client), pol)
			}
			adopter := h.doms[1].Controller()
			if got := adopter.SelectionPolicy(); got != pol {
				t.Fatalf("adopter policy = %s, want %s", got, pol)
			}
			// Local AP 0 of domain 1 is global AP 2 — the handoff target.
			// The adopter's selector must already hold usable evidence for
			// it (commit seeding plus relayed reports), not start blind.
			med, ok := adopter.MedianESNR(client, 0)
			if !ok || med < 15 {
				t.Fatalf("adopter median for target AP = %.1f, ok=%v — selector state did not survive the handoff", med, ok)
			}
			if got := h.tier.ServingAP(client); got != 2 {
				t.Fatalf("serving AP = %d, want global 2", got)
			}
			// Keep traffic flowing past the post-adoption hysteresis dwell:
			// the adopter's policy must evaluate the client (not just hold
			// it), and the tier-wide stats must sum the policy counters
			// from both domains' controllers.
			for i := 0; i < 20; i++ {
				h.feedCSI(client, 2, 22)
				h.run(3 * sim.Millisecond)
			}
			ts := h.tier.Stats()
			if ts.Ctl.SelectionDecisions == 0 {
				t.Fatalf("tier stats: selection decisions = 0, want > 0")
			}
			if pol == selector.GlobalAssignPolicy && ts.Ctl.AssignmentRounds == 0 {
				t.Fatalf("tier stats: assignment rounds = 0 under global-assign, want > 0")
			}
		})
	}
}
