package federation

import (
	"fmt"

	"wgtt/internal/controller"
	"wgtt/internal/packet"
)

// Tier is the wired-side view of a federated city (DESIGN.md §13): it holds
// every Domain and routes ingress — downlink packets, serving-AP queries —
// to the client's current owner. In simulation it stands where a single
// controller stood; in live mode each Domain is its own OS process and the
// Tier is not used (real ingress routing is the commit-driven DownData
// forwarding between controllers).
type Tier struct {
	Domains []*Domain

	// owner mirrors the domains' directory for O(1) ingress routing; it
	// flips at commit time via each Domain's OnRelease hook.
	owner map[packet.MACAddr]int

	// CrashTarget selects which domain a chaos ControllerCrash event hits
	// (the fault model crashes one controller instance at a time).
	CrashTarget int
}

// NewTier wires the domains together. Domain i must have ID i.
func NewTier(domains []*Domain) *Tier {
	t := &Tier{Domains: domains, owner: make(map[packet.MACAddr]int)}
	for i, d := range domains {
		if d.ID() != i {
			panic(fmt.Sprintf("federation: domain %d at tier slot %d", d.ID(), i))
		}
		prev := d.OnRelease
		d.OnRelease = func(mac packet.MACAddr, to int) {
			t.owner[mac] = to
			if prev != nil {
				prev(mac, to)
			}
		}
	}
	return t
}

// RegisterClient registers a client with every domain: owned by the domain
// holding its serving AP, remote everywhere else.
func (t *Tier) RegisterClient(mac packet.MACAddr, ip packet.IPv4Addr, servingGlobal int) error {
	if len(t.Domains) == 0 {
		return fmt.Errorf("federation: empty tier")
	}
	city := t.Domains[0].city
	if servingGlobal < 0 || servingGlobal >= len(city) {
		return fmt.Errorf("federation: serving AP %d out of range", servingGlobal)
	}
	own := city[servingGlobal].Domain
	for _, d := range t.Domains {
		if d.ID() == own {
			if err := d.RegisterClient(mac, ip, servingGlobal); err != nil {
				return err
			}
		} else {
			d.RegisterRemoteClient(mac, own)
		}
	}
	t.owner[mac] = own
	return nil
}

// SendDownlink hands one wired-side packet to the client's owning domain.
// During the ownership flip the packet lands on the adopting domain, which
// buffers it until the commit applies — no re-association gap.
func (t *Tier) SendDownlink(p *packet.Packet) error {
	own, ok := t.owner[p.ClientMAC]
	if !ok {
		return fmt.Errorf("federation: unknown client %v", p.ClientMAC)
	}
	return t.Domains[own].SendDownlink(p)
}

// ServingAP returns the global id of the AP serving the client, or -1,
// consulting the owner first and then any domain with a pre-staged view.
func (t *Tier) ServingAP(mac packet.MACAddr) int {
	if own, ok := t.owner[mac]; ok {
		if g := t.Domains[own].ServingGlobalAP(mac); g >= 0 {
			return g
		}
	}
	for _, d := range t.Domains {
		if g := d.ServingGlobalAP(mac); g >= 0 {
			return g
		}
	}
	return -1
}

// Owner returns the client's current owning domain (-1 if unknown).
func (t *Tier) Owner(mac packet.MACAddr) int {
	if own, ok := t.owner[mac]; ok {
		return own
	}
	return -1
}

// TierStats aggregates the whole tier.
type TierStats struct {
	Fed Stats
	Ctl controller.Stats
}

// Stats sums federation and inner-controller counters across domains.
func (t *Tier) Stats() TierStats {
	var ts TierStats
	for _, d := range t.Domains {
		f := d.Stats
		ts.Fed.OffersSent += f.OffersSent
		ts.Fed.OffersRecv += f.OffersRecv
		ts.Fed.OffersRejected += f.OffersRejected
		ts.Fed.Commits += f.Commits
		ts.Fed.Adoptions += f.Adoptions
		ts.Fed.Aborts += f.Aborts
		ts.Fed.CrossSwitches += f.CrossSwitches
		ts.Fed.ForcedStarts += f.ForcedStarts
		ts.Fed.StopRetransmits += f.StopRetransmits
		ts.Fed.CommitRetransmits += f.CommitRetransmits
		ts.Fed.CSIRelays += f.CSIRelays
		ts.Fed.UplinkRelays += f.UplinkRelays

		c := d.Controller().Stats
		ts.Ctl.CSIReports += c.CSIReports
		ts.Ctl.SwitchesStarted += c.SwitchesStarted
		ts.Ctl.SwitchesDone += c.SwitchesDone
		ts.Ctl.StopRetransmits += c.StopRetransmits
		ts.Ctl.UplinkUnique += c.UplinkUnique
		ts.Ctl.UplinkDuplicate += c.UplinkDuplicate
		ts.Ctl.DownlinkSent += c.DownlinkSent
		ts.Ctl.DownlinkCopies += c.DownlinkCopies
		ts.Ctl.HealthProbes += c.HealthProbes
		ts.Ctl.APsMarkedDead += c.APsMarkedDead
		ts.Ctl.APsReadmitted += c.APsReadmitted
		ts.Ctl.ForcedSwitches += c.ForcedSwitches
		ts.Ctl.ForcedStartRetransmits += c.ForcedStartRetransmits
		ts.Ctl.CtlDownlinkDropped += c.CtlDownlinkDropped
		ts.Ctl.SelectionDecisions += c.SelectionDecisions
		ts.Ctl.PredictiveEarlySwitches += c.PredictiveEarlySwitches
		ts.Ctl.AssignmentRounds += c.AssignmentRounds
	}
	return ts
}

// Fail implements chaos.ControllerTarget against the CrashTarget domain.
func (t *Tier) Fail() { t.Domains[t.CrashTarget].Fail() }

// Recover implements chaos.ControllerTarget.
func (t *Tier) Recover() { t.Domains[t.CrashTarget].Recover() }

// Down implements chaos.ControllerTarget.
func (t *Tier) Down() bool { return t.Domains[t.CrashTarget].Down() }
