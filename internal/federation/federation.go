// Package federation is the city-scale controller tier (DESIGN.md §13). The
// paper runs one controller per corridor (§3); a transit city is a graph of
// corridors, each owned by its own controller *domain* — a controller
// instance plus the set of APs it commands. Clients are sharded by
// ownership: exactly one domain runs the §3.1.1 selection rule and §3.1.2
// switching protocol for each client at any time. When a client's best ESNR
// evidence crosses into a neighboring domain, the owning controller exports
// the client's volatile state — 12-bit downlink index cursor, uplink dedup
// window, current association, ESNR history — over the backhaul via the
// DomainHandoffOffer/Accept/Commit wire messages, and the adopting
// controller resumes the stop→start→ack protocol itself, pulling the client
// onto its own AP without a re-association gap.
//
// A Domain wraps a controller.Controller: it attaches itself at the
// domain's backhaul address (packet.DomainControllerIP) in the controller's
// place, intercepts federation traffic, and forwards everything else to the
// inner controller. The inner controller is unaware of the tier — it only
// exposes adopt/release/freeze hooks. Like every protocol core in this
// repo, a Domain is clock- and transport-agnostic (DESIGN.md §12): the same
// code runs deterministically on runtime.Virtual over the in-memory switch
// and on wall clocks over real UDP sockets between OS processes.
package federation

import (
	"fmt"

	"wgtt/internal/backhaul"
	"wgtt/internal/controller"
	"wgtt/internal/metrics"
	"wgtt/internal/packet"
	"wgtt/internal/runtime"
	"wgtt/internal/sim"
)

// Config parameterizes one federation domain. The cross-domain decision
// rule deliberately runs coarser than the intra-domain §3.1.1 rule: a
// handoff moves ownership, state, and the client's switch, so it should
// fire when the vehicle has clearly crossed the boundary, not on a median
// flicker.
type Config struct {
	// Controller is the inner per-domain controller configuration; NewDomain
	// overrides Addr and SwitchIDBase per domain.
	Controller controller.Config

	// Window is the foreign-evidence median window (the federation-layer
	// counterpart of the controller's §3.1.1 window).
	Window sim.Time
	// MinSamples is the minimum in-window foreign readings before an AP's
	// median counts as handoff evidence.
	MinSamples int
	// MarginDB requires the best foreign median to beat the best local
	// median by this much before a handoff is offered.
	MarginDB float64
	// MinESNRdB floors the foreign evidence: a neighbor domain whose best AP
	// cannot even carry MCS0 is not worth a handoff.
	MinESNRdB float64
	// Hysteresis is the minimum dwell between handoffs of one client —
	// applied on both sides of the boundary, so a freshly adopted client is
	// not immediately bounced back.
	Hysteresis sim.Time

	// OfferTimeout bounds the offer→accept wait; expiry aborts the handoff
	// and the client stays with its owner.
	OfferTimeout sim.Time
	// CommitTimeout paces commit retransmission until the adopter's
	// ownership announcement echoes back.
	CommitTimeout sim.Time
	// MaxCommitRetries bounds commit retransmission.
	MaxCommitRetries int
	// SwitchTimeout paces the adopter's cross-domain stop retransmission.
	SwitchTimeout sim.Time
	// MaxStopRetries bounds stops toward the old domain's AP before the
	// adopter escalates to a direct start (the old AP is unreachable — the
	// same no-cooperation fallback as DESIGN.md §11 failover).
	MaxStopRetries int
	// MaxDedupKeys bounds the dedup window exported in a commit (clamped to
	// packet.MaxHandoffDedupKeys).
	MaxDedupKeys int
}

// DefaultConfig returns the standard federation operating point.
func DefaultConfig() Config {
	return Config{
		Controller:       controller.DefaultConfig(),
		Window:           10 * sim.Millisecond,
		MinSamples:       2,
		MarginDB:         3,
		MinESNRdB:        -5,
		Hysteresis:       250 * sim.Millisecond,
		OfferTimeout:     30 * sim.Millisecond,
		CommitTimeout:    30 * sim.Millisecond,
		MaxCommitRetries: 8,
		SwitchTimeout:    30 * sim.Millisecond,
		MaxStopRetries:   8,
		MaxDedupKeys:     packet.MaxHandoffDedupKeys,
	}
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Window <= 0 {
		c.Window = d.Window
	}
	if c.MinSamples <= 0 {
		c.MinSamples = d.MinSamples
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = d.Hysteresis
	}
	if c.OfferTimeout <= 0 {
		c.OfferTimeout = d.OfferTimeout
	}
	if c.CommitTimeout <= 0 {
		c.CommitTimeout = d.CommitTimeout
	}
	if c.MaxCommitRetries <= 0 {
		c.MaxCommitRetries = d.MaxCommitRetries
	}
	if c.SwitchTimeout <= 0 {
		c.SwitchTimeout = d.SwitchTimeout
	}
	if c.MaxStopRetries <= 0 {
		c.MaxStopRetries = d.MaxStopRetries
	}
	if c.MaxDedupKeys <= 0 || c.MaxDedupKeys > packet.MaxHandoffDedupKeys {
		c.MaxDedupKeys = packet.MaxHandoffDedupKeys
	}
	return c
}

// APAssignment places one AP of the city in a domain. The city table —
// every AP, indexed by global ID — is shared by all domains, so each can
// map any backhaul address to (domain, global ID).
type APAssignment struct {
	ID     int // global AP id (== index in the city table)
	Domain int
	IP     packet.IPv4Addr
	MAC    packet.MACAddr
}

// Stats counts one domain's federation activity.
type Stats struct {
	OffersSent        uint64 // handoffs this domain offered away
	OffersRecv        uint64 // offers received from peers
	OffersRejected    uint64 // received offers this domain declined
	Commits           uint64 // commits sent (ownership released)
	Adoptions         uint64 // commits applied (ownership assumed)
	Aborts            uint64 // handoffs abandoned (timeout, rejection, crash)
	CrossSwitches     uint64 // completed cross-domain stop→start→acks
	ForcedStarts      uint64 // cross-domain switches escalated to direct start
	StopRetransmits   uint64
	CommitRetransmits uint64
	CSIRelays         uint64 // foreign-owned CSI reports relayed to their owner
	UplinkRelays      uint64 // foreign-owned uplink relayed to their owner
}

// HandoffRecord is one cross-domain handoff event for the evaluation
// timeline. The offering domain records the offer→commit transfer; the
// adopting domain records the switch it then drove.
type HandoffRecord struct {
	At       sim.Time
	Client   packet.MACAddr
	From, To int // domain ids
	FromAP   int // global AP ids
	ToAP     int
	// OfferToCommit is the transfer time (offering side; zero on adopting
	// side records).
	OfferToCommit sim.Time
	// SwitchDuration is stop sent → ack received for the cross-domain
	// switch (adopting side; zero on offering side records).
	SwitchDuration sim.Time
	// Forced marks a cross-domain switch completed via direct start.
	Forced bool
}

// fedMetrics holds the domain's observability handles (all nil-safe).
type fedMetrics struct {
	offers       *metrics.Counter
	commits      *metrics.Counter
	aborts       *metrics.Counter
	csiRelays    *metrics.Counter
	uplinkRelays *metrics.Counter
	handoffSpans *metrics.SpanTracker
	switchSpans  *metrics.SpanTracker
}

// UseMetrics wires the domain's instruments into r (nil disables).
func (d *Domain) UseMetrics(r *metrics.Registry) {
	d.met = fedMetrics{
		offers:       r.Counter("federation", "handoff_offers"),
		commits:      r.Counter("federation", "handoff_commits"),
		aborts:       r.Counter("federation", "handoff_aborts"),
		csiRelays:    r.Counter("federation", "csi_relays"),
		uplinkRelays: r.Counter("federation", "uplink_relays"),
		handoffSpans: r.HandoffSpans(),
		switchSpans:  r.SwitchSpans(),
	}
}

// fedClient is the federation-layer state of a client this domain owns.
type fedClient struct {
	mac packet.MACAddr
	ip  packet.IPv4Addr
	// foreign holds per-foreign-AP evidence windows; foreignOrder lists
	// their keys in first-heard order (deterministic iteration).
	foreign      map[packet.IPv4Addr]*evWindow
	foreignOrder []packet.IPv4Addr
	lastHandoff  sim.Time
	out          *outHandoff // in-flight outgoing offer, nil when idle
}

// outHandoff is one offered-away handoff awaiting accept.
type outHandoff struct {
	id        uint32
	peer      int // target domain
	target    packet.IPv4Addr
	offeredAt sim.Time
	timer     runtime.Timer
}

// release is a committed transfer awaiting the adopter's announcement echo.
type release struct {
	id      uint32
	mac     packet.MACAddr
	peer    int
	commit  *packet.DomainHandoffCommit
	retries int
	timer   runtime.Timer
}

// adoption is one incoming handoff: accepted (awaiting commit) or adopted
// (driving the cross-domain switch).
type adoption struct {
	id          uint32
	client      packet.MACAddr
	ip          packet.IPv4Addr
	fromDomain  int
	oldAP       packet.IPv4Addr // foreign AP to stop
	target      packet.IPv4Addr // local AP taking over
	targetLocal int
	adopted     bool
	forced      bool
	stopSentAt  sim.Time
	attempts    int
	timer       runtime.Timer
}

// Domain is one federation controller instance: an inner
// controller.Controller owning a contiguous set of APs, plus the handoff
// state machines that move clients between domains.
type Domain struct {
	cfg  Config
	id   int
	addr packet.IPv4Addr
	clk  runtime.Clock
	bh   backhaul.Fabric
	ctl  *controller.Controller

	city     []APAssignment
	local    []controller.APInfo     // this domain's APs; local id = index
	globalOf []int                   // local id → global id
	localOf  map[packet.IPv4Addr]int // own-domain AP IP → local id
	apDomain map[packet.IPv4Addr]int // any AP IP → domain
	apGlobal map[packet.IPv4Addr]int // any AP IP → global id
	domains  []int                   // sorted domain ids present in the city
	ctlAddr  map[packet.IPv4Addr]int // controller addr → domain id

	// owner is this domain's view of the client→domain directory; owned
	// holds federation state for the clients it owns itself.
	owner map[packet.MACAddr]int
	owned map[packet.MACAddr]*fedClient

	released   map[uint32]*release
	inbound    map[uint32]*adoption
	byClient   map[packet.MACAddr]*adoption
	adoptedIDs map[uint32]bool // commits already applied (retransmit dedup)

	// pendingDown buffers downlink routed here between the owner's release
	// and the commit's arrival; drained in order at adoption.
	pendingDown map[packet.MACAddr][]*packet.Packet

	handoffSeq uint32
	// csiScratch is the reusable subcarrier unpack buffer (single protocol
	// goroutine, same pattern as the inner controller's).
	csiScratch []float64

	// OnSwitch observes every completed switch in this domain — inner
	// switches re-addressed to global AP ids, plus the cross-domain ones the
	// federation layer drives itself.
	OnSwitch func(rec controller.SwitchRecord)
	// OnRelease observes ownership leaving this domain (commit sent); the
	// Tier uses it to flip sim-side downlink routing.
	OnRelease func(mac packet.MACAddr, to int)
	// OnHandoffComplete observes each cross-domain switch completion on the
	// adopting side.
	OnHandoffComplete func(rec HandoffRecord)

	Stats Stats
	// Offered and Adopted are the two halves of the handoff timeline: what
	// this domain handed away, and what it took over.
	Offered []HandoffRecord
	Adopted []HandoffRecord

	met fedMetrics
}

// NewDomain builds the controller for domain id over the given city table
// and attaches it (wrapping its inner controller) to the backhaul at
// packet.DomainControllerIP(id).
func NewDomain(cfg Config, clk runtime.Clock, bh backhaul.Fabric, id int, city []APAssignment) *Domain {
	cfg = cfg.withDefaults()
	d := &Domain{
		cfg:         cfg,
		id:          id,
		addr:        packet.DomainControllerIP(id),
		clk:         clk,
		bh:          bh,
		city:        city,
		localOf:     make(map[packet.IPv4Addr]int),
		apDomain:    make(map[packet.IPv4Addr]int, len(city)),
		apGlobal:    make(map[packet.IPv4Addr]int, len(city)),
		ctlAddr:     make(map[packet.IPv4Addr]int),
		owner:       make(map[packet.MACAddr]int),
		owned:       make(map[packet.MACAddr]*fedClient),
		released:    make(map[uint32]*release),
		inbound:     make(map[uint32]*adoption),
		byClient:    make(map[packet.MACAddr]*adoption),
		adoptedIDs:  make(map[uint32]bool),
		pendingDown: make(map[packet.MACAddr][]*packet.Packet),
		handoffSeq:  handoffIDBase(id),
	}
	seen := map[int]bool{}
	for _, a := range city {
		d.apDomain[a.IP] = a.Domain
		d.apGlobal[a.IP] = a.ID
		if !seen[a.Domain] {
			seen[a.Domain] = true
			d.domains = append(d.domains, a.Domain)
			d.ctlAddr[packet.DomainControllerIP(a.Domain)] = a.Domain
		}
		if a.Domain == id {
			li := len(d.local)
			d.local = append(d.local, controller.APInfo{ID: li, IP: a.IP, MAC: a.MAC})
			d.localOf[a.IP] = li
			d.globalOf = append(d.globalOf, a.ID)
		}
	}
	sortInts(d.domains)
	ctlCfg := cfg.Controller
	ctlCfg.Addr = d.addr
	ctlCfg.SwitchIDBase = switchIDBase(id)
	d.ctl = controller.New(ctlCfg, clk, bh, d.local)
	d.ctl.OnSwitch = func(rec controller.SwitchRecord) {
		rec.From = d.globalOf[rec.From]
		rec.To = d.globalOf[rec.To]
		if d.OnSwitch != nil {
			d.OnSwitch(rec)
		}
	}
	// The inner controller attached itself at d.addr; wrap it.
	bh.Attach(d.addr, d)
	return d
}

// switchIDBase spreads the inner controllers' switch/recovery ID sequences
// so domains sharing a backhaul and metrics registry never collide;
// handoffIDBase sets bit 23 so federation-driven switch IDs live in their
// own half of each domain's block.
func switchIDBase(id int) uint32  { return uint32(id) << 24 }
func handoffIDBase(id int) uint32 { return uint32(id)<<24 | 1<<23 }

// ID returns the domain id.
func (d *Domain) ID() int { return d.id }

// Addr returns the domain controller's backhaul address.
func (d *Domain) Addr() packet.IPv4Addr { return d.addr }

// Controller exposes the inner controller (stats, evaluation hooks).
func (d *Domain) Controller() *controller.Controller { return d.ctl }

// addrOf returns the controller address of a domain.
func (d *Domain) addrOf(dom int) packet.IPv4Addr { return packet.DomainControllerIP(dom) }

// RegisterClient installs a client owned by this domain, serving from the
// given global AP (which must lie in this domain).
func (d *Domain) RegisterClient(mac packet.MACAddr, ip packet.IPv4Addr, servingGlobal int) error {
	a := d.city[servingGlobal]
	li, ok := d.localOf[a.IP]
	if !ok {
		return fmt.Errorf("federation: AP %d is not in domain %d", servingGlobal, d.id)
	}
	d.ctl.RegisterClient(mac, ip, li)
	d.owner[mac] = d.id
	d.owned[mac] = &fedClient{mac: mac, ip: ip, foreign: make(map[packet.IPv4Addr]*evWindow)}
	return nil
}

// RegisterRemoteClient records a client owned by another domain, so this
// domain relays its CSI and uplink to the owner instead of acting on them.
func (d *Domain) RegisterRemoteClient(mac packet.MACAddr, owner int) {
	d.owner[mac] = owner
}

// Owns reports whether this domain currently owns the client.
func (d *Domain) Owns(mac packet.MACAddr) bool { return d.owner[mac] == d.id && d.owned[mac] != nil }

// ServingGlobalAP returns the global id of the AP serving the client, or
// -1. During an incoming handoff (accepted, commit not yet applied) it
// reports the old domain's serving AP from the offer.
func (d *Domain) ServingGlobalAP(mac packet.MACAddr) int {
	if d.Owns(mac) {
		if s := d.ctl.ServingAP(mac); s >= 0 && s < len(d.globalOf) {
			return d.globalOf[s]
		}
		return -1
	}
	if ad := d.byClient[mac]; ad != nil && !ad.adopted {
		if g, ok := d.apGlobal[ad.oldAP]; ok {
			return g
		}
	}
	return -1
}

// SendDownlink accepts one downlink packet for a client. Owned clients go
// to the inner controller (which assigns the 12-bit index and fans out);
// packets for a client whose adoption is still in flight are buffered and
// drained, in order, the moment the commit lands — that buffering is what
// closes the re-association gap. Packets for clients owned elsewhere are
// forwarded to the owner over the backhaul.
func (d *Domain) SendDownlink(p *packet.Packet) error {
	if d.Owns(p.ClientMAC) {
		return d.ctl.SendDownlink(p)
	}
	own, known := d.owner[p.ClientMAC]
	if !known {
		return fmt.Errorf("federation: unknown client %v", p.ClientMAC)
	}
	if own == d.id || d.byClient[p.ClientMAC] != nil {
		// Ours-to-be: a commit naming us is in flight. Hold the packet.
		d.pendingDown[p.ClientMAC] = append(d.pendingDown[p.ClientMAC], p)
		return nil
	}
	return d.bh.Send(d.addr, d.addrOf(own), &packet.DownData{APDst: d.addrOf(own), Pkt: p})
}

// HandleBackhaul implements backhaul.Node: federation traffic is handled
// here, everything else forwards to the inner controller.
func (d *Domain) HandleBackhaul(from packet.IPv4Addr, msg packet.Message) {
	if d.ctl.Down() {
		return // a crashed controller hears nothing, its federation half included
	}
	switch m := msg.(type) {
	case *packet.CSIReport:
		d.handleCSI(from, m)
	case *packet.UpData:
		d.handleUplink(from, m)
	case *packet.DownData:
		// Downlink forwarded controller→controller for a client that moved.
		d.routeForwardedDown(m)
	case *packet.AssocSync:
		if own, known := d.owner[m.Client]; known && own != d.id {
			return // replicated association of a foreign-owned client
		}
		d.ctl.HandleBackhaul(from, msg)
		if _, known := d.owner[m.Client]; !known {
			d.owner[m.Client] = d.id
			d.owned[m.Client] = &fedClient{mac: m.Client, ip: m.ClientIP, foreign: make(map[packet.IPv4Addr]*evWindow)}
		}
	case *packet.DomainHandoffOffer:
		d.handleOffer(from, m)
	case *packet.DomainHandoffAccept:
		d.handleAccept(m)
	case *packet.DomainHandoffCommit:
		d.handleCommit(m)
	case *packet.SwitchAck:
		if d.completeCrossSwitch(m) {
			return
		}
		d.ctl.HandleBackhaul(from, msg)
	default:
		d.ctl.HandleBackhaul(from, msg)
	}
}

// routeForwardedDown re-routes a controller-forwarded downlink packet.
func (d *Domain) routeForwardedDown(m *packet.DownData) {
	_ = d.SendDownlink(m.Pkt)
}

// handleCSI routes one CSI report: own client + own AP → inner controller;
// own client + foreign AP → handoff evidence; foreign client → relay to its
// owner.
func (d *Domain) handleCSI(from packet.IPv4Addr, m *packet.CSIReport) {
	apDom, knownAP := d.apDomain[m.AP]
	if !knownAP {
		return
	}
	own, known := d.owner[m.Client]
	if !known {
		return
	}
	if own == d.id {
		fc := d.owned[m.Client]
		if fc == nil {
			return
		}
		if apDom == d.id {
			d.ctl.HandleBackhaul(from, m)
			return
		}
		d.ingestForeign(fc, m)
		return
	}
	if from == d.addrOf(own) {
		return // stale-directory loop guard: never bounce back to the sender
	}
	d.Stats.CSIRelays++
	d.met.csiRelays.Inc()
	_ = d.bh.Send(d.addr, d.addrOf(own), m)
}

// handleUplink forwards own-client (and unknown-client) uplink to the inner
// controller's dedup path, and relays foreign-owned uplink to the owner.
func (d *Domain) handleUplink(from packet.IPv4Addr, m *packet.UpData) {
	own, known := d.owner[m.Pkt.ClientMAC]
	if !known || own == d.id {
		d.ctl.HandleBackhaul(from, m)
		return
	}
	if from == d.addrOf(own) {
		return
	}
	d.Stats.UplinkRelays++
	d.met.uplinkRelays.Inc()
	_ = d.bh.Send(d.addr, d.addrOf(own), m)
}

// sortInts sorts a small int slice ascending (insertion sort — the domain
// list is a handful of entries).
func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
