package federation

import (
	"math"
	"sort"

	"wgtt/internal/sim"
)

// evWindow is the federation-layer sliding ESNR window: the same windowed
// median the controller runs per (client, AP) for §3.1.1 selection, kept at
// the federation layer for APs outside the inner controller's domain —
// foreign evidence the inner controller must never see (its AP table is
// local-only). Pushes arrive in time order, so expiry trims from the front.
type evWindow struct {
	span sim.Time
	at   []sim.Time
	val  []float64
}

func (w *evWindow) push(t sim.Time, v float64) {
	w.at = append(w.at, t)
	w.val = append(w.val, v)
	w.trim(t)
}

func (w *evWindow) trim(now sim.Time) {
	cut := 0
	for cut < len(w.at) && w.at[cut] < now-w.span {
		cut++
	}
	if cut > 0 {
		w.at = append(w.at[:0], w.at[cut:]...)
		w.val = append(w.val[:0], w.val[cut:]...)
	}
}

// median returns the upper median of the in-window samples and their count.
func (w *evWindow) median(now sim.Time) (float64, int) {
	w.trim(now)
	n := len(w.val)
	if n == 0 {
		return 0, 0
	}
	s := append([]float64(nil), w.val...)
	sort.Float64s(s)
	return s[n/2], n
}

// quantQ quantizes a dB figure to the wire's 0.25 dB steps.
func quantQ(db float64) int16 {
	q := math.Round(db * 4)
	if q > math.MaxInt16 {
		q = math.MaxInt16
	}
	if q < math.MinInt16 {
		q = math.MinInt16
	}
	return int16(q)
}

// dequantQ is the inverse.
func dequantQ(q int16) float64 { return float64(q) / 4 }

// QuantizeEvidenceDB converts a dB figure to the 0.25 dB wire quantization
// used by the handoff evidence fields (packet.APESNR.QuantizedDB and
// DomainHandoffOffer.EvidenceQ). Exported for the metro's cell-to-cell
// evidence transfer, which marshals real handoff packets between cell
// simulations (DESIGN.md §17).
func QuantizeEvidenceDB(db float64) int16 { return quantQ(db) }

// DequantizeEvidenceDB is the inverse of QuantizeEvidenceDB.
func DequantizeEvidenceDB(q int16) float64 { return dequantQ(q) }
