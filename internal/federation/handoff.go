package federation

import (
	"math"

	"wgtt/internal/controller"
	"wgtt/internal/csi"
	"wgtt/internal/metrics"
	"wgtt/internal/packet"
	"wgtt/internal/sim"
)

// This file is the inter-controller handoff protocol (DESIGN.md §13). Three
// messages move a client between domains:
//
//	owner A                         adopter B
//	  | ── DomainHandoffOffer ──────→ |   A's evidence says B's AP is best
//	  | ←── DomainHandoffAccept ───── |   B pre-stages the adoption
//	  | ── DomainHandoffCommit ──────→|   state bundle; A has released
//	  |                               |   B adopts, then drives §3.1.2
//	  | ←── slim Commit (announce) ── |   echo to A + directory update to all
//
// The commit is self-contained and authoritative: once A sends it, A has
// released the client, so B applies any commit naming one of its APs even
// if its accept state is gone. A retransmits the commit until B's
// announcement echoes back; B deduplicates by handoff id.

// ingestForeign folds one foreign-AP CSI report into the client's evidence
// windows and re-evaluates the cross-domain handoff rule.
func (d *Domain) ingestForeign(fc *fedClient, m *packet.CSIReport) {
	w := fc.foreign[m.AP]
	if w == nil {
		w = &evWindow{span: d.cfg.Window}
		fc.foreign[m.AP] = w
		fc.foreignOrder = append(fc.foreignOrder, m.AP)
	}
	d.csiScratch = m.SNRdBInto(d.csiScratch)
	now := d.clk.Now()
	w.push(now, csi.ESNRdB(d.csiScratch, csi.DefaultESNRModulation))
	d.maybeOffer(fc, now)
}

// maybeOffer runs the cross-domain counterpart of §3.1.1: offer the client
// away when the best foreign windowed median beats the best local one by
// MarginDB. Deliberately conservative — an offer is deferred while the
// inner controller has a switch in flight (stop sent, start pending), while
// a handoff is already outstanding, and inside the hysteresis dwell.
func (d *Domain) maybeOffer(fc *fedClient, now sim.Time) {
	if fc.out != nil || d.byClient[fc.mac] != nil {
		return
	}
	if d.ctl.InFlightSwitch(fc.mac) {
		return // let the intra-domain stop→start→ack finish first
	}
	if now-fc.lastHandoff < d.cfg.Hysteresis {
		return
	}
	var bestAP packet.IPv4Addr
	bestMed := math.Inf(-1)
	for _, apIP := range fc.foreignOrder {
		if med, n := fc.foreign[apIP].median(now); n >= d.cfg.MinSamples && med > bestMed {
			bestMed, bestAP = med, apIP
		}
	}
	if bestAP.IsZero() || bestMed < d.cfg.MinESNRdB {
		return
	}
	serving := d.ctl.ServingAP(fc.mac)
	if serving < 0 {
		return
	}
	bestLocal := math.Inf(-1)
	haveLocal := false
	for li := range d.local {
		if med, ok := d.ctl.MedianESNR(fc.mac, li); ok && med > bestLocal {
			bestLocal, haveLocal = med, true
		}
	}
	if haveLocal && bestMed < bestLocal+d.cfg.MarginDB {
		return
	}
	if !haveLocal {
		bestLocal = 0
	}
	d.handoffSeq++
	id := d.handoffSeq
	peer := d.apDomain[bestAP]
	fc.out = &outHandoff{id: id, peer: peer, target: bestAP, offeredAt: now}
	d.ctl.SetFrozen(fc.mac, true)
	d.Stats.OffersSent++
	d.met.offers.Inc()
	d.met.handoffSpans.Begin(id, int64(now), fc.mac.String(),
		d.globalOf[serving], d.apGlobal[bestAP], metrics.CauseDomainHandoff, bestLocal, bestMed)
	_ = d.bh.Send(d.addr, d.addrOf(peer), &packet.DomainHandoffOffer{
		HandoffID: id, Client: fc.mac, ClientIP: fc.ip,
		ServingAP: d.local[serving].IP, TargetAP: bestAP, EvidenceQ: quantQ(bestMed),
	})
	fc.out.timer = d.clk.After(d.cfg.OfferTimeout, func() { d.offerTimeout(fc, id) })
}

// offerTimeout abandons an unanswered offer: the client stays owned, thaws,
// and the hysteresis clock restarts so a dead peer is not hammered.
func (d *Domain) offerTimeout(fc *fedClient, id uint32) {
	if d.ctl.Down() || fc.out == nil || fc.out.id != id || d.owned[fc.mac] != fc {
		return
	}
	fc.out = nil
	fc.lastHandoff = d.clk.Now()
	d.ctl.SetFrozen(fc.mac, false)
	d.Stats.Aborts++
	d.met.aborts.Inc()
}

// handleOffer is the adopter's half of the offer: validate that the target
// AP is ours and the client state is clean, pre-stage the adoption (so
// serving-AP queries and early downlink already resolve), and accept.
func (d *Domain) handleOffer(from packet.IPv4Addr, m *packet.DomainHandoffOffer) {
	d.Stats.OffersRecv++
	reply := func(accept bool) {
		if !accept {
			d.Stats.OffersRejected++
		}
		_ = d.bh.Send(d.addr, from, &packet.DomainHandoffAccept{
			HandoffID: m.HandoffID, Client: m.Client, Accept: accept,
		})
	}
	tl, ok := d.localOf[m.TargetAP]
	if !ok || d.Owns(m.Client) || d.adoptedIDs[m.HandoffID] {
		reply(false)
		return
	}
	fromDom, ok := d.ctlAddr[from]
	if !ok {
		reply(false)
		return
	}
	if prev := d.byClient[m.Client]; prev != nil {
		// Duplicate of the adoption already staged → re-accept idempotently;
		// a competing handoff for the same client → decline.
		reply(prev.id == m.HandoffID)
		return
	}
	ad := &adoption{
		id: m.HandoffID, client: m.Client, ip: m.ClientIP,
		fromDomain: fromDom, oldAP: m.ServingAP, target: m.TargetAP, targetLocal: tl,
	}
	d.inbound[ad.id] = ad
	d.byClient[ad.client] = ad
	// Hold the pre-staged state long enough for the full commit-retransmit
	// schedule; if no commit ever lands (the offerer died), drop it.
	hold := d.cfg.CommitTimeout * sim.Time(d.cfg.MaxCommitRetries+2)
	ad.timer = d.clk.After(hold, func() { d.acceptTimeout(ad) })
	reply(true)
}

// acceptTimeout drops a pre-staged adoption whose commit never arrived.
func (d *Domain) acceptTimeout(ad *adoption) {
	if d.ctl.Down() || ad.adopted || d.inbound[ad.id] != ad {
		return
	}
	delete(d.inbound, ad.id)
	if d.byClient[ad.client] == ad {
		delete(d.byClient, ad.client)
	}
	delete(d.pendingDown, ad.client)
	d.Stats.Aborts++
	d.met.aborts.Inc()
}

// handleAccept is the owner's half of the accept: on rejection, thaw and
// back off; on acceptance, export the state bundle and release ownership.
func (d *Domain) handleAccept(m *packet.DomainHandoffAccept) {
	fc := d.owned[m.Client]
	if fc == nil || fc.out == nil || fc.out.id != m.HandoffID {
		return
	}
	out := fc.out
	out.timer.Stop()
	fc.out = nil
	now := d.clk.Now()
	fc.lastHandoff = now
	if !m.Accept {
		d.ctl.SetFrozen(m.Client, false)
		d.Stats.Aborts++
		d.met.aborts.Inc()
		return
	}
	// The state bundle: downlink index cursor, dedup window, association,
	// and the per-target-domain ESNR evidence (so the adopter's windows
	// start warm instead of blind).
	serving := d.ctl.ServingAP(m.Client)
	var servingIP packet.IPv4Addr
	servingGlobal := -1
	if serving >= 0 {
		servingIP = d.local[serving].IP
		servingGlobal = d.globalOf[serving]
	}
	var ev []packet.APESNR
	for _, apIP := range fc.foreignOrder {
		if d.apDomain[apIP] != out.peer {
			continue
		}
		if med, n := fc.foreign[apIP].median(now); n >= d.cfg.MinSamples {
			ev = append(ev, packet.APESNR{AP: apIP, MedianQ: quantQ(med)})
			if len(ev) == packet.MaxHandoffEvidence {
				break
			}
		}
	}
	commit := &packet.DomainHandoffCommit{
		HandoffID: out.id, Client: m.Client, ClientIP: fc.ip,
		ServingAP: servingIP, TargetAP: out.target,
		NextIndex: d.ctl.NextDownIndex(m.Client),
		DedupKeys: d.ctl.DedupWindow(m.Client, d.cfg.MaxDedupKeys),
		Evidence:  ev,
	}
	_ = d.bh.Send(d.addr, d.addrOf(out.peer), commit)
	d.ctl.ReleaseClient(m.Client)
	delete(d.owned, m.Client)
	d.owner[m.Client] = out.peer
	d.Stats.Commits++
	d.met.commits.Inc()
	d.met.handoffSpans.End(out.id, int64(now))
	d.Offered = append(d.Offered, HandoffRecord{
		At: now, Client: m.Client, From: d.id, To: out.peer,
		FromAP: servingGlobal, ToAP: d.apGlobal[out.target],
		OfferToCommit: now - out.offeredAt,
	})
	rel := &release{id: out.id, mac: m.Client, peer: out.peer, commit: commit}
	d.released[rel.id] = rel
	rel.timer = d.clk.After(d.cfg.CommitTimeout, func() { d.retryCommit(rel) })
	if d.OnRelease != nil {
		d.OnRelease(m.Client, out.peer)
	}
}

// retryCommit retransmits an unacknowledged commit. The client is already
// released — the commit MUST land, so it is the one federation message with
// its own reliability loop (the offer may die silently; a commit may not).
func (d *Domain) retryCommit(rel *release) {
	if d.ctl.Down() || d.released[rel.id] != rel {
		return
	}
	if rel.retries >= d.cfg.MaxCommitRetries {
		delete(d.released, rel.id)
		return
	}
	rel.retries++
	d.Stats.CommitRetransmits++
	_ = d.bh.Send(d.addr, d.addrOf(rel.peer), rel.commit)
	rel.timer = d.clk.After(d.cfg.CommitTimeout, func() { d.retryCommit(rel) })
}

// handleCommit dispatches on whose domain the target AP is in: ours → adopt
// the client; someone else's → it is the adopter's announcement (stop
// retransmitting if it echoes one of our releases, and update the
// directory either way).
func (d *Domain) handleCommit(m *packet.DomainHandoffCommit) {
	tgtDom, ok := d.apDomain[m.TargetAP]
	if !ok {
		return
	}
	if tgtDom != d.id {
		if rel := d.released[m.HandoffID]; rel != nil {
			rel.timer.Stop()
			delete(d.released, rel.id)
		}
		if !d.Owns(m.Client) {
			d.owner[m.Client] = tgtDom
		}
		return
	}
	if d.adoptedIDs[m.HandoffID] {
		// Retransmitted commit: our announcement was lost — re-announce so
		// the offerer stops, but never re-apply the bundle.
		d.announce(m)
		return
	}
	d.adopt(m)
}

// adopt applies a commit's state bundle: register the client frozen with
// the exported index cursor and dedup window, warm its ESNR windows from
// the evidence, drain any downlink buffered while the commit was in
// flight, announce ownership, and drive the §3.1.2 switch that physically
// moves the client onto our AP.
func (d *Domain) adopt(m *packet.DomainHandoffCommit) {
	tl, ok := d.localOf[m.TargetAP]
	if !ok {
		return
	}
	now := d.clk.Now()
	mac := m.Client
	ad := d.inbound[m.HandoffID]
	if ad != nil {
		ad.timer.Stop()
	} else {
		// Unsolicited commit: our accept state is gone (timeout, crash, or a
		// lost offer exchange), but the offerer has already released — so
		// the commit is authoritative and refusing it would strand the
		// client with no owner at all.
		ad = &adoption{id: m.HandoffID, client: mac, fromDomain: int(m.HandoffID >> 24)}
		d.inbound[ad.id] = ad
		d.byClient[mac] = ad
	}
	ad.ip = m.ClientIP
	ad.oldAP = m.ServingAP
	ad.target = m.TargetAP
	ad.targetLocal = tl
	ad.adopted = true
	d.adoptedIDs[ad.id] = true

	d.ctl.AdoptClient(mac, m.ClientIP, tl, m.NextIndex, m.DedupKeys)
	for _, ev := range m.Evidence {
		if li, ok := d.localOf[ev.AP]; ok {
			d.ctl.SeedESNR(mac, li, dequantQ(ev.MedianQ))
		}
	}
	d.owner[mac] = d.id
	d.owned[mac] = &fedClient{
		mac: mac, ip: m.ClientIP,
		foreign: make(map[packet.IPv4Addr]*evWindow), lastHandoff: now,
	}
	d.Stats.Adoptions++
	if q := d.pendingDown[mac]; len(q) > 0 {
		delete(d.pendingDown, mac)
		for _, p := range q {
			_ = d.ctl.SendDownlink(p)
		}
	}
	d.announce(m)

	fromG := -1
	if g, ok := d.apGlobal[ad.oldAP]; ok {
		fromG = g
	}
	toMed := 0.0
	if len(m.Evidence) > 0 {
		toMed = dequantQ(m.Evidence[0].MedianQ)
	}
	d.met.switchSpans.Begin(ad.id, int64(now), mac.String(),
		fromG, d.apGlobal[ad.target], metrics.CauseDomainHandoff, 0, toMed)
	ad.stopSentAt = now
	d.sendFedStop(ad)
}

// announce broadcasts a slim (bundle-free) copy of the commit to every
// other domain: the echo that stops the offerer's retransmission, and the
// directory update for third parties.
func (d *Domain) announce(m *packet.DomainHandoffCommit) {
	slim := &packet.DomainHandoffCommit{
		HandoffID: m.HandoffID, Client: m.Client, ClientIP: m.ClientIP,
		ServingAP: m.ServingAP, TargetAP: m.TargetAP, NextIndex: m.NextIndex,
	}
	for _, dom := range d.domains {
		if dom == d.id {
			continue
		}
		_ = d.bh.Send(d.addr, d.addrOf(dom), slim)
	}
}

// sendFedStop drives the cross-domain stop→start→ack: stop(c) goes to the
// old domain's AP, which hands its cursor to our target AP with start(c,k);
// the target acks to us. After MaxStopRetries the old AP is presumed dead
// (or unreachable across the backhaul) and we fall back to a direct start
// — the same no-cooperation escalation as intra-domain failover.
func (d *Domain) sendFedStop(ad *adoption) {
	if _, known := d.apGlobal[ad.oldAP]; !known || ad.attempts >= d.cfg.MaxStopRetries {
		d.sendFedStart(ad)
		return
	}
	ad.attempts++
	if ad.attempts > 1 {
		d.Stats.StopRetransmits++
		d.met.switchSpans.AddRetransmit(ad.id)
	}
	_ = d.bh.Send(d.addr, ad.oldAP, &packet.Stop{Client: ad.client, NextAP: ad.target, SwitchID: ad.id})
	ad.timer = d.clk.After(d.cfg.SwitchTimeout, func() { d.fedSwitchTimeout(ad) })
}

// sendFedStart is the forced completion: install the adopted index cursor
// at the target AP directly, abandoning the old AP's cooperation.
func (d *Domain) sendFedStart(ad *adoption) {
	if !ad.forced {
		ad.forced = true
		d.Stats.ForcedStarts++
	}
	_ = d.bh.Send(d.addr, ad.target, &packet.Start{
		Client: ad.client, Index: d.ctl.NextDownIndex(ad.client), SwitchID: ad.id,
	})
	ad.timer = d.clk.After(d.cfg.SwitchTimeout, func() { d.fedSwitchTimeout(ad) })
}

func (d *Domain) fedSwitchTimeout(ad *adoption) {
	if d.ctl.Down() || d.inbound[ad.id] != ad {
		return
	}
	if ad.forced {
		d.sendFedStart(ad)
		return
	}
	d.sendFedStop(ad)
}

// completeCrossSwitch intercepts the SwitchAck of a federation-driven
// switch, reporting whether it consumed the message.
func (d *Domain) completeCrossSwitch(m *packet.SwitchAck) bool {
	ad := d.inbound[m.SwitchID]
	if ad == nil || !ad.adopted {
		return false
	}
	if m.AP != ad.target {
		return true // not the installing AP; swallow, keep waiting
	}
	ad.timer.Stop()
	delete(d.inbound, ad.id)
	if d.byClient[ad.client] == ad {
		delete(d.byClient, ad.client)
	}
	now := d.clk.Now()
	d.ctl.SetFrozen(ad.client, false)
	d.Stats.CrossSwitches++
	d.met.switchSpans.End(ad.id, int64(now))
	fromG := -1
	if g, ok := d.apGlobal[ad.oldAP]; ok {
		fromG = g
	}
	toG := d.apGlobal[ad.target]
	rec := HandoffRecord{
		At: now, Client: ad.client, From: ad.fromDomain, To: d.id,
		FromAP: fromG, ToAP: toG,
		SwitchDuration: now - ad.stopSentAt, Forced: ad.forced,
	}
	d.Adopted = append(d.Adopted, rec)
	if d.OnSwitch != nil {
		d.OnSwitch(controller.SwitchRecord{
			At: now, Client: ad.client, From: fromG, To: toG,
			Duration: now - ad.stopSentAt, Attempts: ad.attempts, Forced: ad.forced,
		})
	}
	if d.OnHandoffComplete != nil {
		d.OnHandoffComplete(rec)
	}
	return true
}

// Fail implements chaos.ControllerTarget: the inner controller crashes and
// every federation state machine dies with it. In-flight outgoing offers
// and pre-staged adoptions abort; commit retransmission stops (the adopter
// almost certainly has the client — its announcements go unheard until
// recovery); adopted-but-unswitched clients thaw so the recovered
// controller can drive its own switches again.
func (d *Domain) Fail() {
	if d.ctl.Down() {
		return
	}
	d.ctl.Fail()
	for _, fc := range d.owned {
		if fc.out != nil {
			fc.out.timer.Stop()
			fc.out = nil
			d.Stats.Aborts++
		}
		d.ctl.SetFrozen(fc.mac, false)
	}
	for _, rel := range d.released {
		rel.timer.Stop()
	}
	d.released = make(map[uint32]*release)
	for _, ad := range d.inbound {
		ad.timer.Stop()
		if ad.adopted {
			d.ctl.SetFrozen(ad.client, false)
		} else {
			d.Stats.Aborts++
		}
	}
	d.inbound = make(map[uint32]*adoption)
	d.byClient = make(map[packet.MACAddr]*adoption)
	d.pendingDown = make(map[packet.MACAddr][]*packet.Packet)
}

// Recover implements chaos.ControllerTarget.
func (d *Domain) Recover() { d.ctl.Recover() }

// Down implements chaos.ControllerTarget.
func (d *Domain) Down() bool { return d.ctl.Down() }
