package mac

import (
	"math"
	"testing"

	"wgtt/internal/mobility"
	"wgtt/internal/packet"
	"wgtt/internal/phy"
	"wgtt/internal/radio"
	"wgtt/internal/sim"
)

// --- Block ACK helpers ---

func TestBitmapBuildAndCheck(t *testing.T) {
	bm := BuildBitmap(100, []uint16{100, 101, 103, 163})
	if !BitmapAcks(100, bm, 100) || !BitmapAcks(100, bm, 101) || !BitmapAcks(100, bm, 103) {
		t.Error("bitmap missing in-window seqs")
	}
	if !BitmapAcks(100, bm, 163) {
		t.Error("bitmap missing last in-window seq")
	}
	if BitmapAcks(100, bm, 102) {
		t.Error("bitmap acknowledged an unseen seq")
	}
	if BitmapAcks(100, bm, 164) {
		t.Error("seq outside 64-window acknowledged")
	}
	if CountAcked(bm) != 4 {
		t.Errorf("CountAcked = %d", CountAcked(bm))
	}
}

func TestBitmapWraparound(t *testing.T) {
	// SSN near the top of the 12-bit space; seqs wrap through zero.
	bm := BuildBitmap(4090, []uint16{4090, 4095, 0, 5})
	for _, s := range []uint16{4090, 4095, 0, 5} {
		if !BitmapAcks(4090, bm, s) {
			t.Errorf("wrapped seq %d not acknowledged", s)
		}
	}
	if BitmapAcks(4090, bm, 60) {
		t.Error("seq past the window acknowledged")
	}
}

func TestMergeBitmaps(t *testing.T) {
	a := BuildBitmap(0, []uint16{0, 2})
	b := BuildBitmap(0, []uint16{1, 2})
	m := MergeBitmaps(a, b)
	for _, s := range []uint16{0, 1, 2} {
		if !BitmapAcks(0, m, s) {
			t.Errorf("merged bitmap missing %d", s)
		}
	}
	if CountAcked(m) != 3 {
		t.Errorf("merged count = %d", CountAcked(m))
	}
}

func TestSeqBefore(t *testing.T) {
	if !seqBefore(10, 20) || seqBefore(20, 10) {
		t.Error("basic ordering wrong")
	}
	if !seqBefore(4095, 0) {
		t.Error("wraparound ordering wrong")
	}
	if seqBefore(7, 7) {
		t.Error("equal seqs should not be before")
	}
}

func TestFrameStartSeq(t *testing.T) {
	f := &Frame{MPDUs: []*MPDU{{Seq: 4094}, {Seq: 4095}, {Seq: 0}, {Seq: 1}}}
	if f.StartSeq() != 4094 {
		t.Errorf("StartSeq = %d, want 4094 (circular min)", f.StartSeq())
	}
	if (&Frame{}).StartSeq() != 0 {
		t.Error("empty frame StartSeq should be 0")
	}
}

func TestFrameAirtime(t *testing.T) {
	data := &Frame{Kind: KindData, MCS: 7, MPDUs: []*MPDU{{Bytes: 1500}, {Bytes: 1500}}}
	if a := data.Airtime(); a <= phy.HTPreamble {
		t.Errorf("data airtime = %v", a)
	}
	beacon := &Frame{Kind: KindBeacon, To: BroadcastAddr, MPDUs: []*MPDU{{Bytes: 100}}}
	if a := beacon.Airtime(); a <= phy.LegacyPreamble {
		t.Errorf("beacon airtime = %v", a)
	}
	if beacon.ExpectsResponse() {
		t.Error("beacon should not expect a response")
	}
	if !data.ExpectsResponse() {
		t.Error("unicast data should expect a response")
	}
}

func TestFrameKindString(t *testing.T) {
	if KindData.String() != "data" || KindMgmt.String() != "mgmt" ||
		KindBeacon.String() != "beacon" || FrameKind(9).String() != "kind?9" {
		t.Error("FrameKind strings wrong")
	}
}

// --- Minstrel ---

func TestMinstrelConvergesUp(t *testing.T) {
	m := newMinstrel()
	for i := 0; i < 50; i++ {
		m.update(7, 10, 10)
	}
	if m.best() != 7 {
		t.Errorf("best = %v after perfect MCS7 history", m.best())
	}
}

func TestMinstrelConvergesDown(t *testing.T) {
	// Closed loop on a link where only MCS ≤ 1 delivers: the controller
	// must walk down and settle there.
	m := newMinstrel()
	for i := 0; i < 60; i++ {
		b := m.best()
		if b <= 1 {
			m.update(b, 10, 10)
		} else {
			m.update(b, 10, 0)
		}
	}
	if m.best() > 1 {
		t.Errorf("best = %v, want ≤ MCS1 when only low rates deliver", m.best())
	}
}

func TestMinstrelFailureDemotesUpperTail(t *testing.T) {
	m := newMinstrel()
	for i := 0; i < 30; i++ {
		m.update(4, 10, 0)
	}
	if m.prob[7] > 0.1 {
		t.Errorf("MCS7 prob = %v after persistent MCS4 failure", m.prob[7])
	}
}

func TestMinstrelProbes(t *testing.T) {
	m := newMinstrel()
	for i := 0; i < 50; i++ {
		m.update(3, 10, 10)
	}
	rnd := sim.NewRNG(1).Stream("probe")
	saw := make(map[phy.MCS]bool)
	for i := 0; i < 64; i++ {
		saw[m.pick(rnd)] = true
	}
	if len(saw) < 2 {
		t.Error("minstrel never probes away from the best rate")
	}
	if m.update(3, 0, 0); m.prob[3] == 0 {
		t.Error("zero-attempt update should be ignored")
	}
}

// --- End-to-end MAC harness ---

type recSink struct {
	frames []*RxEvent
	bas    []*BAEvent
}

func (r *recSink) OnFrame(ev *RxEvent)    { r.frames = append(r.frames, ev) }
func (r *recSink) OnBlockAck(ev *BAEvent) { r.bas = append(r.bas, ev) }

type queueSource struct {
	st     *Station
	to     packet.MACAddr
	mcs    phy.MCS
	queue  []*packet.Packet
	built  int
	builds []*Frame
	done   []*TxResult
}

func (q *queueSource) BuildFrame() *Frame {
	if len(q.queue) == 0 {
		return nil
	}
	var mpdus []*MPDU
	n := min(len(q.queue), 16)
	for i := 0; i < n; i++ {
		p := q.queue[i]
		mpdus = append(mpdus, &MPDU{Seq: q.st.NextSeq(q.to), Pkt: p, Bytes: p.Bytes})
	}
	q.queue = q.queue[n:]
	q.built++
	fr := &Frame{Kind: KindData, From: q.st.Addr, To: q.to, MCS: q.mcs, MPDUs: mpdus}
	q.builds = append(q.builds, fr)
	return fr
}

func (q *queueSource) OnTxDone(res *TxResult) {
	q.done = append(q.done, res)
	if len(q.queue) > 0 {
		q.st.Kick()
	}
}

type harness struct {
	eng    *sim.Engine
	ch     *radio.Channel
	medium *Medium
}

func newHarness(t *testing.T, seed uint64) *harness {
	t.Helper()
	eng := sim.NewEngine()
	rng := sim.NewRNG(seed)
	params := radio.DefaultParams()
	params.NoFading = true // deterministic links: these tests probe the MAC
	ch := radio.NewChannel(params, rng)
	return &harness{eng: eng, ch: ch, medium: NewMedium(eng, ch, rng.Stream("mac"))}
}

func (h *harness) addAP(t *testing.T, name string, x float64, aliases ...packet.MACAddr) (*Station, *recSink) {
	t.Helper()
	ep := &radio.Endpoint{
		Name:         name,
		Trace:        mobility.Stationary{At: mobility.Point{X: x, Y: mobility.APSetback}},
		Antenna:      radio.NewLairdGD24BP(),
		BoresightRad: -math.Pi / 2,
		TxPowerDBm:   17,
		ExtraLossDB:  28,
	}
	if err := h.ch.AddEndpoint(ep); err != nil {
		t.Fatal(err)
	}
	sink := &recSink{}
	st := NewStation(h.medium, StationConfig{
		Addr:     packet.APMAC(int(x)),
		Aliases:  aliases,
		Endpoint: ep,
		Sink:     sink,
	})
	return st, sink
}

func (h *harness) addClient(t *testing.T, name string, tr mobility.Trace, speedHint float64) (*Station, *recSink) {
	t.Helper()
	ep := &radio.Endpoint{
		Name:        name,
		Trace:       tr,
		TxPowerDBm:  15,
		SpeedHintMS: speedHint,
	}
	if err := h.ch.AddEndpoint(ep); err != nil {
		t.Fatal(err)
	}
	sink := &recSink{}
	st := NewStation(h.medium, StationConfig{
		Addr:     packet.ClientMAC(1),
		Endpoint: ep,
		Sink:     sink,
	})
	return st, sink
}

func mkPackets(n, bytes int) []*packet.Packet {
	out := make([]*packet.Packet, n)
	for i := range out {
		out[i] = &packet.Packet{FlowID: 1, Seq: uint32(i), IPID: uint16(i), Bytes: bytes}
	}
	return out
}

func TestStrongLinkDelivery(t *testing.T) {
	h := newHarness(t, 1)
	ap, _ := h.addAP(t, "ap1", 20)
	client, csink := h.addClient(t, "car1", mobility.Stationary{At: mobility.Point{X: 20}}, 0)

	src := &queueSource{st: ap, to: client.Addr, mcs: 4, queue: mkPackets(32, 1400)}
	ap.SetSource(src)
	ap.Kick()
	h.eng.RunUntil(sim.Second)

	got := 0
	for _, ev := range csink.frames {
		if ev.Kind == KindData {
			got += len(ev.Decoded)
		}
	}
	if got < 30 {
		t.Fatalf("delivered %d/32 MPDUs on a strong link", got)
	}
	// The AP should have seen Block ACKs back.
	if len(src.done) == 0 {
		t.Fatal("no TxResults")
	}
	acked := false
	for _, res := range src.done {
		if res != nil && res.BAReceived {
			acked = true
		}
	}
	if !acked {
		t.Error("no Block ACK received on a strong link")
	}
	// CSI snapshots ride along with reception.
	if len(csink.frames[0].SNRdB) != 56 {
		t.Error("RxEvent missing CSI snapshot")
	}
}

func TestAggregationAmortizesGrants(t *testing.T) {
	h := newHarness(t, 2)
	ap, _ := h.addAP(t, "ap1", 20)
	client, _ := h.addClient(t, "car1", mobility.Stationary{At: mobility.Point{X: 20}}, 0)
	src := &queueSource{st: ap, to: client.Addr, mcs: 4, queue: mkPackets(64, 1400)}
	ap.SetSource(src)
	ap.Kick()
	h.eng.RunUntil(sim.Second)
	if src.built == 0 {
		t.Fatal("nothing sent")
	}
	if src.built > 8 {
		t.Errorf("64 packets took %d frames; aggregation not working", src.built)
	}
	if h.medium.Grants == 0 || h.medium.Utilization() <= 0 {
		t.Error("medium stats not accounted")
	}
}

func TestWeakLinkLoses(t *testing.T) {
	h := newHarness(t, 3)
	ap, _ := h.addAP(t, "ap1", 20)
	// Client far outside the cell.
	client, csink := h.addClient(t, "car1", mobility.Stationary{At: mobility.Point{X: 90}}, 0)
	src := &queueSource{st: ap, to: client.Addr, mcs: 7, queue: mkPackets(64, 1400)}
	ap.SetSource(src)
	ap.Kick()
	h.eng.RunUntil(sim.Second)
	got := 0
	for _, ev := range csink.frames {
		got += len(ev.Decoded)
	}
	if got > 10 {
		t.Errorf("delivered %d/64 MPDUs at MCS7 far outside the cell", got)
	}
	if ap.BAMissed == 0 {
		t.Error("no BA misses recorded on a hopeless link")
	}
}

func TestPullModelSkipsFlushedWork(t *testing.T) {
	h := newHarness(t, 4)
	ap, _ := h.addAP(t, "ap1", 20)
	client, csink := h.addClient(t, "car1", mobility.Stationary{At: mobility.Point{X: 20}}, 0)
	src := &queueSource{st: ap, to: client.Addr, mcs: 4, queue: mkPackets(16, 1400)}
	ap.SetSource(src)
	ap.Kick()
	// Flush the queue before the grant can fire (queues are consulted at
	// grant time — the WGTT stop-packet semantics).
	src.queue = nil
	h.eng.RunUntil(sim.Second)
	if len(csink.frames) != 0 {
		t.Error("flushed packets still hit the air")
	}
	if h.medium.Grants != 0 {
		t.Error("grant consumed for an empty frame")
	}
}

func TestBeaconBroadcast(t *testing.T) {
	h := newHarness(t, 5)
	ap, _ := h.addAP(t, "ap1", 20)
	_, csink := h.addClient(t, "car1", mobility.Stationary{At: mobility.Point{X: 20}}, 0)
	ap.SendOneShot(func() *Frame {
		return &Frame{Kind: KindBeacon, From: ap.Addr, To: BroadcastAddr, MPDUs: []*MPDU{{Bytes: 100}}}
	}, nil)
	h.eng.RunUntil(100 * sim.Millisecond)
	found := false
	for _, ev := range csink.frames {
		if ev.Kind == KindBeacon {
			found = true
			if ev.RSSIdBm > -20 || ev.RSSIdBm < -100 {
				t.Errorf("implausible beacon RSSI %v dBm", ev.RSSIdBm)
			}
		}
	}
	if !found {
		t.Fatal("beacon not received")
	}
	if len(csink.bas) != 0 {
		t.Error("beacon solicited a response")
	}
}

func TestSharedBSSIDMultiReceiver(t *testing.T) {
	// Two APs share the BSSID alias; a client uplink frame is decoded and
	// answered; the client must not suffer a response collision when one AP
	// is much closer (capture).
	h := newHarness(t, 6)
	bssid := packet.MACAddr{0x02, 0xbb, 0, 0, 0, 1}
	ap1, s1 := h.addAP(t, "ap1", 20, bssid)
	_, s2 := h.addAP(t, "ap2", 60, bssid)
	client, _ := h.addClient(t, "car1", mobility.Stationary{At: mobility.Point{X: 20}}, 0)
	_ = ap1

	src := &queueSource{st: client, to: bssid, mcs: 2, queue: mkPackets(32, 1000)}
	client.SetSource(src)
	client.Kick()
	h.eng.RunUntil(sim.Second)

	n1, n2 := 0, 0
	for _, ev := range s1.frames {
		n1 += len(ev.Decoded)
	}
	for _, ev := range s2.frames {
		n2 += len(ev.Decoded)
	}
	if n1 < 25 {
		t.Errorf("near AP decoded %d/32", n1)
	}
	// The far AP may decode some (uplink diversity) but typically fewer.
	if n2 > n1 {
		t.Errorf("far AP decoded more (%d) than near AP (%d)", n2, n1)
	}
	// Client should have received Block ACKs; collision rate ≈ 0 thanks to
	// capture (the paper's Table 3 observation).
	if client.RespCollided > uint64(len(src.done))/10 {
		t.Errorf("resp collisions = %d of %d", client.RespCollided, len(src.done))
	}
	acked := 0
	for _, res := range src.done {
		if res != nil && res.BAReceived {
			acked++
		}
	}
	if acked == 0 {
		t.Error("client never received a Block ACK")
	}
}

func TestSeqNumbersWrap(t *testing.T) {
	h := newHarness(t, 7)
	ap, _ := h.addAP(t, "ap1", 20)
	peer := packet.ClientMAC(9)
	ap.seq[peer] = 4095
	if s := ap.NextSeq(peer); s != 4095 {
		t.Errorf("NextSeq = %d", s)
	}
	if s := ap.NextSeq(peer); s != 0 {
		t.Errorf("NextSeq after wrap = %d", s)
	}
}

func TestRespondFilter(t *testing.T) {
	h := newHarness(t, 8)
	bssid := packet.MACAddr{0x02, 0xbb, 0, 0, 0, 1}
	ap, _ := h.addAP(t, "ap1", 20, bssid)
	ap.SetRespondFilter(func(packet.MACAddr) bool { return false })
	client, _ := h.addClient(t, "car1", mobility.Stationary{At: mobility.Point{X: 20}}, 0)
	src := &queueSource{st: client, to: bssid, mcs: 2, queue: mkPackets(8, 1000)}
	client.SetSource(src)
	client.Kick()
	h.eng.RunUntil(500 * sim.Millisecond)
	for _, res := range src.done {
		if res != nil && res.BAReceived {
			t.Fatal("filtered AP still responded")
		}
	}
	if client.BAMissed == 0 {
		t.Error("client should have recorded BA misses")
	}
}

func TestStationRequiresEndpoint(t *testing.T) {
	h := newHarness(t, 9)
	defer func() {
		if recover() == nil {
			t.Error("station without endpoint accepted")
		}
	}()
	NewStation(h.medium, StationConfig{})
}

func TestRetuneMovesStation(t *testing.T) {
	h := newHarness(t, 11)
	ap, _ := h.addAP(t, "ap1", 20)
	client, csink := h.addClient(t, "car1", mobility.Stationary{At: mobility.Point{X: 20}}, 0)

	// A second medium models another wireless channel over the same space.
	medium2 := NewMedium(h.eng, h.ch, sim.NewRNG(99).Stream("mac2"))

	src := &queueSource{st: ap, to: client.Addr, mcs: 4, queue: mkPackets(16, 1400)}
	ap.SetSource(src)
	ap.Kick()
	h.eng.RunUntil(200 * sim.Millisecond)
	before := len(csink.frames)
	if before == 0 {
		t.Fatal("no delivery before retune")
	}

	// Client leaves for channel 2: the AP's transmissions no longer reach it.
	client.Retune(medium2)
	if client.Medium() != medium2 {
		t.Fatal("Retune did not switch media")
	}
	src.queue = mkPackets(16, 1400)
	ap.Kick()
	h.eng.RunUntil(400 * sim.Millisecond)
	if got := len(csink.frames); got != before {
		t.Errorf("client on another channel still received %d frames", got-before)
	}

	// And back: delivery resumes.
	client.Retune(h.medium)
	src.queue = mkPackets(16, 1400)
	ap.Kick()
	h.eng.RunUntil(600 * sim.Millisecond)
	if len(csink.frames) <= before {
		t.Error("delivery did not resume after retuning back")
	}
	// Retune to the current medium is a no-op.
	client.Retune(h.medium)
}

func TestRetuneAbandonsPendingAttempt(t *testing.T) {
	h := newHarness(t, 12)
	_, _ = h.addAP(t, "ap1", 20)
	client, _ := h.addClient(t, "car1", mobility.Stationary{At: mobility.Point{X: 20}}, 0)
	medium2 := NewMedium(h.eng, h.ch, sim.NewRNG(98).Stream("mac2"))

	src := &queueSource{st: client, to: packet.APMAC(20), mcs: 2, queue: mkPackets(4, 500)}
	client.SetSource(src)
	client.Kick() // attempt now pending on medium 1
	client.Retune(medium2)
	h.eng.RunUntil(100 * sim.Millisecond)
	// The station must not deadlock: its attempt was either abandoned and
	// re-issued on the new medium, or completed; either way the queue drains.
	if len(src.queue) != 0 {
		t.Errorf("station deadlocked after retune: %d packets still queued", len(src.queue))
	}
}
