package mac

import (
	"math/rand/v2"

	"wgtt/internal/phy"
)

// minstrel is a compact per-peer rate controller in the spirit of Linux
// Minstrel (the testbed APs run the default rate control unmodified, §4):
// it tracks an EWMA delivery probability per MCS, sends most frames at the
// rate with the best expected throughput, and spends a fraction of frames
// probing other rates so it can climb back up after fades.
type minstrel struct {
	prob    [phy.NumMCS]float64 // EWMA delivery probability
	tried   [phy.NumMCS]bool
	counter int
}

// ewmaWeight is the weight of history on each update; per-aggregate updates
// make adaptation fast enough for vehicular channel dynamics.
const ewmaWeight = 0.75

// probeInterval is how often (in frames) a probe rate is chosen instead of
// the current best.
const probeInterval = 8

func newMinstrel() *minstrel {
	m := &minstrel{}
	for i := range m.prob {
		// Optimistic start so new links try high rates once, mirroring
		// Minstrel's sampling bootstrap.
		m.prob[i] = 0.5
	}
	return m
}

// pick selects the MCS for the next aggregate.
func (m *minstrel) pick(rnd *rand.Rand) phy.MCS {
	m.counter++
	if m.counter%probeInterval == 0 {
		// Probe: prefer a rate adjacent to the current best so the probe
		// is informative without wrecking the aggregate.
		best := m.best()
		if rnd.IntN(2) == 0 && best < phy.NumMCS-1 {
			return best + 1
		}
		if best > 0 {
			return best - 1
		}
		return best + 1
	}
	return m.best()
}

// best returns the MCS with the highest expected throughput.
func (m *minstrel) best() phy.MCS {
	bestIdx := 0
	bestTp := -1.0
	for i := 0; i < phy.NumMCS; i++ {
		tp := m.prob[i] * phy.MCS(i).DataRateMbps()
		// A rate with terrible delivery is not usable regardless of its
		// nominal speed (Minstrel's 10% rule).
		if m.prob[i] < 0.1 {
			tp = m.prob[i] * phy.MCS(0).DataRateMbps() * 0.1
		}
		if tp > bestTp {
			bestTp = tp
			bestIdx = i
		}
	}
	return phy.MCS(bestIdx)
}

// update folds one aggregate's outcome into the EWMA for the used rate, and
// nudges neighbouring rates in the same direction so a deep fade demotes
// the whole upper tail quickly.
func (m *minstrel) update(mcs phy.MCS, attempted, acked int) {
	if attempted <= 0 {
		return
	}
	obs := float64(acked) / float64(attempted)
	i := int(mcs)
	m.prob[i] = ewmaWeight*m.prob[i] + (1-ewmaWeight)*obs
	m.tried[i] = true
	// Monotonicity hints: success at rate r implies rates below r work at
	// least as well; failure at r implies rates above r work no better.
	if obs > 0.9 {
		for j := 0; j < i; j++ {
			if m.prob[j] < m.prob[i] {
				m.prob[j] = ewmaWeight*m.prob[j] + (1-ewmaWeight)*1.0
			}
		}
	}
	// Optimistic climb: a clean aggregate unlocks the next rate up, the
	// way Minstrel-HT's multi-rate sampling lets a good link ratchet to
	// the top in a handful of aggregates. A failed trial drops it right
	// back on the next update.
	if obs >= 0.95 && i+1 < phy.NumMCS {
		if up := 0.92 * m.prob[i]; m.prob[i+1] < up {
			m.prob[i+1] = up
		}
	}
	if obs < 0.1 {
		for j := i + 1; j < phy.NumMCS; j++ {
			m.prob[j] = ewmaWeight*m.prob[j] + (1-ewmaWeight)*obs
		}
	}
}
