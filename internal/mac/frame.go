// Package mac implements the 802.11n link layer the WGTT system runs over:
// DCF medium access with binary-exponential backoff, A-MPDU frame
// aggregation, compressed Block ACK with a 64-frame scoreboard, Minstrel-
// style rate adaptation, and per-MPDU retransmission.
//
// The fidelity target is the set of phenomena the paper's design leans on:
// aggregation is what makes per-packet overhead tolerable at high rates
// (§1), Block ACK loss at cell edges is what Block-ACK forwarding repairs
// (§3.2.1), and multiple APs answering one client is what the ACK-collision
// analysis (§5.3.2, Table 3) quantifies.
package mac

import (
	"fmt"

	"wgtt/internal/csi"
	"wgtt/internal/packet"
	"wgtt/internal/phy"
	"wgtt/internal/sim"
)

// BroadcastAddr is the all-ones layer-2 address.
var BroadcastAddr = packet.MACAddr{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// FrameKind classifies transmissions.
type FrameKind uint8

// Frame kinds.
const (
	// KindData is an A-MPDU data frame expecting a Block ACK.
	KindData FrameKind = iota
	// KindMgmt is a single-MPDU management frame expecting a legacy ACK
	// (association, authentication, re-association).
	KindMgmt
	// KindBeacon is a broadcast beacon; no response.
	KindBeacon
)

// String implements fmt.Stringer.
func (k FrameKind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindMgmt:
		return "mgmt"
	case KindBeacon:
		return "beacon"
	default:
		return fmt.Sprintf("kind?%d", uint8(k))
	}
}

// MPDU is one MAC protocol data unit inside an (aggregate) frame.
type MPDU struct {
	// Seq is the 12-bit 802.11 sequence number assigned by the sender.
	Seq uint16
	// Pkt is the tunneled IP packet, nil for management bodies.
	Pkt *packet.Packet
	// Bytes is the MPDU payload length.
	Bytes int
	// Retries counts transmission attempts so far.
	Retries int
}

// Frame is one PPDU on the air.
type Frame struct {
	Kind  FrameKind
	From  packet.MACAddr
	To    packet.MACAddr // BroadcastAddr for beacons
	MCS   phy.MCS
	MPDUs []*MPDU
}

// Airtime returns the frame's on-air duration.
func (f *Frame) Airtime() sim.Time {
	if f.Kind == KindBeacon || f.Kind == KindMgmt {
		// Management and beacons go out in legacy format at the basic rate.
		return legacyFrameAirtime(f.totalBytes())
	}
	sizes := make([]int, len(f.MPDUs))
	for i, m := range f.MPDUs {
		sizes[i] = m.Bytes
	}
	return phy.AMPDUDuration(f.MCS, sizes)
}

func legacyFrameAirtime(bytes int) sim.Time {
	bits := float64(bytes*8 + 22)
	symbols := (bits + phy.BasicRateMbps*4 - 1) / (phy.BasicRateMbps * 4)
	return phy.LegacyPreamble + sim.Time(int(symbols))*4*sim.Microsecond
}

func (f *Frame) totalBytes() int {
	n := 0
	for _, m := range f.MPDUs {
		n += m.Bytes + phy.MACHeaderBytes + phy.FCSBytes
	}
	return n
}

// ExpectsResponse reports whether the frame solicits an immediate
// SIFS-separated response (Block ACK or legacy ACK).
func (f *Frame) ExpectsResponse() bool {
	return f.Kind != KindBeacon && f.To != BroadcastAddr
}

// StartSeq returns the lowest sequence number in the frame (the Block ACK
// window's starting sequence number).
func (f *Frame) StartSeq() uint16 {
	if len(f.MPDUs) == 0 {
		return 0
	}
	ssn := f.MPDUs[0].Seq
	for _, m := range f.MPDUs[1:] {
		if seqBefore(m.Seq, ssn) {
			ssn = m.Seq
		}
	}
	return ssn
}

// seqBefore reports whether 12-bit sequence a precedes b (circular compare).
func seqBefore(a, b uint16) bool {
	return (b-a)&0xfff != 0 && (b-a)&0xfff < 2048
}

// RxEvent describes one frame arrival at one receiver.
type RxEvent struct {
	At   sim.Time
	From packet.MACAddr
	To   packet.MACAddr
	Kind FrameKind
	// MCS the frame was sent at.
	MCS phy.MCS
	// Synced reports whether the receiver's PHY locked onto the PPDU's
	// preamble/PLCP. CSI is measurable exactly when Synced, even if every
	// MPDU payload then failed its CRC (how the Atheros tool behaves).
	Synced bool
	// Decoded holds the MPDUs this receiver successfully decoded.
	Decoded []*MPDU
	// Total is the number of MPDUs in the frame.
	Total int
	// SNRdB is the receiver's per-subcarrier CSI snapshot for this frame —
	// exactly what the Atheros CSI tool hands to the WGTT AP.
	SNRdB []float64
	// Overheard is true when the frame was not addressed to this station
	// (monitor-mode capture).
	Overheard bool
	// RSSIdBm is the wideband received power — the only channel statistic
	// an unmodified client (the 802.11r baseline) keys its roaming on.
	RSSIdBm float64

	// snrStore inlines the standard 56-entry snapshot so one RxEvent
	// allocation covers its CSI; SNRdB aliases it on the usual geometry.
	snrStore [csi.Subcarriers]float64
}

// BAEvent describes a (Block) ACK response observed at a station: by the
// original sender (completing its TXOP) or by a monitor-mode neighbour AP
// (feeding §3.2.1 Block ACK forwarding).
type BAEvent struct {
	At sim.Time
	// Responder is the station that sent the Block ACK.
	Responder packet.MACAddr
	// Client is the data sender being acknowledged (the BA's destination).
	Client packet.MACAddr
	// SSN and Bitmap form the compressed Block ACK scoreboard snapshot.
	SSN    uint16
	Bitmap uint64
	// Overheard is true at stations other than the BA's destination.
	Overheard bool
	// SNRdB is the observer's per-subcarrier CSI for the Block ACK frame.
	// On a downlink-heavy workload the client's Block ACKs are most of its
	// uplink airtime, so they are the frames WGTT APs measure CSI on.
	SNRdB []float64

	// snrStore backs SNRdB inline, as in RxEvent.
	snrStore [csi.Subcarriers]float64
}
