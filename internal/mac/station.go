package mac

import (
	"wgtt/internal/packet"
	"wgtt/internal/phy"
	"wgtt/internal/radio"
)

// Sink receives what a station hears: frames addressed to it (or overheard
// in monitor mode) and (Block) ACK responses. APs and clients implement it.
type Sink interface {
	// OnFrame is invoked for every frame the station decodes ≥1 MPDU of,
	// and for owned-address frames it decoded nothing of (ev.Decoded empty)
	// so receivers can observe PHY activity.
	OnFrame(ev *RxEvent)
	// OnBlockAck is invoked for every ACK/Block ACK the station decodes,
	// both its own (Overheard=false) and monitor-mode captures.
	OnBlockAck(ev *BAEvent)
}

// Source supplies outgoing aggregates for a station. The pull model matters:
// the frame is built at the instant the medium is won, so packets flushed
// from queues while contending (a WGTT stop) never reach the air.
type Source interface {
	// BuildFrame assembles the next frame, or returns nil if there is
	// nothing to send (the attempt is abandoned without airtime).
	BuildFrame() *Frame
	// OnTxDone reports the attempt outcome; res is nil when BuildFrame
	// returned nil.
	OnTxDone(res *TxResult)
}

// StationConfig configures a new station.
type StationConfig struct {
	Addr     packet.MACAddr
	Aliases  []packet.MACAddr // additional owned addresses (shared BSSID)
	Endpoint *radio.Endpoint  // radio identity
	// Promiscuous stations decode frames addressed to anyone (monitor mode).
	Promiscuous bool
	// RespondFilter, if set, gates ACK generation per data sender; nil
	// responds to everything addressed to an owned address.
	RespondFilter func(from packet.MACAddr) bool
	Sink          Sink
	Source        Source
}

// Station is one 802.11 MAC entity: it contends for the medium, assembles
// aggregates from its Source, tracks per-peer sequence numbers and rate
// state, and correlates Block ACK responses with in-flight frames.
type Station struct {
	Addr        packet.MACAddr
	Aliases     []packet.MACAddr
	Endpoint    *radio.Endpoint
	Promiscuous bool

	medium        *Medium
	sink          Sink
	src           Source
	respondFilter func(from packet.MACAddr) bool

	cw         int
	srcPending bool
	oneshots   []oneshot
	inFlight   bool

	awaiting *TxResult
	awaitSSN uint16

	seq map[packet.MACAddr]uint16
	rc  map[packet.MACAddr]*minstrel

	// Stats.
	FramesSent   uint64
	MPDUsSent    uint64
	BAMissed     uint64
	RespCollided uint64
}

type oneshot struct {
	build func() *Frame
	done  func(*TxResult)
}

// NewStation creates a station and registers it with the medium.
func NewStation(m *Medium, cfg StationConfig) *Station {
	if cfg.Endpoint == nil {
		panic("mac: station needs a radio endpoint")
	}
	s := &Station{
		Addr:          cfg.Addr,
		Aliases:       cfg.Aliases,
		Endpoint:      cfg.Endpoint,
		Promiscuous:   cfg.Promiscuous,
		medium:        m,
		sink:          cfg.Sink,
		src:           cfg.Source,
		respondFilter: cfg.RespondFilter,
		cw:            phy.CWMin,
		seq:           make(map[packet.MACAddr]uint16),
		rc:            make(map[packet.MACAddr]*minstrel),
	}
	m.register(s)
	return s
}

// SetSink installs the receive handler (for assembly cycles where the sink
// needs the station first).
func (s *Station) SetSink(k Sink) { s.sink = k }

// SetSource installs the transmit source.
func (s *Station) SetSource(src Source) { s.src = src }

// SetRespondFilter replaces the ACK gating predicate.
func (s *Station) SetRespondFilter(f func(from packet.MACAddr) bool) { s.respondFilter = f }

// Retune moves the station onto a different medium — a wireless channel
// switch. Ungranted transmit attempts on the old channel are abandoned (the
// station re-requests on the new one); an in-flight exchange finishes and
// reports as usual.
func (s *Station) Retune(m *Medium) {
	if m == s.medium {
		return
	}
	old := s.medium
	// Point the station at the new channel first: the abandoned attempts'
	// completion callbacks may immediately re-request, and those requests
	// must land on the new medium.
	s.medium = m
	m.register(s)
	old.unregister(s)
	if s.src != nil {
		s.Kick()
	}
}

// Medium returns the channel the station is currently tuned to.
func (s *Station) Medium() *Medium { return s.medium }

func (s *Station) ownsAddr(a packet.MACAddr) bool {
	if a == s.Addr {
		return true
	}
	for _, al := range s.Aliases {
		if a == al {
			return true
		}
	}
	return false
}

func (s *Station) responds(from packet.MACAddr) bool {
	if s.respondFilter != nil {
		return s.respondFilter(from)
	}
	return true
}

// Kick schedules a source transmission if one is not already pending. Call
// it whenever the source gains work.
func (s *Station) Kick() {
	if s.src == nil || s.srcPending {
		return
	}
	s.srcPending = true
	s.enqueue(oneshot{
		build: func() *Frame {
			fr := s.src.BuildFrame()
			if fr != nil {
				s.FramesSent++
				s.MPDUsSent += uint64(len(fr.MPDUs))
			}
			return fr
		},
		done: func(res *TxResult) {
			s.srcPending = false
			s.finishResult(res)
			s.src.OnTxDone(res)
		},
	})
}

// SendOneShot transmits a single frame built at grant time (beacons,
// management exchanges). done may be nil.
func (s *Station) SendOneShot(build func() *Frame, done func(*TxResult)) {
	s.enqueue(oneshot{build: build, done: func(res *TxResult) {
		s.finishResult(res)
		if done != nil {
			done(res)
		}
	}})
}

func (s *Station) enqueue(o oneshot) {
	s.oneshots = append(s.oneshots, o)
	s.pump()
}

// pump keeps exactly one attempt outstanding at the medium.
func (s *Station) pump() {
	if s.inFlight || len(s.oneshots) == 0 {
		return
	}
	o := s.oneshots[0]
	s.oneshots = s.oneshots[1:]
	s.inFlight = true
	s.medium.request(&txAttempt{
		st:      s,
		backoff: s.medium.drawBackoff(s.cw),
		build:   o.build,
		done: func(res *TxResult) {
			s.inFlight = false
			o.done(res)
			s.pump()
		},
	})
}

// expectBA is called by the medium when a response addressed to this
// station is planned; the result is completed by deliverBA if the response
// survives the channel.
func (s *Station) expectBA(res *TxResult, ssn uint16) {
	s.awaiting = res
	s.awaitSSN = ssn
}

// finishResult applies contention-window evolution once an attempt ends.
func (s *Station) finishResult(res *TxResult) {
	s.awaiting = nil
	if res == nil || res.Frame == nil {
		return
	}
	if !res.Frame.ExpectsResponse() {
		return
	}
	if res.BAReceived {
		s.cw = phy.CWMin
	} else {
		s.BAMissed++
		s.cw = min(2*s.cw+1, phy.CWMax)
	}
	if res.RespCollision {
		s.RespCollided++
	}
}

// deliver hands a received frame to the sink.
func (s *Station) deliver(ev *RxEvent) {
	if s.sink != nil {
		s.sink.OnFrame(ev)
	}
}

// deliverBA completes an awaited result and forwards the event to the sink.
func (s *Station) deliverBA(ev *BAEvent) {
	if !ev.Overheard && s.awaiting != nil && ev.SSN == s.awaitSSN {
		s.awaiting.BAReceived = true
		s.awaiting.SSN = ev.SSN
		s.awaiting.Bitmap = ev.Bitmap
	}
	if s.sink != nil {
		s.sink.OnBlockAck(ev)
	}
}

// markRespCollision records an ACK collision against the in-flight result.
func (s *Station) markRespCollision() {
	if s.awaiting != nil {
		s.awaiting.RespCollision = true
	}
}

// NextSeq allocates the next 12-bit 802.11 sequence number toward peer.
func (s *Station) NextSeq(peer packet.MACAddr) uint16 {
	v := s.seq[peer]
	s.seq[peer] = (v + 1) & 0xfff
	return v
}

// PickMCS chooses a transmit rate toward peer using the station's Minstrel
// state.
func (s *Station) PickMCS(peer packet.MACAddr) phy.MCS {
	return s.minstrelFor(peer).pick(s.medium.rnd)
}

// ReportTx feeds a transmission outcome back into rate control.
func (s *Station) ReportTx(peer packet.MACAddr, mcs phy.MCS, attempted, acked int) {
	s.minstrelFor(peer).update(mcs, attempted, acked)
}

func (s *Station) minstrelFor(peer packet.MACAddr) *minstrel {
	rc, ok := s.rc[peer]
	if !ok {
		rc = newMinstrel()
		s.rc[peer] = rc
	}
	return rc
}
