package mac

// Block ACK helpers: the 64-wide compressed bitmap of 802.11n, used both by
// receivers (building the scoreboard to send back) and by senders (scoring
// delivered MPDUs, including from Block ACKs forwarded over the backhaul).

// BAWindow is the compressed Block ACK bitmap width.
const BAWindow = 64

// seqOffset returns the position of seq relative to ssn in 12-bit circular
// space, and whether it falls inside the BA window.
func seqOffset(ssn, seq uint16) (int, bool) {
	off := int((seq - ssn) & 0xfff)
	return off, off < BAWindow
}

// BuildBitmap builds a compressed Block ACK bitmap acknowledging the given
// sequence numbers, relative to ssn. Sequences outside the 64-frame window
// are ignored.
func BuildBitmap(ssn uint16, seqs []uint16) uint64 {
	var bm uint64
	for _, s := range seqs {
		if off, ok := seqOffset(ssn, s); ok {
			bm |= 1 << off
		}
	}
	return bm
}

// BitmapAcks reports whether the bitmap acknowledges seq.
func BitmapAcks(ssn uint16, bitmap uint64, seq uint16) bool {
	off, ok := seqOffset(ssn, seq)
	return ok && bitmap&(1<<off) != 0
}

// MergeBitmaps combines two scoreboards over the same SSN: an MPDU is
// acknowledged if either saw it. This is what the serving AP does with a
// Block ACK forwarded by a neighbour (§3.2.1).
func MergeBitmaps(a, b uint64) uint64 { return a | b }

// CountAcked returns the number of acknowledged MPDUs in the bitmap.
func CountAcked(bitmap uint64) int {
	n := 0
	for bitmap != 0 {
		bitmap &= bitmap - 1
		n++
	}
	return n
}
