package mac

import (
	"fmt"
	"math/rand/v2"

	"wgtt/internal/csi"
	"wgtt/internal/packet"
	"wgtt/internal/phy"
	"wgtt/internal/radio"
	"wgtt/internal/sim"
)

// Medium arbitrates one 2.4 GHz channel among all stations (the testbed
// runs every AP on channel 11, §4) and performs frame delivery through the
// radio channel model: per-receiver CSI snapshots, per-MPDU Bernoulli loss
// from the ESNR→PER model, data/response sequencing with SIFS, transmit
// collisions between same-slot DCF winners, and capture-or-collide
// resolution when several APs answer one client frame (§5.3.2).
type Medium struct {
	eng *sim.Engine
	ch  *radio.Channel
	rnd *rand.Rand

	stations []*Station
	byAddr   map[packet.MACAddr][]*Station // alias-aware (shared BSSID)

	busyUntil  sim.Time
	waiters    []*txAttempt
	grantTimer sim.Timer

	// CaptureDB is the power margin at which a receiver captures the
	// strongest of overlapping transmissions instead of losing both.
	CaptureDB float64
	// RespCaptureDB is the (lower) capture margin for short legacy-rate
	// control responses — a 32-byte Block ACK at 24 Mb/s is far easier to
	// capture than a long HT aggregate.
	RespCaptureDB float64

	// Stats, exported for the evaluation harness.
	Grants         uint64   // medium acquisitions
	TxCollisions   uint64   // same-slot winner collisions
	RespCollisions uint64   // response (ACK/BA) collisions at a destination
	RespTotal      uint64   // response opportunities observed
	BusyTime       sim.Time // cumulative airtime (frames + responses)
}

type txAttempt struct {
	st      *Station
	backoff int
	build   func() *Frame
	done    func(*TxResult)
}

// liveTx is one frame actually going on the air in a grant.
type liveTx struct {
	att   *txAttempt
	frame *Frame
	air   sim.Time
}

// respPlan is one pending ACK/Block ACK response.
type respPlan struct {
	responder *Station
	toward    *Station // data sender being acknowledged
	ssn       uint16
	bitmap    uint64
	kindMgmt  bool
}

// TxResult reports the outcome of one transmission attempt to its sender.
type TxResult struct {
	Frame *Frame
	// Collision is true when the frame overlapped another DCF winner.
	Collision bool
	// BAReceived is true when the sender decoded the (Block) ACK response.
	BAReceived bool
	// SSN and Bitmap are the response scoreboard when BAReceived.
	SSN    uint16
	Bitmap uint64
	// RespCollision is true when responses from multiple stations collided
	// at the sender (uplink multi-AP ACK case, Table 3).
	RespCollision bool
	// End is when the exchange finished.
	End sim.Time
}

// basicRateMCS is the HT-equivalent robustness of the 24 Mb/s legacy rate
// used for ACK/Block ACK responses (16-QAM, rate 1/2).
const basicRateMCS = phy.MCS(3)

// NewMedium creates the shared channel arbiter.
func NewMedium(eng *sim.Engine, ch *radio.Channel, rnd *rand.Rand) *Medium {
	return &Medium{
		eng:           eng,
		ch:            ch,
		rnd:           rnd,
		byAddr:        make(map[packet.MACAddr][]*Station),
		CaptureDB:     10,
		RespCaptureDB: 4,
	}
}

// register wires a station into the medium (called by NewStation).
func (m *Medium) register(s *Station) {
	m.stations = append(m.stations, s)
	m.byAddr[s.Addr] = append(m.byAddr[s.Addr], s)
	for _, a := range s.Aliases {
		m.byAddr[a] = append(m.byAddr[a], s)
	}
}

// unregister detaches a station (channel retune). Pending, ungranted
// attempts are abandoned with a nil result so the station's transmit
// pipeline unblocks; an exchange already on the air completes normally.
func (m *Medium) unregister(s *Station) {
	for i, st := range m.stations {
		if st == s {
			m.stations = append(m.stations[:i], m.stations[i+1:]...)
			break
		}
	}
	removeFrom := func(addr packet.MACAddr) {
		list := m.byAddr[addr]
		for i, st := range list {
			if st == s {
				m.byAddr[addr] = append(list[:i], list[i+1:]...)
				return
			}
		}
	}
	removeFrom(s.Addr)
	for _, a := range s.Aliases {
		removeFrom(a)
	}
	kept := m.waiters[:0]
	var dropped []*txAttempt
	for _, w := range m.waiters {
		if w.st == s {
			dropped = append(dropped, w)
		} else {
			kept = append(kept, w)
		}
	}
	m.waiters = kept
	for _, w := range dropped {
		if w.done != nil {
			w.done(nil)
		}
	}
	m.arm()
}

// request enqueues a transmission attempt with the given backoff slots.
func (m *Medium) request(att *txAttempt) {
	m.waiters = append(m.waiters, att)
	m.arm()
}

// arm (re)schedules the next grant for the current waiter set.
func (m *Medium) arm() {
	m.grantTimer.Stop()
	if len(m.waiters) == 0 {
		return
	}
	idleAt := m.busyUntil
	if now := m.eng.Now(); now > idleAt {
		idleAt = now
	}
	minb := m.waiters[0].backoff
	for _, w := range m.waiters[1:] {
		if w.backoff < minb {
			minb = w.backoff
		}
	}
	at := idleAt + phy.DIFS + sim.Time(minb)*phy.Slot
	m.grantTimer = m.eng.At(at, m.grant)
}

// grant fires when the earliest backoff expires: winners transmit.
func (m *Medium) grant() {
	m.grantTimer = sim.Timer{}
	if len(m.waiters) == 0 {
		return
	}
	minb := m.waiters[0].backoff
	for _, w := range m.waiters[1:] {
		if w.backoff < minb {
			minb = w.backoff
		}
	}
	var winners []*txAttempt
	rest := m.waiters[:0]
	for _, w := range m.waiters {
		w.backoff -= minb
		if w.backoff == 0 {
			winners = append(winners, w)
		} else {
			rest = append(rest, w)
		}
	}
	m.waiters = rest

	// Build frames now — packets dequeued while waiting (e.g. by a WGTT
	// stop) are simply no longer part of the aggregate.
	var live []liveTx
	for _, w := range winners {
		fr := w.build()
		if fr == nil || (fr.Kind == KindData && len(fr.MPDUs) == 0) {
			if w.done != nil {
				w.done(nil) // nothing to send
			}
			continue
		}
		live = append(live, liveTx{att: w, frame: fr, air: fr.Airtime()})
	}
	if len(live) == 0 {
		m.arm()
		return
	}
	m.Grants++
	collision := len(live) > 1
	if collision {
		m.TxCollisions++
	}

	t0 := m.eng.Now()
	var dur sim.Time
	for _, lt := range live {
		if lt.air > dur {
			dur = lt.air
		}
	}
	frameEnd := t0 + dur
	mid := t0 + dur/2 // channel sampling instant

	// Decide decode outcomes per receiver now (the channel is a pure
	// function of time, so sampling "in the future" at mid is sound).
	var responses []respPlan

	for _, lt := range live {
		fr := lt.frame
		sender := lt.att.st
		for _, rx := range m.stations {
			if rx == sender {
				continue
			}
			owned := rx.ownsAddr(fr.To)
			if !owned && !rx.Promiscuous && fr.To != BroadcastAddr {
				continue
			}
			link, err := m.ch.Link(sender.Endpoint.Name, rx.Endpoint.Name)
			if err != nil {
				continue
			}
			// The event is allocated up front so its inline snrStore can
			// receive the CSI snapshot: one allocation covers the event and
			// its 56-entry SNR array.
			ev := &RxEvent{
				At:        frameEnd,
				From:      fr.From,
				To:        fr.To,
				Kind:      fr.Kind,
				MCS:       fr.MCS,
				Total:     len(fr.MPDUs),
				Overheard: !owned && fr.To != BroadcastAddr,
			}
			ev.SNRdB = link.SNRInto(mid, sender.Endpoint, ev.snrStore[:0])
			ev.RSSIdBm = link.RSSIdBm(mid, sender.Endpoint.TxPowerDBm)

			lost := false
			if collision {
				// Capture: decode the strongest overlapping frame if it
				// clears the margin over the runner-up; lose otherwise.
				best, second, bestIdx := m.collisionPowers(live, rx, mid)
				if bestIdx < 0 || live[bestIdx].frame != fr || best-second < m.CaptureDB {
					lost = true
				}
			}

			// PHY sync is a per-frame event: the preamble either locks or
			// the whole PPDU is invisible. Payload CRCs then fail per MPDU.
			var decoded []*MPDU
			if !lost {
				esnr := csi.ESNRdB(ev.SNRdB, phy.Lookup(fr.MCS).Modulation)
				ev.Synced = m.rnd.Float64() >= phy.SyncFailureProb(esnr)
				if ev.Synced {
					decoded = m.decodeMPDUs(fr, esnr)
				}
			}
			ev.Decoded = decoded
			rxStation := rx
			m.eng.At(frameEnd, func() { rxStation.deliver(ev) })

			// Response decision: owners that decoded something respond.
			if fr.ExpectsResponse() && owned && len(decoded) > 0 && rx.responds(fr.From) {
				ssn := fr.StartSeq()
				seqs := make([]uint16, len(decoded))
				for i, d := range decoded {
					seqs[i] = d.Seq
				}
				responses = append(responses, respPlan{
					responder: rx,
					toward:    sender,
					ssn:       ssn,
					bitmap:    BuildBitmap(ssn, seqs),
					kindMgmt:  fr.Kind == KindMgmt,
				})
			}
		}
	}

	end := frameEnd
	if len(responses) > 0 {
		respDur := phy.BlockAckDuration()
		if responses[0].kindMgmt {
			respDur = phy.AckDuration()
		}
		respEnd := frameEnd + phy.SIFS + respDur
		respMid := frameEnd + phy.SIFS + respDur/2
		end = respEnd
		m.deliverResponses(responses, respMid, respEnd)
	}

	m.busyUntil = end
	m.BusyTime += end - t0

	// Sender completions fire once the whole exchange is over; the result
	// for each sender is derived from the response addressed to it.
	for _, lt := range live {
		lt := lt
		res := &TxResult{Frame: lt.frame, Collision: collision, End: end}
		for _, rp := range responses {
			if rp.toward == lt.att.st {
				// Whether the sender actually decodes the response is
				// resolved in deliverResponses; mark intent here and let
				// the BA delivery fill in reality.
				lt.att.st.expectBA(res, rp.ssn)
			}
		}
		m.eng.At(end, func() {
			if lt.att.done != nil {
				lt.att.done(res)
			}
		})
	}

	m.eng.At(end, m.arm)
}

// collisionPowers returns the strongest and second-strongest received power
// among overlapping transmissions at rx, plus the index of the strongest.
func (m *Medium) collisionPowers(live []liveTx, rx *Station, at sim.Time) (best, second float64, bestIdx int) {
	best, second = -1e9, -1e9
	bestIdx = -1
	for i, lt := range live {
		if lt.att.st == rx {
			continue
		}
		link, err := m.ch.Link(lt.att.st.Endpoint.Name, rx.Endpoint.Name)
		if err != nil {
			continue
		}
		p := link.RSSIdBm(at, lt.att.st.Endpoint.TxPowerDBm)
		if p > best {
			second = best
			best = p
			bestIdx = i
		} else if p > second {
			second = p
		}
	}
	return best, second, bestIdx
}

// decodeMPDUs applies the per-MPDU payload loss model for one synced frame.
func (m *Medium) decodeMPDUs(fr *Frame, esnr float64) []*MPDU {
	var out []*MPDU
	for _, mp := range fr.MPDUs {
		per := phy.PayloadPER(fr.MCS, esnr, mp.Bytes+phy.MACHeaderBytes+phy.FCSBytes)
		if m.rnd.Float64() >= per {
			out = append(out, mp)
		}
	}
	return out
}

// deliverResponses resolves the ACK/Block ACK phase. When several stations
// answer the same frame (every WGTT AP acknowledges uplink frames addressed
// to the shared BSSID), their response timing jitters by a few microseconds
// — the paper observes the HT-immediate Block ACK backoff varying "in the
// range of µs" (§5.3.2) — so usually one responder starts first and the
// rest suppress. Only same-slot ties go on the air together, and then each
// observer either captures the strongest or loses all: that combination is
// what keeps the measured ACK collision rate at Table 3's ~10⁻⁵ level.
func (m *Medium) deliverResponses(responses []respPlan, respMid, respEnd sim.Time) {
	m.RespTotal++
	if len(responses) > 1 {
		// Per-responder µs jitter; earliest slot transmits, rest suppress.
		minJ := 1 << 30
		jit := make([]int, len(responses))
		for i := range responses {
			jit[i] = m.rnd.IntN(64)
			if jit[i] < minJ {
				minJ = jit[i]
			}
		}
		var winners []respPlan
		for i, rp := range responses {
			if jit[i] == minJ {
				winners = append(winners, rp)
			}
		}
		responses = winners
	}
	multi := len(responses) > 1

	for _, rx := range m.stations {
		isResponder := false
		for _, rp := range responses {
			if rp.responder == rx {
				isResponder = true
			}
		}
		if isResponder {
			continue
		}
		// Which response, if any, does rx decode?
		bestIdx, best, second := -1, -1e9, -1e9
		for i, rp := range responses {
			link, err := m.ch.Link(rp.responder.Endpoint.Name, rx.Endpoint.Name)
			if err != nil {
				continue
			}
			p := link.RSSIdBm(respMid, rp.responder.Endpoint.TxPowerDBm)
			if p > best {
				second = best
				best = p
				bestIdx = i
			} else if p > second {
				second = p
			}
		}
		if bestIdx < 0 {
			continue
		}
		if multi && best-second < m.RespCaptureDB {
			// Collision at this observer. Count it only at a station the
			// response was addressed to (the retransmission cost is theirs).
			for _, rp := range responses {
				if rp.toward == rx {
					m.RespCollisions++
					rx.markRespCollision()
				}
			}
			continue
		}
		rp := responses[bestIdx]
		link, _ := m.ch.Link(rp.responder.Endpoint.Name, rx.Endpoint.Name)
		ev := &BAEvent{
			At:        respEnd,
			Responder: rp.responder.Addr,
			Client:    rp.toward.Addr,
			SSN:       rp.ssn,
			Bitmap:    rp.bitmap,
			Overheard: rp.toward != rx,
		}
		ev.SNRdB = link.SNRInto(respMid, rp.responder.Endpoint, ev.snrStore[:0])
		// Control responses go out in legacy OFDM at the 24 Mb/s basic rate
		// — 16-QAM rate ½, i.e. MCS3-grade robustness, not MCS0. This is
		// why the paper sees Block ACKs "prone to loss" near cell edges
		// while low-MCS data still gets through (§3.2.1).
		esnr := csi.ESNRdB(ev.SNRdB, phy.Lookup(basicRateMCS).Modulation)
		per := phy.PER(basicRateMCS, esnr, phy.BlockAckBytes)
		if m.rnd.Float64() < per {
			continue // response lost in the channel
		}
		rxStation := rx
		m.eng.At(respEnd, func() { rxStation.deliverBA(ev) })
	}
}

// Utilization returns the fraction of elapsed time the medium was busy.
func (m *Medium) Utilization() float64 {
	if m.eng.Now() == 0 {
		return 0
	}
	return m.BusyTime.Seconds() / m.eng.Now().Seconds()
}

// String summarizes medium statistics.
func (m *Medium) String() string {
	return fmt.Sprintf("medium{grants=%d txcoll=%d respcoll=%d/%d busy=%v}",
		m.Grants, m.TxCollisions, m.RespCollisions, m.RespTotal, m.BusyTime)
}

// drawBackoff draws a uniform backoff in [0, cw].
func (m *Medium) drawBackoff(cw int) int { return m.rnd.IntN(cw + 1) }
