package client

import (
	"testing"

	"wgtt/internal/mac"
	"wgtt/internal/mobility"
	"wgtt/internal/packet"
	"wgtt/internal/radio"
	"wgtt/internal/sim"
)

var bssid = packet.MACAddr{0x02, 0xbb, 0, 0, 0, 1}

type harness struct {
	eng    *sim.Engine
	medium *mac.Medium
	cl     *Client
	apSink *recSink
}

type recSink struct{ frames []*mac.RxEvent }

func (r *recSink) OnFrame(ev *mac.RxEvent) { r.frames = append(r.frames, ev) }
func (r *recSink) OnBlockAck(*mac.BAEvent) {}

func newHarness(t *testing.T) *harness {
	t.Helper()
	eng := sim.NewEngine()
	rng := sim.NewRNG(5)
	params := radio.DefaultParams()
	params.NoFading = true
	ch := radio.NewChannel(params, rng)
	medium := mac.NewMedium(eng, ch, rng.Stream("mac"))

	apEP := &radio.Endpoint{
		Name:         "ap1",
		Trace:        mobility.Stationary{At: mobility.Point{X: 20, Y: mobility.APSetback}},
		Antenna:      radio.NewLairdGD24BP(),
		BoresightRad: -1.5707963,
		TxPowerDBm:   17,
		ExtraLossDB:  24,
	}
	if err := ch.AddEndpoint(apEP); err != nil {
		t.Fatal(err)
	}
	sink := &recSink{}
	mac.NewStation(medium, mac.StationConfig{
		Addr:     packet.APMAC(0),
		Aliases:  []packet.MACAddr{bssid},
		Endpoint: apEP,
		Sink:     sink,
	})

	clEP := &radio.Endpoint{
		Name:       "car1",
		Trace:      mobility.Stationary{At: mobility.Point{X: 20}},
		TxPowerDBm: 15,
	}
	if err := ch.AddEndpoint(clEP); err != nil {
		t.Fatal(err)
	}
	st := mac.NewStation(medium, mac.StationConfig{Addr: packet.ClientMAC(1), Endpoint: clEP})
	cl := New(DefaultConfig(1, bssid), eng, st)
	return &harness{eng: eng, medium: medium, cl: cl, apSink: sink}
}

func TestUplinkDelivery(t *testing.T) {
	h := newHarness(t)
	for i := 0; i < 20; i++ {
		h.cl.SendUplink(&packet.Packet{FlowID: 1, Seq: uint32(i), IPID: uint16(i), Bytes: 1000})
	}
	h.eng.RunUntil(sim.Second)
	got := 0
	for _, ev := range h.apSink.frames {
		got += len(ev.Decoded)
	}
	if got < 19 {
		t.Errorf("AP decoded %d/20 uplink MPDUs", got)
	}
	if h.cl.Stats.UplinkDelivered < 19 {
		t.Errorf("client counted %d delivered", h.cl.Stats.UplinkDelivered)
	}
	if h.cl.QueueDepth() != 0 {
		t.Errorf("queue depth = %d after delivery", h.cl.QueueDepth())
	}
}

func TestKeepaliveProbes(t *testing.T) {
	h := newHarness(t)
	h.cl.StartKeepalive(10 * sim.Millisecond)
	h.eng.RunUntil(sim.Second)
	nulls := 0
	for _, ev := range h.apSink.frames {
		for _, mp := range ev.Decoded {
			if mp.Pkt != nil && mp.Pkt.Kind == packet.KindNull {
				nulls++
			}
		}
	}
	// ~100 keepalives in a second (minus MAC latency slack).
	if nulls < 80 {
		t.Errorf("AP heard %d keepalive nulls in 1 s", nulls)
	}
	if h.cl.StartKeepalive(0); false {
		t.Error("unreachable")
	}
}

func TestKeepaliveYieldsToTraffic(t *testing.T) {
	h := newHarness(t)
	h.cl.StartKeepalive(sim.Millisecond)
	// With a busy uplink queue (enough traffic to stay backlogged for the
	// whole window), keepalives must not be injected.
	for i := 0; i < 3000; i++ {
		h.cl.SendUplink(&packet.Packet{FlowID: 1, Seq: uint32(i), IPID: uint16(i), Bytes: 1400})
	}
	h.eng.RunUntil(200 * sim.Millisecond)
	nulls := 0
	for _, ev := range h.apSink.frames {
		for _, mp := range ev.Decoded {
			if mp.Pkt != nil && mp.Pkt.Kind == packet.KindNull {
				nulls++
			}
		}
	}
	if nulls > 20 {
		t.Errorf("%d keepalives injected while queue busy", nulls)
	}
}

func mkRx(idx uint16, at sim.Time) *mac.RxEvent {
	return &mac.RxEvent{
		At:      at,
		Kind:    mac.KindData,
		Decoded: []*mac.MPDU{{Pkt: &packet.Packet{Index: idx, Bytes: 1400, FlowID: 1}}},
		Total:   1,
	}
}

func TestDownlinkDedupTTL(t *testing.T) {
	h := newHarness(t)
	var got []uint16
	h.cl.OnDownlink = func(p *packet.Packet, _ sim.Time) { got = append(got, p.Index) }

	h.cl.OnFrame(mkRx(7, sim.Millisecond))
	h.cl.OnFrame(mkRx(7, 2*sim.Millisecond)) // duplicate within TTL
	if len(got) != 1 || h.cl.Stats.DownlinkDupes != 1 {
		t.Fatalf("dedup failed: got=%v dupes=%d", got, h.cl.Stats.DownlinkDupes)
	}
	// Same index long after the TTL: a wrapped, fresh packet — accepted.
	h.cl.OnFrame(mkRx(7, sim.Second))
	if len(got) != 2 {
		t.Error("TTL-expired index still treated as duplicate")
	}
}

func TestDownlinkOverheardIgnored(t *testing.T) {
	h := newHarness(t)
	n := 0
	h.cl.OnDownlink = func(*packet.Packet, sim.Time) { n++ }
	ev := mkRx(1, sim.Millisecond)
	ev.Overheard = true
	h.cl.OnFrame(ev)
	if n != 0 {
		t.Error("overheard frame delivered up the stack")
	}
}

func TestBeaconAndMgmtHooks(t *testing.T) {
	h := newHarness(t)
	var beacons int
	var mgmts int
	h.cl.OnBeacon = func(packet.MACAddr, float64, sim.Time) { beacons++ }
	h.cl.OnMgmt = func(*mac.RxEvent) { mgmts++ }
	h.cl.OnFrame(&mac.RxEvent{Kind: mac.KindBeacon, From: packet.APMAC(0), RSSIdBm: -60})
	h.cl.OnFrame(&mac.RxEvent{Kind: mac.KindMgmt})
	if beacons != 1 || mgmts != 1 {
		t.Errorf("beacons=%d mgmts=%d", beacons, mgmts)
	}
	if h.cl.Stats.Beacons != 1 {
		t.Error("beacon stat missing")
	}
}

func TestSetDest(t *testing.T) {
	h := newHarness(t)
	if h.cl.Dest() != bssid {
		t.Fatal("initial dest wrong")
	}
	h.cl.SetDest(packet.APMAC(3))
	if h.cl.Dest() != packet.APMAC(3) {
		t.Error("SetDest failed")
	}
}

func TestBuildFrameRespectsTXOPBudget(t *testing.T) {
	h := newHarness(t)
	for i := 0; i < 100; i++ {
		h.cl.SendUplink(&packet.Packet{FlowID: 1, Seq: uint32(i), IPID: uint16(i), Bytes: 1400})
	}
	fr := h.cl.BuildFrame()
	if fr == nil {
		t.Fatal("no frame built")
	}
	bytes := 0
	for _, mp := range fr.MPDUs {
		bytes += mp.Bytes
	}
	// The frame must fit the 4 ms TXOP at its chosen MCS.
	if air := fr.Airtime(); air > 4100*sim.Microsecond {
		t.Errorf("frame airtime %v exceeds the TXOP limit (%d MPDUs, %d B)", air, len(fr.MPDUs), bytes)
	}
}
