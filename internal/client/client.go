// Package client implements the mobile station of §3.2 and §4.1: the
// 802.11 client MAC glue that receives (and de-duplicates, §3.2.2)
// downlink packets, queues and aggregates uplink traffic toward the
// current BSSID, emits the null-frame CSI keepalives that feed the §3.1.1
// selection window under downlink-only load, and surfaces beacons and
// management traffic to whatever roaming logic sits above it (none for
// WGTT — the network roams for the client; the Enhanced 802.11r baseline
// of §5 plugs its client-driven roamer into the hooks).
package client

import (
	"wgtt/internal/mac"
	"wgtt/internal/metrics"
	"wgtt/internal/packet"
	"wgtt/internal/phy"
	"wgtt/internal/sim"
)

// Config parameterizes a client.
type Config struct {
	ID  int
	MAC packet.MACAddr
	IP  packet.IPv4Addr
	// Dest is the initial uplink destination (the shared BSSID for WGTT;
	// the first AP's own address for the baseline).
	Dest packet.MACAddr
	// MaxAggregate bounds uplink A-MPDU size.
	MaxAggregate int
	// MaxAggregateBytes bounds uplink A-MPDU payload bytes.
	MaxAggregateBytes int
	// RetryLimit is the per-MPDU retry budget.
	RetryLimit int
	// DedupTTL is how recently a 12-bit downlink index must have been seen
	// to count as a duplicate. Time-based suppression matters: the index
	// space wraps every 4096 packets, so an occupancy-based window would
	// false-positive on fresh packets whenever handover replays keep old
	// indices warm.
	DedupTTL sim.Time
}

// DefaultConfig returns a standard client.
func DefaultConfig(id int, dest packet.MACAddr) Config {
	return Config{
		ID:                id,
		MAC:               packet.ClientMAC(id),
		IP:                packet.ClientIP(id),
		Dest:              dest,
		MaxAggregate:      24,
		MaxAggregateBytes: 48 * 1024,
		RetryLimit:        7,
		DedupTTL:          200 * sim.Millisecond,
	}
}

// Stats counts client-side events.
type Stats struct {
	DownlinkMPDUs   uint64 // unique downlink packets delivered up the stack
	DownlinkDupes   uint64 // duplicates suppressed (index already seen)
	UplinkQueued    uint64
	UplinkDropped   uint64 // retry budget exhausted
	UplinkDelivered uint64
	Beacons         uint64
}

// Client is one mobile station.
type Client struct {
	cfg Config
	eng *sim.Engine
	st  *mac.Station

	dest packet.MACAddr

	uplinkQ []*packet.Packet
	retryQ  []*mac.MPDU

	seen      map[uint16]sim.Time
	seenSweep sim.Time

	// kaGen invalidates in-flight keepalive timers: each StartKeepalive
	// bumps it and StopKeepalive bumps it again, so a stale tick closure
	// notices and dies instead of rescheduling forever. Metro cells need
	// this — a client's presence in a cell is windowed, and its keepalives
	// must stop when it migrates out.
	kaGen uint64

	// OnDownlink receives each unique downlink packet (transport hookup).
	OnDownlink func(p *packet.Packet, at sim.Time)
	// OnBeacon observes beacons (RSSI source for the baseline roamer).
	OnBeacon func(from packet.MACAddr, rssiDBm float64, at sim.Time)
	// OnMgmt observes received management frames.
	OnMgmt func(ev *mac.RxEvent)

	// met holds the observability handles (nil-safe; see DESIGN.md §10).
	met clientMetrics

	Stats Stats
}

// clientMetrics holds the client's observability handles.
type clientMetrics struct {
	keepalives *metrics.Counter
	downDupes  *metrics.Counter
}

// UseMetrics wires the client's instruments into r under the given
// component name (call before the run starts). A nil registry leaves
// recording disabled.
func (c *Client) UseMetrics(r *metrics.Registry, component string) {
	c.met = clientMetrics{
		keepalives: r.Counter(component, "keepalives_sent"),
		downDupes:  r.Counter(component, "downlink_dupes"),
	}
}

// New creates a client bound to an existing MAC station; the client
// installs itself as the station's Sink and Source.
func New(cfg Config, eng *sim.Engine, st *mac.Station) *Client {
	if cfg.DedupTTL <= 0 {
		cfg.DedupTTL = 200 * sim.Millisecond
	}
	c := &Client{cfg: cfg, eng: eng, st: st, dest: cfg.Dest, seen: make(map[uint16]sim.Time)}
	st.SetSink(c)
	st.SetSource(c)
	return c
}

// Config returns the client's configuration.
func (c *Client) Config() Config { return c.cfg }

// Station returns the underlying MAC station.
func (c *Client) Station() *mac.Station { return c.st }

// Dest returns the current uplink destination address.
func (c *Client) Dest() packet.MACAddr { return c.dest }

// SetDest retargets uplink traffic (baseline roam). Pending retries keep
// their MPDUs but will be rebuilt toward the new destination.
func (c *Client) SetDest(d packet.MACAddr) { c.dest = d }

// StartKeepalive emits an 802.11 null-data frame every interval whenever
// the uplink is otherwise idle. Real stations do this for power management
// and connectivity checks; here, as on the testbed, these frames are what
// keeps per-AP CSI flowing at millisecond granularity when the workload is
// downlink-only (§3.1.1's selection window needs fresh uplink samples).
func (c *Client) StartKeepalive(interval sim.Time) {
	if interval <= 0 {
		return
	}
	c.kaGen++
	gen := c.kaGen
	var tick func()
	tick = func() {
		if c.kaGen != gen {
			return
		}
		if !c.hasWork() {
			c.met.keepalives.Inc()
			c.uplinkQ = append(c.uplinkQ, &packet.Packet{
				ClientMAC: c.cfg.MAC,
				SrcIP:     c.cfg.IP,
				Bytes:     36,
				Uplink:    true,
				Kind:      packet.KindNull,
				Created:   c.eng.Now(),
			})
			c.st.Kick()
		}
		c.eng.After(interval, tick)
	}
	c.eng.After(interval, tick)
}

// StopKeepalive cancels the keepalive stream started by StartKeepalive.
// The pending timer still fires once but finds its generation stale and
// does nothing. Safe to call when no keepalive is running.
func (c *Client) StopKeepalive() { c.kaGen++ }

// SendUplink queues one packet for uplink transmission.
func (c *Client) SendUplink(p *packet.Packet) {
	p.Uplink = true
	p.ClientMAC = c.cfg.MAC
	if p.SrcIP.IsZero() {
		p.SrcIP = c.cfg.IP
	}
	c.uplinkQ = append(c.uplinkQ, p)
	c.Stats.UplinkQueued++
	c.st.Kick()
}

// BuildFrame implements mac.Source (uplink aggregates).
func (c *Client) BuildFrame() *mac.Frame {
	mcs := c.st.PickMCS(c.dest)
	budget := min(c.cfg.MaxAggregateBytes, phy.TXOPByteBudget(mcs))
	var mpdus []*mac.MPDU
	bytes := 0
	n := 0
	for n < len(c.retryQ) && n < c.cfg.MaxAggregate && bytes < budget {
		mpdus = append(mpdus, c.retryQ[n])
		bytes += c.retryQ[n].Bytes
		n++
	}
	c.retryQ = c.retryQ[n:]
	for len(mpdus) < c.cfg.MaxAggregate && bytes < budget && len(c.uplinkQ) > 0 {
		p := c.uplinkQ[0]
		c.uplinkQ = c.uplinkQ[1:]
		mpdus = append(mpdus, &mac.MPDU{Seq: c.st.NextSeq(c.dest), Pkt: p, Bytes: p.Bytes})
		bytes += p.Bytes
	}
	if len(mpdus) == 0 {
		return nil
	}
	return &mac.Frame{
		Kind:  mac.KindData,
		From:  c.cfg.MAC,
		To:    c.dest,
		MCS:   mcs,
		MPDUs: mpdus,
	}
}

// OnTxDone implements mac.Source.
func (c *Client) OnTxDone(res *mac.TxResult) {
	if res == nil || res.Frame == nil {
		if c.hasWork() {
			c.st.Kick()
		}
		return
	}
	acked := 0
	for _, mp := range res.Frame.MPDUs {
		if res.BAReceived && mac.BitmapAcks(res.SSN, res.Bitmap, mp.Seq) {
			acked++
			c.Stats.UplinkDelivered++
			continue
		}
		mp.Retries++
		if mp.Retries > c.cfg.RetryLimit {
			c.Stats.UplinkDropped++
			continue
		}
		c.retryQ = append(c.retryQ, mp)
	}
	c.st.ReportTx(res.Frame.To, res.Frame.MCS, len(res.Frame.MPDUs), acked)
	if c.hasWork() {
		c.st.Kick()
	}
}

func (c *Client) hasWork() bool { return len(c.uplinkQ) > 0 || len(c.retryQ) > 0 }

// QueueDepth returns pending uplink packets (fresh + retries).
func (c *Client) QueueDepth() int { return len(c.uplinkQ) + len(c.retryQ) }

// OnFrame implements mac.Sink: downlink reception with duplicate
// suppression keyed on the controller-assigned 12-bit index.
func (c *Client) OnFrame(ev *mac.RxEvent) {
	switch ev.Kind {
	case mac.KindBeacon:
		c.Stats.Beacons++
		if c.OnBeacon != nil {
			c.OnBeacon(ev.From, ev.RSSIdBm, ev.At)
		}
		return
	case mac.KindMgmt:
		if c.OnMgmt != nil {
			c.OnMgmt(ev)
		}
		return
	}
	if ev.Overheard {
		return
	}
	for _, mp := range ev.Decoded {
		if mp.Pkt == nil {
			continue
		}
		if c.isDup(mp.Pkt.Index, ev.At) {
			c.Stats.DownlinkDupes++
			c.met.downDupes.Inc()
			continue
		}
		c.Stats.DownlinkMPDUs++
		if c.OnDownlink != nil {
			c.OnDownlink(mp.Pkt, ev.At)
		}
	}
}

// OnBlockAck implements mac.Sink (nothing to do at the client).
func (c *Client) OnBlockAck(*mac.BAEvent) {}

// isDup records and tests the downlink index against the TTL window.
func (c *Client) isDup(idx uint16, at sim.Time) bool {
	last, ok := c.seen[idx]
	c.seen[idx] = at
	if ok && at-last < c.cfg.DedupTTL {
		return true
	}
	// Amortized sweep keeps the map from accumulating stale entries.
	if at-c.seenSweep > 10*c.cfg.DedupTTL {
		c.seenSweep = at
		for k, v := range c.seen {
			if at-v >= c.cfg.DedupTTL {
				delete(c.seen, k)
			}
		}
	}
	return false
}
