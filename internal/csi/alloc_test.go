package csi

import (
	"testing"

	"wgtt/internal/mobility"
	"wgtt/internal/packet"
	"wgtt/internal/radio"
	"wgtt/internal/sim"
)

func allocTestLink(t *testing.T, seed uint64) (*radio.Link, *radio.Endpoint) {
	t.Helper()
	ch := radio.NewChannel(radio.DefaultParams(), sim.NewRNG(seed))
	ap := &radio.Endpoint{
		Name:       "ap1",
		Trace:      mobility.Stationary{At: mobility.Point{X: 20, Y: mobility.APSetback}},
		TxPowerDBm: 17,
	}
	car := &radio.Endpoint{
		Name:        "car1",
		Trace:       mobility.DriveBy(0, 0, 15),
		TxPowerDBm:  15,
		SpeedHintMS: 15,
	}
	if err := ch.AddEndpoint(ap); err != nil {
		t.Fatal(err)
	}
	if err := ch.AddEndpoint(car); err != nil {
		t.Fatal(err)
	}
	link, err := ch.Link("ap1", "car1")
	if err != nil {
		t.Fatal(err)
	}
	return link, car
}

// The steady-state measurement pipeline — link sample into a recycled
// Report, ESNR over it, and the wire-report unpack on the controller side —
// must not allocate.
func TestCSIPipelineZeroAlloc(t *testing.T) {
	link, car := allocTestLink(t, 11)

	var rep Report
	i := 0
	if avg := testing.AllocsPerRun(200, func() {
		i++
		rep.Fill(link, car, "ap1", sim.Time(i)*sim.Millisecond)
		_ = rep.ESNRdB()
	}); avg != 0 {
		t.Errorf("Fill+ESNRdB allocates %.1f times per sample, want 0", avg)
	}

	wire := &packet.CSIReport{}
	wire.QuantizeSNR(rep.SNRdB)
	var scratch []float64
	if avg := testing.AllocsPerRun(200, func() {
		scratch = wire.SNRdBInto(scratch)
		_ = ESNRdB(scratch, DefaultESNRModulation)
	}); avg != 0 {
		t.Errorf("SNRdBInto+ESNRdB allocates %.1f times per report, want 0", avg)
	}
}

// Fill must produce exactly what Measure produces.
func TestFillMatchesMeasure(t *testing.T) {
	link, car := allocTestLink(t, 13)
	at := 42 * sim.Millisecond
	want := Measure(link, car, "ap1", at)
	var got Report
	got.Fill(link, car, "ap1", at)
	if got.Client != want.Client || got.AP != want.AP || got.At != want.At {
		t.Fatalf("Fill header mismatch: %+v vs %+v", got, *want)
	}
	if len(got.SNRdB) != len(want.SNRdB) {
		t.Fatalf("Fill length %d, Measure %d", len(got.SNRdB), len(want.SNRdB))
	}
	for i := range got.SNRdB {
		if got.SNRdB[i] != want.SNRdB[i] {
			t.Fatalf("subcarrier %d: Fill %v != Measure %v", i, got.SNRdB[i], want.SNRdB[i])
		}
	}
}
