package csi

import (
	"testing"

	"wgtt/internal/phy"
)

// benchSNR returns a realistic frequency-selective 56-subcarrier snapshot
// centered on meanDB with a few deep fades.
func benchSNR(meanDB float64) []float64 {
	snr := make([]float64, Subcarriers)
	for i := range snr {
		snr[i] = meanDB + 6*float64(i%7)/7 - 3
	}
	snr[11] = meanDB - 18 // deep fade
	snr[37] = meanDB - 12
	return snr
}

// BenchmarkESNRMid is the ESNR computation at a mid-cell operating point —
// the per-report cost of the controller's CSI ingest.
func BenchmarkESNRMid(b *testing.B) {
	snr := benchSNR(22)
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += ESNRdB(snr, phy.QAM64)
	}
	_ = sink
}

// BenchmarkESNRWeak is the same computation at a cell-edge operating point
// (BERs near saturation), the regime every distant overhearing AP reports.
func BenchmarkESNRWeak(b *testing.B) {
	snr := benchSNR(2)
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += ESNRdB(snr, phy.QAM64)
	}
	_ = sink
}
