// Package csi models the channel state information pipeline of WGTT: each
// AP's NIC measures per-subcarrier CSI on every uplink frame (the Atheros
// CSI Tool reports all 56 OFDM subcarriers of an HT20 channel), encapsulates
// it in a UDP report, and ships it to the controller, which computes
// Effective SNR (Halperin et al.) — the link metric the AP selection
// algorithm of §3.1.1 runs on.
package csi

import (
	"fmt"
	"math"

	"wgtt/internal/phy"
	"wgtt/internal/radio"
	"wgtt/internal/sim"
)

// Subcarriers is the number of CSI-visible subcarriers (HT20).
const Subcarriers = 56

// Report is one CSI measurement: the per-subcarrier SNR an AP observed on
// one uplink frame from a client. The AP forwards each Report to the
// controller over the Ethernet backhaul.
type Report struct {
	Client string   // transmitting client
	AP     string   // measuring AP
	At     sim.Time // reception time
	// SNRdB holds the per-subcarrier SNR in dB, Subcarriers entries.
	SNRdB []float64

	// snrStore inlines the standard 56-entry snapshot so that one Report
	// allocation covers its SNR storage; Fill aliases SNRdB onto it.
	snrStore [Subcarriers]float64
}

// Validate checks structural sanity of a report.
func (r *Report) Validate() error {
	if r.Client == "" || r.AP == "" {
		return fmt.Errorf("csi: report missing endpoint names")
	}
	if len(r.SNRdB) != Subcarriers {
		return fmt.Errorf("csi: report has %d subcarriers, want %d", len(r.SNRdB), Subcarriers)
	}
	for i, v := range r.SNRdB {
		if math.IsNaN(v) {
			return fmt.Errorf("csi: subcarrier %d is NaN", i)
		}
	}
	return nil
}

// Measure samples the link at time t for a transmission from the client
// endpoint and wraps it in a Report, as the AP NIC would on frame reception.
func Measure(l *radio.Link, client *radio.Endpoint, ap string, t sim.Time) *Report {
	r := &Report{}
	r.Fill(l, client, ap, t)
	return r
}

// Fill refills r in place from a fresh link sample, reusing r's inline SNR
// storage — the allocation-free counterpart of Measure for callers that
// recycle reports.
func (r *Report) Fill(l *radio.Link, client *radio.Endpoint, ap string, t sim.Time) {
	r.Client = client.Name
	r.AP = ap
	r.At = t
	r.SNRdB = l.SNRInto(t, client, r.snrStore[:0])
}

// DefaultESNRModulation is the constellation the default ESNR metric is
// computed against. 64-QAM's BER curve stays informative across the whole
// 0–30 dB range the testbed links span; lower-order curves underflow (and
// the metric saturates) above ~20 dB.
const DefaultESNRModulation = phy.QAM64

// ESNRdB computes the Effective SNR of per-subcarrier SNRs for a given
// modulation: average the per-subcarrier BERs, then invert the AWGN BER
// curve to find the flat-channel SNR that would produce the same average.
// Unlike mean SNR or RSSI, this correctly penalizes frequency-selective
// fades that concentrate errors on a few subcarriers.
// The whole computation stays in the dB domain: one table lookup per
// subcarrier (phy.Modulation.BERdB) and one table inversion per report,
// with no per-subcarrier pow/erfc.
func ESNRdB(snrDB []float64, m phy.Modulation) float64 {
	if len(snrDB) == 0 {
		return math.Inf(-1)
	}
	var sum float64
	for _, s := range snrDB {
		sum += m.BERdB(s)
	}
	mean := sum / float64(len(snrDB))
	return m.InvBERdB(mean)
}

// ESNRdB returns the report's Effective SNR under the default modulation.
func (r *Report) ESNRdB() float64 { return ESNRdB(r.SNRdB, DefaultESNRModulation) }

// ESNRdBFor returns the report's Effective SNR under modulation m.
func (r *Report) ESNRdBFor(m phy.Modulation) float64 { return ESNRdB(r.SNRdB, m) }

// MeanSNRdB returns the arithmetic mean of the per-subcarrier SNRs in dB —
// the naive metric ESNR improves upon.
func (r *Report) MeanSNRdB() float64 {
	if len(r.SNRdB) == 0 {
		return math.Inf(-1)
	}
	var sum float64
	for _, s := range r.SNRdB {
		sum += s
	}
	return sum / float64(len(r.SNRdB))
}

// PredictPER predicts the loss probability of a frameBytes-long downlink
// MPDU sent at MCS mcs, given this (reciprocal) channel measurement.
func (r *Report) PredictPER(mcs phy.MCS, frameBytes int) float64 {
	return phy.PER(mcs, r.ESNRdBFor(phy.Lookup(mcs).Modulation), frameBytes)
}

// PredictBestMCS returns the ESNR-directed best MCS for the measured
// channel.
func (r *Report) PredictBestMCS(frameBytes int, maxPER float64) phy.MCS {
	return phy.BestMCS(r.ESNRdB(), frameBytes, maxPER)
}
