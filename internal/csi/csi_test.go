package csi

import (
	"math"
	"testing"
	"testing/quick"

	"wgtt/internal/mobility"
	"wgtt/internal/phy"
	"wgtt/internal/radio"
	"wgtt/internal/sim"
)

func flatSNR(db float64) []float64 {
	s := make([]float64, Subcarriers)
	for i := range s {
		s[i] = db
	}
	return s
}

func TestESNRFlatChannelIdentity(t *testing.T) {
	// On a flat channel, ESNR equals the per-subcarrier SNR.
	for _, db := range []float64{5, 10, 15, 20} {
		got := ESNRdB(flatSNR(db), phy.QAM16)
		if math.Abs(got-db) > 0.05 {
			t.Errorf("flat-channel ESNR(%v dB) = %v", db, got)
		}
	}
}

func TestESNRPenalizesSelectiveFades(t *testing.T) {
	// Same mean SNR, but one channel has a deep fade on a quarter of the
	// band: its ESNR must be lower.
	faded := flatSNR(18)
	for i := 0; i < Subcarriers/4; i++ {
		faded[i] = 2
	}
	// Raise the rest to keep the arithmetic mean at 18 dB.
	comp := (18.0*float64(Subcarriers) - 2*float64(Subcarriers/4)) / float64(Subcarriers-Subcarriers/4)
	for i := Subcarriers / 4; i < Subcarriers; i++ {
		faded[i] = comp
	}
	esnrFaded := ESNRdB(faded, phy.QAM16)
	esnrFlat := ESNRdB(flatSNR(18), phy.QAM16)
	if esnrFaded >= esnrFlat-1 {
		t.Errorf("selective fade not penalized: faded=%v flat=%v", esnrFaded, esnrFlat)
	}
}

func TestESNREmpty(t *testing.T) {
	if !math.IsInf(ESNRdB(nil, phy.QPSK), -1) {
		t.Error("empty ESNR should be -inf")
	}
}

func TestESNRMonotoneInSNR(t *testing.T) {
	f := func(aq, bq uint8) bool {
		a := float64(aq)/8 - 5
		b := float64(bq)/8 - 5
		if a > b {
			a, b = b, a
		}
		return ESNRdB(flatSNR(a), phy.QAM16) <= ESNRdB(flatSNR(b), phy.QAM16)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReportValidate(t *testing.T) {
	good := &Report{Client: "c", AP: "a", SNRdB: flatSNR(10)}
	if err := good.Validate(); err != nil {
		t.Errorf("good report rejected: %v", err)
	}
	bad := []*Report{
		{AP: "a", SNRdB: flatSNR(10)},
		{Client: "c", SNRdB: flatSNR(10)},
		{Client: "c", AP: "a", SNRdB: flatSNR(10)[:10]},
		{Client: "c", AP: "a", SNRdB: append(flatSNR(10)[:Subcarriers-1], math.NaN())},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("bad report %d accepted", i)
		}
	}
}

func TestReportMetrics(t *testing.T) {
	r := &Report{Client: "c", AP: "a", SNRdB: flatSNR(20)}
	if m := r.MeanSNRdB(); math.Abs(m-20) > 1e-9 {
		t.Errorf("MeanSNRdB = %v", m)
	}
	if e := r.ESNRdB(); math.Abs(e-20) > 0.05 {
		t.Errorf("ESNRdB = %v", e)
	}
	// QPSK's BER underflows above ~18 dB, so probe it in its valid range.
	r12 := &Report{SNRdB: flatSNR(12)}
	if e := r12.ESNRdBFor(phy.QPSK); math.Abs(e-12) > 0.3 {
		t.Errorf("ESNRdBFor(QPSK) = %v", e)
	}
	empty := &Report{}
	if !math.IsInf(empty.MeanSNRdB(), -1) {
		t.Error("empty MeanSNRdB should be -inf")
	}
}

func TestReportPredictions(t *testing.T) {
	strong := &Report{SNRdB: flatSNR(30)}
	weak := &Report{SNRdB: flatSNR(4)}
	if m := strong.PredictBestMCS(1500, 0.1); m != 7 {
		t.Errorf("strong channel best MCS = %v", m)
	}
	if m := weak.PredictBestMCS(1500, 0.1); m > 1 {
		t.Errorf("weak channel best MCS = %v", m)
	}
	if p := strong.PredictPER(7, 1500); p > 0.01 {
		t.Errorf("strong channel MCS7 PER = %v", p)
	}
	if p := weak.PredictPER(7, 1500); p < 0.99 {
		t.Errorf("weak channel MCS7 PER = %v", p)
	}
}

func TestMeasureFromLink(t *testing.T) {
	ch := radio.NewChannel(radio.DefaultParams(), sim.NewRNG(11))
	ap := &radio.Endpoint{
		Name:         "ap1",
		Trace:        mobility.Stationary{At: mobility.Point{X: 20, Y: mobility.APSetback}},
		Antenna:      radio.NewLairdGD24BP(),
		BoresightRad: -math.Pi / 2,
		TxPowerDBm:   17,
	}
	car := &radio.Endpoint{
		Name:        "car1",
		Trace:       mobility.DriveBy(0, 0, 15),
		TxPowerDBm:  15,
		SpeedHintMS: mobility.MPH(15),
	}
	if err := ch.AddEndpoint(ap); err != nil {
		t.Fatal(err)
	}
	if err := ch.AddEndpoint(car); err != nil {
		t.Fatal(err)
	}
	link := ch.MustLink("ap1", "car1")
	at := sim.FromSeconds(2.98) // boresight
	r := Measure(link, car, "ap1", at)
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if r.Client != "car1" || r.AP != "ap1" || r.At != at {
		t.Error("report metadata wrong")
	}
	// ESNR near boresight should be solidly positive.
	if e := r.ESNRdB(); e < 5 {
		t.Errorf("boresight ESNR = %v dB", e)
	}
}

// ESNR's raison d'être (paper §3.1.1): on frequency-selective channels it
// predicts delivery better than mean SNR. Construct paired channels where
// the mean says "equal" but ESNR must disagree, and check ESNR ranks the
// truly better channel first.
func TestESNRBeatsMeanSNRRanking(t *testing.T) {
	flat := flatSNR(14)
	selective := flatSNR(14)
	for i := 0; i < 10; i++ {
		selective[i] = 0
	}
	lift := (14.0*56 - 0*10) / 46
	for i := 10; i < 56; i++ {
		selective[i] = lift
	}
	if ESNRdB(selective, phy.QAM16) >= ESNRdB(flat, phy.QAM16) {
		t.Error("ESNR failed to rank flat channel above equal-mean selective channel")
	}
}
