// Package urban generates deterministic urban mobility workloads: a
// street-grid city graph with per-segment speed limits and curbside AP
// placement, routed vehicle traces with turn slowdowns and traffic-light
// dwell, buses carrying correlated rider groups (the §5.2 transit workload
// generalized from one straight corridor to a connected city), independent
// pedestrians, and a geographic partition binding that maps city slabs onto
// the §13 federation domains so routes cross controller boundaries at
// street level. Everything is a pure function of (config, seed) via named
// RNG streams, preserving the repo-wide byte-identical determinism
// contract (§7).
package urban

import "fmt"

// Config describes one urban scenario: the grid, the AP deployment, and
// the traffic mix. The zero value is not runnable; start from
// DefaultConfig.
type Config struct {
	// Rows, Cols are the intersection grid dimensions (≥ 2 each).
	Rows, Cols int
	// BlockM is the street-block edge length in meters.
	BlockM float64
	// APSpacingM spaces the curbside APs along every street segment;
	// APSetbackM offsets them off the lane centerline.
	APSpacingM float64
	APSetbackM float64
	// Cars, Buses, Pedestrians size the traffic mix; each bus carries
	// RidersPerBus rider clients plus the bus gateway client itself.
	Cars         int
	Buses        int
	RidersPerBus int
	Pedestrians  int
	// Domains partitions the city into that many federation domains
	// (vertical slabs). 1 = single controller.
	Domains int
	// CarSpeedsMPH is the design-speed mix cars draw from; BusSpeedMPH and
	// PedSpeedMPH are fixed per mode. Segments cap these at their limit.
	CarSpeedsMPH []float64
	BusSpeedMPH  float64
	PedSpeedMPH  float64
	// MaxDurationS caps the scenario length in seconds; the plan otherwise
	// runs until the last route finishes plus a short tail.
	MaxDurationS float64
}

// DefaultConfig is a small two-avenue, three-street city: one bus line of
// ten riders, one car, two pedestrians, two federation domains, ~¼ of the
// paper's 25 m AP spacing corridor density along every block.
func DefaultConfig() Config {
	return Config{
		Rows: 2, Cols: 3, BlockM: 60,
		APSpacingM: 25, APSetbackM: 6,
		Cars: 1, Buses: 1, RidersPerBus: 10, Pedestrians: 2,
		Domains:      2,
		CarSpeedsMPH: []float64{15, 25, 35},
		BusSpeedMPH:  15, PedSpeedMPH: 3,
		MaxDurationS: 60,
	}
}

// Validate rejects configs the planner cannot turn into a scenario.
func (c Config) Validate() error {
	if c.Rows < 2 || c.Cols < 2 {
		return fmt.Errorf("urban: grid needs at least 2x2 intersections, got %dx%d", c.Rows, c.Cols)
	}
	if c.BlockM <= 0 {
		return fmt.Errorf("urban: block length must be positive, got %g", c.BlockM)
	}
	if c.APSpacingM <= 0 || c.APSetbackM < 0 {
		return fmt.Errorf("urban: AP spacing must be positive and setback non-negative")
	}
	if c.Cars < 0 || c.Buses < 0 || c.RidersPerBus < 0 || c.Pedestrians < 0 {
		return fmt.Errorf("urban: traffic counts must be non-negative")
	}
	if c.Cars+c.Buses+c.Pedestrians == 0 {
		return fmt.Errorf("urban: scenario needs at least one car, bus, or pedestrian")
	}
	if c.Domains < 1 {
		return fmt.Errorf("urban: need at least one domain, got %d", c.Domains)
	}
	if c.Cars > 0 && len(c.CarSpeedsMPH) == 0 {
		return fmt.Errorf("urban: cars need a non-empty speed mix")
	}
	for _, s := range c.CarSpeedsMPH {
		if s <= 0 {
			return fmt.Errorf("urban: car speed must be positive, got %g mph", s)
		}
	}
	if c.Buses > 0 && c.BusSpeedMPH <= 0 {
		return fmt.Errorf("urban: bus speed must be positive, got %g mph", c.BusSpeedMPH)
	}
	if c.Pedestrians > 0 && c.PedSpeedMPH <= 0 {
		return fmt.Errorf("urban: pedestrian speed must be positive, got %g mph", c.PedSpeedMPH)
	}
	if c.MaxDurationS <= 0 {
		return fmt.Errorf("urban: max duration must be positive, got %g s", c.MaxDurationS)
	}
	return nil
}
