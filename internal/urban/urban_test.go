package urban

import (
	"math"
	"testing"

	"wgtt/internal/mobility"
	"wgtt/internal/sim"
)

func TestGridShape(t *testing.T) {
	g, err := NewGrid(3, 4, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes) != 12 {
		t.Fatalf("nodes = %d, want 12", len(g.Nodes))
	}
	// 3 rows × 3 avenue edges + 4 cols × 2 street edges.
	if len(g.Edges) != 9+8 {
		t.Fatalf("edges = %d, want 17", len(g.Edges))
	}
	// Avenues come first, streets after.
	for i, e := range g.Edges {
		if (i < 9) != e.Avenue {
			t.Fatalf("edge %d avenue=%v, want avenues in the first 9 slots", i, e.Avenue)
		}
		if e.Length != 50 {
			t.Fatalf("edge %d length = %g, want 50", i, e.Length)
		}
		if e.Avenue && e.SpeedMPH != 25 && e.SpeedMPH != 35 {
			t.Fatalf("avenue %d limit = %g, want 25 or 35", i, e.SpeedMPH)
		}
		if !e.Avenue && e.SpeedMPH != 15 && e.SpeedMPH != 25 {
			t.Fatalf("street %d limit = %g, want 15 or 25", i, e.SpeedMPH)
		}
	}
	n := g.NodeAt(2, 3)
	if got := g.Nodes[n].Pos; got != (mobility.Point{X: 150, Y: 100}) {
		t.Fatalf("node (2,3) at %v, want (150,100)", got)
	}
	if g.EdgeBetween(0, 1) < 0 || g.EdgeBetween(1, 0) < 0 {
		t.Fatal("edge 0-1 not found")
	}
	if g.EdgeBetween(0, 5) >= 0 {
		t.Fatal("diagonal 0-5 should not be a street")
	}
	// Corner degree 2, edge-of-grid 3, interior 4.
	if d := g.Degree(g.NodeAt(0, 0)); d != 2 {
		t.Fatalf("corner degree = %d, want 2", d)
	}
	if d := g.Degree(g.NodeAt(0, 1)); d != 3 {
		t.Fatalf("edge-node degree = %d, want 3", d)
	}
	if d := g.Degree(g.NodeAt(1, 1)); d != 4 {
		t.Fatalf("interior degree = %d, want 4", d)
	}
}

func TestGridRejectsDegenerate(t *testing.T) {
	if _, err := NewGrid(1, 4, 50, 1); err == nil {
		t.Fatal("1-row grid accepted")
	}
	if _, err := NewGrid(2, 2, 0, 1); err == nil {
		t.Fatal("zero block accepted")
	}
}

func TestPlaceAPs(t *testing.T) {
	g, err := NewGrid(2, 2, 60, 3)
	if err != nil {
		t.Fatal(err)
	}
	sites := g.PlaceAPs(25, 6)
	// 4 edges × 2 APs each (60/25 → 2 per edge).
	if len(sites) != 8 {
		t.Fatalf("sites = %d, want 8", len(sites))
	}
	for _, s := range sites {
		e := g.Edges[s.Edge]
		a, b := g.Nodes[e.A].Pos, g.Nodes[e.B].Pos
		// Perpendicular distance from the street centerline is the setback.
		d := pointSegDist(s.Pos, a, b)
		if math.Abs(d-6) > 1e-9 {
			t.Fatalf("AP %v is %g m off edge %d, want 6", s.Pos, d, s.Edge)
		}
	}
}

func pointSegDist(p, a, b mobility.Point) float64 {
	ab := b.Sub(a)
	t := (p.Sub(a).X*ab.X + p.Sub(a).Y*ab.Y) / (ab.X*ab.X + ab.Y*ab.Y)
	proj := a.Add(ab.Scale(t))
	return p.Distance(proj)
}

func TestShortestPathPrefersFastStreets(t *testing.T) {
	g, err := NewGrid(2, 3, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Corner to corner: path must exist, start and end right, and be
	// connected by real street segments.
	path := g.ShortestPath(g.NodeAt(0, 0), g.NodeAt(1, 2), 35)
	if path == nil {
		t.Fatal("no path across a connected grid")
	}
	if path[0] != 0 || path[len(path)-1] != g.NodeAt(1, 2) {
		t.Fatalf("path %v does not join the endpoints", path)
	}
	for i := 0; i+1 < len(path); i++ {
		if g.EdgeBetween(path[i], path[i+1]) < 0 {
			t.Fatalf("path hop %d->%d is not a street", path[i], path[i+1])
		}
	}
	// Same query twice: identical (tie-breaking is deterministic).
	again := g.ShortestPath(g.NodeAt(0, 0), g.NodeAt(1, 2), 35)
	for i := range path {
		if path[i] != again[i] {
			t.Fatalf("path changed between runs: %v vs %v", path, again)
		}
	}
}

func TestPartitionSlabs(t *testing.T) {
	g, err := NewGrid(2, 3, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		x    float64
		want int
	}{
		{0, 0}, {59, 0}, {61, 1}, {120, 1}, {-5, 0}, {500, 1},
	}
	for _, c := range cases {
		if got := g.Partition(mobility.Point{X: c.x, Y: 30}, 2); got != c.want {
			t.Fatalf("Partition(x=%g) = %d, want %d", c.x, got, c.want)
		}
	}
	if got := g.Partition(mobility.Point{X: 90}, 1); got != 0 {
		t.Fatalf("single-domain partition = %d, want 0", got)
	}
}

func TestBuildPlanDefault(t *testing.T) {
	cfg := DefaultConfig()
	p, err := BuildPlan(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	wantClients := cfg.Buses*(1+cfg.RidersPerBus) + cfg.Cars + cfg.Pedestrians
	if len(p.Clients) != wantClients {
		t.Fatalf("clients = %d, want %d", len(p.Clients), wantClients)
	}
	if p.Stats.Buses != 1 || p.Stats.Riders != 10 || p.Stats.Cars != 1 || p.Stats.Pedestrians != 2 {
		t.Fatalf("stats mix = %+v", p.Stats)
	}
	if p.Stats.RouteCrossings < 1 {
		t.Fatalf("route crossings = %d, want ≥ 1 with 2 domains", p.Stats.RouteCrossings)
	}
	if p.Stats.Turns < 2 {
		t.Fatalf("turns = %d, want ≥ 2 (the bus U-line alone turns twice)", p.Stats.Turns)
	}
	if p.Duration <= 0 || p.Duration > sim.FromSeconds(cfg.MaxDurationS) {
		t.Fatalf("duration = %v outside (0, %gs]", p.Duration, cfg.MaxDurationS)
	}
	if len(p.APs) == 0 || len(p.APDomains) != len(p.APs) {
		t.Fatalf("APs = %d, domains = %d", len(p.APs), len(p.APDomains))
	}
	seen := map[int]bool{}
	for _, d := range p.APDomains {
		if d < 0 || d >= cfg.Domains {
			t.Fatalf("AP domain %d out of range", d)
		}
		seen[d] = true
	}
	if len(seen) != cfg.Domains {
		t.Fatalf("only %d of %d domains own APs", len(seen), cfg.Domains)
	}
	// Every trace must be finite everywhere we might sample it.
	for i, c := range p.Clients {
		for _, tt := range []sim.Time{0, p.Duration / 3, p.Duration / 2, p.Duration} {
			pos := c.Trace.Position(tt)
			vel := c.Trace.Velocity(tt)
			for _, v := range []float64{pos.X, pos.Y, vel.X, vel.Y} {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("client %d (%v) non-finite at t=%v: pos=%v vel=%v", i, c.Kind, tt, pos, vel)
				}
			}
		}
	}
	// Riders stay glued to their bus.
	var bus ClientPlan
	for _, c := range p.Clients {
		if c.Kind == KindBus {
			bus = c
		}
	}
	mid := p.Duration / 2
	for _, c := range p.Clients {
		if c.Kind != KindRider {
			continue
		}
		if d := c.Trace.Position(mid).Distance(bus.Trace.Position(mid)); d > 10 {
			t.Fatalf("rider drifted %g m from its bus", d)
		}
		if c.Trace.Velocity(mid) != bus.Trace.Velocity(mid) {
			t.Fatal("rider velocity differs from its bus")
		}
	}
}

func TestBuildPlanValidates(t *testing.T) {
	bad := []Config{
		{},
		func() Config { c := DefaultConfig(); c.Rows = 1; return c }(),
		func() Config { c := DefaultConfig(); c.Domains = 0; return c }(),
		func() Config { c := DefaultConfig(); c.CarSpeedsMPH = nil; return c }(),
		func() Config { c := DefaultConfig(); c.Cars, c.Buses, c.Pedestrians = 0, 0, 0; return c }(),
		func() Config { c := DefaultConfig(); c.MaxDurationS = 0; return c }(),
	}
	for i, c := range bad {
		if _, err := BuildPlan(c, 1); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestRouteTurnSlowdown(t *testing.T) {
	g, err := NewGrid(2, 2, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Right-angle route: east along the avenue, then north up the street.
	route := []int{g.NodeAt(0, 0), g.NodeAt(0, 1), g.NodeAt(1, 1)}
	tr, st, err := buildRoute(g, route, routeCfg{topMPH: 25, turns: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.Turns != 1 {
		t.Fatalf("turns = %d, want 1", st.Turns)
	}
	// Find the moment the vehicle is just past the corner (inside the entry
	// turn zone of leg 2) and check it crawls at turn speed.
	corner := g.Nodes[g.NodeAt(0, 1)].Pos
	var inZone bool
	for ms := sim.Time(0); ms < st.EndAt; ms += 50 * sim.Millisecond {
		pos := tr.Position(ms)
		if pos.X == corner.X && pos.Y > corner.Y && pos.Y < corner.Y+turnZoneM {
			inZone = true
			if sp := mobility.ToMPH(mobility.Speed(tr, ms)); math.Abs(sp-turnSpeedMPH) > 0.5 {
				t.Fatalf("speed in turn zone = %.1f mph, want ~%g", sp, turnSpeedMPH)
			}
		}
	}
	if !inZone {
		t.Fatal("sampling never caught the vehicle inside the turn zone")
	}
}

func TestRouteLightDwell(t *testing.T) {
	g, err := NewGrid(2, 2, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	route := []int{g.NodeAt(0, 0), g.NodeAt(0, 1), g.NodeAt(1, 1)}
	// Force a red light at the middle node: phase chosen so arrival lands
	// inside the red window.
	tr, st, err := buildRoute(g, route, routeCfg{
		topMPH: 25, turns: false,
		lightPhase: func(n int) sim.Time {
			if n == g.NodeAt(0, 1) {
				return 0 // arrival time mod 8 s decides; retry below if green
			}
			return -1
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.LightStops == 0 {
		// Arrival happened to land in green; shift the phase to make it red.
		arrive := sim.FromSeconds(60 / mobility.MPH(25))
		phase := lightCycle - arrive%lightCycle + 500*sim.Millisecond
		tr, st, err = buildRoute(g, route, routeCfg{
			topMPH: 25, turns: false,
			lightPhase: func(n int) sim.Time {
				if n == g.NodeAt(0, 1) {
					return phase
				}
				return -1
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if st.LightStops != 1 {
		t.Fatalf("light stops = %d, want 1", st.LightStops)
	}
	if st.DwellS <= 0 || st.DwellS > lightRed.Seconds() {
		t.Fatalf("dwell = %g s, want in (0, %g]", st.DwellS, lightRed.Seconds())
	}
	// During the dwell the vehicle must sit still at the corner.
	corner := g.Nodes[g.NodeAt(0, 1)].Pos
	var still bool
	for ms := sim.Time(0); ms < st.EndAt; ms += 10 * sim.Millisecond {
		if tr.Position(ms) == corner && mobility.Speed(tr, ms) == 0 {
			still = true
			break
		}
	}
	if !still {
		t.Fatal("vehicle never dwelled at the red light")
	}
}

func TestRiderTraceOffsets(t *testing.T) {
	lead := mobility.DriveBy(0, 0, 25)
	r := RiderTrace{Lead: lead, Offset: mobility.Point{X: 2, Y: -1}}
	at := sim.FromSeconds(3)
	want := lead.Position(at).Add(mobility.Point{X: 2, Y: -1})
	if got := r.Position(at); got != want {
		t.Fatalf("rider at %v, want %v", got, want)
	}
	if r.Velocity(at) != lead.Velocity(at) {
		t.Fatal("rider velocity must match the lead")
	}
}

// TestBlockageGeometry pins the street-canyon model: same street is LOS,
// crossing streets cost one corner, parallel streets two.
func TestBlockageGeometry(t *testing.T) {
	g, err := NewGrid(3, 3, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := func(x, y float64) mobility.Point { return mobility.Point{X: x, Y: y} }
	cases := []struct {
		name string
		a, b mobility.Point
		want float64
	}{
		{"same avenue", p(10, 0), p(100, 3), 0},
		{"same street", p(60, 10), p(57, 110), 0},
		{"one corner", p(30, 2), p(58, 40), cornerLossDB},
		{"two corners", p(30, 2), p(30, 62), 2 * cornerLossDB},
		{"intersection sees both", p(0, 0), p(30, 2), 0},
		{"intersection around corner", p(0, 0), p(60, 30), cornerLossDB},
	}
	for _, c := range cases {
		if got := g.BlockageDB(c.a, c.b); got != c.want {
			t.Errorf("%s: BlockageDB(%v,%v) = %v, want %v", c.name, c.a, c.b, got, c.want)
		}
		if rev := g.BlockageDB(c.b, c.a); rev != g.BlockageDB(c.a, c.b) {
			t.Errorf("%s: blockage not symmetric", c.name)
		}
	}
}
