package urban

import (
	"testing"

	"wgtt/internal/sim"
)

// BenchmarkUrbanStep is the per-tick trace evaluation cost: one position +
// velocity sample for every client of the default city. This is what the
// core network pays per oracle/CSI tick, so it must stay allocation-free.
func BenchmarkUrbanStep(b *testing.B) {
	p, err := BuildPlan(DefaultConfig(), 7)
	if err != nil {
		b.Fatal(err)
	}
	step := 10 * sim.Millisecond
	var t sim.Time
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t += step
		if t > p.Duration {
			t = 0
		}
		for _, c := range p.Clients {
			pos := c.Trace.Position(t)
			vel := c.Trace.Velocity(t)
			sinkX += pos.X + vel.X
			sinkY += pos.Y + vel.Y
		}
	}
}

var sinkX, sinkY float64

// TestUrbanStepZeroAlloc pins the per-tick evaluation at zero allocations.
func TestUrbanStepZeroAlloc(t *testing.T) {
	p, err := BuildPlan(DefaultConfig(), 7)
	if err != nil {
		t.Fatal(err)
	}
	at := p.Duration / 2
	allocs := testing.AllocsPerRun(100, func() {
		for _, c := range p.Clients {
			pos := c.Trace.Position(at)
			vel := c.Trace.Velocity(at)
			sinkX += pos.X + vel.X
			sinkY += pos.Y + vel.Y
		}
	})
	if allocs != 0 {
		t.Fatalf("urban step allocates %v per run, want 0", allocs)
	}
}
