package urban

import (
	"fmt"
	"strconv"
	"strings"

	"wgtt/internal/mobility"
)

// Tiling cuts a city into an R×C grid of rectangular metro cells
// (DESIGN.md §17). It generalizes the vertical federation slabs of
// Graph.Partition: a tiling with Rows == 1 is exactly the slab split, and
// every position in the plane maps to exactly one tile (the partition is
// total — positions outside the city clamp to the nearest border tile).
type Tiling struct {
	Rows, Cols int
}

// N returns the tile count.
func (t Tiling) N() int { return t.Rows * t.Cols }

// Valid reports whether the tiling has at least one tile in each axis.
func (t Tiling) Valid() bool { return t.Rows >= 1 && t.Cols >= 1 }

// String renders the tiling as "RxC".
func (t Tiling) String() string { return fmt.Sprintf("%dx%d", t.Rows, t.Cols) }

// ParseTiling parses a "RxC" tiling spec (as String renders it), e.g.
// "2x2" or "32x32".
func ParseTiling(s string) (Tiling, error) {
	r, c, ok := strings.Cut(strings.TrimSpace(s), "x")
	if !ok {
		return Tiling{}, fmt.Errorf("urban: tiling %q is not of the form RxC", s)
	}
	rows, err1 := strconv.Atoi(r)
	cols, err2 := strconv.Atoi(c)
	if err1 != nil || err2 != nil || !(Tiling{Rows: rows, Cols: cols}).Valid() {
		return Tiling{}, fmt.Errorf("urban: tiling %q needs positive RxC dimensions", s)
	}
	return Tiling{Rows: rows, Cols: cols}, nil
}

// Span returns the city's geographic extent: the bounding box of the
// intersection grid, anchored at the origin.
func (g *Graph) Span() (w, h float64) {
	return float64(g.Cols-1) * g.BlockM, float64(g.Rows-1) * g.BlockM
}

// Tile maps a position to its tile index under t, row-major (tile (r, c)
// has index r·Cols + c). Tiles split the city span into equal rectangles;
// a position exactly on an interior boundary belongs to the higher tile,
// positions on or beyond the outer border clamp inward, so the mapping is
// total and a pure function of (graph shape, tiling, position) — the
// determinism anchor for the metro's migration schedule.
func (g *Graph) Tile(p mobility.Point, t Tiling) int {
	w, h := g.Span()
	return tileAxis(p.Y, h, t.Rows)*t.Cols + tileAxis(p.X, w, t.Cols)
}

// tileAxis is the 1-D cell index of coordinate v on an axis of extent span
// split into n equal cells, clamped to [0, n).
func tileAxis(v, span float64, n int) int {
	if n <= 1 {
		return 0
	}
	i := int(v / span * float64(n))
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// TileBounds returns tile's rectangle under t: the half-open box
// [x0, x1) × [y0, y1), except that border tiles also own everything beyond
// the city span on their outer side (Tile clamps into them).
func (g *Graph) TileBounds(tile int, t Tiling) (x0, y0, x1, y1 float64) {
	w, h := g.Span()
	r, c := tile/t.Cols, tile%t.Cols
	tw, th := w/float64(t.Cols), h/float64(t.Rows)
	return float64(c) * tw, float64(r) * th, float64(c+1) * tw, float64(r+1) * th
}
