package urban

import "wgtt/internal/mobility"

// Street-canyon blockage (DESIGN.md §16). The grid's buildings fill every
// block, so radio visibility follows the streets: a link down a shared
// street is line-of-sight, a link that bends around one building corner
// loses cornerLossDB to diffraction, and a link that needs two corners is
// essentially dead. These are the textbook urban-microcell numbers
// (~15–30 dB per corner at 2.4 GHz) and they are what make rapid
// switching matter in a city — the moment a vehicle turns, its old AP
// drops behind a corner.
const (
	// corridorHalfM is the street corridor half-width: how far from the
	// grid line a point still counts as "on" that street. Covers the lane
	// offset, AP curb setback, and rider seat jitter.
	corridorHalfM = 9.0
	// cornerLossDB is the diffraction loss around one building corner.
	cornerLossDB = 25.0
)

// streets reports which grid lines the point sits on: the nearest
// east-west avenue row (onH) and north-south street column (onV), each
// within the corridor half-width. Intersection zones are on both.
func (g *Graph) streets(p mobility.Point) (row int, onH bool, col int, onV bool) {
	row = clampGrid(p.Y, g.BlockM, g.Rows)
	col = clampGrid(p.X, g.BlockM, g.Cols)
	onH = abs(p.Y-float64(row)*g.BlockM) <= corridorHalfM
	onV = abs(p.X-float64(col)*g.BlockM) <= corridorHalfM
	return
}

func clampGrid(v, blockM float64, n int) int {
	i := int(v/blockM + 0.5)
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// BlockageDB returns the street-canyon obstruction between two positions
// on the map: 0 dB when they share a street, one corner loss when their
// streets cross, two when the path must bend twice. Symmetric and pure,
// so it plugs directly into radio.Params.Obstruction without breaking
// channel reciprocity. Allocation-free: it runs inside every SNR sample.
func (g *Graph) BlockageDB(a, b mobility.Point) float64 {
	ar, aH, ac, aV := g.streets(a)
	br, bH, bc, bV := g.streets(b)
	// Shared street: line-of-sight down the canyon.
	if (aH && bH && ar == br) || (aV && bV && ac == bc) {
		return 0
	}
	// Crossing streets: one corner between them.
	if (aH && bV) || (aV && bH) {
		return cornerLossDB
	}
	// Parallel streets (or an off-grid point): at least two corners.
	return 2 * cornerLossDB
}
