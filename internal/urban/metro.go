package urban

import (
	"fmt"
	"math"

	"wgtt/internal/mobility"
	"wgtt/internal/sim"
)

// This file plans the metro (DESIGN.md §17): one connected city cut into a
// tile grid of metro cells, with a per-client visit schedule — which tile
// each client occupies over which time span — derived from the routed
// traces. The schedule is what the fleet's epoch scheduler migrates clients
// by, so like everything else in this package it is a pure function of
// (config, seed).

// visitStep is the trace sampling period of the visit schedule. Crossing
// times are quantized to it; it is well under the fleet's epoch length, so
// the quantization never moves a crossing across an epoch barrier's worth
// of time.
const visitStep = 25 * sim.Millisecond

// MetroConfig describes a connected metro: a city and the tile grid that
// cuts it into metro cells.
type MetroConfig struct {
	// Tiles is the metro cell grid laid over the city span.
	Tiles Tiling
	// City is the full-city workload. Its Domains field must be 1: in a
	// metro the tiles are the sharding story, each running its own
	// controller, and clients cross tile seams via cell-to-cell handoff
	// instead of the in-cell federation slabs.
	City Config
}

// DefaultMetroConfig is a small demonstrative metro: a 2×2 tile grid over a
// 4×4-block city, one bus line of riders plus cars and pedestrians routed
// across the seams.
func DefaultMetroConfig() MetroConfig {
	city := DefaultConfig()
	city.Rows, city.Cols = 5, 5
	city.BlockM = 60
	city.APSpacingM = 30
	city.RidersPerBus = 6
	city.Cars = 2
	city.Pedestrians = 2
	city.Domains = 1
	city.MaxDurationS = 40
	return MetroConfig{Tiles: Tiling{Rows: 2, Cols: 2}, City: city}
}

// Validate rejects metros the planner cannot schedule.
func (c MetroConfig) Validate() error {
	if !c.Tiles.Valid() {
		return fmt.Errorf("urban: metro tiling needs at least 1x1 tiles, got %s", c.Tiles)
	}
	if c.City.Domains > 1 {
		return fmt.Errorf("urban: metro cities are tiled, not slab-federated; want City.Domains <= 1, got %d", c.City.Domains)
	}
	city := c.City
	city.Domains = 1
	return city.Validate()
}

// Visit is one contiguous stay of a client inside one tile: the client
// enters at Enter and leaves at Exit (both quantized to visitStep; the
// final visit's Exit is the plan horizon).
type Visit struct {
	Tile  int
	Enter sim.Time
	Exit  sim.Time
}

// MetroClient is one city client with its tile visit schedule. Visits
// partition [0, Duration]: consecutive visits share a boundary instant,
// which is exactly when the client migrates between cell simulations.
type MetroClient struct {
	Plan   ClientPlan
	Visits []Visit
}

// Crossings returns how many tile seams the client's route crosses (one
// fewer than its visit count).
func (m *MetroClient) Crossings() int { return len(m.Visits) - 1 }

// MetroPlan is a fully expanded metro: the city plan, the AP→tile binding,
// and every client's visit schedule. Pure function of (MetroConfig, seed).
type MetroPlan struct {
	Cfg  MetroConfig
	City *Plan
	// APTile binds each city AP site to its tile; TileAPs inverts it
	// (ascending site indices per tile).
	APTile  []int
	TileAPs [][]int
	Clients []MetroClient
	// Crossings is the total seam-crossing count across all clients — the
	// metro's migration workload.
	Crossings int
}

// Duration is the shared horizon every tile simulation runs to.
func (p *MetroPlan) Duration() sim.Time { return p.City.Duration }

// BuildMetroPlan expands a metro config: it builds the full-city plan under
// seed, bins the AP sites into tiles, and samples every client trace at
// visitStep to derive the tile visit schedule. Every tile must own at least
// one AP site (a seam cell with no radio cannot admit the clients that
// drive through it); the default block-scale AP spacing guarantees that.
func BuildMetroPlan(cfg MetroConfig, seed uint64) (*MetroPlan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	city := cfg.City
	city.Domains = 1
	cp, err := BuildPlan(city, seed)
	if err != nil {
		return nil, err
	}
	p := &MetroPlan{Cfg: cfg, City: cp, TileAPs: make([][]int, cfg.Tiles.N())}
	for i, s := range cp.APs {
		t := cp.Graph.Tile(s.Pos, cfg.Tiles)
		p.APTile = append(p.APTile, t)
		p.TileAPs[t] = append(p.TileAPs[t], i)
	}
	for t, aps := range p.TileAPs {
		if len(aps) == 0 {
			return nil, fmt.Errorf("urban: metro tile %d owns no AP sites; use a denser AP spacing or a coarser tiling", t)
		}
	}
	cov := &coverage{tile: p.APTile}
	for _, s := range cp.APs {
		cov.pos = append(cov.pos, s.Pos)
	}
	for _, c := range cp.Clients {
		p.Clients = append(p.Clients, MetroClient{
			Plan:   c,
			Visits: visitSchedule(cov, c.Trace, cp.Duration),
		})
		p.Crossings += p.Clients[len(p.Clients)-1].Crossings()
	}
	return p, nil
}

// coverage maps a position to the tile that covers it by radio: the tile
// owning the nearest AP site. Visits follow coverage rather than raw tile
// geometry because the two disagree exactly where it matters — on seam
// streets. Street APs sit on one side of their street, so a street running
// along a tile boundary is lined entirely with one tile's APs while the
// lane itself can fall in the other tile; pure geometry would hand a client
// driving that street to the far cell, whose nearest APs are a block away
// behind full corner blockage. Nearest-AP ownership keeps every client in
// the cell that can actually serve it, and ties break to the lowest AP site
// index, keeping the schedule deterministic.
type coverage struct {
	pos  []mobility.Point
	tile []int
}

// tileAt returns the covering tile for p.
func (c *coverage) tileAt(p mobility.Point) int {
	best, bi := math.Inf(1), 0
	for i, ap := range c.pos {
		dx, dy := ap.X-p.X, ap.Y-p.Y
		if d := dx*dx + dy*dy; d < best {
			best, bi = d, i
		}
	}
	return c.tile[bi]
}

// visitSchedule samples a trace at visitStep over [0, dur] and folds the
// covering-tile sequence into contiguous visits. Consecutive samples in the
// same tile extend the current visit; a sample in a new tile closes the old
// one at that instant — boundary flicker (a vehicle hugging a coverage seam)
// simply produces short visits, which the metro handles like any other
// crossing.
func visitSchedule(cov *coverage, tr mobility.Trace, dur sim.Time) []Visit {
	visits := []Visit{{Tile: cov.tileAt(tr.Position(0))}}
	for at := visitStep; at < dur; at += visitStep {
		tile := cov.tileAt(tr.Position(at))
		if tile != visits[len(visits)-1].Tile {
			visits[len(visits)-1].Exit = at
			visits = append(visits, Visit{Tile: tile, Enter: at})
		}
	}
	visits[len(visits)-1].Exit = dur
	return visits
}
