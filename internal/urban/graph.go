package urban

import (
	"fmt"
	"math"

	"wgtt/internal/mobility"
	"wgtt/internal/sim"
)

// Node is one intersection of the city graph.
type Node struct {
	ID  int
	Pos mobility.Point
}

// Edge is one street segment between two intersections. A < B always, but
// vehicles traverse edges in either direction.
type Edge struct {
	A, B int
	// SpeedMPH is the segment's speed limit; vehicles drive at
	// min(their design speed, the limit).
	SpeedMPH float64
	// Length is the segment length in meters (derived, cached).
	Length float64
	// Avenue marks the east–west segments (faster limits than the
	// north–south streets).
	Avenue bool
}

// Graph is a street-grid city: Rows×Cols intersections joined by
// street segments, the connected counterpart of the isolated corridors the
// fleet engine deploys (§7's "large area deployment" taken city-wide).
type Graph struct {
	Rows, Cols int
	BlockM     float64
	Nodes      []Node
	Edges      []Edge

	adj    [][]int        // node -> incident edge indices, ascending
	edgeAt map[[2]int]int // (min,max) node pair -> edge index
}

// NewGrid builds a Rows×Cols street grid with blockM-meter blocks. Node
// (r, c) sits at (c·blockM, r·blockM) and gets ID r·Cols+c. Per-edge speed
// limits are drawn from the named RNG streams of seed — avenues (east–west)
// from {25, 35} mph, streets (north–south) from {15, 25} mph — so the same
// (rows, cols, blockM, seed) always yields the same city.
func NewGrid(rows, cols int, blockM float64, seed uint64) (*Graph, error) {
	if rows < 2 || cols < 2 {
		return nil, fmt.Errorf("urban: grid needs at least 2x2 intersections, got %dx%d", rows, cols)
	}
	if blockM <= 0 {
		return nil, fmt.Errorf("urban: block length must be positive, got %g", blockM)
	}
	g := &Graph{Rows: rows, Cols: cols, BlockM: blockM, edgeAt: make(map[[2]int]int)}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.Nodes = append(g.Nodes, Node{
				ID:  r*cols + c,
				Pos: mobility.Point{X: float64(c) * blockM, Y: float64(r) * blockM},
			})
		}
	}
	rng := sim.NewRNG(seed)
	addEdge := func(a, b int, avenue bool) {
		i := len(g.Edges)
		st := rng.Stream(fmt.Sprintf("urban/edge/%d", i))
		var limit float64
		if avenue {
			limit = []float64{25, 35}[st.IntN(2)]
		} else {
			limit = []float64{15, 25}[st.IntN(2)]
		}
		g.Edges = append(g.Edges, Edge{
			A: a, B: b, SpeedMPH: limit, Avenue: avenue,
			Length: g.Nodes[a].Pos.Distance(g.Nodes[b].Pos),
		})
		g.edgeAt[[2]int{a, b}] = i
	}
	// Avenues first (row-major), then streets: edge order — and therefore
	// AP order — is a pure function of the grid shape.
	for r := 0; r < rows; r++ {
		for c := 0; c < cols-1; c++ {
			addEdge(r*cols+c, r*cols+c+1, true)
		}
	}
	for c := 0; c < cols; c++ {
		for r := 0; r < rows-1; r++ {
			addEdge(r*cols+c, (r+1)*cols+c, false)
		}
	}
	g.adj = make([][]int, len(g.Nodes))
	for i, e := range g.Edges {
		g.adj[e.A] = append(g.adj[e.A], i)
		g.adj[e.B] = append(g.adj[e.B], i)
	}
	return g, nil
}

// NodeAt returns the ID of the intersection at grid coordinates (r, c).
func (g *Graph) NodeAt(r, c int) int { return r*g.Cols + c }

// Degree returns how many street segments meet at node n.
func (g *Graph) Degree(n int) int { return len(g.adj[n]) }

// EdgeBetween returns the index of the segment joining a and b, or -1.
func (g *Graph) EdgeBetween(a, b int) int {
	if a > b {
		a, b = b, a
	}
	if i, ok := g.edgeAt[[2]int{a, b}]; ok {
		return i
	}
	return -1
}

// Other returns the far endpoint of edge e seen from node n.
func (e Edge) Other(n int) int {
	if e.A == n {
		return e.B
	}
	return e.A
}

// APSite is one access point placed along a street segment.
type APSite struct {
	Pos  mobility.Point
	Edge int
}

// PlaceAPs deploys APs along every street segment: evenly spaced about
// spacingM apart along the segment, offset setbackM meters to the left of
// the A→B direction (curbside small cells). Edge order makes AP order —
// and therefore AP IDs — deterministic.
func (g *Graph) PlaceAPs(spacingM, setbackM float64) []APSite {
	var sites []APSite
	for i, e := range g.Edges {
		n := int(e.Length / spacingM)
		if n < 1 {
			n = 1
		}
		a, b := g.Nodes[e.A].Pos, g.Nodes[e.B].Pos
		dir := b.Sub(a).Scale(1 / e.Length)
		normal := mobility.Point{X: -dir.Y, Y: dir.X}
		for k := 0; k < n; k++ {
			d := e.Length * (float64(k) + 0.5) / float64(n)
			sites = append(sites, APSite{
				Pos:  a.Add(dir.Scale(d)).Add(normal.Scale(setbackM)),
				Edge: i,
			})
		}
	}
	return sites
}

// Partition maps a position to one of nDom federation domains: vertical
// slabs of equal width across the city's X extent. Contiguous geography —
// not contiguous AP indices — decides ownership, so a vehicle crossing an
// avenue mid-block really does cross a controller boundary. It is the
// 1×nDom special case of the metro tile grid (tile.go).
func (g *Graph) Partition(p mobility.Point, nDom int) int {
	return g.Tile(p, Tiling{Rows: 1, Cols: nDom})
}

// ShortestPath returns the fastest node path from one intersection to
// another for a vehicle whose design speed is topMPH (per-edge travel time
// at min(topMPH, limit)). Dijkstra with lowest-node-index tie-breaking, so
// equal-cost grids route identically on every run.
func (g *Graph) ShortestPath(from, to int, topMPH float64) []int {
	n := len(g.Nodes)
	const inf = math.MaxFloat64
	dist := make([]float64, n)
	prev := make([]int, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = inf
		prev[i] = -1
	}
	dist[from] = 0
	for {
		u, best := -1, inf
		for i := 0; i < n; i++ {
			if !done[i] && dist[i] < best {
				u, best = i, dist[i]
			}
		}
		if u == -1 || u == to {
			break
		}
		done[u] = true
		for _, ei := range g.adj[u] {
			e := g.Edges[ei]
			v := e.Other(u)
			speed := mobility.MPH(math.Min(topMPH, e.SpeedMPH))
			alt := dist[u] + e.Length/speed
			// Strict inequality keeps the lowest-index predecessor on ties.
			if alt < dist[v] {
				dist[v] = alt
				prev[v] = u
			}
		}
	}
	if dist[to] == inf {
		return nil
	}
	var rev []int
	for at := to; at != -1; at = prev[at] {
		rev = append(rev, at)
	}
	path := make([]int, len(rev))
	for i, v := range rev {
		path[len(rev)-1-i] = v
	}
	return path
}
