package urban

import (
	"fmt"
	"math/rand/v2"

	"wgtt/internal/mobility"
	"wgtt/internal/sim"
)

// ClientKind tells what a planned client is riding in (or walking on).
type ClientKind int

// Client kinds, in the order clients appear in a plan.
const (
	KindBus ClientKind = iota // the bus gateway client itself
	KindRider
	KindCar
	KindPedestrian
)

// String names the kind for reports.
func (k ClientKind) String() string {
	switch k {
	case KindBus:
		return "bus"
	case KindRider:
		return "rider"
	case KindCar:
		return "car"
	case KindPedestrian:
		return "pedestrian"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// ClientPlan is one client of the urban scenario: its trace, what it rides
// in, and (for vehicles) the node route it follows.
type ClientPlan struct {
	Kind ClientKind
	// Bus is the bus index for KindBus/KindRider clients, -1 otherwise.
	Bus int
	// Trace is the client's mobility, a pure function of time.
	Trace mobility.Trace
	// SpeedMPH is the design speed (segments may cap it lower).
	SpeedMPH float64
	// Route is the intersection path of the underlying vehicle (nil for
	// riders, who share their bus's route).
	Route []int
}

// Stats tallies what the planner generated, feeding the urban metrics.
type Stats struct {
	Turns          int // sharp corners driven across all vehicles
	LightStops     int // red-light dwells inserted
	DwellS         float64
	RouteCrossings int // inter-domain boundary crossings along routes
	Buses          int
	Riders         int
	Cars           int
	Pedestrians    int
	RidersPerBus   []int
}

// Plan is a fully expanded urban scenario: the city, the AP deployment
// with its domain binding, and every client trace. It is a pure function
// of (Config, seed).
type Plan struct {
	Cfg       Config
	Graph     *Graph
	APs       []APSite
	APDomains []int
	Clients   []ClientPlan
	Duration  sim.Time
	Stats     Stats
}

// APPositions returns just the AP coordinates, in site order.
func (p *Plan) APPositions() []mobility.Point {
	pos := make([]mobility.Point, len(p.APs))
	for i, s := range p.APs {
		pos[i] = s.Pos
	}
	return pos
}

// BuildPlan expands a config into a concrete city plan. All randomness
// comes from named streams of seed — edge limits, light phases, bus lines,
// car origin/destination pairs, rider seats, walk paths — so the same
// (config, seed) yields the same plan regardless of who builds it or how
// many workers run beside it.
func BuildPlan(cfg Config, seed uint64) (*Plan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g, err := NewGrid(cfg.Rows, cfg.Cols, cfg.BlockM, seed)
	if err != nil {
		return nil, err
	}
	p := &Plan{Cfg: cfg, Graph: g, APs: g.PlaceAPs(cfg.APSpacingM, cfg.APSetbackM)}
	for _, s := range p.APs {
		p.APDomains = append(p.APDomains, g.Partition(s.Pos, cfg.Domains))
	}

	rng := sim.NewRNG(seed)
	// One light schedule per intersection, shared by every vehicle.
	phases := make([]sim.Time, len(g.Nodes))
	for n := range g.Nodes {
		if g.Degree(n) >= 3 {
			st := rng.Stream(fmt.Sprintf("urban/light/%d", n))
			phases[n] = sim.Time(st.IntN(int(lightCycle/sim.Millisecond))) * sim.Millisecond
		} else {
			phases[n] = -1
		}
	}
	lightPhase := func(n int) sim.Time { return phases[n] }

	var latest sim.Time
	addVehicle := func(route []int, kind ClientKind, bus int, topMPH float64, depart sim.Time, jitter mobility.Point, lights bool) (*mobility.WaypointTrace, error) {
		rc := routeCfg{topMPH: topMPH, depart: depart, turns: kind != KindPedestrian}
		if lights {
			rc.lightPhase = lightPhase
		}
		tr, st, err := buildRoute(g, route, rc)
		if err != nil {
			return nil, err
		}
		p.Stats.Turns += st.Turns
		p.Stats.LightStops += st.LightStops
		p.Stats.DwellS += st.DwellS
		p.Stats.RouteCrossings += crossings(g, route, cfg.Domains)
		if st.EndAt > latest {
			latest = st.EndAt
		}
		p.Clients = append(p.Clients, ClientPlan{
			Kind: kind, Bus: bus, SpeedMPH: topMPH, Route: route,
			Trace: RiderTrace{Lead: tr, Offset: jitter},
		})
		return tr, nil
	}

	// Buses: each runs a deterministic weave line serving two neighboring
	// avenues — advance one block, cross over to the other avenue, advance,
	// cross back — then retrace the line to its origin. Every crossover is
	// a corner turn, which is the event this workload exists to produce:
	// the serving street (and with it the radio picture) changes at nearly
	// every intersection. The line spans the full grid width, so it crosses
	// every domain-slab boundary in both directions.
	for b := 0; b < cfg.Buses; b++ {
		st := rng.Stream(fmt.Sprintf("urban/bus/%d/route", b))
		row := st.IntN(cfg.Rows)
		row2 := row + 1
		if row2 >= cfg.Rows {
			row2 = row - 1
		}
		route := []int{g.NodeAt(row, 0)}
		cur := row
		for c := 1; c < cfg.Cols; c++ {
			route = append(route, g.NodeAt(cur, c))
			cur = row + row2 - cur
			route = append(route, g.NodeAt(cur, c))
		}
		for i := len(route) - 2; i >= 0; i-- {
			route = append(route, route[i])
		}
		jit := vehicleJitter(rng, fmt.Sprintf("urban/bus/%d/jitter", b))
		lead, err := addVehicle(route, KindBus, b, cfg.BusSpeedMPH, 0, jit, true)
		if err != nil {
			return nil, err
		}
		p.Stats.Buses++
		p.Stats.RidersPerBus = append(p.Stats.RidersPerBus, cfg.RidersPerBus)
		// Riders: fixed seats behind the same lead trace — correlated
		// group mobility, many clients per vehicle.
		seats := rng.Stream(fmt.Sprintf("urban/bus/%d/riders", b))
		for r := 0; r < cfg.RidersPerBus; r++ {
			off := mobility.Point{
				X: jit.X + (seats.Float64()*2-1)*3.0,
				Y: jit.Y + (seats.Float64()*2-1)*1.0,
			}
			p.Clients = append(p.Clients, ClientPlan{
				Kind: KindRider, Bus: b, SpeedMPH: cfg.BusSpeedMPH,
				Trace: RiderTrace{Lead: lead, Offset: off},
			})
			p.Stats.Riders++
		}
	}

	// Cars: shortest-path trips between distinct random intersections at a
	// mixed design speed, staggered departures.
	for i := 0; i < cfg.Cars; i++ {
		st := rng.Stream(fmt.Sprintf("urban/car/%d/route", i))
		from := st.IntN(len(g.Nodes))
		to := st.IntN(len(g.Nodes) - 1)
		if to >= from {
			to++
		}
		speed := cfg.CarSpeedsMPH[st.IntN(len(cfg.CarSpeedsMPH))]
		depart := sim.Time(st.IntN(4000)) * sim.Millisecond
		route := g.ShortestPath(from, to, speed)
		if route == nil {
			return nil, fmt.Errorf("urban: no route from %d to %d", from, to)
		}
		jit := vehicleJitter(rng, fmt.Sprintf("urban/car/%d/jitter", i))
		if _, err := addVehicle(route, KindCar, -1, speed, depart, jit, true); err != nil {
			return nil, err
		}
		p.Stats.Cars++
	}

	// Pedestrians: short random walks along sidewalks — no lights, no
	// turn slowdown, walking pace.
	for i := 0; i < cfg.Pedestrians; i++ {
		st := rng.Stream(fmt.Sprintf("urban/ped/%d", i))
		route := randomWalk(g, st.IntN(len(g.Nodes)), 2+st.IntN(2), st)
		depart := sim.Time(st.IntN(2000)) * sim.Millisecond
		jit := mobility.Point{X: (st.Float64()*2 - 1) * 1.5, Y: (st.Float64()*2 - 1) * 1.5}
		if _, err := addVehicle(route, KindPedestrian, -1, cfg.PedSpeedMPH, depart, jit, false); err != nil {
			return nil, err
		}
		p.Stats.Pedestrians++
	}

	p.Duration = latest + 2*sim.Second
	if maxDur := sim.FromSeconds(cfg.MaxDurationS); p.Duration > maxDur {
		p.Duration = maxDur
	}
	return p, nil
}

// vehicleJitter draws a small fixed lane offset so no two vehicles ever sit
// at the exact same coordinate.
func vehicleJitter(rng *sim.RNG, stream string) mobility.Point {
	st := rng.Stream(stream)
	return mobility.Point{
		X: (st.Float64()*2 - 1) * 1.2,
		Y: (st.Float64()*2 - 1) * 0.5,
	}
}

// crossings counts how many times a node route changes federation domain.
func crossings(g *Graph, route []int, nDom int) int {
	if nDom <= 1 {
		return 0
	}
	n := 0
	prev := g.Partition(g.Nodes[route[0]].Pos, nDom)
	for _, v := range route[1:] {
		d := g.Partition(g.Nodes[v].Pos, nDom)
		if d != prev {
			n++
			prev = d
		}
	}
	return n
}

// randomWalk picks a hops-edge walk from start, avoiding an immediate
// U-turn when the intersection offers any other way out.
func randomWalk(g *Graph, start, hops int, st *rand.Rand) []int {
	route := []int{start}
	prev := -1
	for len(route) < hops+1 {
		cur := route[len(route)-1]
		var opts []int
		for _, ei := range g.adj[cur] {
			if v := g.Edges[ei].Other(cur); v != prev {
				opts = append(opts, v)
			}
		}
		if len(opts) == 0 {
			opts = []int{prev}
		}
		next := opts[st.IntN(len(opts))]
		prev = cur
		route = append(route, next)
	}
	return route
}
