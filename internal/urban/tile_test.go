package urban

import (
	"reflect"
	"testing"

	"wgtt/internal/mobility"
)

func TestTileBoundaries(t *testing.T) {
	g, err := NewGrid(3, 3, 60, 1) // span 120×120
	if err != nil {
		t.Fatal(err)
	}
	til := Tiling{Rows: 2, Cols: 2}
	p := func(x, y float64) mobility.Point { return mobility.Point{X: x, Y: y} }
	cases := []struct {
		name string
		pos  mobility.Point
		want int
	}{
		{"origin", p(0, 0), 0},
		{"interior boundary x goes to higher tile", p(60, 10), 1},
		{"interior boundary y goes to higher tile", p(10, 60), 2},
		{"both boundaries", p(60, 60), 3},
		{"just inside lower tile", p(59.999, 10), 0},
		{"outer border clamps", p(120, 120), 3},
		{"beyond the city clamps", p(-40, 500), 2},
	}
	for _, c := range cases {
		if got := g.Tile(c.pos, til); got != c.want {
			t.Errorf("%s: Tile(%v) = %d, want %d", c.name, c.pos, got, c.want)
		}
	}
}

func TestTileSingleDegenerate(t *testing.T) {
	g, err := NewGrid(2, 2, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-100, 0, 30, 60, 1e6} {
		if got := g.Tile(mobility.Point{X: x, Y: x}, Tiling{Rows: 1, Cols: 1}); got != 0 {
			t.Fatalf("1x1 Tile(x=%g) = %d, want 0", x, got)
		}
	}
}

func TestTileNonDivisibleWidths(t *testing.T) {
	// 4×4 grid, span 180: 3 columns of width 60 — but 2 rows of height 90,
	// and a 7-column split gives irrational-ish widths. The mapping must
	// still be total and consistent with the tile bounds.
	g, err := NewGrid(4, 4, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	til := Tiling{Rows: 2, Cols: 7}
	w, h := g.Span()
	for xi := 0; xi <= 40; xi++ {
		for yi := 0; yi <= 40; yi++ {
			pos := mobility.Point{X: w * float64(xi) / 40, Y: h * float64(yi) / 40}
			tile := g.Tile(pos, til)
			if tile < 0 || tile >= til.N() {
				t.Fatalf("Tile(%v) = %d out of [0,%d)", pos, tile, til.N())
			}
			x0, y0, x1, y1 := g.TileBounds(tile, til)
			// Bounds are half-open with outer-border clamping: interior
			// positions must sit inside [lo, hi); border tiles own beyond.
			if pos.X < x0 && tile%til.Cols != 0 {
				t.Fatalf("Tile(%v) = %d but x < x0=%g", pos, tile, x0)
			}
			if pos.X >= x1 && tile%til.Cols != til.Cols-1 {
				t.Fatalf("Tile(%v) = %d but x >= x1=%g", pos, tile, x1)
			}
			if pos.Y < y0 && tile/til.Cols != 0 {
				t.Fatalf("Tile(%v) = %d but y < y0=%g", pos, tile, y0)
			}
			if pos.Y >= y1 && tile/til.Cols != til.Rows-1 {
				t.Fatalf("Tile(%v) = %d but y >= y1=%g", pos, tile, y1)
			}
		}
	}
}

func TestTileDeterministicAndMatchesPartition(t *testing.T) {
	g, err := NewGrid(2, 3, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-5, 0, 30, 59, 60, 61, 90, 120, 500} {
		pos := mobility.Point{X: x, Y: 30}
		for _, n := range []int{1, 2, 3, 5} {
			slab := g.Partition(pos, n)
			tile := g.Tile(pos, Tiling{Rows: 1, Cols: n})
			if slab != tile {
				t.Fatalf("Partition(x=%g, %d) = %d but 1x%d Tile = %d", x, n, slab, n, tile)
			}
			if again := g.Tile(pos, Tiling{Rows: 1, Cols: n}); again != tile {
				t.Fatalf("Tile(x=%g) changed between calls: %d vs %d", x, tile, again)
			}
		}
	}
}

func TestBuildMetroPlanDeterministic(t *testing.T) {
	cfg := DefaultMetroConfig()
	a, err := BuildMetroPlan(cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildMetroPlan(cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.APTile, b.APTile) {
		t.Fatal("AP→tile binding differs between identical builds")
	}
	if len(a.Clients) != len(b.Clients) || a.Crossings != b.Crossings {
		t.Fatalf("client/crossing counts differ: %d/%d vs %d/%d",
			len(a.Clients), a.Crossings, len(b.Clients), b.Crossings)
	}
	for i := range a.Clients {
		if !reflect.DeepEqual(a.Clients[i].Visits, b.Clients[i].Visits) {
			t.Fatalf("client %d visit schedule differs between identical builds", i)
		}
	}
}

func TestBuildMetroPlanVisits(t *testing.T) {
	p, err := BuildMetroPlan(DefaultMetroConfig(), 11)
	if err != nil {
		t.Fatal(err)
	}
	if p.Crossings == 0 {
		t.Fatal("default metro routes no one across a tile seam")
	}
	for t2, aps := range p.TileAPs {
		if len(aps) == 0 {
			t.Fatalf("tile %d owns no APs", t2)
		}
	}
	for i, c := range p.Clients {
		vs := c.Visits
		if len(vs) == 0 {
			t.Fatalf("client %d has no visits", i)
		}
		if vs[0].Enter != 0 || vs[len(vs)-1].Exit != p.Duration() {
			t.Fatalf("client %d visits do not span [0, horizon]: %+v", i, vs)
		}
		for k := 1; k < len(vs); k++ {
			if vs[k].Enter != vs[k-1].Exit {
				t.Fatalf("client %d visit %d not contiguous: %+v", i, k, vs)
			}
			if vs[k].Tile == vs[k-1].Tile {
				t.Fatalf("client %d visit %d does not change tile: %+v", i, k, vs)
			}
			if vs[k].Enter%visitStep != 0 {
				t.Fatalf("client %d crossing at %v not on the visit step", i, vs[k].Enter)
			}
		}
		for _, v := range vs {
			if v.Exit <= v.Enter {
				t.Fatalf("client %d empty visit %+v", i, v)
			}
			if v.Tile < 0 || v.Tile >= p.Cfg.Tiles.N() {
				t.Fatalf("client %d visit tile %d out of range", i, v.Tile)
			}
		}
	}
}

func TestMetroConfigValidate(t *testing.T) {
	bad := DefaultMetroConfig()
	bad.Tiles = Tiling{}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero tiling accepted")
	}
	bad = DefaultMetroConfig()
	bad.City.Domains = 2
	if err := bad.Validate(); err == nil {
		t.Fatal("multi-domain metro city accepted")
	}
	// A tiling finer than the AP layout must be rejected at build time.
	sparse := DefaultMetroConfig()
	sparse.Tiles = Tiling{Rows: 40, Cols: 40}
	if _, err := BuildMetroPlan(sparse, 1); err == nil {
		t.Fatal("metro with AP-less tiles accepted")
	}
}

func TestParseTiling(t *testing.T) {
	good := map[string]Tiling{
		"2x2":   {Rows: 2, Cols: 2},
		"32x32": {Rows: 32, Cols: 32},
		" 1x8 ": {Rows: 1, Cols: 8},
	}
	for in, want := range good {
		got, err := ParseTiling(in)
		if err != nil || got != want {
			t.Errorf("ParseTiling(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, in := range []string{"", "2", "2x", "x2", "0x2", "2x-1", "axb", "2x2x2"} {
		if _, err := ParseTiling(in); err == nil {
			t.Errorf("ParseTiling(%q) accepted a malformed spec", in)
		}
	}
}
