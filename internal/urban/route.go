package urban

import (
	"fmt"
	"math"

	"wgtt/internal/mobility"
	"wgtt/internal/sim"
)

// Traffic-light model: every intersection where three or more segments meet
// carries a fixed-cycle light. A vehicle arriving during the red window
// dwells in place until the next green. The phase offset is drawn per node
// from a named RNG stream, so every vehicle in the city sees the same
// light schedule at the same corner.
const (
	lightCycle = 8 * sim.Second
	lightRed   = 3500 * sim.Millisecond
)

// Turn model: a heading change sharper than turnThresholdRad slows the
// vehicle to turnSpeedMPH through the last/first few meters of the legs
// meeting at the corner.
const (
	turnThresholdRad = 0.35
	turnSpeedMPH     = 8.0
	turnZoneM        = 8.0
)

// routeCfg carries the per-vehicle knobs of buildRoute.
type routeCfg struct {
	topMPH float64  // design speed; legs run at min(topMPH, limit)
	depart sim.Time // when the vehicle leaves the first node
	// lightPhase returns the light-cycle phase offset of node n, or -1 if
	// the node has no light. nil disables lights (pedestrians).
	lightPhase func(n int) sim.Time
	// turns disables the corner slowdown when false (pedestrians).
	turns bool
}

// routeStats tallies what buildRoute actually did, feeding the urban
// counters.
type routeStats struct {
	Turns      int
	LightStops int
	DwellS     float64
	EndAt      sim.Time
}

// buildRoute converts a node path into a waypoint trace: each leg runs at
// min(design speed, segment limit), corners sharper than ~20° pass through
// an 8 mph turn zone, and red lights insert a same-position dwell waypoint
// (possibly zero-length — the trace constructor coalesces those).
func buildRoute(g *Graph, path []int, cfg routeCfg) (*mobility.WaypointTrace, routeStats, error) {
	var st routeStats
	if len(path) < 2 {
		return nil, st, fmt.Errorf("urban: route needs at least two nodes, got %d", len(path))
	}
	now := cfg.depart
	wps := []mobility.Waypoint{{At: now, Pos: g.Nodes[path[0]].Pos}}
	prevHeading := math.NaN()
	for leg := 0; leg+1 < len(path); leg++ {
		a, b := path[leg], path[leg+1]
		ei := g.EdgeBetween(a, b)
		if ei < 0 {
			return nil, st, fmt.Errorf("urban: route hop %d->%d is not a street segment", a, b)
		}
		e := g.Edges[ei]
		from, to := g.Nodes[a].Pos, g.Nodes[b].Pos
		length := e.Length
		dir := to.Sub(from).Scale(1 / length)
		heading := math.Atan2(dir.Y, dir.X)

		cruise := mobility.MPH(math.Min(cfg.topMPH, e.SpeedMPH))
		turnV := mobility.MPH(turnSpeedMPH)
		zone := math.Min(turnZoneM, length/2)

		// Entry turn zone: if the heading changed sharply at node a, creep
		// through the first few meters of this leg at turn speed.
		entrySlow := false
		if cfg.turns && !math.IsNaN(prevHeading) {
			d := math.Abs(heading - prevHeading)
			if d > math.Pi {
				d = 2*math.Pi - d
			}
			if d > turnThresholdRad {
				entrySlow = true
				st.Turns++
			}
		}
		// Exit turn zone: slow before node b if the *next* hop turns there.
		exitSlow := false
		if cfg.turns && leg+2 < len(path) {
			nn := g.Nodes[path[leg+2]].Pos
			next := nn.Sub(to)
			nh := math.Atan2(next.Y, next.X)
			d := math.Abs(nh - heading)
			if d > math.Pi {
				d = 2*math.Pi - d
			}
			if d > turnThresholdRad {
				exitSlow = true
			}
		}

		addLeg := func(dist float64, speed float64) {
			if dist <= 0 {
				return
			}
			now += sim.FromSeconds(dist / speed)
			pos := wps[len(wps)-1].Pos.Add(dir.Scale(dist))
			wps = append(wps, mobility.Waypoint{At: now, Pos: pos})
		}
		mid := length
		if entrySlow {
			addLeg(zone, turnV)
			mid -= zone
		}
		if exitSlow {
			mid -= zone
		}
		addLeg(mid, cruise)
		if exitSlow {
			addLeg(zone, turnV)
		}
		prevHeading = heading

		// Traffic light at node b: dwell until green, except at the route's
		// terminus where the vehicle just parks.
		if cfg.lightPhase != nil && leg+2 < len(path) {
			if phase := cfg.lightPhase(b); phase >= 0 {
				into := (now + phase) % lightCycle
				if into < lightRed {
					wait := lightRed - into
					now += wait
					st.LightStops++
					st.DwellS += wait.Seconds()
					wps = append(wps, mobility.Waypoint{At: now, Pos: wps[len(wps)-1].Pos})
				}
			}
		}
	}
	st.EndAt = now
	tr, err := mobility.NewWaypointTrace(wps)
	if err != nil {
		return nil, st, fmt.Errorf("urban: building route trace: %w", err)
	}
	return tr, st, nil
}

// RiderTrace is a client riding inside a vehicle: it follows the lead trace
// with a small fixed world-frame offset (a seat), so all riders of one bus
// move as one correlated group. §5.2's buses carry tens of such riders.
type RiderTrace struct {
	Lead   mobility.Trace
	Offset mobility.Point
}

// Position implements mobility.Trace.
func (r RiderTrace) Position(t sim.Time) mobility.Point {
	return r.Lead.Position(t).Add(r.Offset)
}

// Velocity implements mobility.Trace: riders share the vehicle's velocity.
func (r RiderTrace) Velocity(t sim.Time) mobility.Point {
	return r.Lead.Velocity(t)
}
