package urban

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"wgtt/internal/sim"
)

// fingerprint serializes everything observable about a plan — AP sites,
// domain bindings, stats, and every client trace sampled on a fine grid —
// so two plans can be compared byte-for-byte.
func fingerprint(p *Plan) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "dur=%d stats=%+v\n", p.Duration, p.Stats)
	for i, s := range p.APs {
		fmt.Fprintf(&b, "ap%d=%.9f,%.9f edge=%d dom=%d\n", i, s.Pos.X, s.Pos.Y, s.Edge, p.APDomains[i])
	}
	for i, c := range p.Clients {
		fmt.Fprintf(&b, "client%d kind=%v bus=%d speed=%g route=%v\n", i, c.Kind, c.Bus, c.SpeedMPH, c.Route)
		for t := sim.Time(0); t <= p.Duration; t += 100 * sim.Millisecond {
			pos, vel := c.Trace.Position(t), c.Trace.Velocity(t)
			fmt.Fprintf(&b, " %d %.9f %.9f %.9f %.9f\n", t, pos.X, pos.Y, vel.X, vel.Y)
		}
	}
	return b.Bytes()
}

// TestPlanDeterministicAcrossWorkers mirrors the fleet determinism tests:
// the same (seed, config) must yield byte-identical routes, rider offsets,
// and AP bindings no matter how many goroutines build plans concurrently.
func TestPlanDeterministicAcrossWorkers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RidersPerBus = 4
	cfg.Pedestrians = 1
	cfg.MaxDurationS = 20
	const seed = 42

	ref, err := BuildPlan(cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprint(ref)

	for _, workers := range []int{1, 4, 8} {
		got := make([][]byte, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				p, err := BuildPlan(cfg, seed)
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				got[w] = fingerprint(p)
			}(w)
		}
		wg.Wait()
		for w := 0; w < workers; w++ {
			if !bytes.Equal(got[w], want) {
				t.Fatalf("workers=%d: plan %d differs from the reference", workers, w)
			}
		}
	}
}

// TestPlanSeedSensitivity: different seeds must actually change the city.
func TestPlanSeedSensitivity(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxDurationS = 20
	a, err := BuildPlan(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildPlan(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(fingerprint(a), fingerprint(b)) {
		t.Fatal("seeds 1 and 2 produced identical plans")
	}
}
