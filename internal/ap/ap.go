// Package ap implements the WGTT access point (§3, §4.2): the per-client
// cyclic downlink queue indexed by the controller's 12-bit packet index, the
// stop/start switching hooks that let the controller quench this AP and hand
// its backlog position to a neighbour, monitor-mode Block ACK forwarding,
// uplink tunneling with per-frame CSI reports, and association-state sync.
//
// The queueing pipeline mirrors the paper's Fig. 7: tunneled packets land in
// the client's cyclic queue; MPDUs are pulled into an A-MPDU only at the
// moment the medium is won (so a stop that arrives while contending removes
// them before they reach the air); unacknowledged MPDUs wait in a retry
// queue that a stop flushes, exactly like the driver-queue filtering the
// paper adds to ieee80211_ops_tx().
package ap

import (
	"fmt"
	"math/rand/v2"

	"wgtt/internal/backhaul"
	"wgtt/internal/mac"
	"wgtt/internal/metrics"
	"wgtt/internal/packet"
	"wgtt/internal/runtime"
	"wgtt/internal/sim"
)

// Config parameterizes one AP.
type Config struct {
	ID    int
	Name  string // radio endpoint name ("ap1"…)
	IP    packet.IPv4Addr
	MAC   packet.MACAddr
	BSSID packet.MACAddr

	// CyclicQueueSlots is the per-client ring size; with 12-bit indices the
	// paper's design point is 4096.
	CyclicQueueSlots int
	// MaxAggregate bounds MPDUs per A-MPDU.
	MaxAggregate int
	// MaxAggregateBytes bounds an A-MPDU's payload bytes.
	MaxAggregateBytes int
	// RetryLimit is the per-MPDU transmission attempt budget.
	RetryLimit int

	// StopProcessing and StartProcessing model the user-space Click +
	// ioctl handling latency of control packets on the TP-Link APs; they
	// dominate the paper's ~17–21 ms switch execution time (Table 1).
	StopProcessing  sim.Time
	StartProcessing sim.Time
	// ProcessingJitter adds ±jitter uniform noise to the above.
	ProcessingJitter sim.Time

	// BAForwarding enables §3.2.1 monitor-mode Block ACK forwarding.
	BAForwarding bool
	// UplinkForwarding enables §3.2.2 uplink tunneling to the controller
	// (disabled for the baseline AP, which uses its own uplink path).
	UplinkForwarding bool
	// ForwardOnlyWhenServing restricts uplink tunneling to the serving AP —
	// the ablation of WGTT's multi-AP uplink diversity (Fig. 18's benefit).
	ForwardOnlyWhenServing bool
}

// DefaultConfig returns the testbed AP configuration.
func DefaultConfig(id int, bssid packet.MACAddr) Config {
	return Config{
		ID:                id,
		Name:              fmt.Sprintf("ap%d", id+1),
		IP:                packet.APIP(id),
		MAC:               packet.APMAC(id),
		BSSID:             bssid,
		CyclicQueueSlots:  1 << packet.IndexBits,
		MaxAggregate:      24,
		MaxAggregateBytes: 48 * 1024,
		RetryLimit:        7,
		StopProcessing:    7 * sim.Millisecond,
		StartProcessing:   9 * sim.Millisecond,
		ProcessingJitter:  4 * sim.Millisecond,
		BAForwarding:      true,
		UplinkForwarding:  true,
	}
}

// Stats counts AP-side events for the evaluation harness.
type Stats struct {
	DownEnqueued    uint64 // packets accepted into cyclic queues
	DownOverwritten uint64 // ring slots overwritten before being sent
	MPDUsDelivered  uint64 // MPDUs acknowledged by the client
	MPDUsDropped    uint64 // MPDUs dropped at the retry limit
	MPDUsFlushed    uint64 // retry MPDUs flushed by a stop
	StopsHandled    uint64
	StartsHandled   uint64
	StartRewinds    uint64 // starts that moved nextSend backward
	RewindDepth     uint64 // cumulative backward distance
	BAForwarded     uint64 // Block ACKs forwarded to peers
	BAMerged        uint64 // forwarded Block ACKs merged into retry state
	BADuplicates    uint64 // forwarded Block ACKs discarded as already seen
	UplinkForwarded uint64 // uplink packets tunneled to the controller
	CSIReports      uint64
	Crashes         uint64 // chaos-injected failures (DESIGN.md §11)
	Restarts        uint64
	ProbesAnswered  uint64 // controller health probes acknowledged
}

// clientState is everything this AP tracks for one mobile client.
type clientState struct {
	mac  packet.MACAddr
	ip   packet.IPv4Addr
	ring []*packet.Packet // cyclic queue, slot = index % slots
	// nextSend is the index of the first unsent packet — the k that a
	// stop(c) queries and a start(c, k) installs.
	nextSend uint16
	// head is one past the newest index the controller has enqueued here.
	// It bounds transmission: because the 12-bit index equals the ring
	// slot modulo the ring size, slot contents alone cannot distinguish
	// "fresh packet" from "stale entry from a previous lap".
	head uint16
	// haveAny reports whether any packet was ever enqueued (so an AP that
	// never heard from the controller doesn't transmit garbage).
	haveAny bool
	// serving is true while this AP is the one transmitting to the client.
	serving bool
	// retryQ holds sent-but-unacknowledged MPDUs awaiting retransmission.
	retryQ []*mac.MPDU
	// drainQ holds MPDUs the NIC hardware queue is allowed to finish
	// sending after a stop (§3.1.2 lets AP1 drain ~6 ms of hardware-queued
	// frames over its inferior link rather than discard them).
	drainQ []*mac.MPDU
	// lastEnqueue is when the controller last fanned a packet here.
	lastEnqueue sim.Time
	// seenBA de-duplicates Block ACK state (own NIC or forwarded), keyed by
	// (ssn, bitmap) — the §3.2.1 "received before" check.
	seenBA map[uint64]bool

	// drainPending/drainSwitchID/drainStart/drainCount track the
	// hardware-queue drain a stop(c) left behind, so the switch span can
	// record how long the old AP kept transmitting committed MPDUs.
	drainPending  bool
	drainSwitchID uint32
	drainStart    sim.Time
	drainCount    int
}

// staleRingAfter is how long a client's ring may sit idle before its
// cursors are considered stale and resynchronized on the next enqueue.
const staleRingAfter = sim.Second

// AP is one WGTT access point. Like the controller it is clock- and
// transport-agnostic (DESIGN.md §12); st is nil in live mode, where no
// simulated radio exists and CSI arrives from an external source.
type AP struct {
	cfg Config
	clk runtime.Clock
	bh  backhaul.Fabric
	st  *mac.Station
	rnd *rand.Rand

	controller packet.IPv4Addr
	peers      []packet.IPv4Addr // other APs (for start + BA forwarding)

	clients map[packet.MACAddr]*clientState
	rr      []packet.MACAddr // round-robin order over serving clients

	// down is true while a chaos-injected crash holds the AP off the air
	// and off the backhaul (DESIGN.md §11).
	down bool

	Stats Stats

	// OnDeliver, if set, observes every MPDU acknowledged by a client
	// (evaluation hook).
	OnDeliver func(p *packet.Packet, at sim.Time)
	// OnFrameTx, if set, observes every data frame this AP puts on the air
	// (evaluation hook for link bit-rate distributions, Figs. 15–16).
	OnFrameTx func(rateMbps float64, mpdus int, at sim.Time)
	// DebugSwitch, if set, traces switching anomalies (stale stops, cursor
	// rewinds). Per-AP rather than package-wide so concurrent simulations
	// (fleet cells, parallel experiments) never share mutable state.
	DebugSwitch func(what string, switchID uint32, k uint16)

	met apMetrics
}

// apMetrics holds this AP's observability handles (DESIGN.md §10),
// component-keyed by the AP's name. Nil until UseMetrics wires a registry;
// nil instruments record nothing.
type apMetrics struct {
	enqueued   *metrics.Counter
	overwrites *metrics.Counter
	// queueDepth samples the cyclic-queue backlog (unsent indices between
	// the read cursor and the write head) after each enqueue.
	queueDepth *metrics.Histogram
	baFwd      *metrics.Counter
	baMerged   *metrics.Counter
	// keepalives counts 802.11 null-data frames heard from clients — the
	// §3.1.1 CSI keepalive activity under downlink-only workloads.
	keepalives *metrics.Counter
	csiReports *metrics.Counter
	stops      *metrics.Counter
	starts     *metrics.Counter
	spans      *metrics.SpanTracker
}

// UseMetrics wires the AP's instruments into r under the AP's name (call
// before the run starts). A nil registry leaves recording disabled.
func (a *AP) UseMetrics(r *metrics.Registry) {
	comp := a.cfg.Name
	a.met = apMetrics{
		enqueued:   r.Counter(comp, "down_enqueued"),
		overwrites: r.Counter(comp, "ring_overwrites"),
		queueDepth: r.Histogram(comp, "queue_depth", []float64{0, 4, 16, 64, 256, 1024, 4096}),
		baFwd:      r.Counter(comp, "ba_forwarded"),
		baMerged:   r.Counter(comp, "ba_merged"),
		keepalives: r.Counter(comp, "keepalives_heard"),
		csiReports: r.Counter(comp, "csi_reports"),
		stops:      r.Counter(comp, "stops_handled"),
		starts:     r.Counter(comp, "starts_handled"),
		spans:      r.SwitchSpans(),
	}
}

// New creates an AP, wiring it to the backhaul and its MAC station. The
// station must have been created with the AP's radio endpoint; the AP
// installs itself as the station's Sink and Source. In live mode st may be
// nil — the AP then runs queue and protocol state only, with no radio.
func New(cfg Config, clk runtime.Clock, bh backhaul.Fabric, st *mac.Station, controller packet.IPv4Addr, rnd *rand.Rand) *AP {
	a := &AP{
		cfg:        cfg,
		clk:        clk,
		bh:         bh,
		st:         st,
		rnd:        rnd,
		controller: controller,
		clients:    make(map[packet.MACAddr]*clientState),
	}
	if st != nil {
		st.SetSink(a)
		st.SetSource(a)
	}
	bh.Attach(cfg.IP, a)
	return a
}

// kick nudges the MAC station to contend for the medium; a no-op without a
// radio (live mode).
func (a *AP) kick() {
	if a.st != nil {
		a.st.Kick()
	}
}

// Config returns the AP's configuration.
func (a *AP) Config() Config { return a.cfg }

// Station returns the AP's MAC station.
func (a *AP) Station() *mac.Station { return a.st }

// SetPeers installs the backhaul addresses of the other APs.
func (a *AP) SetPeers(peers []packet.IPv4Addr) { a.peers = peers }

// Serving reports whether this AP currently transmits to the client.
func (a *AP) Serving(client packet.MACAddr) bool {
	cs := a.clients[client]
	return cs != nil && cs.serving
}

// QueueDepth returns the number of buffered-but-unsent packets for a client
// (cyclic queue occupancy from nextSend to the write head) plus pending
// retries — the backlog a switch must deal with.
func (a *AP) QueueDepth(client packet.MACAddr) int {
	cs := a.clients[client]
	if cs == nil {
		return 0
	}
	n := len(cs.retryQ) + len(cs.drainQ)
	if cs.backlog() {
		n += int(packet.IndexDist(cs.nextSend, cs.head))
	}
	return n
}

func (a *AP) client(m packet.MACAddr) *clientState {
	cs, ok := a.clients[m]
	if !ok {
		cs = &clientState{
			mac:    m,
			ring:   make([]*packet.Packet, a.cfg.CyclicQueueSlots),
			seenBA: make(map[uint64]bool),
		}
		a.clients[m] = cs
		a.rr = append(a.rr, m)
	}
	return cs
}

// Associate installs (or updates) client association state, either from a
// local association or a replicated AssocSync.
func (a *AP) Associate(client packet.MACAddr, ip packet.IPv4Addr, serving bool) {
	cs := a.client(client)
	cs.ip = ip
	cs.serving = serving
}

// AlignQueue positions the client's cyclic-queue cursor at index k and
// discards any pending retry/drain MPDUs — the cell-handoff analogue of
// start(c, k). An AP appointed to serve a client admitted from another
// metro cell (DESIGN.md §17) must resume at the adopted controller's index
// cursor: its ring may still buffer a bygone stint's fan-out copies, and
// serving from the stale cursor would retransmit packets the client already
// received — past the client's TTL-bounded duplicate window.
func (a *AP) AlignQueue(client packet.MACAddr, k uint16) {
	cs := a.client(client)
	cs.nextSend = k
	cs.head = k
	cs.haveAny = true
	cs.retryQ = nil
	cs.drainQ = nil
	cs.drainPending = false
}

// Down reports whether the AP is currently crashed.
func (a *AP) Down() bool { return a.down }

// Crash fails the AP: it stops receiving backhaul messages, stops
// transmitting, and stops acknowledging client frames (its radio falls
// silent, so the client's rate adaptation and the controller's health
// monitor both see it disappear). In-memory queue state is left in place
// only to be discarded by Restart — the paper's APs keep the cyclic queue
// in RAM, so a power cycle loses it (DESIGN.md §11).
func (a *AP) Crash() {
	if a.down {
		return
	}
	a.down = true
	a.Stats.Crashes++
	// Installed lazily on first crash so never-crashed runs keep the
	// filter-free ACK fast path.
	if a.st != nil {
		a.st.SetRespondFilter(func(packet.MACAddr) bool { return !a.down })
	}
}

// Restart brings a crashed AP back with cold queues: every client's ring,
// cursors, retry/drain queues, and Block ACK scoreboard reset, and the AP
// serving nobody until a start(c, k) re-appoints it. Association identity
// survives — §4.3 replicates it to every AP, so a rebooted AP re-learns
// (client MAC, IP) from the shared store rather than from scratch.
func (a *AP) Restart() {
	if !a.down {
		return
	}
	a.down = false
	a.Stats.Restarts++
	for _, cs := range a.clients {
		cs.ring = make([]*packet.Packet, a.cfg.CyclicQueueSlots)
		cs.nextSend, cs.head = 0, 0
		cs.haveAny = false
		cs.serving = false
		cs.retryQ = nil
		cs.drainQ = nil
		cs.seenBA = make(map[uint64]bool)
		cs.lastEnqueue = 0
		cs.drainPending = false
	}
}

func (a *AP) jitter() sim.Time {
	if a.cfg.ProcessingJitter <= 0 {
		return 0
	}
	j := a.cfg.ProcessingJitter
	return sim.Time(a.rnd.Int64N(int64(2*j))) - j
}

// HandleBackhaul implements backhaul.Node. Control packets (stop/start) are
// modelled with their user-space processing delay; data tunneling is
// immediate (it lands in a queue, not on the air).
func (a *AP) HandleBackhaul(from packet.IPv4Addr, msg packet.Message) {
	if a.down {
		return
	}
	switch m := msg.(type) {
	case *packet.DownData:
		a.enqueueDownlink(m.Pkt)
	case *packet.Stop:
		a.clk.After(max(0, a.cfg.StopProcessing+a.jitter()), func() { a.handleStop(m) })
	case *packet.Start:
		a.clk.After(max(0, a.cfg.StartProcessing+a.jitter()), func() { a.handleStart(m) })
	case *packet.BlockAckFwd:
		a.handleForwardedBA(m)
	case *packet.AssocSync:
		a.Associate(m.Client, m.ClientIP, false)
	case *packet.HealthProbe:
		// Answered from the fast path, not the user-space control queue:
		// liveness detection must not inherit the stop/start processing
		// delay (DESIGN.md §11).
		a.Stats.ProbesAnswered++
		_ = a.bh.Send(a.cfg.IP, a.controller, &packet.HealthAck{AP: a.cfg.IP, Seq: m.Seq, At: m.At})
	}
}

// enqueueDownlink stores a tunneled packet in the client's cyclic queue.
func (a *AP) enqueueDownlink(p *packet.Packet) {
	cs := a.client(p.ClientMAC)
	slot := int(p.Index) % a.cfg.CyclicQueueSlots
	if old := cs.ring[slot]; old != nil && !cs.sent(old.Index) {
		a.Stats.DownOverwritten++
		a.met.overwrites.Inc()
	}
	cs.ring[slot] = p
	now := a.clk.Now()
	if !cs.haveAny {
		cs.haveAny = true
		cs.nextSend = p.Index
		cs.head = p.Index
	} else if now-cs.lastEnqueue > staleRingAfter {
		// The ring has been idle so long that its cursors describe a
		// bygone flow (and, after enough index wraps, possibly a bogus
		// half-space). Resynchronize to the resumed stream.
		cs.nextSend = p.Index
		cs.head = p.Index
	}
	cs.lastEnqueue = now
	// Advance the write head for in-order (or re-entrant after a fanout
	// gap) arrivals; stale re-deliveries behind the head are just stored.
	if packet.IndexDist(cs.head, p.Index) < uint16(a.cfg.CyclicQueueSlots/2) || cs.head == p.Index {
		cs.head = packet.NextIndex(p.Index)
	}
	// Cyclic overwrite: when the writer laps the reader, the oldest unsent
	// packets are gone — exactly what a ring buffer does under overload.
	// Keep the backlog within half the index space so forward-distance
	// arithmetic stays unambiguous.
	maxBacklog := uint16(a.cfg.CyclicQueueSlots/2 - 64)
	if cs.backlog() {
		if d := packet.IndexDist(cs.nextSend, cs.head); d > maxBacklog {
			dropped := d - maxBacklog
			cs.nextSend = (cs.nextSend + dropped) & packet.IndexMask
			a.Stats.DownOverwritten += uint64(dropped)
			a.met.overwrites.Add(uint64(dropped))
		}
	} else if cs.haveAny && cs.nextSend != cs.head &&
		packet.IndexDist(cs.nextSend, cs.head) > uint16(a.cfg.CyclicQueueSlots/2) {
		// The reader fell more than half the space behind (or a stale
		// start pointed far ahead): resynchronize to a bounded backlog.
		cs.nextSend = (cs.head - maxBacklog) & packet.IndexMask
		a.Stats.DownOverwritten++
		a.met.overwrites.Inc()
	}
	a.Stats.DownEnqueued++
	a.met.enqueued.Inc()
	if a.met.queueDepth != nil {
		depth := 0
		if cs.backlog() {
			depth = int(packet.IndexDist(cs.nextSend, cs.head))
		}
		a.met.queueDepth.Observe(float64(depth))
	}
	if cs.serving {
		a.kick()
	}
}

// backlog reports whether the client has fresh (unsent) packets between
// nextSend and the write head.
func (cs *clientState) backlog() bool {
	if !cs.haveAny || cs.nextSend == cs.head {
		return false
	}
	// nextSend must be within the forward half-space of head; a start(k)
	// pointing past everything we have buffered means nothing to send yet.
	return packet.IndexDist(cs.nextSend, cs.head) <= uint16(len(cs.ring)/2)
}

// sent reports whether index idx is before the next-send pointer (i.e. the
// AP considers it already sent).
func (cs *clientState) sent(idx uint16) bool {
	return packet.IndexDist(idx, cs.nextSend) != 0 &&
		packet.IndexDist(idx, cs.nextSend) < uint16(len(cs.ring)/2)
}

// handleStop is step (1)+(2) of the switching protocol at the old AP: quench
// the client, query the first unsent index (the modelled ioctl), filter
// pending retries out of the driver queue, and send start(c, k) to the new
// AP. The MPDUs already committed to the in-flight A-MPDU still go out —
// the paper's NIC-hardware-queue drain.
func (a *AP) handleStop(m *packet.Stop) {
	if a.down {
		// The crash raced the already-queued processing delay: a dead AP
		// answers nothing (the controller's timeout or failover handles it).
		return
	}
	a.Stats.StopsHandled++
	a.met.stops.Inc()
	a.met.spans.MarkStopHandled(m.SwitchID, int64(a.clk.Now()))
	cs := a.client(m.Client)
	k := cs.nextSend
	if !cs.serving {
		// Duplicate stop (controller timeout retransmission): still answer
		// with the current position so the protocol converges.
		if a.DebugSwitch != nil {
			a.DebugSwitch("stale-stop", m.SwitchID, k)
		}
		a.sendStart(m, k)
		return
	}
	cs.serving = false
	// Driver-queue MPDUs already handed toward the NIC get one final
	// transmission opportunity (the hardware-queue drain); they are not
	// retried again after that.
	cs.drainQ = append(cs.drainQ, cs.retryQ...)
	cs.retryQ = nil
	if a.met.spans != nil {
		if len(cs.drainQ) == 0 {
			// Nothing committed toward the NIC: the drain is trivially over.
			a.met.spans.ObserveDrain(m.SwitchID, 0, 0)
			cs.drainPending = false
		} else {
			cs.drainPending = true
			cs.drainSwitchID = m.SwitchID
			cs.drainStart = a.clk.Now()
			cs.drainCount = 0
		}
	}
	a.sendStart(m, k)
	a.kick()
}

func (a *AP) sendStart(m *packet.Stop, k uint16) {
	start := &packet.Start{Client: m.Client, Index: k, SwitchID: m.SwitchID}
	if err := a.bh.Send(a.cfg.IP, m.NextAP, start); err != nil {
		// Unknown next AP: nothing to do; the controller's timeout fires.
		return
	}
}

// handleStart is step (3) at the new AP: jump the cyclic-queue cursor to k,
// take over transmission, and ack the controller.
func (a *AP) handleStart(m *packet.Start) {
	if a.down {
		return
	}
	a.Stats.StartsHandled++
	a.met.starts.Inc()
	a.met.spans.MarkStartHandled(m.SwitchID, int64(a.clk.Now()))
	cs := a.client(m.Client)
	if !cs.haveAny {
		// Taking over with an empty ring (this AP joined the fan-out set
		// late): align the write head with the resume point, or the head
		// logic would treat every subsequent enqueue as a stale redelivery.
		cs.head = m.Index
	}
	if cs.haveAny {
		if back := packet.IndexDist(m.Index, cs.nextSend); back != 0 && back < 2048 {
			a.Stats.StartRewinds++
			a.Stats.RewindDepth += uint64(back)
			if a.DebugSwitch != nil {
				a.DebugSwitch("rewind", m.SwitchID, m.Index)
			}
		}
	}
	cs.nextSend = m.Index
	cs.haveAny = true
	cs.serving = true
	ack := &packet.SwitchAck{Client: m.Client, AP: a.cfg.IP, SwitchID: m.SwitchID}
	_ = a.bh.Send(a.cfg.IP, a.controller, ack)
	a.kick()
}

// handleForwardedBA merges a Block ACK forwarded by a neighbour into this
// AP's retry state — the ath_tx_complete_aggr() injection of §3.2.1.
func (a *AP) handleForwardedBA(m *packet.BlockAckFwd) {
	cs, ok := a.clients[m.Client]
	if !ok || !cs.serving {
		return
	}
	key := uint64(m.SSN)<<48 ^ m.Bitmap
	if cs.seenBA[key] {
		a.Stats.BADuplicates++
		return
	}
	a.rememberBA(cs, key)
	merged := a.completeFromBitmap(cs, m.SSN, m.Bitmap)
	if merged > 0 {
		a.Stats.BAMerged += uint64(merged)
		a.met.baMerged.Add(uint64(merged))
	}
}

// rememberBA records a scoreboard with bounded memory.
func (a *AP) rememberBA(cs *clientState, key uint64) {
	if len(cs.seenBA) > 256 {
		cs.seenBA = make(map[uint64]bool, 64)
	}
	cs.seenBA[key] = true
}

// completeFromBitmap removes retry-queue MPDUs acknowledged by the bitmap.
func (a *AP) completeFromBitmap(cs *clientState, ssn uint16, bitmap uint64) int {
	kept := cs.retryQ[:0]
	done := 0
	for _, mp := range cs.retryQ {
		if mac.BitmapAcks(ssn, bitmap, mp.Seq) {
			done++
			a.Stats.MPDUsDelivered++
			if a.OnDeliver != nil && mp.Pkt != nil {
				a.OnDeliver(mp.Pkt, a.clk.Now())
			}
			continue
		}
		kept = append(kept, mp)
	}
	cs.retryQ = kept
	return done
}
