package ap

import (
	"math"
	"testing"

	"wgtt/internal/backhaul"
	"wgtt/internal/mac"
	"wgtt/internal/mobility"
	"wgtt/internal/packet"
	"wgtt/internal/radio"
	wrt "wgtt/internal/runtime"
	"wgtt/internal/sim"
)

var testBSSID = packet.MACAddr{0x02, 0xbb, 0, 0, 0, 1}

type clientSink struct {
	got []*mac.MPDU
	bas []*mac.BAEvent
}

func (c *clientSink) OnFrame(ev *mac.RxEvent)    { c.got = append(c.got, ev.Decoded...) }
func (c *clientSink) OnBlockAck(ev *mac.BAEvent) { c.bas = append(c.bas, ev) }

type ctlRecorder struct {
	ups  []*packet.UpData
	csis []*packet.CSIReport
	acks []*packet.SwitchAck
}

func (c *ctlRecorder) HandleBackhaul(_ packet.IPv4Addr, msg packet.Message) {
	switch m := msg.(type) {
	case *packet.UpData:
		c.ups = append(c.ups, m)
	case *packet.CSIReport:
		c.csis = append(c.csis, m)
	case *packet.SwitchAck:
		c.acks = append(c.acks, m)
	}
}

type apHarness struct {
	eng    *sim.Engine
	bh     *backhaul.Switch
	ch     *radio.Channel
	medium *mac.Medium
	ctl    *ctlRecorder
	aps    []*AP
	client *mac.Station
	csink  *clientSink
}

// newAPHarness wires n APs (7.5 m apart from x=20) plus one static client
// under the first AP, over a fade-free channel.
func newAPHarness(t *testing.T, n int, clientX float64) *apHarness {
	t.Helper()
	eng := sim.NewEngine()
	rng := sim.NewRNG(77)
	params := radio.DefaultParams()
	params.NoFading = true
	ch := radio.NewChannel(params, rng)
	medium := mac.NewMedium(eng, ch, rng.Stream("mac"))
	bh := backhaul.NewSwitch(eng, 200*sim.Microsecond)
	ctl := &ctlRecorder{}
	bh.Attach(packet.ControllerIP, ctl)

	h := &apHarness{eng: eng, bh: bh, ch: ch, medium: medium, ctl: ctl}
	var peerIPs []packet.IPv4Addr
	for i := 0; i < n; i++ {
		cfg := DefaultConfig(i, testBSSID)
		ep := &radio.Endpoint{
			Name:         cfg.Name,
			Trace:        mobility.Stationary{At: mobility.Point{X: 20 + float64(i)*7.5, Y: mobility.APSetback}},
			Antenna:      radio.NewLairdGD24BP(),
			BoresightRad: -math.Pi / 2,
			TxPowerDBm:   17,
			ExtraLossDB:  28,
		}
		if err := ch.AddEndpoint(ep); err != nil {
			t.Fatal(err)
		}
		st := mac.NewStation(medium, mac.StationConfig{
			Addr:        cfg.MAC,
			Aliases:     []packet.MACAddr{testBSSID},
			Endpoint:    ep,
			Promiscuous: true,
		})
		a := New(cfg, wrt.Virtual(eng), bh, st, packet.ControllerIP, rng.Stream(cfg.Name))
		h.aps = append(h.aps, a)
		peerIPs = append(peerIPs, cfg.IP)
	}
	for i, a := range h.aps {
		var peers []packet.IPv4Addr
		for j, ip := range peerIPs {
			if j != i {
				peers = append(peers, ip)
			}
		}
		a.SetPeers(peers)
	}

	cep := &radio.Endpoint{
		Name:       "car1",
		Trace:      mobility.Stationary{At: mobility.Point{X: clientX}},
		TxPowerDBm: 15,
	}
	if err := ch.AddEndpoint(cep); err != nil {
		t.Fatal(err)
	}
	h.csink = &clientSink{}
	h.client = mac.NewStation(medium, mac.StationConfig{
		Addr:     packet.ClientMAC(1),
		Endpoint: cep,
		Sink:     h.csink,
	})
	return h
}

// pushDownlink tunnels n packets (controller→AP fan-out) to all APs.
func (h *apHarness) pushDownlink(n int, startIdx uint16) {
	client := packet.ClientMAC(1)
	for i := 0; i < n; i++ {
		p := &packet.Packet{
			FlowID:    1,
			Seq:       uint32(i),
			IPID:      uint16(i),
			ClientMAC: client,
			Bytes:     1400,
			Index:     (startIdx + uint16(i)) & packet.IndexMask,
		}
		for _, a := range h.aps {
			_ = h.bh.Send(packet.ControllerIP, a.Config().IP, &packet.DownData{APDst: a.Config().IP, Pkt: p})
		}
	}
}

func TestDownlinkDeliveryThroughCyclicQueue(t *testing.T) {
	h := newAPHarness(t, 2, 20)
	client := packet.ClientMAC(1)
	for _, a := range h.aps {
		a.Associate(client, packet.ClientIP(1), false)
	}
	h.aps[0].Associate(client, packet.ClientIP(1), true) // serving

	h.pushDownlink(40, 0)
	h.eng.RunUntil(2 * sim.Second)

	if len(h.csink.got) < 38 {
		t.Fatalf("client decoded %d/40 MPDUs", len(h.csink.got))
	}
	if h.aps[0].Stats.MPDUsDelivered < 38 {
		t.Errorf("AP0 delivered = %d", h.aps[0].Stats.MPDUsDelivered)
	}
	// The non-serving AP buffered everything but sent nothing.
	if h.aps[1].Stats.DownEnqueued != 40 {
		t.Errorf("AP1 enqueued = %d", h.aps[1].Stats.DownEnqueued)
	}
	if h.aps[1].Stats.MPDUsDelivered != 0 {
		t.Errorf("non-serving AP delivered %d MPDUs", h.aps[1].Stats.MPDUsDelivered)
	}
}

func TestQueueDepthAndStopStart(t *testing.T) {
	// Client at the midpoint between the two APs so both links work.
	h := newAPHarness(t, 2, 23.75)
	client := packet.ClientMAC(1)
	h.aps[0].Associate(client, packet.ClientIP(1), true)
	h.aps[1].Associate(client, packet.ClientIP(1), false)

	// Fill queues without letting anything transmit (no Kick until events
	// run): push and immediately check depth at both APs.
	h.pushDownlink(300, 0)
	h.eng.RunUntil(210 * sim.Microsecond) // just past backhaul latency
	d0, d1 := h.aps[0].QueueDepth(client), h.aps[1].QueueDepth(client)
	if d0 == 0 || d1 != 300 {
		t.Fatalf("queue depths = %d, %d", d0, d1)
	}

	// Let AP0 send a little, then switch to AP1 mid-stream while a large
	// backlog remains.
	h.eng.RunUntil(5 * sim.Millisecond)
	stop := &packet.Stop{Client: client, NextAP: h.aps[1].Config().IP, SwitchID: 1}
	_ = h.bh.Send(packet.ControllerIP, h.aps[0].Config().IP, stop)
	h.eng.RunUntil(5 * sim.Second)

	if !h.aps[1].Serving(client) {
		t.Fatal("AP1 not serving after start")
	}
	if h.aps[0].Serving(client) {
		t.Fatal("AP0 still serving after stop")
	}
	if len(h.ctl.acks) != 1 {
		t.Fatalf("controller saw %d switch acks", len(h.ctl.acks))
	}
	if h.ctl.acks[0].SwitchID != 1 {
		t.Error("ack switch ID mismatch")
	}
	// Nearly all 300 packets should reach the client across the two APs (minus
	// any in flight exactly at the stop, which the retry flush may drop).
	if len(h.csink.got) < 270 {
		t.Errorf("client decoded %d/300 across the switch", len(h.csink.got))
	}
	if h.aps[1].Stats.MPDUsDelivered == 0 {
		t.Error("AP1 delivered nothing after taking over")
	}
	// Continuity: AP1 resumed from AP0's first-unsent index, so the union
	// of delivered indices has no big hole.
	seen := map[uint16]bool{}
	for _, mp := range h.csink.got {
		if mp.Pkt != nil {
			seen[mp.Pkt.Index] = true
		}
	}
	missing := 0
	for i := uint16(0); i < 300; i++ {
		if !seen[i] {
			missing++
		}
	}
	if missing > 30 {
		t.Errorf("%d indices never delivered", missing)
	}
}

func TestDuplicateStopStillAnswers(t *testing.T) {
	h := newAPHarness(t, 2, 20)
	client := packet.ClientMAC(1)
	h.aps[0].Associate(client, packet.ClientIP(1), true)
	h.aps[1].Associate(client, packet.ClientIP(1), false)
	stop := &packet.Stop{Client: client, NextAP: h.aps[1].Config().IP, SwitchID: 7}
	_ = h.bh.Send(packet.ControllerIP, h.aps[0].Config().IP, stop)
	_ = h.bh.Send(packet.ControllerIP, h.aps[0].Config().IP, stop)
	h.eng.RunUntil(sim.Second)
	if h.aps[0].Stats.StopsHandled != 2 {
		t.Errorf("stops handled = %d", h.aps[0].Stats.StopsHandled)
	}
	// Both stops elicit a start; AP1 acks both (idempotent takeover).
	if h.aps[1].Stats.StartsHandled != 2 {
		t.Errorf("starts handled = %d", h.aps[1].Stats.StartsHandled)
	}
	if !h.aps[1].Serving(client) {
		t.Error("takeover failed")
	}
}

func TestUplinkForwardingAndCSI(t *testing.T) {
	h := newAPHarness(t, 2, 20)
	client := packet.ClientMAC(1)
	h.aps[0].Associate(client, packet.ClientIP(1), true)
	h.aps[1].Associate(client, packet.ClientIP(1), false)

	// Client sends uplink data to the shared BSSID.
	up := make([]*packet.Packet, 20)
	for i := range up {
		up[i] = &packet.Packet{
			FlowID: 2, Seq: uint32(i), IPID: uint16(1000 + i),
			SrcIP: packet.ClientIP(1), ClientMAC: client, Bytes: 800, Uplink: true,
		}
	}
	srcq := up
	h.client.SetSource(sourceFunc{
		build: func() *mac.Frame {
			if len(srcq) == 0 {
				return nil
			}
			var mpdus []*mac.MPDU
			for _, p := range srcq[:min(10, len(srcq))] {
				mpdus = append(mpdus, &mac.MPDU{Seq: h.client.NextSeq(testBSSID), Pkt: p, Bytes: p.Bytes})
			}
			srcq = srcq[len(mpdus):]
			return &mac.Frame{Kind: mac.KindData, From: h.client.Addr, To: testBSSID, MCS: 2, MPDUs: mpdus}
		},
		onDone: func(*mac.TxResult) {
			if len(srcq) > 0 {
				h.client.Kick()
			}
		},
	})
	h.client.Kick()
	h.eng.RunUntil(2 * sim.Second)

	if len(h.ctl.ups) < 20 {
		t.Errorf("controller received %d uplink packets (dupes expected, ≥20)", len(h.ctl.ups))
	}
	if len(h.ctl.csis) == 0 {
		t.Error("no CSI reports reached the controller")
	}
	// CSI reports should come from at least the near AP.
	fromAP0 := 0
	for _, r := range h.ctl.csis {
		if r.AP == h.aps[0].Config().IP {
			fromAP0++
		}
	}
	if fromAP0 == 0 {
		t.Error("near AP produced no CSI")
	}
}

type sourceFunc struct {
	build  func() *mac.Frame
	onDone func(*mac.TxResult)
}

func (s sourceFunc) BuildFrame() *mac.Frame     { return s.build() }
func (s sourceFunc) OnTxDone(res *mac.TxResult) { s.onDone(res) }

func TestForwardedBADedupAndMerge(t *testing.T) {
	h := newAPHarness(t, 2, 20)
	client := packet.ClientMAC(1)
	h.aps[0].Associate(client, packet.ClientIP(1), true)

	// Manufacture a retry MPDU pending at the serving AP.
	cs := h.aps[0].client(client)
	mp := &mac.MPDU{Seq: 100, Pkt: &packet.Packet{ClientMAC: client, Bytes: 100, Index: 5}, Bytes: 100}
	cs.retryQ = append(cs.retryQ, mp)

	fwd := &packet.BlockAckFwd{Client: client, FromAP: h.aps[1].Config().IP, SSN: 100, Bitmap: 1}
	h.aps[0].HandleBackhaul(h.aps[1].Config().IP, fwd)
	if h.aps[0].Stats.BAMerged != 1 {
		t.Fatalf("BAMerged = %d", h.aps[0].Stats.BAMerged)
	}
	if len(cs.retryQ) != 0 {
		t.Fatal("acked MPDU still in retry queue")
	}
	// Same scoreboard again: dropped as duplicate (§3.2.1 check).
	h.aps[0].HandleBackhaul(h.aps[1].Config().IP, fwd)
	if h.aps[0].Stats.BADuplicates != 1 {
		t.Errorf("BADuplicates = %d", h.aps[0].Stats.BADuplicates)
	}
}

func TestForwardedBAIgnoredWhenNotServing(t *testing.T) {
	h := newAPHarness(t, 2, 20)
	client := packet.ClientMAC(1)
	h.aps[0].Associate(client, packet.ClientIP(1), false)
	fwd := &packet.BlockAckFwd{Client: client, SSN: 0, Bitmap: 1}
	h.aps[0].HandleBackhaul(h.aps[1].Config().IP, fwd)
	if h.aps[0].Stats.BAMerged != 0 || h.aps[0].Stats.BADuplicates != 0 {
		t.Error("non-serving AP processed a forwarded BA")
	}
}

func TestCyclicOverwriteDropsOldest(t *testing.T) {
	h := newAPHarness(t, 1, 200) // client far away: nothing transmits
	client := packet.ClientMAC(1)
	h.aps[0].Associate(client, packet.ClientIP(1), false) // never serving
	slots := h.aps[0].Config().CyclicQueueSlots
	maxBacklog := slots/2 - 64

	// A modest backlog is kept in full.
	h.pushDownlink(100, 0)
	h.eng.RunUntil(sim.Millisecond)
	if d := h.aps[0].QueueDepth(client); d != 100 {
		t.Fatalf("depth = %d, want 100", d)
	}
	if h.aps[0].Stats.DownOverwritten != 0 {
		t.Fatal("overwrites counted before the ring lapped")
	}

	// Overload: the writer laps the reader; the oldest packets are dropped
	// and the backlog stays bounded (drop-oldest ring semantics).
	h.pushDownlink(3000, 100)
	h.eng.RunUntil(2 * sim.Millisecond)
	if d := h.aps[0].QueueDepth(client); d > maxBacklog {
		t.Errorf("depth = %d, want ≤ %d", d, maxBacklog)
	}
	if h.aps[0].Stats.DownOverwritten == 0 {
		t.Error("overload did not count overwrites")
	}
}

func TestAssocSyncCreatesClient(t *testing.T) {
	h := newAPHarness(t, 1, 20)
	client := packet.ClientMAC(5)
	msg := &packet.AssocSync{Client: client, ClientIP: packet.ClientIP(5), AID: 2, Authorized: true}
	h.aps[0].HandleBackhaul(packet.APIP(9), msg)
	if h.aps[0].Serving(client) {
		t.Error("assoc-synced client should not be serving here")
	}
	if h.aps[0].QueueDepth(client) != 0 {
		t.Error("fresh client has queue depth")
	}
}

// A stop moves pending retries into the one-shot drain queue (the paper's
// NIC hardware-queue drain) instead of silently dropping them.
func TestStopDrainsRetriesOnce(t *testing.T) {
	h := newAPHarness(t, 2, 20)
	client := packet.ClientMAC(1)
	h.aps[0].Associate(client, packet.ClientIP(1), true)
	h.aps[1].Associate(client, packet.ClientIP(1), false)

	cs := h.aps[0].client(client)
	for i := uint16(0); i < 5; i++ {
		cs.retryQ = append(cs.retryQ, &mac.MPDU{
			Seq: 100 + i, Bytes: 1000,
			Pkt: &packet.Packet{ClientMAC: client, Bytes: 1000, Index: i},
		})
	}
	stop := &packet.Stop{Client: client, NextAP: h.aps[1].Config().IP, SwitchID: 3}
	_ = h.bh.Send(packet.ControllerIP, h.aps[0].Config().IP, stop)
	h.eng.RunUntil(sim.Second)

	if len(cs.retryQ) != 0 || len(cs.drainQ) != 0 {
		t.Errorf("retry/drain queues not emptied: %d/%d", len(cs.retryQ), len(cs.drainQ))
	}
	// The drained MPDUs went out over the (still good) old link and were
	// delivered — that's the whole point of the drain.
	if got := len(h.csink.got); got < 4 {
		t.Errorf("only %d/5 drained MPDUs reached the client", got)
	}
	if h.aps[0].Serving(client) {
		t.Error("AP0 still serving after stop")
	}
}

// A crashed AP must fall silent on both faces: no frames on the air, no
// backhaul processing (a stop goes unanswered — the no-ack case the
// controller's failover path exists for), and no probe acks. Restart must
// come back with cold queues (DESIGN.md §11).
func TestCrashSilencesAPAndRestartColdStarts(t *testing.T) {
	h := newAPHarness(t, 2, 20)
	client := packet.ClientMAC(1)
	h.aps[0].Associate(client, packet.ClientIP(1), true)
	h.aps[1].Associate(client, packet.ClientIP(1), false)

	h.pushDownlink(50, 0)
	h.eng.RunUntil(2 * sim.Millisecond)

	h.aps[0].Crash()
	if !h.aps[0].Down() {
		t.Fatal("Down() false after Crash")
	}
	// A frame already committed to the air at the crash instant still
	// lands (physics); let it settle, then nothing more may arrive.
	h.eng.RunUntil(20 * sim.Millisecond)
	deliveredBefore := len(h.csink.got)

	// A stop sent to the crashed AP produces neither a start nor an ack.
	stop := &packet.Stop{Client: client, NextAP: h.aps[1].Config().IP, SwitchID: 9}
	_ = h.bh.Send(packet.ControllerIP, h.aps[0].Config().IP, stop)
	// A probe goes unanswered too.
	_ = h.bh.Send(packet.ControllerIP, h.aps[0].Config().IP, &packet.HealthProbe{Seq: 1})
	h.eng.RunUntil(2 * sim.Second)

	if got := len(h.csink.got); got != deliveredBefore {
		t.Errorf("crashed AP kept transmitting: %d -> %d MPDUs", deliveredBefore, got)
	}
	if len(h.ctl.acks) != 0 {
		t.Error("crashed AP produced a switch ack")
	}
	if h.aps[0].Stats.StopsHandled != 0 {
		t.Error("crashed AP processed a stop")
	}
	if h.aps[0].Stats.ProbesAnswered != 0 {
		t.Error("crashed AP answered a health probe")
	}

	// Restart: queues are cold, serving flag cleared, association kept.
	h.aps[0].Restart()
	if h.aps[0].Down() {
		t.Fatal("Down() true after Restart")
	}
	if h.aps[0].Stats.Crashes != 1 || h.aps[0].Stats.Restarts != 1 {
		t.Errorf("crash/restart counters = %d/%d", h.aps[0].Stats.Crashes, h.aps[0].Stats.Restarts)
	}
	if h.aps[0].Serving(client) {
		t.Error("restarted AP still serving")
	}
	if d := h.aps[0].QueueDepth(client); d != 0 {
		t.Errorf("restarted AP queue depth = %d, want 0 (ring state lost)", d)
	}
	cs := h.aps[0].client(client)
	if cs.ip != packet.ClientIP(1) {
		t.Error("association identity lost across restart")
	}

	// The restarted AP answers probes again.
	_ = h.bh.Send(packet.ControllerIP, h.aps[0].Config().IP, &packet.HealthProbe{Seq: 2, At: 5})
	h.eng.RunUntil(3 * sim.Second)
	if h.aps[0].Stats.ProbesAnswered != 1 {
		t.Error("restarted AP did not answer the probe")
	}
}

// A healthy AP answers probes immediately with the probe's Seq/At echoed.
func TestHealthProbeAnswered(t *testing.T) {
	h := newAPHarness(t, 1, 20)
	acks := 0
	h.bh.Attach(packet.ControllerIP, backhaul.NodeFunc(func(_ packet.IPv4Addr, msg packet.Message) {
		if a, ok := msg.(*packet.HealthAck); ok {
			acks++
			if a.Seq != 7 || a.At != 123 || a.AP != h.aps[0].Config().IP {
				t.Errorf("ack fields wrong: %+v", a)
			}
		}
	}))
	_ = h.bh.Send(packet.ControllerIP, h.aps[0].Config().IP, &packet.HealthProbe{Seq: 7, At: 123})
	h.eng.RunUntil(10 * sim.Millisecond)
	if acks != 1 {
		t.Fatalf("got %d health acks, want 1", acks)
	}
}
