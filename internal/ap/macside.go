package ap

import (
	"wgtt/internal/mac"
	"wgtt/internal/packet"
	"wgtt/internal/phy"
	"wgtt/internal/sim"
)

// This file is the AP's 802.11 face: it implements mac.Source (aggregate
// assembly from the cyclic/retry queues) and mac.Sink (uplink reception,
// CSI reporting, monitor-mode Block ACK capture).

// BuildFrame implements mac.Source. It serves clients round-robin,
// retransmissions first, then fresh packets pulled from the cyclic queue —
// at this instant, not earlier, which is what gives the stop protocol its
// bite: a quenched client simply yields no MPDUs.
func (a *AP) BuildFrame() *mac.Frame {
	if a.down {
		return nil // a crashed AP's radio is silent (DESIGN.md §11)
	}
	cs := a.pickClient()
	if cs == nil {
		return nil
	}
	// Pick the rate first: the TXOP limit caps the aggregate's airtime, so
	// the byte budget depends on the MCS (ath9k caps A-MPDUs the same way).
	mcs := a.st.PickMCS(cs.mac)
	budget := min(a.cfg.MaxAggregateBytes, phy.TXOPByteBudget(mcs))

	var mpdus []*mac.MPDU
	bytes := 0

	// Hardware-queue drain after a stop: send what was committed, once.
	if len(cs.drainQ) > 0 {
		n := 0
		for n < len(cs.drainQ) && n < a.cfg.MaxAggregate && bytes < budget {
			mpdus = append(mpdus, cs.drainQ[n])
			bytes += cs.drainQ[n].Bytes
			n++
		}
		cs.drainQ = cs.drainQ[n:]
		if cs.drainPending {
			cs.drainCount += n
			if len(cs.drainQ) == 0 {
				// The last committed MPDU just left toward the NIC — the
				// §3.1.2 drain the old AP performs over its inferior link.
				a.met.spans.ObserveDrain(cs.drainSwitchID, cs.drainCount,
					int64(a.clk.Now()-cs.drainStart))
				cs.drainPending = false
			}
		}
		return &mac.Frame{Kind: mac.KindData, From: a.cfg.BSSID, To: cs.mac, MCS: mcs, MPDUs: mpdus}
	}

	// Retries go first (802.11 retransmits in sequence order where it can).
	n := 0
	for n < len(cs.retryQ) && n < a.cfg.MaxAggregate && bytes < budget {
		mpdus = append(mpdus, cs.retryQ[n])
		bytes += cs.retryQ[n].Bytes
		n++
	}
	cs.retryQ = cs.retryQ[n:]

	// Fresh packets from the cyclic queue, up to the write head.
	for len(mpdus) < a.cfg.MaxAggregate && bytes < budget && cs.backlog() {
		slot := int(cs.nextSend) % a.cfg.CyclicQueueSlots
		p := cs.ring[slot]
		if p == nil || p.Index != cs.nextSend {
			// Fanout gap: this AP never got the packet; skip the slot.
			cs.nextSend = packet.NextIndex(cs.nextSend)
			continue
		}
		mpdus = append(mpdus, &mac.MPDU{
			Seq:   a.st.NextSeq(cs.mac),
			Pkt:   p,
			Bytes: p.Bytes,
		})
		bytes += p.Bytes
		cs.nextSend = packet.NextIndex(cs.nextSend)
	}
	if len(mpdus) == 0 {
		return nil
	}
	return &mac.Frame{
		Kind:  mac.KindData,
		From:  a.cfg.BSSID, // thin-AP: every AP presents the shared BSSID
		To:    cs.mac,
		MCS:   mcs,
		MPDUs: mpdus,
	}
}

// pickClient returns the next client with pending work, rotating the
// round-robin cursor. Non-serving clients only qualify while a post-stop
// hardware-queue drain is pending.
func (a *AP) pickClient() *clientState {
	for i := 0; i < len(a.rr); i++ {
		m := a.rr[0]
		a.rr = append(a.rr[1:], m)
		cs := a.clients[m]
		if cs == nil {
			continue
		}
		if len(cs.drainQ) > 0 {
			return cs
		}
		if !cs.serving {
			continue
		}
		if len(cs.retryQ) > 0 || cs.backlog() {
			return cs
		}
	}
	return nil
}

// hasWork reports whether any client has something to send.
func (a *AP) hasWork() bool {
	for _, cs := range a.clients {
		if len(cs.drainQ) > 0 {
			return true
		}
		if !cs.serving {
			continue
		}
		if len(cs.retryQ) > 0 || cs.backlog() {
			return true
		}
	}
	return false
}

// OnTxDone implements mac.Source: score the aggregate against the Block ACK
// (if any), requeue or drop the rest, feed rate control.
func (a *AP) OnTxDone(res *mac.TxResult) {
	if a.down {
		// A frame completed as the crash hit: whatever retry state this
		// would produce dies with the AP (Restart wipes it anyway).
		return
	}
	if res == nil || res.Frame == nil {
		if a.hasWork() {
			a.kick()
		}
		return
	}
	fr := res.Frame
	cs := a.clients[fr.To]
	if cs == nil {
		return
	}
	if a.OnFrameTx != nil {
		a.OnFrameTx(phy.Lookup(fr.MCS).DataRateMbps, len(fr.MPDUs), a.clk.Now())
	}
	acked := 0
	for _, mp := range fr.MPDUs {
		if res.BAReceived && mac.BitmapAcks(res.SSN, res.Bitmap, mp.Seq) {
			acked++
			a.Stats.MPDUsDelivered++
			if a.OnDeliver != nil && mp.Pkt != nil {
				a.OnDeliver(mp.Pkt, a.clk.Now())
			}
			continue
		}
		mp.Retries++
		switch {
		case !cs.serving:
			// Stopped while in flight: the paper drains the NIC queue but
			// filters everything still in the driver — the retry is gone.
			a.Stats.MPDUsFlushed++
		case mp.Retries > a.cfg.RetryLimit:
			a.Stats.MPDUsDropped++
		default:
			cs.retryQ = append(cs.retryQ, mp)
		}
	}
	if res.BAReceived {
		a.rememberBA(cs, uint64(res.SSN)<<48^res.Bitmap)
	}
	a.st.ReportTx(fr.To, fr.MCS, len(fr.MPDUs), acked)
	if a.hasWork() {
		a.kick()
	}
}

// OnFrame implements mac.Sink: uplink data tunneling (§3.2.2) and per-frame
// CSI reporting (§3.1.1).
func (a *AP) OnFrame(ev *mac.RxEvent) {
	if a.down {
		return // a crashed AP hears nothing
	}
	if a.isAPAddr(ev.From) {
		return // another AP's downlink; nothing to do
	}
	if !ev.Synced {
		// No PLCP lock, no CSI — and an AP whose PHY cannot even sync to
		// the client has not "heard" it for fan-out purposes either.
		return
	}
	a.reportCSI(ev.From, ev.SNRdB, ev.At)
	if ev.Kind != mac.KindData || !a.cfg.UplinkForwarding {
		return
	}
	if a.cfg.ForwardOnlyWhenServing {
		if cs := a.clients[ev.From]; cs == nil || !cs.serving {
			return
		}
	}
	for _, mp := range ev.Decoded {
		if mp.Pkt == nil {
			continue
		}
		if mp.Pkt.Kind == packet.KindNull {
			// Nulls are CSI probes, not traffic — the keepalive activity
			// that keeps the §3.1.1 window fed under downlink-only load.
			a.met.keepalives.Inc()
			continue
		}
		a.Stats.UplinkForwarded++
		_ = a.bh.Send(a.cfg.IP, a.controller, &packet.UpData{APSrc: a.cfg.IP, Pkt: mp.Pkt})
	}
}

// OnBlockAck implements mac.Sink. Two duties: CSI from the client's Block
// ACK transmissions, and §3.2.1 forwarding of overheard Block ACKs to the
// client's serving AP (we broadcast to all peers; only the serving AP
// merges).
func (a *AP) OnBlockAck(ev *mac.BAEvent) {
	if a.down {
		return
	}
	if a.isAPAddr(ev.Responder) {
		return // an AP acknowledging uplink data; not client state
	}
	a.reportCSI(ev.Responder, ev.SNRdB, ev.At)
	if !ev.Overheard || !a.cfg.BAForwarding {
		return
	}
	cs, known := a.clients[ev.Responder]
	if !known || cs.serving {
		// Serving AP gets the BA through its own TXOP result; only
		// monitor-mode neighbours forward.
		return
	}
	a.Stats.BAForwarded++
	a.met.baFwd.Inc()
	fwd := &packet.BlockAckFwd{
		Client: ev.Responder,
		FromAP: a.cfg.IP,
		SSN:    ev.SSN,
		Bitmap: ev.Bitmap,
	}
	for _, peer := range a.peers {
		_ = a.bh.Send(a.cfg.IP, peer, fwd)
	}
}

// reportCSI quantizes and ships a CSI measurement to the controller.
func (a *AP) reportCSI(client packet.MACAddr, snrDB []float64, at sim.Time) {
	if len(snrDB) == 0 {
		return
	}
	rep := &packet.CSIReport{Client: client, AP: a.cfg.IP, At: int64(at)}
	rep.QuantizeSNR(snrDB)
	a.Stats.CSIReports++
	a.met.csiReports.Inc()
	_ = a.bh.Send(a.cfg.IP, a.controller, rep)
}

// isAPAddr reports whether addr belongs to AP infrastructure (own MAC,
// BSSID, or a peer AP's MAC pattern).
func (a *AP) isAPAddr(addr packet.MACAddr) bool {
	if addr == a.cfg.MAC || addr == a.cfg.BSSID {
		return true
	}
	// AP MACs share the deterministic APMAC prefix.
	return addr[0] == 0x02 && addr[1] == 0xa9
}
