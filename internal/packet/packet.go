package packet

import (
	"fmt"

	"wgtt/internal/sim"
)

// IndexBits is the width of the WGTT per-client packet index. The paper
// sets m = 12 bits so indices stay unique inside each client's cyclic
// buffer (§3.1.2).
const IndexBits = 12

// IndexMask extracts an index from a wider integer.
const IndexMask = (1 << IndexBits) - 1

// IndexDist returns the forward distance from index a to index b in the
// 12-bit circular index space.
func IndexDist(a, b uint16) uint16 { return (b - a) & IndexMask }

// NextIndex returns the index after i in the 12-bit circular space.
func NextIndex(i uint16) uint16 { return (i + 1) & IndexMask }

// Packet is one IP datagram moving through the system. The simulator
// carries it by pointer; queue occupancy and airtime are derived from
// Bytes, so no payload bytes are materialized.
type Packet struct {
	// FlowID identifies the transport flow the packet belongs to.
	FlowID uint32
	// Seq is the transport-layer sequence number (bytes or segments,
	// interpreted by the transport). Used for loss/ordering analysis.
	Seq uint32
	// IPID is the IP identification field; with SrcIP it forms the 48-bit
	// de-duplication key of §3.2.2.
	IPID uint16
	// SrcIP and DstIP are the layer-3 endpoints (client ↔ content server).
	SrcIP, DstIP IPv4Addr
	// ClientMAC is the layer-2 address of the mobile client this packet is
	// delivered to (downlink) or heard from (uplink).
	ClientMAC MACAddr
	// Bytes is the on-the-wire size of the datagram, headers included.
	Bytes int
	// Index is the WGTT 12-bit per-client downlink index assigned by the
	// controller; meaningful only on downlink packets.
	Index uint16
	// Uplink marks client→network packets.
	Uplink bool
	// Created is when the packet entered the system (for latency metrics).
	Created sim.Time
	// Kind annotates transport semantics (data vs pure TCP ACK), letting
	// the MAC and analysis distinguish them without payload inspection.
	Kind Kind
}

// Kind classifies a packet's transport role.
type Kind uint8

// Packet kinds.
const (
	KindData Kind = iota // payload-bearing segment or datagram
	KindAck              // transport-level acknowledgement
	// KindNull is an 802.11 null-data keepalive: it exists so the APs have
	// uplink frames to measure CSI on even when the client's transport is
	// silent (pure-downlink workloads). APs do not tunnel nulls upstream.
	KindNull
)

// String summarizes the packet for logs.
func (p *Packet) String() string {
	dir := "down"
	if p.Uplink {
		dir = "up"
	}
	return fmt.Sprintf("pkt{flow=%d seq=%d %s %dB idx=%d}", p.FlowID, p.Seq, dir, p.Bytes, p.Index)
}

// DedupKey is the controller's 48-bit uplink de-duplication key: the source
// IP address plus the IP identification field (§3.2.2).
type DedupKey uint64

// KeyOf builds the de-duplication key for a packet.
func KeyOf(p *Packet) DedupKey {
	return DedupKey(uint64(p.SrcIP[0])<<40 | uint64(p.SrcIP[1])<<32 |
		uint64(p.SrcIP[2])<<24 | uint64(p.SrcIP[3])<<16 | uint64(p.IPID))
}
