package packet_test

import (
	"fmt"

	"wgtt/internal/packet"
)

// Every backhaul message has a stable binary wire format.
func ExampleEncode() {
	stop := &packet.Stop{
		Client:   packet.ClientMAC(1),
		NextAP:   packet.APIP(2),
		SwitchID: 7,
	}
	raw := packet.Encode(stop)
	msg, err := packet.Decode(raw)
	if err != nil {
		panic(err)
	}
	back := msg.(*packet.Stop)
	fmt.Printf("%d bytes on the wire; stop(client=%v) -> AP %v\n",
		len(raw), back.Client, back.NextAP)
	// Output:
	// 17 bytes on the wire; stop(client=02:c1:1e:00:00:01) -> AP 10.0.0.12
}

// The controller's uplink de-duplication key is the 48-bit
// (source IP, IP ID) pair of §3.2.2.
func ExampleKeyOf() {
	viaAP1 := &packet.Packet{SrcIP: packet.ClientIP(1), IPID: 42}
	viaAP2 := &packet.Packet{SrcIP: packet.ClientIP(1), IPID: 42}
	next := &packet.Packet{SrcIP: packet.ClientIP(1), IPID: 43}
	fmt.Println(packet.KeyOf(viaAP1) == packet.KeyOf(viaAP2))
	fmt.Println(packet.KeyOf(viaAP1) == packet.KeyOf(next))
	// Output:
	// true
	// false
}
