package packet

import (
	"encoding/binary"
	"fmt"
	"math"

	"wgtt/internal/sim"
)

// Message is any unit that crosses the Ethernet backhaul. Every message has
// a stable binary wire format (Marshal) so the formats the paper describes
// are real, testable encodings rather than in-memory conveniences.
type Message interface {
	// Type returns the wire discriminator.
	Type() MsgType
	// WireSize returns the encoded payload length in bytes (excluding the
	// 3-byte envelope header).
	WireSize() int
	// marshal appends the payload encoding to dst.
	marshal(dst []byte) []byte
	// unmarshal parses the payload encoding.
	unmarshal(src []byte) error
}

// MsgType discriminates backhaul messages.
type MsgType uint8

// Backhaul message types.
const (
	// MsgDownData tunnels one downlink data packet controller→AP (§3.1.3).
	MsgDownData MsgType = iota + 1
	// MsgUpData tunnels one overheard uplink packet AP→controller (§3.2.2).
	MsgUpData
	// MsgStop is the controller→AP "cease sending to client c" command.
	MsgStop
	// MsgStart is the old-AP→new-AP "resume at index k" handoff.
	MsgStart
	// MsgSwitchAck is the new-AP→controller switch acknowledgement.
	MsgSwitchAck
	// MsgCSI is an AP→controller CSI report.
	MsgCSI
	// MsgBAFwd is a neighbour-AP→serving-AP forwarded Block ACK (§3.2.1).
	MsgBAFwd
	// MsgAssoc replicates client association state AP→AP (§4.3).
	MsgAssoc
	// MsgHealthProbe is a controller→AP liveness probe. The paper's control
	// plane assumes APs never fail; the probe/ack pair backs the AP health
	// monitor that relaxes that assumption (DESIGN.md §11).
	MsgHealthProbe
	// MsgHealthAck is the AP→controller reply to a health probe.
	MsgHealthAck
	// MsgDomainHandoffOffer proposes moving a client between controller
	// domains: the owning controller tells the peer which AP the evidence
	// points at (DESIGN.md §13).
	MsgDomainHandoffOffer
	// MsgDomainHandoffAccept is the peer controller's answer to an offer.
	MsgDomainHandoffAccept
	// MsgDomainHandoffCommit transfers the client's volatile state bundle
	// (downlink index cursor, uplink dedup window, ESNR evidence) to the new
	// owner; sent slim (no bundle) as an ownership announcement to third
	// domains.
	MsgDomainHandoffCommit
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	switch t {
	case MsgDownData:
		return "down-data"
	case MsgUpData:
		return "up-data"
	case MsgStop:
		return "stop"
	case MsgStart:
		return "start"
	case MsgSwitchAck:
		return "switch-ack"
	case MsgCSI:
		return "csi"
	case MsgBAFwd:
		return "ba-fwd"
	case MsgAssoc:
		return "assoc"
	case MsgHealthProbe:
		return "health-probe"
	case MsgHealthAck:
		return "health-ack"
	case MsgDomainHandoffOffer:
		return "handoff-offer"
	case MsgDomainHandoffAccept:
		return "handoff-accept"
	case MsgDomainHandoffCommit:
		return "handoff-commit"
	default:
		return fmt.Sprintf("msg?%d", uint8(t))
	}
}

// Encode serializes a message with its 3-byte envelope: type (1) and
// payload length (2, big-endian).
func Encode(m Message) []byte {
	return EncodeInto(make([]byte, 0, 3+m.WireSize()), m)
}

// EncodeInto appends m's enveloped encoding to dst and returns the extended
// slice, following the append convention: a hot path that replicates one
// message to many destinations (§3.1.1 downlink fan-out) encodes once into
// a reused scratch buffer instead of allocating per copy. The produced
// bytes are identical to Encode's.
func EncodeInto(dst []byte, m Message) []byte {
	n := m.WireSize()
	dst = append(dst, byte(m.Type()))
	dst = binary.BigEndian.AppendUint16(dst, uint16(n))
	dst = m.marshal(dst)
	return dst
}

// Decode parses one enveloped message.
func Decode(src []byte) (Message, error) {
	if len(src) < 3 {
		return nil, fmt.Errorf("packet: envelope truncated (%d bytes)", len(src))
	}
	t := MsgType(src[0])
	n := int(binary.BigEndian.Uint16(src[1:3]))
	if len(src) < 3+n {
		return nil, fmt.Errorf("packet: %v payload truncated: have %d, want %d", t, len(src)-3, n)
	}
	var m Message
	switch t {
	case MsgDownData:
		m = &DownData{}
	case MsgUpData:
		m = &UpData{}
	case MsgStop:
		m = &Stop{}
	case MsgStart:
		m = &Start{}
	case MsgSwitchAck:
		m = &SwitchAck{}
	case MsgCSI:
		m = &CSIReport{}
	case MsgBAFwd:
		m = &BlockAckFwd{}
	case MsgAssoc:
		m = &AssocSync{}
	case MsgHealthProbe:
		m = &HealthProbe{}
	case MsgHealthAck:
		m = &HealthAck{}
	case MsgDomainHandoffOffer:
		m = &DomainHandoffOffer{}
	case MsgDomainHandoffAccept:
		m = &DomainHandoffAccept{}
	case MsgDomainHandoffCommit:
		m = &DomainHandoffCommit{}
	default:
		return nil, fmt.Errorf("packet: unknown message type %d", src[0])
	}
	if err := m.unmarshal(src[3 : 3+n]); err != nil {
		return nil, fmt.Errorf("packet: %v: %w", t, err)
	}
	return m, nil
}

// pktHeaderSize is the encoded size of the shared Packet descriptor.
const pktHeaderSize = 4 + 4 + 2 + 4 + 4 + 6 + 2 + 2 + 1 + 8

func marshalPkt(dst []byte, p *Packet) []byte {
	dst = binary.BigEndian.AppendUint32(dst, p.FlowID)
	dst = binary.BigEndian.AppendUint32(dst, p.Seq)
	dst = binary.BigEndian.AppendUint16(dst, p.IPID)
	dst = append(dst, p.SrcIP[:]...)
	dst = append(dst, p.DstIP[:]...)
	dst = append(dst, p.ClientMAC[:]...)
	dst = binary.BigEndian.AppendUint16(dst, uint16(p.Bytes))
	dst = binary.BigEndian.AppendUint16(dst, p.Index)
	flags := byte(p.Kind) << 1
	if p.Uplink {
		flags |= 1
	}
	dst = append(dst, flags)
	dst = binary.BigEndian.AppendUint64(dst, uint64(p.Created))
	return dst
}

func unmarshalPkt(src []byte) (*Packet, error) {
	if len(src) < pktHeaderSize {
		return nil, fmt.Errorf("packet descriptor truncated: %d bytes", len(src))
	}
	p := &Packet{}
	p.FlowID = binary.BigEndian.Uint32(src[0:4])
	p.Seq = binary.BigEndian.Uint32(src[4:8])
	p.IPID = binary.BigEndian.Uint16(src[8:10])
	copy(p.SrcIP[:], src[10:14])
	copy(p.DstIP[:], src[14:18])
	copy(p.ClientMAC[:], src[18:24])
	p.Bytes = int(binary.BigEndian.Uint16(src[24:26]))
	p.Index = binary.BigEndian.Uint16(src[26:28])
	flags := src[28]
	p.Uplink = flags&1 != 0
	p.Kind = Kind(flags >> 1)
	p.Created = sim.Time(binary.BigEndian.Uint64(src[29:37]))
	return p, nil
}

// DownData tunnels a downlink packet from the controller to one AP: the
// outer header targets the AP's backhaul IP, the inner descriptor keeps the
// client's own L2/L3 addresses so the AP can tell which client queue the
// packet belongs to (§3.1.3).
type DownData struct {
	APDst IPv4Addr // tunnel destination (AP backhaul address)
	Pkt   *Packet
}

// Type implements Message.
func (*DownData) Type() MsgType { return MsgDownData }

// WireSize implements Message.
func (*DownData) WireSize() int { return 4 + pktHeaderSize }

func (d *DownData) marshal(dst []byte) []byte {
	dst = append(dst, d.APDst[:]...)
	return marshalPkt(dst, d.Pkt)
}

func (d *DownData) unmarshal(src []byte) error {
	if len(src) < 4+pktHeaderSize {
		return fmt.Errorf("truncated")
	}
	copy(d.APDst[:], src[0:4])
	p, err := unmarshalPkt(src[4:])
	d.Pkt = p
	return err
}

// UpData tunnels an overheard uplink packet from an AP to the controller,
// with the AP's identity as the outer source so the controller can record
// which AP heard it (§3.2.2).
type UpData struct {
	APSrc IPv4Addr
	Pkt   *Packet
}

// Type implements Message.
func (*UpData) Type() MsgType { return MsgUpData }

// WireSize implements Message.
func (*UpData) WireSize() int { return 4 + pktHeaderSize }

func (u *UpData) marshal(dst []byte) []byte {
	dst = append(dst, u.APSrc[:]...)
	return marshalPkt(dst, u.Pkt)
}

func (u *UpData) unmarshal(src []byte) error {
	if len(src) < 4+pktHeaderSize {
		return fmt.Errorf("truncated")
	}
	copy(u.APSrc[:], src[0:4])
	p, err := unmarshalPkt(src[4:])
	u.Pkt = p
	return err
}

// Stop is step (1) of the switching protocol: the controller tells the
// currently-transmitting AP to cease sending to client c. It carries the
// layer-2 addresses of the client and of the AP taking over (§3.1.2).
type Stop struct {
	Client   MACAddr
	NextAP   IPv4Addr
	SwitchID uint32 // correlates stop/start/ack of one switch attempt
}

// Type implements Message.
func (*Stop) Type() MsgType { return MsgStop }

// WireSize implements Message.
func (*Stop) WireSize() int { return 6 + 4 + 4 }

func (s *Stop) marshal(dst []byte) []byte {
	dst = append(dst, s.Client[:]...)
	dst = append(dst, s.NextAP[:]...)
	return binary.BigEndian.AppendUint32(dst, s.SwitchID)
}

func (s *Stop) unmarshal(src []byte) error {
	if len(src) < s.WireSize() {
		return fmt.Errorf("truncated")
	}
	copy(s.Client[:], src[0:6])
	copy(s.NextAP[:], src[6:10])
	s.SwitchID = binary.BigEndian.Uint32(src[10:14])
	return nil
}

// Start is step (2): the old AP tells the new AP the index k of the first
// unsent packet for client c, so the new AP resumes from its own cyclic
// queue with no backhaul retransfer (§3.1.2).
type Start struct {
	Client   MACAddr
	Index    uint16 // k, 12-bit
	SwitchID uint32
}

// Type implements Message.
func (*Start) Type() MsgType { return MsgStart }

// WireSize implements Message.
func (*Start) WireSize() int { return 6 + 2 + 4 }

func (s *Start) marshal(dst []byte) []byte {
	dst = append(dst, s.Client[:]...)
	dst = binary.BigEndian.AppendUint16(dst, s.Index)
	return binary.BigEndian.AppendUint32(dst, s.SwitchID)
}

func (s *Start) unmarshal(src []byte) error {
	if len(src) < s.WireSize() {
		return fmt.Errorf("truncated")
	}
	copy(s.Client[:], src[0:6])
	s.Index = binary.BigEndian.Uint16(src[6:8])
	s.SwitchID = binary.BigEndian.Uint32(src[8:12])
	return nil
}

// SwitchAck is step (3): the new AP confirms the switch to the controller.
type SwitchAck struct {
	Client   MACAddr
	AP       IPv4Addr // acknowledging AP
	SwitchID uint32
}

// Type implements Message.
func (*SwitchAck) Type() MsgType { return MsgSwitchAck }

// WireSize implements Message.
func (*SwitchAck) WireSize() int { return 6 + 4 + 4 }

func (a *SwitchAck) marshal(dst []byte) []byte {
	dst = append(dst, a.Client[:]...)
	dst = append(dst, a.AP[:]...)
	return binary.BigEndian.AppendUint32(dst, a.SwitchID)
}

func (a *SwitchAck) unmarshal(src []byte) error {
	if len(src) < a.WireSize() {
		return fmt.Errorf("truncated")
	}
	copy(a.Client[:], src[0:6])
	copy(a.AP[:], src[6:10])
	a.SwitchID = binary.BigEndian.Uint32(src[10:14])
	return nil
}

// CSISubcarriers is the per-report subcarrier count on the wire.
const CSISubcarriers = 56

// CSIReport carries one CSI measurement AP→controller. SNRs are quantized
// to 0.25 dB steps in int16, mirroring the compact encoding of the Atheros
// CSI tool's UDP export.
type CSIReport struct {
	Client MACAddr
	AP     IPv4Addr
	At     int64 // sim.Time in ns
	SNRQ   [CSISubcarriers]int16
}

// Type implements Message.
func (*CSIReport) Type() MsgType { return MsgCSI }

// WireSize implements Message.
func (*CSIReport) WireSize() int { return 6 + 4 + 8 + 2*CSISubcarriers }

func (c *CSIReport) marshal(dst []byte) []byte {
	dst = append(dst, c.Client[:]...)
	dst = append(dst, c.AP[:]...)
	dst = binary.BigEndian.AppendUint64(dst, uint64(c.At))
	for _, q := range c.SNRQ {
		dst = binary.BigEndian.AppendUint16(dst, uint16(q))
	}
	return dst
}

func (c *CSIReport) unmarshal(src []byte) error {
	if len(src) < c.WireSize() {
		return fmt.Errorf("truncated")
	}
	copy(c.Client[:], src[0:6])
	copy(c.AP[:], src[6:10])
	c.At = int64(binary.BigEndian.Uint64(src[10:18]))
	for i := range c.SNRQ {
		c.SNRQ[i] = int16(binary.BigEndian.Uint16(src[18+2*i : 20+2*i]))
	}
	return nil
}

// QuantizeSNR packs per-subcarrier dB values into the report's 0.25 dB
// fixed-point representation.
func (c *CSIReport) QuantizeSNR(snrDB []float64) {
	for i := range c.SNRQ {
		v := 0.0
		if i < len(snrDB) {
			v = snrDB[i]
		}
		q := math.Round(v * 4)
		switch {
		case q > 32767:
			q = 32767
		case q < -32768:
			q = -32768
		}
		c.SNRQ[i] = int16(q)
	}
}

// SNRdB unpacks the quantized SNRs back to dB.
func (c *CSIReport) SNRdB() []float64 { return c.SNRdBInto(nil) }

// SNRdBInto unpacks the quantized SNRs into dst, reusing its capacity, and
// returns the filled slice of length CSISubcarriers — the allocation-free
// counterpart of SNRdB for per-report hot paths.
func (c *CSIReport) SNRdBInto(dst []float64) []float64 {
	if cap(dst) < CSISubcarriers {
		dst = make([]float64, CSISubcarriers)
	}
	dst = dst[:CSISubcarriers]
	for i, q := range c.SNRQ {
		dst[i] = float64(q) / 4
	}
	return dst
}

// BlockAckFwd carries an overheard Block ACK from a monitor-mode AP to the
// client's serving AP: client address, starting sequence number, and the
// 64-bit compressed bitmap (§3.2.1).
type BlockAckFwd struct {
	Client MACAddr
	FromAP IPv4Addr
	SSN    uint16 // starting 802.11 sequence number of the bitmap window
	Bitmap uint64
}

// Type implements Message.
func (*BlockAckFwd) Type() MsgType { return MsgBAFwd }

// WireSize implements Message.
func (*BlockAckFwd) WireSize() int { return 6 + 4 + 2 + 8 }

func (b *BlockAckFwd) marshal(dst []byte) []byte {
	dst = append(dst, b.Client[:]...)
	dst = append(dst, b.FromAP[:]...)
	dst = binary.BigEndian.AppendUint16(dst, b.SSN)
	return binary.BigEndian.AppendUint64(dst, b.Bitmap)
}

func (b *BlockAckFwd) unmarshal(src []byte) error {
	if len(src) < b.WireSize() {
		return fmt.Errorf("truncated")
	}
	copy(b.Client[:], src[0:6])
	copy(b.FromAP[:], src[6:10])
	b.SSN = binary.BigEndian.Uint16(src[10:12])
	b.Bitmap = binary.BigEndian.Uint64(src[12:20])
	return nil
}

// AssocSync replicates a client's association state from the AP that
// completed the association to every other AP, mirroring the hostapd
// sta_info → hostapd_sta_add_params hand-off of §4.3.
type AssocSync struct {
	Client     MACAddr
	ClientIP   IPv4Addr
	AID        uint16 // association ID
	Authorized bool
}

// Type implements Message.
func (*AssocSync) Type() MsgType { return MsgAssoc }

// WireSize implements Message.
func (*AssocSync) WireSize() int { return 6 + 4 + 2 + 1 }

func (a *AssocSync) marshal(dst []byte) []byte {
	dst = append(dst, a.Client[:]...)
	dst = append(dst, a.ClientIP[:]...)
	dst = binary.BigEndian.AppendUint16(dst, a.AID)
	if a.Authorized {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func (a *AssocSync) unmarshal(src []byte) error {
	if len(src) < a.WireSize() {
		return fmt.Errorf("truncated")
	}
	copy(a.Client[:], src[0:6])
	copy(a.ClientIP[:], src[6:10])
	a.AID = binary.BigEndian.Uint16(src[10:12])
	a.Authorized = src[12] != 0
	return nil
}

// HealthProbe asks one AP to prove it is alive. The controller normally
// infers liveness from the CSI/uplink stream an AP emits anyway; a probe is
// sent only when that stream has gone quiet, so an in-range crash and an
// AP that merely hears no clients are distinguishable (DESIGN.md §11).
type HealthProbe struct {
	Seq uint32
	At  int64 // controller send time, sim.Time in ns, echoed in the ack
}

// Type implements Message.
func (*HealthProbe) Type() MsgType { return MsgHealthProbe }

// WireSize implements Message.
func (*HealthProbe) WireSize() int { return 4 + 8 }

func (h *HealthProbe) marshal(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, h.Seq)
	return binary.BigEndian.AppendUint64(dst, uint64(h.At))
}

func (h *HealthProbe) unmarshal(src []byte) error {
	if len(src) < h.WireSize() {
		return fmt.Errorf("truncated")
	}
	h.Seq = binary.BigEndian.Uint32(src[0:4])
	h.At = int64(binary.BigEndian.Uint64(src[4:12]))
	return nil
}

// HealthAck answers a HealthProbe. It echoes the probe's sequence number
// and send timestamp, so the controller can both refresh the AP's
// last-heard time and measure the control-plane round trip.
type HealthAck struct {
	AP  IPv4Addr // answering AP's backhaul address
	Seq uint32
	At  int64 // the probe's At, echoed
}

// Type implements Message.
func (*HealthAck) Type() MsgType { return MsgHealthAck }

// WireSize implements Message.
func (*HealthAck) WireSize() int { return 4 + 4 + 8 }

func (h *HealthAck) marshal(dst []byte) []byte {
	dst = append(dst, h.AP[:]...)
	dst = binary.BigEndian.AppendUint32(dst, h.Seq)
	return binary.BigEndian.AppendUint64(dst, uint64(h.At))
}

func (h *HealthAck) unmarshal(src []byte) error {
	if len(src) < h.WireSize() {
		return fmt.Errorf("truncated")
	}
	copy(h.AP[:], src[0:4])
	h.Seq = binary.BigEndian.Uint32(src[4:8])
	h.At = int64(binary.BigEndian.Uint64(src[8:16]))
	return nil
}

// Caps on the variable-length sections of DomainHandoffCommit. They bound
// both the encoded size and what the decoder will allocate for a hostile
// length field; senders clamp to them (the dedup window is a recency FIFO,
// so clamping keeps the newest keys).
const (
	// MaxHandoffDedupKeys bounds the uplink dedup window carried in a commit.
	MaxHandoffDedupKeys = 512
	// MaxHandoffEvidence bounds the per-AP ESNR evidence entries in a commit.
	MaxHandoffEvidence = 32
)

// DomainHandoffOffer is step (1) of the inter-controller handoff protocol
// (DESIGN.md §13): the controller owning a client proposes transferring it
// to the peer whose domain contains the AP the client's ESNR evidence
// points at. Addressing is controller→controller on the backhaul.
type DomainHandoffOffer struct {
	HandoffID uint32 // correlates offer/accept/commit of one handoff
	Client    MACAddr
	ClientIP  IPv4Addr
	ServingAP IPv4Addr // client's current serving AP (owner's domain)
	TargetAP  IPv4Addr // AP in the peer's domain the evidence points at
	EvidenceQ int16    // best foreign windowed-median ESNR, 0.25 dB steps
}

// Type implements Message.
func (*DomainHandoffOffer) Type() MsgType { return MsgDomainHandoffOffer }

// WireSize implements Message.
func (*DomainHandoffOffer) WireSize() int { return 4 + 6 + 4 + 4 + 4 + 2 }

func (o *DomainHandoffOffer) marshal(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, o.HandoffID)
	dst = append(dst, o.Client[:]...)
	dst = append(dst, o.ClientIP[:]...)
	dst = append(dst, o.ServingAP[:]...)
	dst = append(dst, o.TargetAP[:]...)
	return binary.BigEndian.AppendUint16(dst, uint16(o.EvidenceQ))
}

func (o *DomainHandoffOffer) unmarshal(src []byte) error {
	if len(src) < o.WireSize() {
		return fmt.Errorf("truncated")
	}
	o.HandoffID = binary.BigEndian.Uint32(src[0:4])
	copy(o.Client[:], src[4:10])
	copy(o.ClientIP[:], src[10:14])
	copy(o.ServingAP[:], src[14:18])
	copy(o.TargetAP[:], src[18:22])
	o.EvidenceQ = int16(binary.BigEndian.Uint16(src[22:24]))
	return nil
}

// DomainHandoffAccept is step (2): the peer controller either pre-stages the
// adoption and accepts, or rejects (unknown target AP, client already
// pending, controller shutting down).
type DomainHandoffAccept struct {
	HandoffID uint32
	Client    MACAddr
	Accept    bool
}

// Type implements Message.
func (*DomainHandoffAccept) Type() MsgType { return MsgDomainHandoffAccept }

// WireSize implements Message.
func (*DomainHandoffAccept) WireSize() int { return 4 + 6 + 1 }

func (a *DomainHandoffAccept) marshal(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, a.HandoffID)
	dst = append(dst, a.Client[:]...)
	if a.Accept {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func (a *DomainHandoffAccept) unmarshal(src []byte) error {
	if len(src) < a.WireSize() {
		return fmt.Errorf("truncated")
	}
	a.HandoffID = binary.BigEndian.Uint32(src[0:4])
	copy(a.Client[:], src[4:10])
	a.Accept = src[10] != 0
	return nil
}

// APESNR is one ESNR evidence entry in a handoff commit: the owner's
// windowed-median view of one of the new domain's APs, so the adopter can
// seed its selection windows instead of starting cold.
type APESNR struct {
	AP      IPv4Addr
	MedianQ int16 // 0.25 dB steps
}

// DomainHandoffCommit is step (3): the owner captures the client's volatile
// state at the instant it stops serving it — the 12-bit downlink index
// cursor the new owner must continue from, the most recent uplink dedup
// keys (oldest first), and ESNR evidence — and transfers ownership. The
// adopter echoes a slim commit (empty bundle) back to the old owner as a
// delivery acknowledgement and to third domains as an ownership
// announcement; receivers distinguish the roles by whether TargetAP lies in
// their own domain.
type DomainHandoffCommit struct {
	HandoffID uint32
	Client    MACAddr
	ClientIP  IPv4Addr
	ServingAP IPv4Addr // old AP the new owner must stop→start away from
	TargetAP  IPv4Addr
	NextIndex uint16 // 12-bit downlink index the new owner continues from
	DedupKeys []DedupKey
	Evidence  []APESNR
}

// Type implements Message.
func (*DomainHandoffCommit) Type() MsgType { return MsgDomainHandoffCommit }

// WireSize implements Message.
func (c *DomainHandoffCommit) WireSize() int {
	return 4 + 6 + 4 + 4 + 4 + 2 + 2 + 6*len(c.DedupKeys) + 1 + 6*len(c.Evidence)
}

func (c *DomainHandoffCommit) marshal(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, c.HandoffID)
	dst = append(dst, c.Client[:]...)
	dst = append(dst, c.ClientIP[:]...)
	dst = append(dst, c.ServingAP[:]...)
	dst = append(dst, c.TargetAP[:]...)
	dst = binary.BigEndian.AppendUint16(dst, c.NextIndex)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(c.DedupKeys)))
	for _, k := range c.DedupKeys {
		// 48-bit key: (SrcIP, IPID), high byte first.
		dst = append(dst, byte(k>>40), byte(k>>32), byte(k>>24), byte(k>>16), byte(k>>8), byte(k))
	}
	dst = append(dst, byte(len(c.Evidence)))
	for _, e := range c.Evidence {
		dst = append(dst, e.AP[:]...)
		dst = binary.BigEndian.AppendUint16(dst, uint16(e.MedianQ))
	}
	return dst
}

func (c *DomainHandoffCommit) unmarshal(src []byte) error {
	const fixed = 4 + 6 + 4 + 4 + 4 + 2
	if len(src) < fixed+2 {
		return fmt.Errorf("truncated")
	}
	c.HandoffID = binary.BigEndian.Uint32(src[0:4])
	copy(c.Client[:], src[4:10])
	copy(c.ClientIP[:], src[10:14])
	copy(c.ServingAP[:], src[14:18])
	copy(c.TargetAP[:], src[18:22])
	c.NextIndex = binary.BigEndian.Uint16(src[22:24])
	nk := int(binary.BigEndian.Uint16(src[24:26]))
	if nk > MaxHandoffDedupKeys {
		return fmt.Errorf("dedup window too large: %d keys", nk)
	}
	off := fixed + 2
	if len(src) < off+6*nk+1 {
		return fmt.Errorf("truncated dedup window")
	}
	c.DedupKeys = nil
	if nk > 0 {
		c.DedupKeys = make([]DedupKey, nk)
		for i := range c.DedupKeys {
			b := src[off+6*i:]
			c.DedupKeys[i] = DedupKey(uint64(b[0])<<40 | uint64(b[1])<<32 |
				uint64(b[2])<<24 | uint64(b[3])<<16 | uint64(b[4])<<8 | uint64(b[5]))
		}
	}
	off += 6 * nk
	ne := int(src[off])
	if ne > MaxHandoffEvidence {
		return fmt.Errorf("evidence section too large: %d entries", ne)
	}
	off++
	if len(src) < off+6*ne {
		return fmt.Errorf("truncated evidence")
	}
	c.Evidence = nil
	if ne > 0 {
		c.Evidence = make([]APESNR, ne)
		for i := range c.Evidence {
			b := src[off+6*i:]
			copy(c.Evidence[i].AP[:], b[0:4])
			c.Evidence[i].MedianQ = int16(binary.BigEndian.Uint16(b[4:6]))
		}
	}
	return nil
}
