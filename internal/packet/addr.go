// Package packet defines the data unit that flows through the WGTT system
// and the wire formats of everything the paper sends over the Ethernet
// backhaul: tunneled downlink/uplink data (§3.1.3, §3.2.2), the
// stop/start/ack switching protocol (§3.1.2), CSI reports (§3.1.1),
// forwarded Block ACKs (§3.2.1), and association-sync records (§4.3).
package packet

import (
	"fmt"
)

// MACAddr is a 48-bit layer-2 address.
type MACAddr [6]byte

// String renders the address in colon-hex form.
func (m MACAddr) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IsZero reports whether the address is all-zero (unset).
func (m MACAddr) IsZero() bool { return m == MACAddr{} }

// IPv4Addr is a 32-bit layer-3 address.
type IPv4Addr [4]byte

// String renders the address in dotted-quad form.
func (a IPv4Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// IsZero reports whether the address is all-zero (unset).
func (a IPv4Addr) IsZero() bool { return a == IPv4Addr{} }

// ClientMAC derives a deterministic client MAC from a small integer id,
// using a locally-administered OUI.
func ClientMAC(id int) MACAddr {
	return MACAddr{0x02, 0xc1, 0x1e, byte(id >> 16), byte(id >> 8), byte(id)}
}

// APMAC derives a deterministic AP MAC from a small integer id.
func APMAC(id int) MACAddr {
	return MACAddr{0x02, 0xa9, 0x00, byte(id >> 16), byte(id >> 8), byte(id)}
}

// APIP derives the backhaul IP of AP id: 10.0.0.(id+10).
func APIP(id int) IPv4Addr { return IPv4Addr{10, 0, 0, byte(id + 10)} }

// ControllerIP is the backhaul address of the WGTT controller.
var ControllerIP = IPv4Addr{10, 0, 0, 1}

// DomainControllerIP derives the backhaul address of the controller owning
// federation domain d: 10.0.d.1. Domain 0 maps to ControllerIP, so a
// single-domain deployment is addressed identically to the unfederated
// system; APs live in 10.0.0.10+, so domain controllers d ≥ 1 never collide
// with them.
func DomainControllerIP(d int) IPv4Addr {
	if d == 0 {
		return ControllerIP
	}
	return IPv4Addr{10, 0, byte(d), 1}
}

// ClientIP derives the WLAN IP of client id: 192.168.1.(id+100).
func ClientIP(id int) IPv4Addr { return IPv4Addr{192, 168, 1, byte(id + 100)} }
