package packet

import (
	"math/rand/v2"
	"reflect"
	"strings"
	"testing"

	"wgtt/internal/sim"
)

// exemplars returns one fully-populated message per MsgType, keyed by type.
// The exhaustiveness guard in TestCodecCoversEveryMsgType fails the build of
// this table the moment a new MsgType is added without an entry here.
func exemplars() map[MsgType]Message {
	rnd := rand.New(rand.NewPCG(7, 11))
	csi := &CSIReport{Client: ClientMAC(9), AP: APIP(3), At: 424242}
	snr := make([]float64, CSISubcarriers)
	for i := range snr {
		snr[i] = float64(i%40) - 8.25
	}
	csi.QuantizeSNR(snr)
	return map[MsgType]Message{
		MsgDownData: &DownData{APDst: APIP(1), Pkt: randomPacket(rnd)},
		MsgUpData:   &UpData{APSrc: APIP(2), Pkt: randomPacket(rnd)},
		MsgStop:     &Stop{Client: ClientMAC(4), NextAP: APIP(6), SwitchID: 1 << 30},
		MsgStart:    &Start{Client: ClientMAC(4), Index: IndexMask, SwitchID: 1},
		MsgSwitchAck: &SwitchAck{
			Client: ClientMAC(4), AP: APIP(6), SwitchID: 0xffffffff,
		},
		MsgCSI:         csi,
		MsgBAFwd:       &BlockAckFwd{Client: ClientMAC(5), FromAP: APIP(0), SSN: 4095, Bitmap: ^uint64(0)},
		MsgAssoc:       &AssocSync{Client: ClientMAC(6), ClientIP: ClientIP(6), AID: 2007, Authorized: true},
		MsgHealthProbe: &HealthProbe{Seq: 0xdeadbeef, At: -1},
		MsgHealthAck:   &HealthAck{AP: APIP(7), Seq: 0xdeadbeef, At: 1 << 60},
		MsgDomainHandoffOffer: &DomainHandoffOffer{
			HandoffID: 1<<24 | 7, Client: ClientMAC(4), ClientIP: ClientIP(4),
			ServingAP: APIP(3), TargetAP: APIP(4), EvidenceQ: -33,
		},
		MsgDomainHandoffAccept: &DomainHandoffAccept{
			HandoffID: 1<<24 | 7, Client: ClientMAC(4), Accept: true,
		},
		MsgDomainHandoffCommit: &DomainHandoffCommit{
			HandoffID: 1<<24 | 7, Client: ClientMAC(4), ClientIP: ClientIP(4),
			ServingAP: APIP(3), TargetAP: APIP(4), NextIndex: IndexMask,
			DedupKeys: []DedupKey{0, 1, KeyOf(randomPacket(rnd)), 1<<48 - 1},
			Evidence:  []APESNR{{AP: APIP(4), MedianQ: 97}, {AP: APIP(5), MedianQ: -12}},
		},
	}
}

// TestCodecCoversEveryMsgType is the exhaustive Encode/Decode round-trip:
// every declared MsgType (including the late-added health pair) must have an
// exemplar, encode to exactly 3+WireSize bytes, and decode back to a deep
// equal value. The guard also pins the type-space end, so adding an eleventh
// message type without extending this test fails loudly.
func TestCodecCoversEveryMsgType(t *testing.T) {
	ex := exemplars()
	for tt := MsgDownData; tt <= MsgDomainHandoffCommit; tt++ {
		m, ok := ex[tt]
		if !ok {
			t.Fatalf("no exemplar for MsgType %d (%v) — extend exemplars()", tt, tt)
		}
		if m.Type() != tt {
			t.Fatalf("exemplar filed under %v reports Type %v", tt, m.Type())
		}
		raw := Encode(m)
		if len(raw) != 3+m.WireSize() {
			t.Errorf("%v: len(Encode) = %d, want 3+WireSize = %d", tt, len(raw), 3+m.WireSize())
		}
		got, err := Decode(raw)
		if err != nil {
			t.Errorf("%v: decode: %v", tt, err)
			continue
		}
		if !reflect.DeepEqual(m, got) {
			t.Errorf("%v: round trip mismatch:\n got %+v\nwant %+v", tt, got, m)
		}
	}
	// The guard's other half: the loop above spans the whole declared type
	// space. A type added after MsgHealthAck would make this String() hit a
	// real case and fail here, pointing at the loop bound.
	if s := (MsgDomainHandoffCommit + 1).String(); !strings.HasPrefix(s, "msg?") {
		t.Fatalf("MsgType %d has a name (%q) but is outside the exhaustive loop — update TestCodecCoversEveryMsgType", MsgDomainHandoffCommit+1, s)
	}
}

// Every message's envelope length field must equal its payload length, so a
// receiver can frame messages out of a byte stream using WireSize alone.
func TestEnvelopeLengthMatchesWireSize(t *testing.T) {
	for tt, m := range exemplars() {
		raw := Encode(m)
		n := int(raw[1])<<8 | int(raw[2])
		if n != m.WireSize() || n != len(raw)-3 {
			t.Errorf("%v: envelope length %d, WireSize %d, payload %d", tt, n, m.WireSize(), len(raw)-3)
		}
	}
}

// FuzzDecode throws arbitrary bytes at the decoder: it must return a value
// or an error, never panic, and anything it accepts must re-encode and
// re-decode to the same value (round-trip stability on the accepted set).
func FuzzDecode(f *testing.F) {
	for _, m := range exemplars() {
		f.Add(Encode(m))
	}
	// Adversarial seeds: truncations, length-field lies, unknown types.
	f.Add([]byte{})
	f.Add([]byte{byte(MsgStop)})
	f.Add([]byte{byte(MsgStop), 0xff, 0xff})
	f.Add([]byte{byte(MsgCSI), 0x00, 0x01, 0x42})
	f.Add([]byte{0x00, 0x00, 0x00})
	f.Add([]byte{0xff, 0x00, 0x04, 1, 2, 3, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		raw := Encode(m)
		if len(raw) != 3+m.WireSize() {
			t.Fatalf("accepted message re-encodes to %d bytes, want %d", len(raw), 3+m.WireSize())
		}
		again, err := Decode(raw)
		if err != nil {
			t.Fatalf("re-decode of accepted message failed: %v", err)
		}
		if !reflect.DeepEqual(m, again) {
			t.Fatalf("accepted message unstable:\nfirst  %+v\nsecond %+v", m, again)
		}
	})
}

// Anchor the sim import used by randomPacket's Created field.
var _ = sim.Nanosecond
