package packet

import (
	"math/rand/v2"
	"reflect"
	"testing"
	"testing/quick"

	"wgtt/internal/sim"
)

func TestAddrStrings(t *testing.T) {
	m := MACAddr{0x02, 0xc1, 0x1e, 0, 0, 0x07}
	if m.String() != "02:c1:1e:00:00:07" {
		t.Errorf("MAC string = %q", m.String())
	}
	ip := IPv4Addr{10, 0, 0, 12}
	if ip.String() != "10.0.0.12" {
		t.Errorf("IP string = %q", ip.String())
	}
	if (MACAddr{}).IsZero() != true || m.IsZero() {
		t.Error("MAC IsZero wrong")
	}
	if (IPv4Addr{}).IsZero() != true || ip.IsZero() {
		t.Error("IP IsZero wrong")
	}
}

func TestDerivedAddrs(t *testing.T) {
	if ClientMAC(1) == ClientMAC(2) {
		t.Error("client MACs collide")
	}
	if APMAC(1) == ClientMAC(1) {
		t.Error("AP and client MAC spaces overlap")
	}
	if APIP(0) != (IPv4Addr{10, 0, 0, 10}) {
		t.Errorf("APIP(0) = %v", APIP(0))
	}
	if ClientIP(0) != (IPv4Addr{192, 168, 1, 100}) {
		t.Errorf("ClientIP(0) = %v", ClientIP(0))
	}
}

func TestIndexArithmetic(t *testing.T) {
	if IndexDist(10, 15) != 5 {
		t.Error("forward distance wrong")
	}
	if IndexDist(4090, 3) != 9 { // wraps through 4095→0
		t.Errorf("wrapped distance = %d", IndexDist(4090, 3))
	}
	if NextIndex(4095) != 0 {
		t.Error("NextIndex does not wrap")
	}
	if NextIndex(7) != 8 {
		t.Error("NextIndex wrong")
	}
	// Property: dist(a, next(a)) == 1 for all 12-bit a.
	f := func(a uint16) bool {
		a &= IndexMask
		return IndexDist(a, NextIndex(a)) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDedupKey(t *testing.T) {
	p1 := &Packet{SrcIP: IPv4Addr{192, 168, 1, 100}, IPID: 7}
	p2 := &Packet{SrcIP: IPv4Addr{192, 168, 1, 100}, IPID: 7}
	p3 := &Packet{SrcIP: IPv4Addr{192, 168, 1, 100}, IPID: 8}
	p4 := &Packet{SrcIP: IPv4Addr{192, 168, 1, 101}, IPID: 7}
	if KeyOf(p1) != KeyOf(p2) {
		t.Error("identical packets produced different keys")
	}
	if KeyOf(p1) == KeyOf(p3) || KeyOf(p1) == KeyOf(p4) {
		t.Error("distinct packets collided")
	}
	// 48-bit: top 16 bits must be clear.
	if KeyOf(p1)>>48 != 0 {
		t.Error("key wider than 48 bits")
	}
}

func TestPacketString(t *testing.T) {
	p := &Packet{FlowID: 1, Seq: 2, Bytes: 1500, Index: 9}
	if p.String() != "pkt{flow=1 seq=2 down 1500B idx=9}" {
		t.Errorf("String = %q", p.String())
	}
	p.Uplink = true
	if p.String() != "pkt{flow=1 seq=2 up 1500B idx=9}" {
		t.Errorf("String = %q", p.String())
	}
}

func randomPacket(rnd *rand.Rand) *Packet {
	return &Packet{
		FlowID:    rnd.Uint32(),
		Seq:       rnd.Uint32(),
		IPID:      uint16(rnd.Uint32()),
		SrcIP:     IPv4Addr{byte(rnd.Uint32()), byte(rnd.Uint32()), byte(rnd.Uint32()), byte(rnd.Uint32())},
		DstIP:     IPv4Addr{byte(rnd.Uint32()), byte(rnd.Uint32()), byte(rnd.Uint32()), byte(rnd.Uint32())},
		ClientMAC: ClientMAC(int(rnd.Uint32() % 100)),
		Bytes:     int(rnd.Uint32() % 9000),
		Index:     uint16(rnd.Uint32()) & IndexMask,
		Uplink:    rnd.Uint32()%2 == 0,
		Created:   sim.Time(rnd.Uint64() % (1 << 40)),
		Kind:      Kind(rnd.Uint32() % 2),
	}
}

func TestWireRoundTrips(t *testing.T) {
	rnd := rand.New(rand.NewPCG(1, 2))
	msgs := []Message{
		&DownData{APDst: APIP(3), Pkt: randomPacket(rnd)},
		&UpData{APSrc: APIP(5), Pkt: randomPacket(rnd)},
		&Stop{Client: ClientMAC(1), NextAP: APIP(2), SwitchID: 99},
		&Start{Client: ClientMAC(1), Index: 4095, SwitchID: 99},
		&SwitchAck{Client: ClientMAC(1), AP: APIP(2), SwitchID: 99},
		&BlockAckFwd{Client: ClientMAC(2), FromAP: APIP(7), SSN: 1000, Bitmap: 0xdeadbeefcafef00d},
		&AssocSync{Client: ClientMAC(3), ClientIP: ClientIP(3), AID: 17, Authorized: true},
		&HealthProbe{Seq: 41, At: 987654321},
		&HealthAck{AP: APIP(6), Seq: 41, At: 987654321},
	}
	for _, m := range msgs {
		raw := Encode(m)
		if len(raw) != 3+m.WireSize() {
			t.Errorf("%v: encoded %d bytes, WireSize says %d", m.Type(), len(raw)-3, m.WireSize())
		}
		got, err := Decode(raw)
		if err != nil {
			t.Errorf("%v: decode: %v", m.Type(), err)
			continue
		}
		if !reflect.DeepEqual(m, got) {
			t.Errorf("%v: round trip mismatch:\n got %+v\nwant %+v", m.Type(), got, m)
		}
	}
}

func TestCSIReportRoundTrip(t *testing.T) {
	c := &CSIReport{Client: ClientMAC(1), AP: APIP(4), At: 123456789}
	snr := make([]float64, CSISubcarriers)
	for i := range snr {
		snr[i] = float64(i)/4 - 3 // exact quarter-dB values
	}
	c.QuantizeSNR(snr)
	raw := Encode(c)
	got, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	back := got.(*CSIReport).SNRdB()
	for i := range snr {
		if back[i] != snr[i] {
			t.Fatalf("subcarrier %d: %v != %v", i, back[i], snr[i])
		}
	}
}

func TestCSIQuantizationClamp(t *testing.T) {
	c := &CSIReport{}
	c.QuantizeSNR([]float64{1e9, -1e9})
	if c.SNRQ[0] != 32767 || c.SNRQ[1] != -32768 {
		t.Errorf("clamping failed: %d, %d", c.SNRQ[0], c.SNRQ[1])
	}
	// Short input zero-fills the remainder.
	if c.SNRQ[2] != 0 {
		t.Error("short input not zero-filled")
	}
}

func TestCSIQuantizationError(t *testing.T) {
	// Quantization error must be below 0.125 dB for in-range values.
	c := &CSIReport{}
	in := []float64{3.14159, -7.6, 22.91, 0.01}
	full := make([]float64, CSISubcarriers)
	copy(full, in)
	c.QuantizeSNR(full)
	out := c.SNRdB()
	for i := range in {
		if d := out[i] - in[i]; d > 0.125 || d < -0.125 {
			t.Errorf("quantization error %v at %d", d, i)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Error("nil input accepted")
	}
	if _, err := Decode([]byte{byte(MsgStop), 0, 14}); err == nil {
		t.Error("truncated payload accepted")
	}
	if _, err := Decode([]byte{0xEE, 0, 0}); err == nil {
		t.Error("unknown type accepted")
	}
	// Envelope claims fewer bytes than the message needs.
	raw := Encode(&Stop{})
	raw[2] = 3 // lie about the length
	if _, err := Decode(raw); err == nil {
		t.Error("short-claimed payload accepted")
	}
}

func TestMsgTypeString(t *testing.T) {
	names := map[MsgType]string{
		MsgDownData: "down-data", MsgUpData: "up-data", MsgStop: "stop",
		MsgStart: "start", MsgSwitchAck: "switch-ack", MsgCSI: "csi",
		MsgBAFwd: "ba-fwd", MsgAssoc: "assoc", MsgType(0): "msg?0",
		MsgHealthProbe: "health-probe", MsgHealthAck: "health-ack",
	}
	for ty, want := range names {
		if got := ty.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", uint8(ty), got, want)
		}
	}
}

// Property: any DownData with a random packet round-trips.
func TestDownDataRoundTripProperty(t *testing.T) {
	rnd := rand.New(rand.NewPCG(3, 4))
	for i := 0; i < 200; i++ {
		m := &DownData{APDst: APIP(i % 8), Pkt: randomPacket(rnd)}
		got, err := Decode(Encode(m))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

// Decode must never panic, whatever bytes arrive.
func TestDecodeRandomBytesNoPanic(t *testing.T) {
	rnd := rand.New(rand.NewPCG(9, 9))
	for i := 0; i < 5000; i++ {
		n := int(rnd.Uint32() % 64)
		buf := make([]byte, n)
		for j := range buf {
			buf[j] = byte(rnd.Uint32())
		}
		_, _ = Decode(buf) // errors are fine; panics are not
	}
}

// Truncating a valid encoding at every length must error, not panic.
func TestDecodeTruncations(t *testing.T) {
	rnd := rand.New(rand.NewPCG(5, 6))
	full := Encode(&DownData{APDst: APIP(1), Pkt: randomPacket(rnd)})
	for n := 0; n < len(full); n++ {
		if _, err := Decode(full[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", n)
		}
	}
	if _, err := Decode(full); err != nil {
		t.Fatalf("full message failed: %v", err)
	}
}
