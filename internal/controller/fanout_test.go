package controller

import (
	"math/rand/v2"
	"testing"

	"wgtt/internal/backhaul"
	"wgtt/internal/packet"
	wrt "wgtt/internal/runtime"
	"wgtt/internal/sim"
)

// refFanTargets is the fan-out rule SendDownlink computed before the
// incremental relevance set existed: a full scan of heardEver/lastHeard/
// apAlive per packet. The randomized test below holds the incremental set
// to this reference.
func refFanTargets(c *Controller, cl *clientCtl, now sim.Time) []packet.IPv4Addr {
	anyHeard := false
	for _, h := range cl.heardEver {
		if h {
			anyHeard = true
			break
		}
	}
	var out []packet.IPv4Addr
	for _, a := range c.aps {
		include := a.ID == cl.serving ||
			(cl.heardEver[a.ID] && now-cl.lastHeard[a.ID] <= c.cfg.FanoutWindow)
		if !anyHeard {
			include = true
		}
		if !c.apAlive(a.ID) {
			include = false
		}
		if !include {
			continue
		}
		out = append(out, a.IP)
	}
	return out
}

func sameTargets(a, b []packet.IPv4Addr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Randomized CSI / death / recovery / handoff sequences: after every
// operation the incrementally maintained relevance set must emit exactly
// the targets (same members, same order) the old per-packet scan would
// have.
func TestFanoutEquivalenceRandomized(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 4, 5} {
		rnd := rand.New(rand.NewPCG(seed, 99))
		const nAPs = 9
		h := newCtlHarness(t, nAPs, DefaultConfig().WithHealth())
		client := packet.ClientMAC(1)
		h.ctl.RegisterClient(client, packet.ClientIP(1), 0)
		cl := h.ctl.clients[client]

		check := func(step int) {
			now := h.eng.Now()
			want := refFanTargets(h.ctl, cl, now)
			got := h.ctl.fanTargets(cl, now)
			if !sameTargets(got, want) {
				t.Fatalf("seed %d step %d: fanTargets = %v, reference scan = %v",
					seed, step, got, want)
			}
		}

		for step := 0; step < 2000; step++ {
			switch op := rnd.IntN(100); {
			case op < 55: // CSI heard from a random AP
				ap := rnd.IntN(nAPs)
				h.ctl.sel.Observe(client, ap, 10, h.eng.Now())
				cl.fanHeard(ap, h.eng.Now())
			case op < 75: // time passes (can expire fan-out members)
				h.eng.RunUntil(h.eng.Now() + sim.Time(rnd.IntN(60))*sim.Millisecond)
			case op < 85: // AP dies or is re-admitted
				ap := rnd.IntN(nAPs)
				h.ctl.health[ap].alive = rnd.IntN(2) == 0
			case op < 93: // the serving AP moves (switch / forced failover)
				cl.serving = rnd.IntN(nAPs)
			case op < 97: // federation hands evidence in (adoption seeding)
				h.ctl.SeedESNR(client, rnd.IntN(nAPs), 12)
			default: // controller crash + restart: all soft state cold
				h.ctl.Fail()
				h.ctl.Recover()
			}
			check(step)
		}
	}
}

// The steady-state fan-out path — relevance set sweep, target emission,
// and the fabric hand-off — must not allocate.
func TestFanoutZeroAlloc(t *testing.T) {
	eng := sim.NewEngine()
	fab := &countingFanFabric{}
	infos := make([]APInfo, 32)
	for i := range infos {
		infos[i] = APInfo{ID: i, IP: packet.APIP(i), MAC: packet.APMAC(i)}
	}
	ctl := New(DefaultConfig(), wrt.Virtual(eng), fab, infos)
	client := packet.ClientMAC(1)
	ctl.RegisterClient(client, packet.ClientIP(1), 0)
	cl := ctl.clients[client]
	for ap := 0; ap < 32; ap++ {
		cl.fanHeard(ap, eng.Now())
	}
	p := &packet.Packet{ClientMAC: client, Bytes: 1200}
	// Warm the scratch buffers, then pin.
	for i := 0; i < 4; i++ {
		_ = ctl.SendDownlink(p)
	}
	allocs := testing.AllocsPerRun(100, func() {
		_ = ctl.SendDownlink(p)
	})
	if allocs != 0 {
		t.Fatalf("SendDownlink steady state allocates %.1f/op, want 0", allocs)
	}
	if fab.packets == 0 || fab.copies != fab.packets*32 {
		t.Fatalf("fan-out fabric saw %d packets / %d copies", fab.packets, fab.copies)
	}
}

// countingFanFabric is a null ManySender: it counts what the controller
// hands it and delivers nothing.
type countingFanFabric struct {
	packets int
	copies  int
}

func (f *countingFanFabric) Attach(packet.IPv4Addr, backhaul.Node) {}
func (f *countingFanFabric) Send(_, _ packet.IPv4Addr, _ packet.Message) error {
	f.packets++
	f.copies++
	return nil
}
func (f *countingFanFabric) Broadcast(packet.IPv4Addr, packet.Message) {}
func (f *countingFanFabric) SendMany(_ packet.IPv4Addr, tos []packet.IPv4Addr, _ packet.Message) {
	f.packets++
	f.copies += len(tos)
}

// Targets come out in ascending AP order with the serving AP merged at its
// sorted position, exactly where the old c.aps scan emitted it — delivery
// order is part of the determinism contract.
func TestFanoutServingMergedInOrder(t *testing.T) {
	h := newCtlHarness(t, 6, DefaultConfig())
	client := packet.ClientMAC(1)
	h.ctl.RegisterClient(client, packet.ClientIP(1), 3)
	cl := h.ctl.clients[client]
	for _, ap := range []int{5, 1, 4} {
		cl.fanHeard(ap, h.eng.Now())
	}
	want := []packet.IPv4Addr{packet.APIP(1), packet.APIP(3), packet.APIP(4), packet.APIP(5)}
	if got := h.ctl.fanTargets(cl, h.eng.Now()); !sameTargets(got, want) {
		t.Fatalf("targets = %v, want %v", got, want)
	}

	// The serving AP stays a target after its recency expires…
	h.eng.RunUntil(h.eng.Now() + h.ctl.cfg.FanoutWindow + sim.Millisecond)
	cl.fanHeard(1, h.eng.Now())
	want = []packet.IPv4Addr{packet.APIP(1), packet.APIP(3)}
	if got := h.ctl.fanTargets(cl, h.eng.Now()); !sameTargets(got, want) {
		t.Fatalf("after expiry: targets = %v, want %v", got, want)
	}
	// …and the expired members were compacted out of the set.
	if len(cl.fanSet) != 1 || cl.fanSet[0] != 1 {
		t.Fatalf("fanSet after expiry = %v, want [1]", cl.fanSet)
	}
}

// An adopted client's relevance set is rebuilt from the handoff evidence:
// every seeded AP fans out immediately, without waiting for fresh CSI.
func TestAdoptionCarriesFanoutSet(t *testing.T) {
	h := newCtlHarness(t, 5, DefaultConfig())
	client := packet.ClientMAC(7)
	h.ctl.AdoptClient(client, packet.ClientIP(7), 2, 100, nil)
	h.ctl.SeedESNR(client, 0, 15)
	h.ctl.SeedESNR(client, 4, 12)
	cl := h.ctl.clients[client]
	want := []packet.IPv4Addr{packet.APIP(0), packet.APIP(2), packet.APIP(4)}
	if got := h.ctl.fanTargets(cl, h.eng.Now()); !sameTargets(got, want) {
		t.Fatalf("adopted targets = %v, want %v", got, want)
	}
}

// Recover drops the relevance set with the rest of the soft state: the
// restarted controller fans out broadly until CSI re-populates it.
func TestRecoverResetsFanout(t *testing.T) {
	h := newCtlHarness(t, 4, DefaultConfig())
	client := packet.ClientMAC(1)
	h.ctl.RegisterClient(client, packet.ClientIP(1), 0)
	cl := h.ctl.clients[client]
	cl.fanHeard(2, h.eng.Now())
	h.ctl.Fail()
	h.ctl.Recover()
	if cl.heardCount != 0 || len(cl.fanSet) != 0 {
		t.Fatalf("fan state survived Recover: heardCount=%d fanSet=%v", cl.heardCount, cl.fanSet)
	}
	want := []packet.IPv4Addr{packet.APIP(0), packet.APIP(1), packet.APIP(2), packet.APIP(3)}
	if got := h.ctl.fanTargets(cl, h.eng.Now()); !sameTargets(got, want) {
		t.Fatalf("post-recover bootstrap targets = %v, want %v", got, want)
	}
}
