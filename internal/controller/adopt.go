package controller

import (
	"wgtt/internal/packet"
)

// This file is the controller's federation surface (DESIGN.md §13): the
// hooks a federation domain uses to move a client between controller
// instances with its volatile state intact. The controller itself stays
// unaware of the handoff protocol — it only knows how to export a client's
// state bundle, install one, and hold its selection rule off a client while
// someone else drives the switch.

// AdoptClient installs a client handed over from a peer controller. Unlike
// RegisterClient it resumes the peer's 12-bit downlink index cursor and
// uplink de-duplication window instead of starting cold — downlink indices
// stay continuous across the domain boundary, and packets heard by both
// domains around the handoff are still suppressed exactly once. The client
// enters frozen (selection held off) until SetFrozen lifts it; the adopting
// domain unfreezes when its cross-domain stop→start→ack completes.
// Adoption also starts a hysteresis dwell, so the new domain does not
// immediately bounce the client back. A client already present is left
// untouched (duplicate commit).
func (c *Controller) AdoptClient(mac packet.MACAddr, ip packet.IPv4Addr, servingAP int,
	nextIndex uint16, dedup []packet.DedupKey) {
	if _, ok := c.clients[mac]; ok {
		return
	}
	c.RegisterClient(mac, ip, servingAP)
	cl := c.clients[mac]
	cl.nextIndex = nextIndex & packet.IndexMask
	for _, k := range dedup {
		if _, dup := cl.dedup[k]; dup {
			continue
		}
		cl.dedup[k] = struct{}{}
		cl.dedupFIFO = append(cl.dedupFIFO, k)
		c.dedupEntries++
	}
	c.met.dedupSize.Set(float64(c.dedupEntries))
	cl.frozen = true
	cl.lastSwitch = c.clk.Now()
}

// ReleaseClient removes a client handed off to a peer controller, dropping
// its soft state and cancelling any in-flight switch. Reports whether the
// client was present.
func (c *Controller) ReleaseClient(mac packet.MACAddr) bool {
	cl := c.clients[mac]
	if cl == nil {
		return false
	}
	if cl.op != nil {
		cl.op.timer.Stop()
		cl.op = nil
	}
	c.dedupEntries -= len(cl.dedup)
	c.met.dedupSize.Set(float64(c.dedupEntries))
	c.sel.RemoveClient(mac)
	delete(c.clients, mac)
	for i, m := range c.clientOrder {
		if m == mac {
			c.clientOrder = append(c.clientOrder[:i], c.clientOrder[i+1:]...)
			break
		}
	}
	return true
}

// SetFrozen holds the selection rule off a client (true) or lifts the hold
// (false). While frozen the controller still ingests CSI, serves downlink,
// and de-duplicates uplink — it just never initiates a switch.
func (c *Controller) SetFrozen(mac packet.MACAddr, frozen bool) {
	if cl := c.clients[mac]; cl != nil {
		cl.frozen = frozen
	}
}

// InFlightSwitch reports whether the client has a §3.1.2 handshake
// outstanding. A federation domain defers offering a client away while one
// is: handing off mid-switch would strand the stop/start pair.
func (c *Controller) InFlightSwitch(mac packet.MACAddr) bool {
	cl := c.clients[mac]
	return cl != nil && cl.op != nil
}

// NextDownIndex returns the client's next downlink index — the cursor a
// handoff commit carries so the adopter continues the sequence.
func (c *Controller) NextDownIndex(mac packet.MACAddr) uint16 {
	if cl := c.clients[mac]; cl != nil {
		return cl.nextIndex
	}
	return 0
}

// DedupWindow returns up to max of the client's most recent uplink dedup
// keys, oldest first — the bounded window a handoff commit carries.
func (c *Controller) DedupWindow(mac packet.MACAddr, max int) []packet.DedupKey {
	cl := c.clients[mac]
	if cl == nil || max <= 0 {
		return nil
	}
	fifo := cl.dedupFIFO
	if len(fifo) > max {
		fifo = fifo[len(fifo)-max:]
	}
	out := make([]packet.DedupKey, len(fifo))
	copy(out, fifo)
	return out
}

// SeedESNR pushes one synthetic reading into the selector's (client, AP)
// window — how an adopter installs the old owner's ESNR evidence so
// selection does not start blind. Every policy shares the median-window
// evidence store, so seeding warms whichever policy the adopting domain
// runs (DESIGN.md §15). Seeding also enters the AP into the client's
// downlink fan-out relevance set (fanout.go): the carried evidence is
// exactly the recency knowledge the old owner's fan-out ran on, so the
// adopted client's downlink replicates to the same APs without waiting
// for fresh CSI.
func (c *Controller) SeedESNR(mac packet.MACAddr, apID int, esnrDB float64) {
	cl := c.clients[mac]
	if cl == nil || apID < 0 || apID >= len(c.aps) {
		return
	}
	now := c.clk.Now()
	c.sel.Observe(mac, apID, esnrDB, now)
	cl.fanHeard(apID, now)
}
