package controller

import (
	"testing"

	"wgtt/internal/metrics"
	"wgtt/internal/packet"
	"wgtt/internal/sim"
)

// TestMetricsIngestZeroAllocEnabled pins DESIGN.md §10's overhead guarantee
// from the enabled side: the controller's CSI ingest (handleCSI → window
// push → median argmax) stays allocation-free at steady state even with a
// live registry recording every report. The disabled side is covered by the
// PR 2 invariants (window_test.go) plus internal/metrics' nil-handle tests.
func TestMetricsIngestZeroAllocEnabled(t *testing.T) {
	h := newCtlHarness(t, 3, DefaultConfig())
	r := metrics.NewRegistry()
	h.ctl.UseMetrics(r)
	client := packet.ClientMAC(1)
	h.ctl.RegisterClient(client, packet.ClientIP(1), 0)

	// One reusable report into the serving AP's window: the argmax never
	// moves, so the steady state exercises ingest + instruments without the
	// (allocating, control-plane-rate) switch initiation.
	rep := csiReport(client, 0, 0, 20)
	at := sim.Time(0)
	step := 100 * sim.Microsecond
	feed := func() {
		at += step
		h.eng.RunUntil(at)
		rep.At = int64(at)
		h.ctl.handleCSI(rep)
	}
	for i := 0; i < 2048; i++ { // warm window and instrument maps
		feed()
	}
	if avg := testing.AllocsPerRun(500, feed); avg != 0 {
		t.Errorf("enabled-metrics CSI ingest allocates %.2f times per report, want 0", avg)
	}

	// The instruments must actually have recorded.
	snap := r.Snapshot()
	var reports uint64
	for _, c := range snap.Counters {
		if c.Component == "controller" && c.Name == "csi_reports" {
			reports = c.Value
		}
	}
	if reports != h.ctl.Stats.CSIReports || reports == 0 {
		t.Errorf("csi_reports counter = %d, controller Stats = %d", reports, h.ctl.Stats.CSIReports)
	}
}

// TestMetricsSwitchCountersMatchStats cross-checks the new instruments
// against the pre-existing Stats block and History on a scripted switch.
func TestMetricsSwitchCountersMatchStats(t *testing.T) {
	h := newCtlHarness(t, 3, DefaultConfig())
	r := metrics.NewRegistry()
	h.ctl.UseMetrics(r)
	client := packet.ClientMAC(1)
	h.ctl.RegisterClient(client, packet.ClientIP(1), 0)

	for i := 0; i < 60; i++ {
		h.feedCSI(client, 0, 8)
		h.feedCSI(client, 2, 20)
		h.eng.RunUntil(h.eng.Now() + 2*sim.Millisecond)
	}
	h.eng.RunUntil(h.eng.Now() + 100*sim.Millisecond)

	snap := r.Snapshot()
	counter := func(name string) uint64 {
		for _, c := range snap.Counters {
			if c.Component == "controller" && c.Name == name {
				return c.Value
			}
		}
		return 0
	}
	if got := counter("switches_done"); got != h.ctl.Stats.SwitchesDone {
		t.Errorf("switches_done = %d, Stats = %d", got, h.ctl.Stats.SwitchesDone)
	}
	if got := counter("switches_started"); got != h.ctl.Stats.SwitchesStarted {
		t.Errorf("switches_started = %d, Stats = %d", got, h.ctl.Stats.SwitchesStarted)
	}
	if done := counter("switches_done"); done != uint64(len(h.ctl.History)) {
		t.Errorf("switches_done = %d, history has %d records", done, len(h.ctl.History))
	}
	sum := snap.SwitchSummary()
	if sum.Completed != int(h.ctl.Stats.SwitchesDone) {
		t.Errorf("completed spans = %d, Stats.SwitchesDone = %d", sum.Completed, h.ctl.Stats.SwitchesDone)
	}
	if sum.Completed > 0 && sum.MedianNS <= 0 {
		t.Errorf("completed spans but median duration %d ns", sum.MedianNS)
	}
}
