// Package controller implements the WGTT controller (§3): per-(client, AP)
// sliding windows of ESNR readings computed from forwarded CSI, the
// maximal-median AP selection rule, the stop/start/ack switching state
// machine with its 30 ms retransmission timeout and single-outstanding-
// switch constraint, downlink fan-out into every nearby AP's cyclic queue,
// and uplink de-duplication keyed by (source IP, IP ID).
package controller

import (
	"sort"

	"wgtt/internal/sim"
)

// esnrWindow is a time-bounded deque of ESNR readings for one client-AP
// link: the short-term history E(a) of §3.1.1.
type esnrWindow struct {
	at   []sim.Time
	val  []float64
	span sim.Time
}

func newWindow(span sim.Time) *esnrWindow { return &esnrWindow{span: span} }

// push appends a reading and evicts everything older than the span.
func (w *esnrWindow) push(at sim.Time, esnr float64) {
	w.at = append(w.at, at)
	w.val = append(w.val, esnr)
	w.evict(at)
}

func (w *esnrWindow) evict(now sim.Time) {
	cut := 0
	for cut < len(w.at) && w.at[cut] < now-w.span {
		cut++
	}
	if cut > 0 {
		w.at = append(w.at[:0], w.at[cut:]...)
		w.val = append(w.val[:0], w.val[cut:]...)
	}
}

// median returns the median ESNR of the in-window readings and whether the
// window holds any samples as of now.
func (w *esnrWindow) median(now sim.Time) (float64, bool) {
	w.evict(now)
	n := len(w.val)
	if n == 0 {
		return 0, false
	}
	scratch := make([]float64, n)
	copy(scratch, w.val)
	sort.Float64s(scratch)
	// The paper indexes the sorted sequence at L/2; for even n this is the
	// upper median, which we reproduce exactly.
	return scratch[n/2], true
}

// lastHeard returns the time of the most recent reading (0, false if none).
func (w *esnrWindow) lastHeard() (sim.Time, bool) {
	if len(w.at) == 0 {
		return 0, false
	}
	return w.at[len(w.at)-1], true
}

// size returns the number of buffered readings.
func (w *esnrWindow) size() int { return len(w.val) }
