package controller

import (
	"testing"

	"wgtt/internal/backhaul"
	"wgtt/internal/metrics"
	"wgtt/internal/packet"
	wrt "wgtt/internal/runtime"
	"wgtt/internal/sim"
)

// --- integrated controller harness over a backhaul with scripted APs ---

type fakeAP struct {
	id      int
	eng     *sim.Engine
	bh      *backhaul.Switch
	ip      packet.IPv4Addr
	stops   []*packet.Stop
	starts  []*packet.Start
	downs   []*packet.DownData
	probes  []*packet.HealthProbe
	ackStop bool // respond to stop by emitting start at the next AP
	dead    bool // crashed: ignore every backhaul message
}

func (f *fakeAP) HandleBackhaul(from packet.IPv4Addr, msg packet.Message) {
	if f.dead {
		return
	}
	switch m := msg.(type) {
	case *packet.HealthProbe:
		f.probes = append(f.probes, m)
		_ = f.bh.Send(f.ip, packet.ControllerIP, &packet.HealthAck{AP: f.ip, Seq: m.Seq, At: m.At})
	case *packet.Stop:
		f.stops = append(f.stops, m)
		if f.ackStop {
			_ = f.bh.Send(f.ip, m.NextAP, &packet.Start{Client: m.Client, Index: 42, SwitchID: m.SwitchID})
		}
	case *packet.Start:
		f.starts = append(f.starts, m)
		_ = f.bh.Send(f.ip, packet.ControllerIP, &packet.SwitchAck{Client: m.Client, AP: f.ip, SwitchID: m.SwitchID})
	case *packet.DownData:
		f.downs = append(f.downs, m)
	}
}

type ctlHarness struct {
	eng  *sim.Engine
	bh   *backhaul.Switch
	ctl  *Controller
	aps  []*fakeAP
	macs packet.MACAddr
}

func newCtlHarness(t *testing.T, nAPs int, cfg Config) *ctlHarness {
	t.Helper()
	eng := sim.NewEngine()
	bh := backhaul.NewSwitch(eng, 200*sim.Microsecond)
	infos := make([]APInfo, nAPs)
	aps := make([]*fakeAP, nAPs)
	for i := 0; i < nAPs; i++ {
		infos[i] = APInfo{ID: i, IP: packet.APIP(i), MAC: packet.APMAC(i)}
		aps[i] = &fakeAP{id: i, eng: eng, bh: bh, ip: packet.APIP(i), ackStop: true}
		bh.Attach(packet.APIP(i), aps[i])
	}
	ctl := New(cfg, wrt.Virtual(eng), bh, infos)
	return &ctlHarness{eng: eng, bh: bh, ctl: ctl, aps: aps}
}

func csiReport(client packet.MACAddr, ap int, at sim.Time, esnrDB float64) *packet.CSIReport {
	rep := &packet.CSIReport{Client: client, AP: packet.APIP(ap), At: int64(at)}
	snr := make([]float64, packet.CSISubcarriers)
	for i := range snr {
		snr[i] = esnrDB
	}
	rep.QuantizeSNR(snr)
	return rep
}

func (h *ctlHarness) feedCSI(client packet.MACAddr, ap int, esnrDB float64) {
	at := h.eng.Now()
	_ = h.bh.Send(packet.APIP(ap), packet.ControllerIP, csiReport(client, ap, at, esnrDB))
}

func TestSelectionSwitchesToBestMedian(t *testing.T) {
	h := newCtlHarness(t, 3, DefaultConfig())
	client := packet.ClientMAC(1)
	h.ctl.RegisterClient(client, packet.ClientIP(1), 0)

	// AP0 fading, AP2 strong: CSI keeps arriving (as it does on a live
	// link) until the hysteresis dwell has passed and the switch completes.
	for i := 0; i < 60; i++ {
		h.feedCSI(client, 0, 8)
		h.feedCSI(client, 2, 20)
		h.eng.RunUntil(h.eng.Now() + 2*sim.Millisecond)
	}
	h.eng.RunUntil(h.eng.Now() + 100*sim.Millisecond)

	if got := h.ctl.ServingAP(client); got != 2 {
		t.Fatalf("serving AP = %d, want 2", got)
	}
	if len(h.aps[0].stops) == 0 {
		t.Error("old AP never received stop")
	}
	if len(h.aps[2].starts) == 0 {
		t.Error("new AP never received start")
	}
	if h.ctl.Stats.SwitchesDone != 1 {
		t.Errorf("switches done = %d", h.ctl.Stats.SwitchesDone)
	}
	rec := h.ctl.History[0]
	if rec.From != 0 || rec.To != 2 || rec.Duration <= 0 {
		t.Errorf("switch record = %+v", rec)
	}
}

func TestHysteresisBlocksFlapping(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Hysteresis = 500 * sim.Millisecond
	h := newCtlHarness(t, 2, cfg)
	client := packet.ClientMAC(1)
	h.ctl.RegisterClient(client, packet.ClientIP(1), 0)

	// Flip-flop the better AP every few ms for 300 ms.
	for i := 0; i < 30; i++ {
		better := i % 2
		h.feedCSI(client, better, 25)
		h.feedCSI(client, 1-better, 5)
		h.eng.RunUntil(h.eng.Now() + 10*sim.Millisecond)
	}
	if h.ctl.Stats.SwitchesDone > 1 {
		t.Errorf("hysteresis allowed %d switches in 300 ms", h.ctl.Stats.SwitchesDone)
	}
}

func TestSingleOutstandingSwitch(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Hysteresis = 0
	h := newCtlHarness(t, 3, cfg)
	// AP0 never acks: its starts go to an AP that does, but we silence the
	// target AP too to keep the op in flight.
	h.aps[0].ackStop = false
	client := packet.ClientMAC(1)
	h.ctl.RegisterClient(client, packet.ClientIP(1), 0)

	for i := 0; i < 10; i++ {
		h.feedCSI(client, 1, 20)
		h.feedCSI(client, 2, 25)
		h.eng.RunUntil(h.eng.Now() + 2*sim.Millisecond)
	}
	if h.ctl.Stats.SwitchesStarted != 1 {
		t.Errorf("switches started = %d, want 1 (single outstanding)", h.ctl.Stats.SwitchesStarted)
	}
}

func TestStopRetransmitOnTimeout(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Hysteresis = 0
	h := newCtlHarness(t, 2, cfg)
	h.aps[0].ackStop = false // black-hole the switch
	client := packet.ClientMAC(1)
	h.ctl.RegisterClient(client, packet.ClientIP(1), 0)

	// Several reports so AP1's window passes the MinSamples gate.
	for i := 0; i < 4; i++ {
		h.feedCSI(client, 1, 25)
		h.feedCSI(client, 0, 5)
		h.eng.RunUntil(h.eng.Now() + sim.Millisecond)
	}
	h.eng.RunUntil(200 * sim.Millisecond)

	// 30 ms timeout ⇒ roughly 6 retransmissions in 200 ms.
	if h.ctl.Stats.StopRetransmits < 3 {
		t.Errorf("stop retransmits = %d, want several", h.ctl.Stats.StopRetransmits)
	}
	if got := len(h.aps[0].stops); got < 4 {
		t.Errorf("AP0 saw %d stops", got)
	}
	if h.ctl.ServingAP(client) != 0 {
		t.Error("switch completed without an ack")
	}
}

func TestSwitchAckIgnoredWhenStale(t *testing.T) {
	h := newCtlHarness(t, 2, DefaultConfig())
	client := packet.ClientMAC(1)
	h.ctl.RegisterClient(client, packet.ClientIP(1), 0)
	// Unsolicited ack with a bogus switch ID must be ignored.
	_ = h.bh.Send(packet.APIP(1), packet.ControllerIP,
		&packet.SwitchAck{Client: client, AP: packet.APIP(1), SwitchID: 999})
	h.eng.Run()
	if h.ctl.ServingAP(client) != 0 || h.ctl.Stats.SwitchesDone != 0 {
		t.Error("stale ack mutated switch state")
	}
}

func TestDownlinkFanout(t *testing.T) {
	h := newCtlHarness(t, 4, DefaultConfig())
	client := packet.ClientMAC(1)
	h.ctl.RegisterClient(client, packet.ClientIP(1), 0)

	// Only APs 0 and 1 have heard the client recently.
	h.feedCSI(client, 0, 15)
	h.feedCSI(client, 1, 18)
	h.eng.RunUntil(5 * sim.Millisecond)

	p := &packet.Packet{ClientMAC: client, Bytes: 1500, SrcIP: packet.IPv4Addr{1, 2, 3, 4}}
	if err := h.ctl.SendDownlink(p); err != nil {
		t.Fatal(err)
	}
	h.eng.Run()

	if len(h.aps[0].downs) != 1 || len(h.aps[1].downs) != 1 {
		t.Error("recently-heard APs did not receive the packet")
	}
	if len(h.aps[3].downs) != 0 {
		t.Error("never-heard AP received a copy")
	}
	// Indices allocate sequentially from 0.
	if h.aps[0].downs[0].Pkt.Index != 0 {
		t.Errorf("first index = %d", h.aps[0].downs[0].Pkt.Index)
	}
	p2 := &packet.Packet{ClientMAC: client, Bytes: 1500}
	_ = h.ctl.SendDownlink(p2)
	h.eng.Run()
	if h.aps[0].downs[1].Pkt.Index != 1 {
		t.Errorf("second index = %d", h.aps[0].downs[1].Pkt.Index)
	}
}

func TestDownlinkFanoutFallbackAll(t *testing.T) {
	h := newCtlHarness(t, 3, DefaultConfig())
	client := packet.ClientMAC(1)
	h.ctl.RegisterClient(client, packet.ClientIP(1), 0)
	// No CSI at all: every AP gets a copy (bootstrap).
	_ = h.ctl.SendDownlink(&packet.Packet{ClientMAC: client, Bytes: 100})
	h.eng.Run()
	for i, ap := range h.aps {
		if len(ap.downs) != 1 {
			t.Errorf("AP%d got %d copies during bootstrap", i, len(ap.downs))
		}
	}
}

func TestDownlinkUnknownClient(t *testing.T) {
	h := newCtlHarness(t, 1, DefaultConfig())
	if err := h.ctl.SendDownlink(&packet.Packet{ClientMAC: packet.ClientMAC(9)}); err == nil {
		t.Error("unknown client accepted")
	}
}

func TestUplinkDedup(t *testing.T) {
	h := newCtlHarness(t, 2, DefaultConfig())
	client := packet.ClientMAC(1)
	h.ctl.RegisterClient(client, packet.ClientIP(1), 0)
	var delivered []*packet.Packet
	h.ctl.DeliverUplink = func(p *packet.Packet, _ sim.Time) { delivered = append(delivered, p) }

	mk := func(ipid uint16) *packet.Packet {
		return &packet.Packet{
			ClientMAC: client, SrcIP: packet.ClientIP(1), IPID: ipid, Uplink: true, Bytes: 200,
		}
	}
	// Same packet heard by both APs; a second distinct packet by one.
	_ = h.bh.Send(packet.APIP(0), packet.ControllerIP, &packet.UpData{APSrc: packet.APIP(0), Pkt: mk(7)})
	_ = h.bh.Send(packet.APIP(1), packet.ControllerIP, &packet.UpData{APSrc: packet.APIP(1), Pkt: mk(7)})
	_ = h.bh.Send(packet.APIP(0), packet.ControllerIP, &packet.UpData{APSrc: packet.APIP(0), Pkt: mk(8)})
	h.eng.Run()

	if len(delivered) != 2 {
		t.Fatalf("delivered %d packets, want 2", len(delivered))
	}
	uniq, dup := h.ctl.ClientUplinkCounts(client)
	if uniq != 2 || dup != 1 {
		t.Errorf("counts = %d unique, %d dup", uniq, dup)
	}
}

func TestUplinkDedupEviction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DedupCapacity = 4
	h := newCtlHarness(t, 1, cfg)
	client := packet.ClientMAC(1)
	h.ctl.RegisterClient(client, packet.ClientIP(1), 0)
	n := 0
	h.ctl.DeliverUplink = func(*packet.Packet, sim.Time) { n++ }
	for i := 0; i < 10; i++ {
		p := &packet.Packet{ClientMAC: client, SrcIP: packet.ClientIP(1), IPID: uint16(i)}
		_ = h.bh.Send(packet.APIP(0), packet.ControllerIP, &packet.UpData{APSrc: packet.APIP(0), Pkt: p})
	}
	h.eng.Run()
	// Key 0 was evicted after 4 more; replaying it is "new" again.
	p := &packet.Packet{ClientMAC: client, SrcIP: packet.ClientIP(1), IPID: 0}
	_ = h.bh.Send(packet.APIP(0), packet.ControllerIP, &packet.UpData{APSrc: packet.APIP(0), Pkt: p})
	h.eng.Run()
	if n != 11 {
		t.Errorf("delivered %d, want 11 (bounded memory re-admits evicted keys)", n)
	}
}

func TestAssocRegistersClient(t *testing.T) {
	h := newCtlHarness(t, 2, DefaultConfig())
	client := packet.ClientMAC(3)
	_ = h.bh.Send(packet.APIP(1), packet.ControllerIP,
		&packet.AssocSync{Client: client, ClientIP: packet.ClientIP(3), AID: 1, Authorized: true})
	h.eng.Run()
	if h.ctl.ServingAP(client) != 1 {
		t.Errorf("assoc-registered serving AP = %d, want 1", h.ctl.ServingAP(client))
	}
}

func TestMedianESNRAccessor(t *testing.T) {
	h := newCtlHarness(t, 2, DefaultConfig())
	client := packet.ClientMAC(1)
	h.ctl.RegisterClient(client, packet.ClientIP(1), 0)
	if _, ok := h.ctl.MedianESNR(client, 0); ok {
		t.Error("median reported before any CSI")
	}
	h.feedCSI(client, 0, 17)
	h.eng.Run()
	med, ok := h.ctl.MedianESNR(client, 0)
	if !ok || med < 15 || med > 19 {
		t.Errorf("median = %v, %v (fed 17 dB flat)", med, ok)
	}
	if _, ok := h.ctl.MedianESNR(packet.ClientMAC(9), 0); ok {
		t.Error("median for unknown client")
	}
}

// --- AP health monitor & forced failover (DESIGN.md §11) ---

// run advances the engine in 2 ms steps for steps iterations, feeding CSI
// for the client from every AP in feed each step (dead APs are silent).
func (h *ctlHarness) runFeeding(client packet.MACAddr, steps int, feed map[int]float64) {
	for i := 0; i < steps; i++ {
		for id := 0; id < len(h.aps); id++ {
			if db, ok := feed[id]; ok && !h.aps[id].dead {
				h.feedCSI(client, id, db)
			}
		}
		h.eng.RunUntil(h.eng.Now() + 2*sim.Millisecond)
	}
}

func TestHealthMonitorDetectsDeadAPAndForcesFailover(t *testing.T) {
	cfg := DefaultConfig().WithHealth()
	cfg.MinSwitchESNRdB = 50 // block selection switches: only failover may move the client
	h := newCtlHarness(t, 2, cfg)
	reg := metrics.NewRegistry()
	h.ctl.UseMetrics(reg)
	client := packet.ClientMAC(1)
	h.ctl.RegisterClient(client, packet.ClientIP(1), 0)

	h.runFeeding(client, 25, map[int]float64{0: 20, 1: 12})
	if got := h.ctl.ServingAP(client); got != 0 {
		t.Fatalf("serving = %d before the crash, want 0", got)
	}

	h.aps[0].dead = true
	crashAt := h.eng.Now()
	h.runFeeding(client, 100, map[int]float64{1: 12})

	st := h.ctl.Stats
	if st.APsMarkedDead != 1 {
		t.Fatalf("APsMarkedDead = %d, want 1", st.APsMarkedDead)
	}
	if st.ForcedSwitches != 1 || st.SwitchesStarted != 1 {
		t.Fatalf("ForcedSwitches = %d, SwitchesStarted = %d, want 1, 1", st.ForcedSwitches, st.SwitchesStarted)
	}
	if st.HealthProbes == 0 {
		t.Error("no health probes sent to the silent AP")
	}
	if got := h.ctl.ServingAP(client); got != 1 {
		t.Fatalf("serving = %d after failover, want 1", got)
	}
	if len(h.aps[0].stops) != 0 {
		t.Errorf("dead AP received %d stops; failover must use a direct start", len(h.aps[0].stops))
	}
	if len(h.aps[1].starts) == 0 {
		t.Fatal("failover target received no start")
	}
	if len(h.ctl.History) != 1 {
		t.Fatalf("History has %d records, want 1", len(h.ctl.History))
	}
	rec := h.ctl.History[0]
	if !rec.Forced || rec.From != 0 || rec.To != 1 {
		t.Errorf("record = %+v, want a forced 0→1 switch", rec)
	}
	// Outage bound: detection fires within DetectTimeout plus one health
	// tick of scan granularity; the direct start adds two backhaul hops.
	bound := cfg.DetectTimeout + cfg.HealthInterval + 5*sim.Millisecond
	if gap := rec.At - crashAt; gap > bound {
		t.Errorf("failover completed %v after the crash, want ≤ %v", gap, bound)
	}

	// The incident's recovery span is in the snapshot, completed, and
	// separate from the switch-protocol stream.
	snap := reg.Snapshot()
	var recov, forced int
	for _, sp := range snap.Spans {
		switch sp.Tracker {
		case metrics.RecoverySpanTracker:
			recov++
			if sp.Cause != metrics.CauseAPFailure || !sp.Completed {
				t.Errorf("recovery span = %+v, want completed %s", sp, metrics.CauseAPFailure)
			}
			if sp.StartHandledNS == 0 || sp.EndNS < sp.StartHandledNS {
				t.Errorf("recovery span timeline detect=%d reselect=%d ack=%d out of order",
					sp.StartNS, sp.StartHandledNS, sp.EndNS)
			}
		case "":
			if sp.Cause == metrics.CauseFailover {
				forced++
			}
		}
	}
	if recov != 1 || forced != 1 {
		t.Errorf("snapshot has %d recovery spans and %d failover switch spans, want 1 and 1", recov, forced)
	}
}

// Regression (DESIGN.md §11): when an AP dies while a switch handshake is
// already in flight toward the AP failover would also pick, the controller
// must escalate that same op to a direct start — same SwitchID — and must
// not initiate a second switch toward that AP.
func TestFailoverMidSwitchEscalatesSameOp(t *testing.T) {
	cfg := DefaultConfig().WithHealth()
	h := newCtlHarness(t, 2, cfg)
	client := packet.ClientMAC(1)
	h.ctl.RegisterClient(client, packet.ClientIP(1), 0)

	h.runFeeding(client, 30, map[int]float64{0: 20, 1: 8})
	if got := h.ctl.ServingAP(client); got != 0 {
		t.Fatalf("serving = %d, want 0", got)
	}

	// AP0 crashes; AP1 immediately looks better, so the §3.1.1 rule opens
	// a normal stop→start handshake toward AP1 before detection fires. The
	// stop goes to the dead AP0 and is never answered.
	h.aps[0].dead = true
	h.runFeeding(client, 120, map[int]float64{1: 25})

	st := h.ctl.Stats
	if st.SwitchesStarted != 1 {
		t.Fatalf("SwitchesStarted = %d, want exactly 1 (escalation must reuse the in-flight op)", st.SwitchesStarted)
	}
	if st.ForcedSwitches != 1 {
		t.Fatalf("ForcedSwitches = %d, want 1", st.ForcedSwitches)
	}
	if st.SwitchesDone != 1 {
		t.Fatalf("SwitchesDone = %d, want 1", st.SwitchesDone)
	}
	if st.StopRetransmits == 0 {
		t.Error("expected stop retransmissions toward the dead AP before escalation")
	}
	if got := h.ctl.ServingAP(client); got != 1 {
		t.Fatalf("serving = %d, want 1", got)
	}
	if len(h.aps[1].starts) == 0 {
		t.Fatal("escalated op sent no direct start")
	}
	wantID := h.aps[1].starts[0].SwitchID
	for _, s := range h.aps[1].starts {
		if s.SwitchID != wantID {
			t.Fatalf("start carries SwitchID %d, want %d (a second switch op was opened)", s.SwitchID, wantID)
		}
	}
	if len(h.ctl.History) != 1 || !h.ctl.History[0].Forced {
		t.Fatalf("History = %+v, want one forced record", h.ctl.History)
	}
}

func TestDeadAPExcludedFromFanoutAndReadmitted(t *testing.T) {
	cfg := DefaultConfig().WithHealth()
	cfg.MinSwitchESNRdB = 50
	h := newCtlHarness(t, 3, cfg)
	client := packet.ClientMAC(1)
	h.ctl.RegisterClient(client, packet.ClientIP(1), 0)

	h.runFeeding(client, 25, map[int]float64{0: 20, 1: 15, 2: 14})
	h.aps[2].dead = true
	h.runFeeding(client, 100, map[int]float64{0: 20, 1: 15})
	if !h.ctl.APAlive(0) || !h.ctl.APAlive(1) || h.ctl.APAlive(2) {
		t.Fatalf("alive = %v %v %v, want true true false",
			h.ctl.APAlive(0), h.ctl.APAlive(1), h.ctl.APAlive(2))
	}

	for i := range h.aps {
		h.aps[i].downs = nil
	}
	if err := h.ctl.SendDownlink(&packet.Packet{ClientMAC: client, Bytes: 1500}); err != nil {
		t.Fatal(err)
	}
	h.eng.RunUntil(h.eng.Now() + sim.Millisecond)
	if len(h.aps[0].downs) != 1 || len(h.aps[1].downs) != 1 {
		t.Fatalf("alive APs got %d, %d downlink copies, want 1, 1", len(h.aps[0].downs), len(h.aps[1].downs))
	}
	if len(h.aps[2].downs) != 0 {
		t.Fatalf("dead AP got %d downlink copies, want 0", len(h.aps[2].downs))
	}

	// The AP comes back: its next backhaul message re-admits it, and
	// fan-out (fed by fresh CSI) includes it again.
	h.aps[2].dead = false
	h.runFeeding(client, 30, map[int]float64{0: 20, 1: 15, 2: 14})
	if h.ctl.Stats.APsReadmitted != 1 {
		t.Fatalf("APsReadmitted = %d, want 1", h.ctl.Stats.APsReadmitted)
	}
	if !h.ctl.APAlive(2) {
		t.Fatal("AP2 still dead after speaking")
	}
	for i := range h.aps {
		h.aps[i].downs = nil
	}
	if err := h.ctl.SendDownlink(&packet.Packet{ClientMAC: client, Bytes: 1500}); err != nil {
		t.Fatal(err)
	}
	h.eng.RunUntil(h.eng.Now() + sim.Millisecond)
	if len(h.aps[2].downs) != 1 {
		t.Fatalf("re-admitted AP got %d downlink copies, want 1", len(h.aps[2].downs))
	}
}

func TestControllerFailRecover(t *testing.T) {
	cfg := DefaultConfig().WithHealth()
	h := newCtlHarness(t, 2, cfg)
	client := packet.ClientMAC(1)
	h.ctl.RegisterClient(client, packet.ClientIP(1), 0)
	h.runFeeding(client, 25, map[int]float64{0: 20, 1: 12})

	h.ctl.Fail()
	if !h.ctl.Down() {
		t.Fatal("controller not down after Fail")
	}
	if err := h.ctl.SendDownlink(&packet.Packet{ClientMAC: client, Bytes: 1500}); err != nil {
		t.Fatal(err)
	}
	if h.ctl.Stats.CtlDownlinkDropped != 1 {
		t.Fatalf("CtlDownlinkDropped = %d, want 1", h.ctl.Stats.CtlDownlinkDropped)
	}
	// A crashed controller must neither probe nor declare deaths while the
	// APs' silence is its own fault.
	dead := h.ctl.Stats.APsMarkedDead
	h.eng.RunUntil(h.eng.Now() + 300*sim.Millisecond)
	if h.ctl.Stats.APsMarkedDead != dead {
		t.Fatalf("controller declared %d AP deaths while itself down", h.ctl.Stats.APsMarkedDead-dead)
	}

	h.ctl.Recover()
	if h.ctl.Down() {
		t.Fatal("controller still down after Recover")
	}
	if !h.ctl.APAlive(0) || !h.ctl.APAlive(1) {
		t.Fatal("recovery grace did not re-admit the APs")
	}
	// State is cold but functional: registrations survived, traffic flows.
	h.runFeeding(client, 25, map[int]float64{0: 20, 1: 12})
	for i := range h.aps {
		h.aps[i].downs = nil
	}
	if err := h.ctl.SendDownlink(&packet.Packet{ClientMAC: client, Bytes: 1500}); err != nil {
		t.Fatal(err)
	}
	h.eng.RunUntil(h.eng.Now() + sim.Millisecond)
	if len(h.aps[0].downs) != 1 {
		t.Fatalf("serving AP got %d downlink copies after recovery, want 1", len(h.aps[0].downs))
	}
	if h.ctl.Stats.APsMarkedDead != dead {
		t.Fatalf("recovery grace failed: %d deaths declared right after restart", h.ctl.Stats.APsMarkedDead-dead)
	}
}
