package controller

import (
	"fmt"

	"wgtt/internal/backhaul"
	"wgtt/internal/packet"
	"wgtt/internal/sim"
)

// This file is the controller's downlink fan-out data plane (§3.1.1,
// DESIGN.md §14): every downlink packet is replicated to each AP that heard
// the client within FanoutWindow — any of them can deliver it — or to every
// alive AP while none has heard the client yet (bootstrap).
//
// The fan-out target set used to be recomputed per packet with an O(#APs)
// scan over heardEver/lastHeard. It is now maintained incrementally as a
// per-client relevance set, with these invariants:
//
//   - fanSet holds AP ids in ascending order, each exactly once; inFan[a]
//     mirrors membership.
//   - Membership is a superset property: heardEver[a] && the client was
//     heard from a within FanoutWindow as of the last fanTargets sweep
//     ⇒ a ∈ fanSet. Every CSI arrival (and federation ESNR seed) inserts
//     the AP; expiry is lazy — stale members are compacted out during the
//     next fan-out emission, which re-checks lastHeard anyway.
//   - AP death and re-admission never touch the set: liveness is filtered
//     per emission, exactly as the old scan consulted apAlive, so a dead
//     AP's recency evidence survives its outage (matching heardEver's).
//   - heardCount counts true heardEver entries; zero selects the bootstrap
//     broadcast. Only Recover resets it (heardEver is never unset
//     elsewhere).
//
// Emission order is ascending AP id with the serving AP merged at its
// sorted position — the same order the old c.aps scan produced — because
// backhaul delivery order is part of the determinism contract.

// fanHeard records that apID heard the client now: refreshes the recency
// stamp and inserts the AP into the relevance set.
func (cl *clientCtl) fanHeard(apID int, now sim.Time) {
	cl.lastHeard[apID] = now
	if !cl.heardEver[apID] {
		cl.heardEver[apID] = true
		cl.heardCount++
	}
	if cl.inFan[apID] {
		return
	}
	cl.inFan[apID] = true
	id := int32(apID)
	i := len(cl.fanSet)
	cl.fanSet = append(cl.fanSet, 0)
	for i > 0 && cl.fanSet[i-1] > id {
		cl.fanSet[i] = cl.fanSet[i-1]
		i--
	}
	cl.fanSet[i] = id
}

// fanReset clears the relevance set (controller restart: all recency
// evidence is gone).
func (cl *clientCtl) fanReset() {
	cl.fanSet = cl.fanSet[:0]
	for i := range cl.inFan {
		cl.inFan[i] = false
	}
	cl.heardCount = 0
}

// fanTargets computes the downlink fan-out targets for cl at now into the
// controller's reusable scratch, compacting expired members out of the
// relevance set as it goes. The result is valid until the next call.
func (c *Controller) fanTargets(cl *clientCtl, now sim.Time) []packet.IPv4Addr {
	tgts := c.targetScratch[:0]
	if cl.heardCount == 0 {
		// Bootstrap: no AP has heard the client yet — fan out broadly.
		for _, a := range c.aps {
			if c.apAlive(a.ID) {
				tgts = append(tgts, a.IP)
			}
		}
		c.targetScratch = tgts
		return tgts
	}
	serving := cl.serving
	servingAlive := serving >= 0 && serving < len(c.aps) && c.apAlive(serving)
	servingEmitted := false
	keep := cl.fanSet[:0]
	for _, id32 := range cl.fanSet {
		id := int(id32)
		if servingAlive && !servingEmitted && serving <= id {
			// The serving AP is always a target (alive permitting), fresh
			// recency or not; emit it at its sorted position.
			tgts = append(tgts, c.aps[serving].IP)
			servingEmitted = true
		}
		if now-cl.lastHeard[id] > c.cfg.FanoutWindow {
			cl.inFan[id] = false
			continue // expired: compact out; a new CSI will re-insert
		}
		keep = append(keep, id32)
		if id != serving && c.apAlive(id) {
			tgts = append(tgts, c.aps[id].IP)
		}
	}
	cl.fanSet = keep
	if servingAlive && !servingEmitted {
		tgts = append(tgts, c.aps[serving].IP)
	}
	c.targetScratch = tgts
	return tgts
}

// SendDownlink accepts one downlink packet from the wired side, assigns its
// 12-bit index, and fans it out to every AP in the client's relevance set
// (or all alive APs if none has heard it yet). The DownData envelope is a
// reused scratch encoded once by the fabric's fan-out fast path and
// replicated per target; its APDst field is zero on this path — the AP
// ignores it, per-copy addressing lives in the fabric envelope.
func (c *Controller) SendDownlink(p *packet.Packet) error {
	if c.down {
		// A crashed controller forwards nothing; the wired side's packets
		// are simply lost until Recover (DESIGN.md §11).
		c.Stats.CtlDownlinkDropped++
		return nil
	}
	cl := c.clients[p.ClientMAC]
	if cl == nil {
		return fmt.Errorf("controller: unknown client %v", p.ClientMAC)
	}
	p.Index = cl.nextIndex
	cl.nextIndex = packet.NextIndex(cl.nextIndex)
	c.Stats.DownlinkSent++

	targets := c.fanTargets(cl, c.clk.Now())
	// Copies count per target attempted, send outcome regardless — the
	// accounting the per-target Send loop kept (its errors were ignored).
	c.Stats.DownlinkCopies += uint64(len(targets))
	c.met.downlinkEncodes.Inc()
	c.met.downlinkCopies.Add(uint64(len(targets)))
	c.met.fanoutSetSize.Set(float64(len(cl.fanSet)))
	c.met.fanoutDepth.Observe(float64(len(targets)))
	if len(targets) == 0 {
		return nil
	}
	c.downScratch.APDst = packet.IPv4Addr{}
	c.downScratch.Pkt = p
	backhaul.SendToAll(c.bh, c.addr, targets, &c.downScratch)
	c.downScratch.Pkt = nil
	return nil
}
