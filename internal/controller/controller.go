// Package controller implements the WGTT controller (§3): CSI ingest into
// the pluggable AP-selection policy (internal/selector, which owns the
// per-(client, AP) ESNR windows and the §3.1.1 decision rule), the
// stop/start/ack switching state machine with its 30 ms retransmission
// timeout and single-outstanding-switch constraint, downlink fan-out into
// every nearby AP's cyclic queue, and uplink de-duplication keyed by
// (source IP, IP ID). The controller keeps the scheduling gates — one
// switch in flight per client, frozen during federation handoffs, the
// Fig. 22 hysteresis dwell — and delegates the what-AP question to the
// configured selector.Selector.
package controller

import (
	"wgtt/internal/backhaul"
	"wgtt/internal/csi"
	"wgtt/internal/metrics"
	"wgtt/internal/packet"
	"wgtt/internal/runtime"
	"wgtt/internal/selector"
	"wgtt/internal/sim"
)

// Config parameterizes the controller.
type Config struct {
	// Window is the ESNR comparison window W of §3.1.1; the paper's
	// microbenchmark (Fig. 21) selects 10 ms.
	Window sim.Time
	// Hysteresis is the minimum dwell time between switches of one client
	// (Fig. 22 sweeps 40–120 ms).
	Hysteresis sim.Time
	// SwitchTimeout is the stop-packet retransmission timeout (§3.1.2).
	SwitchTimeout sim.Time
	// FanoutWindow bounds how recently an AP must have heard the client to
	// receive copies of its downlink packets (the paper fans out to APs
	// heard within the selection window; a slightly longer horizon is used
	// here so momentary uplink silence does not empty the set).
	FanoutWindow sim.Time
	// MedianMarginDB requires the challenger AP's median ESNR to beat the
	// incumbent's by this much (0 reproduces the paper's plain argmax).
	MedianMarginDB float64
	// MinSamples is the minimum number of in-window ESNR readings an AP
	// needs before it can be selected — one stray reading is not a median.
	MinSamples int
	// MinSwitchESNRdB gates handovers: a challenger whose median ESNR is
	// below this cannot be worth a switch (it could not even carry MCS0),
	// which stops the controller from thrashing among dead links when the
	// client leaves coverage entirely.
	MinSwitchESNRdB float64
	// CollapseDB, when > 0, lets a switch bypass the hysteresis dwell if
	// the challenger's figure beats the incumbent's by at least this much.
	// The Fig. 22 dwell assumes links decay gently; an urban corner turn
	// (DESIGN.md §16) drops the serving link tens of dB in under a second,
	// and holding the dwell there is pure outage. 0 — the default — keeps
	// the dwell absolute, byte-identical to the pre-§16 controller.
	CollapseDB float64
	// DedupCapacity bounds the uplink de-duplication hashset.
	DedupCapacity int

	// Selector picks and parameterizes the AP-selection policy
	// (DESIGN.md §15). The zero value is the paper's windowed-median
	// rule, byte-identical to the historical inline implementation; the
	// base §3.1.1 knobs above (Window, MedianMarginDB, MinSamples,
	// MinSwitchESNRdB) parameterize every policy.
	Selector selector.Config

	// HealthInterval paces the AP health monitor: every interval the
	// controller scans for APs it has not heard from (no CSI, uplink, acks
	// — the traffic an alive AP emits anyway) and probes the quiet ones.
	// 0 disables the monitor entirely, which is the paper's original
	// APs-never-fail operating point (DESIGN.md §11).
	HealthInterval sim.Time
	// DetectTimeout is how long an AP may stay silent — ignoring probes
	// included — before it is marked dead, excluded from selection and
	// fan-out, and its clients are force-switched away. 0 disables.
	DetectTimeout sim.Time

	// Addr is the controller's own backhaul address. Zero means
	// packet.ControllerIP — the single-controller deployment. A federation
	// tier (DESIGN.md §13) runs several controllers on one backhaul, each
	// attached at its own packet.DomainControllerIP(d).
	Addr packet.IPv4Addr
	// SwitchIDBase offsets the switch/recovery ID sequences. Controllers
	// sharing a backhaul and a metrics registry must not mint colliding IDs:
	// switch spans are keyed by ID, and APs correlate stop/start/ack by it.
	SwitchIDBase uint32
}

// Health-monitor defaults applied by WithHealth. The detection timeout
// trades outage length against false positives: it must comfortably exceed
// the probe round trip (two backhaul hops, sub-millisecond) and ride out
// CSI gaps, while every extra millisecond is client outage when an AP
// really dies. 100 ms ≈ 4 probe intervals of slack (DESIGN.md §11).
const (
	DefaultHealthInterval = 25 * sim.Millisecond
	DefaultDetectTimeout  = 100 * sim.Millisecond
)

// WithHealth returns the config with the AP health monitor enabled,
// filling only the health fields that are unset so explicit choices win.
func (c Config) WithHealth() Config {
	if c.HealthInterval <= 0 {
		c.HealthInterval = DefaultHealthInterval
	}
	if c.DetectTimeout <= 0 {
		c.DetectTimeout = DefaultDetectTimeout
	}
	return c
}

// DefaultConfig returns the paper's operating point.
func DefaultConfig() Config {
	return Config{
		Window:          10 * sim.Millisecond,
		Hysteresis:      40 * sim.Millisecond,
		SwitchTimeout:   30 * sim.Millisecond,
		FanoutWindow:    100 * sim.Millisecond,
		MedianMarginDB:  0,
		MinSamples:      2,
		MinSwitchESNRdB: -5,
		DedupCapacity:   4096,
	}
}

// APInfo describes one AP the controller commands.
type APInfo struct {
	ID  int
	IP  packet.IPv4Addr
	MAC packet.MACAddr
}

// SwitchRecord is one completed handover, for the evaluation timeline.
type SwitchRecord struct {
	At       sim.Time // when the ack arrived
	Client   packet.MACAddr
	From, To int
	Duration sim.Time // stop sent → ack received (Table 1's execution time)
	Attempts int      // stop transmissions needed
	// Forced marks a failover switch: the from-AP was dead, so the
	// stop→start handshake was bypassed with a direct start (DESIGN.md §11).
	Forced bool
}

// Stats aggregates controller counters.
type Stats struct {
	CSIReports      uint64
	SwitchesStarted uint64
	SwitchesDone    uint64
	StopRetransmits uint64
	UplinkUnique    uint64
	UplinkDuplicate uint64
	DownlinkSent    uint64
	DownlinkCopies  uint64

	// Selection-policy counters (DESIGN.md §15). SelectionDecisions
	// counts policy evaluations that reached the selector (past the
	// op/frozen/hysteresis gates); PredictiveEarlySwitches counts
	// switches the Predictive policy fired ahead of the median rule;
	// AssignmentRounds counts GlobalAssign's fleet-wide recomputations.
	SelectionDecisions      uint64
	PredictiveEarlySwitches uint64
	AssignmentRounds        uint64
	// CollapseSwitches counts switches that bypassed the hysteresis dwell
	// through the CollapseDB escape (serving link collapsed mid-dwell).
	CollapseSwitches uint64

	// AP health monitor & failure recovery (DESIGN.md §11).
	HealthProbes           uint64 // probes sent to quiet APs
	APsMarkedDead          uint64 // detection events
	APsReadmitted          uint64 // dead APs heard again
	ForcedSwitches         uint64 // failover switches (direct start)
	ForcedStartRetransmits uint64 // direct starts re-sent on timeout
	CtlDownlinkDropped     uint64 // downlink lost while the controller was down
}

// ctlMetrics holds the controller's observability handles (DESIGN.md §10).
// All fields are nil until UseMetrics wires a registry; every instrument
// is nil-safe, so the unwired state is the disabled state.
type ctlMetrics struct {
	csiReports *metrics.Counter
	// windowOcc samples the (client, AP) window size at each ingest — the
	// occupancy behind every §3.1.1 median the selection rule compares.
	windowOcc *metrics.Histogram
	// selectionFlips counts evaluations whose argmax AP differed from the
	// previous evaluation's — raw selection churn, before hysteresis.
	selectionFlips *metrics.Counter
	// hystSuppressed counts re-evaluations skipped inside the dwell time.
	hystSuppressed *metrics.Counter
	// collapseSwitches counts dwell bypasses via the CollapseDB escape.
	collapseSwitches *metrics.Counter
	// Selection-policy instruments (DESIGN.md §15): decisions that reached
	// the selector, Predictive's early switches, GlobalAssign's rounds.
	selDecisions    *metrics.Counter
	predictiveEarly *metrics.Counter
	assignRounds    *metrics.Counter
	switchesStarted *metrics.Counter
	switchesDone    *metrics.Counter
	stopRetransmits *metrics.Counter
	// dedup{Hits,Misses,Size}: the §3.2.2 uplink de-duplication hashset —
	// a hit is a suppressed duplicate, a miss a first-seen packet.
	dedupHits   *metrics.Counter
	dedupMisses *metrics.Counter
	dedupSize   *metrics.Gauge
	spans       *metrics.SpanTracker

	// Downlink fan-out data plane (DESIGN.md §14). downlinkEncodes counts
	// packets entering the fan-out (one encode each on the fast path);
	// downlinkCopies counts the per-AP replicas — their ratio is the
	// replication factor the encode-once path amortizes. fanoutSetSize
	// samples the relevance-set occupancy after each emission, fanoutDepth
	// the batched-write depth handed to the fabric per packet.
	downlinkEncodes *metrics.Counter
	downlinkCopies  *metrics.Counter
	fanoutSetSize   *metrics.Gauge
	fanoutDepth     *metrics.Histogram

	// Health monitor & failure recovery (DESIGN.md §11). recoverySpans
	// traces detect → reselect → first ack per AP-death incident.
	healthProbes   *metrics.Counter
	apsMarkedDead  *metrics.Counter
	apsReadmitted  *metrics.Counter
	forcedSwitches *metrics.Counter
	forcedStartRtx *metrics.Counter
	recoverySpans  *metrics.SpanTracker
}

// UseMetrics wires the controller's instruments into r (call before the
// run starts). A nil registry leaves recording disabled.
func (c *Controller) UseMetrics(r *metrics.Registry) {
	c.met = ctlMetrics{
		csiReports:       r.Counter("controller", "csi_reports"),
		windowOcc:        r.Histogram("controller", "window_occupancy", []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}),
		selectionFlips:   r.Counter("controller", "selection_flips"),
		hystSuppressed:   r.Counter("controller", "hysteresis_suppressions"),
		collapseSwitches: r.Counter("controller", "collapse_switches"),
		selDecisions:     r.Counter("controller", "selection_decisions"),
		predictiveEarly:  r.Counter("controller", "predictive_early_switches"),
		assignRounds:     r.Counter("controller", "assignment_rounds"),
		switchesStarted:  r.Counter("controller", "switches_started"),
		switchesDone:     r.Counter("controller", "switches_done"),
		stopRetransmits:  r.Counter("controller", "stop_retransmits"),
		dedupHits:        r.Counter("dedup", "hits"),
		dedupMisses:      r.Counter("dedup", "misses"),
		dedupSize:        r.Gauge("dedup", "size"),
		spans:            r.SwitchSpans(),
		downlinkEncodes:  r.Counter("fanout", "downlink_encodes"),
		downlinkCopies:   r.Counter("fanout", "downlink_copies"),
		fanoutSetSize:    r.Gauge("fanout", "fanout_set_size"),
		fanoutDepth:      r.Histogram("fanout", "batch_depth", []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}),
		healthProbes:     r.Counter("controller", "health_probes"),
		apsMarkedDead:    r.Counter("controller", "aps_marked_dead"),
		apsReadmitted:    r.Counter("controller", "aps_readmitted"),
		forcedSwitches:   r.Counter("controller", "forced_switches"),
		forcedStartRtx:   r.Counter("controller", "forced_start_retransmits"),
		recoverySpans:    r.RecoverySpans(),
	}
}

// switchOp is the single in-flight handover of one client.
type switchOp struct {
	id       uint32
	from, to int
	sentAt   sim.Time
	attempts int
	timer    runtime.Timer
	// forced marks a failover op driven by direct starts instead of the
	// stop→start handshake (the from-AP is dead and would never answer).
	forced bool
	// recoveryID links the op to the recovery span of the AP-death
	// incident that forced it (0 when not a failover).
	recoveryID uint32
}

// clientCtl is per-client controller state.
type clientCtl struct {
	mac packet.MACAddr
	ip  packet.IPv4Addr

	// lastHeard/heardEver are the fan-out recency evidence (fanout.go)
	// and the failover fallback tiers (health.go); the selection-grade
	// ESNR windows live in the selector.
	lastHeard []sim.Time
	heardEver []bool

	// Downlink fan-out relevance set (fanout.go): fanSet lists member AP
	// ids ascending, inFan mirrors membership, heardCount counts true
	// heardEver entries (0 selects the bootstrap broadcast).
	fanSet     []int32
	inFan      []bool
	heardCount int

	serving    int
	lastSwitch sim.Time
	op         *switchOp

	// frozen holds the selection rule off this client while a cross-domain
	// handoff is in flight: the federation layer drives the stop→start→ack
	// itself and must not race a locally-initiated switch (DESIGN.md §13).
	frozen bool

	nextIndex uint16

	dedup     map[packet.DedupKey]struct{}
	dedupFIFO []packet.DedupKey

	// UplinkHeard/UplinkDup per-client counters (Fig. 18 analysis).
	UplinkUnique, UplinkDuplicate uint64
}

// Controller is the WGTT controller. It is clock- and transport-agnostic:
// all timing goes through a runtime.Clock (virtual in simulation, wall in
// live mode) and all messaging through a backhaul.Fabric (DESIGN.md §12).
type Controller struct {
	cfg  Config
	clk  runtime.Clock
	bh   backhaul.Fabric
	aps  []APInfo
	addr packet.IPv4Addr

	// sel is the AP-selection policy (DESIGN.md §15); aliveFn is the
	// health monitor's verdict bound once at construction so the per-CSI
	// Decide call stays allocation-free.
	sel     selector.Selector
	aliveFn func(int) bool

	clients map[packet.MACAddr]*clientCtl
	// clientOrder lists clients in registration order. Every whole-fleet
	// sweep (marking an AP dead, failing over, restarting) iterates this
	// slice, never the map: map order is randomized per process and would
	// break run-to-run determinism.
	clientOrder []packet.MACAddr

	// health is per-AP liveness state, indexed like aps; nil while the
	// monitor is disabled (the chaos-free default — zero behavior change).
	health []apHealth
	ipToAP map[packet.IPv4Addr]int
	// down is true while a chaos-injected controller crash holds it off
	// the backhaul (DESIGN.md §11).
	down        bool
	probeSeq    uint32
	recoverySeq uint32

	// DeliverUplink receives each de-duplicated uplink packet (the "strip
	// tunnel header and forward to the Internet" hop).
	DeliverUplink func(p *packet.Packet, at sim.Time)

	// OnSwitch, if set, observes every completed switch.
	OnSwitch func(rec SwitchRecord)

	switchSeq uint32

	// snrScratch is the reusable unpack buffer for incoming CSI reports;
	// the controller runs on the single simulation goroutine, so one
	// buffer serves every report.
	snrScratch []float64

	// targetScratch and downScratch are SendDownlink's reusable fan-out
	// target list and DownData envelope: the fabric's fan-out fast path
	// never retains either (fanout.go, DESIGN.md §14).
	targetScratch []packet.IPv4Addr
	downScratch   packet.DownData

	// met holds the observability instruments; dedupEntries tracks the
	// total dedup-hashset occupancy across clients for the size gauge.
	met          ctlMetrics
	dedupEntries int

	Stats   Stats
	History []SwitchRecord
}

// New creates a controller commanding the given APs and attaches it to the
// backhaul at cfg.Addr (packet.ControllerIP when unset).
func New(cfg Config, clk runtime.Clock, bh backhaul.Fabric, aps []APInfo) *Controller {
	if cfg.Addr.IsZero() {
		cfg.Addr = packet.ControllerIP
	}
	c := &Controller{
		cfg:         cfg,
		clk:         clk,
		bh:          bh,
		aps:         aps,
		addr:        cfg.Addr,
		switchSeq:   cfg.SwitchIDBase,
		recoverySeq: cfg.SwitchIDBase,
		clients:     make(map[packet.MACAddr]*clientCtl),
		ipToAP:      make(map[packet.IPv4Addr]int, len(aps)),
	}
	for _, a := range aps {
		c.ipToAP[a.IP] = a.ID
	}
	c.sel = selector.New(cfg.Selector, selector.Params{
		Window:          cfg.Window,
		MedianMarginDB:  cfg.MedianMarginDB,
		MinSamples:      cfg.MinSamples,
		MinSwitchESNRdB: cfg.MinSwitchESNRdB,
	}, len(aps))
	c.aliveFn = c.apAlive
	if cfg.HealthInterval > 0 && cfg.DetectTimeout > 0 {
		c.health = make([]apHealth, len(aps))
		for i := range c.health {
			c.health[i].alive = true
		}
		clk.After(cfg.HealthInterval, c.healthTick)
	}
	bh.Attach(c.addr, c)
	return c
}

// Config returns the controller configuration.
func (c *Controller) Config() Config { return c.cfg }

// Addr returns the controller's backhaul address.
func (c *Controller) Addr() packet.IPv4Addr { return c.addr }

// RegisterClient installs a client with its initial serving AP (the AP it
// completed 802.11 association with; §4.3 replicates that state everywhere).
func (c *Controller) RegisterClient(mac packet.MACAddr, ip packet.IPv4Addr, servingAP int) {
	cl := &clientCtl{
		mac:       mac,
		ip:        ip,
		lastHeard: make([]sim.Time, len(c.aps)),
		heardEver: make([]bool, len(c.aps)),
		serving:   servingAP,
		inFan:     make([]bool, len(c.aps)),
		dedup:     make(map[packet.DedupKey]struct{}, c.cfg.DedupCapacity),
	}
	c.sel.AddClient(mac, servingAP)
	c.clients[mac] = cl
	c.clientOrder = append(c.clientOrder, mac)
}

// ServingAP returns the AP currently serving the client (-1 if unknown).
func (c *Controller) ServingAP(mac packet.MACAddr) int {
	cl := c.clients[mac]
	if cl == nil {
		return -1
	}
	return cl.serving
}

// MedianESNR exposes the current windowed median for (client, AP) — the
// quantity the selection rule compares (evaluation hook, and the
// federation tier's evidence export; every policy maintains it).
func (c *Controller) MedianESNR(mac packet.MACAddr, apID int) (float64, bool) {
	return c.sel.Median(mac, apID, c.clk.Now())
}

// SelectionPolicy reports the active AP-selection policy.
func (c *Controller) SelectionPolicy() selector.Policy { return c.sel.Policy() }

// HandleBackhaul implements backhaul.Node.
func (c *Controller) HandleBackhaul(from packet.IPv4Addr, msg packet.Message) {
	if c.down {
		return // a crashed controller hears nothing (DESIGN.md §11)
	}
	// Any backhaul traffic from an AP proves it alive — CSI, uplink, acks;
	// explicit probe acks only matter for APs with nothing else to say.
	c.noteAPAlive(from)
	switch m := msg.(type) {
	case *packet.CSIReport:
		c.handleCSI(m)
	case *packet.UpData:
		c.handleUplink(m)
	case *packet.SwitchAck:
		c.handleSwitchAck(m)
	case *packet.AssocSync:
		if _, ok := c.clients[m.Client]; !ok {
			c.RegisterClient(m.Client, m.ClientIP, c.apIndexByIP(from))
		}
	case *packet.HealthAck:
		// noteAPAlive above did the work; nothing else to record.
	}
}

func (c *Controller) apIndexByIP(ip packet.IPv4Addr) int {
	if id, ok := c.ipToAP[ip]; ok {
		return id
	}
	return 0
}

// handleCSI folds a report into the client's per-AP window and re-evaluates
// AP selection.
func (c *Controller) handleCSI(m *packet.CSIReport) {
	cl := c.clients[m.Client]
	if cl == nil {
		return
	}
	apID := c.apIndexByIP(m.AP)
	if apID < 0 || apID >= len(c.aps) {
		return
	}
	c.Stats.CSIReports++
	c.met.csiReports.Inc()
	c.snrScratch = m.SNRdBInto(c.snrScratch)
	esnr := csi.ESNRdB(c.snrScratch, csi.DefaultESNRModulation)
	at := sim.Time(m.At)
	if now := c.clk.Now(); at > now || at < now-c.cfg.Window {
		at = now
	}
	occ := c.sel.Observe(cl.mac, apID, esnr, at)
	c.met.windowOcc.Observe(float64(occ))
	cl.fanHeard(apID, c.clk.Now())
	c.evaluate(cl)
}

// evaluate runs the selection policy and §3.1.2 switching protocol. The
// scheduling gates — one outstanding switch, frozen during federation
// handoffs, the Fig. 22 hysteresis dwell — stay here; what the ESNR
// evidence says is the selector's question (DESIGN.md §15).
func (c *Controller) evaluate(cl *clientCtl) {
	if cl.op != nil {
		return // one outstanding switch at a time
	}
	if cl.frozen {
		return // a cross-domain handoff owns this client's switching
	}
	now := c.clk.Now()
	dwell := now-cl.lastSwitch < c.cfg.Hysteresis
	if dwell && c.cfg.CollapseDB <= 0 {
		// Dwell-time suppression: the selection rule would have re-run
		// here but the Fig. 22 hysteresis holds the serving AP.
		c.met.hystSuppressed.Inc()
		return
	}
	c.Stats.SelectionDecisions++
	c.met.selDecisions.Inc()
	d := c.sel.Decide(cl.mac, cl.serving, now, c.aliveFn)
	if d.Flip {
		c.met.selectionFlips.Inc()
	}
	if d.NewRound {
		c.Stats.AssignmentRounds++
		c.met.assignRounds.Inc()
	}
	if d.Target < 0 || d.Target == cl.serving {
		return
	}
	if dwell {
		// Inside the dwell, only the CollapseDB escape may switch: the
		// challenger must beat the incumbent by a collapse-scale gap.
		if d.ToMetric-d.FromMetric < c.cfg.CollapseDB {
			c.met.hystSuppressed.Inc()
			return
		}
		c.Stats.CollapseSwitches++
		c.met.collapseSwitches.Inc()
	}
	if d.Early {
		c.Stats.PredictiveEarlySwitches++
		c.met.predictiveEarly.Inc()
	}
	c.initiateSwitch(cl, d)
}

// initiateSwitch sends stop(c) to the serving AP and arms the timeout.
// The decision's cause and from/to figures (medians, or predicted ESNRs
// for an early switch) are recorded on the span.
func (c *Controller) initiateSwitch(cl *clientCtl, d selector.Decision) {
	if !c.apAlive(cl.serving) {
		// A stop to a dead AP would only feed the retransmission loop;
		// recover via the direct-start failover path instead.
		c.forceSwitch(cl, 0)
		return
	}
	c.switchSeq++
	op := &switchOp{id: c.switchSeq, from: cl.serving, to: d.Target, sentAt: c.clk.Now()}
	cl.op = op
	c.Stats.SwitchesStarted++
	c.met.switchesStarted.Inc()
	if c.met.spans != nil {
		c.met.spans.Begin(op.id, int64(op.sentAt), cl.mac.String(),
			op.from, op.to, d.Cause, d.FromMetric, d.ToMetric)
	}
	c.sendStop(cl, op)
}

func (c *Controller) sendStop(cl *clientCtl, op *switchOp) {
	op.attempts++
	stop := &packet.Stop{Client: cl.mac, NextAP: c.aps[op.to].IP, SwitchID: op.id}
	_ = c.bh.Send(c.addr, c.aps[op.from].IP, stop)
	op.timer = c.clk.After(c.cfg.SwitchTimeout, func() {
		if cl.op == op {
			c.Stats.StopRetransmits++
			c.met.stopRetransmits.Inc()
			c.met.spans.AddRetransmit(op.id)
			c.sendStop(cl, op)
		}
	})
}

// handleSwitchAck completes the in-flight switch.
func (c *Controller) handleSwitchAck(m *packet.SwitchAck) {
	cl := c.clients[m.Client]
	if cl == nil || cl.op == nil || cl.op.id != m.SwitchID {
		return
	}
	op := cl.op
	op.timer.Stop()
	cl.op = nil
	cl.serving = op.to
	c.sel.SetServing(cl.mac, op.to)
	cl.lastSwitch = c.clk.Now()
	rec := SwitchRecord{
		At:       c.clk.Now(),
		Client:   cl.mac,
		From:     op.from,
		To:       op.to,
		Duration: c.clk.Now() - op.sentAt,
		Attempts: op.attempts,
		Forced:   op.forced,
	}
	c.Stats.SwitchesDone++
	c.met.switchesDone.Inc()
	c.met.spans.End(op.id, int64(rec.At))
	if op.recoveryID != 0 {
		// First rescued client's ack closes the incident's recovery span.
		c.met.recoverySpans.End(op.recoveryID, int64(rec.At))
	}
	c.History = append(c.History, rec)
	if c.OnSwitch != nil {
		c.OnSwitch(rec)
	}
}

// handleUplink de-duplicates and forwards one tunneled uplink packet.
func (c *Controller) handleUplink(m *packet.UpData) {
	p := m.Pkt
	cl := c.clients[p.ClientMAC]
	key := packet.KeyOf(p)
	if cl != nil {
		if _, dup := cl.dedup[key]; dup {
			cl.UplinkDuplicate++
			c.Stats.UplinkDuplicate++
			c.met.dedupHits.Inc()
			return
		}
		cl.dedup[key] = struct{}{}
		c.dedupEntries++
		cl.dedupFIFO = append(cl.dedupFIFO, key)
		if len(cl.dedupFIFO) > c.cfg.DedupCapacity {
			old := cl.dedupFIFO[0]
			cl.dedupFIFO = cl.dedupFIFO[1:]
			delete(cl.dedup, old)
			c.dedupEntries--
		}
		cl.UplinkUnique++
		c.met.dedupMisses.Inc()
		c.met.dedupSize.Set(float64(c.dedupEntries))
	}
	c.Stats.UplinkUnique++
	if c.DeliverUplink != nil {
		c.DeliverUplink(p, c.clk.Now())
	}
}

// ClientUplinkCounts returns (unique, duplicate) uplink packet counts for a
// client.
func (c *Controller) ClientUplinkCounts(mac packet.MACAddr) (unique, dup uint64) {
	cl := c.clients[mac]
	if cl == nil {
		return 0, 0
	}
	return cl.UplinkUnique, cl.UplinkDuplicate
}
