package controller

import (
	"fmt"

	"wgtt/internal/metrics"
	"wgtt/internal/packet"
	"wgtt/internal/sim"
)

// This file is the controller's failure-recovery half (DESIGN.md §11): the
// AP health monitor, the forced-failover path that rescues clients off a
// dead AP without the dead AP's cooperation, and the controller's own
// crash/recover hooks for chaos injection.
//
// The monitor is passive first: every backhaul message an AP sends — CSI
// reports, tunneled uplink, switch acks — refreshes its last-heard time, so
// under normal traffic liveness costs nothing. An AP quiet for a full
// HealthInterval gets an explicit HealthProbe; that distinguishes "alive
// but hears no clients" (answers the probe over the wired backhaul) from
// "dead" (answers nothing). Silence through DetectTimeout marks the AP
// dead: it is excluded from selection and fan-out, and every client it was
// serving — or mid-handshake with — is force-switched to the best alive AP
// with a direct start(c, k). The stop half of §3.1.2 is skipped because a
// dead AP can neither answer a stop nor tell anyone its cursor k; the
// controller substitutes its own next index, accepting that packets only
// the dead AP had left unsent are lost (the transport retransmits). Any
// later message from a dead AP re-admits it instantly.

// apHealth is one AP's liveness state.
type apHealth struct {
	lastHeard sim.Time
	alive     bool
	deadSince sim.Time
	// recoveryID is the recovery span opened by the latest death (0 none).
	recoveryID uint32
}

// apAlive reports whether the AP is considered alive. With the monitor
// disabled every AP is alive — the chaos-free fast path.
func (c *Controller) apAlive(id int) bool {
	if c.health == nil || id < 0 || id >= len(c.health) {
		return true
	}
	return c.health[id].alive
}

// APAlive reports the health monitor's verdict on one AP (always true when
// the monitor is disabled). Evaluation hook.
func (c *Controller) APAlive(id int) bool { return c.apAlive(id) }

// noteAPAlive refreshes the sender's last-heard time and re-admits it if
// it had been marked dead.
func (c *Controller) noteAPAlive(from packet.IPv4Addr) {
	if c.health == nil {
		return
	}
	id, ok := c.ipToAP[from]
	if !ok {
		return
	}
	h := &c.health[id]
	h.lastHeard = c.clk.Now()
	if !h.alive {
		h.alive = true
		c.Stats.APsReadmitted++
		c.met.apsReadmitted.Inc()
	}
}

// healthTick is the periodic monitor scan: probe APs quiet for a full
// interval, declare dead those quiet through the detection timeout.
func (c *Controller) healthTick() {
	if !c.down {
		now := c.clk.Now()
		for id := range c.health {
			h := &c.health[id]
			silent := now - h.lastHeard
			if h.alive && silent >= c.cfg.DetectTimeout {
				c.markAPDead(id)
			}
			if silent >= c.cfg.HealthInterval {
				// Quiet for a full tick (dead APs included — the probe
				// doubles as the re-admission ping): ask explicitly.
				c.probeSeq++
				c.Stats.HealthProbes++
				c.met.healthProbes.Inc()
				probe := &packet.HealthProbe{Seq: c.probeSeq, At: int64(now)}
				_ = c.bh.Send(c.addr, c.aps[id].IP, probe)
			}
		}
	}
	c.clk.After(c.cfg.HealthInterval, c.healthTick)
}

// markAPDead declares one AP dead and rescues its clients.
func (c *Controller) markAPDead(id int) {
	h := &c.health[id]
	h.alive = false
	h.deadSince = c.clk.Now()
	c.Stats.APsMarkedDead++
	c.met.apsMarkedDead.Inc()

	// Collect the stranded clients first (in registration order — the map
	// would be nondeterministic): those served by the dead AP, and those
	// whose in-flight switch touches it.
	var stranded []*clientCtl
	for _, mac := range c.clientOrder {
		cl := c.clients[mac]
		if cl.serving == id || (cl.op != nil && (cl.op.from == id || cl.op.to == id)) {
			stranded = append(stranded, cl)
		}
	}
	h.recoveryID = 0
	if len(stranded) > 0 {
		c.recoverySeq++
		h.recoveryID = c.recoverySeq
		if c.met.recoverySpans != nil {
			c.met.recoverySpans.Begin(h.recoveryID, int64(h.deadSince),
				fmt.Sprintf("ap%d", id+1), id, -1, metrics.CauseAPFailure, 0, 0)
		}
	}
	for _, cl := range stranded {
		c.forceSwitch(cl, h.recoveryID)
	}
}

// pickFailover selects the best alive AP for a stranded client: highest
// in-window median ESNR (any sample count — a stranded client cannot be
// choosy, so MinSamples and MinSwitchESNRdB do not gate here), falling
// back to the alive AP that heard the client most recently, then to the
// lowest-numbered alive AP. Returns -1 only when every AP is dead.
func (c *Controller) pickFailover(cl *clientCtl) int {
	now := c.clk.Now()
	best := c.sel.BestAlive(cl.mac, now, c.aliveFn)
	if best != -1 {
		return best
	}
	for id := range cl.lastHeard {
		if !c.apAlive(id) || !cl.heardEver[id] {
			continue
		}
		if best == -1 || cl.lastHeard[id] > cl.lastHeard[best] {
			best = id
		}
	}
	if best != -1 {
		return best
	}
	for id := range c.aps {
		if c.apAlive(id) {
			return id
		}
	}
	return -1
}

// forceSwitch moves a stranded client to the best alive AP via a direct
// start. recoveryID (0 = none) ties the op to its incident's recovery span.
func (c *Controller) forceSwitch(cl *clientCtl, recoveryID uint32) {
	to := c.pickFailover(cl)
	if to < 0 {
		// Every AP is dead. Drop any op aimed at a dead target; the next
		// health tick (or a re-admission) retries while the outage lasts.
		if cl.op != nil && !c.apAlive(cl.op.to) {
			cl.op.timer.Stop()
			cl.op = nil
		}
		return
	}
	if op := cl.op; op != nil {
		if op.to == to {
			// Overlapping-switch guard: a handshake toward this AP is
			// already pending. Escalate the SAME op to a direct start —
			// same SwitchID, no second switch toward the same AP.
			if !op.forced {
				op.forced = true
				op.recoveryID = recoveryID
				op.timer.Stop()
				c.Stats.ForcedSwitches++
				c.met.forcedSwitches.Inc()
				c.met.recoverySpans.MarkStartHandled(recoveryID, int64(c.clk.Now()))
				c.sendForcedStart(cl, op)
			}
			return
		}
		// The in-flight op's target is unusable (it died): abandon it and
		// open a fresh forced op toward the new pick.
		op.timer.Stop()
		cl.op = nil
	}
	c.switchSeq++
	now := c.clk.Now()
	op := &switchOp{
		id: c.switchSeq, from: cl.serving, to: to,
		sentAt: now, forced: true, recoveryID: recoveryID,
	}
	cl.op = op
	c.Stats.SwitchesStarted++
	c.Stats.ForcedSwitches++
	c.met.switchesStarted.Inc()
	c.met.forcedSwitches.Inc()
	if c.met.spans != nil {
		toMed, _ := c.sel.Median(cl.mac, to, now)
		c.met.spans.Begin(op.id, int64(now), cl.mac.String(),
			op.from, op.to, metrics.CauseFailover, 0, toMed)
	}
	c.met.recoverySpans.MarkStartHandled(recoveryID, int64(now))
	c.sendForcedStart(cl, op)
}

// sendForcedStart sends start(c, k) straight to the failover target, with
// k = the controller's own next index: the dead AP's cursor is unknowable
// (that is the no-ack case), so recovery resumes at the head of the stream
// and cedes the dead AP's unsent backlog to transport retransmission.
func (c *Controller) sendForcedStart(cl *clientCtl, op *switchOp) {
	op.attempts++
	start := &packet.Start{Client: cl.mac, Index: cl.nextIndex, SwitchID: op.id}
	_ = c.bh.Send(c.addr, c.aps[op.to].IP, start)
	op.timer = c.clk.After(c.cfg.SwitchTimeout, func() {
		if cl.op != op {
			return
		}
		c.Stats.ForcedStartRetransmits++
		c.met.forcedStartRtx.Inc()
		c.met.spans.AddRetransmit(op.id)
		if !c.apAlive(op.to) {
			// The failover target died too: retarget from scratch.
			cl.op = nil
			c.forceSwitch(cl, op.recoveryID)
			return
		}
		c.sendForcedStart(cl, op)
	})
}

// Fail models a controller crash (chaos injection): the controller stops
// hearing the backhaul and forwarding downlink, and its soft state — the
// in-flight switch handshakes — dies with it. Client registrations are
// durable (§4.3 replicates association state to every AP, the store a
// restarted controller re-reads), so Recover keeps them.
func (c *Controller) Fail() {
	if c.down {
		return
	}
	c.down = true
	for _, mac := range c.clientOrder {
		cl := c.clients[mac]
		if cl.op != nil {
			cl.op.timer.Stop()
			cl.op = nil
		}
	}
}

// Recover restarts the controller with cold soft state: fresh ESNR
// windows, fanout knowledge, dedup sets, and index counters. Every AP's
// silence clock restarts at the recovery instant so the monitor does not
// mass-declare deaths for the outage the controller itself caused.
func (c *Controller) Recover() {
	if !c.down {
		return
	}
	c.down = false
	now := c.clk.Now()
	for _, mac := range c.clientOrder {
		cl := c.clients[mac]
		c.sel.ResetClient(mac)
		for i := range cl.lastHeard {
			cl.lastHeard[i] = 0
			cl.heardEver[i] = false
		}
		cl.fanReset()
		c.dedupEntries -= len(cl.dedup)
		cl.dedup = make(map[packet.DedupKey]struct{}, c.cfg.DedupCapacity)
		cl.dedupFIFO = nil
		cl.lastSwitch = 0
		cl.nextIndex = 0
	}
	c.met.dedupSize.Set(float64(c.dedupEntries))
	for i := range c.health {
		c.health[i].alive = true
		c.health[i].lastHeard = now
	}
}

// Down reports whether the controller is currently crashed.
func (c *Controller) Down() bool { return c.down }
