package controller

import (
	"math/rand/v2"
	"sort"
	"testing"

	"wgtt/internal/sim"
)

// refWindow is the pre-optimization implementation — slice eviction plus a
// copy+sort per median — kept as the golden reference for the incremental
// order-statistic window.
type refWindow struct {
	at   []sim.Time
	val  []float64
	span sim.Time
}

func (w *refWindow) push(at sim.Time, esnr float64) {
	w.at = append(w.at, at)
	w.val = append(w.val, esnr)
	w.evict(at)
}

func (w *refWindow) evict(now sim.Time) {
	cut := 0
	for cut < len(w.at) && w.at[cut] < now-w.span {
		cut++
	}
	if cut > 0 {
		w.at = append(w.at[:0], w.at[cut:]...)
		w.val = append(w.val[:0], w.val[cut:]...)
	}
}

func (w *refWindow) median(now sim.Time) (float64, bool) {
	w.evict(now)
	n := len(w.val)
	if n == 0 {
		return 0, false
	}
	scratch := make([]float64, n)
	copy(scratch, w.val)
	sort.Float64s(scratch)
	return scratch[n/2], true
}

// The incremental window must agree exactly with the sort-based reference
// under a randomized schedule of pushes, quiet gaps, and median queries —
// including windows that fully drain and duplicate values.
func TestWindowMatchesReference(t *testing.T) {
	rnd := rand.New(rand.NewPCG(41, 43))
	span := 10 * sim.Millisecond
	w := newWindow(span)
	ref := &refWindow{span: span}

	now := sim.Time(0)
	for i := 0; i < 20000; i++ {
		// Mostly dense arrivals; occasionally a gap long enough to drain
		// the whole window.
		switch rnd.IntN(20) {
		case 0:
			now += sim.Time(rnd.Int64N(int64(3 * span)))
		default:
			now += sim.Time(rnd.Int64N(int64(span / 8)))
		}
		// Quantized values force duplicates into the multiset.
		v := float64(rnd.IntN(64)) / 4
		w.push(now, v)
		ref.push(now, v)

		if w.size() != len(ref.val) {
			t.Fatalf("step %d: size %d, reference %d", i, w.size(), len(ref.val))
		}
		// Query at a probe time at or after the last push.
		probe := now + sim.Time(rnd.Int64N(int64(span/4)))
		gm, gok := w.median(probe)
		rm, rok := ref.median(probe)
		if gok != rok || gm != rm {
			t.Fatalf("step %d: median(%v) = (%v,%v), reference (%v,%v)", i, probe, gm, gok, rm, rok)
		}
		if gl, gok := w.lastHeard(); gok {
			if rl := ref.at[len(ref.at)-1]; gl != rl {
				t.Fatalf("step %d: lastHeard %v, reference %v", i, gl, rl)
			}
		} else if len(ref.at) != 0 {
			t.Fatalf("step %d: lastHeard empty, reference has %d", i, len(ref.at))
		}
	}
}

// A steady-state push+median cycle must not allocate once the window's
// buffers have reached their high-water capacity.
func TestWindowZeroAllocSteadyState(t *testing.T) {
	span := 10 * sim.Millisecond
	w := newWindow(span)
	now := sim.Time(0)
	step := 100 * sim.Microsecond
	val := func(i int) float64 { return float64(i%37) / 4 }
	for i := 0; i < 1024; i++ { // warm to steady size (~100 entries)
		now += step
		w.push(now, val(i))
		w.median(now)
	}
	i := 0
	if avg := testing.AllocsPerRun(500, func() {
		i++
		now += step
		w.push(now, val(i))
		if _, ok := w.median(now); !ok {
			t.Fatal("window drained unexpectedly")
		}
	}); avg != 0 {
		t.Errorf("steady-state push+median allocates %.2f times per sample, want 0", avg)
	}
}
