package runtime

import (
	"sync"
	"testing"
	"time"

	"wgtt/internal/sim"
)

// The virtual clock must be a transparent view of the engine: same clock,
// same ordering, pass-through timers.
func TestVirtualDelegatesToEngine(t *testing.T) {
	eng := sim.NewEngine()
	clk := Virtual(eng)
	if clk.Now() != 0 {
		t.Fatalf("Now = %v at start", clk.Now())
	}
	var order []int
	clk.After(2*sim.Millisecond, func() { order = append(order, 2) })
	clk.After(sim.Millisecond, func() { order = append(order, 1) })
	tm := clk.After(3*sim.Millisecond, func() { order = append(order, 3) })
	if !tm.Active() {
		t.Error("armed timer reports inactive")
	}
	if tm.When() != 3*sim.Millisecond {
		t.Errorf("When = %v", tm.When())
	}
	if !tm.Stop() {
		t.Error("Stop on armed timer reported false")
	}
	eng.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Errorf("order = %v, want [1 2]", order)
	}
	if eng.Now() != 2*sim.Millisecond {
		t.Errorf("engine advanced to %v", eng.Now())
	}
}

// Same-instant callbacks on the wall clock must fire in scheduling order —
// the simulator's FIFO tiebreak, preserved on the live substrate.
func TestWallFIFOAtSameInstant(t *testing.T) {
	w := NewWall()
	var mu sync.Mutex
	var order []int
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		i := i
		w.After(0, func() {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		})
	}
	w.After(sim.Millisecond, func() {
		close(done)
		w.Stop()
	})
	go w.Run()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("wall clock never dispatched")
	}
	mu.Lock()
	defer mu.Unlock()
	for i, got := range order {
		if got != i {
			t.Fatalf("dispatch order = %v, want ascending", order)
		}
	}
}

// Timers must honour real delays (coarsely — CI schedulers jitter) and
// deliver Now() values consistent with those delays.
func TestWallDelaysElapse(t *testing.T) {
	w := NewWall()
	var at sim.Time
	done := make(chan struct{})
	w.After(20*sim.Millisecond, func() {
		at = w.Now()
		close(done)
		w.Stop()
	})
	go w.Run()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("timer never fired")
	}
	if at < 20*sim.Millisecond {
		t.Errorf("fired at %v, before its 20ms deadline", at)
	}
}

// Stop on a pending wall timer must prevent the callback; a second Stop
// reports false; Active tracks the lifecycle.
func TestWallTimerStop(t *testing.T) {
	w := NewWall()
	fired := make(chan struct{}, 1)
	tm := w.After(30*sim.Millisecond, func() { fired <- struct{}{} })
	if !tm.Active() {
		t.Error("pending timer inactive")
	}
	if !tm.Stop() {
		t.Error("first Stop reported false")
	}
	if tm.Stop() {
		t.Error("second Stop reported true")
	}
	if tm.Active() {
		t.Error("stopped timer still active")
	}
	done := make(chan struct{})
	w.After(60*sim.Millisecond, func() {
		close(done)
		w.Stop()
	})
	go w.Run()
	<-done
	select {
	case <-fired:
		t.Error("cancelled timer fired")
	default:
	}
}

// A timer armed earlier than the one the run loop is sleeping toward must
// preempt that sleep — the wake-on-new-head path.
func TestWallEarlierTimerPreemptsSleep(t *testing.T) {
	w := NewWall()
	var mu sync.Mutex
	var order []string
	done := make(chan struct{})
	go w.Run()
	w.After(200*sim.Millisecond, func() {
		mu.Lock()
		order = append(order, "late")
		mu.Unlock()
		close(done)
		w.Stop()
	})
	time.Sleep(5 * time.Millisecond) // let the loop start sleeping toward 200ms
	w.After(10*sim.Millisecond, func() {
		mu.Lock()
		order = append(order, "early")
		mu.Unlock()
	})
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("run loop stalled")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != "early" {
		t.Errorf("order = %v, want early before late", order)
	}
}

// After must be callable concurrently from many goroutines (the UDP receive
// path does this) without losing callbacks.
func TestWallConcurrentAfter(t *testing.T) {
	w := NewWall()
	const n = 64
	var mu sync.Mutex
	seen := 0
	var wg sync.WaitGroup
	go w.Run()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.After(sim.Millisecond, func() {
				mu.Lock()
				seen++
				mu.Unlock()
			})
		}()
	}
	wg.Wait()
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		got := seen
		mu.Unlock()
		if got == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d callbacks ran", got, n)
		}
		time.Sleep(time.Millisecond)
	}
	w.Stop()
}

// Pending must count live events only.
func TestWallPending(t *testing.T) {
	w := NewWall()
	a := w.After(sim.Second, func() {})
	w.After(sim.Second, func() {})
	if got := w.Pending(); got != 2 {
		t.Fatalf("Pending = %d, want 2", got)
	}
	a.Stop()
	if got := w.Pending(); got != 1 {
		t.Fatalf("Pending after cancel = %d, want 1", got)
	}
	w.Stop()
}
