// Package runtime abstracts the event loop under the WGTT protocol cores,
// so the controller's §3.1.1 selection rule, the §3.1.2 stop→start→ack
// switching protocol, and the APs' §3.2 forwarding logic can run unchanged
// on two substrates: the discrete-event simulator (virtual time, fully
// deterministic — every evaluation run in §5) and a wall-clock driver that
// paces the same timers against real time for multi-process deployments
// over a real backhaul (cmd/wgtt-live).
//
// The contract, on both substrates, is the one-event-at-a-time execution
// model of DESIGN.md §5 and §12: every callback handed to a Clock runs on a
// single goroutine, never concurrently with another callback from the same
// Clock, so protocol code needs no locks. Virtual time additionally
// guarantees bit-for-bit determinism; wall time trades that for realness —
// same code, same timers, real nondeterministic arrival order.
package runtime

import "wgtt/internal/sim"

// Clock schedules the protocol cores' timers: Now for timestamps, After to
// arm a callback, and cancellation through the returned Timer's Stop. It is
// implemented by the virtual-time simulator (Virtual) and by the wall-clock
// driver (Wall).
//
// Callbacks run one at a time on the clock's run-loop goroutine. After is
// safe to call from any goroutine on a Wall clock (transport receive paths
// use it to post inbound work onto the loop); on a Virtual clock it must be
// called from simulation context, like the sim.Engine it wraps.
type Clock interface {
	// Now returns the current time: virtual nanoseconds since scenario
	// start, or wall nanoseconds since the driver started.
	Now() sim.Time
	// After schedules fn to run once, d from now (d = 0 means as soon as
	// possible, after already-due work; negative delays are a caller bug —
	// the virtual clock panics exactly like sim.Engine). The returned
	// Timer cancels it.
	After(d sim.Time, fn func()) Timer
}

// Timer is a handle to one scheduled callback. Implementations' zero/inert
// handles report Stop and Active false; a nil Timer must not be used.
type Timer interface {
	// Stop cancels the callback if it has not run yet, reporting whether
	// the cancellation prevented it from running.
	Stop() bool
	// Active reports whether the callback is still scheduled.
	Active() bool
	// When returns the time the callback fires (or fired).
	When() sim.Time
}

// virtualClock adapts *sim.Engine to Clock. The adaptation is transparent:
// After delegates to Engine.After, so scheduling order, same-instant FIFO
// ordering, and panics on negative delays are exactly the engine's, and a
// simulation driven through the Clock interface is byte-identical to one
// driven against the engine directly.
type virtualClock struct{ eng *sim.Engine }

// Virtual returns the virtual-time Clock backed by the given engine.
// sim.Timer already satisfies Timer, so handles pass through unwrapped.
func Virtual(eng *sim.Engine) Clock { return virtualClock{eng} }

// Now implements Clock.
func (v virtualClock) Now() sim.Time { return v.eng.Now() }

// After implements Clock.
func (v virtualClock) After(d sim.Time, fn func()) Timer { return v.eng.After(d, fn) }
