package runtime

import (
	"container/heap"
	"sync"
	"time"

	"wgtt/internal/sim"
)

// Wall is the wall-clock Clock: the driver that runs the protocol cores in
// real time for live multi-process deployments (DESIGN.md §12). It mirrors
// the simulator's execution model — a single run-loop goroutine dispatches
// callbacks one at a time, same-instant callbacks fire in scheduling order —
// but the clock it paces them against is the operating system's, so timers
// like the §3.1.2 30 ms stop-retransmission timeout become real deadlines.
//
// Unlike the virtual clock, After is safe to call from any goroutine: the
// UDP backhaul's receive path posts inbound messages onto the loop with
// After(0, ...), which is what serializes transport concurrency into the
// lock-free protocol cores.
type Wall struct {
	start time.Time

	mu   sync.Mutex
	heap wallHeap
	seq  uint64

	// wake nudges the run loop when a new event may precede the deadline it
	// is sleeping toward; quit ends Run.
	wake     chan struct{}
	quit     chan struct{}
	quitOnce sync.Once
}

// NewWall returns a wall clock whose time zero is now. Call Run (usually on
// the main goroutine) to start dispatching.
func NewWall() *Wall {
	return &Wall{
		start: time.Now(),
		wake:  make(chan struct{}, 1),
		quit:  make(chan struct{}),
	}
}

// Now implements Clock: nanoseconds of wall time since NewWall.
func (w *Wall) Now() sim.Time { return sim.Time(time.Since(w.start)) }

// wallEvent is one scheduled callback. fn == nil marks it cancelled or
// consumed; the pointer doubles as the Timer handle.
type wallEvent struct {
	w   *Wall
	at  sim.Time
	seq uint64
	fn  func()
}

// Stop implements Timer.
func (e *wallEvent) Stop() bool {
	e.w.mu.Lock()
	defer e.w.mu.Unlock()
	if e.fn == nil {
		return false
	}
	e.fn = nil // the run loop drops cancelled events lazily
	return true
}

// Active implements Timer.
func (e *wallEvent) Active() bool {
	e.w.mu.Lock()
	defer e.w.mu.Unlock()
	return e.fn != nil
}

// When implements Timer.
func (e *wallEvent) When() sim.Time { return e.at }

// After implements Clock. Negative delays are clamped to zero: on a wall
// clock "in the past" just means "as soon as possible", and external
// callers racing the clock cannot be expected to win.
func (w *Wall) After(d sim.Time, fn func()) Timer {
	if fn == nil {
		panic("runtime: After called with nil function")
	}
	if d < 0 {
		d = 0
	}
	ev := &wallEvent{w: w, at: w.Now() + d, fn: fn}
	w.mu.Lock()
	ev.seq = w.seq
	w.seq++
	heap.Push(&w.heap, ev)
	first := w.heap[0] == ev
	w.mu.Unlock()
	if first {
		// Only a new head can move the run loop's next deadline earlier.
		select {
		case w.wake <- struct{}{}:
		default:
		}
	}
	return ev
}

// Run dispatches callbacks in (time, scheduling order) until Stop is
// called. All callbacks execute on the calling goroutine, one at a time —
// the live-mode counterpart of the simulator's single-threaded event loop.
func (w *Wall) Run() {
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		fn, wait, idle := w.next()
		if fn != nil {
			fn()
			continue
		}
		if idle {
			select {
			case <-w.wake:
			case <-w.quit:
				return
			}
			continue
		}
		timer.Reset(wait)
		select {
		case <-w.wake:
			if !timer.Stop() {
				<-timer.C
			}
		case <-timer.C:
		case <-w.quit:
			if !timer.Stop() {
				<-timer.C
			}
			return
		}
	}
}

// next pops one due callback, or reports how long to sleep until the head
// is due (idle when the queue is empty).
func (w *Wall) next() (fn func(), wait time.Duration, idle bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for len(w.heap) > 0 {
		head := w.heap[0]
		if head.fn == nil { // cancelled: discard and keep looking
			heap.Pop(&w.heap)
			continue
		}
		if d := head.at - w.Now(); d > 0 {
			return nil, time.Duration(d), false
		}
		heap.Pop(&w.heap)
		fn = head.fn
		head.fn = nil
		return fn, 0, false
	}
	return nil, 0, true
}

// Stop ends Run (idempotent, callable from any goroutine — including a
// callback on the run loop itself, which is how a live node winds down
// after its last protocol step).
func (w *Wall) Stop() { w.quitOnce.Do(func() { close(w.quit) }) }

// Pending returns the number of live (non-cancelled) scheduled callbacks.
func (w *Wall) Pending() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := 0
	for _, ev := range w.heap {
		if ev.fn != nil {
			n++
		}
	}
	return n
}

// wallHeap is a min-heap of events ordered by (at, seq) — identical
// tie-breaking to the simulator's event queue, so same-instant callbacks
// fire in the order they were scheduled.
type wallHeap []*wallEvent

func (h wallHeap) Len() int { return len(h) }
func (h wallHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h wallHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *wallHeap) Push(x any)   { *h = append(*h, x.(*wallEvent)) }
func (h *wallHeap) Pop() any {
	old := *h
	n := len(old) - 1
	ev := old[n]
	old[n] = nil
	*h = old[:n]
	return ev
}
