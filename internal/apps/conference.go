package apps

import (
	"wgtt/internal/sim"
	"wgtt/internal/stats"
	"wgtt/internal/transport"
)

// ConferenceConfig describes one direction of a real-time video call.
type ConferenceConfig struct {
	// FPS is the camera frame rate the application tries to deliver.
	FPS int
	// FrameBytes is the encoded size of one frame. Skype-style HD frames
	// are large (harder to complete); Hangouts-style reduced-resolution
	// frames are small — which is exactly why the paper's Fig. 24 shows
	// Hangouts reaching a much higher delivered fps.
	FrameBytes int
	// PacketBytes is the datagram size frames are fragmented into.
	PacketBytes int
	// Deadline is how late a frame's last packet may arrive and still
	// count for its playback second.
	Deadline sim.Time
}

// SkypeLike returns a 30 fps HD-frame configuration.
func SkypeLike() ConferenceConfig {
	return ConferenceConfig{FPS: 30, FrameBytes: 12000, PacketBytes: 1200, Deadline: 150 * sim.Millisecond}
}

// HangoutsLike returns a 60 fps reduced-resolution configuration (the
// paper notes Hangouts "automatically reduces image resolution").
func HangoutsLike() ConferenceConfig {
	return ConferenceConfig{FPS: 60, FrameBytes: 3000, PacketBytes: 1200, Deadline: 150 * sim.Millisecond}
}

// PacketsPerFrame returns the fragment count of one frame.
func (c ConferenceConfig) PacketsPerFrame() int {
	n := (c.FrameBytes + c.PacketBytes - 1) / c.PacketBytes
	if n < 1 {
		n = 1
	}
	return n
}

// RateMbps returns the stream's on-the-wire bit rate.
func (c ConferenceConfig) RateMbps() float64 {
	return float64(c.FPS*c.PacketsPerFrame()*c.PacketBytes) * 8 / 1e6
}

// ConferenceResult is the delivered-frame-rate analysis of one direction.
type ConferenceResult struct {
	// PerSecondFPS holds the number of complete, on-time frames delivered
	// in each second of the session — the samples behind Fig. 24's CDF.
	PerSecondFPS []float64
}

// CDF builds the frame-rate distribution.
func (r ConferenceResult) CDF() *stats.CDF {
	c := &stats.CDF{}
	c.AddAll(r.PerSecondFPS)
	return c
}

// AnalyzeConference reconstructs frames from a recorded UDP arrival log
// (Record must have been enabled on the receiver): frame i consists of
// packets with Seq in [i·k, (i+1)·k); it counts for its source second if
// all k fragments arrived by the frame time plus the deadline.
func AnalyzeConference(cfg ConferenceConfig, arrivals []transport.Arrival, duration sim.Time) ConferenceResult {
	k := cfg.PacketsPerFrame()
	frameInterval := sim.Second / sim.Time(cfg.FPS)
	nFrames := int(duration / frameInterval)
	gotPkts := make(map[uint32]int)
	lastArrival := make(map[uint32]sim.Time)
	for _, a := range arrivals {
		f := a.Seq / uint32(k)
		gotPkts[f]++
		if a.At > lastArrival[f] {
			lastArrival[f] = a.At
		}
	}
	seconds := int(duration / sim.Second)
	if seconds < 1 {
		seconds = 1
	}
	perSec := make([]float64, seconds)
	for f := 0; f < nFrames; f++ {
		sent := sim.Time(f) * frameInterval
		sec := int(sent / sim.Second)
		if sec >= seconds {
			break
		}
		if gotPkts[uint32(f)] >= k && lastArrival[uint32(f)] <= sent+cfg.Deadline+frameInterval {
			perSec[sec]++
		}
	}
	return ConferenceResult{PerSecondFPS: perSec}
}
