package apps

import (
	"math"

	"wgtt/internal/sim"
	"wgtt/internal/transport"
)

// WebConfig describes a page-load workload.
type WebConfig struct {
	// PageBytes is the page weight; the paper loads the eBay home page,
	// 2.1 MB, from a local cache server.
	PageBytes int
	// MSS is the TCP segment payload size.
	MSS int
}

// DefaultWebConfig returns the §5.4 web-browsing workload.
func DefaultWebConfig() WebConfig {
	return WebConfig{PageBytes: 2_100_000, MSS: transport.DefaultMSS}
}

// Segments returns the transfer length in TCP segments.
func (w WebConfig) Segments() uint32 {
	return uint32((w.PageBytes + w.MSS - 1) / w.MSS)
}

// PageLoadSeconds converts a completion timestamp into the paper's Table 5
// metric: seconds from start, or +Inf when the page never finished within
// the drive (the paper prints "∞").
func PageLoadSeconds(start, done sim.Time, completed bool) float64 {
	if !completed {
		return math.Inf(1)
	}
	return (done - start).Seconds()
}
