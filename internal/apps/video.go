// Package apps models the paper's §5.4 case-study workloads on top of the
// transport layer: online video streaming (rebuffer ratio, Table 4),
// two-way video conferencing (frame rate CDF, Fig. 24), and web browsing
// (page load time, Table 5). Each model turns a delivered-data timeline
// into the QoE metric the paper reports.
package apps

import (
	"wgtt/internal/sim"
	"wgtt/internal/transport"
)

// VideoConfig describes a streamed video.
type VideoConfig struct {
	// BitrateMbps is the media bitrate (an HD 1280×720 stream ≈ 2.5 Mb/s).
	BitrateMbps float64
	// PreBuffer is the player's startup/rebuffer threshold (the paper sets
	// 1,500 ms).
	PreBuffer sim.Time
	// Tick is the playback simulation step.
	Tick sim.Time
}

// DefaultVideoConfig returns the §5.4 player settings.
func DefaultVideoConfig() VideoConfig {
	return VideoConfig{BitrateMbps: 2.5, PreBuffer: 1500 * sim.Millisecond, Tick: 10 * sim.Millisecond}
}

// VideoResult summarizes a playback session.
type VideoResult struct {
	// RebufferRatio is stall time divided by session duration — the
	// paper's Table 4 metric. Initial buffering does not count.
	RebufferRatio float64
	// Stalls is the number of distinct rebuffering events.
	Stalls int
	// StallTime is the cumulative stalled duration after playback began.
	StallTime sim.Time
	// Started reports whether playback ever began.
	Started bool
}

// PlayVideo replays a player against a receiver's delivery timeline:
// playback begins once PreBuffer worth of media has arrived, then consumes
// BitrateMbps; when the buffer runs dry the player stalls (one rebuffer)
// and waits for PreBuffer to refill, like the paper's VLC setup.
//
// progress is the TCP receiver's in-order delivery trace (Record must have
// been enabled), segBytes the segment payload size, and duration the
// session length the ratio is normalized by.
func PlayVideo(cfg VideoConfig, progress []transport.ProgressSample, segBytes int, duration sim.Time) VideoResult {
	if cfg.Tick <= 0 {
		cfg.Tick = 10 * sim.Millisecond
	}
	var res VideoResult
	if duration <= 0 {
		return res
	}
	bytesPerSec := cfg.BitrateMbps * 1e6 / 8
	preBytes := bytesPerSec * cfg.PreBuffer.Seconds()

	pi := 0
	delivered := 0.0
	deliveredAt := func(t sim.Time) float64 {
		for pi < len(progress) && progress[pi].At <= t {
			delivered = float64(progress[pi].Segs) * float64(segBytes)
			pi++
		}
		return delivered
	}

	var played float64
	playing := false
	for t := sim.Time(0); t < duration; t += cfg.Tick {
		avail := deliveredAt(t) - played
		if playing {
			need := bytesPerSec * cfg.Tick.Seconds()
			if avail >= need {
				played += need
				continue
			}
			// Buffer dry: a rebuffer event begins.
			playing = false
			res.Stalls++
			res.StallTime += cfg.Tick
			continue
		}
		// Buffering (initial or rebuffer).
		if avail >= preBytes {
			playing = true
			res.Started = true
			continue
		}
		if res.Started {
			res.StallTime += cfg.Tick
		}
	}
	res.RebufferRatio = res.StallTime.Seconds() / duration.Seconds()
	return res
}
