package apps

import (
	"math"
	"testing"

	"wgtt/internal/sim"
	"wgtt/internal/transport"
)

// steadyProgress builds a delivery trace at a constant rate (Mb/s).
func steadyProgress(rateMbps float64, segBytes int, duration sim.Time) []transport.ProgressSample {
	var out []transport.ProgressSample
	bytesPerSec := rateMbps * 1e6 / 8
	segsPerSec := bytesPerSec / float64(segBytes)
	step := 50 * sim.Millisecond
	for t := step; t <= duration; t += step {
		out = append(out, transport.ProgressSample{
			At:   t,
			Segs: uint32(segsPerSec * t.Seconds()),
		})
	}
	return out
}

func TestVideoSmoothPlayback(t *testing.T) {
	cfg := DefaultVideoConfig() // 2.5 Mb/s
	dur := 20 * sim.Second
	// Delivery at 2× media rate: zero rebuffering.
	progress := steadyProgress(5.0, 1400, dur)
	res := PlayVideo(cfg, progress, 1400, dur)
	if !res.Started {
		t.Fatal("playback never started")
	}
	if res.RebufferRatio != 0 || res.Stalls != 0 {
		t.Errorf("smooth stream rebuffered: ratio=%v stalls=%d", res.RebufferRatio, res.Stalls)
	}
}

func TestVideoUnderprovisionedStalls(t *testing.T) {
	cfg := DefaultVideoConfig()
	dur := 30 * sim.Second
	// Delivery at 60% of the media rate: the player must stall often.
	progress := steadyProgress(1.5, 1400, dur)
	res := PlayVideo(cfg, progress, 1400, dur)
	if !res.Started {
		t.Fatal("playback never started")
	}
	if res.RebufferRatio < 0.2 {
		t.Errorf("rebuffer ratio = %v for a 40%% shortfall", res.RebufferRatio)
	}
	if res.Stalls == 0 {
		t.Error("no stall events recorded")
	}
}

func TestVideoOutageCausesRebuffer(t *testing.T) {
	cfg := DefaultVideoConfig()
	dur := 24 * sim.Second
	// Delivery barely above the media rate, with an 8-second hole in the
	// middle (a failed handover): the thin buffer lead cannot cover it.
	var progress []transport.ProgressSample
	segsPerSec := 2.75 * 1e6 / 8 / 1400
	for t := 50 * sim.Millisecond; t <= dur; t += 50 * sim.Millisecond {
		eff := t
		switch {
		case t > 8*sim.Second && t < 16*sim.Second:
			eff = 8 * sim.Second
		case t >= 16*sim.Second:
			eff = t - 8*sim.Second
		}
		progress = append(progress, transport.ProgressSample{At: t, Segs: uint32(segsPerSec * eff.Seconds())})
	}
	res := PlayVideo(cfg, progress, 1400, dur)
	if res.Stalls == 0 {
		t.Fatal("outage did not stall playback")
	}
	// Stall should be roughly the hole minus the buffered lead.
	if res.StallTime < 3*sim.Second || res.StallTime > 9*sim.Second {
		t.Errorf("stall time = %v", res.StallTime)
	}
}

func TestVideoNeverStarts(t *testing.T) {
	cfg := DefaultVideoConfig()
	res := PlayVideo(cfg, nil, 1400, 10*sim.Second)
	if res.Started || res.RebufferRatio != 0 {
		t.Errorf("empty stream: %+v", res)
	}
	if r := PlayVideo(cfg, nil, 1400, 0); r.Started {
		t.Error("zero duration should be inert")
	}
}

func TestConferenceConfigs(t *testing.T) {
	sk := SkypeLike()
	hg := HangoutsLike()
	if sk.PacketsPerFrame() != 10 {
		t.Errorf("skype packets/frame = %d", sk.PacketsPerFrame())
	}
	if hg.PacketsPerFrame() != 3 {
		t.Errorf("hangouts packets/frame = %d", hg.PacketsPerFrame())
	}
	// Rates are in a plausible video-call band.
	if sk.RateMbps() < 2 || sk.RateMbps() > 4 {
		t.Errorf("skype rate = %v", sk.RateMbps())
	}
	if hg.RateMbps() < 1 || hg.RateMbps() > 3 {
		t.Errorf("hangouts rate = %v", hg.RateMbps())
	}
	if (ConferenceConfig{FrameBytes: 1, PacketBytes: 1200}).PacketsPerFrame() != 1 {
		t.Error("tiny frame should be one packet")
	}
}

func TestConferencePerfectDelivery(t *testing.T) {
	cfg := HangoutsLike()
	dur := 5 * sim.Second
	k := cfg.PacketsPerFrame()
	frameInterval := sim.Second / sim.Time(cfg.FPS)
	var arrivals []transport.Arrival
	for f := 0; f < int(dur/frameInterval); f++ {
		base := sim.Time(f) * frameInterval
		for p := 0; p < k; p++ {
			arrivals = append(arrivals, transport.Arrival{
				At:  base + 10*sim.Millisecond,
				Seq: uint32(f*k + p),
			})
		}
	}
	res := AnalyzeConference(cfg, arrivals, dur)
	if len(res.PerSecondFPS) != 5 {
		t.Fatalf("seconds = %d", len(res.PerSecondFPS))
	}
	for i, fps := range res.PerSecondFPS {
		if fps < float64(cfg.FPS)-1 {
			t.Errorf("second %d: fps = %v, want ≈ %d", i, fps, cfg.FPS)
		}
	}
	cdf := res.CDF()
	if cdf.Quantile(0.5) < float64(cfg.FPS)-1 {
		t.Error("CDF median below nominal fps")
	}
}

func TestConferenceLossDropsFrames(t *testing.T) {
	cfg := SkypeLike()
	dur := 4 * sim.Second
	k := cfg.PacketsPerFrame()
	frameInterval := sim.Second / sim.Time(cfg.FPS)
	var arrivals []transport.Arrival
	for f := 0; f < int(dur/frameInterval); f++ {
		base := sim.Time(f) * frameInterval
		for p := 0; p < k; p++ {
			// Drop one fragment of every even frame.
			if f%2 == 0 && p == k-1 {
				continue
			}
			arrivals = append(arrivals, transport.Arrival{At: base + 5*sim.Millisecond, Seq: uint32(f*k + p)})
		}
	}
	res := AnalyzeConference(cfg, arrivals, dur)
	for i, fps := range res.PerSecondFPS {
		if fps > float64(cfg.FPS)/2+1 || fps < float64(cfg.FPS)/2-2 {
			t.Errorf("second %d: fps = %v, want ≈ %d", i, fps, cfg.FPS/2)
		}
	}
}

func TestConferenceLateFramesDontCount(t *testing.T) {
	cfg := HangoutsLike()
	dur := 2 * sim.Second
	k := cfg.PacketsPerFrame()
	frameInterval := sim.Second / sim.Time(cfg.FPS)
	var arrivals []transport.Arrival
	for f := 0; f < int(dur/frameInterval); f++ {
		base := sim.Time(f) * frameInterval
		for p := 0; p < k; p++ {
			// All fragments arrive one second late.
			arrivals = append(arrivals, transport.Arrival{At: base + sim.Second, Seq: uint32(f*k + p)})
		}
	}
	res := AnalyzeConference(cfg, arrivals, dur)
	for i, fps := range res.PerSecondFPS {
		if fps != 0 {
			t.Errorf("second %d: late frames counted (fps=%v)", i, fps)
		}
	}
}

func TestWebConfig(t *testing.T) {
	w := DefaultWebConfig()
	if w.Segments() != 1500 {
		t.Errorf("2.1 MB at 1400 B = %d segments, want 1500", w.Segments())
	}
	if got := PageLoadSeconds(sim.Second, 5*sim.Second, true); got != 4 {
		t.Errorf("load time = %v", got)
	}
	if got := PageLoadSeconds(sim.Second, 0, false); !math.IsInf(got, 1) {
		t.Errorf("incomplete load = %v, want +Inf", got)
	}
}
