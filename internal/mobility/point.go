// Package mobility models the road geometry and client motion of the WGTT
// testbed (§2, §4.2): a straight transit corridor with APs deployed
// alongside it at the §4.2 deployment's ~7.5 m mean spacing and vehicular
// clients driving past at the 0–35 mph speeds of the §5 drives. Traces
// report position, heading, and speed as pure functions of virtual time, so
// the radio layer can sample them at arbitrary (millisecond) granularity.
package mobility

import (
	"fmt"
	"math"
)

// Point is a position in the road plane, in meters. X runs along the road
// (direction of travel), Y across it (from the curb toward the AP side).
type Point struct {
	X, Y float64
}

// Add returns p + q componentwise.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p − q componentwise.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by k.
func (p Point) Scale(k float64) Point { return Point{p.X * k, p.Y * k} }

// Distance returns the Euclidean distance between p and q.
func (p Point) Distance(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Norm returns the Euclidean length of p as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// AngleTo returns the bearing, in radians, of the vector from p to q,
// measured counter-clockwise from the +X axis.
func (p Point) AngleTo(q Point) float64 { return math.Atan2(q.Y-p.Y, q.X-p.X) }

// String renders the point for debugging.
func (p Point) String() string { return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y) }

// MetersPerSecondPerMPH converts miles-per-hour into meters-per-second.
const MetersPerSecondPerMPH = 0.44704

// MPH converts a speed in miles per hour to meters per second. The paper
// quotes every experiment speed in mph (5–35 mph); simulation code works in
// SI units.
func MPH(v float64) float64 { return v * MetersPerSecondPerMPH }

// ToMPH converts a speed in meters per second to miles per hour.
func ToMPH(ms float64) float64 { return ms / MetersPerSecondPerMPH }
