package mobility

import "wgtt/internal/sim"

// Clip is a trace windowed to [From, To]: inside the window it follows
// Inner; outside it the client is parked at the window edge's position with
// zero velocity. The metro uses it to split one city-wide route into
// per-cell trace segments — each cell simulation sees the client frozen at
// its seam-crossing point before it arrives and after it leaves, so
// sampling a clipped trace outside the client's visit never extrapolates
// into another cell's geography.
type Clip struct {
	Inner    Trace
	From, To sim.Time
}

func (c Clip) clamp(t sim.Time) sim.Time {
	if t < c.From {
		return c.From
	}
	if t > c.To {
		return c.To
	}
	return t
}

// Position implements Trace.
func (c Clip) Position(t sim.Time) Point { return c.Inner.Position(c.clamp(t)) }

// Velocity implements Trace. It is zero outside the window.
func (c Clip) Velocity(t sim.Time) Point {
	if t < c.From || t > c.To {
		return Point{}
	}
	return c.Inner.Velocity(t)
}
