package mobility

import "wgtt/internal/sim"

// Testbed geometry constants mirroring the paper's deployment (§4, Fig. 9):
// eight APs on the third floor of an office building overlooking a side road
// with a 25 mph speed limit. AP1–AP4 are densely deployed (the paper's §2
// experiment measures 7.5 m between adjacent APs), AP5–AP8 more sparsely
// (Fig. 23 contrasts "dense" AP2–AP4 with "sparse" AP5–AP7).
const (
	// APSetback is the across-road distance (including building height
	// folded into the plane) from the client lane to the AP array, meters.
	APSetback = 12.0
	// DenseSpacing is the along-road spacing between adjacent dense APs.
	DenseSpacing = 7.5
	// SparseSpacing is the along-road spacing between adjacent sparse APs.
	SparseSpacing = 12.0
	// LaneY is the Y coordinate of the primary driving lane.
	LaneY = 0.0
	// SecondLaneY is the Y coordinate of the second lane (parallel driving).
	SecondLaneY = -3.0
	// FollowSpacing is the car-to-car gap in the following-driving pattern
	// of Fig. 19(a).
	FollowSpacing = 3.0
)

// DefaultAPPositions returns the positions of the eight testbed APs. The
// array starts densely spaced and opens up, giving the dense (AP2–AP4) and
// sparse (AP5–AP7) segments that Fig. 23 sweeps over. Indices are 0-based;
// the paper's "AP1" is element 0.
func DefaultAPPositions() []Point {
	xs := []float64{5, 12.5, 20, 27.5, 38, 50, 62, 70}
	pts := make([]Point, len(xs))
	for i, x := range xs {
		pts[i] = Point{X: x, Y: APSetback}
	}
	return pts
}

// ArraySpan returns the along-road X extent [min, max] of an AP array.
func ArraySpan(aps []Point) (minX, maxX float64) {
	if len(aps) == 0 {
		return 0, 0
	}
	minX, maxX = aps[0].X, aps[0].X
	for _, p := range aps[1:] {
		if p.X < minX {
			minX = p.X
		}
		if p.X > maxX {
			maxX = p.X
		}
	}
	return minX, maxX
}

// TransitDrive returns a drive that enters margin meters before the first AP
// and is long enough to exit margin meters after the last, at speedMPH.
func TransitDrive(aps []Point, speedMPH, margin float64) *LinearDrive {
	minX, _ := ArraySpan(aps)
	return DriveBy(minX-margin, LaneY, speedMPH)
}

// TransitDuration returns how long a client at speedMPH takes to traverse
// the AP array plus margin meters on both ends.
func TransitDuration(aps []Point, speedMPH, margin float64) sim.Time {
	minX, maxX := ArraySpan(aps)
	dist := (maxX - minX) + 2*margin
	return sim.FromSeconds(dist / MPH(speedMPH))
}

// Pattern names the multi-client driving patterns of Fig. 19.
type Pattern int

// The three multi-client patterns evaluated in Fig. 20.
const (
	// Following: cars in the same lane, FollowSpacing meters apart.
	Following Pattern = iota
	// Parallel: cars side by side in adjacent lanes.
	Parallel
	// Opposing: cars driving toward each other from opposite ends.
	Opposing
)

// String implements fmt.Stringer.
func (p Pattern) String() string {
	switch p {
	case Following:
		return "following"
	case Parallel:
		return "parallel"
	case Opposing:
		return "opposing"
	default:
		return "unknown"
	}
}

// PatternTraces builds n traces arranged in the given pattern through the AP
// array at speedMPH. For Opposing, clients alternate direction. margin is
// the entry/exit margin in meters.
func PatternTraces(p Pattern, n int, aps []Point, speedMPH, margin float64) []Trace {
	minX, maxX := ArraySpan(aps)
	traces := make([]Trace, 0, n)
	for i := 0; i < n; i++ {
		switch p {
		case Following:
			// Later cars start further back so car 0 leads.
			traces = append(traces, DriveBy(minX-margin-float64(i)*FollowSpacing, LaneY, speedMPH))
		case Parallel:
			lane := LaneY
			if i%2 == 1 {
				lane = SecondLaneY
			}
			// Side-by-side: same X, adjacent lanes (extra cars stagger).
			traces = append(traces, DriveBy(minX-margin-float64(i/2)*FollowSpacing, lane, speedMPH))
		case Opposing:
			if i%2 == 0 {
				traces = append(traces, DriveBy(minX-margin, LaneY, speedMPH))
			} else {
				d := DriveBy(maxX+margin, SecondLaneY, speedMPH)
				d.Vel.X = -d.Vel.X
				traces = append(traces, d)
			}
		}
	}
	return traces
}

// DenseArray returns n APs uniformly spaced along the road starting at
// startX — the §7 "large area deployment" layout (e.g. a tunnel or longer
// corridor), as opposed to the mixed-density testbed.
func DenseArray(n int, startX, spacing float64) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: startX + float64(i)*spacing, Y: APSetback}
	}
	return pts
}
