package mobility

import (
	"math"
	"testing"
	"testing/quick"

	"wgtt/internal/sim"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestPointOps(t *testing.T) {
	p := Point{3, 4}
	if p.Norm() != 5 {
		t.Errorf("Norm = %v, want 5", p.Norm())
	}
	if d := p.Distance(Point{0, 0}); d != 5 {
		t.Errorf("Distance = %v, want 5", d)
	}
	if q := p.Add(Point{1, 1}).Sub(Point{1, 1}); q != p {
		t.Errorf("Add/Sub roundtrip = %v, want %v", q, p)
	}
	if q := p.Scale(2); q != (Point{6, 8}) {
		t.Errorf("Scale = %v", q)
	}
	if a := (Point{0, 0}).AngleTo(Point{0, 1}); !almostEqual(a, math.Pi/2, 1e-12) {
		t.Errorf("AngleTo = %v, want π/2", a)
	}
}

func TestMPHConversion(t *testing.T) {
	if !almostEqual(MPH(25), 11.176, 1e-9) {
		t.Errorf("MPH(25) = %v", MPH(25))
	}
	if !almostEqual(ToMPH(MPH(15)), 15, 1e-12) {
		t.Errorf("round-trip mph failed")
	}
}

func TestStationary(t *testing.T) {
	s := Stationary{At: Point{1, 2}}
	if s.Position(5*sim.Second) != (Point{1, 2}) {
		t.Error("stationary moved")
	}
	if Speed(s, sim.Second) != 0 {
		t.Error("stationary has speed")
	}
}

func TestLinearDrive(t *testing.T) {
	d := DriveBy(0, 0, 25) // 25 mph = 11.176 m/s along +X
	p := d.Position(sim.Second)
	if !almostEqual(p.X, 11.176, 1e-9) || p.Y != 0 {
		t.Errorf("Position(1s) = %v", p)
	}
	if !almostEqual(Speed(d, sim.Second), MPH(25), 1e-12) {
		t.Errorf("Speed = %v", Speed(d, sim.Second))
	}
}

func TestLinearDriveDepart(t *testing.T) {
	d := DriveBy(10, 0, 10)
	d.Depart = 2 * sim.Second
	if d.Position(sim.Second).X != 10 {
		t.Error("moved before departure")
	}
	if Speed(d, sim.Second) != 0 {
		t.Error("nonzero speed before departure")
	}
	want := 10 + MPH(10)*3
	if got := d.Position(5 * sim.Second).X; !almostEqual(got, want, 1e-9) {
		t.Errorf("Position(5s).X = %v, want %v", got, want)
	}
}

func TestLinearDriveDuration(t *testing.T) {
	d := DriveBy(0, 0, 10)
	d.Duration = 2 * sim.Second
	end := d.Position(2 * sim.Second)
	if got := d.Position(10 * sim.Second); got != end {
		t.Errorf("drive kept moving after Duration: %v != %v", got, end)
	}
	if Speed(d, 5*sim.Second) != 0 {
		t.Error("nonzero speed after Duration")
	}
}

func TestWaypointTrace(t *testing.T) {
	w, err := NewWaypointTrace([]Waypoint{
		{At: 0, Pos: Point{0, 0}},
		{At: 2 * sim.Second, Pos: Point{20, 0}},
		{At: 4 * sim.Second, Pos: Point{20, 10}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Position(sim.Second); !almostEqual(got.X, 10, 1e-9) {
		t.Errorf("midpoint = %v", got)
	}
	if got := w.Position(10 * sim.Second); got != (Point{20, 10}) {
		t.Errorf("after last waypoint = %v", got)
	}
	if got := w.Position(-sim.Second); got != (Point{0, 0}) {
		t.Errorf("before first waypoint = %v", got)
	}
	v := w.Velocity(3 * sim.Second)
	if !almostEqual(v.Y, 5, 1e-9) || !almostEqual(v.X, 0, 1e-9) {
		t.Errorf("Velocity = %v, want (0,5)", v)
	}
}

func TestWaypointTraceErrors(t *testing.T) {
	if _, err := NewWaypointTrace(nil); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := NewWaypointTrace([]Waypoint{
		{At: sim.Second}, {At: 0},
	}); err == nil {
		t.Error("unsorted trace accepted")
	}
	// Same time, different positions: a teleport has no finite velocity.
	if _, err := NewWaypointTrace([]Waypoint{
		{At: sim.Second, Pos: Point{0, 0}}, {At: sim.Second, Pos: Point{5, 0}},
	}); err == nil {
		t.Error("teleport trace accepted")
	}
}

// Zero-duration segments (duplicate time, same position) are produced by
// route builders whose dwell at a node rounds to zero — they must be
// coalesced, never interpolated into a division by zero.
func TestWaypointZeroDurationSegment(t *testing.T) {
	w, err := NewWaypointTrace([]Waypoint{
		{At: 0, Pos: Point{0, 0}},
		{At: 2 * sim.Second, Pos: Point{20, 0}},
		{At: 2 * sim.Second, Pos: Point{20, 0}}, // zero-duration dwell
		{At: 4 * sim.Second, Pos: Point{20, 10}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, at := range []sim.Time{0, sim.Second, 2 * sim.Second,
		2*sim.Second + sim.Millisecond, 3 * sim.Second, 4 * sim.Second, 5 * sim.Second} {
		p, v := w.Position(at), w.Velocity(at)
		for _, f := range []float64{p.X, p.Y, v.X, v.Y, Speed(w, at)} {
			if math.IsNaN(f) || math.IsInf(f, 0) {
				t.Fatalf("t=%v: non-finite kinematics p=%v v=%v", at, p, v)
			}
		}
	}
	// Straddling the coalesced point, the velocity is the next leg's.
	if v := w.Velocity(2 * sim.Second); !almostEqual(v.Y, 5, 1e-9) || !almostEqual(v.X, 0, 1e-9) {
		t.Errorf("Velocity at coalesced waypoint = %v, want (0,5)", v)
	}
}

// Velocity at exact waypoint boundaries: the leg beginning there, not a
// stale heading from the finished leg; parked at and beyond the last.
func TestWaypointVelocityAtBoundaries(t *testing.T) {
	w, err := NewWaypointTrace([]Waypoint{
		{At: sim.Second, Pos: Point{0, 0}},
		{At: 3 * sim.Second, Pos: Point{20, 0}},
		{At: 5 * sim.Second, Pos: Point{20, 10}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := w.Velocity(sim.Second); !almostEqual(v.X, 10, 1e-9) || v.Y != 0 {
		t.Errorf("Velocity at first waypoint = %v, want (10,0)", v)
	}
	if v := w.Velocity(3 * sim.Second); !almostEqual(v.Y, 5, 1e-9) || !almostEqual(v.X, 0, 1e-9) {
		t.Errorf("Velocity at interior waypoint = %v, want (0,5)", v)
	}
	if v := w.Velocity(5 * sim.Second); v != (Point{}) {
		t.Errorf("Velocity at last waypoint = %v, want parked", v)
	}
	if v := w.Velocity(sim.Second - sim.Millisecond); v != (Point{}) {
		t.Errorf("Velocity before departure = %v, want parked", v)
	}
	// A single-waypoint trace is stationary everywhere.
	s, err := NewWaypointTrace([]Waypoint{{At: sim.Second, Pos: Point{3, 4}}})
	if err != nil {
		t.Fatal(err)
	}
	if v := s.Velocity(sim.Second); v != (Point{}) {
		t.Errorf("single-point Velocity = %v", v)
	}
	if Speed(s, 2*sim.Second) != 0 {
		t.Error("single-point trace has nonzero speed")
	}
}

func TestDefaultAPPositions(t *testing.T) {
	aps := DefaultAPPositions()
	if len(aps) != 8 {
		t.Fatalf("got %d APs, want 8", len(aps))
	}
	for i, p := range aps {
		if p.Y != APSetback {
			t.Errorf("AP%d setback = %v", i+1, p.Y)
		}
		if i > 0 && p.X <= aps[i-1].X {
			t.Errorf("AP positions not increasing at %d", i)
		}
	}
	// Dense segment spacing is tighter than sparse segment spacing.
	dense := aps[2].X - aps[1].X
	sparse := aps[5].X - aps[4].X
	if dense >= sparse {
		t.Errorf("dense spacing %v not < sparse spacing %v", dense, sparse)
	}
}

func TestArraySpanAndTransit(t *testing.T) {
	aps := DefaultAPPositions()
	minX, maxX := ArraySpan(aps)
	if minX != 5 || maxX != 70 {
		t.Errorf("span = [%v, %v]", minX, maxX)
	}
	d := TransitDrive(aps, 15, 10)
	if d.Position(0).X != minX-10 {
		t.Errorf("transit start = %v", d.Position(0))
	}
	dur := TransitDuration(aps, 15, 10)
	// 85 m at 6.7056 m/s ≈ 12.68 s
	if !almostEqual(dur.Seconds(), 85/MPH(15), 1e-9) {
		t.Errorf("TransitDuration = %v", dur)
	}
	if gotMin, gotMax := ArraySpan(nil); gotMin != 0 || gotMax != 0 {
		t.Error("empty span not zero")
	}
}

func TestPatternFollowing(t *testing.T) {
	aps := DefaultAPPositions()
	traces := PatternTraces(Following, 2, aps, 15, 10)
	if len(traces) != 2 {
		t.Fatal("wrong trace count")
	}
	p0 := traces[0].Position(sim.Second)
	p1 := traces[1].Position(sim.Second)
	if !almostEqual(p0.X-p1.X, FollowSpacing, 1e-9) {
		t.Errorf("following gap = %v, want %v", p0.X-p1.X, FollowSpacing)
	}
	if p0.Y != p1.Y {
		t.Error("following cars should share a lane")
	}
}

func TestPatternParallel(t *testing.T) {
	traces := PatternTraces(Parallel, 2, DefaultAPPositions(), 15, 10)
	p0 := traces[0].Position(sim.Second)
	p1 := traces[1].Position(sim.Second)
	if p0.X != p1.X {
		t.Error("parallel cars should be side by side")
	}
	if p0.Y == p1.Y {
		t.Error("parallel cars should use different lanes")
	}
}

func TestPatternOpposing(t *testing.T) {
	traces := PatternTraces(Opposing, 2, DefaultAPPositions(), 15, 10)
	v0 := traces[0].Velocity(sim.Second)
	v1 := traces[1].Velocity(sim.Second)
	if v0.X <= 0 || v1.X >= 0 {
		t.Errorf("opposing velocities = %v, %v", v0, v1)
	}
	// They should pass each other somewhere mid-array.
	d0 := traces[0].Position(5 * sim.Second)
	d1 := traces[1].Position(5 * sim.Second)
	if d0.X <= traces[0].Position(0).X || d1.X >= traces[1].Position(0).X {
		t.Error("opposing cars not converging")
	}
}

func TestPatternString(t *testing.T) {
	if Following.String() != "following" || Parallel.String() != "parallel" ||
		Opposing.String() != "opposing" || Pattern(99).String() != "unknown" {
		t.Error("Pattern.String mismatch")
	}
}

// Property: linear drives advance monotonically in X for positive velocity.
func TestLinearDriveMonotonic(t *testing.T) {
	f := func(speedQ uint8, t1q, t2q uint16) bool {
		speed := 1 + float64(speedQ%40)
		d := DriveBy(0, 0, speed)
		t1 := sim.Time(t1q) * sim.Millisecond
		t2 := sim.Time(t2q) * sim.Millisecond
		if t2 < t1 {
			t1, t2 = t2, t1
		}
		return d.Position(t2).X >= d.Position(t1).X
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDenseArray(t *testing.T) {
	pts := DenseArray(16, 5, 7.5)
	if len(pts) != 16 {
		t.Fatal("count wrong")
	}
	if pts[0].X != 5 || pts[15].X != 5+15*7.5 {
		t.Errorf("span = %v..%v", pts[0].X, pts[15].X)
	}
	for _, p := range pts {
		if p.Y != APSetback {
			t.Error("setback wrong")
		}
	}
}

func TestClipWindowsTrace(t *testing.T) {
	inner := &LinearDrive{Start: Point{X: 0}, Vel: Point{X: 10}}
	c := Clip{Inner: inner, From: sim.FromSeconds(1), To: sim.FromSeconds(3)}
	// Before the window: parked at the From-time position.
	if got := c.Position(0); got != inner.Position(sim.FromSeconds(1)) {
		t.Fatalf("pre-window position = %v, want frozen at From", got)
	}
	if c.Velocity(0) != (Point{}) {
		t.Fatal("pre-window velocity must be zero")
	}
	// Inside: passes through.
	mid := sim.FromSeconds(2)
	if c.Position(mid) != inner.Position(mid) || c.Velocity(mid) != inner.Velocity(mid) {
		t.Fatal("in-window samples must match the inner trace")
	}
	// After: parked at the To-time position.
	if got := c.Position(sim.FromSeconds(9)); got != inner.Position(sim.FromSeconds(3)) {
		t.Fatalf("post-window position = %v, want frozen at To", got)
	}
	if c.Velocity(sim.FromSeconds(9)) != (Point{}) {
		t.Fatal("post-window velocity must be zero")
	}
}
