package mobility

import (
	"fmt"
	"sort"

	"wgtt/internal/sim"
)

// Trace reports where a client is, and how it is moving, at a point in
// virtual time. Implementations must be pure: the same t always yields the
// same answer, so components may sample a trace at any granularity.
type Trace interface {
	// Position returns the client's location at time t.
	Position(t sim.Time) Point
	// Velocity returns the client's velocity vector in m/s at time t.
	Velocity(t sim.Time) Point
}

// Speed returns the scalar speed (m/s) of tr at time t.
func Speed(tr Trace, t sim.Time) float64 { return tr.Velocity(t).Norm() }

// Stationary is a Trace that never moves. It models the parked/static client
// of the paper's 0 mph data point.
type Stationary struct {
	At Point
}

// Position implements Trace.
func (s Stationary) Position(sim.Time) Point { return s.At }

// Velocity implements Trace.
func (s Stationary) Velocity(sim.Time) Point { return Point{} }

// LinearDrive is a constant-velocity drive along the road: the client sits
// at Start until Depart, then moves with the given velocity. It models the
// paper's drive-by experiments (a car passing the eight-AP array at constant
// speed).
type LinearDrive struct {
	Start    Point    // position at and before Depart
	Vel      Point    // velocity in m/s once moving
	Depart   sim.Time // time motion begins
	Duration sim.Time // optional: stop after this long in motion (0 = never)
}

// DriveBy returns a LinearDrive that enters at startX in the lane laneY and
// travels in +X at speedMPH, departing at time zero.
func DriveBy(startX, laneY, speedMPH float64) *LinearDrive {
	return &LinearDrive{
		Start: Point{X: startX, Y: laneY},
		Vel:   Point{X: MPH(speedMPH)},
	}
}

// Position implements Trace.
func (d *LinearDrive) Position(t sim.Time) Point {
	if t <= d.Depart {
		return d.Start
	}
	elapsed := t - d.Depart
	if d.Duration > 0 && elapsed > d.Duration {
		elapsed = d.Duration
	}
	return d.Start.Add(d.Vel.Scale(elapsed.Seconds()))
}

// Velocity implements Trace.
func (d *LinearDrive) Velocity(t sim.Time) Point {
	if t <= d.Depart {
		return Point{}
	}
	if d.Duration > 0 && t > d.Depart+d.Duration {
		return Point{}
	}
	return d.Vel
}

// String describes the drive for logs.
func (d *LinearDrive) String() string {
	return fmt.Sprintf("drive from %v at %.1f mph", d.Start, ToMPH(d.Vel.Norm()))
}

// Waypoint is one leg endpoint of a WaypointTrace.
type Waypoint struct {
	At  sim.Time
	Pos Point
}

// WaypointTrace interpolates linearly between time-stamped waypoints. Before
// the first waypoint the client is parked at it; after the last, parked at
// the last. It supports arbitrary recorded or synthetic mobility, e.g.
// slowing for a light mid-array.
type WaypointTrace struct {
	points []Waypoint
}

// NewWaypointTrace builds a trace from waypoints, which must be in
// non-decreasing time order. Consecutive waypoints that share a timestamp
// and a position — zero-duration segments, such as a traffic-light dwell
// that turned out to be zero — are coalesced into one point, so the
// interpolators never divide by a zero time delta. Same-time waypoints at
// different positions are rejected: a teleport has no finite velocity.
func NewWaypointTrace(points []Waypoint) (*WaypointTrace, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("mobility: waypoint trace needs at least one point")
	}
	cp := make([]Waypoint, 0, len(points))
	cp = append(cp, points[0])
	for _, p := range points[1:] {
		prev := cp[len(cp)-1]
		if p.At < prev.At {
			return nil, fmt.Errorf("mobility: waypoints must be sorted by time")
		}
		if p.At == prev.At {
			if p.Pos != prev.Pos {
				return nil, fmt.Errorf("mobility: two waypoints at %v with different positions (teleport)", p.At)
			}
			continue // zero-duration segment: keep one point
		}
		cp = append(cp, p)
	}
	return &WaypointTrace{points: cp}, nil
}

// Position implements Trace.
func (w *WaypointTrace) Position(t sim.Time) Point {
	pts := w.points
	if t <= pts[0].At {
		return pts[0].Pos
	}
	last := pts[len(pts)-1]
	if t >= last.At {
		return last.Pos
	}
	i := sort.Search(len(pts), func(i int) bool { return pts[i].At > t }) // first point after t
	a, b := pts[i-1], pts[i]
	frac := float64(t-a.At) / float64(b.At-a.At)
	return a.Pos.Add(b.Pos.Sub(a.Pos).Scale(frac))
}

// Velocity implements Trace. At a leg boundary — t exactly on a waypoint,
// including the very first — it reports the velocity of the leg that begins
// there, never the stale heading of the leg just finished; at and after the
// last waypoint the client is parked.
func (w *WaypointTrace) Velocity(t sim.Time) Point {
	pts := w.points
	if len(pts) < 2 || t < pts[0].At || t >= pts[len(pts)-1].At {
		return Point{}
	}
	i := sort.Search(len(pts), func(i int) bool { return pts[i].At > t })
	a, b := pts[i-1], pts[i]
	dt := (b.At - a.At).Seconds()
	if dt <= 0 {
		// Unreachable after constructor coalescing, but a zero-duration
		// segment must never divide to ±Inf.
		return Point{}
	}
	return b.Pos.Sub(a.Pos).Scale(1 / dt)
}
