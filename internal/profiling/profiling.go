// Package profiling wires the conventional -cpuprofile/-memprofile flags
// into the wgtt CLIs, so the hot-path numbers behind DESIGN.md §9 are
// reproducible on any machine with the stock pprof toolchain
// (`go tool pprof wgtt-fleet cpu.out`).
package profiling

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags holds the profile destinations parsed from the command line.
type Flags struct {
	cpu string
	mem string
}

// AddFlags registers -cpuprofile and -memprofile on the default flag set.
// Call before flag.Parse.
func AddFlags() *Flags {
	f := &Flags{}
	flag.StringVar(&f.cpu, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&f.mem, "memprofile", "", "write an allocation profile to this file on exit")
	return f
}

// Start begins CPU profiling if requested and returns an idempotent stop
// function that finishes the CPU profile and writes the heap profile.
// Callers must invoke stop on every exit path (including before os.Exit,
// which skips defers).
func (f *Flags) Start() (stop func(), err error) {
	var cpuFile *os.File
	if f.cpu != "" {
		cpuFile, err = os.Create(f.cpu)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	done := false
	return func() {
		if done {
			return
		}
		done = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if f.mem != "" {
			mf, err := os.Create(f.mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer mf.Close()
			runtime.GC() // settle live-heap numbers before the snapshot
			if err := pprof.WriteHeapProfile(mf); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}
	}, nil
}
