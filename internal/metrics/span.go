package metrics

// CauseMedianArgmax is the initiation cause of a §3.1.1 selection switch:
// the challenger AP's windowed median ESNR beat the incumbent's by at
// least the configured margin. The field exists so extensions can be told
// apart in one span stream; CauseFailover and CauseAPFailure are the
// failure-recovery causes (DESIGN.md §11).
const CauseMedianArgmax = "median-argmax"

// CauseFailover marks a switch forced by the controller because the
// client's serving AP (or its in-flight switch target) was declared dead —
// the stop→start handshake is bypassed with a direct start, since a dead
// AP answers neither stops nor their retransmissions.
const CauseFailover = "failover"

// CauseAPFailure is the cause attached to a recovery span: one AP-death
// incident, from detection through the last stranded client's ack.
const CauseAPFailure = "ap-failure"

// CauseDomainHandoff marks a cross-domain event (DESIGN.md §13): on the
// handoff tracker, one offer→commit transfer between controllers; on the
// switch tracker, the stop→start→ack the adopting controller drives to pull
// the client onto its own domain's AP.
const CauseDomainHandoff = "domain-handoff"

// CausePredictedCollapse marks an early switch fired by the Predictive
// selection policy (DESIGN.md §15): the serving AP's fitted ESNR
// trajectory was falling and a challenger was predicted to be better at
// the forecast horizon, before the §3.1.1 median rule would have moved.
const CausePredictedCollapse = "predicted-collapse"

// CauseGlobalAssign marks a switch commanded by the GlobalAssign selection
// policy's fleet-wide assignment round (DESIGN.md §15): the client moves to
// the AP the budgeted assignment gave it, not to its own greedy argmax.
const CauseGlobalAssign = "global-assign"

// SwitchSpan traces one execution of the §3.1.2 switching protocol, from
// the controller's first stop(c) transmission to the ack that completes
// the handover. Timestamps are simulated nanoseconds; a zero mark means
// the protocol state was never observed (e.g. the run ended mid-switch).
type SwitchSpan struct {
	// ID is the controller's switch sequence number (the SwitchID carried
	// by stop/start/ack).
	ID uint32 `json:"id"`
	// Client is the handed-over client's MAC address.
	Client string `json:"client"`
	// Cause is why the controller initiated the switch ("median-argmax":
	// the challenger's windowed median ESNR beat the incumbent's by at
	// least the configured margin).
	Cause string `json:"cause"`
	// From and To are AP ids; FromMedianDB and ToMedianDB are their window
	// medians at initiation (the §3.1.1 quantities the decision compared).
	From         int     `json:"from_ap"`
	To           int     `json:"to_ap"`
	FromMedianDB float64 `json:"from_median_db"`
	ToMedianDB   float64 `json:"to_median_db"`

	// StartNS is when the controller sent the first stop(c).
	StartNS int64 `json:"start_ns"`
	// StopHandledNS is when the old AP finished processing stop(c) —
	// including the modelled user-space processing delay that dominates
	// Table 1 — and sent start(c, k).
	StopHandledNS int64 `json:"stop_handled_ns,omitempty"`
	// StartHandledNS is when the new AP installed the cyclic-queue cursor
	// k and sent the ack.
	StartHandledNS int64 `json:"start_handled_ns,omitempty"`
	// EndNS is when the ack reached the controller (switch complete).
	EndNS int64 `json:"end_ns,omitempty"`

	// Retransmits counts stop(c) retransmissions against the 30 ms
	// timeout (§3.1.2); 0 is one clean protocol round.
	Retransmits int `json:"retransmits"`
	// DrainMPDUs and DrainNS describe the old AP's hardware-queue drain:
	// MPDUs already committed toward the NIC get one final transmission
	// opportunity over the inferior link (§3.1.2 measures ~6 ms of them).
	DrainMPDUs int   `json:"drain_mpdus"`
	DrainNS    int64 `json:"drain_ns"`

	// Completed reports whether the ack arrived before the run ended.
	Completed bool `json:"completed"`

	// Tracker names the SpanTracker this span came from when it is not the
	// canonical switch tracker (e.g. "recovery" for DESIGN.md §11 AP-failure
	// spans). Empty for switch-protocol spans, which keeps the JSON of
	// chaos-free snapshots identical to earlier releases and lets
	// SwitchSummary tell protocol spans apart after Merge mixed streams.
	Tracker string `json:"tracker,omitempty"`
}

// DurationNS is the stop-sent → ack-received execution time (Table 1's
// metric), or 0 for an incomplete span.
func (s *SwitchSpan) DurationNS() int64 {
	if !s.Completed {
		return 0
	}
	return s.EndNS - s.StartNS
}

// SpanTracker collects SwitchSpans. It is keyed by SwitchID so the
// distributed protocol participants — the controller that begins and ends
// a span, the old AP that marks stop-handled and later reports the drain,
// the new AP that marks start-handled — can all contribute to the same
// span without sharing anything but the id. A nil *SpanTracker is a valid
// no-op, and marks for unknown ids are dropped, so instrumented components
// never need to know whether tracing is on.
//
// Spans are rare (a handful per simulated second) next to the per-frame
// paths, so span creation may allocate; the id-keyed marks on existing
// spans do not.
type SpanTracker struct {
	name string
	// order holds every span begun, in Begin order; byID indexes the same
	// spans for marks (spans stay indexed after End: the hardware-queue
	// drain at the old AP routinely outlives the ack at the controller).
	order []*SwitchSpan
	byID  map[uint32]*SwitchSpan
}

func newSpanTracker(name string) *SpanTracker {
	return &SpanTracker{name: name, byID: make(map[uint32]*SwitchSpan)}
}

// Begin opens the span for one switch attempt. Duplicate ids are ignored
// (the controller allows a single outstanding switch per client, and ids
// are globally unique).
func (t *SpanTracker) Begin(id uint32, atNS int64, client string, from, to int, cause string, fromMedianDB, toMedianDB float64) {
	if t == nil {
		return
	}
	if _, dup := t.byID[id]; dup {
		return
	}
	sp := &SwitchSpan{
		ID: id, Client: client, Cause: cause,
		From: from, To: to,
		FromMedianDB: fromMedianDB, ToMedianDB: toMedianDB,
		StartNS: atNS,
	}
	t.order = append(t.order, sp)
	t.byID[id] = sp
}

// MarkStopHandled records when the old AP processed stop(c). Only the
// first mark counts: a retransmitted stop reaching an AP that already
// answered must not rewrite the timeline.
func (t *SpanTracker) MarkStopHandled(id uint32, atNS int64) {
	if t == nil {
		return
	}
	if sp := t.byID[id]; sp != nil && sp.StopHandledNS == 0 {
		sp.StopHandledNS = atNS
	}
}

// MarkStartHandled records when the new AP installed start(c, k).
func (t *SpanTracker) MarkStartHandled(id uint32, atNS int64) {
	if t == nil {
		return
	}
	if sp := t.byID[id]; sp != nil && sp.StartHandledNS == 0 {
		sp.StartHandledNS = atNS
	}
}

// AddRetransmit counts one stop(c) retransmission after the 30 ms timeout.
func (t *SpanTracker) AddRetransmit(id uint32) {
	if t == nil {
		return
	}
	if sp := t.byID[id]; sp != nil {
		sp.Retransmits++
	}
}

// ObserveDrain records the old AP's hardware-queue drain: how many
// committed MPDUs were granted their final transmission and how long after
// the stop the last of them left. May arrive after End.
func (t *SpanTracker) ObserveDrain(id uint32, mpdus int, durNS int64) {
	if t == nil {
		return
	}
	if sp := t.byID[id]; sp != nil {
		sp.DrainMPDUs = mpdus
		sp.DrainNS = durNS
	}
}

// End completes the span at the ack's arrival.
func (t *SpanTracker) End(id uint32, atNS int64) {
	if t == nil {
		return
	}
	if sp := t.byID[id]; sp != nil && !sp.Completed {
		sp.EndNS = atNS
		sp.Completed = true
	}
}

// snapshot copies the spans in Begin order.
func (t *SpanTracker) snapshot() []SwitchSpan {
	out := make([]SwitchSpan, len(t.order))
	for i, sp := range t.order {
		out[i] = *sp
	}
	return out
}
