package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// CounterSnap is one counter's state.
type CounterSnap struct {
	Component string `json:"component"`
	Name      string `json:"name"`
	Value     uint64 `json:"value"`
}

// GaugeSnap is one gauge's state.
type GaugeSnap struct {
	Component string  `json:"component"`
	Name      string  `json:"name"`
	Value     float64 `json:"value"`
}

// HistogramSnap is one histogram's state. Buckets[i] counts observations
// ≤ Bounds[i]; the final extra bucket counts the overflow.
type HistogramSnap struct {
	Component string    `json:"component"`
	Name      string    `json:"name"`
	Bounds    []float64 `json:"bounds"`
	Buckets   []uint64  `json:"buckets"`
	Count     uint64    `json:"count"`
	Sum       float64   `json:"sum"`
	Min       float64   `json:"min"`
	Max       float64   `json:"max"`
}

// Quantile estimates the q-quantile (0..1) by linear interpolation inside
// the containing bucket, clamped to [Min, Max].
func (h *HistogramSnap) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	rank := q * float64(h.Count)
	var cum uint64
	lo := h.Min
	for i, n := range h.Buckets {
		hi := h.Max
		if i < len(h.Bounds) && h.Bounds[i] < hi {
			hi = h.Bounds[i]
		}
		if n > 0 && float64(cum+n) >= rank {
			frac := (rank - float64(cum)) / float64(n)
			v := lo + frac*(hi-lo)
			if v < h.Min {
				v = h.Min
			}
			if v > h.Max {
				v = h.Max
			}
			return v
		}
		cum += n
		if hi > lo {
			lo = hi
		}
	}
	return h.Max
}

// Mean returns the arithmetic mean of the observations.
func (h *HistogramSnap) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Snapshot is the immutable state of a Registry: instruments sorted by
// (component, name) and switch spans in initiation order, so equal runs
// produce byte-identical snapshots regardless of wiring order.
type Snapshot struct {
	DurationNS int64           `json:"duration_ns,omitempty"`
	Counters   []CounterSnap   `json:"counters,omitempty"`
	Gauges     []GaugeSnap     `json:"gauges,omitempty"`
	Histograms []HistogramSnap `json:"histograms,omitempty"`
	Spans      []SwitchSpan    `json:"switch_spans,omitempty"`
}

// Snapshot captures the registry's current state. Safe on a nil registry
// (returns a zero Snapshot). The caller must have quiesced the simulation
// (the registry is single-goroutine; see the package comment).
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	s := Snapshot{DurationNS: r.durNS}
	for k, c := range r.counters {
		s.Counters = append(s.Counters, CounterSnap{k.component, k.name, c.v})
	}
	for k, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeSnap{k.component, k.name, g.v})
	}
	for k, h := range r.hists {
		s.Histograms = append(s.Histograms, HistogramSnap{
			Component: k.component, Name: k.name,
			Bounds:  append([]float64(nil), h.bounds...),
			Buckets: append([]uint64(nil), h.counts...),
			Count:   h.count, Sum: h.sum, Min: h.min, Max: h.max,
		})
	}
	sortSnap(&s)
	// All trackers snapshot into the one spans list, in name order. Spans
	// from non-switch trackers (e.g. recovery) carry their tracker's name so
	// consumers can separate the streams after a Merge; switch-protocol
	// spans keep an empty Tracker, preserving the exact JSON of snapshots
	// taken before other trackers existed.
	var names []string
	for name := range r.spans {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		snaps := r.spans[name].snapshot()
		if name != SwitchSpanTracker {
			for i := range snaps {
				snaps[i].Tracker = name
			}
		}
		s.Spans = append(s.Spans, snaps...)
	}
	return s
}

func sortSnap(s *Snapshot) {
	sort.Slice(s.Counters, func(i, j int) bool {
		a, b := s.Counters[i], s.Counters[j]
		return a.Component < b.Component || (a.Component == b.Component && a.Name < b.Name)
	})
	sort.Slice(s.Gauges, func(i, j int) bool {
		a, b := s.Gauges[i], s.Gauges[j]
		return a.Component < b.Component || (a.Component == b.Component && a.Name < b.Name)
	})
	sort.Slice(s.Histograms, func(i, j int) bool {
		a, b := s.Histograms[i], s.Histograms[j]
		return a.Component < b.Component || (a.Component == b.Component && a.Name < b.Name)
	})
}

// Merge combines snapshots from independent registries (fleet cells,
// parallel experiments): counters and gauges sum per (component, name),
// histograms with identical bounds merge bucket-wise, durations add, and
// spans concatenate in argument order. Counter rates over the merged
// duration therefore read as "per simulated second across all cells".
func Merge(snaps ...Snapshot) Snapshot {
	var out Snapshot
	ctr := make(map[key]uint64)
	gag := make(map[key]float64)
	hist := make(map[key]*HistogramSnap)
	for _, s := range snaps {
		out.DurationNS += s.DurationNS
		for _, c := range s.Counters {
			ctr[key{c.Component, c.Name}] += c.Value
		}
		for _, g := range s.Gauges {
			gag[key{g.Component, g.Name}] += g.Value
		}
		for _, h := range s.Histograms {
			k := key{h.Component, h.Name}
			have, ok := hist[k]
			if !ok {
				cp := h
				cp.Bounds = append([]float64(nil), h.Bounds...)
				cp.Buckets = append([]uint64(nil), h.Buckets...)
				hist[k] = &cp
				continue
			}
			if !sameBounds(have.Bounds, h.Bounds) {
				continue // incompatible shapes: keep the first
			}
			for i := range h.Buckets {
				have.Buckets[i] += h.Buckets[i]
			}
			if h.Count > 0 {
				if have.Count == 0 || h.Min < have.Min {
					have.Min = h.Min
				}
				if have.Count == 0 || h.Max > have.Max {
					have.Max = h.Max
				}
				have.Count += h.Count
				have.Sum += h.Sum
			}
		}
		out.Spans = append(out.Spans, s.Spans...)
	}
	for k, v := range ctr {
		out.Counters = append(out.Counters, CounterSnap{k.component, k.name, v})
	}
	for k, v := range gag {
		out.Gauges = append(out.Gauges, GaugeSnap{k.component, k.name, v})
	}
	for _, h := range hist {
		out.Histograms = append(out.Histograms, *h)
	}
	sortSnap(&out)
	return out
}

func sameBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// SwitchSummary aggregates the switch spans of a snapshot.
type SwitchSummary struct {
	// Total spans begun; Completed of them saw their ack.
	Total, Completed int
	// Quantiles of completed-span execution time (stop sent → ack), ns.
	MedianNS, P95NS int64
	// Retransmits across all spans.
	Retransmits int
	// Median protocol segment latencies (completed spans with the mark
	// observed): stop sent → stop handled, stop handled → start handled,
	// start handled → ack.
	StopSegNS, StartSegNS, AckSegNS int64
	// Hardware-queue drain: spans that drained MPDUs, and the median
	// drain time among them.
	Drained       int
	DrainMedianNS int64
}

// SwitchSummary computes the summary over the switch-protocol spans of
// s.Spans (spans tagged with another tracker's name — recovery spans —
// are skipped so they cannot skew the Table 1 digest).
func (s *Snapshot) SwitchSummary() SwitchSummary {
	var sum SwitchSummary
	var durs, stops, starts, acks, drains []int64
	for i := range s.Spans {
		sp := &s.Spans[i]
		if sp.Tracker != "" && sp.Tracker != SwitchSpanTracker {
			continue
		}
		sum.Total++
		sum.Retransmits += sp.Retransmits
		if sp.DrainMPDUs > 0 {
			sum.Drained++
			drains = append(drains, sp.DrainNS)
		}
		if !sp.Completed {
			continue
		}
		sum.Completed++
		durs = append(durs, sp.DurationNS())
		if sp.StopHandledNS > 0 {
			stops = append(stops, sp.StopHandledNS-sp.StartNS)
			if sp.StartHandledNS > 0 {
				starts = append(starts, sp.StartHandledNS-sp.StopHandledNS)
				acks = append(acks, sp.EndNS-sp.StartHandledNS)
			}
		}
	}
	sum.MedianNS = quantileNS(durs, 0.5)
	sum.P95NS = quantileNS(durs, 0.95)
	sum.StopSegNS = quantileNS(stops, 0.5)
	sum.StartSegNS = quantileNS(starts, 0.5)
	sum.AckSegNS = quantileNS(acks, 0.5)
	sum.DrainMedianNS = quantileNS(drains, 0.5)
	return sum
}

// quantileNS returns the q-quantile of xs (upper-median convention, like
// the paper's window median). xs is sorted in place.
func quantileNS(xs []int64, q float64) int64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	i := int(q * float64(len(xs)))
	if i >= len(xs) {
		i = len(xs) - 1
	}
	return xs[i]
}

// WriteJSON writes the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteFile writes the snapshot to path as JSON — or, when path is "-",
// renders the human-readable Fprint table to stdout instead. This is the
// shared behavior of every CLI's -metrics flag.
func (s *Snapshot) WriteFile(path string) error {
	if path == "-" {
		Fprint(os.Stdout, *s)
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadJSON decodes a snapshot written by WriteJSON.
func ReadJSON(r io.Reader) (Snapshot, error) {
	var s Snapshot
	err := json.NewDecoder(r).Decode(&s)
	return s, err
}

// Fprint renders the snapshot as a human-readable table: counters (with
// rates when the snapshot covers a known duration), gauges, histogram
// summaries, and the switch-protocol span digest.
func Fprint(w io.Writer, s Snapshot) {
	secs := float64(s.DurationNS) / 1e9
	if secs > 0 {
		fmt.Fprintf(w, "metrics over %.1f simulated seconds\n", secs)
	} else {
		fmt.Fprintf(w, "metrics (duration unknown)\n")
	}
	if len(s.Counters) > 0 {
		fmt.Fprintf(w, "\ncounters\n")
		fmt.Fprintf(w, "  %-12s %-24s %12s %12s\n", "component", "name", "value", "/s")
		for _, c := range s.Counters {
			rate := "-"
			if secs > 0 {
				rate = fmt.Sprintf("%.1f", float64(c.Value)/secs)
			}
			fmt.Fprintf(w, "  %-12s %-24s %12d %12s\n", c.Component, c.Name, c.Value, rate)
		}
	}
	if len(s.Gauges) > 0 {
		fmt.Fprintf(w, "\ngauges\n")
		fmt.Fprintf(w, "  %-12s %-24s %12s\n", "component", "name", "value")
		for _, g := range s.Gauges {
			fmt.Fprintf(w, "  %-12s %-24s %12.1f\n", g.Component, g.Name, g.Value)
		}
	}
	if len(s.Histograms) > 0 {
		fmt.Fprintf(w, "\nhistograms\n")
		fmt.Fprintf(w, "  %-12s %-24s %10s %8s %8s %8s %8s %8s\n",
			"component", "name", "count", "min", "p50", "p95", "max", "mean")
		for i := range s.Histograms {
			h := &s.Histograms[i]
			fmt.Fprintf(w, "  %-12s %-24s %10d %8.1f %8.1f %8.1f %8.1f %8.1f\n",
				h.Component, h.Name, h.Count, h.Min, h.Quantile(0.5), h.Quantile(0.95), h.Max, h.Mean())
		}
	}
	if len(s.Spans) > 0 {
		sum := s.SwitchSummary()
		if sum.Total > 0 {
			fmt.Fprintf(w, "\nswitch spans (stop → start → ack, §3.1.2)\n")
			fmt.Fprintf(w, "  %d begun, %d completed, %d stop retransmits\n",
				sum.Total, sum.Completed, sum.Retransmits)
			fmt.Fprintf(w, "  execution time: median %.1f ms, p95 %.1f ms\n",
				ms(sum.MedianNS), ms(sum.P95NS))
			fmt.Fprintf(w, "  segment medians: stop %.1f ms, start %.1f ms, ack %.1f ms\n",
				ms(sum.StopSegNS), ms(sum.StartSegNS), ms(sum.AckSegNS))
			fmt.Fprintf(w, "  hardware-queue drain: %d switches drained MPDUs, median %.1f ms\n",
				sum.Drained, ms(sum.DrainMedianNS))
		}
		var recDurs []int64
		recTotal, recDone := 0, 0
		for i := range s.Spans {
			sp := &s.Spans[i]
			if sp.Tracker != RecoverySpanTracker {
				continue
			}
			recTotal++
			if sp.Completed {
				recDone++
				recDurs = append(recDurs, sp.DurationNS())
			}
		}
		if recTotal > 0 {
			fmt.Fprintf(w, "\nrecovery spans (detect → reselect → ack, DESIGN.md §11)\n")
			fmt.Fprintf(w, "  %d AP failures detected, %d recovered\n", recTotal, recDone)
			fmt.Fprintf(w, "  recovery time: median %.1f ms, p95 %.1f ms\n",
				ms(quantileNS(recDurs, 0.5)), ms(quantileNS(recDurs, 0.95)))
		}
		var hoDurs []int64
		hoTotal, hoDone := 0, 0
		for i := range s.Spans {
			sp := &s.Spans[i]
			if sp.Tracker != HandoffSpanTracker {
				continue
			}
			hoTotal++
			if sp.Completed {
				hoDone++
				hoDurs = append(hoDurs, sp.DurationNS())
			}
		}
		if hoTotal > 0 {
			fmt.Fprintf(w, "\nhandoff spans (offer → commit, DESIGN.md §13)\n")
			fmt.Fprintf(w, "  %d handoffs offered, %d committed\n", hoTotal, hoDone)
			fmt.Fprintf(w, "  offer→commit time: median %.1f ms, p95 %.1f ms\n",
				ms(quantileNS(hoDurs, 0.5)), ms(quantileNS(hoDurs, 0.95)))
		}
	}
}

func ms(ns int64) float64 { return float64(ns) / 1e6 }
