package metrics

import "testing"

// Disabled recording is a nil handle; the hot paths (CSI ingest, enqueue,
// uplink dedup) call through these handles on every event, so both the
// disabled and the enabled steady state must be allocation-free. Span
// creation (Begin) is exempt — switches are control-plane-rate events —
// but the id-keyed marks that ride hot-adjacent paths are not.
func TestRecordingZeroAlloc(t *testing.T) {
	check := func(name string, fn func()) {
		t.Helper()
		if avg := testing.AllocsPerRun(200, fn); avg != 0 {
			t.Errorf("%s allocates %.1f times per op, want 0", name, avg)
		}
	}

	var (
		nilC *Counter
		nilG *Gauge
		nilH *Histogram
		nilT *SpanTracker
	)
	check("nil Counter.Inc", func() { nilC.Inc(); nilC.Add(3) })
	check("nil Gauge.Set", func() { nilG.Set(1) })
	check("nil Histogram.Observe", func() { nilH.Observe(1) })
	check("nil SpanTracker ops", func() {
		nilT.Begin(1, 0, "c", 0, 1, "median-argmax", 0, 0)
		nilT.MarkStopHandled(1, 0)
		nilT.MarkStartHandled(1, 0)
		nilT.AddRetransmit(1)
		nilT.ObserveDrain(1, 0, 0)
		nilT.End(1, 0)
	})

	r := NewRegistry()
	c := r.Counter("controller", "csi_reports")
	g := r.Gauge("dedup", "size")
	h := r.Histogram("controller", "window_occupancy", []float64{1, 2, 4, 8, 16, 32, 64, 128, 256})
	tr := r.SwitchSpans()
	tr.Begin(1, 0, "c", 0, 1, "median-argmax", 0, 0)

	i := 0.0
	check("enabled Counter.Inc", func() { c.Inc() })
	check("enabled Gauge.Set", func() { i++; g.Set(i) })
	check("enabled Histogram.Observe", func() { i++; h.Observe(i) })
	check("enabled span marks", func() {
		tr.MarkStopHandled(1, 1)
		tr.MarkStartHandled(1, 2)
		tr.AddRetransmit(1)
		tr.ObserveDrain(1, 3, 4)
	})
}
