// Package metrics is the observability layer of the reproduction: a
// registry of counters, gauges, and fixed-bucket histograms keyed by
// component, plus span-level tracing of the §3.1.2 switching protocol
// (one span per stop(c) → start(c, k) → ack sequence). WGTT's value
// proposition is timing — millisecond AP selection over a 10 ms median
// window (§3.1.1) and a switch that completes in ~17 ms (§3.1, Table 1) —
// so the instruments are built to observe those paths without perturbing
// them: recording is disabled by default, every handle is nil-safe (a nil
// *Counter, *Gauge, *Histogram, or *SpanTracker is an inert no-op), and
// the enabled paths are allocation-free at steady state, so the PR 2
// zero-alloc invariants of DESIGN.md §9 hold with metrics on or off.
//
// Ownership model: a Registry is single-goroutine, like the simulation
// cell it instruments. Fleet deployments and the parallel experiment
// registry create one Registry per cell/experiment and combine the
// immutable Snapshots afterwards with Merge. See DESIGN.md §10.
package metrics

import "sort"

// Counter is a monotonically increasing event count. The zero value is
// ready to use; a nil *Counter is a valid no-op, which is how
// disabled-by-default recording costs one predictable branch on hot paths.
type Counter struct {
	v uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a last-value instrument (queue sizes, hashset occupancy). A nil
// *Gauge is a valid no-op.
type Gauge struct {
	v   float64
	set bool
}

// Set records the current value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v = v
		g.set = true
	}
}

// Value returns the last value set (0 if never set or nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram counts observations into fixed buckets: bucket i holds
// observations ≤ Bounds[i]; one implicit overflow bucket holds the rest.
// Observe is allocation-free (a linear scan over a handful of bounds), so
// it is safe on per-report paths. A nil *Histogram is a valid no-op.
type Histogram struct {
	bounds []float64
	counts []uint64 // len(bounds)+1; last is the overflow bucket
	count  uint64
	sum    float64
	min    float64
	max    float64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// key identifies one instrument within a registry.
type key struct {
	component, name string
}

// Registry holds a simulation's instruments. Handles are created (or
// found) by Counter/Gauge/Histogram/Spans at wiring time — typically once,
// before the run — and written through during it. All methods on a nil
// *Registry return nil handles, so "metrics disabled" is simply a nil
// registry threaded through the same wiring calls.
type Registry struct {
	counters map[key]*Counter
	gauges   map[key]*Gauge
	hists    map[key]*Histogram
	spans    map[string]*SpanTracker

	// durNS accumulates the simulated duration covered by the registry
	// (AddDuration), which turns counters into rates in Fprint.
	durNS int64
}

// NewRegistry returns an empty enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[key]*Counter),
		gauges:   make(map[key]*Gauge),
		hists:    make(map[key]*Histogram),
		spans:    make(map[string]*SpanTracker),
	}
}

// Counter returns the named counter, creating it on first use. Returns nil
// on a nil registry.
func (r *Registry) Counter(component, name string) *Counter {
	if r == nil {
		return nil
	}
	k := key{component, name}
	c, ok := r.counters[k]
	if !ok {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil on
// a nil registry.
func (r *Registry) Gauge(component, name string) *Gauge {
	if r == nil {
		return nil
	}
	k := key{component, name}
	g, ok := r.gauges[k]
	if !ok {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds (ascending) on first use; later calls ignore bounds and
// return the existing instrument. Returns nil on a nil registry.
func (r *Registry) Histogram(component, name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	k := key{component, name}
	h, ok := r.hists[k]
	if !ok {
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		h = &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
		r.hists[k] = h
	}
	return h
}

// Spans returns the named span tracker, creating it on first use. The
// switching protocol uses one shared tracker (SwitchSpans): the controller
// begins and ends spans, the APs mark the intermediate protocol states.
// Returns nil on a nil registry.
func (r *Registry) Spans(name string) *SpanTracker {
	if r == nil {
		return nil
	}
	t, ok := r.spans[name]
	if !ok {
		t = newSpanTracker(name)
		r.spans[name] = t
	}
	return t
}

// SwitchSpanTracker is the canonical name of the §3.1.2 switch-protocol
// span tracker.
const SwitchSpanTracker = "switch"

// SwitchSpans returns the switch-protocol span tracker (nil on a nil
// registry).
func (r *Registry) SwitchSpans() *SpanTracker {
	return r.Spans(SwitchSpanTracker)
}

// RecoverySpanTracker is the canonical name of the AP-failure recovery
// span tracker (detect → reselect → ack, DESIGN.md §11). Its spans share
// the SwitchSpan shape but are excluded from the Table 1 switch digest.
const RecoverySpanTracker = "recovery"

// RecoverySpans returns the failure-recovery span tracker (nil on a nil
// registry).
func (r *Registry) RecoverySpans() *SpanTracker {
	return r.Spans(RecoverySpanTracker)
}

// HandoffSpanTracker is the canonical name of the inter-controller handoff
// span tracker (offer → commit, DESIGN.md §13). The owning controller
// begins a span when it offers a client to a peer domain and ends it when
// it commits the transfer; an aborted handoff leaves its span incomplete.
const HandoffSpanTracker = "handoff"

// HandoffSpans returns the inter-controller handoff span tracker (nil on a
// nil registry).
func (r *Registry) HandoffSpans() *SpanTracker {
	return r.Spans(HandoffSpanTracker)
}

// AddDuration accumulates simulated run time covered by this registry.
// Fprint uses the total to report counter rates (e.g. ESNR reports/s).
func (r *Registry) AddDuration(ns int64) {
	if r != nil {
		r.durNS += ns
	}
}
