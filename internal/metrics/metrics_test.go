package metrics

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("controller", "csi_reports")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("controller", "csi_reports") != c {
		t.Fatal("same (component, name) must return the same counter")
	}

	g := r.Gauge("dedup", "size")
	g.Set(3)
	g.Set(7)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %v, want 7 (last value)", got)
	}

	h := r.Histogram("controller", "window_occupancy", []float64{2, 4, 8})
	for _, v := range []float64{1, 3, 3, 5, 9, 100} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("hist count = %d, want 6", h.Count())
	}
	snap := r.Snapshot()
	hs := snap.Histograms[0]
	wantBuckets := []uint64{1, 2, 1, 2} // ≤2, ≤4, ≤8, overflow
	if !reflect.DeepEqual(hs.Buckets, wantBuckets) {
		t.Fatalf("buckets = %v, want %v", hs.Buckets, wantBuckets)
	}
	if hs.Min != 1 || hs.Max != 100 {
		t.Fatalf("min/max = %v/%v, want 1/100", hs.Min, hs.Max)
	}
	if q := hs.Quantile(0.5); q < 1 || q > 5 {
		t.Fatalf("p50 = %v, want within the low buckets", q)
	}
	if q := hs.Quantile(1); q != 100 {
		t.Fatalf("p100 = %v, want 100 (clamped to max)", q)
	}
}

// Disabled metrics are a nil registry: every handle is nil and every
// operation a no-op — this is the contract instrumented components rely on.
func TestNilRegistryAndHandlesAreInert(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "y")
	g := r.Gauge("x", "y")
	h := r.Histogram("x", "y", []float64{1})
	sp := r.SwitchSpans()
	if c != nil || g != nil || h != nil || sp != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	c.Inc()
	c.Add(2)
	g.Set(1)
	h.Observe(1)
	sp.Begin(1, 0, "c", 0, 1, "median-argmax", 0, 0)
	sp.MarkStopHandled(1, 1)
	sp.MarkStartHandled(1, 2)
	sp.AddRetransmit(1)
	sp.ObserveDrain(1, 3, 4)
	sp.End(1, 5)
	r.AddDuration(100)
	if s := r.Snapshot(); len(s.Counters)+len(s.Gauges)+len(s.Histograms)+len(s.Spans) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}
}

func TestSwitchSpanLifecycle(t *testing.T) {
	r := NewRegistry()
	tr := r.SwitchSpans()
	if tr != r.SwitchSpans() {
		t.Fatal("SwitchSpans must be a single shared tracker")
	}

	tr.Begin(7, 1000, "aa:bb", 2, 3, "median-argmax", 10.5, 14.0)
	tr.Begin(7, 9999, "aa:bb", 2, 3, "median-argmax", 0, 0) // duplicate: ignored
	tr.MarkStopHandled(7, 8000)
	tr.MarkStopHandled(7, 8500) // retransmitted stop: first mark wins
	tr.AddRetransmit(7)
	tr.MarkStartHandled(7, 17000)
	tr.End(7, 17400)
	tr.ObserveDrain(7, 12, 6000) // drain outlives the ack
	tr.MarkStopHandled(99, 1)    // unknown id: dropped

	tr.Begin(8, 50000, "aa:bb", 3, 4, "median-argmax", 9, 12) // never acked

	s := r.Snapshot()
	if len(s.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(s.Spans))
	}
	sp := s.Spans[0]
	if sp.StartNS != 1000 || sp.StopHandledNS != 8000 || sp.StartHandledNS != 17000 || sp.EndNS != 17400 {
		t.Fatalf("span timeline wrong: %+v", sp)
	}
	if !sp.Completed || sp.DurationNS() != 16400 {
		t.Fatalf("duration = %d completed=%v, want 16400 true", sp.DurationNS(), sp.Completed)
	}
	if sp.Retransmits != 1 || sp.DrainMPDUs != 12 || sp.DrainNS != 6000 {
		t.Fatalf("retransmit/drain wrong: %+v", sp)
	}
	if s.Spans[1].Completed || s.Spans[1].DurationNS() != 0 {
		t.Fatalf("incomplete span must have zero duration: %+v", s.Spans[1])
	}

	sum := s.SwitchSummary()
	if sum.Total != 2 || sum.Completed != 1 || sum.Retransmits != 1 || sum.Drained != 1 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.MedianNS != 16400 || sum.StopSegNS != 7000 || sum.StartSegNS != 9000 || sum.AckSegNS != 400 {
		t.Fatalf("summary segments = %+v", sum)
	}
}

func TestSnapshotDeterministicOrderAndJSONRoundTrip(t *testing.T) {
	build := func(order []string) Snapshot {
		r := NewRegistry()
		for _, name := range order {
			r.Counter(name, "n").Add(3)
			r.Gauge(name, "g").Set(1)
			r.Histogram(name, "h", []float64{1, 2}).Observe(1.5)
		}
		r.AddDuration(5e9)
		return r.Snapshot()
	}
	a := build([]string{"ap1", "ap2", "controller"})
	b := build([]string{"controller", "ap2", "ap1"})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("snapshot depends on wiring order:\n%+v\n%+v", a, b)
	}
	for i := 1; i < len(a.Counters); i++ {
		if a.Counters[i-1].Component > a.Counters[i].Component {
			t.Fatalf("counters not sorted: %+v", a.Counters)
		}
	}

	var buf bytes.Buffer
	if err := a.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, back) {
		t.Fatalf("JSON round-trip changed the snapshot:\n%+v\n%+v", a, back)
	}
}

func TestMerge(t *testing.T) {
	mk := func(n uint64, spanID uint32) Snapshot {
		r := NewRegistry()
		r.Counter("controller", "csi_reports").Add(n)
		r.Gauge("dedup", "size").Set(float64(n))
		r.Histogram("ap1", "queue_depth", []float64{1, 2}).Observe(float64(n))
		tr := r.SwitchSpans()
		tr.Begin(spanID, 0, "c", 0, 1, "median-argmax", 0, 0)
		tr.End(spanID, 17e6)
		r.AddDuration(1e9)
		return r.Snapshot()
	}
	m := Merge(mk(2, 1), mk(5, 2))
	if m.DurationNS != 2e9 {
		t.Fatalf("duration = %d, want 2e9", m.DurationNS)
	}
	if m.Counters[0].Value != 7 {
		t.Fatalf("merged counter = %d, want 7", m.Counters[0].Value)
	}
	if m.Gauges[0].Value != 7 {
		t.Fatalf("merged gauge = %v, want 7", m.Gauges[0].Value)
	}
	h := m.Histograms[0]
	if h.Count != 2 || h.Min != 2 || h.Max != 5 {
		t.Fatalf("merged histogram = %+v", h)
	}
	if len(m.Spans) != 2 || m.Spans[0].ID != 1 || m.Spans[1].ID != 2 {
		t.Fatalf("merged spans = %+v", m.Spans)
	}

	// Mismatched bounds: first shape wins, no panic.
	r := NewRegistry()
	r.Histogram("ap1", "queue_depth", []float64{10}).Observe(3)
	odd := r.Snapshot()
	m2 := Merge(mk(1, 3), odd)
	if m2.Histograms[0].Count != 1 {
		t.Fatalf("mismatched-bounds merge = %+v", m2.Histograms[0])
	}
}

func TestFprint(t *testing.T) {
	r := NewRegistry()
	r.Counter("controller", "csi_reports").Add(1000)
	r.Gauge("dedup", "size").Set(42)
	r.Histogram("controller", "window_occupancy", []float64{4, 16, 64}).Observe(12)
	tr := r.SwitchSpans()
	tr.Begin(1, 0, "c", 0, 1, "median-argmax", 10, 13)
	tr.MarkStopHandled(1, 7e6)
	tr.MarkStartHandled(1, 16e6)
	tr.End(1, 17e6)
	r.AddDuration(10e9)

	var buf bytes.Buffer
	Fprint(&buf, r.Snapshot())
	out := buf.String()
	for _, want := range []string{
		"10.0 simulated seconds",
		"csi_reports", "100.0", // the rate column
		"window_occupancy",
		"dedup", "42.0",
		"switch spans", "1 begun, 1 completed",
		"median 17.0 ms",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Fprint output missing %q:\n%s", want, out)
		}
	}
}
