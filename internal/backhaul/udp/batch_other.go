// Portable batch writes: platforms without the sendmmsg plumbing (or
// 32-bit Linux, whose mmsghdr layout differs) write the fan-out's
// per-endpoint datagrams through a plain WriteToUDP loop. Semantics are
// identical to batch_linux.go — same datagrams, same silent-loss rule —
// only the syscall count differs (§3.1.1 fan-out, DESIGN.md §14).

//go:build !(linux && (amd64 || arm64))

package udp

import "net"

// batchWriter has no state on the portable path.
type batchWriter struct{}

// writeBatch writes one datagram per (dst, buf) pair, returning the number
// written.
func (f *Fabric) writeBatch(dsts []*net.UDPAddr, bufs [][]byte) int {
	return f.writeLoop(dsts, bufs)
}
