package udp

import (
	"sync"
	"testing"
	"time"

	"wgtt/internal/backhaul"
	"wgtt/internal/packet"
	"wgtt/internal/runtime"
)

// The fabric advertises the fan-out fast path.
var _ backhaul.ManySender = (*Fabric)(nil)

func downMsg(index uint16) *packet.DownData {
	return &packet.DownData{Pkt: &packet.Packet{
		ClientMAC: packet.ClientMAC(1), Index: index, Bytes: 1200,
	}}
}

// orderRec tags deliveries to several virtual nodes with the node's id, in
// one shared arrival sequence — cross-node delivery order is observable.
type orderRec struct {
	mu   sync.Mutex
	ids  []int
	idxs []uint16
	ch   chan struct{}
}

func newOrderRec() *orderRec { return &orderRec{ch: make(chan struct{}, 64)} }

func (o *orderRec) node(id int) backhaul.Node {
	return backhaul.NodeFunc(func(_ packet.IPv4Addr, msg packet.Message) {
		o.mu.Lock()
		o.ids = append(o.ids, id)
		o.idxs = append(o.idxs, msg.(*packet.DownData).Pkt.Index)
		o.mu.Unlock()
		o.ch <- struct{}{}
	})
}

func (o *orderRec) wait(t *testing.T, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		select {
		case <-o.ch:
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for delivery %d/%d", i+1, n)
		}
	}
}

// A failed socket write must leave Sent and Bytes untouched: stats count
// what was sent, not what was attempted (the pre-batching fabric counted
// before calling WriteToUDP).
func TestSendStatsCountAfterSuccessfulWrite(t *testing.T) {
	conn := listen(t)
	peer := listen(t)
	f, err := New(runtime.NewWall(), conn,
		map[packet.IPv4Addr]string{packet.APIP(0): peer.LocalAddr().String()})
	if err != nil {
		t.Fatal(err)
	}
	peer.Close()
	conn.Close() // writes on a closed socket fail deterministically
	if err := f.Send(packet.ControllerIP, packet.APIP(0), &packet.HealthProbe{Seq: 1}); err == nil {
		t.Fatal("send on a closed socket succeeded")
	}
	if st := f.Stats(); st.Sent != 0 || st.Bytes != 0 {
		t.Fatalf("failed write was counted: %+v", st)
	}
}

// Steady-state Broadcast to remote peers allocates nothing: snapshot,
// encode buffer, and datagram buffer are all reused scratch.
func TestBroadcastZeroAlloc(t *testing.T) {
	conn := listen(t)
	sink := listen(t)
	defer sink.Close()
	defer conn.Close()
	table := map[packet.IPv4Addr]string{}
	for i := 0; i < 8; i++ {
		table[packet.APIP(i)] = sink.LocalAddr().String()
	}
	f, err := New(runtime.NewWall(), conn, table)
	if err != nil {
		t.Fatal(err)
	}
	// No drain: once the sink's receive buffer fills, the kernel drops the
	// overflow silently and the measured writes still succeed — a reader
	// here would allocate (ReadFromUDP returns a fresh *UDPAddr) inside
	// AllocsPerRun's process-wide window.
	msg := &packet.HealthProbe{Seq: 2, At: 3}
	f.Broadcast(packet.ControllerIP, msg)
	if allocs := testing.AllocsPerRun(100, func() {
		f.Broadcast(packet.ControllerIP, msg)
	}); allocs != 0 {
		t.Fatalf("Broadcast steady state allocates %.1f/op, want 0", allocs)
	}
}

// Fan-out across sockets: targets grouped by endpoint, one batch datagram
// per multi-target endpoint, a plain unicast for single-target ones, every
// copy delivered in listed order.
func TestSendManyBatchRoundTrip(t *testing.T) {
	connA, connB, connC := listen(t), listen(t), listen(t)
	clkA, clkB, clkC := runtime.NewWall(), runtime.NewWall(), runtime.NewWall()
	for _, clk := range []*runtime.Wall{clkA, clkB, clkC} {
		go clk.Run()
		defer clk.Stop()
	}

	// B hosts APs 0–2 (one batch datagram), C hosts AP 3 (plain unicast).
	table := map[packet.IPv4Addr]string{
		packet.APIP(0): connB.LocalAddr().String(),
		packet.APIP(1): connB.LocalAddr().String(),
		packet.APIP(2): connB.LocalAddr().String(),
		packet.APIP(3): connC.LocalAddr().String(),
	}
	fa, err := New(clkA, connA, table)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := New(clkB, connB, nil)
	if err != nil {
		t.Fatal(err)
	}
	fc, err := New(clkC, connC, nil)
	if err != nil {
		t.Fatal(err)
	}
	recB, recC := newOrderRec(), newOrderRec()
	for i := 0; i < 3; i++ {
		fb.Attach(packet.APIP(i), recB.node(i))
	}
	fc.Attach(packet.APIP(3), recC.node(3))
	fb.Start()
	fc.Start()
	defer fa.Close()
	defer fb.Close()
	defer fc.Close()

	tos := []packet.IPv4Addr{packet.APIP(0), packet.APIP(1), packet.APIP(2), packet.APIP(3)}
	msg := downMsg(5)
	size := uint64(3 + msg.WireSize())
	fa.SendMany(packet.ControllerIP, tos, msg)
	recB.wait(t, 3)
	recC.wait(t, 1)

	st := fa.Stats()
	if st.Sent != 2 {
		t.Fatalf("Sent = %d datagrams, want 2 (one batch + one unicast)", st.Sent)
	}
	if st.BatchedWrites != 1 || st.BatchedCopies != 3 {
		t.Fatalf("batch stats = %d writes / %d copies, want 1/3", st.BatchedWrites, st.BatchedCopies)
	}
	if st.Bytes != 4*size {
		t.Fatalf("Bytes = %d, want %d (4 copies x %d)", st.Bytes, 4*size, size)
	}
	recB.mu.Lock()
	defer recB.mu.Unlock()
	if len(recB.ids) != 3 || recB.ids[0] != 0 || recB.ids[1] != 1 || recB.ids[2] != 2 {
		t.Fatalf("batch delivery order = %v, want [0 1 2]", recB.ids)
	}
	for _, idx := range recB.idxs {
		if idx != 5 {
			t.Fatalf("delivered indexes = %v, want all 5", recB.idxs)
		}
	}
	if bst := fb.Stats(); bst.Received != 3 {
		t.Fatalf("B received %d copies, want 3", bst.Received)
	}
}

// SendMany to nodes hosted on the sending fabric: one decode, every local
// copy delivered in listed order, no-route targets skipped silently.
func TestSendManyLocalTargets(t *testing.T) {
	conn := listen(t)
	clk := runtime.NewWall()
	go clk.Run()
	defer clk.Stop()
	f, err := New(clk, conn, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := newOrderRec()
	f.Attach(packet.APIP(0), rec.node(0))
	f.Attach(packet.APIP(1), rec.node(1))
	f.Start()
	defer f.Close()

	tos := []packet.IPv4Addr{packet.APIP(1), packet.APIP(9), packet.APIP(0)}
	f.SendMany(packet.ControllerIP, tos, downMsg(8))
	rec.wait(t, 2)
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.ids) != 2 || rec.ids[0] != 1 || rec.ids[1] != 0 {
		t.Fatalf("local delivery order = %v, want [1 0]", rec.ids)
	}
	st := f.Stats()
	if st.Sent != 2 || st.Received != 2 {
		t.Fatalf("stats = %+v, want 2 sent / 2 received", st)
	}
}

// Malformed batch datagrams are counted and dropped without panicking, and
// batch copies for unhosted addresses count as unroutable.
func TestMalformedBatchDatagrams(t *testing.T) {
	conn := listen(t)
	clk := runtime.NewWall()
	go clk.Run()
	defer clk.Stop()
	f, err := New(clk, conn, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := newOrderRec()
	f.Attach(packet.APIP(0), rec.node(0))
	defer conn.Close()

	valid := packet.Encode(downMsg(1))
	target := func(id int) []byte { ip := packet.APIP(id); return ip[:] }
	bad := [][]byte{
		{},              // no count byte
		{0},             // zero copies
		{3, 1, 2, 3, 4}, // count says 3, list truncated
		append(append([]byte{1}, target(0)...), 0xee, 0x00, 0x01, 9), // unknown payload type
	}
	for i, b := range bad {
		f.handleBatch(packet.ControllerIP, b)
		if st := f.Stats(); st.DecodeErrs != uint64(i+1) {
			t.Fatalf("case %d: DecodeErrs = %d, want %d", i, st.DecodeErrs, i+1)
		}
	}

	// One hosted target, one unhosted: the hosted copy delivers, the other
	// counts as unroutable.
	good := append(append(append([]byte{2}, target(0)...), target(9)...), valid...)
	f.handleBatch(packet.ControllerIP, good)
	rec.wait(t, 1)
	st := f.Stats()
	if st.Received != 1 || st.Unroutable != 1 || st.DecodeErrs != uint64(len(bad)) {
		t.Fatalf("stats = %+v, want 1 received / 1 unroutable / %d decode errors", st, len(bad))
	}
}

// The reserved batch address can be neither attached nor routed to.
func TestBatchAddressReserved(t *testing.T) {
	conn := listen(t)
	defer conn.Close()
	if _, err := New(runtime.NewWall(), conn,
		map[packet.IPv4Addr]string{batchAddr: "127.0.0.1:1"}); err == nil {
		t.Fatal("New accepted the reserved batch address in the peer table")
	}
	f, err := New(runtime.NewWall(), conn, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Attach accepted the reserved batch address")
		}
	}()
	f.Attach(batchAddr, backhaul.NodeFunc(func(packet.IPv4Addr, packet.Message) {}))
}

// An endpoint hosting more than maxBatch targets gets several chunked batch
// datagrams, all copies delivered.
func TestSendManyChunksLargeGroups(t *testing.T) {
	connA, connB := listen(t), listen(t)
	clkA, clkB := runtime.NewWall(), runtime.NewWall()
	go clkA.Run()
	go clkB.Run()
	defer clkA.Stop()
	defer clkB.Stop()

	const nTargets = maxBatch + 5
	table := map[packet.IPv4Addr]string{}
	tos := make([]packet.IPv4Addr, nTargets)
	for i := 0; i < nTargets; i++ {
		// packet.APIP only spans one octet; spread across two.
		addr := packet.IPv4Addr{10, 1, byte(i >> 8), byte(i)}
		table[addr] = connB.LocalAddr().String()
		tos[i] = addr
	}
	fa, err := New(clkA, connA, table)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := New(clkB, connB, nil)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	got := 0
	ch := make(chan struct{}, nTargets)
	for _, addr := range tos {
		fb.Attach(addr, backhaul.NodeFunc(func(packet.IPv4Addr, packet.Message) {
			mu.Lock()
			got++
			mu.Unlock()
			ch <- struct{}{}
		}))
	}
	fb.Start()
	defer fa.Close()
	defer fb.Close()

	fa.SendMany(packet.ControllerIP, tos, downMsg(2))
	for i := 0; i < nTargets; i++ {
		select {
		case <-ch:
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out at copy %d/%d", i+1, nTargets)
		}
	}
	st := fa.Stats()
	if st.Sent != 2 || st.BatchedWrites != 2 || st.BatchedCopies != nTargets {
		t.Fatalf("stats = %+v, want 2 chunked batch datagrams carrying %d copies", st, nTargets)
	}
}
