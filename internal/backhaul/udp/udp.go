// Package udp is the live backhaul.Fabric (DESIGN.md §12): it carries every
// packet.Message over real UDP sockets, so controller and AP protocol cores
// that exchange typed structs in simulation exchange their actual wire
// encodings between processes in live mode. The paper's backhaul is a
// switched Ethernet LAN (§4); UDP over that LAN preserves its two properties
// the protocols depend on — sub-millisecond delivery and occasional silent
// loss (§3.1.2's 30 ms retransmission timeout exists for exactly that).
//
// Addressing stays virtual: nodes keep their simulator identities
// (packet.ControllerIP, packet.APIP(i)) and a static table maps each virtual
// address to the UDP endpoint hosting it. A unicast datagram is
//
//	[4B from][4B to][packet.Encode(msg)]
//
// so a single socket can host several virtual nodes and the receiver can
// attribute the message without trusting the kernel-reported source.
//
// The §3.1.1 downlink fan-out replicates one message to many virtual APs at
// once; SendMany is its line-rate path (DESIGN.md §14). The message is
// encoded once, targets are grouped by hosting endpoint, and every group
// collapses into a single batch datagram addressed to the reserved
// 255.255.255.255 virtual address:
//
//	[4B from][4B 255.255.255.255][1B count][4B to]×count[packet.Encode(msg)]
//
// The receiver decodes the payload once and delivers it to each listed
// local target in order. The per-endpoint datagrams themselves are written
// with one sendmmsg system call on Linux, so a 128-AP fan-out costs a
// handful of syscalls instead of 128. The trade: one lost batch datagram
// loses every copy it carried — acceptable because the copies are redundant
// by design (any AP that heard the client can deliver).
//
// Inbound datagrams are decoded on the reader goroutine but dispatched with
// Clock.After(0, ...), which serializes them onto the clock's run loop —
// protocol cores see the same one-event-at-a-time world as in simulation.
package udp

import (
	"bytes"
	"fmt"
	"net"
	"sort"
	"sync"

	"wgtt/internal/backhaul"
	"wgtt/internal/metrics"
	"wgtt/internal/packet"
	"wgtt/internal/runtime"
)

// header is the datagram prefix: two 4-byte virtual IPv4 addresses.
const header = 8

// maxBatch bounds how many copies one batch datagram carries (its count
// field is a single byte). Endpoints hosting more targets get several
// batch datagrams.
const maxBatch = 255

// batchAddr is the reserved virtual destination that marks a batch
// datagram. The address scheme (packet.ControllerIP, packet.APIP,
// packet.ClientIP) never mints it, so it cannot collide with a real node.
var batchAddr = packet.IPv4Addr{255, 255, 255, 255}

// maxDatagram bounds one datagram on the wire: header, the largest batch
// prefix (count byte plus maxBatch targets), the codec's 3-byte envelope,
// and a 16-bit payload length.
const maxDatagram = header + 1 + 4*maxBatch + 3 + 65535

// Stats counts fabric activity. Bytes counts encoded message bytes per
// copy (envelope + payload, excluding addressing and batch overhead),
// matching the in-memory Switch's accounting so live and simulated byte
// counts compare — a batch datagram carrying n copies adds n× the message
// size. Sent counts datagrams written (a batch datagram counts once; its
// copy count is preserved in BatchedCopies).
type Stats struct {
	Sent          uint64 // datagrams written (loopback deliveries included)
	Received      uint64 // message copies delivered to a local node
	Bytes         uint64 // encoded message bytes sent, per copy
	DecodeErrs    uint64 // inbound datagrams dropped as malformed
	Unroutable    uint64 // inbound copies for addresses not hosted here
	BatchedWrites uint64 // batch datagrams written (more than one copy)
	BatchedCopies uint64 // copies that rode a batch datagram
}

// fabMetrics holds the fabric's observability handles (DESIGN.md §10).
// Nil until UseMetrics wires a registry; every instrument is nil-safe.
type fabMetrics struct {
	// batchDepth samples the copy count of every outbound fan-out
	// datagram — how much replication each kernel write amortizes.
	batchDepth *metrics.Histogram
}

// epGroup accumulates one endpoint's targets during a SendMany call.
type epGroup struct {
	tos []packet.IPv4Addr
}

// Fabric implements backhaul.Fabric over one UDP socket.
type Fabric struct {
	clk  runtime.Clock
	conn *net.UDPConn

	mu    sync.Mutex
	nodes map[packet.IPv4Addr]backhaul.Node
	peers map[packet.IPv4Addr]*net.UDPAddr
	// order lists every address this fabric can reach (peers and local
	// nodes) in ascending byte order — Broadcast's deterministic sequence.
	order []packet.IPv4Addr

	// Endpoint table, immutable after New: eps lists the distinct UDP
	// endpoints the peer table names, epIndex maps each remote virtual
	// address to its endpoint — SendMany's grouping key.
	eps     []*net.UDPAddr
	epIndex map[packet.IPv4Addr]int

	// smu serializes the send path and guards its scratch state below;
	// holding it across the socket write also keeps concurrent senders'
	// datagrams whole.
	smu      sync.Mutex
	enc      []byte             // reusable message encode buffer
	wbuf     []byte             // reusable unicast datagram buffer
	bscratch []packet.IPv4Addr  // Broadcast's reusable targets snapshot
	local    []packet.IPv4Addr  // SendMany's local-target scratch
	groups   []epGroup          // SendMany's per-endpoint accumulators
	touched  []int              // endpoints used by the current SendMany
	bufs     [][]byte           // reusable per-datagram build buffers
	dgrams   [][]byte           // datagrams for the current batch write
	dsts     []*net.UDPAddr     // their destinations
	dcnt     []int              // their copy counts
	bw       batchWriter        // platform batch-write vectors (sendmmsg)

	// rscratch is the reader goroutine's batch-target scratch.
	rscratch []packet.IPv4Addr

	// dpool recycles combined-delivery events: the reader and send
	// goroutines allocate them, the clock goroutine returns them.
	dpool sync.Pool

	met   fabMetrics
	stats Stats

	started bool
	done    chan struct{}
}

// New builds a fabric on a pre-bound socket. table maps every REMOTE virtual
// address to its "host:port"; local nodes are added with Attach. Call Start
// once the local nodes are attached.
func New(clk runtime.Clock, conn *net.UDPConn, table map[packet.IPv4Addr]string) (*Fabric, error) {
	f := &Fabric{
		clk:     clk,
		conn:    conn,
		nodes:   make(map[packet.IPv4Addr]backhaul.Node),
		peers:   make(map[packet.IPv4Addr]*net.UDPAddr, len(table)),
		epIndex: make(map[packet.IPv4Addr]int, len(table)),
		done:    make(chan struct{}),
	}
	f.dpool.New = func() any {
		d := &manyDispatch{f: f}
		d.run = d.fire
		return d
	}
	for addr, ep := range table {
		if addr == batchAddr {
			return nil, fmt.Errorf("udp: %v is reserved for batch datagrams", addr)
		}
		ua, err := net.ResolveUDPAddr("udp", ep)
		if err != nil {
			return nil, fmt.Errorf("udp: resolving %v -> %q: %w", addr, ep, err)
		}
		f.peers[addr] = ua
		f.insert(addr)
	}
	// Endpoint table: walk the sorted order so endpoint IDs are
	// deterministic for a given peer table, whatever the map order was.
	byEndpoint := make(map[string]int, len(table))
	for _, addr := range f.order {
		ua := f.peers[addr]
		key := ua.String()
		id, ok := byEndpoint[key]
		if !ok {
			id = len(f.eps)
			f.eps = append(f.eps, ua)
			byEndpoint[key] = id
		}
		f.epIndex[addr] = id
	}
	f.groups = make([]epGroup, len(f.eps))
	return f, nil
}

// UseMetrics wires the fabric's instruments into r (call before Start). A
// nil registry leaves recording disabled.
func (f *Fabric) UseMetrics(r *metrics.Registry) {
	f.met = fabMetrics{
		batchDepth: r.Histogram("backhaul_udp", "batch_depth",
			[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256}),
	}
}

// insert adds addr to the sorted broadcast order (idempotent). Callers hold
// no lock during construction; Attach takes f.mu.
func (f *Fabric) insert(addr packet.IPv4Addr) {
	i := sort.Search(len(f.order), func(i int) bool {
		return bytes.Compare(f.order[i][:], addr[:]) >= 0
	})
	if i < len(f.order) && f.order[i] == addr {
		return
	}
	f.order = append(f.order, packet.IPv4Addr{})
	copy(f.order[i+1:], f.order[i:])
	f.order[i] = addr
}

// Attach implements backhaul.Fabric: registers a node hosted by this
// process. Attach before Start; attaching twice replaces the node.
func (f *Fabric) Attach(addr packet.IPv4Addr, n backhaul.Node) {
	if n == nil {
		panic("udp: nil node")
	}
	if addr == batchAddr {
		panic("udp: batch address is reserved")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.nodes[addr] = n
	f.insert(addr)
}

// Start launches the reader goroutine. The fabric stops when the socket is
// closed (Close or an external close of the conn).
func (f *Fabric) Start() {
	f.mu.Lock()
	if f.started {
		f.mu.Unlock()
		return
	}
	f.started = true
	f.mu.Unlock()
	go f.readLoop()
}

// Close shuts the socket down, ending the reader goroutine.
func (f *Fabric) Close() error {
	err := f.conn.Close()
	f.mu.Lock()
	started := f.started
	f.mu.Unlock()
	if started {
		<-f.done
	}
	return err
}

// Send implements backhaul.Fabric. Every message — remote or loopback to a
// node on this same fabric — passes through its wire encoding; remote ones
// additionally pass through a real socket. Sent/Bytes count only after a
// successful write: a failed WriteToUDP was never sent, matching the
// in-memory Switch's dropped-sends-uncounted rule.
func (f *Fabric) Send(from, to packet.IPv4Addr, msg packet.Message) error {
	f.smu.Lock()
	defer f.smu.Unlock()
	return f.sendLocked(from, to, msg)
}

// sendLocked is Send with f.smu held, so Broadcast can replicate through
// the same scratch buffers without re-locking per target.
func (f *Fabric) sendLocked(from, to packet.IPv4Addr, msg packet.Message) error {
	f.mu.Lock()
	peer := f.peers[to]
	local := f.nodes[to]
	f.mu.Unlock()
	if peer == nil && local == nil {
		return fmt.Errorf("udp: no route to %v", to)
	}
	if peer == nil {
		// Local virtual node: skip the socket but not the codec — decode
		// the encoded bytes exactly as the remote path would.
		f.enc = packet.EncodeInto(f.enc[:0], msg)
		size := uint64(len(f.enc))
		f.dispatch(from, to, f.enc)
		f.countSent(1, size)
		return nil
	}
	buf := f.wbuf[:0]
	buf = append(buf, from[:]...)
	buf = append(buf, to[:]...)
	buf = packet.EncodeInto(buf, msg)
	f.wbuf = buf
	size := uint64(len(buf) - header)
	if _, err := f.conn.WriteToUDP(buf, peer); err != nil {
		return err
	}
	f.countSent(1, size)
	return nil
}

// countSent records n sent datagrams of size message bytes each.
func (f *Fabric) countSent(n int, size uint64) {
	f.mu.Lock()
	f.stats.Sent += uint64(n)
	f.stats.Bytes += uint64(n) * size
	f.mu.Unlock()
}

// Broadcast implements backhaul.Fabric: Send to every known address except
// the sender, in ascending address order. Delivery errors are dropped —
// broadcast loss is silent, as on the real LAN. The targets snapshot and
// every buffer it sends through are reused scratch, so a steady-state
// broadcast to remote peers allocates nothing.
func (f *Fabric) Broadcast(from packet.IPv4Addr, msg packet.Message) {
	f.smu.Lock()
	defer f.smu.Unlock()
	f.mu.Lock()
	f.bscratch = append(f.bscratch[:0], f.order...)
	f.mu.Unlock()
	for _, addr := range f.bscratch {
		if addr == from {
			continue
		}
		_ = f.sendLocked(from, addr, msg)
	}
}

// SendMany implements backhaul.ManySender (DESIGN.md §14): encode msg once,
// group the targets by hosting endpoint, and write one batch datagram per
// endpoint — a sendmmsg batch on Linux — instead of one datagram per copy.
// Local targets are decoded once and delivered in listed order. Targets
// with no route are skipped, the same outcome as the per-target Send loop
// whose errors the fan-out path ignores. msg is never retained.
func (f *Fabric) SendMany(from packet.IPv4Addr, tos []packet.IPv4Addr, msg packet.Message) {
	f.smu.Lock()
	defer f.smu.Unlock()
	f.enc = packet.EncodeInto(f.enc[:0], msg)
	raw := f.enc
	size := uint64(len(raw))

	f.local = f.local[:0]
	f.mu.Lock()
	for _, to := range tos {
		if id, ok := f.epIndex[to]; ok {
			g := &f.groups[id]
			if len(g.tos) == 0 {
				f.touched = append(f.touched, id)
			}
			g.tos = append(g.tos, to)
			continue
		}
		if f.nodes[to] != nil {
			f.local = append(f.local, to)
		}
	}
	f.mu.Unlock()

	if len(f.local) > 0 {
		f.dispatchMany(from, f.local, raw)
		f.countSent(len(f.local), size)
		f.met.batchDepth.Observe(float64(len(f.local)))
	}
	if len(f.touched) == 0 {
		return
	}

	// One datagram per endpoint (chunked if an endpoint hosts more than
	// maxBatch targets); single-copy groups use the plain unicast format so
	// a fabric that never batches stays wire-compatible with old peers.
	f.dgrams = f.dgrams[:0]
	f.dsts = f.dsts[:0]
	f.dcnt = f.dcnt[:0]
	nd := 0
	for _, id := range f.touched {
		g := &f.groups[id]
		for start := 0; start < len(g.tos); start += maxBatch {
			end := start + maxBatch
			if end > len(g.tos) {
				end = len(g.tos)
			}
			chunk := g.tos[start:end]
			if nd == len(f.bufs) {
				f.bufs = append(f.bufs, nil)
			}
			buf := f.bufs[nd][:0]
			buf = append(buf, from[:]...)
			if len(chunk) == 1 {
				buf = append(buf, chunk[0][:]...)
			} else {
				buf = append(buf, batchAddr[:]...)
				buf = append(buf, byte(len(chunk)))
				for _, to := range chunk {
					buf = append(buf, to[:]...)
				}
			}
			buf = append(buf, raw...)
			f.bufs[nd] = buf
			f.dgrams = append(f.dgrams, buf)
			f.dsts = append(f.dsts, f.eps[id])
			f.dcnt = append(f.dcnt, len(chunk))
			nd++
		}
		g.tos = g.tos[:0]
	}
	f.touched = f.touched[:0]

	written := f.writeBatch(f.dsts, f.dgrams)
	f.mu.Lock()
	for i := 0; i < written; i++ {
		cnt := f.dcnt[i]
		f.stats.Sent++
		f.stats.Bytes += uint64(cnt) * size
		if cnt > 1 {
			f.stats.BatchedWrites++
			f.stats.BatchedCopies += uint64(cnt)
		}
	}
	f.mu.Unlock()
	for i := 0; i < written; i++ {
		f.met.batchDepth.Observe(float64(f.dcnt[i]))
	}
}

// writeLoop is the portable batch write: one WriteToUDP per datagram.
// Per-datagram errors are skipped — fan-out loss is silent, like the
// per-target Send loop it replaces. Returns the datagrams written.
func (f *Fabric) writeLoop(dsts []*net.UDPAddr, bufs [][]byte) int {
	n := 0
	for i := range bufs {
		if _, err := f.conn.WriteToUDP(bufs[i], dsts[i]); err != nil {
			continue
		}
		n++
	}
	return n
}

// Stats returns a snapshot of the fabric counters.
func (f *Fabric) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// LocalAddr returns the socket's bound address.
func (f *Fabric) LocalAddr() *net.UDPAddr { return f.conn.LocalAddr().(*net.UDPAddr) }

// manyDispatch is one pooled combined-delivery event: the decoded message
// and the local nodes a batch (or local fan-out) delivers it to, in listed
// order. Pooling keeps the steady-state fan-out from allocating a closure
// and slice per datagram.
type manyDispatch struct {
	f     *Fabric
	from  packet.IPv4Addr
	msg   packet.Message
	nodes []backhaul.Node
	run   func()
}

func (d *manyDispatch) fire() {
	for _, n := range d.nodes {
		n.HandleBackhaul(d.from, d.msg)
	}
	d.msg = nil
	d.nodes = d.nodes[:0]
	d.f.dpool.Put(d)
}

// dispatch decodes one encoded message and posts it onto the clock's run
// loop for the node hosted at to. Malformed or unroutable datagrams are
// counted and dropped — a fabric must survive any bytes the network hands
// it (the codec's FuzzDecode pins the "no panics" half of that). raw is not
// retained: Decode copies everything it keeps, so callers may reuse the
// buffer immediately.
func (f *Fabric) dispatch(from, to packet.IPv4Addr, raw []byte) {
	msg, err := packet.Decode(raw)
	f.mu.Lock()
	if err != nil {
		f.stats.DecodeErrs++
		f.mu.Unlock()
		return
	}
	if len(raw) != 3+msg.WireSize() {
		// Trailing bytes after a well-formed message: the codec tolerates
		// them (stream framing), but a datagram is exactly one message —
		// count the malformation rather than silently accepting it.
		f.stats.DecodeErrs++
		f.mu.Unlock()
		return
	}
	node := f.nodes[to]
	if node == nil {
		f.stats.Unroutable++
		f.mu.Unlock()
		return
	}
	f.stats.Received++
	f.mu.Unlock()
	f.clk.After(0, func() { node.HandleBackhaul(from, msg) })
}

// dispatchMany decodes raw once and posts a single combined delivery event
// for every listed target hosted here, preserving listed order — the
// receive half of the batch datagram format. raw is not retained.
func (f *Fabric) dispatchMany(from packet.IPv4Addr, tos []packet.IPv4Addr, raw []byte) {
	msg, err := packet.Decode(raw)
	f.mu.Lock()
	if err != nil || len(raw) != 3+msg.WireSize() {
		f.stats.DecodeErrs++
		f.mu.Unlock()
		return
	}
	d := f.dpool.Get().(*manyDispatch)
	for _, to := range tos {
		node := f.nodes[to]
		if node == nil {
			f.stats.Unroutable++
			continue
		}
		f.stats.Received++
		d.nodes = append(d.nodes, node)
	}
	f.mu.Unlock()
	if len(d.nodes) == 0 {
		f.dpool.Put(d)
		return
	}
	d.from, d.msg = from, msg
	f.clk.After(0, d.run)
}

// handleBatch parses one inbound batch datagram: count, target list,
// payload. b is the datagram body after the 8-byte addressing header.
func (f *Fabric) handleBatch(from packet.IPv4Addr, b []byte) {
	if len(b) < 1 {
		f.countDecodeErr()
		return
	}
	cnt := int(b[0])
	if cnt == 0 || len(b) < 1+4*cnt+3 {
		f.countDecodeErr()
		return
	}
	f.rscratch = f.rscratch[:0]
	for i := 0; i < cnt; i++ {
		var to packet.IPv4Addr
		copy(to[:], b[1+4*i:])
		f.rscratch = append(f.rscratch, to)
	}
	f.dispatchMany(from, f.rscratch, b[1+4*cnt:])
}

func (f *Fabric) countDecodeErr() {
	f.mu.Lock()
	f.stats.DecodeErrs++
	f.mu.Unlock()
}

// readLoop receives datagrams until the socket closes. One buffer serves
// every read: dispatch and handleBatch decode synchronously and never
// retain it, so the inbound path allocates nothing per datagram beyond the
// decoded message itself.
func (f *Fabric) readLoop() {
	defer close(f.done)
	buf := make([]byte, maxDatagram)
	for {
		n, _, err := f.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed socket (or unrecoverable error): reader exits
		}
		if n < header+3 {
			f.countDecodeErr()
			continue
		}
		var from, to packet.IPv4Addr
		copy(from[:], buf[:4])
		copy(to[:], buf[4:8])
		if to == batchAddr {
			f.handleBatch(from, buf[header:n])
			continue
		}
		f.dispatch(from, to, buf[header:n])
	}
}
