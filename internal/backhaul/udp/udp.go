// Package udp is the live backhaul.Fabric (DESIGN.md §12): it carries every
// packet.Message over real UDP sockets, so controller and AP protocol cores
// that exchange typed structs in simulation exchange their actual wire
// encodings between processes in live mode. The paper's backhaul is a
// switched Ethernet LAN (§4); UDP over that LAN preserves its two properties
// the protocols depend on — sub-millisecond delivery and occasional silent
// loss (§3.1.2's 30 ms retransmission timeout exists for exactly that).
//
// Addressing stays virtual: nodes keep their simulator identities
// (packet.ControllerIP, packet.APIP(i)) and a static table maps each virtual
// address to the UDP endpoint hosting it. Every datagram is
//
//	[4B from][4B to][packet.Encode(msg)]
//
// so a single socket can host several virtual nodes and the receiver can
// attribute the message without trusting the kernel-reported source.
//
// Inbound datagrams are decoded on the reader goroutine but dispatched with
// Clock.After(0, ...), which serializes them onto the clock's run loop —
// protocol cores see the same one-event-at-a-time world as in simulation.
package udp

import (
	"bytes"
	"fmt"
	"net"
	"sort"
	"sync"

	"wgtt/internal/backhaul"
	"wgtt/internal/packet"
	"wgtt/internal/runtime"
)

// header is the datagram prefix: two 4-byte virtual IPv4 addresses.
const header = 8

// maxDatagram bounds one message on the wire: header + the codec's 3-byte
// envelope + a 16-bit payload length.
const maxDatagram = header + 3 + 65535

// Stats counts fabric activity. Bytes counts encoded message bytes
// (envelope + payload, excluding the 8-byte addressing header), matching the
// in-memory Switch's accounting so live and simulated byte counts compare.
type Stats struct {
	Sent       uint64 // datagrams written
	Received   uint64 // datagrams delivered to a local node
	Bytes      uint64 // encoded message bytes sent
	DecodeErrs uint64 // inbound datagrams dropped as malformed
	Unroutable uint64 // inbound datagrams for addresses not hosted here
}

// Fabric implements backhaul.Fabric over one UDP socket.
type Fabric struct {
	clk  runtime.Clock
	conn *net.UDPConn

	mu    sync.Mutex
	nodes map[packet.IPv4Addr]backhaul.Node
	peers map[packet.IPv4Addr]*net.UDPAddr
	// order lists every address this fabric can reach (peers and local
	// nodes) in ascending byte order — Broadcast's deterministic sequence.
	order []packet.IPv4Addr

	stats Stats

	started bool
	done    chan struct{}
}

// New builds a fabric on a pre-bound socket. table maps every REMOTE virtual
// address to its "host:port"; local nodes are added with Attach. Call Start
// once the local nodes are attached.
func New(clk runtime.Clock, conn *net.UDPConn, table map[packet.IPv4Addr]string) (*Fabric, error) {
	f := &Fabric{
		clk:   clk,
		conn:  conn,
		nodes: make(map[packet.IPv4Addr]backhaul.Node),
		peers: make(map[packet.IPv4Addr]*net.UDPAddr, len(table)),
		done:  make(chan struct{}),
	}
	for addr, ep := range table {
		ua, err := net.ResolveUDPAddr("udp", ep)
		if err != nil {
			return nil, fmt.Errorf("udp: resolving %v -> %q: %w", addr, ep, err)
		}
		f.peers[addr] = ua
		f.insert(addr)
	}
	return f, nil
}

// insert adds addr to the sorted broadcast order (idempotent). Callers hold
// no lock during construction; Attach takes f.mu.
func (f *Fabric) insert(addr packet.IPv4Addr) {
	i := sort.Search(len(f.order), func(i int) bool {
		return bytes.Compare(f.order[i][:], addr[:]) >= 0
	})
	if i < len(f.order) && f.order[i] == addr {
		return
	}
	f.order = append(f.order, packet.IPv4Addr{})
	copy(f.order[i+1:], f.order[i:])
	f.order[i] = addr
}

// Attach implements backhaul.Fabric: registers a node hosted by this
// process. Attach before Start; attaching twice replaces the node.
func (f *Fabric) Attach(addr packet.IPv4Addr, n backhaul.Node) {
	if n == nil {
		panic("udp: nil node")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.nodes[addr] = n
	f.insert(addr)
}

// Start launches the reader goroutine. The fabric stops when the socket is
// closed (Close or an external close of the conn).
func (f *Fabric) Start() {
	f.mu.Lock()
	if f.started {
		f.mu.Unlock()
		return
	}
	f.started = true
	f.mu.Unlock()
	go f.readLoop()
}

// Close shuts the socket down, ending the reader goroutine.
func (f *Fabric) Close() error {
	err := f.conn.Close()
	f.mu.Lock()
	started := f.started
	f.mu.Unlock()
	if started {
		<-f.done
	}
	return err
}

// Send implements backhaul.Fabric. Every message — remote or loopback to a
// node on this same fabric — passes through packet.Encode; remote ones
// additionally pass through a real socket.
func (f *Fabric) Send(from, to packet.IPv4Addr, msg packet.Message) error {
	raw := packet.Encode(msg)
	f.mu.Lock()
	peer := f.peers[to]
	local := f.nodes[to]
	f.mu.Unlock()
	if peer == nil && local == nil {
		return fmt.Errorf("udp: no route to %v", to)
	}
	f.mu.Lock()
	f.stats.Bytes += uint64(len(raw))
	f.stats.Sent++
	f.mu.Unlock()
	if peer == nil {
		// Local virtual node: skip the socket but not the codec — decode the
		// encoded bytes exactly as the remote path would.
		f.dispatch(from, to, raw)
		return nil
	}
	buf := make([]byte, 0, header+len(raw))
	buf = append(buf, from[:]...)
	buf = append(buf, to[:]...)
	buf = append(buf, raw...)
	_, err := f.conn.WriteToUDP(buf, peer)
	return err
}

// Broadcast implements backhaul.Fabric: Send to every known address except
// the sender, in ascending address order. Delivery errors are dropped —
// broadcast loss is silent, as on the real LAN.
func (f *Fabric) Broadcast(from packet.IPv4Addr, msg packet.Message) {
	f.mu.Lock()
	targets := append([]packet.IPv4Addr(nil), f.order...)
	f.mu.Unlock()
	for _, addr := range targets {
		if addr == from {
			continue
		}
		_ = f.Send(from, addr, msg)
	}
}

// Stats returns a snapshot of the fabric counters.
func (f *Fabric) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// LocalAddr returns the socket's bound address.
func (f *Fabric) LocalAddr() *net.UDPAddr { return f.conn.LocalAddr().(*net.UDPAddr) }

// dispatch decodes one encoded message and posts it onto the clock's run
// loop for the node hosted at to. Malformed or unroutable datagrams are
// counted and dropped — a fabric must survive any bytes the network hands
// it (the codec's FuzzDecode pins the "no panics" half of that).
func (f *Fabric) dispatch(from, to packet.IPv4Addr, raw []byte) {
	msg, err := packet.Decode(raw)
	f.mu.Lock()
	if err != nil {
		f.stats.DecodeErrs++
		f.mu.Unlock()
		return
	}
	if len(raw) != 3+msg.WireSize() {
		// Trailing bytes after a well-formed message: the codec tolerates
		// them (stream framing), but a datagram is exactly one message —
		// count the malformation rather than silently accepting it.
		f.stats.DecodeErrs++
		f.mu.Unlock()
		return
	}
	node := f.nodes[to]
	if node == nil {
		f.stats.Unroutable++
		f.mu.Unlock()
		return
	}
	f.stats.Received++
	f.mu.Unlock()
	f.clk.After(0, func() { node.HandleBackhaul(from, msg) })
}

// readLoop receives datagrams until the socket closes.
func (f *Fabric) readLoop() {
	defer close(f.done)
	buf := make([]byte, maxDatagram)
	for {
		n, _, err := f.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed socket (or unrecoverable error): reader exits
		}
		if n < header+3 {
			f.mu.Lock()
			f.stats.DecodeErrs++
			f.mu.Unlock()
			continue
		}
		var from, to packet.IPv4Addr
		copy(from[:], buf[:4])
		copy(to[:], buf[4:8])
		raw := make([]byte, n-header)
		copy(raw, buf[header:n])
		f.dispatch(from, to, raw)
	}
}
