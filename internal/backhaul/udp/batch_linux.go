// sendmmsg batch writes (DESIGN.md §14): the fan-out's per-endpoint
// datagrams go to the kernel in one system call instead of one per
// datagram. Only the syscall plumbing lives here — grouping and datagram
// layout are in SendMany — so the !linux build swaps in a WriteToUDP loop
// with identical semantics (§3.1.1 fan-out works everywhere, it is just
// fastest on Linux).

//go:build linux && (amd64 || arm64)

package udp

import (
	"net"
	"runtime"
	"syscall"
	"unsafe"
)

// mmsghdr mirrors the kernel's struct mmsghdr on 64-bit Linux: a msghdr
// plus the kernel-filled transmitted-byte count and 4 bytes of alignment
// padding.
type mmsghdr struct {
	hdr syscall.Msghdr
	cnt uint32
	pad uint32
}

// batchWriter holds the reusable sendmmsg vectors; guarded by Fabric.smu
// like the rest of the send-path scratch.
type batchWriter struct {
	hdrs []mmsghdr
	iovs []syscall.Iovec
	sas  []syscall.RawSockaddrInet4
}

// writeBatch writes one datagram per (dst, buf) pair using as few sendmmsg
// calls as the kernel accepts, returning the number written. Non-IPv4
// destinations and raw-connection failures fall back to the portable
// WriteToUDP loop.
func (f *Fabric) writeBatch(dsts []*net.UDPAddr, bufs [][]byte) int {
	n := len(bufs)
	if n == 0 {
		return 0
	}
	for _, d := range dsts {
		if d.IP.To4() == nil {
			return f.writeLoop(dsts, bufs)
		}
	}
	rc, err := f.conn.SyscallConn()
	if err != nil {
		return f.writeLoop(dsts, bufs)
	}

	w := &f.bw
	if cap(w.hdrs) < n {
		w.hdrs = make([]mmsghdr, n)
		w.iovs = make([]syscall.Iovec, n)
		w.sas = make([]syscall.RawSockaddrInet4, n)
	}
	w.hdrs = w.hdrs[:n]
	w.iovs = w.iovs[:n]
	w.sas = w.sas[:n]
	for i := range bufs {
		sa := &w.sas[i]
		sa.Family = syscall.AF_INET
		port := uint16(dsts[i].Port)
		sa.Port = port<<8 | port>>8 // network byte order
		copy(sa.Addr[:], dsts[i].IP.To4())
		iov := &w.iovs[i]
		iov.Base = &bufs[i][0]
		iov.SetLen(len(bufs[i]))
		h := &w.hdrs[i]
		h.hdr = syscall.Msghdr{
			Name:    (*byte)(unsafe.Pointer(sa)),
			Namelen: syscall.SizeofSockaddrInet4,
			Iov:     iov,
			Iovlen:  1,
		}
		h.cnt = 0
	}

	sent := 0
	for sent < n {
		var wrote int
		var errno syscall.Errno
		werr := rc.Write(func(fd uintptr) bool {
			r, _, e := syscall.Syscall6(sysSendmmsg, fd,
				uintptr(unsafe.Pointer(&w.hdrs[sent])), uintptr(n-sent), 0, 0, 0)
			if e == syscall.EAGAIN {
				return false // wait until the socket is writable, then retry
			}
			wrote, errno = int(r), e
			return true
		})
		if werr != nil {
			break
		}
		if errno == syscall.EINTR {
			continue
		}
		if errno != 0 || wrote <= 0 {
			// Kernel refused (sandboxed syscall filter, shrunk buffers…):
			// finish the remainder through the portable loop.
			sent += f.writeLoop(dsts[sent:], bufs[sent:])
			break
		}
		sent += wrote
	}
	runtime.KeepAlive(bufs)
	runtime.KeepAlive(w)
	return sent
}
