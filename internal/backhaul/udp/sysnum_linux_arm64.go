//go:build linux && arm64

package udp

// sysSendmmsg is the sendmmsg system call number on linux/arm64.
const sysSendmmsg = 269
