//go:build linux && amd64

package udp

// sysSendmmsg is the sendmmsg system call number on linux/amd64; the
// frozen syscall package predates sendmmsg, so the number lives here.
const sysSendmmsg = 307
