package udp

import (
	"net"
	"sync"
	"testing"
	"time"

	"wgtt/internal/backhaul"
	"wgtt/internal/packet"
	"wgtt/internal/runtime"
	"wgtt/internal/sim"
)

// listen binds a loopback UDP socket on an ephemeral port.
func listen(t *testing.T) *net.UDPConn {
	t.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	return conn
}

// collector records deliveries behind a mutex and signals each arrival.
type collector struct {
	mu    sync.Mutex
	from  []packet.IPv4Addr
	types []packet.MsgType
	ch    chan struct{}
}

func newCollector() *collector { return &collector{ch: make(chan struct{}, 64)} }

func (c *collector) HandleBackhaul(from packet.IPv4Addr, msg packet.Message) {
	c.mu.Lock()
	c.from = append(c.from, from)
	c.types = append(c.types, msg.Type())
	c.mu.Unlock()
	c.ch <- struct{}{}
}

func (c *collector) wait(t *testing.T, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		select {
		case <-c.ch:
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for delivery %d/%d", i+1, n)
		}
	}
}

// Two fabrics over loopback: a message sent on one must arrive at the node
// attached to the other, decoded to the same typed struct.
func TestSendAcrossSockets(t *testing.T) {
	connA, connB := listen(t), listen(t)
	clkA, clkB := runtime.NewWall(), runtime.NewWall()
	go clkA.Run()
	go clkB.Run()
	defer clkA.Stop()
	defer clkB.Stop()

	ctl := packet.ControllerIP
	ap0 := packet.APIP(0)
	fa, err := New(clkA, connA, map[packet.IPv4Addr]string{ap0: connB.LocalAddr().String()})
	if err != nil {
		t.Fatal(err)
	}
	fb, err := New(clkB, connB, map[packet.IPv4Addr]string{ctl: connA.LocalAddr().String()})
	if err != nil {
		t.Fatal(err)
	}
	rxA, rxB := newCollector(), newCollector()
	fa.Attach(ctl, rxA)
	fb.Attach(ap0, rxB)
	fa.Start()
	fb.Start()
	defer fa.Close()
	defer fb.Close()

	stop := &packet.Stop{Client: packet.ClientMAC(1), NextAP: packet.APIP(1), SwitchID: 7}
	if err := fa.Send(ctl, ap0, stop); err != nil {
		t.Fatal(err)
	}
	rxB.wait(t, 1)
	rxB.mu.Lock()
	defer rxB.mu.Unlock()
	if rxB.from[0] != ctl || rxB.types[0] != packet.MsgStop {
		t.Fatalf("got %v from %v, want MsgStop from controller", rxB.types[0], rxB.from[0])
	}
	st := fa.Stats()
	if st.Sent != 1 || st.Bytes != uint64(3+stop.WireSize()) {
		t.Fatalf("sender stats = %+v", st)
	}
	if got := fb.Stats(); got.Received != 1 {
		t.Fatalf("receiver stats = %+v", got)
	}
}

// Loopback to a node on the same fabric must still round-trip the codec.
func TestLocalDeliveryPassesCodec(t *testing.T) {
	conn := listen(t)
	clk := runtime.NewWall()
	go clk.Run()
	defer clk.Stop()
	f, err := New(clk, conn, nil)
	if err != nil {
		t.Fatal(err)
	}
	rx := newCollector()
	f.Attach(packet.APIP(0), rx)
	f.Start()
	defer f.Close()
	if err := f.Send(packet.ControllerIP, packet.APIP(0), &packet.HealthProbe{Seq: 3}); err != nil {
		t.Fatal(err)
	}
	rx.wait(t, 1)
	if st := f.Stats(); st.Received != 1 || st.Sent != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSendUnroutable(t *testing.T) {
	conn := listen(t)
	f, err := New(runtime.NewWall(), conn, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := f.Send(packet.ControllerIP, packet.APIP(5), &packet.HealthProbe{}); err == nil {
		t.Fatal("send to unknown address succeeded")
	}
}

// Broadcast order must be ascending virtual-address order regardless of
// table insertion order.
func TestBroadcastOrderSorted(t *testing.T) {
	conn := listen(t)
	sink := listen(t) // every peer routes here; order is what matters
	defer sink.Close()
	table := map[packet.IPv4Addr]string{}
	for _, id := range []int{7, 2, 9, 0, 4} {
		table[packet.APIP(id)] = sink.LocalAddr().String()
	}
	clk := runtime.NewWall()
	f, err := New(clk, conn, table)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	got := make(chan packet.IPv4Addr, 8)
	go func() {
		buf := make([]byte, maxDatagram)
		for {
			n, _, err := sink.ReadFromUDP(buf)
			if err != nil {
				return
			}
			if n >= header {
				var to packet.IPv4Addr
				copy(to[:], buf[4:8])
				got <- to
			}
		}
	}()
	f.Broadcast(packet.ControllerIP, &packet.HealthProbe{Seq: 1})
	want := []int{0, 2, 4, 7, 9}
	for _, id := range want {
		select {
		case to := <-got:
			if to != packet.APIP(id) {
				t.Fatalf("broadcast delivered to %v, want %v", to, packet.APIP(id))
			}
		case <-time.After(5 * time.Second):
			t.Fatal("broadcast datagram missing")
		}
	}
}

// Malformed datagrams must be counted and dropped, never crash the reader,
// and the fabric must keep delivering afterwards.
func TestMalformedDatagramsSurvived(t *testing.T) {
	conn := listen(t)
	clk := runtime.NewWall()
	go clk.Run()
	defer clk.Stop()
	f, err := New(clk, conn, nil)
	if err != nil {
		t.Fatal(err)
	}
	rx := newCollector()
	f.Attach(packet.APIP(0), rx)
	f.Start()
	defer f.Close()

	tx := listen(t)
	defer tx.Close()
	dst := conn.LocalAddr().(*net.UDPAddr)
	bad := [][]byte{
		{},                     // empty
		{1, 2, 3},              // shorter than the header
		make([]byte, header+2), // header but truncated envelope
		append(append([]byte{10, 0, 0, 1, 10, 0, 0, 10}, 0xff, 0x00, 0x04), 1, 2, 3, 4), // unknown type
	}
	for _, b := range bad {
		if _, err := tx.WriteToUDP(b, dst); err != nil {
			t.Fatal(err)
		}
	}
	// A good message after the garbage proves the reader survived.
	good := append([]byte{10, 0, 0, 1, 10, 0, 0, 10}, packet.Encode(&packet.HealthProbe{Seq: 9})...)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := tx.WriteToUDP(good, dst); err != nil {
			t.Fatal(err)
		}
		select {
		case <-rx.ch:
		case <-time.After(100 * time.Millisecond):
			if time.Now().After(deadline) {
				t.Fatal("reader never delivered after malformed datagrams")
			}
			continue
		}
		break
	}
	if st := f.Stats(); st.DecodeErrs < uint64(len(bad)) {
		// UDP on loopback does not drop, so all four should be counted by
		// the time the good message made it through.
		t.Fatalf("DecodeErrs = %d, want >= %d", st.DecodeErrs, len(bad))
	}
}

// Every malformed-datagram class must increment DecodeErrs exactly once and
// deliver nothing: truncated envelope, lying length field, unknown type, and
// — the class the codec alone tolerates — trailing bytes after a
// well-formed message (a datagram is exactly one message).
func TestDecodeErrorAccountingPerClass(t *testing.T) {
	conn := listen(t)
	clk := runtime.NewWall()
	go clk.Run()
	defer clk.Stop()
	f, err := New(clk, conn, nil)
	if err != nil {
		t.Fatal(err)
	}
	rx := newCollector()
	f.Attach(packet.APIP(0), rx)
	f.Start()
	defer f.Close()

	valid := packet.Encode(&packet.HealthProbe{Seq: 4, At: 1})
	cases := []struct {
		name string
		raw  []byte
	}{
		{"truncated envelope", []byte{byte(packet.MsgStop), 0x00}},
		{"length field lies", []byte{byte(packet.MsgStop), 0xff, 0xff, 1, 2, 3}},
		{"unknown type", []byte{0xee, 0x00, 0x02, 7, 7}},
		{"trailing garbage", append(append([]byte{}, valid...), 0xab)},
	}
	for i, tc := range cases {
		f.dispatch(packet.ControllerIP, packet.APIP(0), tc.raw)
		if st := f.Stats(); st.DecodeErrs != uint64(i+1) {
			t.Fatalf("%s: DecodeErrs = %d, want %d", tc.name, st.DecodeErrs, i+1)
		}
	}
	// The exact same bytes minus the trailing garbage must deliver.
	f.dispatch(packet.ControllerIP, packet.APIP(0), valid)
	rx.wait(t, 1)
	st := f.Stats()
	if st.Received != 1 || st.DecodeErrs != uint64(len(cases)) {
		t.Fatalf("stats = %+v, want Received 1, DecodeErrs %d", st, len(cases))
	}
	rx.mu.Lock()
	defer rx.mu.Unlock()
	if len(rx.types) != 1 || rx.types[0] != packet.MsgHealthProbe {
		t.Fatalf("deliveries = %v, want exactly one health-probe", rx.types)
	}
}

// A datagram addressed to a virtual node this fabric does not host is
// counted as unroutable.
func TestUnroutableInbound(t *testing.T) {
	conn := listen(t)
	clk := runtime.NewWall()
	go clk.Run()
	defer clk.Stop()
	f, err := New(clk, conn, nil)
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	defer f.Close()
	tx := listen(t)
	defer tx.Close()
	dg := append([]byte{10, 0, 0, 1, 10, 0, 0, 99}, packet.Encode(&packet.HealthProbe{Seq: 1})...)
	if _, err := tx.WriteToUDP(dg, conn.LocalAddr().(*net.UDPAddr)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for f.Stats().Unroutable == 0 {
		if time.Now().After(deadline) {
			t.Fatal("unroutable datagram never counted")
		}
		time.Sleep(time.Millisecond)
	}
}

// The fabric must satisfy backhaul.Fabric alongside the simulator Switch.
var _ backhaul.Fabric = (*Fabric)(nil)
var _ backhaul.Fabric = (*backhaul.Switch)(nil)

// Compile-time check that the virtual clock still works with sim (import
// anchor for the shared interface contract).
var _ = sim.Millisecond
