package backhaul

import (
	"testing"

	"wgtt/internal/packet"
	"wgtt/internal/sim"
)

type recorder struct {
	msgs []packet.Message
	from []packet.IPv4Addr
	at   []sim.Time
	eng  *sim.Engine
}

func (r *recorder) HandleBackhaul(from packet.IPv4Addr, msg packet.Message) {
	r.msgs = append(r.msgs, msg)
	r.from = append(r.from, from)
	r.at = append(r.at, r.eng.Now())
}

func TestSendLatencyAndDelivery(t *testing.T) {
	eng := sim.NewEngine()
	sw := NewSwitch(eng, 200*sim.Microsecond)
	rec := &recorder{eng: eng}
	sw.Attach(packet.APIP(1), rec)

	msg := &packet.Stop{Client: packet.ClientMAC(1), NextAP: packet.APIP(2), SwitchID: 5}
	if err := sw.Send(packet.ControllerIP, packet.APIP(1), msg); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if len(rec.msgs) != 1 {
		t.Fatalf("delivered %d messages", len(rec.msgs))
	}
	if rec.at[0] != 200*sim.Microsecond {
		t.Errorf("delivered at %v, want 200µs", rec.at[0])
	}
	if rec.from[0] != packet.ControllerIP {
		t.Errorf("from = %v", rec.from[0])
	}
	got, ok := rec.msgs[0].(*packet.Stop)
	if !ok || got.SwitchID != 5 || got.Client != packet.ClientMAC(1) {
		t.Errorf("message mangled: %+v", rec.msgs[0])
	}
}

func TestSendUnattached(t *testing.T) {
	sw := NewSwitch(sim.NewEngine(), sim.Microsecond)
	if err := sw.Send(packet.ControllerIP, packet.APIP(9), &packet.Stop{}); err == nil {
		t.Error("send to unattached address succeeded")
	}
}

func TestVerifyRoundTripsWire(t *testing.T) {
	eng := sim.NewEngine()
	sw := NewSwitch(eng, sim.Microsecond)
	rec := &recorder{eng: eng}
	sw.Attach(packet.APIP(1), rec)
	orig := &packet.Start{Client: packet.ClientMAC(2), Index: 777, SwitchID: 3}
	if err := sw.Send(packet.APIP(0), packet.APIP(1), orig); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if rec.msgs[0] == packet.Message(orig) {
		t.Error("Verify mode should deliver a decoded copy, not the original pointer")
	}
	got := rec.msgs[0].(*packet.Start)
	if *got != *orig {
		t.Errorf("decoded copy differs: %+v vs %+v", got, orig)
	}
	_, _, bytes := sw.Stats()
	if bytes == 0 {
		t.Error("byte accounting missing")
	}
}

func TestVerifyOff(t *testing.T) {
	eng := sim.NewEngine()
	sw := NewSwitch(eng, sim.Microsecond)
	sw.Verify = false
	rec := &recorder{eng: eng}
	sw.Attach(packet.APIP(1), rec)
	orig := &packet.Start{Index: 1}
	_ = sw.Send(packet.APIP(0), packet.APIP(1), orig)
	eng.Run()
	if rec.msgs[0] != packet.Message(orig) {
		t.Error("Verify off should deliver the original")
	}
}

func TestBroadcast(t *testing.T) {
	eng := sim.NewEngine()
	sw := NewSwitch(eng, sim.Microsecond)
	recs := make([]*recorder, 3)
	for i := range recs {
		recs[i] = &recorder{eng: eng}
		sw.Attach(packet.APIP(i), recs[i])
	}
	sw.Broadcast(packet.APIP(0), &packet.AssocSync{Client: packet.ClientMAC(1), AID: 1})
	eng.Run()
	if len(recs[0].msgs) != 0 {
		t.Error("broadcast echoed to sender")
	}
	if len(recs[1].msgs) != 1 || len(recs[2].msgs) != 1 {
		t.Error("broadcast missed a node")
	}
}

func TestDropHook(t *testing.T) {
	eng := sim.NewEngine()
	sw := NewSwitch(eng, sim.Microsecond)
	rec := &recorder{eng: eng}
	sw.Attach(packet.APIP(1), rec)
	sw.Drop = func(packet.IPv4Addr, packet.Message) bool { return true }
	_ = sw.Send(packet.ControllerIP, packet.APIP(1), &packet.Stop{})
	eng.Run()
	if len(rec.msgs) != 0 {
		t.Error("dropped message was delivered")
	}
	sent, dropped, _ := sw.Stats()
	if sent != 0 || dropped != 1 {
		t.Errorf("stats = %d sent, %d dropped", sent, dropped)
	}
}

func TestRandomDropRate(t *testing.T) {
	rnd := sim.NewRNG(1).Stream("drop")
	drop := RandomDrop(0.3, rnd)
	n, dropped := 10000, 0
	for i := 0; i < n; i++ {
		if drop(packet.APIP(1), &packet.Stop{}) {
			dropped++
		}
	}
	rate := float64(dropped) / float64(n)
	if rate < 0.27 || rate > 0.33 {
		t.Errorf("drop rate = %v, want ≈ 0.3", rate)
	}
}

func TestDropTypesSelective(t *testing.T) {
	rnd := sim.NewRNG(2).Stream("drop")
	drop := DropTypes(1.0, rnd, packet.MsgStop)
	if !drop(packet.APIP(1), &packet.Stop{}) {
		t.Error("Stop not dropped")
	}
	if drop(packet.APIP(1), &packet.Start{}) {
		t.Error("Start dropped despite not being listed")
	}
}

func TestAttachNilPanics(t *testing.T) {
	sw := NewSwitch(sim.NewEngine(), sim.Microsecond)
	defer func() {
		if recover() == nil {
			t.Error("nil node accepted")
		}
	}()
	sw.Attach(packet.APIP(0), nil)
}

func TestNodeFunc(t *testing.T) {
	called := false
	var n Node = NodeFunc(func(packet.IPv4Addr, packet.Message) { called = true })
	n.HandleBackhaul(packet.ControllerIP, &packet.Stop{})
	if !called {
		t.Error("NodeFunc not invoked")
	}
}
