package backhaul

import (
	"testing"

	"wgtt/internal/packet"
	"wgtt/internal/sim"
)

type recorder struct {
	msgs []packet.Message
	from []packet.IPv4Addr
	at   []sim.Time
	eng  *sim.Engine
}

func (r *recorder) HandleBackhaul(from packet.IPv4Addr, msg packet.Message) {
	r.msgs = append(r.msgs, msg)
	r.from = append(r.from, from)
	r.at = append(r.at, r.eng.Now())
}

func TestSendLatencyAndDelivery(t *testing.T) {
	eng := sim.NewEngine()
	sw := NewSwitch(eng, 200*sim.Microsecond)
	rec := &recorder{eng: eng}
	sw.Attach(packet.APIP(1), rec)

	msg := &packet.Stop{Client: packet.ClientMAC(1), NextAP: packet.APIP(2), SwitchID: 5}
	if err := sw.Send(packet.ControllerIP, packet.APIP(1), msg); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if len(rec.msgs) != 1 {
		t.Fatalf("delivered %d messages", len(rec.msgs))
	}
	if rec.at[0] != 200*sim.Microsecond {
		t.Errorf("delivered at %v, want 200µs", rec.at[0])
	}
	if rec.from[0] != packet.ControllerIP {
		t.Errorf("from = %v", rec.from[0])
	}
	got, ok := rec.msgs[0].(*packet.Stop)
	if !ok || got.SwitchID != 5 || got.Client != packet.ClientMAC(1) {
		t.Errorf("message mangled: %+v", rec.msgs[0])
	}
}

func TestSendUnattached(t *testing.T) {
	sw := NewSwitch(sim.NewEngine(), sim.Microsecond)
	if err := sw.Send(packet.ControllerIP, packet.APIP(9), &packet.Stop{}); err == nil {
		t.Error("send to unattached address succeeded")
	}
}

func TestVerifyRoundTripsWire(t *testing.T) {
	eng := sim.NewEngine()
	sw := NewSwitch(eng, sim.Microsecond)
	rec := &recorder{eng: eng}
	sw.Attach(packet.APIP(1), rec)
	orig := &packet.Start{Client: packet.ClientMAC(2), Index: 777, SwitchID: 3}
	if err := sw.Send(packet.APIP(0), packet.APIP(1), orig); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if rec.msgs[0] == packet.Message(orig) {
		t.Error("Verify mode should deliver a decoded copy, not the original pointer")
	}
	got := rec.msgs[0].(*packet.Start)
	if *got != *orig {
		t.Errorf("decoded copy differs: %+v vs %+v", got, orig)
	}
	_, _, bytes := sw.Stats()
	if bytes == 0 {
		t.Error("byte accounting missing")
	}
}

func TestVerifyOff(t *testing.T) {
	eng := sim.NewEngine()
	sw := NewSwitch(eng, sim.Microsecond)
	sw.Verify = false
	rec := &recorder{eng: eng}
	sw.Attach(packet.APIP(1), rec)
	orig := &packet.Start{Index: 1}
	_ = sw.Send(packet.APIP(0), packet.APIP(1), orig)
	eng.Run()
	if rec.msgs[0] != packet.Message(orig) {
		t.Error("Verify off should deliver the original")
	}
}

func TestBroadcast(t *testing.T) {
	eng := sim.NewEngine()
	sw := NewSwitch(eng, sim.Microsecond)
	recs := make([]*recorder, 3)
	for i := range recs {
		recs[i] = &recorder{eng: eng}
		sw.Attach(packet.APIP(i), recs[i])
	}
	sw.Broadcast(packet.APIP(0), &packet.AssocSync{Client: packet.ClientMAC(1), AID: 1})
	eng.Run()
	if len(recs[0].msgs) != 0 {
		t.Error("broadcast echoed to sender")
	}
	if len(recs[1].msgs) != 1 || len(recs[2].msgs) != 1 {
		t.Error("broadcast missed a node")
	}
}

func TestDropHook(t *testing.T) {
	eng := sim.NewEngine()
	sw := NewSwitch(eng, sim.Microsecond)
	rec := &recorder{eng: eng}
	sw.Attach(packet.APIP(1), rec)
	sw.Drop = func(packet.IPv4Addr, packet.Message) bool { return true }
	_ = sw.Send(packet.ControllerIP, packet.APIP(1), &packet.Stop{})
	eng.Run()
	if len(rec.msgs) != 0 {
		t.Error("dropped message was delivered")
	}
	sent, dropped, _ := sw.Stats()
	if sent != 0 || dropped != 1 {
		t.Errorf("stats = %d sent, %d dropped", sent, dropped)
	}
}

func TestRandomDropRate(t *testing.T) {
	rnd := sim.NewRNG(1).Stream("drop")
	drop := RandomDrop(0.3, rnd)
	n, dropped := 10000, 0
	for i := 0; i < n; i++ {
		if drop(packet.APIP(1), &packet.Stop{}) {
			dropped++
		}
	}
	rate := float64(dropped) / float64(n)
	if rate < 0.27 || rate > 0.33 {
		t.Errorf("drop rate = %v, want ≈ 0.3", rate)
	}
}

func TestDropTypesSelective(t *testing.T) {
	rnd := sim.NewRNG(2).Stream("drop")
	drop := DropTypes(1.0, rnd, packet.MsgStop)
	if !drop(packet.APIP(1), &packet.Stop{}) {
		t.Error("Stop not dropped")
	}
	if drop(packet.APIP(1), &packet.Start{}) {
		t.Error("Start dropped despite not being listed")
	}
}

func TestChainComposesHooks(t *testing.T) {
	dropStop := func(_ packet.IPv4Addr, m packet.Message) bool { return m.Type() == packet.MsgStop }
	dropStart := func(_ packet.IPv4Addr, m packet.Message) bool { return m.Type() == packet.MsgStart }
	chained := Chain(dropStop, nil, dropStart)
	if !chained(packet.APIP(1), &packet.Stop{}) || !chained(packet.APIP(1), &packet.Start{}) {
		t.Error("chained hook let a listed type through")
	}
	if chained(packet.APIP(1), &packet.SwitchAck{}) {
		t.Error("chained hook dropped an unlisted type")
	}
}

func TestChainShortCircuits(t *testing.T) {
	calls := 0
	first := func(packet.IPv4Addr, packet.Message) bool { return true }
	second := func(packet.IPv4Addr, packet.Message) bool { calls++; return false }
	if !Chain(first, second)(packet.APIP(1), &packet.Stop{}) {
		t.Fatal("drop lost in composition")
	}
	if calls != 0 {
		t.Error("later hook consulted after an earlier hook already dropped")
	}
}

func TestChainDegenerateCases(t *testing.T) {
	if Chain() != nil || Chain(nil, nil) != nil {
		t.Error("all-nil chain should be nil (no hook installed)")
	}
	only := func(packet.IPv4Addr, packet.Message) bool { return true }
	got := Chain(nil, only)
	if got == nil || !got(packet.APIP(1), &packet.Stop{}) {
		t.Error("single-hook chain should behave as the hook itself")
	}
}

func TestDelayHookAddsLatency(t *testing.T) {
	eng := sim.NewEngine()
	sw := NewSwitch(eng, 200*sim.Microsecond)
	rec := &recorder{eng: eng}
	sw.Attach(packet.APIP(1), rec)
	sw.Delay = func(_ packet.IPv4Addr, m packet.Message) sim.Time {
		if m.Type() == packet.MsgStop {
			return 5 * sim.Millisecond
		}
		return 0
	}
	_ = sw.Send(packet.ControllerIP, packet.APIP(1), &packet.Stop{})
	_ = sw.Send(packet.ControllerIP, packet.APIP(1), &packet.Start{})
	eng.Run()
	if len(rec.msgs) != 2 {
		t.Fatalf("delivered %d messages", len(rec.msgs))
	}
	// The undelayed Start arrives first, the spiked Stop 5 ms later.
	if rec.msgs[0].Type() != packet.MsgStart || rec.at[0] != 200*sim.Microsecond {
		t.Errorf("undelayed message at %v (%v)", rec.at[0], rec.msgs[0].Type())
	}
	if rec.msgs[1].Type() != packet.MsgStop || rec.at[1] != 200*sim.Microsecond+5*sim.Millisecond {
		t.Errorf("delayed message at %v (%v)", rec.at[1], rec.msgs[1].Type())
	}
}

// The health probe/ack pair must survive the Verify wire round trip like
// every other backhaul message.
func TestVerifyHealthMessages(t *testing.T) {
	eng := sim.NewEngine()
	sw := NewSwitch(eng, sim.Microsecond)
	rec := &recorder{eng: eng}
	sw.Attach(packet.APIP(1), rec)
	probe := &packet.HealthProbe{Seq: 7, At: 123}
	ack := &packet.HealthAck{AP: packet.APIP(1), Seq: 7, At: 123}
	if err := sw.Send(packet.ControllerIP, packet.APIP(1), probe); err != nil {
		t.Fatal(err)
	}
	if err := sw.Send(packet.APIP(1), packet.APIP(1), ack); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if len(rec.msgs) != 2 {
		t.Fatalf("delivered %d messages", len(rec.msgs))
	}
	gotProbe := rec.msgs[0].(*packet.HealthProbe)
	if gotProbe == probe || *gotProbe != *probe {
		t.Errorf("probe round trip: got %+v (same pointer: %v)", gotProbe, gotProbe == probe)
	}
	gotAck := rec.msgs[1].(*packet.HealthAck)
	if gotAck == ack || *gotAck != *ack {
		t.Errorf("ack round trip: got %+v (same pointer: %v)", gotAck, gotAck == ack)
	}
}

func TestAttachNilPanics(t *testing.T) {
	sw := NewSwitch(sim.NewEngine(), sim.Microsecond)
	defer func() {
		if recover() == nil {
			t.Error("nil node accepted")
		}
	}()
	sw.Attach(packet.APIP(0), nil)
}

func TestNodeFunc(t *testing.T) {
	called := false
	var n Node = NodeFunc(func(packet.IPv4Addr, packet.Message) { called = true })
	n.HandleBackhaul(packet.ControllerIP, &packet.Stop{})
	if !called {
		t.Error("NodeFunc not invoked")
	}
}

// Broadcast must deliver in attach order, not map order: attach many
// addresses in a known sequence and require the delivery sequence (same
// latency, so delivery order == scheduling order) to match it exactly,
// every time. With map iteration this fails almost surely across 32 nodes.
func TestBroadcastDeterministicAttachOrder(t *testing.T) {
	eng := sim.NewEngine()
	sw := NewSwitch(eng, sim.Microsecond)
	const n = 32
	shared := &orderRecorder{eng: eng}
	for i := 0; i < n; i++ {
		addr := packet.APIP(i)
		sw.Attach(addr, NodeFunc(func(from packet.IPv4Addr, msg packet.Message) {
			shared.got = append(shared.got, addr)
		}))
	}
	sw.Broadcast(packet.ControllerIP, &packet.AssocSync{Client: packet.ClientMAC(1)})
	eng.Run()
	if len(shared.got) != n {
		t.Fatalf("delivered to %d nodes, want %d", len(shared.got), n)
	}
	for i, addr := range shared.got {
		if addr != packet.APIP(i) {
			t.Fatalf("delivery %d went to %v, want %v (attach order violated)", i, addr, packet.APIP(i))
		}
	}
	// Re-attaching must keep the original position.
	sw.Attach(packet.APIP(0), NodeFunc(func(from packet.IPv4Addr, msg packet.Message) {
		shared.got = append(shared.got, packet.APIP(0))
	}))
	shared.got = nil
	sw.Broadcast(packet.APIP(n-1), &packet.AssocSync{Client: packet.ClientMAC(1)})
	eng.Run()
	if len(shared.got) != n-1 || shared.got[0] != packet.APIP(0) {
		t.Fatalf("after re-attach: got %d deliveries, first %v", len(shared.got), shared.got[0])
	}
}

type orderRecorder struct {
	eng *sim.Engine
	got []packet.IPv4Addr
}

// Byte accounting must not depend on Verify: the same traffic yields the
// same byte count either way, and it equals the messages' envelope sizes.
func TestByteAccountingUnconditional(t *testing.T) {
	msgs := []packet.Message{
		&packet.Stop{Client: packet.ClientMAC(1), NextAP: packet.APIP(1), SwitchID: 1},
		&packet.Start{Client: packet.ClientMAC(1), Index: 9, SwitchID: 1},
		&packet.CSIReport{Client: packet.ClientMAC(1), AP: packet.APIP(0)},
	}
	want := uint64(0)
	for _, m := range msgs {
		want += uint64(3 + m.WireSize())
	}
	for _, verify := range []bool{true, false} {
		eng := sim.NewEngine()
		sw := NewSwitch(eng, sim.Microsecond)
		sw.Verify = verify
		sw.Attach(packet.APIP(1), &recorder{eng: eng})
		for _, m := range msgs {
			if err := sw.Send(packet.ControllerIP, packet.APIP(1), m); err != nil {
				t.Fatal(err)
			}
		}
		eng.Run()
		_, _, bytes := sw.Stats()
		if bytes != want {
			t.Errorf("Verify=%v: bytes = %d, want %d", verify, bytes, want)
		}
	}
}

// Dropped messages never hit the wire, so they must not be counted.
func TestByteAccountingSkipsDropped(t *testing.T) {
	eng := sim.NewEngine()
	sw := NewSwitch(eng, sim.Microsecond)
	sw.Verify = false
	sw.Attach(packet.APIP(1), &recorder{eng: eng})
	sw.Drop = func(packet.IPv4Addr, packet.Message) bool { return true }
	_ = sw.Send(packet.ControllerIP, packet.APIP(1), &packet.Stop{})
	if _, _, bytes := sw.Stats(); bytes != 0 {
		t.Errorf("dropped message accounted %d bytes", bytes)
	}
}
