// Package backhaul models the switched Ethernet LAN that interconnects the
// WGTT APs and the controller (§4). Only two of its properties matter to the
// protocols built on top: sub-millisecond unicast latency, and the fact that
// control messages can occasionally be lost (the paper's switching protocol
// carries a 30 ms retransmission timeout for exactly that case), which the
// Drop hook lets tests inject.
package backhaul

import (
	"fmt"
	"math/rand/v2"

	"wgtt/internal/packet"
	"wgtt/internal/sim"
)

// Node receives backhaul messages.
type Node interface {
	// HandleBackhaul delivers one message sent to this node's address.
	HandleBackhaul(from packet.IPv4Addr, msg packet.Message)
}

// NodeFunc adapts a function to the Node interface.
type NodeFunc func(from packet.IPv4Addr, msg packet.Message)

// HandleBackhaul implements Node.
func (f NodeFunc) HandleBackhaul(from packet.IPv4Addr, msg packet.Message) { f(from, msg) }

// Fabric is the transport abstraction the protocol cores send through: the
// in-memory Switch below (simulation — typed messages, virtual latency) and
// the real-socket fabric in backhaul/udp (live mode — every message passes
// its wire encoding) both implement it, which is what lets one controller
// and AP implementation run on either substrate (DESIGN.md §12).
type Fabric interface {
	// Attach registers a node at an address; attaching twice replaces the
	// previous node.
	Attach(addr packet.IPv4Addr, n Node)
	// Send delivers msg from one address to another. Sending to an address
	// the fabric cannot resolve returns an error — an assembly bug, not a
	// transient loss (losses are silent, as on a real network).
	Send(from, to packet.IPv4Addr, msg packet.Message) error
	// Broadcast sends msg to every other node the fabric knows, in a
	// deterministic address order.
	Broadcast(from packet.IPv4Addr, msg packet.Message)
}

// ManySender is the optional fan-out fast path a Fabric may implement: one
// message encoded once and replicated to every target, instead of a
// per-target Send that re-encodes each copy. Implementations must never
// retain msg past the call — they materialize the delivered copy (or the
// wire bytes) synchronously, so callers may reuse a scratch message
// immediately. Per-destination delivery order matches the equivalent Send
// loop: each target sees messages from one sender in the order they were
// sent.
type ManySender interface {
	// SendMany delivers msg from one address to each target, in slice
	// order. Targets the fabric cannot resolve are skipped — the same
	// outcome as the per-target Send loop, whose per-target errors the
	// fan-out path ignores.
	SendMany(from packet.IPv4Addr, tos []packet.IPv4Addr, msg packet.Message)
}

// SendToAll replicates msg to every target through f's fan-out fast path
// when it implements ManySender, else through a per-target Send loop. It is
// the one call site pattern the controller's downlink fan-out uses, so a
// fabric only has to implement SendMany to accelerate it.
func SendToAll(f Fabric, from packet.IPv4Addr, tos []packet.IPv4Addr, msg packet.Message) {
	if ms, ok := f.(ManySender); ok {
		ms.SendMany(from, tos, msg)
		return
	}
	for _, to := range tos {
		_ = f.Send(from, to, msg)
	}
}

// Switch is the Ethernet fabric. It is store-and-forward with a fixed
// one-way latency; bandwidth is assumed ample (the paper's gigabit LAN
// never saturates at roadside AP loads).
type Switch struct {
	eng     *sim.Engine
	latency sim.Time
	nodes   map[packet.IPv4Addr]Node
	// order lists attached addresses in first-attach order: Broadcast
	// iterates it instead of the map, whose per-process iteration order
	// would otherwise leak into delivery order and break determinism.
	order []packet.IPv4Addr

	// Verify, when true, runs every message through its wire encoding and
	// delivers the decoded copy, so the binary formats are exercised on
	// every simulated send.
	Verify bool

	// Drop, if non-nil, is consulted per message; returning true discards
	// it (control-loss failure injection). Compose multiple hooks with
	// Chain.
	Drop func(to packet.IPv4Addr, msg packet.Message) bool

	// Delay, if non-nil, returns extra one-way latency added to this
	// message on top of the base switch latency (backhaul congestion /
	// latency-spike injection, DESIGN.md §11). Non-positive returns add
	// nothing.
	Delay func(to packet.IPv4Addr, msg packet.Message) sim.Time

	sent    uint64
	dropped uint64
	bytes   uint64

	// encScratch is SendMany's reusable encode buffer; the switch runs on
	// the single simulation goroutine, so one buffer serves every send.
	encScratch []byte
	// dfree pools manyDelivery batches so a steady-state fan-out schedules
	// its combined delivery event without allocating.
	dfree []*manyDelivery
}

// NewSwitch creates a switch with the given one-way delivery latency.
func NewSwitch(eng *sim.Engine, latency sim.Time) *Switch {
	return &Switch{
		eng:     eng,
		latency: latency,
		nodes:   make(map[packet.IPv4Addr]Node),
		Verify:  true,
	}
}

// Latency returns the one-way delivery latency.
func (s *Switch) Latency() sim.Time { return s.latency }

// Attach registers a node at an address. Attaching twice replaces the
// previous node (useful in tests) but keeps the address's original
// position in the broadcast order.
func (s *Switch) Attach(addr packet.IPv4Addr, n Node) {
	if n == nil {
		panic("backhaul: nil node")
	}
	if _, seen := s.nodes[addr]; !seen {
		s.order = append(s.order, addr)
	}
	s.nodes[addr] = n
}

// Send delivers msg to the node at to after the switch latency. Sending to
// an unattached address returns an error — it is always an assembly bug.
func (s *Switch) Send(from, to packet.IPv4Addr, msg packet.Message) error {
	node, ok := s.nodes[to]
	if !ok {
		return fmt.Errorf("backhaul: no node at %v", to)
	}
	if s.Drop != nil && s.Drop(to, msg) {
		s.dropped++
		return nil
	}
	// Byte accounting is unconditional: the envelope is 3 bytes plus the
	// payload's WireSize, which packet's codec tests pin to the encoder's
	// actual output, so the count matches what Verify would have measured.
	s.bytes += uint64(3 + msg.WireSize())
	deliver := msg
	if s.Verify {
		raw := packet.Encode(msg)
		decoded, err := packet.Decode(raw)
		if err != nil {
			return fmt.Errorf("backhaul: wire round-trip of %v failed: %w", msg.Type(), err)
		}
		deliver = decoded
	}
	s.sent++
	lat := s.latency
	if s.Delay != nil {
		if d := s.Delay(to, msg); d > 0 {
			lat += d
		}
	}
	s.eng.After(lat, func() { node.HandleBackhaul(from, deliver) })
	return nil
}

// Broadcast sends msg to every attached node except the sender, in attach
// order — a deterministic sequence, where map iteration would randomize the
// delivery (and with it every downstream tiebreak) per process.
func (s *Switch) Broadcast(from packet.IPv4Addr, msg packet.Message) {
	for _, addr := range s.order {
		if addr == from {
			continue
		}
		// Errors are impossible here: every address is attached.
		_ = s.Send(from, addr, msg)
	}
}

// manyDelivery is one pooled fan-out delivery batch: the N same-instant
// per-target delivery events a Send loop would have scheduled, collapsed
// into a single engine event that walks the targets in the same order. The
// engine delivers same-time events FIFO and SendMany schedules nothing in
// between, so the per-node delivery sequence is identical to the loop's.
type manyDelivery struct {
	sw    *Switch
	from  packet.IPv4Addr
	msg   packet.Message
	nodes []Node
	// run is the pre-bound method value handed to the engine, allocated
	// once per pooled batch instead of once per send.
	run func()
}

func (d *manyDelivery) fire() {
	for _, n := range d.nodes {
		n.HandleBackhaul(d.from, d.msg)
	}
	d.recycle()
}

func (d *manyDelivery) recycle() {
	d.msg = nil
	d.nodes = d.nodes[:0]
	d.sw.dfree = append(d.sw.dfree, d)
}

func (s *Switch) getDelivery() *manyDelivery {
	if n := len(s.dfree); n > 0 {
		d := s.dfree[n-1]
		s.dfree = s.dfree[:n-1]
		return d
	}
	d := &manyDelivery{sw: s}
	d.run = d.fire
	return d
}

// SendMany implements ManySender: encode msg once, deliver the decoded copy
// to every attached target in slice order. Per-target accounting matches
// the equivalent Send loop — unattached targets are skipped, bytes and sent
// count per attached copy — and the codec round-trip happens regardless of
// Verify, which is what lets callers reuse msg immediately (the
// non-retention contract; plain Send retains msg in its delivery closure
// when Verify is off).
//
// With a Drop or Delay hook installed SendMany falls back to the per-target
// Send loop: the hooks consult their RNG once per (target, message) in
// target order, and a fault-injected run's draw sequence — and with it its
// byte-identical replay — must not depend on which send path the caller
// picked.
func (s *Switch) SendMany(from packet.IPv4Addr, tos []packet.IPv4Addr, msg packet.Message) {
	s.encScratch = packet.EncodeInto(s.encScratch[:0], msg)
	decoded, err := packet.Decode(s.encScratch)
	if err != nil {
		// Unencodable message: nothing deliverable (the codec tests make
		// this unreachable for every real message type).
		return
	}
	if s.Drop != nil || s.Delay != nil {
		for _, to := range tos {
			_ = s.Send(from, to, decoded)
		}
		return
	}
	d := s.getDelivery()
	size := uint64(3 + msg.WireSize())
	for _, to := range tos {
		node, ok := s.nodes[to]
		if !ok {
			continue
		}
		s.bytes += size
		s.sent++
		d.nodes = append(d.nodes, node)
	}
	if len(d.nodes) == 0 {
		d.recycle()
		return
	}
	d.from, d.msg = from, decoded
	s.eng.After(s.latency, d.run)
}

// Stats reports the number of delivered and dropped messages and the total
// encoded bytes of everything sent (counted whether or not Verify is on).
func (s *Switch) Stats() (sent, dropped, bytes uint64) { return s.sent, s.dropped, s.bytes }

// RandomDrop returns a Drop hook that discards each message independently
// with probability p, using the given stream.
func RandomDrop(p float64, rnd *rand.Rand) func(packet.IPv4Addr, packet.Message) bool {
	return func(packet.IPv4Addr, packet.Message) bool { return rnd.Float64() < p }
}

// Chain composes drop hooks: a message is dropped if any hook drops it.
// Nil hooks are skipped, so Chain(sw.Drop, extra) composes with whatever is
// (or isn't) already installed — fault injection no longer clobbers a hook
// a scenario or test installed first. Hooks run in argument order and
// evaluation stops at the first hook that drops, so any RNG draws made by
// later hooks happen only for messages the earlier hooks let through;
// given a fixed message sequence the composition is still deterministic.
func Chain(hooks ...func(packet.IPv4Addr, packet.Message) bool) func(packet.IPv4Addr, packet.Message) bool {
	var active []func(packet.IPv4Addr, packet.Message) bool
	for _, h := range hooks {
		if h != nil {
			active = append(active, h)
		}
	}
	switch len(active) {
	case 0:
		return nil
	case 1:
		return active[0]
	}
	return func(to packet.IPv4Addr, msg packet.Message) bool {
		for _, h := range active {
			if h(to, msg) {
				return true
			}
		}
		return false
	}
}

// DropTypes returns a Drop hook that discards messages of the listed types
// with probability p — e.g. only Stop and SwitchAck, to exercise the
// switching protocol's 30 ms retransmission path.
func DropTypes(p float64, rnd *rand.Rand, types ...packet.MsgType) func(packet.IPv4Addr, packet.Message) bool {
	set := make(map[packet.MsgType]bool, len(types))
	for _, t := range types {
		set[t] = true
	}
	return func(_ packet.IPv4Addr, msg packet.Message) bool {
		return set[msg.Type()] && rnd.Float64() < p
	}
}
