package backhaul

import (
	"math/rand/v2"
	"testing"

	"wgtt/internal/packet"
	"wgtt/internal/sim"
)

// recNode records every delivery it receives, in order.
type recNode struct {
	from []packet.IPv4Addr
	msgs []packet.Message
}

func (r *recNode) HandleBackhaul(from packet.IPv4Addr, msg packet.Message) {
	r.from = append(r.from, from)
	r.msgs = append(r.msgs, msg)
}

func downMsg(index uint16) *packet.DownData {
	return &packet.DownData{Pkt: &packet.Packet{
		ClientMAC: packet.ClientMAC(1), Index: index, Bytes: 1200,
	}}
}

// SendMany must be observationally identical to the per-target Send loop:
// same stats, same per-node delivery sequence, unattached targets skipped.
func TestSendManyMatchesSendLoop(t *testing.T) {
	build := func() (*sim.Engine, *Switch, []*recNode, []packet.IPv4Addr) {
		eng := sim.NewEngine()
		sw := NewSwitch(eng, 200*sim.Microsecond)
		nodes := make([]*recNode, 4)
		addrs := make([]packet.IPv4Addr, 4)
		for i := range nodes {
			nodes[i] = &recNode{}
			addrs[i] = packet.APIP(i)
			sw.Attach(addrs[i], nodes[i])
		}
		return eng, sw, nodes, addrs
	}

	unattached := packet.APIP(9)
	engA, swA, nodesA, addrs := build()
	engB, swB, nodesB, _ := build()
	for round := uint16(0); round < 3; round++ {
		tos := []packet.IPv4Addr{addrs[2], addrs[0], unattached, addrs[3]}
		for _, to := range tos {
			_ = swA.Send(packet.ControllerIP, to, downMsg(round))
		}
		swB.SendMany(packet.ControllerIP, tos, downMsg(round))
	}
	engA.Run()
	engB.Run()

	aSent, aDrop, aBytes := swA.Stats()
	bSent, bDrop, bBytes := swB.Stats()
	if aSent != bSent || aDrop != bDrop || aBytes != bBytes {
		t.Fatalf("stats diverge: Send loop (%d,%d,%d) vs SendMany (%d,%d,%d)",
			aSent, aDrop, aBytes, bSent, bDrop, bBytes)
	}
	for i := range nodesA {
		a, b := nodesA[i], nodesB[i]
		if len(a.msgs) != len(b.msgs) {
			t.Fatalf("node %d: Send loop delivered %d, SendMany %d", i, len(a.msgs), len(b.msgs))
		}
		for j := range a.msgs {
			am, bm := a.msgs[j].(*packet.DownData), b.msgs[j].(*packet.DownData)
			if am.Pkt.Index != bm.Pkt.Index || a.from[j] != b.from[j] {
				t.Fatalf("node %d msg %d: loop (%v from %v) vs many (%v from %v)",
					i, j, am.Pkt.Index, a.from[j], bm.Pkt.Index, b.from[j])
			}
		}
	}
}

// SendMany never retains msg: the caller may scribble over it the moment the
// call returns, and the delivered copies are unaffected.
func TestSendManyNonRetention(t *testing.T) {
	eng := sim.NewEngine()
	sw := NewSwitch(eng, 200*sim.Microsecond)
	sw.Verify = false // retention is most tempting with the codec off
	n := &recNode{}
	sw.Attach(packet.APIP(0), n)

	msg := downMsg(7)
	sw.SendMany(packet.ControllerIP, []packet.IPv4Addr{packet.APIP(0)}, msg)
	msg.Pkt.Index = 999 // reuse the scratch before the engine delivers
	msg.Pkt = nil
	eng.Run()

	if len(n.msgs) != 1 {
		t.Fatalf("delivered %d messages, want 1", len(n.msgs))
	}
	got := n.msgs[0].(*packet.DownData)
	if got.Pkt == nil || got.Pkt.Index != 7 {
		t.Fatalf("delivered copy aliased the caller's scratch: %+v", got)
	}
}

// With a Drop hook installed, SendMany must consume exactly the same RNG
// draw sequence as the Send loop, so chaos runs replay byte-identically
// whichever path the caller used.
func TestSendManyDropHookDeterminism(t *testing.T) {
	run := func(useMany bool) (delivered int, next float64) {
		eng := sim.NewEngine()
		sw := NewSwitch(eng, 200*sim.Microsecond)
		rnd := rand.New(rand.NewPCG(42, 1))
		sw.Drop = RandomDrop(0.5, rnd)
		nodes := make([]*recNode, 3)
		var tos []packet.IPv4Addr
		for i := range nodes {
			nodes[i] = &recNode{}
			sw.Attach(packet.APIP(i), nodes[i])
			tos = append(tos, packet.APIP(i))
		}
		for round := uint16(0); round < 20; round++ {
			if useMany {
				sw.SendMany(packet.ControllerIP, tos, downMsg(round))
			} else {
				for _, to := range tos {
					_ = sw.Send(packet.ControllerIP, to, downMsg(round))
				}
			}
		}
		eng.Run()
		for _, n := range nodes {
			delivered += len(n.msgs)
		}
		return delivered, rnd.Float64()
	}
	dLoop, rLoop := run(false)
	dMany, rMany := run(true)
	if dLoop != dMany || rLoop != rMany {
		t.Fatalf("drop-hook divergence: loop delivered %d (next draw %v), many delivered %d (next draw %v)",
			dLoop, rLoop, dMany, rMany)
	}
	if dLoop == 60 || dLoop == 0 {
		t.Fatalf("drop hook inert: delivered %d of 60", dLoop)
	}
}

// plainFabric implements Fabric but not ManySender.
type plainFabric struct {
	sends []packet.IPv4Addr
}

func (p *plainFabric) Attach(packet.IPv4Addr, Node) {}
func (p *plainFabric) Send(_, to packet.IPv4Addr, _ packet.Message) error {
	p.sends = append(p.sends, to)
	return nil
}
func (p *plainFabric) Broadcast(packet.IPv4Addr, packet.Message) {}

// SendToAll falls back to a per-target Send loop for fabrics without the
// fan-out fast path.
func TestSendToAllFallback(t *testing.T) {
	p := &plainFabric{}
	tos := []packet.IPv4Addr{packet.APIP(2), packet.APIP(0)}
	SendToAll(p, packet.ControllerIP, tos, downMsg(1))
	if len(p.sends) != 2 || p.sends[0] != tos[0] || p.sends[1] != tos[1] {
		t.Fatalf("fallback sends = %v, want %v", p.sends, tos)
	}
}

// Steady-state SendMany allocates only the delivered copy — the decoded
// DownData and its Packet, which receivers retain so they cannot be pooled —
// and nothing per target: pooled delivery batches, reused encode scratch.
// The old per-target Send loop allocated an encode buffer plus a decoded
// copy for every target.
func TestSendManyZeroAllocPerTarget(t *testing.T) {
	measure := func(width int) float64 {
		eng := sim.NewEngine()
		sw := NewSwitch(eng, 200*sim.Microsecond)
		var tos []packet.IPv4Addr
		for i := 0; i < width; i++ {
			sw.Attach(packet.APIP(i), NodeFunc(func(packet.IPv4Addr, packet.Message) {}))
			tos = append(tos, packet.APIP(i))
		}
		msg := downMsg(1)
		send := func() {
			sw.SendMany(packet.ControllerIP, tos, msg)
			eng.Run() // drain so the delivery batch recycles
		}
		for i := 0; i < 4; i++ {
			send()
		}
		return testing.AllocsPerRun(100, send)
	}
	narrow, wide := measure(2), measure(64)
	if narrow != wide {
		t.Fatalf("allocations scale with fan-out width: %.1f/op at 2 targets, %.1f/op at 64", narrow, wide)
	}
	if wide > 2 {
		t.Fatalf("SendMany steady state allocates %.1f/op, want <= 2 (the delivered copy)", wide)
	}
}
