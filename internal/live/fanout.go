package live

import (
	"fmt"
	"net"
	"time"

	"wgtt/internal/backhaul/udp"
	"wgtt/internal/packet"
	"wgtt/internal/runtime"
)

// This file is the live fan-out load generator (DESIGN.md §14): it drives
// the §3.1.1 downlink replication path over a real UDP socket at maximum
// rate, which is how the packets-per-second benchmarks compare the
// encode-once batched SendMany path against the per-copy Send loop it
// replaced.

// FanoutResult summarizes one fan-out load run.
type FanoutResult struct {
	APs        int           // fan-out width
	Packets    int           // downlink messages pushed
	Copies     uint64        // per-AP copies those messages produced
	Elapsed    time.Duration // wall time spent sending
	PktsPerSec float64       // sustained copies per second
	Stats      udp.Stats     // the sending fabric's counters
}

// MeasureFanout pushes packets downlink messages through a loopback
// udp.Fabric, each fanned out to numAPs virtual APs hosted behind one sink
// endpoint, and reports the sustained copy rate. batched selects the
// SendMany fast path — encode once, one batch datagram per endpoint,
// sendmmsg on Linux; false replays the per-copy Send loop it replaced, the
// benchmark's baseline. The sink is never read: once its receive buffer
// fills the kernel drops the overflow silently, which is exactly UDP's
// contract and keeps the measurement on the send path.
func MeasureFanout(numAPs, packets int, batched bool) (FanoutResult, error) {
	if numAPs < 1 || packets < 1 {
		return FanoutResult{}, fmt.Errorf("live: fan-out needs at least 1 AP and 1 packet")
	}
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return FanoutResult{}, err
	}
	defer conn.Close()
	sink, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return FanoutResult{}, err
	}
	defer sink.Close()

	table := make(map[packet.IPv4Addr]string, numAPs)
	targets := make([]packet.IPv4Addr, numAPs)
	for i := 0; i < numAPs; i++ {
		table[packet.APIP(i)] = sink.LocalAddr().String()
		targets[i] = packet.APIP(i)
	}
	fab, err := udp.New(runtime.NewWall(), conn, table)
	if err != nil {
		return FanoutResult{}, err
	}

	msg := &packet.DownData{Pkt: &packet.Packet{
		ClientMAC: Client, DstIP: ClientIP, Bytes: 1200,
	}}
	start := time.Now()
	for i := 0; i < packets; i++ {
		msg.Pkt.Index = packet.NextIndex(msg.Pkt.Index)
		if batched {
			fab.SendMany(packet.ControllerIP, targets, msg)
		} else {
			for _, to := range targets {
				_ = fab.Send(packet.ControllerIP, to, msg)
			}
		}
	}
	elapsed := time.Since(start)
	res := FanoutResult{
		APs:     numAPs,
		Packets: packets,
		Copies:  uint64(packets) * uint64(numAPs),
		Elapsed: elapsed,
		Stats:   fab.Stats(),
	}
	if s := elapsed.Seconds(); s > 0 {
		res.PktsPerSec = float64(res.Copies) / s
	}
	return res, nil
}
