// Package live assembles the transport-agnostic protocol cores into
// runnable wall-clock nodes: one controller process and N AP processes over
// a real UDP backhaul (DESIGN.md §12). It exists to prove, end to end, that
// the §3.1.1 selection rule and the §3.1.2 stop→start→ack switching
// protocol — the exact code paths the simulator exercises in virtual time —
// execute over real sockets with every backhaul message passing through its
// wire encoding.
//
// Live mode has no simulated radio: each AP feeds the controller a scripted
// CSI trace (a linear ESNR ramp), standing in for the per-frame CSI a real
// monitor-mode NIC would deliver (§3.1.1). Two crossing ramps make the
// controller's windowed-median argmax flip from AP 1 to AP 2, triggering a
// complete stop→start→ack handover between the processes.
package live

import (
	"fmt"
	"math/rand/v2"
	"net"
	"sync"

	"wgtt/internal/ap"
	"wgtt/internal/backhaul/udp"
	"wgtt/internal/controller"
	"wgtt/internal/federation"
	"wgtt/internal/packet"
	"wgtt/internal/runtime"
	"wgtt/internal/selector"
	"wgtt/internal/sim"
)

// Client is the mobile client the live scenario hands over.
var Client = packet.ClientMAC(1)

// ClientIP is its WLAN address.
var ClientIP = packet.ClientIP(1)

// CSIScript is a linear ESNR ramp: the report stream AP i feeds the
// controller. Reports carry a flat per-subcarrier SNR of
// StartdB + SlopedBPerSec·t, so the controller-side ESNR tracks the ramp.
type CSIScript struct {
	StartdB       float64
	SlopedBPerSec float64
	Period        sim.Time
}

// DefaultScripts returns the two-AP crossing-ramp scenario: AP 1 starts
// strong and fades, AP 2 starts weak and strengthens, with the crossover
// near t ≈ 240 ms — comfortably past the controller's 10 ms window and
// 40 ms hysteresis, so exactly one switch fires.
func DefaultScripts() []CSIScript {
	return []CSIScript{
		{StartdB: 14, SlopedBPerSec: -20, Period: 2 * sim.Millisecond},
		{StartdB: 2, SlopedBPerSec: 30, Period: 2 * sim.Millisecond},
	}
}

// ControllerConfig is the live controller operating point: the paper's
// selection parameters with the health monitor off (live smoke has no
// failures to detect, and probe traffic would only add noise).
func ControllerConfig() controller.Config {
	cfg := controller.DefaultConfig()
	cfg.HealthInterval = 0
	cfg.DetectTimeout = 0
	return cfg
}

// APConfig is the live AP operating point: default queueing, but fast
// deterministic control processing so a smoke run completes quickly.
func APConfig(id int) ap.Config {
	cfg := ap.DefaultConfig(id, packet.APMAC(99))
	cfg.StopProcessing = 2 * sim.Millisecond
	cfg.StartProcessing = 2 * sim.Millisecond
	cfg.ProcessingJitter = 0
	return cfg
}

// Table maps the live topology's virtual addresses onto UDP endpoints:
// entry 0 is the controller, entry i+1 is AP i.
func Table(endpoints []string) map[packet.IPv4Addr]string {
	t := make(map[packet.IPv4Addr]string, len(endpoints))
	for i, ep := range endpoints {
		if i == 0 {
			t[packet.ControllerIP] = ep
		} else {
			t[packet.APIP(i-1)] = ep
		}
	}
	return t
}

// RunController drives the controller node until one switch completes or
// timeout elapses, and returns the completed switch record. conn is the
// node's pre-bound socket; table maps every OTHER node's virtual address to
// its endpoint. numAPs is the fleet size; the client starts on AP 0. pol
// selects the AP-selection policy (DESIGN.md §15); "" runs the default
// §3.1.1 windowed-median rule.
func RunController(conn *net.UDPConn, table map[packet.IPv4Addr]string, numAPs int, timeout sim.Time, pol selector.Policy) (controller.SwitchRecord, error) {
	clk := runtime.NewWall()
	fab, err := udp.New(clk, conn, table)
	if err != nil {
		return controller.SwitchRecord{}, err
	}
	infos := make([]controller.APInfo, numAPs)
	for i := range infos {
		infos[i] = controller.APInfo{ID: i, IP: packet.APIP(i), MAC: packet.APMAC(i)}
	}
	cfg := ControllerConfig()
	cfg.Selector.Policy = pol
	ctl := controller.New(cfg, clk, fab, infos)
	ctl.RegisterClient(Client, ClientIP, 0)

	var (
		mu  sync.Mutex
		rec controller.SwitchRecord
		got bool
	)
	ctl.OnSwitch = func(r controller.SwitchRecord) {
		mu.Lock()
		rec, got = r, true
		mu.Unlock()
		clk.Stop()
	}
	clk.After(timeout, clk.Stop)
	fab.Start()
	clk.Run()
	_ = fab.Close()

	mu.Lock()
	defer mu.Unlock()
	if !got {
		return controller.SwitchRecord{}, fmt.Errorf("live: no switch completed within %v", timeout)
	}
	return rec, nil
}

// RunAP drives AP node id: the AP protocol core (stop/start handling, ack
// emission) plus the scripted CSI source, for the given duration. serving
// marks the AP the client is associated with at t = 0; ctlAddr is the AP's
// controller — packet.ControllerIP in the single-controller topology, the
// AP's own domain controller in the federated one.
func RunAP(id int, conn *net.UDPConn, table map[packet.IPv4Addr]string, ctlAddr packet.IPv4Addr, script CSIScript, serving bool, duration sim.Time) (ap.Stats, error) {
	clk := runtime.NewWall()
	fab, err := udp.New(clk, conn, table)
	if err != nil {
		return ap.Stats{}, err
	}
	cfg := APConfig(id)
	node := ap.New(cfg, clk, fab, nil, ctlAddr, rand.New(rand.NewPCG(uint64(id), 0)))
	node.Associate(Client, ClientIP, serving)

	period := script.Period
	if period <= 0 {
		period = 2 * sim.Millisecond
	}
	var tick func()
	tick = func() {
		now := clk.Now()
		db := script.StartdB + script.SlopedBPerSec*float64(now)/float64(sim.Second)
		rep := &packet.CSIReport{Client: Client, AP: cfg.IP, At: int64(now)}
		snr := make([]float64, packet.CSISubcarriers)
		for i := range snr {
			snr[i] = db
		}
		rep.QuantizeSNR(snr)
		_ = fab.Send(cfg.IP, ctlAddr, rep)
		clk.After(period, tick)
	}
	clk.After(period, tick)
	clk.After(duration, clk.Stop)
	fab.Start()
	clk.Run()
	_ = fab.Close()
	return node.Stats, nil
}

// FedDomains is the federated live topology size: two single-AP domains,
// each with its own controller process — the smallest city that exercises
// an inter-controller handoff (DESIGN.md §13).
const FedDomains = 2

// FedTable maps the federated topology onto UDP endpoints: entry d
// (d < FedDomains) is domain d's controller, entry FedDomains+i is AP i.
func FedTable(endpoints []string) map[packet.IPv4Addr]string {
	t := make(map[packet.IPv4Addr]string, len(endpoints))
	for i, ep := range endpoints {
		if i < FedDomains {
			t[packet.DomainControllerIP(i)] = ep
		} else {
			t[packet.APIP(i-FedDomains)] = ep
		}
	}
	return t
}

// FedCity is the federated live city: AP i belongs to domain i.
func FedCity() []federation.APAssignment {
	city := make([]federation.APAssignment, FedDomains)
	for i := range city {
		city[i] = federation.APAssignment{ID: i, Domain: i, IP: packet.APIP(i), MAC: packet.APMAC(i)}
	}
	return city
}

// FedConfig is the live federation operating point: the default handoff
// parameters over the live controller config. The default 250 ms handoff
// hysteresis sits past the scripted ramps' ≈300 ms offer-margin crossing,
// so exactly one handoff fires.
func FedConfig() federation.Config {
	cfg := federation.DefaultConfig()
	cfg.Controller = ControllerConfig()
	return cfg
}

// RunFedController drives controller process domainID of the two-domain
// live city. Domain 0 owns the client on AP 0; domain 1 owns AP 1 and
// relays its CSI to the owner. When the crossing ramps push AP 1 past the
// offer margin, domain 0 exports the client's state bundle over the wire
// and domain 1 resumes the §3.1.2 stop→start→ack on its own domain. The
// adopting domain returns (record, true) as soon as its cross-domain
// switch completes; the offering domain runs to timeout and returns
// (zero, false) — the orchestrator kills it once the adopter reports.
func RunFedController(domainID int, conn *net.UDPConn, table map[packet.IPv4Addr]string, timeout sim.Time) (federation.HandoffRecord, bool, error) {
	clk := runtime.NewWall()
	fab, err := udp.New(clk, conn, table)
	if err != nil {
		return federation.HandoffRecord{}, false, err
	}
	dom := federation.NewDomain(FedConfig(), clk, fab, domainID, FedCity())
	if domainID == 0 {
		if err := dom.RegisterClient(Client, ClientIP, 0); err != nil {
			return federation.HandoffRecord{}, false, err
		}
	} else {
		dom.RegisterRemoteClient(Client, 0)
	}

	var (
		mu  sync.Mutex
		rec federation.HandoffRecord
		got bool
	)
	dom.OnHandoffComplete = func(r federation.HandoffRecord) {
		mu.Lock()
		rec, got = r, true
		mu.Unlock()
		clk.Stop()
	}
	clk.After(timeout, clk.Stop)
	fab.Start()
	clk.Run()
	_ = fab.Close()

	mu.Lock()
	defer mu.Unlock()
	if domainID != 0 && !got {
		return federation.HandoffRecord{}, false, fmt.Errorf("live: no inter-controller handoff completed within %v", timeout)
	}
	return rec, got, nil
}
