package live

import (
	"net"
	"testing"

	"wgtt/internal/ap"
	"wgtt/internal/controller"
	"wgtt/internal/packet"
	"wgtt/internal/sim"
)

func bind(t *testing.T) *net.UDPConn {
	t.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	return conn
}

// Three wall-clock nodes over UDP loopback — controller plus two APs with
// crossing CSI ramps — must complete one full §3.1.2 stop→start→ack switch
// from AP 0 to AP 1, every message crossing a real socket in wire encoding.
func TestThreeNodeSwitchOverLoopback(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time multi-node run")
	}
	conns := []*net.UDPConn{bind(t), bind(t), bind(t)}
	eps := make([]string, len(conns))
	for i, c := range conns {
		eps[i] = c.LocalAddr().String()
	}
	full := Table(eps)
	// Each node's table lists the other nodes only.
	tableFor := func(self packet.IPv4Addr) map[packet.IPv4Addr]string {
		m := make(map[packet.IPv4Addr]string, len(full)-1)
		for a, ep := range full {
			if a != self {
				m[a] = ep
			}
		}
		return m
	}

	scripts := DefaultScripts()
	type apResult struct {
		stats ap.Stats
		err   error
	}
	apDone := make([]chan apResult, 2)
	for i := range apDone {
		apDone[i] = make(chan apResult, 1)
		go func(id int) {
			st, err := RunAP(id, conns[id+1], tableFor(packet.APIP(id)), packet.ControllerIP, scripts[id], id == 0, 2*sim.Second)
			apDone[id] <- apResult{st, err}
		}(i)
	}

	rec, err := RunController(conns[0], tableFor(packet.ControllerIP), 2, 2*sim.Second, "")
	if err != nil {
		t.Fatal(err)
	}
	if rec.From != 0 || rec.To != 1 {
		t.Fatalf("switch %d -> %d, want 0 -> 1", rec.From, rec.To)
	}
	if rec.Client != Client {
		t.Fatalf("switched client %v, want %v", rec.Client, Client)
	}
	if rec.Duration <= 0 {
		t.Fatalf("switch duration %v, want > 0 (real elapsed time)", rec.Duration)
	}
	if rec.Forced {
		t.Fatal("switch reported forced; want a clean stop->start->ack handshake")
	}

	for i, ch := range apDone {
		res := <-ch
		if res.err != nil {
			t.Fatalf("AP %d: %v", i, res.err)
		}
		if res.stats.CSIReports == 0 {
			// The live CSI source bypasses ap.Stats (it sends directly on
			// the fabric), so assert protocol activity instead.
			_ = res.stats
		}
		switch i {
		case 0:
			if res.stats.StopsHandled == 0 {
				t.Errorf("AP 0 handled no stop")
			}
		case 1:
			if res.stats.StartsHandled == 0 {
				t.Errorf("AP 1 handled no start")
			}
		}
	}
}

// Four wall-clock nodes over UDP loopback — two single-AP domain
// controllers plus their APs — must complete one inter-controller handoff
// (DESIGN.md §13): domain 1's AP relays rising CSI to the owning domain 0,
// domain 0 exports the client's state bundle over the wire, and domain 1
// resumes the §3.1.2 stop→start→ack against the old domain's AP.
func TestFourNodeFederatedHandoffOverLoopback(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time multi-node run")
	}
	conns := []*net.UDPConn{bind(t), bind(t), bind(t), bind(t)}
	eps := make([]string, len(conns))
	for i, c := range conns {
		eps[i] = c.LocalAddr().String()
	}
	full := FedTable(eps)
	tableFor := func(self packet.IPv4Addr) map[packet.IPv4Addr]string {
		m := make(map[packet.IPv4Addr]string, len(full)-1)
		for a, ep := range full {
			if a != self {
				m[a] = ep
			}
		}
		return m
	}

	const timeout = 3 * sim.Second
	scripts := DefaultScripts()
	type apResult struct {
		stats ap.Stats
		err   error
	}
	apDone := make([]chan apResult, 2)
	for i := range apDone {
		apDone[i] = make(chan apResult, 1)
		go func(id int) {
			st, err := RunAP(id, conns[FedDomains+id], tableFor(packet.APIP(id)),
				packet.DomainControllerIP(id), scripts[id], id == 0, timeout)
			apDone[id] <- apResult{st, err}
		}(i)
	}
	dom0Done := make(chan error, 1)
	go func() {
		_, _, err := RunFedController(0, conns[0], tableFor(packet.DomainControllerIP(0)), timeout)
		dom0Done <- err
	}()

	rec, got, err := RunFedController(1, conns[1], tableFor(packet.DomainControllerIP(1)), timeout)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("adopting domain returned without a handoff record")
	}
	if rec.From != 0 || rec.To != 1 {
		t.Fatalf("handoff domain%d -> domain%d, want 0 -> 1", rec.From, rec.To)
	}
	if rec.FromAP != 0 || rec.ToAP != 1 {
		t.Fatalf("handoff ap%d -> ap%d, want 0 -> 1", rec.FromAP, rec.ToAP)
	}
	if rec.Client != Client {
		t.Fatalf("handed off client %v, want %v", rec.Client, Client)
	}
	if rec.SwitchDuration <= 0 {
		t.Fatalf("cross-domain switch duration %v, want > 0 (real elapsed time)", rec.SwitchDuration)
	}
	if rec.Forced {
		t.Fatal("cross-domain switch reported forced; want a clean stop->start->ack")
	}

	if err := <-dom0Done; err != nil {
		t.Fatalf("domain 0: %v", err)
	}
	for i, ch := range apDone {
		res := <-ch
		if res.err != nil {
			t.Fatalf("AP %d: %v", i, res.err)
		}
		switch i {
		case 0:
			if res.stats.StopsHandled == 0 {
				t.Errorf("AP 0 handled no stop from the adopting domain")
			}
		case 1:
			if res.stats.StartsHandled == 0 {
				t.Errorf("AP 1 handled no start")
			}
		}
	}
}

// The live controller config must keep the paper's §3.1.1/§3.1.2 operating
// point with the health monitor disabled.
func TestControllerConfig(t *testing.T) {
	cfg := ControllerConfig()
	def := controller.DefaultConfig()
	if cfg.Window != def.Window || cfg.Hysteresis != def.Hysteresis || cfg.SwitchTimeout != def.SwitchTimeout {
		t.Fatalf("live config diverged from the paper operating point: %+v", cfg)
	}
	if cfg.HealthInterval != 0 || cfg.DetectTimeout != 0 {
		t.Fatal("health monitor must be off in live smoke")
	}
}

// Table must place the controller at entry 0 and AP i at entry i+1.
func TestTableLayout(t *testing.T) {
	tb := Table([]string{"a:1", "b:2", "c:3"})
	if tb[packet.ControllerIP] != "a:1" || tb[packet.APIP(0)] != "b:2" || tb[packet.APIP(1)] != "c:3" {
		t.Fatalf("table = %v", tb)
	}
}
