package live

import (
	"net"
	"testing"

	"wgtt/internal/ap"
	"wgtt/internal/controller"
	"wgtt/internal/packet"
	"wgtt/internal/sim"
)

func bind(t *testing.T) *net.UDPConn {
	t.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	return conn
}

// Three wall-clock nodes over UDP loopback — controller plus two APs with
// crossing CSI ramps — must complete one full §3.1.2 stop→start→ack switch
// from AP 0 to AP 1, every message crossing a real socket in wire encoding.
func TestThreeNodeSwitchOverLoopback(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time multi-node run")
	}
	conns := []*net.UDPConn{bind(t), bind(t), bind(t)}
	eps := make([]string, len(conns))
	for i, c := range conns {
		eps[i] = c.LocalAddr().String()
	}
	full := Table(eps)
	// Each node's table lists the other nodes only.
	tableFor := func(self packet.IPv4Addr) map[packet.IPv4Addr]string {
		m := make(map[packet.IPv4Addr]string, len(full)-1)
		for a, ep := range full {
			if a != self {
				m[a] = ep
			}
		}
		return m
	}

	scripts := DefaultScripts()
	type apResult struct {
		stats ap.Stats
		err   error
	}
	apDone := make([]chan apResult, 2)
	for i := range apDone {
		apDone[i] = make(chan apResult, 1)
		go func(id int) {
			st, err := RunAP(id, conns[id+1], tableFor(packet.APIP(id)), scripts[id], id == 0, 2*sim.Second)
			apDone[id] <- apResult{st, err}
		}(i)
	}

	rec, err := RunController(conns[0], tableFor(packet.ControllerIP), 2, 2*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rec.From != 0 || rec.To != 1 {
		t.Fatalf("switch %d -> %d, want 0 -> 1", rec.From, rec.To)
	}
	if rec.Client != Client {
		t.Fatalf("switched client %v, want %v", rec.Client, Client)
	}
	if rec.Duration <= 0 {
		t.Fatalf("switch duration %v, want > 0 (real elapsed time)", rec.Duration)
	}
	if rec.Forced {
		t.Fatal("switch reported forced; want a clean stop->start->ack handshake")
	}

	for i, ch := range apDone {
		res := <-ch
		if res.err != nil {
			t.Fatalf("AP %d: %v", i, res.err)
		}
		if res.stats.CSIReports == 0 {
			// The live CSI source bypasses ap.Stats (it sends directly on
			// the fabric), so assert protocol activity instead.
			_ = res.stats
		}
		switch i {
		case 0:
			if res.stats.StopsHandled == 0 {
				t.Errorf("AP 0 handled no stop")
			}
		case 1:
			if res.stats.StartsHandled == 0 {
				t.Errorf("AP 1 handled no start")
			}
		}
	}
}

// The live controller config must keep the paper's §3.1.1/§3.1.2 operating
// point with the health monitor disabled.
func TestControllerConfig(t *testing.T) {
	cfg := ControllerConfig()
	def := controller.DefaultConfig()
	if cfg.Window != def.Window || cfg.Hysteresis != def.Hysteresis || cfg.SwitchTimeout != def.SwitchTimeout {
		t.Fatalf("live config diverged from the paper operating point: %+v", cfg)
	}
	if cfg.HealthInterval != 0 || cfg.DetectTimeout != 0 {
		t.Fatal("health monitor must be off in live smoke")
	}
}

// Table must place the controller at entry 0 and AP i at entry i+1.
func TestTableLayout(t *testing.T) {
	tb := Table([]string{"a:1", "b:2", "c:3"})
	if tb[packet.ControllerIP] != "a:1" || tb[packet.APIP(0)] != "b:2" || tb[packet.APIP(1)] != "c:3" {
		t.Fatalf("table = %v", tb)
	}
}
