// Package stats provides the measurement utilities the evaluation harness
// uses to turn packet logs into the paper's tables and figures (§5): binned
// throughput time series (the Fig. 14/15 timelines), empirical CDFs and
// quantiles (the Fig. 16 bitrate and §7 fleet distributions), and small
// summary helpers.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"wgtt/internal/sim"
)

// ThroughputSeries accumulates delivered bytes into fixed-width time bins
// and reports Mbit/s per bin — the black throughput curves of Figs. 14–15.
type ThroughputSeries struct {
	Bin   sim.Time
	bytes []uint64
}

// NewThroughputSeries creates a series with the given bin width.
func NewThroughputSeries(bin sim.Time) *ThroughputSeries {
	if bin <= 0 {
		bin = 100 * sim.Millisecond
	}
	return &ThroughputSeries{Bin: bin}
}

// Add records bytes delivered at time at.
func (s *ThroughputSeries) Add(at sim.Time, bytes int) {
	i := int(at / s.Bin)
	for len(s.bytes) <= i {
		s.bytes = append(s.bytes, 0)
	}
	s.bytes[i] += uint64(bytes)
}

// Mbps returns the per-bin throughput in Mbit/s.
func (s *ThroughputSeries) Mbps() []float64 {
	out := make([]float64, len(s.bytes))
	binSec := s.Bin.Seconds()
	for i, b := range s.bytes {
		out[i] = float64(b) * 8 / 1e6 / binSec
	}
	return out
}

// TotalBytes returns the sum over all bins.
func (s *ThroughputSeries) TotalBytes() uint64 {
	var t uint64
	for _, b := range s.bytes {
		t += b
	}
	return t
}

// MeanMbps returns the average throughput over [0, horizon].
func (s *ThroughputSeries) MeanMbps(horizon sim.Time) float64 {
	if horizon <= 0 {
		return 0
	}
	return float64(s.TotalBytes()) * 8 / 1e6 / horizon.Seconds()
}

// CDF is an empirical distribution built from samples.
type CDF struct {
	samples []float64
	sorted  bool
}

// Add appends one sample.
func (c *CDF) Add(v float64) {
	c.samples = append(c.samples, v)
	c.sorted = false
}

// AddAll appends many samples.
func (c *CDF) AddAll(vs []float64) {
	c.samples = append(c.samples, vs...)
	c.sorted = false
}

// N returns the sample count.
func (c *CDF) N() int { return len(c.samples) }

// Merge folds another distribution's samples into c — how fleet-level
// CDFs are built from per-cell ones. The other CDF is not modified.
func (c *CDF) Merge(o *CDF) {
	if o == nil || len(o.samples) == 0 {
		return
	}
	c.samples = append(c.samples, o.samples...)
	c.sorted = false
}

// Quantiles evaluates several quantiles at once (report rows).
func Quantiles(c *CDF, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = c.Quantile(q)
	}
	return out
}

func (c *CDF) ensure() {
	if !c.sorted {
		sort.Float64s(c.samples)
		c.sorted = true
	}
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) or NaN when empty.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.samples) == 0 {
		return math.NaN()
	}
	c.ensure()
	if q <= 0 {
		return c.samples[0]
	}
	if q >= 1 {
		return c.samples[len(c.samples)-1]
	}
	idx := q * float64(len(c.samples)-1)
	lo := int(idx)
	frac := idx - float64(lo)
	if lo+1 >= len(c.samples) {
		return c.samples[len(c.samples)-1]
	}
	return c.samples[lo]*(1-frac) + c.samples[lo+1]*frac
}

// Mean returns the sample mean (NaN when empty).
func (c *CDF) Mean() float64 {
	if len(c.samples) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range c.samples {
		sum += v
	}
	return sum / float64(len(c.samples))
}

// StdDev returns the sample standard deviation.
func (c *CDF) StdDev() float64 {
	n := len(c.samples)
	if n < 2 {
		return 0
	}
	m := c.Mean()
	var ss float64
	for _, v := range c.samples {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// At returns the empirical CDF value P(X ≤ x).
func (c *CDF) At(x float64) float64 {
	if len(c.samples) == 0 {
		return 0
	}
	c.ensure()
	i := sort.SearchFloat64s(c.samples, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.samples))
}

// Points returns up to n evenly spaced (value, cumulative-fraction) points
// for plotting.
func (c *CDF) Points(n int) [][2]float64 {
	if len(c.samples) == 0 || n <= 0 {
		return nil
	}
	c.ensure()
	out := make([][2]float64, 0, n)
	for i := 0; i < n; i++ {
		q := float64(i) / float64(n-1)
		out = append(out, [2]float64{c.Quantile(q), q})
	}
	return out
}

// Mean returns the mean of a slice (NaN when empty).
func Mean(vs []float64) float64 {
	if len(vs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}

// Table is a tiny fixed-width text table builder for experiment output.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteString("\n")
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// F formats a float compactly for table cells.
func F(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	if math.IsInf(v, 1) {
		return "inf"
	}
	return fmt.Sprintf("%.2f", v)
}
