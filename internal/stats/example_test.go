package stats_test

import (
	"fmt"

	"wgtt/internal/sim"
	"wgtt/internal/stats"
)

// CDFs back every distribution the evaluation reports (Figs. 16 and 24).
func ExampleCDF() {
	c := &stats.CDF{}
	for i := 1; i <= 100; i++ {
		c.Add(float64(i))
	}
	fmt.Printf("p50=%.1f p90=%.1f\n", c.Quantile(0.5), c.Quantile(0.9))
	// Output:
	// p50=50.5 p90=90.1
}

// ThroughputSeries turns delivery events into the 100 ms-binned curves of
// Figs. 14–15.
func ExampleThroughputSeries() {
	ts := stats.NewThroughputSeries(100 * sim.Millisecond)
	ts.Add(20*sim.Millisecond, 125_000)  // 1 Mbit in bin 0
	ts.Add(150*sim.Millisecond, 250_000) // 2 Mbit in bin 1
	fmt.Println(ts.Mbps())
	// Output:
	// [10 20]
}
