package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"wgtt/internal/sim"
)

func TestThroughputSeries(t *testing.T) {
	s := NewThroughputSeries(100 * sim.Millisecond)
	// 1 Mbit in the first bin, 2 Mbit in the third.
	s.Add(50*sim.Millisecond, 125000)
	s.Add(250*sim.Millisecond, 250000)
	m := s.Mbps()
	if len(m) != 3 {
		t.Fatalf("bins = %d", len(m))
	}
	if math.Abs(m[0]-10) > 1e-9 { // 1 Mbit / 0.1 s
		t.Errorf("bin0 = %v", m[0])
	}
	if m[1] != 0 || math.Abs(m[2]-20) > 1e-9 {
		t.Errorf("bins = %v", m)
	}
	if s.TotalBytes() != 375000 {
		t.Errorf("total = %d", s.TotalBytes())
	}
	if got := s.MeanMbps(sim.Second); math.Abs(got-3) > 1e-9 {
		t.Errorf("mean = %v", got)
	}
	if NewThroughputSeries(0).Bin <= 0 {
		t.Error("zero bin not defaulted")
	}
}

func TestCDFQuantiles(t *testing.T) {
	c := &CDF{}
	for i := 1; i <= 100; i++ {
		c.Add(float64(i))
	}
	if q := c.Quantile(0.5); math.Abs(q-50.5) > 1 {
		t.Errorf("median = %v", q)
	}
	if q := c.Quantile(0.9); math.Abs(q-90.1) > 1 {
		t.Errorf("p90 = %v", q)
	}
	if c.Quantile(0) != 1 || c.Quantile(1) != 100 {
		t.Error("extremes wrong")
	}
	if m := c.Mean(); math.Abs(m-50.5) > 1e-9 {
		t.Errorf("mean = %v", m)
	}
	if sd := c.StdDev(); math.Abs(sd-29.0115) > 0.01 {
		t.Errorf("stddev = %v", sd)
	}
	if at := c.At(50); math.Abs(at-0.5) > 0.02 {
		t.Errorf("At(50) = %v", at)
	}
	if pts := c.Points(11); len(pts) != 11 || pts[0][1] != 0 || pts[10][1] != 1 {
		t.Errorf("points = %v", pts)
	}
}

func TestCDFEmpty(t *testing.T) {
	c := &CDF{}
	if !math.IsNaN(c.Quantile(0.5)) || !math.IsNaN(c.Mean()) {
		t.Error("empty CDF should be NaN")
	}
	if c.At(1) != 0 || c.Points(5) != nil || c.StdDev() != 0 {
		t.Error("empty CDF misbehaves")
	}
}

func TestCDFQuantileMonotone(t *testing.T) {
	f := func(raw []float64, q1, q2 float64) bool {
		if len(raw) == 0 {
			return true
		}
		c := &CDF{}
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				c.Add(v)
			}
		}
		if c.N() == 0 {
			return true
		}
		q1 = math.Mod(math.Abs(q1), 1)
		q2 = math.Mod(math.Abs(q2), 1)
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		return c.Quantile(q1) <= c.Quantile(q2)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMeanHelper(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("Mean wrong")
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("empty Mean should be NaN")
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{Header: []string{"speed", "tcp", "udp"}}
	tb.AddRow("5", F(6.62), F(8.71))
	tb.AddRow("25", F(math.NaN()), F(math.Inf(1)))
	out := tb.String()
	if !strings.Contains(out, "speed") || !strings.Contains(out, "6.62") {
		t.Errorf("table output:\n%s", out)
	}
	if !strings.Contains(out, "-") || !strings.Contains(out, "inf") {
		t.Errorf("special values not rendered:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Errorf("table has %d lines", len(lines))
	}
}

func TestCDFMerge(t *testing.T) {
	a, b := &CDF{}, &CDF{}
	a.AddAll([]float64{1, 3, 5})
	b.AddAll([]float64{2, 4})
	a.Merge(b)
	if a.N() != 5 {
		t.Fatalf("merged N = %d", a.N())
	}
	if a.Quantile(0) != 1 || a.Quantile(1) != 5 || a.Quantile(0.5) != 3 {
		t.Errorf("merged quantiles wrong: %v %v %v",
			a.Quantile(0), a.Quantile(0.5), a.Quantile(1))
	}
	// The source is untouched, and degenerate merges are no-ops.
	if b.N() != 2 {
		t.Errorf("Merge mutated its argument: N=%d", b.N())
	}
	a.Merge(nil)
	a.Merge(&CDF{})
	if a.N() != 5 {
		t.Errorf("degenerate merge changed N: %d", a.N())
	}
}

func TestQuantilesBatch(t *testing.T) {
	c := &CDF{}
	c.AddAll([]float64{10, 20, 30, 40})
	got := Quantiles(c, 0, 0.5, 1)
	want := []float64{10, 25, 40}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Quantiles[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if qs := Quantiles(&CDF{}, 0.5); !math.IsNaN(qs[0]) {
		t.Error("empty CDF quantile should be NaN")
	}
}
