package core

import (
	"testing"

	"wgtt/internal/sim"
	"wgtt/internal/urban"
)

// tinyCity keeps the quadratic medium cost down: 2x2 grid, one bus with a
// few riders, one pedestrian, short run.
func tinyCity() urban.Config {
	cfg := urban.DefaultConfig()
	cfg.Rows, cfg.Cols = 2, 2
	cfg.APSpacingM = 30
	cfg.RidersPerBus = 3
	cfg.Cars = 0
	cfg.Pedestrians = 1
	cfg.MaxDurationS = 12
	return cfg
}

func TestUrbanScenarioBuilds(t *testing.T) {
	for _, mode := range []Mode{ModeWGTT, ModeBaseline} {
		n, err := Build(UrbanScenario(mode, tinyCity(), 7))
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if n.Urban == nil {
			t.Fatalf("%v: network lost its urban plan", mode)
		}
		if len(n.APPosition) != len(n.Urban.APs) {
			t.Fatalf("%v: %d APs for %d sites", mode, len(n.APPosition), len(n.Urban.APs))
		}
		want := len(n.Urban.Clients)
		if len(n.Clients) != want {
			t.Fatalf("%v: %d clients, want %d", mode, len(n.Clients), want)
		}
		if n.Scenario.Duration <= 0 {
			t.Fatalf("%v: duration not derived from the plan", mode)
		}
		if mode == ModeWGTT && n.Fed == nil {
			t.Fatal("wgtt urban city with 2 domains should federate")
		}
		if mode == ModeBaseline && (n.Fed != nil || n.Ctl != nil) {
			t.Fatal("baseline urban city must stay controller-free")
		}
	}
}

func TestUrbanScenarioRuns(t *testing.T) {
	s := UrbanScenario(ModeWGTT, tinyCity(), 7)
	n, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	reg := n.EnableMetrics()
	flow := n.AddDownlinkUDP(0, 1.0, 200)
	flow.Sender.Start()
	n.Run()
	if flow.Receiver.Received == 0 {
		t.Fatal("no downlink delivered to the bus across the whole run")
	}
	if got := reg.Counter("urban", "riders").Value(); got != 3 {
		t.Fatalf("urban/riders = %d, want 3", got)
	}
	if got := reg.Counter("urban", "buses").Value(); got != 1 {
		t.Fatalf("urban/buses = %d, want 1", got)
	}
	if got := reg.Counter("urban", "turns").Value(); got < 2 {
		t.Fatalf("urban/turns = %d, want ≥ 2", got)
	}
	if got := reg.Counter("urban", "route_crossings").Value(); got < 1 {
		t.Fatalf("urban/route_crossings = %d, want ≥ 1", got)
	}
	// The serving AP must end up somewhere real for every client.
	for i := range n.Clients {
		if ap := n.ServingAP(i); ap < 0 || ap >= len(n.APs) {
			t.Fatalf("client %d serving AP = %d out of range", i, ap)
		}
	}
}

func TestUrbanRejectsHandSetTopology(t *testing.T) {
	cfg := tinyCity()
	s := UrbanScenario(ModeWGTT, cfg, 1)
	s.Clients = []ClientSpec{{}}
	if _, err := Build(s); err == nil {
		t.Fatal("urban scenario with hand-set clients accepted")
	}
	s = UrbanScenario(ModeWGTT, cfg, 1)
	s.APDomains = []int{0}
	if _, err := Build(s); err == nil {
		t.Fatal("urban scenario with hand-set AP domains accepted")
	}
}

func TestAPDomainsValidation(t *testing.T) {
	base := func() Scenario {
		s := DriveScenario(ModeWGTT, 25, 1)
		s.Duration = sim.Second
		s.Domains = 2
		return s
	}
	s := base()
	s.APDomains = []int{0, 1} // 8 APs need 8 bindings
	if _, err := Build(s); err == nil {
		t.Fatal("short APDomains accepted")
	}
	s = base()
	s.APDomains = []int{0, 0, 0, 0, 1, 1, 1, 2} // domain 2 out of range
	if _, err := Build(s); err == nil {
		t.Fatal("out-of-range domain accepted")
	}
	s = base()
	s.APDomains = []int{0, 0, 0, 0, 0, 0, 0, 0} // domain 1 owns nothing
	if _, err := Build(s); err == nil {
		t.Fatal("empty domain accepted")
	}
	// A legal non-contiguous binding builds and matches the city table.
	s = base()
	s.APDomains = []int{0, 1, 0, 1, 0, 1, 0, 1}
	n, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	if n.Fed == nil {
		t.Fatal("explicit binding should still federate")
	}
}
