package core

import (
	"wgtt/internal/packet"
	"wgtt/internal/sim"
	"wgtt/internal/transport"
)

// ServerIP is the content server's address (the paper caches content on a
// local server to factor out Internet latency, §5.4).
var ServerIP = packet.IPv4Addr{8, 8, 8, 8}

// DownUDP is an attached downlink UDP flow.
type DownUDP struct {
	Sender   *transport.UDPSender
	Receiver *transport.UDPReceiver
}

// AddDownlinkUDP attaches a server→client CBR flow; call Sender.Start().
func (n *Network) AddDownlinkUDP(clientID int, rateMbps float64, bytes int) *DownUDP {
	flow := n.allocFlow()
	cl := n.Clients[clientID]
	tx := transport.NewUDPSender(n.Eng, transport.UDPConfig{
		FlowID:    flow,
		RateMbps:  rateMbps,
		Bytes:     bytes,
		SrcIP:     ServerIP,
		DstIP:     cl.Config().IP,
		ClientMAC: cl.Config().MAC,
	}, func(p *packet.Packet) { _ = n.SendDownlink(clientID, p) })
	rx := &transport.UDPReceiver{FlowID: flow}
	n.onClientDownlink(clientID, rx.OnPacket)
	return &DownUDP{Sender: tx, Receiver: rx}
}

// UpUDP is an attached uplink UDP flow.
type UpUDP struct {
	Sender   *transport.UDPSender
	Receiver *transport.UDPReceiver
}

// AddUplinkUDP attaches a client→server CBR flow; call Sender.Start().
func (n *Network) AddUplinkUDP(clientID int, rateMbps float64, bytes int) *UpUDP {
	flow := n.allocFlow()
	cl := n.Clients[clientID]
	tx := transport.NewUDPSender(n.Eng, transport.UDPConfig{
		FlowID:    flow,
		RateMbps:  rateMbps,
		Bytes:     bytes,
		SrcIP:     cl.Config().IP,
		DstIP:     ServerIP,
		ClientMAC: cl.Config().MAC,
		Uplink:    true,
	}, cl.SendUplink)
	rx := &transport.UDPReceiver{FlowID: flow}
	n.onServerUplink(func(p *packet.Packet, at sim.Time) {
		if p.FlowID == flow {
			rx.OnPacket(p, at)
		}
	})
	return &UpUDP{Sender: tx, Receiver: rx}
}

// DownTCP is an attached downlink TCP flow (server sends, client receives,
// ACKs ride the uplink).
type DownTCP struct {
	Sender   *transport.TCPSender
	Receiver *transport.TCPReceiver
}

// AddDownlinkTCP attaches a server→client TCP flow of totalSegments
// (0 = unbounded bulk); call Sender.Start().
func (n *Network) AddDownlinkTCP(clientID int, totalSegments uint32, onComplete func(at sim.Time)) *DownTCP {
	flow := n.allocFlow()
	cl := n.Clients[clientID]
	tx := transport.NewTCPSender(n.Eng, transport.TCPConfig{
		FlowID:        flow,
		SrcIP:         ServerIP,
		DstIP:         cl.Config().IP,
		ClientMAC:     cl.Config().MAC,
		TotalSegments: totalSegments,
		OnComplete:    onComplete,
	}, func(p *packet.Packet) { _ = n.SendDownlink(clientID, p) })
	rx := &transport.TCPReceiver{
		FlowID:  flow,
		SendAck: cl.SendUplink,
		AckTemplate: packet.Packet{
			SrcIP:     cl.Config().IP,
			DstIP:     ServerIP,
			ClientMAC: cl.Config().MAC,
			Uplink:    true,
		},
	}
	n.onClientDownlink(clientID, rx.OnPacket)
	n.onServerUplink(func(p *packet.Packet, at sim.Time) {
		if p.FlowID == flow && p.Kind == packet.KindAck {
			tx.OnAck(p.Seq, at)
		}
	})
	return &DownTCP{Sender: tx, Receiver: rx}
}

// UpTCP is an attached uplink TCP flow (client sends, server receives,
// ACKs ride the downlink).
type UpTCP struct {
	Sender   *transport.TCPSender
	Receiver *transport.TCPReceiver
}

// AddUplinkTCP attaches a client→server TCP flow; call Sender.Start().
func (n *Network) AddUplinkTCP(clientID int, totalSegments uint32, onComplete func(at sim.Time)) *UpTCP {
	flow := n.allocFlow()
	cl := n.Clients[clientID]
	tx := transport.NewTCPSender(n.Eng, transport.TCPConfig{
		FlowID:        flow,
		SrcIP:         cl.Config().IP,
		DstIP:         ServerIP,
		ClientMAC:     cl.Config().MAC,
		Uplink:        true,
		TotalSegments: totalSegments,
		OnComplete:    onComplete,
	}, cl.SendUplink)
	rx := &transport.TCPReceiver{
		FlowID: flow,
		SendAck: func(p *packet.Packet) {
			p.Uplink = false
			_ = n.SendDownlink(clientID, p)
		},
		AckTemplate: packet.Packet{
			SrcIP:     ServerIP,
			DstIP:     cl.Config().IP,
			ClientMAC: cl.Config().MAC,
		},
	}
	n.onServerUplink(func(p *packet.Packet, at sim.Time) {
		if p.FlowID == flow && p.Kind == packet.KindData {
			rx.OnPacket(p, at)
		}
	})
	n.onClientDownlink(clientID, func(p *packet.Packet, at sim.Time) {
		if p.FlowID == flow && p.Kind == packet.KindAck {
			tx.OnAck(p.Seq, at)
		}
	})
	return &UpTCP{Sender: tx, Receiver: rx}
}

// onClientDownlink registers a tap on a client's delivered downlink packets.
func (n *Network) onClientDownlink(clientID int, fn func(p *packet.Packet, at sim.Time)) {
	n.downRx[clientID] = append(n.downRx[clientID], fn)
}

// onServerUplink registers a tap on de-duplicated uplink packets.
func (n *Network) onServerUplink(fn func(p *packet.Packet, at sim.Time)) {
	n.upRx = append(n.upRx, fn)
}

func (n *Network) allocFlow() uint32 {
	n.nextFlow++
	return n.nextFlow
}
