package core

import (
	"testing"

	"wgtt/internal/sim"
)

// Federated assembly invariants (DESIGN.md §13).
func TestFederatedBuildValidation(t *testing.T) {
	s := DriveScenario(ModeBaseline, 15, 1)
	s.Domains = 2
	if _, err := Build(s); err == nil {
		t.Error("baseline federation accepted")
	}
	s = DriveScenario(ModeWGTT, 15, 1)
	s.Domains = 2
	s.Channels = 2
	if _, err := Build(s); err == nil {
		t.Error("multi-channel federation accepted")
	}
	s = DriveScenario(ModeWGTT, 15, 1)
	s.Domains = 99
	if _, err := Build(s); err == nil {
		t.Error("more domains than APs accepted")
	}
}

// A 15 mph drive across a 2-domain city completes the inter-controller
// handoff: the owner flips, the drive keeps switching on the new domain,
// and goodput survives the ownership transfer.
func TestFederatedDriveHandsOff(t *testing.T) {
	s := DriveScenario(ModeWGTT, 15, 42)
	s.Domains = 2
	n, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	flow := n.AddDownlinkUDP(0, 20, 1400)
	flow.Sender.Start()
	n.Run()

	fs := n.FedStats()
	cs := n.CtlStats()
	mbps := float64(flow.Receiver.Bytes) * 8 / 1e6 / s.Duration.Seconds()
	t.Logf("federated 15mph: %.2f Mb/s, %d intra switches, %d cross switches, %d offers, %d aborts",
		mbps, cs.SwitchesDone, fs.CrossSwitches, fs.OffersSent, fs.Aborts)

	if fs.CrossSwitches < 1 {
		t.Fatalf("no cross-domain switch completed (offers=%d aborts=%d)", fs.OffersSent, fs.Aborts)
	}
	if fs.Adoptions != fs.CrossSwitches {
		t.Errorf("adoptions (%d) != cross switches (%d)", fs.Adoptions, fs.CrossSwitches)
	}
	mac := n.Clients[0].Config().MAC
	if own := n.Fed.Owner(mac); own != s.Domains-1 {
		t.Errorf("drive ended owned by domain %d, want %d", own, s.Domains-1)
	}
	if cs.SwitchesDone < 5 {
		t.Errorf("only %d intra-domain switches across the array", cs.SwitchesDone)
	}
	if mbps < 5 {
		t.Errorf("federated goodput = %.2f Mb/s", mbps)
	}
}

// Domains: 1 is byte-identical to the unfederated build — the federation
// layer must be a strict no-op until a second domain exists.
func TestFederatedSingleDomainIdentical(t *testing.T) {
	run := func(domains int) (uint64, uint64) {
		s := DriveScenario(ModeWGTT, 15, 77)
		s.Duration = 4 * sim.Second
		s.Domains = domains
		n, err := Build(s)
		if err != nil {
			t.Fatal(err)
		}
		flow := n.AddDownlinkUDP(0, 20, 1400)
		flow.Sender.Start()
		n.Run()
		return flow.Receiver.Bytes, n.Eng.Fired()
	}
	b0, e0 := run(0)
	b1, e1 := run(1)
	if b0 != b1 || e0 != e1 {
		t.Errorf("Domains:1 diverged from unfederated: bytes %d/%d events %d/%d", b0, b1, e0, e1)
	}
}

// Same seed, same federated scenario, byte-identical runs.
func TestFederatedDeterminism(t *testing.T) {
	run := func() (uint64, uint64, uint64) {
		s := DriveScenario(ModeWGTT, 15, 1234)
		s.Domains = 2
		n, err := Build(s)
		if err != nil {
			t.Fatal(err)
		}
		flow := n.AddDownlinkUDP(0, 20, 1400)
		flow.Sender.Start()
		n.Run()
		return flow.Receiver.Bytes, n.FedStats().CrossSwitches, n.Eng.Fired()
	}
	b1, c1, e1 := run()
	b2, c2, e2 := run()
	if b1 != b2 || c1 != c2 || e1 != e2 {
		t.Errorf("federated run diverged: bytes %d/%d cross %d/%d events %d/%d",
			b1, b2, c1, c2, e1, e2)
	}
}
