package core

import (
	"fmt"

	"wgtt/internal/client"
	"wgtt/internal/federation"
	"wgtt/internal/mobility"
	"wgtt/internal/packet"
	"wgtt/internal/sim"
)

// This file is the cell side of the metro's cross-cell client migration
// (DESIGN.md §17). A metro cell is a single-domain WGTT network; when a
// client's route leaves the cell, the fleet's epoch scheduler exports the
// client's volatile controller state as a §13 DomainHandoffCommit — the
// same wire message the federation layer moves clients with inside a cell —
// and the destination cell admits it, completing the bootstrap that Build
// deferred (ClientSpec.Deferred). Both calls run at an epoch barrier, when
// every cell's clock sits at exactly the same instant, so they are direct
// state transfers rather than simulated backhaul traffic; the commit still
// round-trips through packet.Encode/Decode at the fleet layer, keeping the
// carried state bounded by what the §13 wire format can express.

// ExportCellHandoff captures a departing client's volatile state — the
// 12-bit downlink index cursor, the bounded uplink dedup window, and the
// serving AP's windowed-median ESNR evidence — as a §13 commit, then
// releases the client: keepalives stop, every AP drops its serving flag,
// and the controller forgets the client. The TargetAP field is left zero;
// the admitting cell owns the target-AP decision (its AP namespace is not
// ours). Single-controller WGTT cells only.
func (n *Network) ExportCellHandoff(clientID int, handoffID uint32) (*packet.DomainHandoffCommit, error) {
	if n.Ctl == nil {
		return nil, fmt.Errorf("core: cell handoff export needs a single-controller WGTT cell")
	}
	cl := n.Clients[clientID]
	mac, ip := cl.Config().MAC, cl.Config().IP
	serving := n.Ctl.ServingAP(mac)
	if serving < 0 {
		return nil, fmt.Errorf("core: client %d is not admitted here", clientID)
	}
	commit := &packet.DomainHandoffCommit{
		HandoffID: handoffID,
		Client:    mac,
		ClientIP:  ip,
		ServingAP: n.APs[serving].Config().IP,
		NextIndex: n.Ctl.NextDownIndex(mac),
		DedupKeys: n.Ctl.DedupWindow(mac, packet.MaxHandoffDedupKeys),
	}
	if med, ok := n.Ctl.MedianESNR(mac, serving); ok {
		commit.Evidence = []packet.APESNR{{
			AP:      n.APs[serving].Config().IP,
			MedianQ: federation.QuantizeEvidenceDB(med),
		}}
	}
	cl.StopKeepalive()
	n.Ctl.ReleaseClient(mac)
	for _, a := range n.APs {
		a.Associate(mac, ip, false)
	}
	return commit, nil
}

// AdmitCellHandoff installs a client migrating in from another cell: the
// controller adopts it at entryAP with the carried index cursor and dedup
// window, the exporter's serving-AP evidence is re-seeded onto entryAP (the
// best prior the new cell has — its own APs have never heard this client),
// the AP-side serving flag moves to entryAP, and keepalives start. The
// client is unfrozen immediately: the admission happens at an epoch barrier,
// not mid-handshake, so there is no in-flight stop→start to protect.
func (n *Network) AdmitCellHandoff(clientID, entryAP int, commit *packet.DomainHandoffCommit) error {
	if n.Ctl == nil {
		return fmt.Errorf("core: cell handoff admission needs a single-controller WGTT cell")
	}
	if entryAP < 0 || entryAP >= len(n.APs) {
		return fmt.Errorf("core: entry AP %d out of range", entryAP)
	}
	cl := n.Clients[clientID]
	mac, ip := cl.Config().MAC, cl.Config().IP
	if n.Ctl.ServingAP(mac) >= 0 {
		return fmt.Errorf("core: client %d is already admitted here", clientID)
	}
	n.Ctl.AdoptClient(mac, ip, entryAP, commit.NextIndex, commit.DedupKeys)
	for _, ev := range commit.Evidence {
		n.Ctl.SeedESNR(mac, entryAP, federation.DequantizeEvidenceDB(ev.MedianQ))
	}
	n.Ctl.SetFrozen(mac, false)
	for apID, a := range n.APs {
		a.Associate(mac, ip, apID == entryAP)
	}
	// The entry AP serves from the adopted index cursor, not from whatever
	// ring state a previous stint of this client left behind: without the
	// alignment, a former fan-out member re-appointed as serving would drain
	// its stale backlog — packets the client already received, long past its
	// TTL-bounded duplicate window.
	n.APs[entryAP].AlignQueue(mac, commit.NextIndex)
	n.startClientKeepalive(cl)
	return nil
}

// NearestAPTo returns the active AP closest to a point — how the admitting
// cell picks a migrating client's entry AP from its seam-crossing position.
func (n *Network) NearestAPTo(p mobility.Point) int { return nearestAP(n.APPosition, p) }

// startClientKeepalive applies the scenario's keepalive policy to one
// client (the same switch Build runs for non-deferred clients).
func (n *Network) startClientKeepalive(cl *client.Client) {
	switch {
	case n.Scenario.KeepaliveInterval < 0:
		// keepalives disabled
	case n.Scenario.KeepaliveInterval == 0:
		cl.StartKeepalive(5 * sim.Millisecond)
	default:
		cl.StartKeepalive(n.Scenario.KeepaliveInterval)
	}
}
