package core

import (
	"bytes"
	"strings"
	"testing"

	"wgtt/internal/mobility"
	"wgtt/internal/sim"
	"wgtt/internal/trace"
)

func TestBuildValidation(t *testing.T) {
	if _, err := Build(Scenario{}); err == nil {
		t.Error("empty scenario accepted")
	}
	s := DriveScenario(ModeWGTT, 15, 1)
	s.APSubset = []int{99}
	if _, err := Build(s); err == nil {
		t.Error("bad AP subset accepted")
	}
}

func TestModeString(t *testing.T) {
	if ModeWGTT.String() != "wgtt" || ModeBaseline.String() != "enhanced-802.11r" {
		t.Error("mode names wrong")
	}
}

func TestDriveScenarioShapes(t *testing.T) {
	s := DriveScenario(ModeWGTT, 15, 1)
	if len(s.Clients) != 1 || s.Duration <= 0 {
		t.Fatal("drive scenario malformed")
	}
	static := DriveScenario(ModeWGTT, 0, 1)
	if mobility.Speed(static.Clients[0].Trace, sim.Second) != 0 {
		t.Error("0 mph scenario moves")
	}
	m := MultiClientScenario(ModeBaseline, mobility.Parallel, 3, 15, 2)
	if len(m.Clients) != 3 {
		t.Error("multi-client scenario wrong")
	}
}

// The headline end-to-end property (Fig. 13's mechanism): on the same
// 15 mph drive, WGTT sustains several times the baseline's UDP goodput,
// and switches APs far more often.
func TestWGTTBeatsBaselineUDP(t *testing.T) {
	run := func(mode Mode) (mbps float64, switches int) {
		s := DriveScenario(mode, 15, 42)
		n, err := Build(s)
		if err != nil {
			t.Fatal(err)
		}
		// Paper-level offered load (50–90 Mb/s): this is where stranded
		// handover backlogs actually hurt the baseline.
		flow := n.AddDownlinkUDP(0, 50, 1400)
		flow.Sender.Start()
		n.Run()
		mbps = float64(flow.Receiver.Bytes) * 8 / 1e6 / s.Duration.Seconds()
		if mode == ModeWGTT {
			switches = len(n.Ctl.History)
		} else {
			switches = len(n.Base.Handovers)
		}
		return mbps, switches
	}
	wgttMbps, wgttSwitches := run(ModeWGTT)
	baseMbps, baseSwitches := run(ModeBaseline)

	t.Logf("UDP 15mph: wgtt %.2f Mb/s (%d switches) vs baseline %.2f Mb/s (%d handovers)",
		wgttMbps, wgttSwitches, baseMbps, baseSwitches)

	if wgttMbps < 10 {
		t.Errorf("WGTT goodput = %.2f Mb/s; system is not delivering", wgttMbps)
	}
	if wgttMbps < 1.5*baseMbps {
		t.Errorf("WGTT (%.2f) not clearly above baseline (%.2f)", wgttMbps, baseMbps)
	}
	if wgttSwitches < 10 {
		t.Errorf("WGTT switched only %d times across the array", wgttSwitches)
	}
	if baseSwitches > wgttSwitches {
		t.Errorf("baseline handed over more (%d) than WGTT switched (%d)", baseSwitches, wgttSwitches)
	}
}

func TestWGTTTCPDrive(t *testing.T) {
	s := DriveScenario(ModeWGTT, 15, 7)
	n, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	flow := n.AddDownlinkTCP(0, 0, nil)
	flow.Sender.Start()
	n.Run()
	mbps := float64(flow.Receiver.DeliveredBytes) * 8 / 1e6 / s.Duration.Seconds()
	t.Logf("TCP 15mph wgtt: %.2f Mb/s, %d rtx, %d timeouts",
		mbps, flow.Sender.Retransmits, flow.Sender.Timeouts)
	if mbps < 5 {
		t.Errorf("WGTT TCP goodput = %.2f Mb/s", mbps)
	}
	// The whole point: the WGTT flow survives the drive. A few timeouts at
	// the edges of the deployment (before the first and after the last AP)
	// are expected; a stall mid-drive would blow this bound.
	if flow.Sender.Timeouts > 15 {
		t.Errorf("WGTT TCP suffered %d timeouts", flow.Sender.Timeouts)
	}
}

func TestUplinkFlowAndDedup(t *testing.T) {
	s := DriveScenario(ModeWGTT, 15, 9)
	n, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	flow := n.AddUplinkUDP(0, 5, 1000)
	flow.Sender.Start()
	n.Run()
	loss := flow.Receiver.LossRate()
	t.Logf("uplink UDP: sent %d received %d loss %.4f", flow.Sender.Sent, flow.Receiver.Received, loss)
	if flow.Receiver.Received == 0 {
		t.Fatal("no uplink packets arrived")
	}
	// Multi-AP reception keeps uplink loss very low (Fig. 18: ≤ 0.02).
	if loss > 0.05 {
		t.Errorf("uplink loss = %.4f with diversity", loss)
	}
	uniq, dup := n.Ctl.ClientUplinkCounts(n.Clients[0].Config().MAC)
	if dup == 0 {
		t.Error("no duplicate uplink receptions — diversity not exercised")
	}
	if uniq == 0 {
		t.Error("no unique uplink packets")
	}
}

func TestGroundTruthOracle(t *testing.T) {
	s := DriveScenario(ModeWGTT, 15, 3)
	n, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	// As the client drives, the oracle's best AP should sweep from low
	// indices to high indices.
	early, _ := n.BestESNRAP(0, sim.Second)
	late, _ := n.BestESNRAP(0, s.Duration-2*sim.Second)
	if early > 3 {
		t.Errorf("early best AP = %d", early)
	}
	if late < 4 {
		t.Errorf("late best AP = %d", late)
	}
	if e := n.ClientESNR(0, early, sim.Second); e < 0 {
		t.Errorf("best-AP ESNR = %v dB at 1 s", e)
	}
}

func TestEverySampler(t *testing.T) {
	s := DriveScenario(ModeWGTT, 25, 5)
	s.Duration = 2 * sim.Second
	n, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	var ticks []sim.Time
	n.Every(100*sim.Millisecond, func(at sim.Time) { ticks = append(ticks, at) })
	n.Run()
	if len(ticks) < 18 || len(ticks) > 21 {
		t.Errorf("sampler fired %d times in 2 s at 100 ms", len(ticks))
	}
}

// The reproducibility claim: identical seeds produce byte-identical runs.
func TestDeterminism(t *testing.T) {
	run := func() (uint64, int, uint64) {
		s := DriveScenario(ModeWGTT, 15, 1234)
		s.Duration = 4 * sim.Second
		n, err := Build(s)
		if err != nil {
			t.Fatal(err)
		}
		flow := n.AddDownlinkTCP(0, 0, nil)
		flow.Sender.Start()
		n.Run()
		return flow.Receiver.DeliveredBytes, len(n.Ctl.History), n.Eng.Fired()
	}
	b1, s1, e1 := run()
	b2, s2, e2 := run()
	if b1 != b2 || s1 != s2 || e1 != e2 {
		t.Errorf("same seed diverged: bytes %d/%d switches %d/%d events %d/%d",
			b1, b2, s1, s2, e1, e2)
	}
}

// Different seeds should not produce identical runs (the randomness is real).
func TestSeedsDiffer(t *testing.T) {
	run := func(seed uint64) uint64 {
		s := DriveScenario(ModeWGTT, 15, seed)
		s.Duration = 3 * sim.Second
		n, err := Build(s)
		if err != nil {
			t.Fatal(err)
		}
		flow := n.AddDownlinkUDP(0, 20, 1400)
		flow.Sender.Start()
		n.Run()
		return flow.Receiver.Bytes
	}
	if run(1) == run(2) {
		t.Error("different seeds produced identical byte counts (suspicious)")
	}
}

// Multi-channel assembly invariants.
func TestMultiChannelBuild(t *testing.T) {
	s := DriveScenario(ModeWGTT, 15, 5)
	s.Channels = 3
	n, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Media) != 3 {
		t.Fatalf("media = %d", len(n.Media))
	}
	// APs round-robin over channels.
	for i := range n.APs {
		if n.APs[i].Station().Medium() != n.Media[i%3] {
			t.Errorf("AP%d on wrong channel", i)
		}
	}
	// Baseline cannot be multi-channel.
	sb := DriveScenario(ModeBaseline, 15, 5)
	sb.Channels = 2
	if _, err := Build(sb); err == nil {
		t.Error("baseline multi-channel accepted")
	}
}

// Control-loss injection keeps the system functional end to end.
func TestControlLossDrive(t *testing.T) {
	s := DriveScenario(ModeWGTT, 15, 6)
	s.ControlLossRate = 0.3
	n, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	flow := n.AddDownlinkUDP(0, 20, 1400)
	flow.Sender.Start()
	n.Run()
	if n.Ctl.Stats.StopRetransmits == 0 {
		t.Error("control loss never triggered the 30 ms retransmission")
	}
	if n.Ctl.Stats.SwitchesDone < 5 {
		t.Errorf("only %d switches completed under control loss", n.Ctl.Stats.SwitchesDone)
	}
	if float64(flow.Receiver.Bytes)*8/1e6/s.Duration.Seconds() < 3 {
		t.Error("throughput collapsed under 30% control loss")
	}
}

// The trace recorder captures every event family during a real run.
func TestAttachRecorder(t *testing.T) {
	s := DriveScenario(ModeWGTT, 15, 8)
	s.Duration = 5 * sim.Second
	n, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rec := trace.NewRecorder(&buf)
	flow := n.AddDownlinkTCP(0, 0, nil)
	n.AttachRecorder(rec)
	flow.Sender.Start()
	n.Run()
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, kind := range []string{"deliver", "frame-tx", "switch", "uplink"} {
		if !strings.Contains(out, `"kind":"`+kind+`"`) {
			t.Errorf("trace missing %q events", kind)
		}
	}
	if rec.N < 100 {
		t.Errorf("only %d events traced", rec.N)
	}
}
