package core

import (
	"strings"
	"testing"

	"wgtt/internal/sim"
)

// TestSwitchSpanMedianMatchesTable1 is the observability acceptance test:
// the switch-protocol spans recorded on a default drive must reproduce
// Table 1's ~17 ms median switch execution time. The tolerance band
// (12–22 ms) is the nominal 16.6 ms pipeline — 7 ms stop + 9 ms start
// processing + 3 backhaul one-way trips of 200 µs — widened by the ±4 ms
// per-stage processing jitter; DESIGN.md §10 documents the derivation.
func TestSwitchSpanMedianMatchesTable1(t *testing.T) {
	s := DriveScenario(ModeWGTT, 25, 42)
	n, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	r := n.EnableMetrics()
	flow := n.AddDownlinkUDP(0, 20, 1400)
	flow.Sender.Start()
	n.Run()

	snap := r.Snapshot()
	sum := snap.SwitchSummary()
	if sum.Total < 5 {
		t.Fatalf("only %d switch spans on a full drive-through; want at least 5", sum.Total)
	}
	if sum.Completed < sum.Total-1 {
		t.Errorf("%d of %d spans completed; at most the final switch may be cut off by scenario end",
			sum.Completed, sum.Total)
	}
	med := sim.Time(sum.MedianNS)
	if med < 12*sim.Millisecond || med > 22*sim.Millisecond {
		t.Errorf("median switch execution time %.1f ms outside the 12-22 ms Table 1 band", med.Seconds()*1e3)
	}

	// Consistency: the span ledger, the counters, and the controller's own
	// Stats/History must agree with each other.
	counter := func(name string) uint64 {
		for _, c := range snap.Counters {
			if c.Component == "controller" && c.Name == name {
				return c.Value
			}
		}
		return 0
	}
	if got := counter("switches_done"); got != n.Ctl.Stats.SwitchesDone {
		t.Errorf("switches_done counter = %d, Stats = %d", got, n.Ctl.Stats.SwitchesDone)
	}
	if uint64(sum.Completed) != n.Ctl.Stats.SwitchesDone {
		t.Errorf("completed spans = %d, Stats.SwitchesDone = %d", sum.Completed, n.Ctl.Stats.SwitchesDone)
	}
	if len(n.Ctl.History) != int(n.Ctl.Stats.SwitchesDone) {
		t.Errorf("history has %d records, Stats.SwitchesDone = %d", len(n.Ctl.History), n.Ctl.Stats.SwitchesDone)
	}
	if got := counter("csi_reports"); got != n.Ctl.Stats.CSIReports {
		t.Errorf("csi_reports counter = %d, Stats = %d", got, n.Ctl.Stats.CSIReports)
	}
	if got := counter("stop_retransmits"); got != n.Ctl.Stats.StopRetransmits {
		t.Errorf("stop_retransmits counter = %d, Stats = %d", got, n.Ctl.Stats.StopRetransmits)
	}
	if snap.DurationNS != int64(s.Duration) {
		t.Errorf("snapshot duration %d ns, scenario %d ns", snap.DurationNS, int64(s.Duration))
	}
}

// TestMetricsOffIsInert makes sure a run without EnableMetrics carries no
// registry and no recording side effects — the disabled state of the
// DESIGN.md §10 overhead guarantee.
func TestMetricsOffIsInert(t *testing.T) {
	s := DriveScenario(ModeWGTT, 25, 42)
	n, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	flow := n.AddDownlinkUDP(0, 20, 1400)
	flow.Sender.Start()
	n.Run()
	if n.Metrics != nil {
		t.Fatal("network without EnableMetrics has a registry")
	}
	snap := n.Metrics.Snapshot() // nil-safe: must return an empty snapshot
	if len(snap.Counters) != 0 || len(snap.Spans) != 0 {
		t.Errorf("nil registry snapshot not empty: %d counters, %d spans", len(snap.Counters), len(snap.Spans))
	}
}

// TestMetricsRunsAreDeterministic: enabling metrics must not perturb the
// simulation, and two identical runs must produce identical snapshots.
func TestMetricsRunsAreDeterministic(t *testing.T) {
	run := func(enable bool) (uint64, string) {
		s := DriveScenario(ModeWGTT, 25, 7)
		n, err := Build(s)
		if err != nil {
			t.Fatal(err)
		}
		var rendered string
		if enable {
			n.EnableMetrics()
		}
		flow := n.AddDownlinkUDP(0, 20, 1400)
		flow.Sender.Start()
		n.Run()
		if enable {
			snap := n.Metrics.Snapshot()
			var b strings.Builder
			if err := snap.WriteJSON(&b); err != nil {
				t.Fatal(err)
			}
			rendered = b.String()
		}
		return flow.Receiver.Bytes, rendered
	}
	offBytes, _ := run(false)
	onBytes1, snap1 := run(true)
	onBytes2, snap2 := run(true)
	if offBytes != onBytes1 || onBytes1 != onBytes2 {
		t.Errorf("delivered bytes differ across runs: off %d, on %d / %d", offBytes, onBytes1, onBytes2)
	}
	if snap1 != snap2 {
		t.Error("identical runs produced different metric snapshots")
	}
}
