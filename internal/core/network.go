package core

import (
	"fmt"

	"wgtt/internal/ap"
	"wgtt/internal/backhaul"
	"wgtt/internal/baseline"
	"wgtt/internal/chaos"
	"wgtt/internal/client"
	"wgtt/internal/controller"
	"wgtt/internal/csi"
	"wgtt/internal/federation"
	"wgtt/internal/mac"
	"wgtt/internal/metrics"
	"wgtt/internal/mobility"
	"wgtt/internal/packet"
	"wgtt/internal/radio"
	"wgtt/internal/runtime"
	"wgtt/internal/sim"
	"wgtt/internal/trace"
	"wgtt/internal/urban"
)

// SharedBSSID is the single BSSID every WGTT AP presents (§4.3).
var SharedBSSID = packet.MACAddr{0x02, 0xb5, 0x51, 0xd0, 0x00, 0x01}

// Network is a fully assembled scenario ready to run.
type Network struct {
	Scenario Scenario

	Eng     *sim.Engine
	RNG     *sim.RNG
	Channel *radio.Channel
	// Medium is the primary wireless channel; in multi-channel scenarios
	// (Scenario.Channels > 1) Media holds all of them and Medium aliases
	// Media[0].
	Medium *mac.Medium
	Media  []*mac.Medium
	Bh     *backhaul.Switch

	// OnSwitch observes completed WGTT switches (chained after the
	// network's own multi-channel retune handling).
	OnSwitch func(rec controller.SwitchRecord)

	apChannel []int

	APs        []*ap.AP
	APPosition []mobility.Point
	Clients    []*client.Client

	// WGTT mode.
	Ctl *controller.Controller
	// Federated WGTT mode (Scenario.Domains > 1): the sharded controller
	// tier stands where Ctl would; Ctl stays nil (DESIGN.md §13).
	Fed *federation.Tier
	// Baseline mode.
	Base    *baseline.Network
	Roamers []*baseline.Roamer

	baseIdx []uint16 // per-client baseline downlink index counters

	downRx map[int][]func(p *packet.Packet, at sim.Time)
	upRx   []func(p *packet.Packet, at sim.Time)

	clientByMAC map[packet.MACAddr]int
	nextFlow    uint32

	// snrScratch is the reusable per-subcarrier sample buffer for the probe
	// plane and the ESNR evaluation hooks (single simulation goroutine).
	snrScratch []float64

	// Metrics is the observability registry attached by EnableMetrics
	// (nil — recording disabled — by default; DESIGN.md §10).
	Metrics *metrics.Registry

	// Chaos is the fault injector, armed by Build when Scenario.Chaos is
	// set (nil otherwise; DESIGN.md §11).
	Chaos *chaos.Injector

	// Urban is the expanded city plan when Scenario.Urban is set (nil
	// otherwise; DESIGN.md §16).
	Urban *urban.Plan
}

// Build assembles a scenario into a Network.
func Build(s Scenario) (*Network, error) {
	var uplan *urban.Plan
	if s.Urban != nil {
		// Urban expansion (DESIGN.md §16): the city plan supplies what a
		// corridor scenario states by hand. Everything below this block is
		// unaware the scenario came from a map.
		if len(s.Clients) != 0 || s.APPositions != nil || s.APSubset != nil || len(s.APDomains) != 0 {
			return nil, fmt.Errorf("core: urban scenarios generate their own APs and clients")
		}
		var err error
		uplan, err = urban.BuildPlan(*s.Urban, s.Seed)
		if err != nil {
			return nil, err
		}
		s.APPositions = uplan.APPositions()
		s.OmniAPs = true // curbside small cells, not roadside parabolics
		if s.KeepaliveInterval == 0 {
			// A city cell carries an order of magnitude more stations than
			// the corridor testbed; at the paper's 5 ms null-data pace the
			// probes alone would eat the shared medium. 20 ms keeps several
			// samples inside the city-scale selection window below while
			// freeing the airtime for traffic — applied to both systems.
			s.KeepaliveInterval = 20 * sim.Millisecond
		}
		if s.Controller == nil && s.Mode == ModeWGTT {
			cc := CityControllerConfig()
			s.Controller = &cc
		}
		if s.Mode == ModeWGTT && s.Urban.Domains > 1 {
			s.Domains = s.Urban.Domains
			s.APDomains = uplan.APDomains
			if s.Federation == nil {
				// Same story as the controller gates: a slab boundary cuts
				// straight across city avenues, so riders hover near it for
				// whole blocks. Wider evidence windows, a real cross-domain
				// margin, and a block-scale dwell stop ownership ping-pong.
				fc := federation.DefaultConfig()
				fc.Window = 100 * sim.Millisecond
				fc.MarginDB = 6
				fc.Hysteresis = sim.Second
				s.Federation = &fc
			}
		}
		for _, c := range uplan.Clients {
			s.Clients = append(s.Clients, ClientSpec{Trace: c.Trace, SpeedMPH: c.SpeedMPH})
		}
		if s.Duration == 0 {
			s.Duration = uplan.Duration
		}
	}
	if len(s.Clients) == 0 {
		return nil, fmt.Errorf("core: scenario has no clients")
	}
	nCh := s.Channels
	if nCh < 1 {
		nCh = 1
	}
	if nCh > 1 && s.Mode != ModeWGTT {
		return nil, fmt.Errorf("core: multi-channel deployments are only modeled for WGTT")
	}
	if s.Chaos != nil && s.Mode != ModeWGTT {
		// The baseline has no controller to detect and recover from AP
		// deaths; chaos against it would measure nothing but the fault.
		return nil, fmt.Errorf("core: chaos injection is only modeled for WGTT")
	}
	nDom := s.Domains
	if nDom < 1 {
		nDom = 1
	}
	if nDom > 1 {
		if s.Mode != ModeWGTT {
			return nil, fmt.Errorf("core: controller federation is only modeled for WGTT")
		}
		if nCh > 1 {
			return nil, fmt.Errorf("core: federation and multi-channel are mutually exclusive (the probe plane assumes one controller)")
		}
	}
	eng := sim.NewEngine()
	rng := sim.NewRNG(s.Seed)

	params := radio.DefaultParams()
	if s.Radio != nil {
		params = *s.Radio
	}
	if uplan != nil && params.Obstruction == nil {
		// Street-canyon blockage: the city's buildings make radio
		// visibility follow the streets, so an AP around a corner is tens
		// of dB down on a same-street one (DESIGN.md §16). Both systems
		// see the identical map.
		params.Obstruction = uplan.Graph.BlockageDB
	}
	ch := radio.NewChannel(params, rng)
	var media []*mac.Medium
	for c := 0; c < nCh; c++ {
		media = append(media, mac.NewMedium(eng, ch, rng.Stream(fmt.Sprintf("mac/medium/%d", c))))
	}
	medium := media[0]
	clk := runtime.Virtual(eng)
	bh := backhaul.NewSwitch(eng, s.backhaulLatency())
	if s.ControlLossRate > 0 {
		bh.Drop = backhaul.DropTypes(s.ControlLossRate, rng.Stream("backhaul/controlloss"),
			packet.MsgStop, packet.MsgStart, packet.MsgSwitchAck)
	}

	n := &Network{
		Scenario:    s,
		Eng:         eng,
		RNG:         rng,
		Channel:     ch,
		Medium:      medium,
		Media:       media,
		Bh:          bh,
		downRx:      make(map[int][]func(*packet.Packet, sim.Time)),
		clientByMAC: make(map[packet.MACAddr]int),
		Urban:       uplan,
	}

	// AP positions (possibly a subset of the testbed).
	all := s.APPositions
	if all == nil {
		all = mobility.DefaultAPPositions()
	}
	subset := s.APSubset
	if subset == nil {
		subset = make([]int, len(all))
		for i := range subset {
			subset[i] = i
		}
	}
	for _, idx := range subset {
		if idx < 0 || idx >= len(all) {
			return nil, fmt.Errorf("core: AP subset index %d out of range", idx)
		}
		n.APPosition = append(n.APPosition, all[idx])
	}

	// Explicit AP→domain binding: validate coverage, then let domainOf
	// below prefer it over the contiguous-index default.
	if len(s.APDomains) > 0 {
		if len(s.APDomains) != len(n.APPosition) {
			return nil, fmt.Errorf("core: %d AP domain bindings for %d active APs", len(s.APDomains), len(n.APPosition))
		}
		occupied := make([]bool, nDom)
		for i, d := range s.APDomains {
			if d < 0 || d >= nDom {
				return nil, fmt.Errorf("core: AP %d bound to domain %d, want [0, %d)", i, d, nDom)
			}
			occupied[d] = true
		}
		for d, ok := range occupied {
			if !ok {
				return nil, fmt.Errorf("core: domain %d owns no APs", d)
			}
		}
	}
	domainOf := func(i int) int {
		if len(s.APDomains) > 0 {
			return s.APDomains[i]
		}
		return domainOfAP(i, len(n.APPosition), nDom)
	}

	// Disturbers: with multiple clients, every client scatters the others'
	// links (§5.2.2's dynamic multipath), unless disabled.
	if defaultBool(s.Disturbers, true) && len(s.Clients) > 1 {
		for _, cs := range s.Clients {
			ch.AddDisturber(cs.Trace, mobility.MPH(cs.SpeedMPH))
		}
	}

	wgtt := s.Mode == ModeWGTT

	// Build APs.
	var infos []controller.APInfo
	var peerIPs []packet.IPv4Addr
	for i, pos := range n.APPosition {
		bssid := SharedBSSID
		if !wgtt {
			bssid = packet.APMAC(i) // baseline: each AP is its own BSS
		}
		cfg := ap.DefaultConfig(i, bssid)
		cfg.BAForwarding = wgtt && defaultBool(s.BAForwarding, true)
		cfg.UplinkForwarding = true
		cfg.ForwardOnlyWhenServing = wgtt && !defaultBool(s.UplinkDiversity, true)
		if s.StopProcessing > 0 {
			cfg.StopProcessing = s.StopProcessing
		}
		if s.StartProcessing > 0 {
			cfg.StartProcessing = s.StartProcessing
		}
		var antenna radio.Antenna = radio.NewLairdGD24BP()
		if s.OmniAPs {
			// Small-cell omni variant (§4.2): modest gain in every
			// direction instead of the parabolic main lobe.
			antenna = radio.Omni{PeakDBi: 5}
		}
		lossDB := float64(apFixedLossDB)
		if s.Urban != nil {
			lossDB = urbanAPLossDB
		}
		if s.APLossDB > 0 {
			lossDB = s.APLossDB
		}
		ep := &radio.Endpoint{
			Name:         cfg.Name,
			Trace:        mobility.Stationary{At: pos},
			Antenna:      antenna,
			BoresightRad: apBoresight,
			TxPowerDBm:   apTxPowerDBm,
			ExtraLossDB:  lossDB,
		}
		if err := ch.AddEndpoint(ep); err != nil {
			return nil, err
		}
		apCh := i % nCh
		n.apChannel = append(n.apChannel, apCh)
		var aliases []packet.MACAddr
		if wgtt {
			aliases = []packet.MACAddr{SharedBSSID}
		}
		st := mac.NewStation(media[apCh], mac.StationConfig{
			Addr:        cfg.MAC,
			Aliases:     aliases,
			Endpoint:    ep,
			Promiscuous: wgtt, // monitor-mode interface (§3.2.1)
		})
		// Each AP reports to the controller owning its domain; with one
		// domain that is packet.ControllerIP, unchanged.
		a := ap.New(cfg, clk, bh, st, packet.DomainControllerIP(domainOf(i)), rng.Stream("ap/"+cfg.Name))
		n.APs = append(n.APs, a)
		infos = append(infos, controller.APInfo{ID: i, IP: cfg.IP, MAC: cfg.MAC})
		peerIPs = append(peerIPs, cfg.IP)
	}
	for i, a := range n.APs {
		peers := make([]packet.IPv4Addr, 0, len(peerIPs)-1)
		for j, ip := range peerIPs {
			if j != i {
				peers = append(peers, ip)
			}
		}
		a.SetPeers(peers)
	}

	// Wired side.
	if wgtt {
		ctlCfg := controller.DefaultConfig()
		if s.Controller != nil {
			ctlCfg = *s.Controller
		}
		if s.Chaos != nil {
			// Faults without detection would just be permanent outages: the
			// chaos engine implies the §11 health monitor (explicit health
			// settings in s.Controller win over the defaults).
			ctlCfg = ctlCfg.WithHealth()
		}
		if s.Selector != nil {
			ctlCfg.Selector = *s.Selector
		}
		if nDom > 1 {
			// Sharded controller tier (DESIGN.md §13): one Domain per
			// contiguous AP block, a shared city table, and a Tier routing
			// wired-side traffic to each client's owner.
			if nDom > len(infos) {
				return nil, fmt.Errorf("core: %d domains for %d APs", nDom, len(infos))
			}
			fedCfg := federation.DefaultConfig()
			if s.Federation != nil {
				fedCfg = *s.Federation
			}
			fedCfg.Controller = ctlCfg
			city := make([]federation.APAssignment, len(infos))
			for i, info := range infos {
				city[i] = federation.APAssignment{
					ID: i, Domain: domainOf(i),
					IP: info.IP, MAC: info.MAC,
				}
			}
			domains := make([]*federation.Domain, nDom)
			for d := 0; d < nDom; d++ {
				domains[d] = federation.NewDomain(fedCfg, clk, bh, d, city)
				domains[d].Controller().DeliverUplink = n.dispatchUplink
			}
			n.Fed = federation.NewTier(domains)
		} else {
			n.Ctl = controller.New(ctlCfg, clk, bh, infos)
			n.Ctl.DeliverUplink = n.dispatchUplink
		}
	} else {
		n.Base = baseline.NewNetwork(baseline.DefaultNetworkConfig(), eng, bh, n.APs)
		n.Base.DeliverUplink = n.dispatchUplink
		n.Base.StartBeacons()
	}

	// Clients.
	n.baseIdx = make([]uint16, len(s.Clients))
	var roamAddrs []baseline.APAddr
	for i := range n.APs {
		roamAddrs = append(roamAddrs, baseline.APAddr{ID: i, MAC: packet.APMAC(i)})
	}
	for i, spec := range s.Clients {
		name := fmt.Sprintf("car%d", i+1)
		ep := &radio.Endpoint{
			Name:        name,
			Trace:       spec.Trace,
			TxPowerDBm:  clientTxPowerDBm,
			SpeedHintMS: mobility.MPH(spec.SpeedMPH),
		}
		if err := ch.AddEndpoint(ep); err != nil {
			return nil, err
		}
		start := nearestAP(n.APPosition, spec.Trace.Position(0))
		dest := SharedBSSID
		if !wgtt {
			dest = packet.APMAC(start)
		}
		ccfg := client.DefaultConfig(i+1, dest)
		st := mac.NewStation(media[n.apChannel[start]], mac.StationConfig{
			Addr:     ccfg.MAC,
			Endpoint: ep,
		})
		cl := client.New(ccfg, eng, st)
		idx := i
		cl.OnDownlink = func(p *packet.Packet, at sim.Time) {
			for _, fn := range n.downRx[idx] {
				fn(p, at)
			}
		}
		n.Clients = append(n.Clients, cl)
		n.clientByMAC[ccfg.MAC] = i
		if spec.Deferred && !wgtt {
			return nil, fmt.Errorf("core: deferred clients are only modeled for WGTT")
		}
		if !spec.Deferred {
			n.startClientKeepalive(cl)
		}

		// Association bootstrap: the §4.3 replication, performed directly.
		// A deferred client gets its AP-side association (no serving AP)
		// but no controller registration — AdmitCellHandoff completes the
		// bootstrap when the client actually enters this cell.
		if wgtt {
			for apID, a := range n.APs {
				a.Associate(ccfg.MAC, ccfg.IP, !spec.Deferred && apID == start)
			}
			if spec.Deferred {
				continue
			}
			if n.Fed != nil {
				if err := n.Fed.RegisterClient(ccfg.MAC, ccfg.IP, start); err != nil {
					return nil, err
				}
			} else {
				n.Ctl.RegisterClient(ccfg.MAC, ccfg.IP, start)
			}
		} else {
			n.Base.Associate(ccfg.MAC, ccfg.IP, start)
			n.Roamers = append(n.Roamers,
				baseline.NewRoamer(baseline.DefaultRoamerConfig(), eng, cl, n.Base, roamAddrs, start))
		}
	}

	// Multi-channel plumbing: follow the serving AP's channel on every
	// switch (channel-switch announcement, ~1 ms), and run the off-channel
	// probe plane that keeps cross-channel CSI flowing (see DESIGN.md §5).
	if wgtt {
		emit := func(rec controller.SwitchRecord) {
			if nCh > 1 {
				n.retuneClient(rec)
			}
			if n.OnSwitch != nil {
				n.OnSwitch(rec)
			}
		}
		if n.Fed != nil {
			// Domains already re-address their records to global AP ids —
			// both inner switches and the cross-domain ones the federation
			// layer drives itself.
			for _, d := range n.Fed.Domains {
				d.OnSwitch = emit
			}
		} else {
			n.Ctl.OnSwitch = emit
		}
		if nCh > 1 {
			n.startProbePlane()
		}
	}

	// Fault injection (DESIGN.md §11): derive the plan from the scenario
	// seed and arm it. The drop hook chains after any ControlLossRate hook
	// installed above.
	if s.Chaos != nil {
		targets := make([]chaos.APTarget, len(n.APs))
		for i, a := range n.APs {
			targets[i] = a
		}
		var ct chaos.ControllerTarget = n.Ctl
		if n.Fed != nil {
			// A ControllerCrash hits the tier's crash-target domain (domain 0
			// by default); the other domains ride out their peer's outage.
			ct = n.Fed
		}
		n.Chaos = chaos.NewInjector(*s.Chaos, clk, rng, targets, ct, s.Duration)
		n.Chaos.Arm(bh)
	}

	return n, nil
}

// EnableMetrics attaches a fresh observability registry to the network —
// controller selection/dedup instruments and switch-protocol spans, per-AP
// queue/Block-ACK/keepalive instruments, per-client keepalive counters —
// and returns it. Call before Run; snapshot after. Recording is off until
// this is called, and the instrumented hot paths stay allocation-free
// either way (DESIGN.md §10).
func (n *Network) EnableMetrics() *metrics.Registry {
	return n.EnableMetricsInto(metrics.NewRegistry())
}

// EnableMetricsInto wires this network's components into an existing
// registry, so one registry can aggregate several sequential runs (the
// experiment harness does this). The registry must not be shared across
// concurrently running networks: like the simulation itself, it is
// single-goroutine.
func (n *Network) EnableMetricsInto(r *metrics.Registry) *metrics.Registry {
	n.Metrics = r
	if n.Ctl != nil {
		n.Ctl.UseMetrics(r)
	}
	if n.Fed != nil {
		for _, d := range n.Fed.Domains {
			d.Controller().UseMetrics(r)
			d.UseMetrics(r)
		}
	}
	for _, a := range n.APs {
		a.UseMetrics(r)
	}
	for i, cl := range n.Clients {
		cl.UseMetrics(r, fmt.Sprintf("client%d", i+1))
	}
	if n.Chaos != nil {
		n.Chaos.UseMetrics(r)
	}
	if n.Urban != nil {
		// Urban workload shape (DESIGN.md §16): planned quantities, recorded
		// once so fleet/eval merges report the generated city truthfully.
		st := n.Urban.Stats
		r.Counter("urban", "turns").Add(uint64(st.Turns))
		r.Counter("urban", "light_stops").Add(uint64(st.LightStops))
		r.Counter("urban", "route_crossings").Add(uint64(st.RouteCrossings))
		r.Counter("urban", "buses").Add(uint64(st.Buses))
		r.Counter("urban", "riders").Add(uint64(st.Riders))
		r.Counter("urban", "cars").Add(uint64(st.Cars))
		r.Counter("urban", "pedestrians").Add(uint64(st.Pedestrians))
		h := r.Histogram("urban", "riders_per_bus", []float64{0, 5, 10, 20, 40, 80})
		for _, k := range st.RidersPerBus {
			h.Observe(float64(k))
		}
	}
	return r
}

// OnClientDownlink registers a tap on a client's delivered downlink
// packets (chained after any flow receivers). The resilience evaluation
// uses it to measure delivery gaps around injected faults.
func (n *Network) OnClientDownlink(clientID int, fn func(p *packet.Packet, at sim.Time)) {
	n.onClientDownlink(clientID, fn)
}

// retuneClient moves a client's radio to its new serving AP's channel.
func (n *Network) retuneClient(rec controller.SwitchRecord) {
	id, ok := n.clientByMAC[rec.Client]
	if !ok {
		return
	}
	target := n.Media[n.apChannel[rec.To]]
	st := n.Clients[id].Station()
	n.Eng.After(sim.Millisecond, func() { st.Retune(target) })
}

// startProbePlane compresses the client's per-channel probe sweep: every
// 5 ms each AP (whatever its channel) takes one CSI measurement of each
// client and reports it, so the controller can compare APs across channels
// (a challenger needs two in-window samples to be eligible). The sweep's
// airtime cost is negligible and not modeled.
func (n *Network) startProbePlane() {
	n.Every(5*sim.Millisecond, func(at sim.Time) {
		for ci, cl := range n.Clients {
			cep := n.Channel.Endpoint(fmt.Sprintf("car%d", ci+1))
			for _, a := range n.APs {
				link, err := n.Channel.Link(a.Config().Name, cep.Name)
				if err != nil {
					continue
				}
				n.snrScratch = link.SNRInto(at, cep, n.snrScratch)
				// The report itself is freshly allocated per send: with wire
				// verification off, plain Send retains the pointer in its
				// delivery closure (only the SendMany fan-out path carries
				// the non-retention contract, DESIGN.md §14).
				rep := &packet.CSIReport{Client: cl.Config().MAC, AP: a.Config().IP, At: int64(at)}
				rep.QuantizeSNR(n.snrScratch)
				_ = n.Bh.Send(a.Config().IP, packet.ControllerIP, rep)
			}
		}
	})
}

// AttachRecorder streams a tcpdump-style event log of the run: every
// confirmed delivery, every data frame on the air, every completed switch,
// and every de-duplicated uplink arrival. Existing evaluation hooks are
// chained, not replaced. Call rec.Flush() after Run.
func (n *Network) AttachRecorder(rec *trace.Recorder) {
	for apID, a := range n.APs {
		a := a
		name := a.Config().Name
		prevDeliver := a.OnDeliver
		a.OnDeliver = func(p *packet.Packet, at sim.Time) {
			rec.Log(trace.Event{
				AtNS: trace.At(at), Kind: trace.KindDeliver, Node: name,
				Client: p.ClientMAC.String(), Bytes: p.Bytes, Seq: p.Seq,
				Index: p.Index, FlowID: p.FlowID,
			})
			if prevDeliver != nil {
				prevDeliver(p, at)
			}
		}
		prevTx := a.OnFrameTx
		a.OnFrameTx = func(rate float64, mpdus int, at sim.Time) {
			rec.Log(trace.Event{
				AtNS: trace.At(at), Kind: trace.KindFrameTx, Node: name,
				RateMbps: rate, MPDUs: mpdus,
			})
			if prevTx != nil {
				prevTx(rate, mpdus, at)
			}
		}
		_ = apID
	}
	if n.Ctl != nil || n.Fed != nil {
		prev := n.OnSwitch
		n.OnSwitch = func(recd controller.SwitchRecord) {
			rec.Log(trace.Event{
				AtNS: trace.At(recd.At), Kind: trace.KindSwitch, Node: "controller",
				Client: recd.Client.String(), FromAP: recd.From, ToAP: recd.To,
				DurNS: int64(recd.Duration),
			})
			if prev != nil {
				prev(recd)
			}
		}
	}
	n.onServerUplink(func(p *packet.Packet, at sim.Time) {
		rec.Log(trace.Event{
			AtNS: trace.At(at), Kind: trace.KindUplink, Node: "controller",
			Client: p.ClientMAC.String(), Bytes: p.Bytes, Seq: p.Seq, FlowID: p.FlowID,
		})
	})
}

// dispatchUplink fans a de-duplicated uplink packet to server-side flows.
func (n *Network) dispatchUplink(p *packet.Packet, at sim.Time) {
	for _, fn := range n.upRx {
		fn(p, at)
	}
}

// SendDownlink injects one downlink packet for the given client.
func (n *Network) SendDownlink(clientID int, p *packet.Packet) error {
	p.ClientMAC = n.Clients[clientID].Config().MAC
	if p.DstIP.IsZero() {
		p.DstIP = n.Clients[clientID].Config().IP
	}
	if n.Fed != nil {
		return n.Fed.SendDownlink(p)
	}
	if n.Ctl != nil {
		return n.Ctl.SendDownlink(p)
	}
	return n.Base.SendDownlink(p, &n.baseIdx[clientID])
}

// ServingAP returns which AP currently serves the client.
func (n *Network) ServingAP(clientID int) int {
	mac := n.Clients[clientID].Config().MAC
	if n.Fed != nil {
		return n.Fed.ServingAP(mac)
	}
	if n.Ctl != nil {
		return n.Ctl.ServingAP(mac)
	}
	return n.Base.CurrentAP(mac)
}

// CtlStats aggregates the controller-plane counters: the single
// controller's in the unfederated deployment, the sum across domains in a
// federated one.
func (n *Network) CtlStats() controller.Stats {
	if n.Fed != nil {
		return n.Fed.Stats().Ctl
	}
	if n.Ctl != nil {
		return n.Ctl.Stats
	}
	return controller.Stats{}
}

// FedStats returns the summed federation counters (zero when unfederated).
func (n *Network) FedStats() federation.Stats {
	if n.Fed == nil {
		return federation.Stats{}
	}
	return n.Fed.Stats().Fed
}

// domainOfAP partitions nAPs into nDom contiguous, near-equal blocks.
func domainOfAP(i, nAPs, nDom int) int {
	if nDom <= 1 {
		return 0
	}
	return i * nDom / nAPs
}

// BestESNRAP returns the ground-truth optimal AP — the one with the highest
// instantaneous uplink ESNR to the client — and that ESNR (Table 2's oracle).
func (n *Network) BestESNRAP(clientID int, at sim.Time) (int, float64) {
	cl := n.Clients[clientID]
	cep := n.Channel.Endpoint(fmt.Sprintf("car%d", clientID+1))
	best, bestESNR := -1, 0.0
	for i := range n.APs {
		link, err := n.Channel.Link(n.APs[i].Config().Name, cep.Name)
		if err != nil {
			continue
		}
		n.snrScratch = link.SNRInto(at, cep, n.snrScratch)
		e := csi.ESNRdB(n.snrScratch, csi.DefaultESNRModulation)
		if best == -1 || e > bestESNR {
			best, bestESNR = i, e
		}
	}
	_ = cl
	return best, bestESNR
}

// ClientESNR returns the instantaneous uplink ESNR from the client to one AP.
func (n *Network) ClientESNR(clientID, apID int, at sim.Time) float64 {
	cep := n.Channel.Endpoint(fmt.Sprintf("car%d", clientID+1))
	link, err := n.Channel.Link(n.APs[apID].Config().Name, cep.Name)
	if err != nil {
		return 0
	}
	n.snrScratch = link.SNRInto(at, cep, n.snrScratch)
	return csi.ESNRdB(n.snrScratch, csi.DefaultESNRModulation)
}

// Run advances the simulation to the scenario duration.
func (n *Network) Run() {
	n.Eng.RunUntil(n.Scenario.Duration)
	// The covered duration turns counters into rates in metrics.Fprint.
	n.Metrics.AddDuration(int64(n.Scenario.Duration))
}

// RunUntil advances to an arbitrary time.
func (n *Network) RunUntil(t sim.Time) { n.Eng.RunUntil(t) }

// Every schedules fn at a fixed period until the scenario ends (sampling
// hook for timelines).
func (n *Network) Every(period sim.Time, fn func(at sim.Time)) {
	var tick func()
	tick = func() {
		fn(n.Eng.Now())
		if n.Eng.Now()+period <= n.Scenario.Duration {
			n.Eng.After(period, tick)
		}
	}
	n.Eng.After(period, tick)
}
