// Package core assembles the full WGTT system — radio channel, 802.11 MAC,
// APs, controller, backhaul, clients, and transport flows — into runnable
// scenarios, and likewise assembles the Enhanced 802.11r baseline on the
// same substrate so the two are compared apples-to-apples, as in §5.
package core

import (
	"math"

	"wgtt/internal/chaos"
	"wgtt/internal/controller"
	"wgtt/internal/federation"
	"wgtt/internal/mobility"
	"wgtt/internal/radio"
	"wgtt/internal/selector"
	"wgtt/internal/sim"
	"wgtt/internal/urban"
)

// Mode selects the system under test.
type Mode int

// The two systems of the evaluation.
const (
	// ModeWGTT runs the paper's system: controller-driven millisecond
	// switching with cyclic-queue fanout.
	ModeWGTT Mode = iota
	// ModeBaseline runs Enhanced 802.11r (§5.1).
	ModeBaseline
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == ModeBaseline {
		return "enhanced-802.11r"
	}
	return "wgtt"
}

// ClientSpec describes one mobile client.
type ClientSpec struct {
	Trace mobility.Trace
	// SpeedMPH is the client's design speed (sets the fading Doppler).
	SpeedMPH float64
	// Deferred builds the client's radio and MAC state but admits it to the
	// network later: no keepalives and no controller registration at build
	// time. The metro uses this for clients whose route only enters this
	// cell mid-run — AdmitCellHandoff (metro.go) performs the deferred
	// admission when the client migrates in. WGTT mode only.
	Deferred bool
}

// Scenario is a complete experiment description.
type Scenario struct {
	Mode Mode
	Seed uint64
	// Duration of the run.
	Duration sim.Time

	// APPositions along the road; nil uses the testbed layout (Fig. 9).
	APPositions []mobility.Point
	// APSubset activates only these AP indices (Fig. 23's dense/sparse
	// segments); nil activates all.
	APSubset []int

	Clients []ClientSpec

	// Radio overrides the default channel model when non-nil.
	Radio *radio.Params
	// Controller overrides the WGTT controller config when non-nil.
	Controller *controller.Config
	// Selector overrides the AP-selection policy (DESIGN.md §15) when
	// non-nil. The zero policy is §3.1.1 windowed-median; setting this on
	// top of Controller replaces only the Selector sub-config.
	Selector *selector.Config
	// BackhaulLatency is the one-way Ethernet latency (default 200 µs).
	BackhaulLatency sim.Time

	// BAForwarding disables §3.2.1 when explicitly set false (ablation).
	BAForwarding *bool
	// UplinkDiversity, when explicitly false, makes only the serving WGTT
	// AP forward uplink packets (ablation of the §3.2.2 multi-AP path).
	UplinkDiversity *bool
	// Disturbers, when explicitly false, disables inter-vehicle scattering
	// even with multiple clients.
	Disturbers *bool
	// StopProcessing / StartProcessing override the AP control-plane
	// processing model when > 0 (Table 1 calibration).
	StopProcessing  sim.Time
	StartProcessing sim.Time
	// KeepaliveInterval paces the clients' null-data CSI probes
	// (default 5 ms, matching DESIGN.md §6; < 0 disables them).
	KeepaliveInterval sim.Time

	// OmniAPs replaces the parabolic antennas with small-cell
	// omnidirectional ones (the §4.2 variant the paper says the
	// hardware-agnostic design supports).
	OmniAPs bool
	// APLossDB overrides the per-AP fixed RF loss chain when > 0. The
	// urban expansion sets the curbside small-cell figure itself; metro
	// cells (which hand-build their AP lists from the city plan) use this
	// to get the same install without going through Scenario.Urban.
	APLossDB float64
	// ControlLossRate drops WGTT control messages (stop/start/ack) on the
	// backhaul with this probability — failure injection for the §3.1.2
	// 30 ms retransmission path.
	ControlLossRate float64
	// Channels spreads the APs across this many non-interfering wireless
	// channels, round-robin (§7's multi-channel discussion). 0 or 1 keeps
	// the paper's single-channel deployment. Clients retune to the serving
	// AP's channel on each switch, and APs can only overhear clients on
	// their own channel — which is exactly the trade-off §7 predicts.
	Channels int
	// Domains shards the controller tier (DESIGN.md §13): the APs are split
	// into this many contiguous domains, each owned by its own controller
	// instance, and clients are handed off between controllers as they
	// cross domain boundaries. 0 or 1 keeps the single-controller
	// deployment, byte-identical to builds without the federation layer.
	// WGTT mode only; incompatible with Channels > 1 (the probe plane
	// assumes one controller).
	Domains int
	// Federation overrides the federation config when non-nil (the inner
	// Controller field is still taken from Scenario.Controller).
	Federation *federation.Config
	// Chaos enables deterministic fault injection (DESIGN.md §11): a fault
	// plan is derived from the scenario seed, the AP health monitor is
	// switched on (WithHealth, unless the Controller override already set
	// it), and the injector replays the plan during the run. nil — the
	// default — leaves the network untouched and byte-identical to a build
	// without the chaos engine. WGTT mode only.
	Chaos *chaos.Config
	// Urban switches the scenario to the street-grid city workload
	// (DESIGN.md §16): Build expands the config into AP positions along
	// every street (omni small cells), routed vehicle/bus/pedestrian
	// clients, the scenario duration, and — in WGTT mode with
	// Urban.Domains > 1 — the geographic federation binding via APDomains.
	// Mutually exclusive with hand-set APPositions/APSubset/Clients. nil —
	// the default — leaves non-urban scenarios byte-identical to builds
	// without the urban subsystem.
	Urban *urban.Config
	// APDomains explicitly binds each active AP to a federation domain,
	// overriding the default contiguous-index split. Must cover every
	// active AP with every domain in [0, Domains) owning at least one AP.
	// The urban expansion fills this from the city partition.
	APDomains []int
}

// UrbanScenario builds a street-grid city scenario (DESIGN.md §16) under
// the given mode. Baseline mode runs the identical city — same graph,
// same APs, same traces — with the federation binding ignored, so the two
// systems compare on one map.
func UrbanScenario(mode Mode, cfg urban.Config, seed uint64) Scenario {
	return Scenario{Mode: mode, Seed: seed, Urban: &cfg}
}

// CityControllerConfig returns the switching gates Build applies to urban
// scenarios: omni micro-cells have much flatter ESNR gradients than the
// corridor's parabolics, so the §3.1.1 zero-margin/40 ms defaults flap
// between near-equal neighbors. A longer median window, a real challenger
// margin, and a street-scale dwell keep switches meaningful (DESIGN.md
// §16); the CollapseDB escape lets corner-turn collapses through the dwell
// immediately. Exported so metro cells — which hand-build their scenarios
// from a city plan instead of going through Scenario.Urban — run the same
// gates.
func CityControllerConfig() controller.Config {
	cc := controller.DefaultConfig()
	cc.Window = 100 * sim.Millisecond
	cc.MedianMarginDB = 6
	cc.Hysteresis = 500 * sim.Millisecond
	cc.CollapseDB = 18
	return cc
}

// DriveScenario is a convenience builder: one client driving the full
// testbed at speedMPH under the given mode.
func DriveScenario(mode Mode, speedMPH float64, seed uint64) Scenario {
	aps := mobility.DefaultAPPositions()
	margin := 10.0
	dur := mobility.TransitDuration(aps, speedMPH, margin) + 2*sim.Second
	var tr mobility.Trace
	if speedMPH <= 0 {
		// Static client parked in AP2's cell (the paper's 0 mph point).
		tr = mobility.Stationary{At: mobility.Point{X: aps[1].X, Y: mobility.LaneY}}
		dur = 10 * sim.Second
	} else {
		tr = mobility.TransitDrive(aps, speedMPH, margin)
	}
	return Scenario{
		Mode:     mode,
		Seed:     seed,
		Duration: dur,
		Clients:  []ClientSpec{{Trace: tr, SpeedMPH: speedMPH}},
	}
}

// MultiClientScenario builds an n-client pattern drive (Figs. 17–20).
func MultiClientScenario(mode Mode, pattern mobility.Pattern, n int, speedMPH float64, seed uint64) Scenario {
	aps := mobility.DefaultAPPositions()
	margin := 10.0
	traces := mobility.PatternTraces(pattern, n, aps, speedMPH, margin)
	specs := make([]ClientSpec, n)
	for i, tr := range traces {
		specs[i] = ClientSpec{Trace: tr, SpeedMPH: speedMPH}
	}
	return Scenario{
		Mode:     mode,
		Seed:     seed,
		Duration: mobility.TransitDuration(aps, speedMPH, margin) + 2*sim.Second,
		Clients:  specs,
	}
}

// apBoresight is the antenna orientation: straight across the road.
const apBoresight = -math.Pi / 2

// Default radio endpoint powers and losses (§4, calibrated in DESIGN.md).
const (
	apTxPowerDBm     = 17
	clientTxPowerDBm = 15
	apFixedLossDB    = 24 // splitter + cabling + window penetration
	// Urban curbside small cells skip the testbed's splitter/window chain —
	// a pole-mount install keeps only a short cable run (DESIGN.md §16).
	urbanAPLossDB = 6
)

// CityAPLossDB is the curbside small-cell fixed RF loss, exported for
// Scenario.APLossDB users that assemble city-style cells by hand (the metro
// tile builder, DESIGN.md §17).
const CityAPLossDB = urbanAPLossDB

// nearestAP returns the index (within the active set) of the AP closest to
// the client's position at time zero.
func nearestAP(positions []mobility.Point, p mobility.Point) int {
	best, bestD := 0, math.Inf(1)
	for i, ap := range positions {
		if d := ap.Distance(p); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// defaultBool returns *v or def when v is nil.
func defaultBool(v *bool, def bool) bool {
	if v == nil {
		return def
	}
	return *v
}

// backhaulOrDefault applies the default Ethernet latency.
func (s *Scenario) backhaulLatency() sim.Time {
	if s.BackhaulLatency > 0 {
		return s.BackhaulLatency
	}
	return 200 * sim.Microsecond
}
