package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"wgtt/internal/chaos"
	"wgtt/internal/controller"
	"wgtt/internal/mobility"
	"wgtt/internal/packet"
	"wgtt/internal/sim"
)

func TestChaosRejectedForBaseline(t *testing.T) {
	s := DriveScenario(ModeBaseline, 15, 1)
	cfg := chaos.DefaultConfig()
	s.Chaos = &cfg
	if _, err := Build(s); err == nil {
		t.Fatal("baseline scenario with chaos accepted")
	}
}

func TestChaosOffLeavesNetworkUntouched(t *testing.T) {
	n, err := Build(DriveScenario(ModeWGTT, 15, 1))
	if err != nil {
		t.Fatal(err)
	}
	if n.Chaos != nil {
		t.Error("injector built without Scenario.Chaos")
	}
	if n.Bh.Drop != nil || n.Bh.Delay != nil {
		t.Error("backhaul hooks installed on a chaos-free network")
	}
	if cfg := n.Ctl.Config(); cfg.HealthInterval != 0 || cfg.DetectTimeout != 0 {
		t.Error("health monitor enabled on a chaos-free network")
	}
}

// The DESIGN.md §11 acceptance scenario: crash the client's serving AP
// mid-drive and pin the resulting delivery outage to the detection timeout
// plus one health-scan interval plus one (forced) switch span. A first run
// with the identical pre-crash configuration finds which AP will be serving
// at the crash instant; the chaos run then kills exactly that AP.
//
// The corridor is the dense testbed segment with the §4.2 omni small-cell
// variant, so neighbor coverage overlaps and the bound measures the
// recovery protocol. (With the full directional testbed an AP death opens
// a genuine coverage hole — the client is dark until it physically drives
// into the next beam, however fast detection is.)
func TestChaosSingleAPCrashOutageBounded(t *testing.T) {
	const seed, speed = 11, 25.0
	ctlCfg := controller.DefaultConfig().WithHealth()
	aps := mobility.DefaultAPPositions()[:4]
	base := Scenario{
		Mode: ModeWGTT, Seed: seed,
		Duration: mobility.TransitDuration(aps, speed, 10) + 2*sim.Second,
		APSubset: []int{0, 1, 2, 3}, OmniAPs: true,
		Clients:    []ClientSpec{{Trace: mobility.TransitDrive(aps, speed, 10), SpeedMPH: speed}},
		Controller: &ctlCfg,
	}
	crashAt := base.Duration / 2

	victim := func() int {
		n, err := Build(base)
		if err != nil {
			t.Fatal(err)
		}
		flow := n.AddDownlinkUDP(0, 20, 1400)
		flow.Sender.Start()
		n.RunUntil(crashAt)
		return n.ServingAP(0)
	}()

	s := base
	ccfg := chaos.SingleAPCrash(victim, crashAt, 0) // never restarts
	s.Chaos = &ccfg
	n, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	flow := n.AddDownlinkUDP(0, 20, 1400)
	flow.Sender.Start()
	var deliveries []sim.Time
	n.OnClientDownlink(0, func(p *packet.Packet, at sim.Time) {
		deliveries = append(deliveries, at)
	})
	n.Run()

	if n.Chaos.Stats.APCrashes != 1 {
		t.Fatalf("APCrashes = %d, want 1", n.Chaos.Stats.APCrashes)
	}
	st := n.Ctl.Stats
	if st.APsMarkedDead < 1 || st.ForcedSwitches < 1 {
		t.Fatalf("APsMarkedDead = %d, ForcedSwitches = %d, want ≥ 1 each", st.APsMarkedDead, st.ForcedSwitches)
	}

	// The outage is the longest delivery gap straddling the crash window.
	window := crashAt + sim.Second
	var maxGap sim.Time
	prev := crashAt - 200*sim.Millisecond
	for _, at := range deliveries {
		if at < prev {
			continue
		}
		if at > window {
			break
		}
		if gap := at - prev; gap > maxGap {
			maxGap = gap
		}
		prev = at
	}
	// Detection timeout + one scan interval of granularity + a generous
	// switch-execution budget (Table 1 measures ~17 ms; the forced path is
	// shorter — one backhaul round trip — but the ring refills behind it).
	bound := ctlCfg.DetectTimeout + ctlCfg.HealthInterval + 50*sim.Millisecond
	t.Logf("victim ap%d, crash at %v: outage %v (bound %v), forced=%d", victim+1, crashAt, maxGap, bound, st.ForcedSwitches)
	if maxGap > bound {
		t.Errorf("delivery outage %v exceeds bound %v", maxGap, bound)
	}
	if maxGap == 0 {
		t.Error("no deliveries observed around the crash window")
	}
}

// Chaos runs are deterministic per seed: two identical runs agree on every
// fault applied, every counter, and the full metrics snapshot.
func TestChaosRunDeterministicPerSeed(t *testing.T) {
	run := func() (chaos.Stats, controller.Stats, uint64, []byte) {
		s := DriveScenario(ModeWGTT, 25, 7)
		ccfg := chaos.DefaultConfig()
		// Compress MTBFs so a ~30 s drive sees real weather.
		ccfg.APCrashMTBF = 20 * sim.Second
		ccfg.APDowntime = sim.Second
		ccfg.BackhaulBurstMTBF = 10 * sim.Second
		ccfg.CSIBlackoutMTBF = 10 * sim.Second
		ccfg.LatencySpikeMTBF = 10 * sim.Second
		s.Chaos = &ccfg
		n, err := Build(s)
		if err != nil {
			t.Fatal(err)
		}
		reg := n.EnableMetrics()
		flow := n.AddDownlinkUDP(0, 20, 1400)
		flow.Sender.Start()
		n.Run()
		js, err := json.Marshal(reg.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return n.Chaos.Stats, n.Ctl.Stats, flow.Receiver.Bytes, js
	}
	cs1, ct1, bytes1, js1 := run()
	cs2, ct2, bytes2, js2 := run()
	if cs1 != cs2 {
		t.Errorf("chaos stats differ across identical runs:\n%+v\n%+v", cs1, cs2)
	}
	if ct1 != ct2 {
		t.Errorf("controller stats differ across identical runs:\n%+v\n%+v", ct1, ct2)
	}
	if bytes1 != bytes2 {
		t.Errorf("delivered bytes differ: %d vs %d", bytes1, bytes2)
	}
	if !bytes.Equal(js1, js2) {
		t.Error("metrics snapshots differ across identical runs")
	}
	if cs1.APCrashes == 0 {
		t.Error("compressed-MTBF chaos run applied no AP crashes; the test exercised nothing")
	}
	t.Logf("chaos stats: %+v", cs1)
}
