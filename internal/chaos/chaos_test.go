package chaos

import (
	"reflect"
	"sort"
	"testing"

	"wgtt/internal/backhaul"
	"wgtt/internal/packet"
	wrt "wgtt/internal/runtime"
	"wgtt/internal/sim"
)

func TestBuildPlanDeterministicAndSorted(t *testing.T) {
	cfg := DefaultConfig()
	horizon := 300 * sim.Second
	a := BuildPlan(cfg, sim.NewRNG(42), 6, horizon)
	b := BuildPlan(cfg, sim.NewRNG(42), 6, horizon)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different plans")
	}
	if a.Empty() {
		t.Fatal("default config over 5 minutes generated no events")
	}
	if !sort.SliceIsSorted(a.Events, func(i, j int) bool {
		x, y := a.Events[i], a.Events[j]
		if x.At != y.At {
			return x.At < y.At
		}
		if x.Kind != y.Kind {
			return x.Kind < y.Kind
		}
		return x.AP < y.AP
	}) {
		t.Error("plan not sorted by (At, Kind, AP)")
	}
	for _, ev := range a.Events {
		if ev.Kind != APRestart && ev.At >= horizon {
			t.Fatalf("event %+v generated beyond the horizon", ev)
		}
	}
	c := BuildPlan(cfg, sim.NewRNG(43), 6, horizon)
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical plans")
	}
}

func TestBuildPlanPerAPStreamsIndependent(t *testing.T) {
	// AP k's crash process must not move when more APs join the plan: each
	// AP draws from its own named stream, like fleet cells.
	cfg := Config{APCrashMTBF: 30 * sim.Second, APDowntime: sim.Second}
	horizon := 600 * sim.Second
	small := BuildPlan(cfg, sim.NewRNG(7), 2, horizon)
	big := BuildPlan(cfg, sim.NewRNG(7), 8, horizon)
	filt := func(p Plan, id int) []Event {
		var out []Event
		for _, ev := range p.Events {
			if ev.AP == id && (ev.Kind == APCrash || ev.Kind == APRestart) {
				out = append(out, ev)
			}
		}
		return out
	}
	for id := 0; id < 2; id++ {
		if !reflect.DeepEqual(filt(small, id), filt(big, id)) {
			t.Fatalf("AP %d's crash timeline changed when the AP count changed", id)
		}
	}
}

func TestSingleAPCrashScript(t *testing.T) {
	cfg := SingleAPCrash(3, 2*sim.Second, 500*sim.Millisecond)
	p := BuildPlan(cfg, sim.NewRNG(1), 5, 10*sim.Second)
	want := []Event{
		{At: 2 * sim.Second, Kind: APCrash, AP: 3},
		{At: 2*sim.Second + 500*sim.Millisecond, Kind: APRestart, AP: 3},
	}
	if !reflect.DeepEqual(p.Events, want) {
		t.Fatalf("plan = %+v, want %+v", p.Events, want)
	}
	if p2 := BuildPlan(SingleAPCrash(3, 2*sim.Second, 0), sim.NewRNG(1), 5, 10*sim.Second); len(p2.Events) != 1 {
		t.Fatalf("zero-downtime crash generated %d events, want 1 (no restart)", len(p2.Events))
	}
}

// fakeTarget implements APTarget and ControllerTarget.
type fakeTarget struct {
	down              bool
	crashes, restarts int
}

func (f *fakeTarget) Crash()     { f.down = true; f.crashes++ }
func (f *fakeTarget) Fail()      { f.down = true; f.crashes++ }
func (f *fakeTarget) Restart()   { f.down = false; f.restarts++ }
func (f *fakeTarget) Recover()   { f.down = false; f.restarts++ }
func (f *fakeTarget) Down() bool { return f.down }

// sink records backhaul deliveries.
type sink struct {
	eng  *sim.Engine
	msgs []packet.Message
	at   []sim.Time
}

func (s *sink) HandleBackhaul(from packet.IPv4Addr, msg packet.Message) {
	s.msgs = append(s.msgs, msg)
	s.at = append(s.at, s.eng.Now())
}

func TestInjectorCrashGuards(t *testing.T) {
	eng := sim.NewEngine()
	aps := []*fakeTarget{{}, {}, {}}
	targets := []APTarget{aps[0], aps[1], aps[2]}
	cfg := Config{
		MaxConcurrentAPDown: 1,
		Script: []Event{
			{At: 1 * sim.Second, Kind: APCrash, AP: 0},
			{At: 2 * sim.Second, Kind: APCrash, AP: 1}, // blocked: AP0 still down
			{At: 3 * sim.Second, Kind: APRestart, AP: 1},
			{At: 4 * sim.Second, Kind: APRestart, AP: 0},
			{At: 5 * sim.Second, Kind: APCrash, AP: 1}, // allowed again
		},
	}
	inj := NewInjector(cfg, wrt.Virtual(eng), sim.NewRNG(9), targets, nil, 10*sim.Second)
	bh := backhaul.NewSwitch(eng, 200*sim.Microsecond)
	var faults []Event
	inj.OnFault = func(ev Event) { faults = append(faults, ev) }
	inj.Arm(bh)
	eng.RunUntil(10 * sim.Second)

	if aps[0].crashes != 1 || aps[1].crashes != 1 {
		t.Fatalf("crashes = %d, %d, want 1, 1 (concurrency guard)", aps[0].crashes, aps[1].crashes)
	}
	if aps[1].restarts != 0 {
		t.Fatal("restart applied for a crash the guard skipped")
	}
	if inj.Stats.CrashesSkipped != 1 {
		t.Fatalf("CrashesSkipped = %d, want 1", inj.Stats.CrashesSkipped)
	}
	if inj.Stats.APCrashes != 2 || inj.Stats.APRestarts != 1 {
		t.Fatalf("Stats = %+v", inj.Stats)
	}
	// OnFault fires only for applied events: crash, restart, crash.
	if len(faults) != 3 {
		t.Fatalf("OnFault saw %d events, want 3", len(faults))
	}
}

func TestInjectorNeverCrashesLastAliveAP(t *testing.T) {
	eng := sim.NewEngine()
	only := &fakeTarget{}
	cfg := Config{Script: []Event{{At: sim.Second, Kind: APCrash, AP: 0}}}
	inj := NewInjector(cfg, wrt.Virtual(eng), sim.NewRNG(9), []APTarget{only}, nil, 5*sim.Second)
	inj.Arm(backhaul.NewSwitch(eng, 200*sim.Microsecond))
	eng.RunUntil(5 * sim.Second)
	if only.crashes != 0 || inj.Stats.CrashesSkipped != 1 {
		t.Fatalf("last alive AP crashed (crashes=%d skipped=%d)", only.crashes, inj.Stats.CrashesSkipped)
	}
}

func TestInjectorBurstDropsAndBlackout(t *testing.T) {
	eng := sim.NewEngine()
	bh := backhaul.NewSwitch(eng, 200*sim.Microsecond)
	rx := &sink{eng: eng}
	bh.Attach(packet.ControllerIP, rx)
	cfg := Config{
		BackhaulBurstLoss: 1.0, // every message in the window
		Script: []Event{
			{At: 1 * sim.Second, Kind: BackhaulBurst, Dur: 100 * sim.Millisecond},
			{At: 2 * sim.Second, Kind: CSIBlackout, Dur: 100 * sim.Millisecond},
		},
	}
	inj := NewInjector(cfg, wrt.Virtual(eng), sim.NewRNG(3), nil, nil, 5*sim.Second)
	inj.Arm(bh)

	send := func(at sim.Time, msg packet.Message) {
		eng.At(at, func() { _ = bh.Send(packet.APIP(0), packet.ControllerIP, msg) })
	}
	send(1*sim.Second+10*sim.Millisecond, &packet.HealthProbe{Seq: 1}) // burst: dropped
	send(1*sim.Second+500*sim.Millisecond, &packet.HealthProbe{Seq: 2})
	send(2*sim.Second+10*sim.Millisecond, &packet.CSIReport{})         // blackout: dropped
	send(2*sim.Second+20*sim.Millisecond, &packet.HealthProbe{Seq: 3}) // blackout spares non-CSI
	send(2*sim.Second+500*sim.Millisecond, &packet.CSIReport{})
	eng.RunUntil(5 * sim.Second)

	if len(rx.msgs) != 3 {
		t.Fatalf("delivered %d messages, want 3 (burst and blackout drop the others)", len(rx.msgs))
	}
	if inj.Stats.BurstDrops != 1 || inj.Stats.BlackoutDrops != 1 {
		t.Fatalf("Stats = %+v, want 1 burst drop and 1 blackout drop", inj.Stats)
	}
	if inj.Stats.Bursts != 1 || inj.Stats.Blackouts != 1 {
		t.Fatalf("Stats = %+v, want 1 burst and 1 blackout window", inj.Stats)
	}
}

func TestInjectorLatencySpikeDelays(t *testing.T) {
	eng := sim.NewEngine()
	bh := backhaul.NewSwitch(eng, 200*sim.Microsecond)
	rx := &sink{eng: eng}
	bh.Attach(packet.ControllerIP, rx)
	cfg := Config{
		LatencySpikeExtra: 5 * sim.Millisecond,
		Script:            []Event{{At: sim.Second, Kind: LatencySpike, Dur: 100 * sim.Millisecond}},
	}
	inj := NewInjector(cfg, wrt.Virtual(eng), sim.NewRNG(3), nil, nil, 5*sim.Second)
	inj.Arm(bh)

	eng.At(1*sim.Second+sim.Millisecond, func() {
		_ = bh.Send(packet.APIP(0), packet.ControllerIP, &packet.HealthProbe{Seq: 1})
	})
	eng.At(3*sim.Second, func() {
		_ = bh.Send(packet.APIP(0), packet.ControllerIP, &packet.HealthProbe{Seq: 2})
	})
	eng.RunUntil(5 * sim.Second)

	if len(rx.at) != 2 {
		t.Fatalf("delivered %d, want 2", len(rx.at))
	}
	if got, want := rx.at[0], 1*sim.Second+sim.Millisecond+200*sim.Microsecond+5*sim.Millisecond; got != want {
		t.Errorf("spiked delivery at %v, want %v", got, want)
	}
	if got, want := rx.at[1], 3*sim.Second+200*sim.Microsecond; got != want {
		t.Errorf("normal delivery at %v, want %v", got, want)
	}
	if inj.Stats.Spikes != 1 {
		t.Errorf("Spikes = %d, want 1", inj.Stats.Spikes)
	}
}

func TestInjectorControllerCrashRecover(t *testing.T) {
	eng := sim.NewEngine()
	ctl := &fakeTarget{}
	cfg := Config{ControllerCrashAt: sim.Second, ControllerDowntime: 500 * sim.Millisecond}
	inj := NewInjector(cfg, wrt.Virtual(eng), sim.NewRNG(5), nil, ctl, 5*sim.Second)
	inj.Arm(backhaul.NewSwitch(eng, 200*sim.Microsecond))
	eng.RunUntil(5 * sim.Second)
	if ctl.crashes != 1 || ctl.restarts != 1 {
		t.Fatalf("controller crashes=%d restarts=%d, want 1, 1", ctl.crashes, ctl.restarts)
	}
	if inj.Stats.CtlCrashes != 1 || inj.Stats.CtlRestarts != 1 {
		t.Fatalf("Stats = %+v", inj.Stats)
	}
}

func TestArmEmptyPlanInstallsNothing(t *testing.T) {
	eng := sim.NewEngine()
	bh := backhaul.NewSwitch(eng, 200*sim.Microsecond)
	inj := NewInjector(Config{}, wrt.Virtual(eng), sim.NewRNG(1), nil, nil, 5*sim.Second)
	inj.Arm(bh)
	if bh.Drop != nil || bh.Delay != nil {
		t.Fatal("empty plan installed backhaul hooks")
	}
	if eng.Pending() != 0 {
		t.Fatalf("empty plan scheduled %d timers", eng.Pending())
	}
}
