// Package chaos is the deterministic fault-injection engine for the WGTT
// reproduction (DESIGN.md §11). The paper evaluates the system on the happy
// path — APs never die, the backhaul never degrades — but a transit network
// strings its picocells along outdoor poles on a shared wired segment, so
// the interesting operational question is what a §3.1.2-style control plane
// does when parts of it fail. This package answers that reproducibly: a
// Plan of fault events — AP crashes and restarts, backhaul loss bursts and
// latency spikes, CSI-report blackouts, controller outages — is derived
// ahead of time from the scenario seed via named sim.RNG streams, then an
// Injector replays it against the live network off the simulation clock.
//
// Determinism is the design center, mirroring internal/fleet: every draw
// comes from a stream named after what it decides ("chaos/ap/3",
// "chaos/burst/drop"), never from shared state, so the same seed yields the
// same fault timeline regardless of worker count, event interleaving, or
// which other components consume randomness. Chaos left unconfigured
// touches nothing: no hooks are installed and no timers scheduled, so a
// chaos-free run is byte-identical to one built before this package
// existed.
package chaos

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"wgtt/internal/backhaul"
	"wgtt/internal/metrics"
	"wgtt/internal/packet"
	"wgtt/internal/runtime"
	"wgtt/internal/sim"
)

// APTarget is the crash surface of one AP (implemented by *ap.AP).
type APTarget interface {
	Crash()
	Restart()
	Down() bool
}

// ControllerTarget is the crash surface of the controller (implemented by
// *controller.Controller). Pass nil when the network has no controller —
// and take care to pass a true nil, not a typed-nil pointer.
type ControllerTarget interface {
	Fail()
	Recover()
	Down() bool
}

// EventKind enumerates the injectable faults.
type EventKind int

// The fault vocabulary. Crash/restart pairs are explicit events (BuildPlan
// emits both) so a Plan is a complete, inspectable timeline.
const (
	// APCrash power-fails one AP: its radio goes silent mid-frame, it
	// ignores the backhaul, and its cyclic-queue state is lost (the restart
	// is a cold start; see ap.Crash/ap.Restart).
	APCrash EventKind = iota
	// APRestart brings a crashed AP back with empty rings.
	APRestart
	// BackhaulBurst opens a window during which every backhaul message is
	// dropped with the configured probability — control and data alike.
	BackhaulBurst
	// LatencySpike opens a window during which every backhaul delivery
	// takes extra one-way latency.
	LatencySpike
	// CSIBlackout opens a window during which CSI reports are dropped on
	// the backhaul: the controller flies blind while data still flows.
	CSIBlackout
	// ControllerCrash takes the controller down (controller.Fail).
	ControllerCrash
	// ControllerRestart recovers it with cold soft state (controller.Recover).
	ControllerRestart
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case APCrash:
		return "ap-crash"
	case APRestart:
		return "ap-restart"
	case BackhaulBurst:
		return "backhaul-burst"
	case LatencySpike:
		return "latency-spike"
	case CSIBlackout:
		return "csi-blackout"
	case ControllerCrash:
		return "controller-crash"
	case ControllerRestart:
		return "controller-restart"
	}
	return fmt.Sprintf("chaos-kind-%d", int(k))
}

// Event is one scheduled fault.
type Event struct {
	At   sim.Time
	Kind EventKind
	// AP is the target AP id for APCrash/APRestart (ignored otherwise).
	AP int
	// Dur is the window length for burst/spike/blackout events.
	Dur sim.Time
}

// Config parameterizes fault generation. Every MTBF is the mean of an
// exponential inter-arrival distribution; 0 disables that fault class, and
// the zero Config generates nothing (Script-only plans are how single
// targeted faults are injected — see SingleAPCrash).
type Config struct {
	// APCrashMTBF is the per-AP mean time between crashes; each crashed AP
	// comes back after APDowntime with cold queues.
	APCrashMTBF sim.Time
	APDowntime  sim.Time
	// MaxConcurrentAPDown caps simultaneous AP outages (the injector also
	// never crashes the last alive AP). 0 means the default of 1.
	MaxConcurrentAPDown int

	// Backhaul loss bursts: windows of BackhaulBurstLen during which every
	// backhaul message is dropped with probability BackhaulBurstLoss.
	BackhaulBurstMTBF sim.Time
	BackhaulBurstLen  sim.Time
	BackhaulBurstLoss float64

	// Backhaul latency spikes: windows of LatencySpikeLen during which
	// every delivery takes LatencySpikeExtra additional one-way latency.
	LatencySpikeMTBF  sim.Time
	LatencySpikeLen   sim.Time
	LatencySpikeExtra sim.Time

	// CSI blackouts: windows of CSIBlackoutLen during which CSI reports are
	// dropped on the backhaul.
	CSIBlackoutMTBF sim.Time
	CSIBlackoutLen  sim.Time

	// ControllerCrashAt, when > 0, crashes the controller once at that
	// time and restarts it ControllerDowntime later.
	ControllerCrashAt  sim.Time
	ControllerDowntime sim.Time

	// Script appends hand-placed events to the generated ones — the
	// reproducible way to stage one exact failure.
	Script []Event
}

// DefaultConfig is the standard chaos mix for resilience runs: roughly one
// AP crash per simulated minute per AP, plus periodic backhaul weather.
func DefaultConfig() Config {
	return Config{
		APCrashMTBF:         60 * sim.Second,
		APDowntime:          2 * sim.Second,
		MaxConcurrentAPDown: 1,
		BackhaulBurstMTBF:   30 * sim.Second,
		BackhaulBurstLen:    200 * sim.Millisecond,
		BackhaulBurstLoss:   0.5,
		LatencySpikeMTBF:    45 * sim.Second,
		LatencySpikeLen:     500 * sim.Millisecond,
		LatencySpikeExtra:   5 * sim.Millisecond,
		CSIBlackoutMTBF:     45 * sim.Second,
		CSIBlackoutLen:      300 * sim.Millisecond,
	}
}

// SingleAPCrash is a script-only config that crashes exactly one AP at the
// given time, restarting it downtime later (0 downtime: never restarts
// within any finite run). The acceptance scenario of DESIGN.md §11.
func SingleAPCrash(apID int, at, downtime sim.Time) Config {
	script := []Event{{At: at, Kind: APCrash, AP: apID}}
	if downtime > 0 {
		script = append(script, Event{At: at + downtime, Kind: APRestart, AP: apID})
	}
	return Config{Script: script}
}

// Plan is a complete fault timeline, sorted by (At, Kind, AP).
type Plan struct {
	Events []Event
}

// Empty reports whether the plan injects nothing.
func (p Plan) Empty() bool { return len(p.Events) == 0 }

// BuildPlan derives the fault timeline for one cell from its scenario RNG.
// Each fault class draws from its own named stream, and per-AP crash
// processes draw from per-AP streams, so the timeline is a pure function of
// (seed, numAPs, horizon) — unaffected by anything else in the simulation,
// and identical however many fleet workers replay it.
func BuildPlan(cfg Config, rng *sim.RNG, numAPs int, horizon sim.Time) Plan {
	var p Plan
	if cfg.APCrashMTBF > 0 && cfg.APDowntime > 0 {
		for id := 0; id < numAPs; id++ {
			rnd := rng.Stream(fmt.Sprintf("chaos/ap/%d", id))
			for t := expDraw(rnd, cfg.APCrashMTBF); t < horizon; t += cfg.APDowntime + expDraw(rnd, cfg.APCrashMTBF) {
				p.Events = append(p.Events,
					Event{At: t, Kind: APCrash, AP: id},
					Event{At: t + cfg.APDowntime, Kind: APRestart, AP: id})
			}
		}
	}
	addWindows := func(stream string, kind EventKind, mtbf, length sim.Time) {
		if mtbf <= 0 || length <= 0 {
			return
		}
		rnd := rng.Stream(stream)
		for t := expDraw(rnd, mtbf); t < horizon; t += length + expDraw(rnd, mtbf) {
			p.Events = append(p.Events, Event{At: t, Kind: kind, Dur: length})
		}
	}
	addWindows("chaos/backhaul/burst", BackhaulBurst, cfg.BackhaulBurstMTBF, cfg.BackhaulBurstLen)
	addWindows("chaos/backhaul/spike", LatencySpike, cfg.LatencySpikeMTBF, cfg.LatencySpikeLen)
	addWindows("chaos/csi/blackout", CSIBlackout, cfg.CSIBlackoutMTBF, cfg.CSIBlackoutLen)
	if cfg.ControllerCrashAt > 0 {
		p.Events = append(p.Events, Event{At: cfg.ControllerCrashAt, Kind: ControllerCrash})
		if cfg.ControllerDowntime > 0 {
			p.Events = append(p.Events,
				Event{At: cfg.ControllerCrashAt + cfg.ControllerDowntime, Kind: ControllerRestart})
		}
	}
	p.Events = append(p.Events, cfg.Script...)
	sort.SliceStable(p.Events, func(i, j int) bool {
		a, b := p.Events[i], p.Events[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.AP < b.AP
	})
	return p
}

// expDraw samples an exponential inter-arrival with the given mean.
func expDraw(rnd *rand.Rand, mean sim.Time) sim.Time {
	return sim.Time(rnd.ExpFloat64() * float64(mean))
}

// Stats counts what the injector actually did (the plan is intent; crashes
// can be skipped by the concurrency guard).
type Stats struct {
	APCrashes      uint64
	APRestarts     uint64
	CrashesSkipped uint64 // suppressed by MaxConcurrentAPDown / last-AP guard
	Bursts         uint64
	BurstDrops     uint64
	Spikes         uint64
	Blackouts      uint64
	BlackoutDrops  uint64
	CtlCrashes     uint64
	CtlRestarts    uint64
}

// chaosMetrics are the injector's observability handles (all nil-safe).
type chaosMetrics struct {
	apCrashes     *metrics.Counter
	apRestarts    *metrics.Counter
	burstDrops    *metrics.Counter
	blackoutDrops *metrics.Counter
	ctlCrashes    *metrics.Counter
}

// Injector replays a Plan against a live network. Build it with NewInjector
// and wire it with Arm before the run starts.
type Injector struct {
	clk  runtime.Clock
	cfg  Config
	plan Plan

	aps []APTarget
	ctl ControllerTarget

	// Open fault windows, as absolute deadlines on the sim clock.
	burstUntil    sim.Time
	spikeUntil    sim.Time
	blackoutUntil sim.Time
	// burstRnd decides per-message burst drops; its draws happen only for
	// messages sent inside a burst window, so the stream's consumption is
	// itself deterministic.
	burstRnd *rand.Rand

	downCount int

	// OnFault observes every applied event (after its effect), letting the
	// evaluation layer correlate faults with delivery gaps.
	OnFault func(Event)

	Stats Stats
	met   chaosMetrics
}

// NewInjector builds the plan for the given horizon and binds it to the
// network's components. ctl may be nil (baseline networks have none, and
// controller events are then skipped).
func NewInjector(cfg Config, clk runtime.Clock, rng *sim.RNG, aps []APTarget, ctl ControllerTarget, horizon sim.Time) *Injector {
	if cfg.MaxConcurrentAPDown <= 0 {
		cfg.MaxConcurrentAPDown = 1
	}
	return &Injector{
		clk:      clk,
		cfg:      cfg,
		plan:     BuildPlan(cfg, rng, len(aps), horizon),
		aps:      aps,
		ctl:      ctl,
		burstRnd: rng.Stream("chaos/burst/drop"),
	}
}

// Plan exposes the timeline the injector will replay.
func (in *Injector) Plan() Plan { return in.plan }

// Arm installs the backhaul hooks and schedules every plan event. The drop
// hook composes with whatever hook the network already installed (e.g. the
// ControlLossRate injector) via backhaul.Chain; the delay hook likewise
// wraps any existing one. Arming an empty plan is a no-op, keeping
// chaos-free runs bit-for-bit untouched.
func (in *Injector) Arm(bh *backhaul.Switch) {
	if in.plan.Empty() {
		return
	}
	bh.Drop = backhaul.Chain(bh.Drop, in.drop)
	prevDelay := bh.Delay
	bh.Delay = func(to packet.IPv4Addr, msg packet.Message) sim.Time {
		var d sim.Time
		if prevDelay != nil {
			d = prevDelay(to, msg)
		}
		if in.clk.Now() < in.spikeUntil {
			d += in.cfg.LatencySpikeExtra
		}
		return d
	}
	for _, ev := range in.plan.Events {
		ev := ev
		// Arm runs at time 0 in practice, but compute the remaining delay so
		// a late Arm still lands each event at its planned absolute time.
		d := ev.At - in.clk.Now()
		if d < 0 {
			d = 0
		}
		in.clk.After(d, func() { in.apply(ev) })
	}
}

// UseMetrics wires the injector's counters into r (nil disables, as
// everywhere in DESIGN.md §10).
func (in *Injector) UseMetrics(r *metrics.Registry) {
	in.met = chaosMetrics{
		apCrashes:     r.Counter("chaos", "ap_crashes"),
		apRestarts:    r.Counter("chaos", "ap_restarts"),
		burstDrops:    r.Counter("chaos", "burst_drops"),
		blackoutDrops: r.Counter("chaos", "blackout_drops"),
		ctlCrashes:    r.Counter("chaos", "controller_crashes"),
	}
}

// drop is the backhaul loss hook: burst windows drop anything, blackout
// windows drop CSI reports.
func (in *Injector) drop(to packet.IPv4Addr, msg packet.Message) bool {
	now := in.clk.Now()
	if now < in.burstUntil && in.burstRnd.Float64() < in.cfg.BackhaulBurstLoss {
		in.Stats.BurstDrops++
		in.met.burstDrops.Inc()
		return true
	}
	if now < in.blackoutUntil {
		if _, csi := msg.(*packet.CSIReport); csi {
			in.Stats.BlackoutDrops++
			in.met.blackoutDrops.Inc()
			return true
		}
	}
	return false
}

// apply executes one plan event against the live network.
func (in *Injector) apply(ev Event) {
	switch ev.Kind {
	case APCrash:
		if !in.canCrash(ev.AP) {
			in.Stats.CrashesSkipped++
			return
		}
		in.aps[ev.AP].Crash()
		in.downCount++
		in.Stats.APCrashes++
		in.met.apCrashes.Inc()
	case APRestart:
		if !in.aps[ev.AP].Down() {
			return // its crash was skipped by the guard
		}
		in.aps[ev.AP].Restart()
		in.downCount--
		in.Stats.APRestarts++
		in.met.apRestarts.Inc()
	case BackhaulBurst:
		in.Stats.Bursts++
		in.extend(&in.burstUntil, ev.Dur)
	case LatencySpike:
		in.Stats.Spikes++
		in.extend(&in.spikeUntil, ev.Dur)
	case CSIBlackout:
		in.Stats.Blackouts++
		in.extend(&in.blackoutUntil, ev.Dur)
	case ControllerCrash:
		if in.ctl == nil || in.ctl.Down() {
			return
		}
		in.ctl.Fail()
		in.Stats.CtlCrashes++
		in.met.ctlCrashes.Inc()
	case ControllerRestart:
		if in.ctl == nil || !in.ctl.Down() {
			return
		}
		in.ctl.Recover()
		in.Stats.CtlRestarts++
	}
	if in.OnFault != nil {
		in.OnFault(ev)
	}
}

// canCrash enforces the outage guards: never exceed MaxConcurrentAPDown,
// and never crash the last alive AP (a corridor with zero coverage measures
// nothing useful).
func (in *Injector) canCrash(apID int) bool {
	if in.aps[apID].Down() {
		return false
	}
	if in.downCount >= in.cfg.MaxConcurrentAPDown {
		return false
	}
	alive := 0
	for _, a := range in.aps {
		if !a.Down() {
			alive++
		}
	}
	return alive > 1
}

// extend opens or lengthens a fault window ending at now+d.
func (in *Injector) extend(until *sim.Time, d sim.Time) {
	if end := in.clk.Now() + d; end > *until {
		*until = end
	}
}
