// Package trace provides the tcpdump-of-the-simulation: a line-oriented
// JSON event log of deliveries, transmissions, switches, and uplink
// arrivals. The paper's methodology (§5.1) logs packet flows at the
// controller and the client with tcpdump and post-processes them; this
// recorder plays the same role for simulated runs, producing a stream any
// external tool can analyze.
//
// trace is the per-event plane of the repo's observability story;
// internal/metrics is the aggregated plane (counters, histograms, and
// per-switch §3.1.2 spans). Use a trace when you need every packet in
// order, a metrics snapshot when you need rates, distributions, and the
// Table 1 switch-timing digest — they attach independently (`-trace` vs
// `-metrics` on the CLIs) and neither perturbs the simulation.
package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"wgtt/internal/sim"
)

// Kind classifies events.
type Kind string

// Event kinds.
const (
	// KindDeliver: an MPDU was acknowledged by the client (downlink
	// delivery confirmed at the AP).
	KindDeliver Kind = "deliver"
	// KindFrameTx: an AP put a data frame on the air.
	KindFrameTx Kind = "frame-tx"
	// KindSwitch: the controller completed a stop/start/ack handover.
	KindSwitch Kind = "switch"
	// KindUplink: a de-duplicated uplink packet reached the wired side.
	KindUplink Kind = "uplink"
)

// Event is one log line. Fields are flat for easy jq/awk processing.
type Event struct {
	AtNS     int64   `json:"at_ns"`
	Kind     Kind    `json:"kind"`
	Node     string  `json:"node,omitempty"`   // AP name or "controller"
	Client   string  `json:"client,omitempty"` // client MAC
	Bytes    int     `json:"bytes,omitempty"`
	Seq      uint32  `json:"seq,omitempty"`
	Index    uint16  `json:"index,omitempty"`
	FlowID   uint32  `json:"flow,omitempty"`
	RateMbps float64 `json:"rate_mbps,omitempty"`
	MPDUs    int     `json:"mpdus,omitempty"`
	FromAP   int     `json:"from_ap,omitempty"`
	ToAP     int     `json:"to_ap,omitempty"`
	DurNS    int64   `json:"dur_ns,omitempty"`
}

// Recorder writes events as JSON lines. Each simulated cell is still
// single-goroutine, but fleet deployments run many cells concurrently, so
// Log and Flush serialize internally: a Recorder may be shared across
// goroutines. Read N and Err only after the writers have quiesced (Flush
// establishes that point for a single writer).
type Recorder struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
	// Filter, if set, drops events it returns false for.
	Filter func(*Event) bool
	// N counts recorded events.
	N int
	// Err holds the first write error; once set, logging stops.
	Err error
}

// NewRecorder wraps w.
func NewRecorder(w io.Writer) *Recorder {
	bw := bufio.NewWriter(w)
	return &Recorder{bw: bw, enc: json.NewEncoder(bw)}
}

// Log records one event.
func (r *Recorder) Log(ev Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.Err != nil {
		return
	}
	if r.Filter != nil && !r.Filter(&ev) {
		return
	}
	if err := r.enc.Encode(&ev); err != nil {
		r.Err = fmt.Errorf("trace: %w", err)
		return
	}
	r.N++
}

// Flush drains buffered output; call once the run ends.
func (r *Recorder) Flush() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.Err != nil {
		return r.Err
	}
	return r.bw.Flush()
}

// ReadAll decodes a JSONL event stream written by a Recorder — the
// round-trip half for tools (and tests) that post-process traces.
func ReadAll(rd io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(rd)
	var out []Event
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return out, fmt.Errorf("trace: line %d: %w", len(out)+1, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return out, fmt.Errorf("trace: %w", err)
	}
	return out, nil
}

// At converts a sim time for an Event.
func At(t sim.Time) int64 { return int64(t) }
