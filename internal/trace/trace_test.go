package trace

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"

	"wgtt/internal/sim"
)

func TestRecorderWritesJSONL(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder(&buf)
	r.Log(Event{AtNS: At(3 * sim.Millisecond), Kind: KindDeliver, Node: "ap1", Bytes: 1400})
	r.Log(Event{AtNS: At(5 * sim.Millisecond), Kind: KindSwitch, FromAP: 0, ToAP: 1})
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 || r.N != 2 {
		t.Fatalf("lines=%d N=%d", len(lines), r.N)
	}
	var ev Event
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Kind != KindDeliver || ev.AtNS != int64(3*sim.Millisecond) || ev.Bytes != 1400 {
		t.Errorf("round trip: %+v", ev)
	}
}

func TestRecorderFilter(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder(&buf)
	r.Filter = func(ev *Event) bool { return ev.Kind == KindSwitch }
	r.Log(Event{Kind: KindDeliver})
	r.Log(Event{Kind: KindSwitch})
	_ = r.Flush()
	if r.N != 1 {
		t.Errorf("N = %d, want 1", r.N)
	}
}

func TestRoundTrip(t *testing.T) {
	want := []Event{
		{AtNS: At(3 * sim.Millisecond), Kind: KindDeliver, Node: "ap1",
			Client: "02:c1:00:00:00:01", Bytes: 1400, Seq: 17, Index: 42, FlowID: 1},
		{AtNS: At(4 * sim.Millisecond), Kind: KindFrameTx, Node: "ap1",
			RateMbps: 65, MPDUs: 12},
		{AtNS: At(5 * sim.Millisecond), Kind: KindSwitch, Node: "controller",
			FromAP: 2, ToAP: 3, DurNS: int64(18 * sim.Millisecond)},
		{AtNS: At(6 * sim.Millisecond), Kind: KindUplink, Node: "controller",
			Bytes: 1000, Seq: 9, FlowID: 2},
	}
	var buf bytes.Buffer
	r := NewRecorder(&buf)
	for _, ev := range want {
		r.Log(ev)
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestReadAllRejectsGarbage(t *testing.T) {
	in := strings.NewReader("{\"kind\":\"switch\"}\nnot json\n")
	evs, err := ReadAll(in)
	if err == nil {
		t.Fatal("garbage line not rejected")
	}
	if len(evs) != 1 || evs[0].Kind != KindSwitch {
		t.Errorf("valid prefix not returned: %+v", evs)
	}
}

func TestReadAllSkipsBlankLines(t *testing.T) {
	evs, err := ReadAll(strings.NewReader("\n{\"kind\":\"uplink\"}\n\n"))
	if err != nil || len(evs) != 1 {
		t.Fatalf("evs=%v err=%v", evs, err)
	}
}

func TestConcurrentWriters(t *testing.T) {
	const writers, perWriter = 8, 500
	var buf bytes.Buffer
	r := NewRecorder(&buf)
	var wg sync.WaitGroup
	wg.Add(writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Log(Event{Kind: KindDeliver, Node: "ap1", Bytes: w*perWriter + i})
			}
		}(w)
	}
	wg.Wait()
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	if r.N != writers*perWriter {
		t.Fatalf("N = %d, want %d", r.N, writers*perWriter)
	}
	evs, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err) // interleaved writes would corrupt the JSONL framing
	}
	if len(evs) != writers*perWriter {
		t.Fatalf("read %d events, want %d", len(evs), writers*perWriter)
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errFail }

var errFail = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "disk full" }

func TestRecorderErrorSticks(t *testing.T) {
	r := NewRecorder(failWriter{})
	for i := 0; i < 5000; i++ { // overflow the bufio buffer to force a write
		r.Log(Event{Kind: KindFrameTx, Node: "ap1", RateMbps: 65})
	}
	if r.Err == nil {
		t.Skip("buffer never flushed; acceptable")
	}
	n := r.N
	r.Log(Event{Kind: KindDeliver})
	if r.N != n {
		t.Error("logging continued after error")
	}
}
