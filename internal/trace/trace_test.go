package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"wgtt/internal/sim"
)

func TestRecorderWritesJSONL(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder(&buf)
	r.Log(Event{AtNS: At(3 * sim.Millisecond), Kind: KindDeliver, Node: "ap1", Bytes: 1400})
	r.Log(Event{AtNS: At(5 * sim.Millisecond), Kind: KindSwitch, FromAP: 0, ToAP: 1})
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 || r.N != 2 {
		t.Fatalf("lines=%d N=%d", len(lines), r.N)
	}
	var ev Event
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Kind != KindDeliver || ev.AtNS != int64(3*sim.Millisecond) || ev.Bytes != 1400 {
		t.Errorf("round trip: %+v", ev)
	}
}

func TestRecorderFilter(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder(&buf)
	r.Filter = func(ev *Event) bool { return ev.Kind == KindSwitch }
	r.Log(Event{Kind: KindDeliver})
	r.Log(Event{Kind: KindSwitch})
	_ = r.Flush()
	if r.N != 1 {
		t.Errorf("N = %d, want 1", r.N)
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errFail }

var errFail = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "disk full" }

func TestRecorderErrorSticks(t *testing.T) {
	r := NewRecorder(failWriter{})
	for i := 0; i < 5000; i++ { // overflow the bufio buffer to force a write
		r.Log(Event{Kind: KindFrameTx, Node: "ap1", RateMbps: 65})
	}
	if r.Err == nil {
		t.Skip("buffer never flushed; acceptable")
	}
	n := r.N
	r.Log(Event{Kind: KindDeliver})
	if r.N != n {
		t.Error("logging continued after error")
	}
}
