// Package eval regenerates every table and figure of the paper's
// evaluation (§2, §5): each experiment builds the scenario it needs, runs
// it on the simulated substrate, and returns the rows or series the paper
// reports, plus a rendered text form. See DESIGN.md's experiment index for
// the mapping.
package eval

import (
	"fmt"

	"wgtt/internal/controller"
	"wgtt/internal/core"
	"wgtt/internal/metrics"
	"wgtt/internal/selector"
	"wgtt/internal/sim"
)

// Options tunes experiment cost.
type Options struct {
	// Seed is the base scenario seed; related runs derive from it.
	Seed uint64
	// Quick trims sweeps (fewer points, shorter runs) for benchmarks and
	// smoke tests; the full settings reproduce the paper's axes.
	Quick bool
	// Metrics, when non-nil, receives every built network's instrument
	// recordings (DESIGN.md §10). Experiments run single-goroutine, so one
	// registry per experiment; an experiment that builds several networks
	// accumulates them all into the same registry.
	Metrics *metrics.Registry
	// CollectMetrics makes RunAll attach a fresh registry to each
	// experiment (registries are not safe to share across workers) and
	// return the per-experiment snapshots on RunOutput.Metrics.
	CollectMetrics bool
	// Selector, when non-nil, overrides the AP-selection policy
	// (DESIGN.md §15) in every scenario an experiment builds. nil keeps
	// the §3.1.1 windowed-median default, preserving the byte-identical
	// reference output.
	Selector *selector.Config
}

// DefaultOptions runs the full experiment.
func DefaultOptions() Options { return Options{Seed: 2017} }

// QuickOptions runs the trimmed variant.
func QuickOptions() Options { return Options{Seed: 2017, Quick: true} }

// Result is implemented by every experiment's output.
type Result interface {
	// Render returns the human-readable table/series.
	Render() string
}

// throughput computes mean goodput in Mb/s over a duration.
func throughput(bytes uint64, dur sim.Time) float64 {
	if dur <= 0 {
		return 0
	}
	return float64(bytes) * 8 / 1e6 / dur.Seconds()
}

// build constructs the scenario's network, wiring it into opt.Metrics when
// metrics collection is enabled.
func (opt Options) build(s core.Scenario) (*core.Network, error) {
	if opt.Selector != nil && s.Selector == nil {
		s.Selector = opt.Selector
	}
	n, err := core.Build(s)
	if err != nil {
		return nil, err
	}
	if opt.Metrics != nil {
		n.EnableMetricsInto(opt.Metrics)
	}
	return n, nil
}

// driveUDP runs one drive with a downlink CBR flow and returns goodput.
func driveUDP(mode core.Mode, speedMPH, rateMbps float64, opt Options) (float64, *core.Network, error) {
	s := core.DriveScenario(mode, speedMPH, opt.Seed)
	n, err := opt.build(s)
	if err != nil {
		return 0, nil, err
	}
	flow := n.AddDownlinkUDP(0, rateMbps, 1400)
	flow.Sender.Start()
	n.Run()
	return throughput(flow.Receiver.Bytes, s.Duration), n, nil
}

// driveTCP runs one drive with a bulk downlink TCP flow and returns goodput.
func driveTCP(mode core.Mode, speedMPH float64, opt Options) (float64, *core.Network, error) {
	s := core.DriveScenario(mode, speedMPH, opt.Seed)
	n, err := opt.build(s)
	if err != nil {
		return 0, nil, err
	}
	flow := n.AddDownlinkTCP(0, 0, nil)
	flow.Sender.Start()
	n.Run()
	return throughput(flow.Receiver.DeliveredBytes, s.Duration), n, nil
}

// fmtMode renders a mode for table headers.
func fmtMode(m core.Mode) string {
	if m == core.ModeWGTT {
		return "WGTT"
	}
	return "Enh-802.11r"
}

// seriesString renders a float series compactly.
func seriesString(name string, xs []float64, prec int) string {
	out := name + ":"
	for _, v := range xs {
		out += fmt.Sprintf(" %.*f", prec, v)
	}
	return out + "\n"
}

// controllerConfigWith returns the default WGTT controller configuration
// with a different switching hysteresis (Fig. 22's sweep parameter).
func controllerConfigWith(hysteresis sim.Time) controller.Config {
	cfg := controller.DefaultConfig()
	cfg.Hysteresis = hysteresis
	return cfg
}
