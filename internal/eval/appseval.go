package eval

import (
	"fmt"
	"math"

	"wgtt/internal/apps"
	"wgtt/internal/core"
	"wgtt/internal/mobility"
	"wgtt/internal/sim"
	"wgtt/internal/stats"
	"wgtt/internal/transport"
)

// Table4Result holds video rebuffer ratios per speed.
type Table4Result struct {
	SpeedsMPH []float64
	WGTT      []float64
	Baseline  []float64
}

// Table4VideoRebuffer reproduces Table 4: a 2.5 Mb/s HD stream with 1.5 s
// pre-buffer played during the drive; rebuffer ratio per system and speed.
func Table4VideoRebuffer(opt Options) (*Table4Result, error) {
	speeds := []float64{5, 10, 15, 20}
	if opt.Quick {
		speeds = []float64{10, 20}
	}
	res := &Table4Result{SpeedsMPH: speeds}
	vcfg := apps.DefaultVideoConfig()
	for _, v := range speeds {
		for _, mode := range []core.Mode{core.ModeWGTT, core.ModeBaseline} {
			s := core.DriveScenario(mode, v, opt.Seed)
			n, err := opt.build(s)
			if err != nil {
				return nil, err
			}
			flow := n.AddDownlinkTCP(0, 0, nil)
			flow.Receiver.Record = true
			flow.Sender.Start()
			n.Run()
			r := apps.PlayVideo(vcfg, flow.Receiver.Progress, transport.DefaultMSS, s.Duration)
			if mode == core.ModeWGTT {
				res.WGTT = append(res.WGTT, r.RebufferRatio)
			} else {
				res.Baseline = append(res.Baseline, r.RebufferRatio)
			}
		}
	}
	return res, nil
}

// Render implements Result.
func (r *Table4Result) Render() string {
	t := &stats.Table{Header: []string{"speed(mph)", "WGTT", "Enh-802.11r"}}
	for i := range r.SpeedsMPH {
		t.AddRow(fmt.Sprintf("%.0f", r.SpeedsMPH[i]), stats.F(r.WGTT[i]), stats.F(r.Baseline[i]))
	}
	return "Table 4: video rebuffer ratio (2.5 Mb/s HD, 1.5 s pre-buffer)\n" + t.String()
}

// Fig24Result holds the video-conference frame-rate distributions.
type Fig24Result struct {
	Rows []Fig24Row
}

// Fig24Row summarizes one (app, speed, system) combination.
type Fig24Row struct {
	App           string
	SpeedMPH      float64
	System        string
	P15, P50, P85 float64 // fps quantiles (paper quotes the 85th pct)
}

// Fig24ConferenceFPS reproduces Fig. 24: bidirectional real-time video at
// 5 and 15 mph; the CDF of delivered downlink frames per second for a
// Skype-like HD stream and a Hangouts-like reduced-resolution stream.
func Fig24ConferenceFPS(opt Options) (*Fig24Result, error) {
	speeds := []float64{5, 15}
	if opt.Quick {
		speeds = []float64{15}
	}
	cfgs := []struct {
		name string
		cfg  apps.ConferenceConfig
	}{
		{"Skype-like", apps.SkypeLike()},
		{"Hangouts-like", apps.HangoutsLike()},
	}
	res := &Fig24Result{}
	for _, c := range cfgs {
		for _, v := range speeds {
			for _, mode := range []core.Mode{core.ModeWGTT, core.ModeBaseline} {
				s := core.DriveScenario(mode, v, opt.Seed)
				n, err := opt.build(s)
				if err != nil {
					return nil, err
				}
				down := n.AddDownlinkUDP(0, c.cfg.RateMbps(), c.cfg.PacketBytes)
				down.Receiver.Record = true
				down.Sender.Start()
				// The uplink half of the call shares the medium.
				up := n.AddUplinkUDP(0, c.cfg.RateMbps(), c.cfg.PacketBytes)
				up.Sender.Start()
				n.Run()
				conf := apps.AnalyzeConference(c.cfg, down.Receiver.Arrivals, s.Duration)
				cdf := conf.CDF()
				res.Rows = append(res.Rows, Fig24Row{
					App: c.name, SpeedMPH: v, System: fmtMode(mode),
					P15: cdf.Quantile(0.15), P50: cdf.Quantile(0.5), P85: cdf.Quantile(0.85),
				})
			}
		}
	}
	return res, nil
}

// Render implements Result.
func (r *Fig24Result) Render() string {
	t := &stats.Table{Header: []string{"app", "speed", "system", "p15 fps", "p50 fps", "p85 fps"}}
	for _, row := range r.Rows {
		t.AddRow(row.App, fmt.Sprintf("%.0f mph", row.SpeedMPH), row.System,
			stats.F(row.P15), stats.F(row.P50), stats.F(row.P85))
	}
	return "Fig 24: video-conference delivered frame rate quantiles\n" + t.String()
}

// Table5Result holds page-load times per speed.
type Table5Result struct {
	SpeedsMPH []float64
	WGTT      []float64 // seconds; +Inf = never completed
	Baseline  []float64
}

// Table5PageLoad reproduces Table 5: loading a cached 2.1 MB page during
// the drive. Each drive performs one load, launched as the client reaches
// the first cell boundary (so the load spans handovers, as the paper's
// transit loads do); three seeds are averaged. Drives where the page never
// finishes dominate into the paper's "∞" entry.
func Table5PageLoad(opt Options) (*Table5Result, error) {
	speeds := []float64{5, 10, 15, 20}
	runs := 3
	if opt.Quick {
		speeds = []float64{10, 20}
		runs = 2
	}
	web := apps.DefaultWebConfig()
	res := &Table5Result{SpeedsMPH: speeds}
	for _, v := range speeds {
		for _, mode := range []core.Mode{core.ModeWGTT, core.ModeBaseline} {
			var finite []float64
			failed := 0
			for run := 0; run < runs; run++ {
				s := core.DriveScenario(mode, v, opt.Seed+uint64(run)*101)
				n, err := opt.build(s)
				if err != nil {
					return nil, err
				}
				var done sim.Time
				completed := false
				flow := n.AddDownlinkTCP(0, web.Segments(), func(at sim.Time) {
					done, completed = at, true
				})
				// Launch as the client crosses out of the first cell: the
				// load immediately straddles a handover.
				start := sim.FromSeconds(15 / mobility.MPH(v))
				n.Eng.At(start, flow.Sender.Start)
				n.Run()
				if lt := apps.PageLoadSeconds(start, done, completed); math.IsInf(lt, 1) {
					failed++
				} else {
					finite = append(finite, lt)
				}
			}
			lt := math.Inf(1)
			if failed*2 < runs && len(finite) > 0 {
				var sum float64
				for _, d := range finite {
					sum += d
				}
				lt = sum / float64(len(finite))
			}
			if mode == core.ModeWGTT {
				res.WGTT = append(res.WGTT, lt)
			} else {
				res.Baseline = append(res.Baseline, lt)
			}
		}
	}
	return res, nil
}

// Render implements Result.
func (r *Table5Result) Render() string {
	t := &stats.Table{Header: []string{"speed(mph)", "WGTT(s)", "Enh-802.11r(s)"}}
	for i := range r.SpeedsMPH {
		t.AddRow(fmt.Sprintf("%.0f", r.SpeedsMPH[i]), fmtLoad(r.WGTT[i]), fmtLoad(r.Baseline[i]))
	}
	return "Table 5: 2.1 MB page load time\n" + t.String()
}

func fmtLoad(v float64) string {
	if math.IsInf(v, 1) {
		return "inf"
	}
	return fmt.Sprintf("%.2f", v)
}
