package eval

import (
	"strings"
	"testing"

	"wgtt/internal/core"
	"wgtt/internal/sim"
)

// The eval tests exercise each experiment in Quick mode and sanity-check
// the *shape* each paper artifact claims (who wins, where minima fall); the
// full axes run via cmd/wgtt-experiments.

func TestFig02Churn(t *testing.T) {
	r, err := Fig02BestAPChurn(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	// The defining property of the vehicular picocell regime: the best AP
	// changes many times per second.
	if r.FlipsPerSecond < 5 {
		t.Errorf("best-AP flips/s = %v; not a picocell regime", r.FlipsPerSecond)
	}
	if len(r.ESNR) != 3 || len(r.ESNR[0]) != len(r.BestAP) {
		t.Error("trace shapes inconsistent")
	}
	if !strings.Contains(r.Render(), "flips/s") {
		t.Error("render missing headline")
	}
}

func TestTable1SwitchTimes(t *testing.T) {
	r, err := Table1SwitchTime(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i, mean := range r.MeanMS {
		// Paper: 17–21 ms mean, std 3–5 ms, flat across loads.
		if mean < 8 || mean > 30 {
			t.Errorf("rate %.0f: mean switch time %.1f ms out of band", r.RatesMbps[i], mean)
		}
		if r.Samples[i] < 10 {
			t.Errorf("rate %.0f: only %d switches sampled", r.RatesMbps[i], r.Samples[i])
		}
	}
}

func TestTable2Accuracy(t *testing.T) {
	r, err := Table2SwitchingAccuracy(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		// Paper: WGTT > 90%, baseline ~19–20%. Shape: WGTT far above.
		if row.WGTT < 50 {
			t.Errorf("%s: WGTT accuracy %.1f%%", row.Proto, row.WGTT)
		}
		if row.WGTT < row.Baseline+20 {
			t.Errorf("%s: WGTT %.1f%% not clearly above baseline %.1f%%",
				row.Proto, row.WGTT, row.Baseline)
		}
	}
}

func TestFig21WindowShape(t *testing.T) {
	r, err := Fig21WindowSize(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Quick mode sweeps {2, 10, 100} ms: the 100 ms window must lose more
	// capacity than the best small window (stale medians at driving speed).
	last := r.CapacityLossMbs[len(r.CapacityLossMbs)-1]
	best := r.CapacityLossMbs[0]
	for _, v := range r.CapacityLossMbs {
		if v < best {
			best = v
		}
	}
	if last <= best {
		t.Errorf("large window (%.2f) does not lose more than best (%.2f)", last, best)
	}
}

func TestTable3CollisionRare(t *testing.T) {
	r, err := Table3AckCollision(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Paper measures ≤ 0.004% on hardware; the simulated responder-jitter
	// model lands higher but still firmly in "rare, no throughput impact"
	// territory (see EXPERIMENTS.md for the discussion).
	if r.CollisionPct[0] > 0.5 {
		t.Errorf("ack collision rate %.4f%%", r.CollisionPct[0])
	}
	if r.Opportunities[0] < 500 {
		t.Errorf("only %d response opportunities sampled", r.Opportunities[0])
	}
}

func TestTable5PageLoadShape(t *testing.T) {
	r, err := Table5PageLoad(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := range r.SpeedsMPH {
		// WGTT always completes, in a handful of seconds.
		if r.WGTT[i] > 30 {
			t.Errorf("%v mph: WGTT load time %v s", r.SpeedsMPH[i], r.WGTT[i])
		}
		// The baseline is never meaningfully faster.
		if r.Baseline[i] < r.WGTT[i]-0.5 {
			t.Errorf("%v mph: baseline (%v) beat WGTT (%v)", r.SpeedsMPH[i], r.Baseline[i], r.WGTT[i])
		}
	}
}

func TestAblationSelectionMetricRuns(t *testing.T) {
	r, err := AblationSelectionMetric(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if r.OnValue < 0 || r.OffValue < 0 {
		t.Error("negative capacity loss")
	}
	if !strings.Contains(r.Render(), "Ablation") {
		t.Error("render malformed")
	}
}

func TestTimelineShapes(t *testing.T) {
	r, err := Fig15UDPTimeline(core.ModeWGTT, QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Mbps) == 0 || len(r.APSeq) == 0 {
		t.Fatal("empty timeline")
	}
	if r.Switches < 5 {
		t.Errorf("WGTT switched only %d times at 15 mph", r.Switches)
	}
	// The AP sequence should progress from low indices to high.
	if first, last := r.APSeq[3], r.APSeq[len(r.APSeq)-3]; first > 3 || last < 4 {
		t.Errorf("AP sequence does not sweep the array: first=%d last=%d", first, last)
	}
}

func TestRegistryComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range Experiments() {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("malformed experiment %+v", e)
		}
		if ids[e.ID] {
			t.Fatalf("duplicate id %q", e.ID)
		}
		ids[e.ID] = true
	}
	// Every table and figure from the paper's evaluation is present.
	for _, want := range []string{
		"fig2", "fig4", "fig10", "table1", "fig13", "fig14", "fig15", "fig16",
		"table2", "fig17", "fig18", "fig20", "fig21", "table3", "fig22",
		"fig23", "table4", "fig24", "table5",
	} {
		if !ids[want] {
			t.Errorf("experiment %q missing from registry", want)
		}
	}
}

func TestHelpers(t *testing.T) {
	if throughput(1e6, sim.Second) != 8 {
		t.Error("throughput math wrong")
	}
	if throughput(1, 0) != 0 {
		t.Error("zero duration not guarded")
	}
	if fmtMode(core.ModeWGTT) != "WGTT" || fmtMode(core.ModeBaseline) != "Enh-802.11r" {
		t.Error("mode names wrong")
	}
	if achievableRate(40) < 60 {
		t.Error("high ESNR rate too low")
	}
	if achievableRate(-20) > 1 {
		t.Error("hopeless ESNR yields rate")
	}
	if median([]float64{3, 1, 2}) != 2 {
		t.Error("median wrong")
	}
	if meanOf([]float64{1, 3}) != 2 || meanOf(nil) != 0 {
		t.Error("meanOf wrong")
	}
}

func TestExtControlLossRobustness(t *testing.T) {
	r, err := ExtControlLoss(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	last := len(r.LossRate) - 1
	// With 50% control loss, the timeout path must be exercised …
	if r.StopRetransmits[last] == 0 {
		t.Error("no stop retransmissions under 50% control loss")
	}
	// … switches must still complete …
	if r.SwitchesDone[last] < r.SwitchesDone[0]/3 {
		t.Errorf("switching collapsed: %d vs %d without loss",
			r.SwitchesDone[last], r.SwitchesDone[0])
	}
	// … and the system must degrade gracefully, not collapse.
	if r.GoodputMbps[last] < r.GoodputMbps[0]/3 {
		t.Errorf("goodput collapsed: %.2f vs %.2f", r.GoodputMbps[last], r.GoodputMbps[0])
	}
	// Mean switch time grows with loss (each drop costs a 30 ms timeout).
	if r.MeanSwitchMS[last] <= r.MeanSwitchMS[0] {
		t.Errorf("switch time did not grow under loss: %.1f vs %.1f",
			r.MeanSwitchMS[last], r.MeanSwitchMS[0])
	}
}

func TestExtMultiChannelTradeoff(t *testing.T) {
	r, err := ExtMultiChannel(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Channels) != 2 {
		t.Fatal("wrong sweep")
	}
	// §7's predicted trade-off: multi-channel loses the uplink-diversity
	// advantage (loss should not improve), and both configurations must
	// still deliver meaningful downlink throughput.
	if r.UplinkLoss[1] < r.UplinkLoss[0]*0.8 {
		t.Errorf("multi-channel improved uplink loss (%.4f vs %.4f)?",
			r.UplinkLoss[1], r.UplinkLoss[0])
	}
	for i, m := range r.PerClientMbps {
		if m < 2 {
			t.Errorf("channels=%d: per-client throughput %.2f Mb/s", r.Channels[i], m)
		}
	}
}

func TestExtOmniStillWorks(t *testing.T) {
	r, err := ExtOmni(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	// The hardware-agnostic claim: the system keeps functioning with omni
	// small cells (different absolute numbers are expected).
	if r.TCPMbps[1] < 1 {
		t.Errorf("omni variant broke the system: %.2f Mb/s", r.TCPMbps[1])
	}
	if r.Switches[1] == 0 {
		t.Error("omni variant never switched")
	}
}

func TestExtScaleHolds(t *testing.T) {
	r, err := ExtScale(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Labels) != 2 || r.APs[1] != 16 {
		t.Fatal("layouts wrong")
	}
	// Scale-out must not collapse throughput: the 16-AP corridor should
	// sustain at least ~2/3 of the 8-AP testbed's per-drive goodput.
	if r.TCPMbps[1] < r.TCPMbps[0]*0.66 {
		t.Errorf("16-AP corridor degraded: %.2f vs %.2f Mb/s", r.TCPMbps[1], r.TCPMbps[0])
	}
	// The fan-out stays bounded (copies go to nearby APs, not all 16).
	if r.CopiesPerPkt[1] > 10 {
		t.Errorf("fan-out exploded: %.1f copies/packet", r.CopiesPerPkt[1])
	}
}

func TestExtScaleRender(t *testing.T) {
	r := &ExtScaleResult{Labels: []string{"a"}, APs: []int{8}, TCPMbps: []float64{1},
		SwitchesPerS: []float64{2}, CSIPerSecond: []float64{3}, CopiesPerPkt: []float64{4}}
	if !strings.Contains(r.Render(), "scale-out") {
		t.Error("render malformed")
	}
}

func TestExtResilienceDegradesGracefully(t *testing.T) {
	r, err := ExtResilience(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.MTBFS) != 2 || r.MTBFS[0] != 0 {
		t.Fatalf("quick sweep must be {off, stressed}: %+v", r.MTBFS)
	}
	if r.APCrashes[0] != 0 || r.WorstOutageMS[0] != 0 {
		t.Errorf("fault-free control saw chaos: crashes=%d outage=%.1fms",
			r.APCrashes[0], r.WorstOutageMS[0])
	}
	if r.APCrashes[1] == 0 || r.APsMarkedDead[1] == 0 {
		t.Fatalf("stressed row exercised nothing: %+v", r)
	}
	// Graceful degradation: crashes with overlapping coverage must not
	// collapse delivered throughput.
	if r.UDPMbps[1] < r.UDPMbps[0]*0.75 {
		t.Errorf("throughput collapsed under chaos: %.2f vs %.2f Mb/s",
			r.UDPMbps[1], r.UDPMbps[0])
	}
	// Any crash-straddling outage stays within the same order as the
	// detection timeout (generous 5x headroom: a crash can land mid-switch).
	if r.WorstOutageMS[1] > 500 {
		t.Errorf("worst outage %.1f ms is unbounded", r.WorstOutageMS[1])
	}
	if !strings.Contains(r.Render(), "resilience") {
		t.Error("render malformed")
	}
}

func TestExtFederationCrossesDomains(t *testing.T) {
	r, err := ExtFederation(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Domains) != 2 || r.Domains[0] != 1 {
		t.Fatalf("quick sweep must be {1, 2}: %+v", r.Domains)
	}
	if r.Handoffs[0] != 0 || r.Offers[0] != 0 {
		t.Errorf("single-controller control saw federation activity: handoffs=%d offers=%d",
			r.Handoffs[0], r.Offers[0])
	}
	if r.Handoffs[1] == 0 {
		t.Fatalf("2-domain drive completed no inter-controller handoffs: %+v", r)
	}
	if r.OfferCommitMS[1] <= 0 || r.CrossSwitchMS[1] <= 0 {
		t.Errorf("handoff timings missing: xfer=%.2fms switch=%.2fms",
			r.OfferCommitMS[1], r.CrossSwitchMS[1])
	}
	// The no-re-association-gap claim: the worst delivery gap straddling a
	// handoff stays in the switching regime, not the 802.11 roaming regime.
	if r.WorstHandoffMS[1] > 500 {
		t.Errorf("worst handoff gap %.1f ms is unbounded", r.WorstHandoffMS[1])
	}
	// Federation must not tax the corridor's goodput.
	if r.UDPMbps[1] < r.UDPMbps[0]*0.75 {
		t.Errorf("throughput collapsed under federation: %.2f vs %.2f Mb/s",
			r.UDPMbps[1], r.UDPMbps[0])
	}
	if !strings.Contains(r.Render(), "federation") {
		t.Error("render malformed")
	}
}

func TestRunAllParallelMatchesRegistryOrder(t *testing.T) {
	// Two cheap artifacts, two workers: outputs must come back in registry
	// order (fig2 precedes table3) with identical text to a serial run.
	ids := []string{"table3", "fig2"} // deliberately not registry order
	par, err := RunAll(QuickOptions(), 2, ids)
	if err != nil {
		t.Fatal(err)
	}
	ser, err := RunAll(QuickOptions(), 1, ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != 2 || par[0].ID != "fig2" || par[1].ID != "table3" {
		t.Fatalf("registry order not preserved: %q, %q", par[0].ID, par[1].ID)
	}
	for i := range par {
		if par[i].Err != nil {
			t.Fatalf("%s: %v", par[i].ID, par[i].Err)
		}
		if par[i].Text == "" || par[i].Text != ser[i].Text {
			t.Errorf("%s: parallel text differs from serial", par[i].ID)
		}
	}
}

func TestRunAllRejectsUnknownID(t *testing.T) {
	if _, err := RunAll(QuickOptions(), 2, []string{"fig2", "nope"}); err == nil {
		t.Fatal("unknown experiment id accepted")
	}
}

func TestExtMetroConnectedRecovers(t *testing.T) {
	r, err := ExtMetro(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Modes) != 2 || r.Modes[0] != "connected" || r.Modes[1] != "isolated" {
		t.Fatalf("modes = %v", r.Modes)
	}
	if r.Migrations[0] == 0 {
		t.Fatal("connected metro performed no migrations")
	}
	if r.Migrations[1] != 0 {
		t.Fatalf("isolated metro migrated %d clients", r.Migrations[1])
	}
	// The headline: stitching the tiles back together recovers the loss the
	// seams inflict. Clients stranded outside their birth tile's coverage
	// are what the isolated tail-loss column measures.
	if r.LossPct[0] >= r.LossPct[1] {
		t.Errorf("connected loss %.2f%% not below isolated %.2f%%", r.LossPct[0], r.LossPct[1])
	}
	if r.TailLossPct[0] >= r.TailLossPct[1] {
		t.Errorf("connected tail loss %.2f%% not below isolated %.2f%%",
			r.TailLossPct[0], r.TailLossPct[1])
	}
	out := r.Render()
	if !strings.Contains(out, "metro fleet") || !strings.Contains(out, "isolated") {
		t.Errorf("render malformed:\n%s", out)
	}
}
