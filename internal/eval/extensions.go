package eval

import (
	"fmt"

	"wgtt/internal/core"
	"wgtt/internal/mobility"
	"wgtt/internal/sim"
	"wgtt/internal/stats"
)

// These experiments go beyond the paper's evaluation into its §7 discussion
// items: multi-channel deployments, the omnidirectional small-cell variant,
// and robustness of the switching protocol to backhaul control loss.

// ExtMultiChannelResult compares single- vs multi-channel deployments.
type ExtMultiChannelResult struct {
	Channels       []int
	PerClientMbps  []float64 // downlink UDP per client
	UplinkLoss     []float64 // mean in-coverage uplink loss
	SwitchesPerSec []float64
}

// ExtMultiChannel measures §7's predicted trade-off with three clients at
// 15 mph: spreading adjacent APs over three channels relieves co-channel
// contention (downlink per-client throughput rises) but breaks cross-AP
// overhearing, so uplink diversity — Fig. 18's benefit — degrades.
func ExtMultiChannel(opt Options) (*ExtMultiChannelResult, error) {
	res := &ExtMultiChannelResult{}
	chans := []int{1, 3}
	for _, c := range chans {
		s := core.MultiClientScenario(core.ModeWGTT, mobility.Following, 3, 15, opt.Seed)
		s.Channels = c
		n, err := opt.build(s)
		if err != nil {
			return nil, err
		}
		var downs []*core.DownUDP
		var ups []*core.UpUDP
		for ci := 0; ci < 3; ci++ {
			d := n.AddDownlinkUDP(ci, 20, 1400)
			d.Sender.Start()
			downs = append(downs, d)
			u := n.AddUplinkUDP(ci, 2, 1000)
			u.Receiver.Record = true
			u.Sender.Start()
			ups = append(ups, u)
		}
		n.Run()
		var mbps float64
		for _, d := range downs {
			mbps += throughput(d.Receiver.Bytes, s.Duration)
		}
		var loss float64
		for _, u := range ups {
			loss += inCoverageLoss(u, 2, 1000, s.Duration)
		}
		res.Channels = append(res.Channels, c)
		res.PerClientMbps = append(res.PerClientMbps, mbps/3)
		res.UplinkLoss = append(res.UplinkLoss, loss/3)
		res.SwitchesPerSec = append(res.SwitchesPerSec,
			float64(len(n.Ctl.History))/s.Duration.Seconds())
	}
	return res, nil
}

// Render implements Result.
func (r *ExtMultiChannelResult) Render() string {
	t := &stats.Table{Header: []string{"channels", "per-client down (Mb/s)", "uplink loss", "switches/s"}}
	for i := range r.Channels {
		t.AddRow(fmt.Sprintf("%d", r.Channels[i]), stats.F(r.PerClientMbps[i]),
			fmt.Sprintf("%.4f", r.UplinkLoss[i]), stats.F(r.SwitchesPerSec[i]))
	}
	return "Extension (§7): single vs multi-channel deployment, 3 clients, 15 mph\n" + t.String()
}

// ExtControlLossResult measures switching-protocol robustness.
type ExtControlLossResult struct {
	LossRate        []float64
	SwitchesDone    []uint64
	StopRetransmits []uint64
	MeanSwitchMS    []float64
	GoodputMbps     []float64
}

// ExtControlLoss injects backhaul loss on stop/start/ack messages and
// verifies the 30 ms retransmission timeout (§3.1.2) keeps the system
// functional: switches complete (more slowly) and goodput degrades
// gracefully rather than collapsing.
func ExtControlLoss(opt Options) (*ExtControlLossResult, error) {
	rates := []float64{0, 0.2, 0.5}
	if opt.Quick {
		rates = []float64{0, 0.5}
	}
	res := &ExtControlLossResult{}
	for _, lr := range rates {
		s := core.DriveScenario(core.ModeWGTT, 15, opt.Seed)
		s.ControlLossRate = lr
		n, err := opt.build(s)
		if err != nil {
			return nil, err
		}
		flow := n.AddDownlinkUDP(0, offeredUDPMbps, 1400)
		flow.Sender.Start()
		n.Run()
		c := &stats.CDF{}
		for _, rec := range n.Ctl.History {
			c.Add(rec.Duration.Milliseconds())
		}
		res.LossRate = append(res.LossRate, lr)
		res.SwitchesDone = append(res.SwitchesDone, n.Ctl.Stats.SwitchesDone)
		res.StopRetransmits = append(res.StopRetransmits, n.Ctl.Stats.StopRetransmits)
		res.MeanSwitchMS = append(res.MeanSwitchMS, c.Mean())
		res.GoodputMbps = append(res.GoodputMbps, throughput(flow.Receiver.Bytes, s.Duration))
	}
	return res, nil
}

// Render implements Result.
func (r *ExtControlLossResult) Render() string {
	t := &stats.Table{Header: []string{"ctl-loss", "switches", "stop-rtx", "mean-switch(ms)", "UDP Mb/s"}}
	for i := range r.LossRate {
		t.AddRow(fmt.Sprintf("%.0f%%", 100*r.LossRate[i]),
			fmt.Sprintf("%d", r.SwitchesDone[i]),
			fmt.Sprintf("%d", r.StopRetransmits[i]),
			stats.F(r.MeanSwitchMS[i]), stats.F(r.GoodputMbps[i]))
	}
	return "Extension: switching-protocol robustness to control-packet loss\n" + t.String()
}

// ExtOmniResult compares antenna choices.
type ExtOmniResult struct {
	Antennas []string
	TCPMbps  []float64
	Switches []int
}

// ExtOmni swaps the parabolic antennas for small-cell omnis (§4.2's
// hardware-agnostic claim) and re-runs the 15 mph TCP drive.
func ExtOmni(opt Options) (*ExtOmniResult, error) {
	res := &ExtOmniResult{}
	for _, omni := range []bool{false, true} {
		s := core.DriveScenario(core.ModeWGTT, 15, opt.Seed)
		s.OmniAPs = omni
		n, err := opt.build(s)
		if err != nil {
			return nil, err
		}
		flow := n.AddDownlinkTCP(0, 0, nil)
		flow.Sender.Start()
		n.Run()
		name := "parabolic-21deg"
		if omni {
			name = "omni-5dBi"
		}
		res.Antennas = append(res.Antennas, name)
		res.TCPMbps = append(res.TCPMbps, throughput(flow.Receiver.DeliveredBytes, s.Duration))
		res.Switches = append(res.Switches, len(n.Ctl.History))
	}
	return res, nil
}

// Render implements Result.
func (r *ExtOmniResult) Render() string {
	t := &stats.Table{Header: []string{"antenna", "TCP Mb/s", "switches"}}
	for i := range r.Antennas {
		t.AddRow(r.Antennas[i], stats.F(r.TCPMbps[i]), fmt.Sprintf("%d", r.Switches[i]))
	}
	return "Extension (§4.2): AP antenna variants, 15 mph TCP\n" + t.String()
}

// inCoverageLoss computes a flow's mean per-second loss over the in-coverage
// middle of the drive.
func inCoverageLoss(u *core.UpUDP, rateMbps float64, pktBytes int, duration sim.Time) float64 {
	bins := int(duration/sim.Second) + 1
	perBin := make([]float64, bins)
	for _, a := range u.Receiver.Arrivals {
		if b := int(a.At / sim.Second); b < bins {
			perBin[b]++
		}
	}
	offered := rateMbps * 1e6 / 8 / float64(pktBytes)
	var mean float64
	cnt := 0
	for b := 2; b < bins-3; b++ {
		l := 1 - perBin[b]/offered
		if l < 0 {
			l = 0
		}
		mean += l
		cnt++
	}
	if cnt == 0 {
		return 0
	}
	return mean / float64(cnt)
}

// ExtScaleResult compares the 8-AP testbed with a 16-AP corridor.
type ExtScaleResult struct {
	Labels       []string
	APs          []int
	TCPMbps      []float64
	SwitchesPerS []float64
	CSIPerSecond []float64
	CopiesPerPkt []float64
}

// ExtScale probes §7's "large area deployment" question: double the array
// to 16 APs over a 120 m corridor and drive it at 25 mph. The interesting
// outputs are whether per-drive throughput holds and what the controller
// pays (CSI ingest rate, downlink fan-out copies per packet).
func ExtScale(opt Options) (*ExtScaleResult, error) {
	res := &ExtScaleResult{}
	type layout struct {
		label string
		pos   []mobility.Point
	}
	layouts := []layout{
		{"testbed-8", mobility.DefaultAPPositions()},
		{"corridor-16", mobility.DenseArray(16, 5, 7.5)},
	}
	for _, l := range layouts {
		s := core.Scenario{
			Mode:        core.ModeWGTT,
			Seed:        opt.Seed,
			APPositions: l.pos,
			Clients: []core.ClientSpec{{
				Trace:    mobility.TransitDrive(l.pos, 25, 10),
				SpeedMPH: 25,
			}},
			Duration: mobility.TransitDuration(l.pos, 25, 10) + 2*sim.Second,
		}
		n, err := opt.build(s)
		if err != nil {
			return nil, err
		}
		flow := n.AddDownlinkTCP(0, 0, nil)
		flow.Sender.Start()
		n.Run()
		secs := s.Duration.Seconds()
		res.Labels = append(res.Labels, l.label)
		res.APs = append(res.APs, len(l.pos))
		res.TCPMbps = append(res.TCPMbps, throughput(flow.Receiver.DeliveredBytes, s.Duration))
		res.SwitchesPerS = append(res.SwitchesPerS, float64(len(n.Ctl.History))/secs)
		res.CSIPerSecond = append(res.CSIPerSecond, float64(n.Ctl.Stats.CSIReports)/secs)
		copies := 0.0
		if n.Ctl.Stats.DownlinkSent > 0 {
			copies = float64(n.Ctl.Stats.DownlinkCopies) / float64(n.Ctl.Stats.DownlinkSent)
		}
		res.CopiesPerPkt = append(res.CopiesPerPkt, copies)
	}
	return res, nil
}

// Render implements Result.
func (r *ExtScaleResult) Render() string {
	t := &stats.Table{Header: []string{"layout", "APs", "TCP Mb/s", "switches/s", "CSI/s", "copies/pkt"}}
	for i := range r.Labels {
		t.AddRow(r.Labels[i], fmt.Sprintf("%d", r.APs[i]), stats.F(r.TCPMbps[i]),
			stats.F(r.SwitchesPerS[i]), stats.F(r.CSIPerSecond[i]), stats.F(r.CopiesPerPkt[i]))
	}
	return "Extension (§7): deployment scale-out at 25 mph TCP\n" + t.String()
}
