package eval

import (
	"fmt"

	"wgtt/internal/chaos"
	"wgtt/internal/core"
	"wgtt/internal/mobility"
	"wgtt/internal/packet"
	"wgtt/internal/sim"
	"wgtt/internal/stats"
)

// ExtResilienceResult characterizes the failure model of DESIGN.md §11: how
// much delivered throughput and client-visible outage the system pays as AP
// crashes become more frequent.
type ExtResilienceResult struct {
	MTBFS          []float64 // AP-crash mean time between failures, seconds (0 = chaos off)
	APCrashes      []uint64
	APsMarkedDead  []uint64
	APsReadmitted  []uint64
	ForcedSwitches []uint64
	WorstOutageMS  []float64 // longest delivery gap straddling any crash
	UDPMbps        []float64
}

// ExtResilience sweeps the AP-crash MTBF over a 16-AP omni small-cell
// corridor at 15 mph and reports how the health monitor and forced-failover
// path (DESIGN.md §11) contain each crash. The omni variant gives the
// corridor overlapping coverage, so the measured outage reflects the
// recovery protocol rather than the coverage hole a directional picocell
// leaves behind when it dies. The MTBF=0 row is the fault-free control.
func ExtResilience(opt Options) (*ExtResilienceResult, error) {
	mtbfs := []sim.Time{0, 15 * sim.Second, 5 * sim.Second}
	if opt.Quick {
		mtbfs = []sim.Time{0, 5 * sim.Second}
	}
	res := &ExtResilienceResult{}
	pos := mobility.DenseArray(16, 5, 7.5)
	for _, mtbf := range mtbfs {
		s := core.Scenario{
			Mode:        core.ModeWGTT,
			Seed:        opt.Seed,
			APPositions: pos,
			OmniAPs:     true,
			Clients: []core.ClientSpec{{
				Trace:    mobility.TransitDrive(pos, 15, 10),
				SpeedMPH: 15,
			}},
			Duration: mobility.TransitDuration(pos, 15, 10) + 2*sim.Second,
		}
		if mtbf > 0 {
			ccfg := chaos.DefaultConfig()
			ccfg.APCrashMTBF = mtbf
			ccfg.APDowntime = 2 * sim.Second
			// Isolate the AP-crash axis: no backhaul or CSI weather.
			ccfg.BackhaulBurstMTBF = 0
			ccfg.LatencySpikeMTBF = 0
			ccfg.CSIBlackoutMTBF = 0
			s.Chaos = &ccfg
		}
		n, err := opt.build(s)
		if err != nil {
			return nil, err
		}
		var crashAts []sim.Time
		if n.Chaos != nil {
			n.Chaos.OnFault = func(ev chaos.Event) {
				if ev.Kind == chaos.APCrash {
					crashAts = append(crashAts, ev.At)
				}
			}
		}
		flow := n.AddDownlinkUDP(0, 20, 1400)
		flow.Sender.Start()
		var deliveries []sim.Time
		n.OnClientDownlink(0, func(p *packet.Packet, at sim.Time) {
			deliveries = append(deliveries, at)
		})
		n.Run()

		res.MTBFS = append(res.MTBFS, mtbf.Seconds())
		res.UDPMbps = append(res.UDPMbps, throughput(flow.Receiver.Bytes, s.Duration))
		res.WorstOutageMS = append(res.WorstOutageMS,
			float64(worstCrashOutage(deliveries, crashAts))/float64(sim.Millisecond))
		if n.Chaos != nil {
			res.APCrashes = append(res.APCrashes, n.Chaos.Stats.APCrashes)
		} else {
			res.APCrashes = append(res.APCrashes, 0)
		}
		st := n.Ctl.Stats
		res.APsMarkedDead = append(res.APsMarkedDead, st.APsMarkedDead)
		res.APsReadmitted = append(res.APsReadmitted, st.APsReadmitted)
		res.ForcedSwitches = append(res.ForcedSwitches, st.ForcedSwitches)
	}
	return res, nil
}

// worstCrashOutage returns the longest delivery gap that straddles any
// crash instant — the client-visible cost of that failure. Gaps away from
// every crash (e.g. entering/leaving coverage) are not chargeable to chaos
// and are ignored.
func worstCrashOutage(deliveries, crashAts []sim.Time) sim.Time {
	var worst sim.Time
	for _, crash := range crashAts {
		prev := crash
		// Walk deliveries around this crash; both slices are time-ordered.
		for _, at := range deliveries {
			if at <= crash {
				prev = at
				continue
			}
			if gap := at - prev; gap > worst {
				worst = gap
			}
			break
		}
	}
	return worst
}

// Render implements Result.
func (r *ExtResilienceResult) Render() string {
	t := &stats.Table{Header: []string{
		"ap-mtbf(s)", "crashes", "dead", "readmit", "forced", "worst-outage(ms)", "UDP Mb/s"}}
	for i := range r.MTBFS {
		mtbf := "off"
		if r.MTBFS[i] > 0 {
			mtbf = stats.F(r.MTBFS[i])
		}
		t.AddRow(mtbf, fmt.Sprintf("%d", r.APCrashes[i]),
			fmt.Sprintf("%d", r.APsMarkedDead[i]), fmt.Sprintf("%d", r.APsReadmitted[i]),
			fmt.Sprintf("%d", r.ForcedSwitches[i]), stats.F(r.WorstOutageMS[i]),
			stats.F(r.UDPMbps[i]))
	}
	return "Extension (§11): AP-crash resilience, 16-AP omni corridor, 15 mph UDP\n" + t.String()
}
