package eval

import (
	"fmt"
	"sort"

	"wgtt/internal/core"
	"wgtt/internal/federation"
	"wgtt/internal/mobility"
	"wgtt/internal/packet"
	"wgtt/internal/sim"
	"wgtt/internal/stats"
)

// ExtFederationResult characterizes the sharded controller tier of
// DESIGN.md §13: what a drive across domain boundaries costs relative to
// the single-controller deployment of the same corridor.
type ExtFederationResult struct {
	Domains        []int
	Handoffs       []uint64  // completed inter-controller adoptions
	Offers         []uint64  // handoff offers sent
	Aborts         []uint64  // offers abandoned (timeout / peer down)
	OfferCommitMS  []float64 // median offer → commit transfer time
	CrossSwitchMS  []float64 // median stop → ack on the adopting domain
	WorstHandoffMS []float64 // longest delivery gap straddling any handoff
	UDPMbps        []float64
	UDPLossPct     []float64
}

// ExtFederation sweeps the domain count over a 16-AP omni small-cell
// corridor at 15 mph and reports the cost of crossing controller
// boundaries: how often the tier hands the client off, how long the
// offer → commit state transfer and the cross-domain stop → start → ack
// take, and the worst client-visible delivery gap charged to a handoff.
// The Domains=1 row is the single-controller control; federation must not
// tax a drive that never leaves its domain.
func ExtFederation(opt Options) (*ExtFederationResult, error) {
	domains := []int{1, 2, 4}
	if opt.Quick {
		domains = []int{1, 2}
	}
	res := &ExtFederationResult{}
	pos := mobility.DenseArray(16, 5, 7.5)
	for _, nDom := range domains {
		s := core.Scenario{
			Mode:        core.ModeWGTT,
			Seed:        opt.Seed,
			APPositions: pos,
			OmniAPs:     true,
			Domains:     nDom,
			Clients: []core.ClientSpec{{
				Trace:    mobility.TransitDrive(pos, 15, 10),
				SpeedMPH: 15,
			}},
			Duration: mobility.TransitDuration(pos, 15, 10) + 2*sim.Second,
		}
		n, err := opt.build(s)
		if err != nil {
			return nil, err
		}
		var handoffAts []sim.Time
		if n.Fed != nil {
			for _, d := range n.Fed.Domains {
				d.OnHandoffComplete = func(rec federation.HandoffRecord) {
					handoffAts = append(handoffAts, rec.At)
				}
			}
		}
		flow := n.AddDownlinkUDP(0, 20, 1400)
		flow.Sender.Start()
		var deliveries []sim.Time
		n.OnClientDownlink(0, func(p *packet.Packet, at sim.Time) {
			deliveries = append(deliveries, at)
		})
		n.Run()

		res.Domains = append(res.Domains, nDom)
		res.UDPMbps = append(res.UDPMbps, throughput(flow.Receiver.Bytes, s.Duration))
		res.UDPLossPct = append(res.UDPLossPct, 100*flow.Receiver.LossRate())
		res.WorstHandoffMS = append(res.WorstHandoffMS,
			float64(worstCrashOutage(deliveries, handoffAts))/float64(sim.Millisecond))

		fs := n.FedStats()
		res.Handoffs = append(res.Handoffs, fs.Adoptions)
		res.Offers = append(res.Offers, fs.OffersSent)
		res.Aborts = append(res.Aborts, fs.Aborts)

		var transfer, sw []float64
		if n.Fed != nil {
			for _, d := range n.Fed.Domains {
				for _, rec := range d.Offered {
					transfer = append(transfer, float64(rec.OfferToCommit)/float64(sim.Millisecond))
				}
				for _, rec := range d.Adopted {
					sw = append(sw, float64(rec.SwitchDuration)/float64(sim.Millisecond))
				}
			}
		}
		res.OfferCommitMS = append(res.OfferCommitMS, medianOf(transfer))
		res.CrossSwitchMS = append(res.CrossSwitchMS, medianOf(sw))
	}
	return res, nil
}

// medianOf returns the upper median of xs, or 0 when empty.
func medianOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// Render implements Result.
func (r *ExtFederationResult) Render() string {
	t := &stats.Table{Header: []string{
		"domains", "handoffs", "offers", "aborts", "xfer(ms)", "x-switch(ms)",
		"worst-gap(ms)", "UDP Mb/s", "loss%"}}
	for i := range r.Domains {
		t.AddRow(fmt.Sprintf("%d", r.Domains[i]), fmt.Sprintf("%d", r.Handoffs[i]),
			fmt.Sprintf("%d", r.Offers[i]), fmt.Sprintf("%d", r.Aborts[i]),
			stats.F(r.OfferCommitMS[i]), stats.F(r.CrossSwitchMS[i]),
			stats.F(r.WorstHandoffMS[i]), stats.F(r.UDPMbps[i]), stats.F(r.UDPLossPct[i]))
	}
	return "Extension (§13): controller federation, 16-AP omni corridor, 15 mph UDP\n" + t.String()
}
