package eval

import (
	"fmt"

	"wgtt/internal/core"
	"wgtt/internal/sim"
	"wgtt/internal/stats"
)

// AblationResult compares a design choice on/off.
type AblationResult struct {
	Title    string
	Metric   string
	OnValue  float64
	OffValue float64
	Extra    string
}

// Render implements Result.
func (r *AblationResult) Render() string {
	return fmt.Sprintf("Ablation — %s\n  enabled : %s = %s\n  disabled: %s = %s\n  %s\n",
		r.Title, r.Metric, stats.F(r.OnValue), r.Metric, stats.F(r.OffValue), r.Extra)
}

// AblationBAForwarding quantifies §3.2.1: TCP goodput at 15 mph with Block
// ACK forwarding on vs off, plus the retransmission airtime it saves.
func AblationBAForwarding(opt Options) (*AblationResult, error) {
	run := func(enabled bool) (float64, float64, error) {
		s := core.DriveScenario(core.ModeWGTT, 15, opt.Seed)
		s.BAForwarding = &enabled
		n, err := opt.build(s)
		if err != nil {
			return 0, 0, err
		}
		flow := n.AddDownlinkTCP(0, 0, nil)
		flow.Sender.Start()
		n.Run()
		var sent, delivered uint64
		for _, a := range n.APs {
			sent += a.Station().MPDUsSent
			delivered += a.Stats.MPDUsDelivered
		}
		rtxRatio := 0.0
		if delivered > 0 {
			rtxRatio = float64(sent-delivered) / float64(delivered)
		}
		return throughput(flow.Receiver.DeliveredBytes, s.Duration), rtxRatio, nil
	}
	onTp, onRtx, err := run(true)
	if err != nil {
		return nil, err
	}
	offTp, offRtx, err := run(false)
	if err != nil {
		return nil, err
	}
	return &AblationResult{
		Title:    "Block ACK forwarding (§3.2.1)",
		Metric:   "TCP goodput (Mb/s)",
		OnValue:  onTp,
		OffValue: offTp,
		Extra:    fmt.Sprintf("link-layer retransmission overhead: %.3f (on) vs %.3f (off)", onRtx, offRtx),
	}, nil
}

// AblationUplinkDiversity quantifies §3.2.2–3.2.3: uplink loss with all APs
// forwarding overheard packets vs only the serving AP.
func AblationUplinkDiversity(opt Options) (*AblationResult, error) {
	run := func(enabled bool) (float64, error) {
		s := core.DriveScenario(core.ModeWGTT, 15, opt.Seed)
		s.UplinkDiversity = &enabled
		n, err := opt.build(s)
		if err != nil {
			return 0, err
		}
		f := n.AddUplinkUDP(0, 5, 1000)
		f.Receiver.Record = true
		f.Sender.Start()
		n.Run()
		// In-coverage loss only (trim the entry/exit margins).
		bins := int(s.Duration/sim.Second) + 1
		perBin := make([]float64, bins)
		for _, a := range f.Receiver.Arrivals {
			if b := int(a.At / sim.Second); b < bins {
				perBin[b]++
			}
		}
		offered := 5.0 * 1e6 / 8 / 1000
		var mean float64
		cnt := 0
		for b := 2; b < bins-3; b++ {
			l := 1 - perBin[b]/offered
			if l < 0 {
				l = 0
			}
			mean += l
			cnt++
		}
		if cnt > 0 {
			mean /= float64(cnt)
		}
		return mean, nil
	}
	onLoss, err := run(true)
	if err != nil {
		return nil, err
	}
	offLoss, err := run(false)
	if err != nil {
		return nil, err
	}
	return &AblationResult{
		Title:    "Uplink multi-AP reception (§3.2.2)",
		Metric:   "uplink loss rate",
		OnValue:  onLoss,
		OffValue: offLoss,
		Extra:    "lower is better; diversity reception is Fig. 18's mechanism",
	}, nil
}

// AblationFanout quantifies §3.1.2's cyclic-queue fan-out: with a vanishing
// fan-out window, only the serving AP buffers downlink packets, so every
// switch loses the handover backlog (what start(c, k) otherwise saves).
func AblationFanout(opt Options) (*AblationResult, error) {
	run := func(fanout sim.Time) (float64, error) {
		s := core.DriveScenario(core.ModeWGTT, 15, opt.Seed)
		cfg := controllerConfigWith(40 * sim.Millisecond)
		cfg.FanoutWindow = fanout
		s.Controller = &cfg
		n, err := opt.build(s)
		if err != nil {
			return 0, err
		}
		// TCP, not UDP: the cost of a stranded backlog is a stalled flow,
		// which congestion control turns into lasting throughput loss.
		flow := n.AddDownlinkTCP(0, 0, nil)
		flow.Sender.Start()
		n.Run()
		return throughput(flow.Receiver.DeliveredBytes, s.Duration), nil
	}
	onTp, err := run(100 * sim.Millisecond)
	if err != nil {
		return nil, err
	}
	offTp, err := run(sim.Microsecond)
	if err != nil {
		return nil, err
	}
	return &AblationResult{
		Title:    "Cyclic-queue fan-out (§3.1.2)",
		Metric:   "TCP goodput (Mb/s)",
		OnValue:  onTp,
		OffValue: offTp,
		Extra:    "disabled = copies reach only the serving AP; switches strand the backlog",
	}, nil
}

// AblationSelectionMetric compares the paper's windowed *median* against
// mean and latest-sample selection, using the Fig. 21 trace emulation.
func AblationSelectionMetric(opt Options) (*AblationResult, error) {
	tr, err := collectESNRTrace(opt.Seed)
	if err != nil {
		return nil, err
	}
	w := 10 * sim.Millisecond
	medianLoss := emulateSelection(tr, w)
	meanLoss := emulateSelectionWith(tr, w, meanOf)
	latestLoss := emulateSelectionWith(tr, sim.Millisecond, func(xs []float64) float64 {
		if len(xs) == 0 {
			return 0
		}
		return xs[len(xs)-1]
	})
	return &AblationResult{
		Title:    "AP-selection statistic (§3.1.1)",
		Metric:   "capacity loss (Mb/s), W=10ms median",
		OnValue:  medianLoss,
		OffValue: meanLoss,
		Extra:    fmt.Sprintf("latest-sample selection loses %.2f Mb/s", latestLoss),
	}, nil
}

func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}
