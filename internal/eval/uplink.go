package eval

import (
	"fmt"
	"strings"

	"wgtt/internal/core"
	"wgtt/internal/mobility"
	"wgtt/internal/sim"
	"wgtt/internal/stats"
)

// Fig18Result holds per-client uplink loss timelines for both systems.
type Fig18Result struct {
	BinSeconds float64
	// Loss[system][client][bin] is the per-bin uplink loss fraction.
	LossWGTT [][]float64
	LossBase [][]float64
	// MeanWGTT/MeanBase are whole-run loss rates per client.
	MeanWGTT []float64
	MeanBase []float64
}

// Fig18UplinkLoss reproduces Fig. 18: three clients at 15 mph each send an
// uplink UDP stream; WGTT's multi-AP reception keeps the loss rate near
// zero while the single-AP baseline spikes.
func Fig18UplinkLoss(opt Options) (*Fig18Result, error) {
	const nClients = 3
	const rate = 4.0 // Mb/s per client
	res := &Fig18Result{BinSeconds: 1}
	for _, mode := range []core.Mode{core.ModeWGTT, core.ModeBaseline} {
		s := core.MultiClientScenario(mode, mobility.Following, nClients, 15, opt.Seed)
		n, err := opt.build(s)
		if err != nil {
			return nil, err
		}
		var flows []*core.UpUDP
		for c := 0; c < nClients; c++ {
			f := n.AddUplinkUDP(c, rate, 1000)
			f.Receiver.Record = true
			f.Sender.Start()
			flows = append(flows, f)
		}
		n.Run()
		bins := int(s.Duration/sim.Second) + 1
		pktPerBin := rate * 1e6 / 8 / 1000 // offered packets per second
		for c, f := range flows {
			recvPerBin := make([]float64, bins)
			for _, a := range f.Receiver.Arrivals {
				b := int(a.At / sim.Second)
				if b < bins {
					recvPerBin[b]++
				}
			}
			loss := make([]float64, bins)
			for b := range loss {
				l := 1 - recvPerBin[b]/pktPerBin
				if l < 0 {
					l = 0
				}
				loss[b] = l
			}
			// The whole-run mean is computed over in-coverage seconds only
			// (the paper plots the transition through the array; the entry
			// and exit margins would otherwise dominate).
			lo, hi := 2, bins-3
			var mean float64
			cnt := 0
			for b := lo; b < hi; b++ {
				mean += loss[b]
				cnt++
			}
			if cnt > 0 {
				mean /= float64(cnt)
			}
			if mode == core.ModeWGTT {
				res.LossWGTT = append(res.LossWGTT, loss)
				res.MeanWGTT = append(res.MeanWGTT, mean)
			} else {
				res.LossBase = append(res.LossBase, loss)
				res.MeanBase = append(res.MeanBase, mean)
			}
			_ = c
		}
	}
	return res, nil
}

// Render implements Result.
func (r *Fig18Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig 18: uplink UDP loss rate, 3 clients at 15 mph\n")
	for c := range r.MeanWGTT {
		fmt.Fprintf(&b, "  client %d: WGTT mean loss %.4f | Enh-802.11r mean loss %.4f\n",
			c+1, r.MeanWGTT[c], r.MeanBase[c])
	}
	for c := range r.LossWGTT {
		b.WriteString(seriesString(fmt.Sprintf("  wgtt c%d", c+1), r.LossWGTT[c], 2))
		b.WriteString(seriesString(fmt.Sprintf("  base c%d", c+1), r.LossBase[c], 2))
	}
	return b.String()
}

// Table3Result holds link-layer ACK collision rates.
type Table3Result struct {
	RatesMbps     []float64
	CollisionPct  []float64
	Opportunities []uint64
}

// Table3AckCollision reproduces Table 3: with every WGTT AP acknowledging
// the client's uplink frames, how often do those acknowledgements collide
// at the client? The paper measures ≤ 0.004% at 70–90 Mb/s.
func Table3AckCollision(opt Options) (*Table3Result, error) {
	rates := []float64{70, 80, 90}
	if opt.Quick {
		rates = []float64{70}
	}
	res := &Table3Result{}
	for _, rate := range rates {
		s := core.DriveScenario(core.ModeWGTT, 15, opt.Seed+uint64(rate))
		n, err := opt.build(s)
		if err != nil {
			return nil, err
		}
		// Uplink saturation at the given offered rate, like the paper's
		// iperf3 runs with RTS/CTS off.
		f := n.AddUplinkUDP(0, rate, 1400)
		f.Sender.Start()
		n.Run()
		pct := 0.0
		if n.Medium.RespTotal > 0 {
			pct = 100 * float64(n.Medium.RespCollisions) / float64(n.Medium.RespTotal)
		}
		res.RatesMbps = append(res.RatesMbps, rate)
		res.CollisionPct = append(res.CollisionPct, pct)
		res.Opportunities = append(res.Opportunities, n.Medium.RespTotal)
	}
	return res, nil
}

// Render implements Result.
func (r *Table3Result) Render() string {
	t := &stats.Table{Header: []string{"rate(Mb/s)", "ack-collision(%)", "responses"}}
	for i := range r.RatesMbps {
		t.AddRow(fmt.Sprintf("%.0f", r.RatesMbps[i]),
			fmt.Sprintf("%.4f", r.CollisionPct[i]),
			fmt.Sprintf("%d", r.Opportunities[i]))
	}
	return "Table 3: link-layer ACK collision rate at the client\n" + t.String()
}
