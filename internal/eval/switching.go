package eval

import (
	"fmt"
	"math"
	"strings"

	"wgtt/internal/core"
	"wgtt/internal/mobility"
	"wgtt/internal/phy"
	"wgtt/internal/sim"
	"wgtt/internal/stats"
)

// Fig02Result is the millisecond-scale ESNR view of Fig. 2: per-AP ESNR
// traces during a 25 mph drive-by and the induced best-AP flip rate.
type Fig02Result struct {
	// SampleEveryMS is the trace resolution.
	SampleEveryMS float64
	// ESNR[ap][i] is the i-th sample of that AP's uplink ESNR (dB).
	ESNR [][]float64
	// BestAP[i] is the optimal AP at each sample.
	BestAP []int
	// FlipsPerSecond is how often the best AP changes — the vehicular
	// picocell regime's defining property.
	FlipsPerSecond float64
}

// Fig02BestAPChurn reproduces Fig. 2: ESNR of three adjacent APs sampled
// every millisecond as a client drives by at 25 mph, and how often the
// best-AP choice changes.
func Fig02BestAPChurn(opt Options) (*Fig02Result, error) {
	s := core.DriveScenario(core.ModeWGTT, 25, opt.Seed)
	n, err := opt.build(s)
	if err != nil {
		return nil, err
	}
	aps := []int{0, 1, 2}
	step := sim.Millisecond
	dur := 3 * sim.Second
	if opt.Quick {
		dur = sim.Second
	}
	res := &Fig02Result{SampleEveryMS: step.Milliseconds(), ESNR: make([][]float64, len(aps))}
	prev := -1
	flips := 0
	for t := sim.Time(0); t < dur; t += step {
		best, bestE := -1, math.Inf(-1)
		for i, ap := range aps {
			e := n.ClientESNR(0, ap, t)
			res.ESNR[i] = append(res.ESNR[i], e)
			if e > bestE {
				best, bestE = ap, e
			}
		}
		res.BestAP = append(res.BestAP, best)
		if prev != -1 && best != prev {
			flips++
		}
		prev = best
	}
	res.FlipsPerSecond = float64(flips) / dur.Seconds()
	return res, nil
}

// Render implements Result.
func (r *Fig02Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 2: best-AP churn at 25 mph: %.1f flips/s over %d ms samples\n",
		r.FlipsPerSecond, len(r.BestAP))
	// Print a decimated view of the first second.
	for i := range r.ESNR {
		var dec []float64
		for j := 0; j < len(r.ESNR[i]) && j < 1000; j += 50 {
			dec = append(dec, r.ESNR[i][j])
		}
		b.WriteString(seriesString(fmt.Sprintf("  AP%d ESNR", i+1), dec, 1))
	}
	return b.String()
}

// Fig04Result captures the §2 roaming-failure measurement.
type Fig04Result struct {
	SpeedsMPH []float64
	// Handovers per drive; the paper's 20 mph drive fails to hand over.
	Handovers []int
	// CapacityLossMbps is offered minus delivered rate — the shaded area
	// of Fig. 4 normalized by time.
	CapacityLossMbps []float64
	// OutageSeconds is the longest delivery gap.
	OutageSeconds []float64
}

// Fig04RoamingFailure reproduces Fig. 4 / §2: a CBR UDP stream to a client
// driving past the baseline (802.11r-style) network at 5 and 20 mph.
func Fig04RoamingFailure(opt Options) (*Fig04Result, error) {
	res := &Fig04Result{}
	for _, v := range []float64{5, 20} {
		s := core.DriveScenario(core.ModeBaseline, v, opt.Seed)
		n, err := opt.build(s)
		if err != nil {
			return nil, err
		}
		flow := n.AddDownlinkUDP(0, offeredUDPMbps, 1400)
		flow.Receiver.Record = true
		flow.Sender.Start()
		n.Run()

		delivered := throughput(flow.Receiver.Bytes, s.Duration)
		var longest sim.Time
		lastAt := sim.Time(0)
		for _, a := range flow.Receiver.Arrivals {
			if gap := a.At - lastAt; gap > longest {
				longest = gap
			}
			lastAt = a.At
		}
		if gap := s.Duration - lastAt; gap > longest {
			longest = gap
		}
		res.SpeedsMPH = append(res.SpeedsMPH, v)
		res.Handovers = append(res.Handovers, len(n.Base.Handovers))
		res.CapacityLossMbps = append(res.CapacityLossMbps, offeredUDPMbps-delivered)
		res.OutageSeconds = append(res.OutageSeconds, longest.Seconds())
	}
	return res, nil
}

// Render implements Result.
func (r *Fig04Result) Render() string {
	t := &stats.Table{Header: []string{"speed(mph)", "handovers", "capacity-loss(Mb/s)", "longest-outage(s)"}}
	for i := range r.SpeedsMPH {
		t.AddRow(fmt.Sprintf("%.0f", r.SpeedsMPH[i]), fmt.Sprintf("%d", r.Handovers[i]),
			stats.F(r.CapacityLossMbps[i]), stats.F(r.OutageSeconds[i]))
	}
	return "Fig 4 (§2): Enhanced 802.11r roaming under a 50 Mb/s UDP stream\n" + t.String()
}

// Table1Result holds switching-protocol execution times per offered load.
type Table1Result struct {
	RatesMbps []float64
	MeanMS    []float64
	StdMS     []float64
	Samples   []int
}

// Table1SwitchTime reproduces Table 1: the stop→start→ack execution time of
// the switching protocol while a UDP stream at 50–90 Mb/s is flowing.
func Table1SwitchTime(opt Options) (*Table1Result, error) {
	rates := []float64{50, 60, 70, 80, 90}
	if opt.Quick {
		rates = []float64{50, 90}
	}
	res := &Table1Result{}
	for _, rate := range rates {
		s := core.DriveScenario(core.ModeWGTT, 15, opt.Seed+uint64(rate))
		n, err := opt.build(s)
		if err != nil {
			return nil, err
		}
		flow := n.AddDownlinkUDP(0, rate, 1400)
		flow.Sender.Start()
		n.Run()
		c := &stats.CDF{}
		for _, rec := range n.Ctl.History {
			c.Add(rec.Duration.Milliseconds())
		}
		res.RatesMbps = append(res.RatesMbps, rate)
		res.MeanMS = append(res.MeanMS, c.Mean())
		res.StdMS = append(res.StdMS, c.StdDev())
		res.Samples = append(res.Samples, c.N())
	}
	return res, nil
}

// Render implements Result.
func (r *Table1Result) Render() string {
	t := &stats.Table{Header: []string{"rate(Mb/s)", "mean(ms)", "std(ms)", "switches"}}
	for i := range r.RatesMbps {
		t.AddRow(fmt.Sprintf("%.0f", r.RatesMbps[i]), stats.F(r.MeanMS[i]), stats.F(r.StdMS[i]),
			fmt.Sprintf("%d", r.Samples[i]))
	}
	return "Table 1: switching protocol execution time vs offered load\n" + t.String()
}

// Table2Result holds switching accuracy per system and protocol.
type Table2Result struct {
	Rows []Table2Row
}

// Table2Row is one measurement.
type Table2Row struct {
	Proto    string
	WGTT     float64 // percent
	Baseline float64 // percent
}

// Table2SwitchingAccuracy reproduces Table 2: the fraction of time the
// serving AP is the ESNR-optimal one during a 15 mph drive.
func Table2SwitchingAccuracy(opt Options) (*Table2Result, error) {
	res := &Table2Result{}
	for _, tcp := range []bool{true, false} {
		row := Table2Row{Proto: proto(tcp)}
		for _, mode := range []core.Mode{core.ModeWGTT, core.ModeBaseline} {
			s := core.DriveScenario(mode, 15, opt.Seed)
			n, err := opt.build(s)
			if err != nil {
				return nil, err
			}
			if tcp {
				f := n.AddDownlinkTCP(0, 0, nil)
				f.Sender.Start()
			} else {
				f := n.AddDownlinkUDP(0, offeredUDPMbps, 1400)
				f.Sender.Start()
			}
			match, total := 0, 0
			n.Every(10*sim.Millisecond, func(at sim.Time) {
				best, bestE := n.BestESNRAP(0, at)
				if bestE < 0 {
					return // out of everyone's range: no meaningful optimum
				}
				total++
				if n.ServingAP(0) == best {
					match++
				}
			})
			n.Run()
			acc := 0.0
			if total > 0 {
				acc = 100 * float64(match) / float64(total)
			}
			if mode == core.ModeWGTT {
				row.WGTT = acc
			} else {
				row.Baseline = acc
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render implements Result.
func (r *Table2Result) Render() string {
	t := &stats.Table{Header: []string{"proto", "WGTT(%)", "Enh-802.11r(%)"}}
	for _, row := range r.Rows {
		t.AddRow(row.Proto, stats.F(row.WGTT), stats.F(row.Baseline))
	}
	return "Table 2: switching accuracy (serving == ESNR-optimal AP), 15 mph\n" + t.String()
}

// Fig21Result holds the window-size sensitivity study.
type Fig21Result struct {
	WindowMS        []float64
	CapacityLossMbs []float64
	BestWindowMS    float64
}

// Fig21WindowSize reproduces Fig. 21 with the paper's methodology: collect
// an ESNR trace from a 15 mph drive, then *emulate* the median-window
// selection rule over it for each window size, charging the difference
// between the optimal AP's achievable rate and the selected AP's. CSI
// samples carry measurement noise, so tiny windows chase noise while big
// windows lag the channel — the paper finds the minimum at 10 ms.
func Fig21WindowSize(opt Options) (*Fig21Result, error) {
	windows := []sim.Time{
		sim.Millisecond, 2 * sim.Millisecond, 5 * sim.Millisecond,
		10 * sim.Millisecond, 20 * sim.Millisecond, 50 * sim.Millisecond,
		100 * sim.Millisecond, 200 * sim.Millisecond, 400 * sim.Millisecond,
	}
	runs := 10
	if opt.Quick {
		windows = []sim.Time{2 * sim.Millisecond, 10 * sim.Millisecond, 100 * sim.Millisecond}
		runs = 2
	}
	res := &Fig21Result{}
	losses := make([]float64, len(windows))
	for run := 0; run < runs; run++ {
		trace, err := collectESNRTrace(opt.Seed + uint64(run))
		if err != nil {
			return nil, err
		}
		for wi, w := range windows {
			losses[wi] += emulateSelection(trace, w)
		}
	}
	best := 0
	for wi, w := range windows {
		avg := losses[wi] / float64(runs)
		res.WindowMS = append(res.WindowMS, w.Milliseconds())
		res.CapacityLossMbs = append(res.CapacityLossMbs, avg)
		if avg < res.CapacityLossMbs[best] {
			best = wi
		}
	}
	res.BestWindowMS = res.WindowMS[best]
	return res, nil
}

// esnrTrace is a sampled multi-AP ESNR history.
type esnrTrace struct {
	step sim.Time
	// noisy[ap][i] is what the controller would see (CSI estimation noise);
	// truth[ap][i] is the actual channel.
	noisy [][]float64
	truth [][]float64
}

// collectESNRTrace samples all eight AP links at CSI rate during a 15 mph
// drive-through, with 3 dB estimation noise on the reported values (single-
// frame CSI SNR estimates on commodity NICs are noisy; the Atheros tool's
// per-frame readings scatter by several dB).
func collectESNRTrace(seed uint64) (*esnrTrace, error) {
	s := core.DriveScenario(core.ModeWGTT, 15, seed)
	n, err := core.Build(s)
	if err != nil {
		return nil, err
	}
	rnd := sim.NewRNG(seed).Stream("fig21/noise")
	step := sim.Millisecond
	tr := &esnrTrace{step: step, noisy: make([][]float64, len(n.APs)), truth: make([][]float64, len(n.APs))}
	for t := sim.Time(0); t < s.Duration; t += step {
		for ap := range n.APs {
			e := n.ClientESNR(0, ap, t)
			tr.truth[ap] = append(tr.truth[ap], e)
			tr.noisy[ap] = append(tr.noisy[ap], e+rnd.NormFloat64()*3.0)
		}
	}
	return tr, nil
}

// emulateSelection runs the median-window rule over the trace and returns
// the mean capacity loss (Mb/s) versus the oracle.
func emulateSelection(tr *esnrTrace, window sim.Time) float64 {
	return emulateSelectionWith(tr, window, median)
}

// emulateSelectionWith is emulateSelection with a pluggable window
// statistic (the §3.1.1 ablation compares median/mean/latest).
func emulateSelectionWith(tr *esnrTrace, window sim.Time, stat func([]float64) float64) float64 {
	wlen := int(window / tr.step)
	if wlen < 1 {
		wlen = 1
	}
	nAP := len(tr.truth)
	samples := len(tr.truth[0])
	var lossSum float64
	var count int
	scratch := make([]float64, 0, wlen)
	for i := 0; i < samples; i++ {
		// Selected AP: max window statistic of noisy readings.
		selected, selMed := -1, math.Inf(-1)
		for ap := 0; ap < nAP; ap++ {
			lo := i - wlen + 1
			if lo < 0 {
				lo = 0
			}
			win := tr.noisy[ap][lo : i+1]
			if len(win) > 32 {
				// Decimate big windows: the median of 32 evenly spaced
				// samples is statistically indistinguishable here and
				// keeps the sweep O(n·32 log 32) instead of O(n·W²).
				scratch = scratch[:0]
				stride := float64(len(win)) / 32
				for k := 0; k < 32; k++ {
					scratch = append(scratch, win[int(float64(k)*stride)])
				}
			} else {
				scratch = append(scratch[:0], win...)
			}
			med := stat(scratch)
			if med > selMed {
				selected, selMed = ap, med
			}
		}
		// Oracle AP by true ESNR.
		bestRate, selRate := 0.0, 0.0
		for ap := 0; ap < nAP; ap++ {
			r := achievableRate(tr.truth[ap][i])
			if r > bestRate {
				bestRate = r
			}
			if ap == selected {
				selRate = r
			}
		}
		if bestRate <= 0 {
			continue // nobody can serve here; no capacity to lose
		}
		lossSum += bestRate - selRate
		count++
	}
	if count == 0 {
		return 0
	}
	return lossSum / float64(count)
}

// achievableRate maps an ESNR to the goodput of the best usable MCS.
func achievableRate(esnrDB float64) float64 {
	best := 0.0
	for i := 0; i < phy.NumMCS; i++ {
		m := phy.MCS(i)
		per := phy.PER(m, esnrDB, 1500)
		if r := m.DataRateMbps() * (1 - per); r > best {
			best = r
		}
	}
	return best
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.Inf(-1)
	}
	// Insertion sort: windows are small.
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
	return xs[len(xs)/2]
}

// Render implements Result.
func (r *Fig21Result) Render() string {
	t := &stats.Table{Header: []string{"window(ms)", "capacity-loss(Mb/s)"}}
	for i := range r.WindowMS {
		t.AddRow(stats.F(r.WindowMS[i]), stats.F(r.CapacityLossMbs[i]))
	}
	return fmt.Sprintf("Fig 21: selection-window sweep (best = %.0f ms)\n", r.BestWindowMS) + t.String()
}

// Fig10Result is the ESNR heatmap of the road.
type Fig10Result struct {
	// XsM are sample positions along the road.
	XsM []float64
	// ESNR[ap][i] is the mean ESNR at position XsM[i].
	ESNR [][]float64
}

// Fig10Heatmap reproduces Fig. 10: the per-AP ESNR field along the road,
// measured with a parked probe at each position.
func Fig10Heatmap(opt Options) (*Fig10Result, error) {
	positions := mobility.DefaultAPPositions()
	s := core.Scenario{
		Mode: core.ModeWGTT, Seed: opt.Seed, Duration: sim.Second,
		Clients: []core.ClientSpec{{Trace: mobility.DriveBy(-5, 0, 15), SpeedMPH: 15}},
	}
	n, err := opt.build(s)
	if err != nil {
		return nil, err
	}
	res := &Fig10Result{ESNR: make([][]float64, len(positions))}
	step := 2.0
	if opt.Quick {
		step = 8.0
	}
	// The drive covers x = -5 … 80 at 15 mph; convert positions to times.
	v := mobility.MPH(15)
	for x := 0.0; x <= 75; x += step {
		res.XsM = append(res.XsM, x)
		t := sim.FromSeconds((x + 5) / v)
		for ap := range positions {
			// Average the fast fading out over ±25 ms.
			var sum float64
			const k = 11
			for i := 0; i < k; i++ {
				sum += n.ClientESNR(0, ap, t+sim.Time(i-k/2)*5*sim.Millisecond)
			}
			res.ESNR[ap] = append(res.ESNR[ap], sum/k)
		}
	}
	return res, nil
}

// Render implements Result.
func (r *Fig10Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig 10: mean ESNR (dB) along the road per AP\n      x:")
	for _, x := range r.XsM {
		fmt.Fprintf(&b, "%6.0f", x)
	}
	b.WriteString("\n")
	for ap := range r.ESNR {
		fmt.Fprintf(&b, "  AP%d   :", ap+1)
		for _, e := range r.ESNR[ap] {
			fmt.Fprintf(&b, "%6.1f", e)
		}
		b.WriteString("\n")
	}
	return b.String()
}
