package eval

import (
	"fmt"
	"time"

	"wgtt/internal/fleet"
	"wgtt/internal/metrics"
)

// RunOutput is one experiment's rendered artifact.
type RunOutput struct {
	ID    string
	Title string
	// Text is the rendered result (empty when Err is set).
	Text string
	Err  error
	// Elapsed is wall-clock cost; callers must keep it out of any output
	// that is compared across runs.
	Elapsed time.Duration
	// Metrics is the experiment's observability snapshot, present only when
	// RunAll was asked to collect metrics (opt.CollectMetrics).
	Metrics *metrics.Snapshot
}

// RunAll executes the experiment registry — or just the ids given — across
// a bounded worker pool and returns the outputs in registry order,
// regardless of worker count or completion order. Every experiment builds
// its own isolated simulation state, so concurrent execution cannot
// perturb results. Unknown ids are an error.
func RunAll(opt Options, workers int, ids []string) ([]RunOutput, error) {
	all := Experiments()
	selected := all
	if len(ids) > 0 {
		want := make(map[string]bool, len(ids))
		for _, id := range ids {
			want[id] = true
		}
		selected = selected[:0:0]
		for _, e := range all {
			if want[e.ID] {
				selected = append(selected, e)
				delete(want, e.ID)
			}
		}
		for id := range want {
			return nil, fmt.Errorf("eval: unknown experiment %q", id)
		}
	}
	outs := make([]RunOutput, len(selected))
	fleet.ForEach(len(selected), workers, func(i int) {
		e := selected[i]
		eopt := opt
		if eopt.CollectMetrics {
			// One registry per experiment: registries are single-goroutine,
			// so sharing opt.Metrics across the pool would race.
			eopt.Metrics = metrics.NewRegistry()
		}
		start := time.Now()
		res, err := e.Run(eopt)
		out := RunOutput{ID: e.ID, Title: e.Title, Err: err, Elapsed: time.Since(start)}
		if err == nil {
			out.Text = res.Render()
		}
		if eopt.CollectMetrics {
			snap := eopt.Metrics.Snapshot()
			out.Metrics = &snap
		}
		outs[i] = out
	})
	return outs, nil
}
