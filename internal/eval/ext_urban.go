package eval

import (
	"fmt"
	"strings"

	"wgtt/internal/core"
	"wgtt/internal/fleet"
	"wgtt/internal/packet"
	"wgtt/internal/selector"
	"wgtt/internal/sim"
	"wgtt/internal/stats"
	"wgtt/internal/urban"
)

// urbanOutageBin is the delivery-gap granularity: a client with no
// delivered downlink packet for a whole bin is in outage for that bin.
const urbanOutageBin = 250 * sim.Millisecond

// ExtUrbanResult compares rapid picocell switching against Enhanced
// 802.11r on a street-grid city (DESIGN.md §16): a bus of riders, a car,
// and pedestrians routed through intersections, lights, and controller
// domains, instead of the paper's straight corridor.
type ExtUrbanResult struct {
	// City shape.
	Rows, Cols int
	APCount    int
	Clients    int
	Stats      urban.Stats
	Domains    int
	DurationS  float64

	// Per-system outcomes, row-aligned with Modes.
	Modes      []string
	AggMbps    []float64
	ClientMbps []float64 // mean per-client goodput
	LossPct    []float64
	OutagePct  []float64 // mean % of 250 ms bins with zero deliveries
	Switches   []uint64  // WGTT switches / baseline roams
	Handoffs   []uint64  // inter-controller adoptions (WGTT only)

	// PolicyTable is the per-policy comparison axis on the same city
	// (fleet.ComparePolicies): windowed-median vs predictive vs
	// global-assign, side by side.
	PolicyTable string
}

// extUrbanCity is the evaluation city: the default two-avenue grid, one
// bus line of ten riders, mixed car/pedestrian traffic, two federation
// domains. Quick mode shrinks the map and horizon but keeps the bus full —
// the correlated rider group is the point of the workload.
func extUrbanCity(quick bool) urban.Config {
	cfg := urban.DefaultConfig()
	// Tighter blocks and a brisker bus raise the turn density — the city
	// event rate — over the default map; quick mode then just shortens the
	// horizon and thins the sidewalks.
	cfg.BlockM = 40
	cfg.BusSpeedMPH = 20
	if quick {
		cfg.Pedestrians = 1
		cfg.MaxDurationS = 20
	} else {
		cfg.MaxDurationS = 40
	}
	return cfg
}

// ExtUrban runs the city under both systems — identical graph, AP sites,
// and traces — and reports goodput, loss, outage, and switching activity,
// plus the per-policy selector comparison on the WGTT side. The urban
// workload is where the baseline's scan-and-reassociate roams hurt most:
// every turn and light changes the best AP faster than a scan converges.
func ExtUrban(opt Options) (*ExtUrbanResult, error) {
	city := extUrbanCity(opt.Quick)
	// Offered load per client: tuned per city so the aggregate sits just
	// under the shared single-channel medium's budget — the comparison then
	// measures switching/roaming gaps, not raw congestion collapse. The
	// quick city is smaller (fewer contending stations over a shorter
	// horizon), so each client can offer a little more.
	rate := 0.4 // Mb/s per client
	if opt.Quick {
		rate = 0.5
	}

	res := &ExtUrbanResult{Rows: city.Rows, Cols: city.Cols, Domains: city.Domains}
	for _, mode := range []core.Mode{core.ModeWGTT, core.ModeBaseline} {
		s := core.UrbanScenario(mode, city, opt.Seed)
		n, err := opt.build(s)
		if err != nil {
			return nil, err
		}
		dur := n.Scenario.Duration
		if mode == core.ModeWGTT {
			res.APCount = len(n.APPosition)
			res.Clients = len(n.Clients)
			res.Stats = n.Urban.Stats
			res.DurationS = dur.Seconds()
		}

		type tap struct {
			flow       *core.DownUDP
			deliveries []sim.Time
		}
		taps := make([]*tap, len(n.Clients))
		for i := range n.Clients {
			tp := &tap{flow: n.AddDownlinkUDP(i, rate, 1400)}
			taps[i] = tp
			n.OnClientDownlink(i, func(p *packet.Packet, at sim.Time) {
				tp.deliveries = append(tp.deliveries, at)
			})
			tp.flow.Sender.Start()
		}
		n.Run()

		var bytes uint64
		var loss, outage float64
		for _, tp := range taps {
			bytes += tp.flow.Receiver.Bytes
			loss += tp.flow.Receiver.LossRate()
			outage += outagePct(tp.deliveries, dur, urbanOutageBin)
		}
		nc := float64(len(taps))
		agg := throughput(bytes, dur)
		res.Modes = append(res.Modes, fmtMode(mode))
		res.AggMbps = append(res.AggMbps, agg)
		res.ClientMbps = append(res.ClientMbps, agg/nc)
		res.LossPct = append(res.LossPct, 100*loss/nc)
		res.OutagePct = append(res.OutagePct, outage/nc)
		if mode == core.ModeWGTT {
			res.Switches = append(res.Switches, n.CtlStats().SwitchesDone)
			res.Handoffs = append(res.Handoffs, n.FedStats().Adoptions)
		} else {
			var roams uint64
			for _, r := range n.Roamers {
				roams += r.Roams
			}
			res.Switches = append(res.Switches, roams)
			res.Handoffs = append(res.Handoffs, 0)
		}
	}

	// Per-policy comparison axis (the PR-8 leftover): the same city once
	// per selection policy, goodput/accuracy/flip-rate side by side.
	policies := selector.Policies()
	if opt.Quick {
		policies = []selector.Policy{selector.WindowedMedianPolicy, selector.PredictivePolicy}
	}
	fcfg := fleet.Config{
		Cells:       1,
		Seed:        opt.Seed,
		Workers:     1,
		UDPRateMbps: rate,
		Urban:       &city,
		Selector:    opt.Selector,
	}
	pc, err := fleet.ComparePolicies(fcfg, policies)
	if err != nil {
		return nil, err
	}
	res.PolicyTable = pc.Render()
	return res, nil
}

// outagePct returns the percentage of whole bins in [0, dur) during which
// no packet was delivered.
func outagePct(deliveries []sim.Time, dur, bin sim.Time) float64 {
	bins := int(dur / bin)
	if bins == 0 {
		return 0
	}
	seen := make([]bool, bins)
	for _, at := range deliveries {
		if i := int(at / bin); i >= 0 && i < bins {
			seen[i] = true
		}
	}
	empty := 0
	for _, s := range seen {
		if !s {
			empty++
		}
	}
	return 100 * float64(empty) / float64(bins)
}

// Render implements Result.
func (r *ExtUrbanResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension (§16): urban street-grid city, %dx%d blocks, %d street APs, %d domains\n",
		r.Rows, r.Cols, r.APCount, r.Domains)
	fmt.Fprintf(&b, "traffic: %d bus(es) carrying %d riders, %d car(s), %d pedestrian(s)  (%d clients, %.1f s)\n",
		r.Stats.Buses, r.Stats.Riders, r.Stats.Cars, r.Stats.Pedestrians, r.Clients, r.DurationS)
	fmt.Fprintf(&b, "routes: %d turns, %d light stops (%.1f s dwell), %d inter-cell route crossings\n",
		r.Stats.Turns, r.Stats.LightStops, r.Stats.DwellS, r.Stats.RouteCrossings)
	t := &stats.Table{Header: []string{
		"system", "agg Mb/s", "per-client", "loss%", "outage%", "switches", "handoffs"}}
	for i := range r.Modes {
		t.AddRow(r.Modes[i], stats.F(r.AggMbps[i]), stats.F(r.ClientMbps[i]),
			stats.F(r.LossPct[i]), stats.F(r.OutagePct[i]),
			fmt.Sprintf("%d", r.Switches[i]), fmt.Sprintf("%d", r.Handoffs[i]))
	}
	b.WriteString(t.String())
	b.WriteString("\n")
	b.WriteString(r.PolicyTable)
	return b.String()
}
