package eval

import (
	"fmt"

	"wgtt/internal/core"
	"wgtt/internal/mobility"
	"wgtt/internal/selector"
	"wgtt/internal/sim"
	"wgtt/internal/stats"
)

// ExtSelectorResult compares the pluggable AP-selection policies
// (DESIGN.md §15) on one multi-client drive.
type ExtSelectorResult struct {
	Policies      []selector.Policy
	PerClientMbps []float64 // mean downlink UDP goodput per client
	Accuracy      []float64 // fraction of samples serving the oracle-best AP
	SwitchesPerS  []float64
	EarlySwitches []uint64  // predictive early (pre-collapse) switches
	AssignRounds  []uint64  // fleet-wide reassignment rounds
	StarvedPct    []float64 // samples riding a collapsed serving link (< 8 dB)
	CollapseLagMS []float64 // mean time to leave a collapsed serving link
	MeanAPLoad    []float64 // mean max concurrent clients on one AP
}

// ExtSelector runs the AP-selection policy ablation: three following
// clients at 25 mph under each policy, same seed, same workload. The
// interesting deltas are the ones each extension buys — Predictive cuts
// the lag between the ground-truth best AP changing and the client
// actually switching (it moves before the ESNR collapse instead of after),
// and GlobalAssign caps how many co-located clients pile onto one picocell
// (peak AP load bounded by its per-AP budget) at equal-or-better goodput.
func ExtSelector(opt Options) (*ExtSelectorResult, error) {
	const nClients = 3
	res := &ExtSelectorResult{}
	for _, pol := range selector.Policies() {
		s := core.MultiClientScenario(core.ModeWGTT, mobility.Following, nClients, 25, opt.Seed)
		s.Selector = &selector.Config{Policy: pol}
		n, err := opt.build(s)
		if err != nil {
			return nil, err
		}
		var flows []*core.DownUDP
		for ci := 0; ci < nClients; ci++ {
			f := n.AddDownlinkUDP(ci, 20, 1400)
			f.Sender.Start()
			flows = append(flows, f)
		}

		// Oracle sampling: accuracy, starvation on a collapsed serving
		// link (a better AP existed but the client had not moved yet —
		// exactly the window Predictive pre-empts), and concurrent AP load
		// (the pile-up GlobalAssign's budget caps).
		const starveDB = 8.0
		var (
			samples, hits, starved int
			loadTicks, loadMaxSum  int
			load                   = make([]int, len(n.APs))
			epStart                = make([]sim.Time, nClients)
			epServ                 = make([]int, nClients)
			latSum                 sim.Time
			latN                   int
		)
		for ci := range epStart {
			epStart[ci] = -1
			epServ[ci] = -1
		}
		n.Every(10*sim.Millisecond, func(at sim.Time) {
			for i := range load {
				load[i] = 0
			}
			for ci := 0; ci < nClients; ci++ {
				best, bestESNR := n.BestESNRAP(ci, at)
				serv := n.ServingAP(ci)
				samples++
				if serv == best {
					hits++
				}
				collapsed := serv != best &&
					n.ClientESNR(ci, serv, at) < starveDB && bestESNR >= starveDB
				if collapsed {
					starved++
				}
				// Collapse episodes: the serving link went unusable while a
				// usable AP existed. The latency until the client leaves
				// that AP is the reaction time each policy is judged on.
				if epStart[ci] >= 0 && serv != epServ[ci] {
					latSum += at - epStart[ci]
					latN++
					epStart[ci] = -1
				}
				if epStart[ci] < 0 && collapsed {
					epStart[ci] = at
					epServ[ci] = serv
				} else if epStart[ci] >= 0 && !collapsed && serv == epServ[ci] {
					epStart[ci] = -1 // the link recovered on its own
				}
				if serv >= 0 && serv < len(load) {
					load[serv]++
				}
			}
			maxLoad := 0
			for _, l := range load {
				if l > maxLoad {
					maxLoad = l
				}
			}
			loadTicks++
			loadMaxSum += maxLoad
		})
		n.Run()

		var mbps float64
		for _, f := range flows {
			mbps += throughput(f.Receiver.Bytes, s.Duration)
		}
		cs := n.CtlStats()
		res.Policies = append(res.Policies, pol)
		res.PerClientMbps = append(res.PerClientMbps, mbps/nClients)
		res.Accuracy = append(res.Accuracy, float64(hits)/float64(samples))
		res.SwitchesPerS = append(res.SwitchesPerS,
			float64(cs.SwitchesDone)/s.Duration.Seconds())
		res.EarlySwitches = append(res.EarlySwitches, cs.PredictiveEarlySwitches)
		res.AssignRounds = append(res.AssignRounds, cs.AssignmentRounds)
		res.StarvedPct = append(res.StarvedPct, 100*float64(starved)/float64(samples))
		lag := 0.0
		if latN > 0 {
			lag = (sim.Time(int64(latSum) / int64(latN))).Seconds() * 1000
		}
		res.CollapseLagMS = append(res.CollapseLagMS, lag)
		res.MeanAPLoad = append(res.MeanAPLoad, float64(loadMaxSum)/float64(loadTicks))
	}
	return res, nil
}

// Render implements Result.
func (r *ExtSelectorResult) Render() string {
	t := &stats.Table{Header: []string{"policy", "per-client (Mb/s)", "accuracy",
		"switches/s", "early", "rounds", "starved %", "collapse lag (ms)", "mean AP load"}}
	for i := range r.Policies {
		t.AddRow(string(r.Policies[i]), stats.F(r.PerClientMbps[i]),
			fmt.Sprintf("%.3f", r.Accuracy[i]), stats.F(r.SwitchesPerS[i]),
			fmt.Sprintf("%d", r.EarlySwitches[i]), fmt.Sprintf("%d", r.AssignRounds[i]),
			fmt.Sprintf("%.2f", r.StarvedPct[i]), stats.F(r.CollapseLagMS[i]),
			fmt.Sprintf("%.2f", r.MeanAPLoad[i]))
	}
	return "Extension (§15): AP-selection policy ablation, 3 clients, 25 mph\n" + t.String()
}
