package eval

import (
	"fmt"
	"sort"
	"strings"

	"wgtt/internal/fleet"
	"wgtt/internal/sim"
	"wgtt/internal/stats"
	"wgtt/internal/urban"
)

// ExtMetroResult compares a connected metro — one city tiled into metro
// cells with cross-cell client migration (DESIGN.md §17) — against the same
// city with the seams cut: every client pinned to its birth tile's
// simulation, receding from its APs as it drives away. The ablation isolates
// exactly what the metro refactor adds, because both runs share the city
// graph, AP sites, routes, and radio draws.
type ExtMetroResult struct {
	Tiling     urban.Tiling
	Rows, Cols int
	APCount    int
	Clients    int
	Crossings  int
	DurationS  float64
	EpochMS    float64

	// Per-mode outcomes, row-aligned with Modes ("connected", "isolated").
	Modes        []string
	AggMbps      []float64
	ClientMbps   []float64 // mean per-client goodput
	LossPct      []float64 // mean per-client loss
	TailLossPct  []float64 // worst-quartile mean — where stranded clients live
	Migrations   []uint64
	SeamOutageMS []float64
	Switches     []uint64
}

// extMetroConfig is the evaluation metro: the default 2x2-tile city, with a
// smaller map and horizon in quick mode. The full map keeps routes long
// enough that isolated clients end up several blocks — and several street
// corners of blockage — away from their birth tile's APs.
func extMetroConfig(opt Options, quick bool) fleet.Config {
	metro := urban.DefaultMetroConfig()
	if quick {
		metro.City.Rows, metro.City.Cols = 4, 4
		metro.City.RidersPerBus = 3
		metro.City.Cars = 1
		metro.City.Pedestrians = 1
		metro.City.MaxDurationS = 25
	}
	return fleet.Config{
		Seed:        opt.Seed,
		Workers:     4,
		UDPRateMbps: 1,
		Metro:       &metro,
		Selector:    opt.Selector,
	}
}

// ExtMetro runs the city twice — seams connected, seams cut — and reports
// goodput, loss (mean and worst-quartile tail), migration activity, and the
// seam-outage cost of epoch-barrier admission.
func ExtMetro(opt Options) (*ExtMetroResult, error) {
	cfg := extMetroConfig(opt, opt.Quick)
	res := &ExtMetroResult{
		Tiling: cfg.Metro.Tiles,
		Rows:   cfg.Metro.City.Rows,
		Cols:   cfg.Metro.City.Cols,
	}
	for _, isolated := range []bool{false, true} {
		c := cfg
		c.MetroIsolated = isolated
		r, err := fleet.RunMetro(c)
		if err != nil {
			return nil, err
		}
		if !isolated {
			res.Clients = r.Clients
			res.Crossings = r.Crossings
			res.DurationS = r.DurationS
			res.EpochMS = r.EpochMS
			for _, tr := range r.Tiles {
				res.APCount += tr.APs
			}
		}
		mode := "connected"
		if isolated {
			mode = "isolated"
		}
		var mbps, loss float64
		for i := range r.PerClientMbps {
			mbps += r.PerClientMbps[i]
			loss += r.PerClientLoss[i]
		}
		nc := float64(r.Clients)
		res.Modes = append(res.Modes, mode)
		res.AggMbps = append(res.AggMbps, r.AggMbps)
		res.ClientMbps = append(res.ClientMbps, mbps/nc)
		res.LossPct = append(res.LossPct, 100*loss/nc)
		res.TailLossPct = append(res.TailLossPct, 100*worstQuartileMean(r.PerClientLoss))
		res.Migrations = append(res.Migrations, r.Stats.Migrations)
		res.SeamOutageMS = append(res.SeamOutageMS,
			float64(r.Stats.SeamOutage)/float64(sim.Millisecond))
		res.Switches = append(res.Switches, r.Stats.Switches)
	}
	return res, nil
}

// worstQuartileMean averages the highest quarter of xs — the clients the
// seam cut strands. The mean over all clients dilutes them with clients
// whose routes never leave their birth tile.
func worstQuartileMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	k := (len(s) + 3) / 4
	worst := s[len(s)-k:]
	sum := 0.0
	for _, x := range worst {
		sum += x
	}
	return sum / float64(len(worst))
}

// Render implements Result.
func (r *ExtMetroResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension (§17): metro fleet, one %dx%d-block city tiled %s (%d street APs)\n",
		r.Rows, r.Cols, r.Tiling, r.APCount)
	fmt.Fprintf(&b, "clients %d  planned seam crossings %d  epoch %.0f ms  horizon %.1f s\n",
		r.Clients, r.Crossings, r.EpochMS, r.DurationS)
	t := &stats.Table{Header: []string{
		"mode", "agg Mb/s", "per-client", "loss%", "tail loss%", "migrations", "seam ms", "switches"}}
	for i := range r.Modes {
		t.AddRow(r.Modes[i], stats.F(r.AggMbps[i]), stats.F(r.ClientMbps[i]),
			stats.F(r.LossPct[i]), stats.F(r.TailLossPct[i]),
			fmt.Sprintf("%d", r.Migrations[i]), stats.F(r.SeamOutageMS[i]),
			fmt.Sprintf("%d", r.Switches[i]))
	}
	b.WriteString(t.String())
	return b.String()
}
