package eval

import (
	"fmt"
	"strings"

	"wgtt/internal/core"
	"wgtt/internal/mobility"
	"wgtt/internal/sim"
	"wgtt/internal/stats"
)

// offeredUDPMbps is the CBR load used for UDP throughput comparisons,
// matching the paper's saturating iperf3 loads.
const offeredUDPMbps = 50

// Fig13Result holds TCP and UDP throughput versus speed for both systems.
type Fig13Result struct {
	SpeedsMPH []float64
	TCPWGTT   []float64
	TCPBase   []float64
	UDPWGTT   []float64
	UDPBase   []float64
}

// Fig13ThroughputVsSpeed reproduces Fig. 13: single-client TCP and UDP
// downlink throughput as driving speed varies, WGTT vs Enhanced 802.11r.
func Fig13ThroughputVsSpeed(opt Options) (*Fig13Result, error) {
	speeds := []float64{0, 5, 10, 15, 20, 25, 35}
	if opt.Quick {
		speeds = []float64{5, 25}
	}
	res := &Fig13Result{SpeedsMPH: speeds}
	for _, v := range speeds {
		tw, _, err := driveTCP(core.ModeWGTT, v, opt)
		if err != nil {
			return nil, err
		}
		tb, _, err := driveTCP(core.ModeBaseline, v, opt)
		if err != nil {
			return nil, err
		}
		uw, _, err := driveUDP(core.ModeWGTT, v, offeredUDPMbps, opt)
		if err != nil {
			return nil, err
		}
		ub, _, err := driveUDP(core.ModeBaseline, v, offeredUDPMbps, opt)
		if err != nil {
			return nil, err
		}
		res.TCPWGTT = append(res.TCPWGTT, tw)
		res.TCPBase = append(res.TCPBase, tb)
		res.UDPWGTT = append(res.UDPWGTT, uw)
		res.UDPBase = append(res.UDPBase, ub)
	}
	return res, nil
}

// Render implements Result.
func (r *Fig13Result) Render() string {
	t := &stats.Table{Header: []string{"speed(mph)", "TCP-WGTT", "TCP-base", "TCP-gain", "UDP-WGTT", "UDP-base", "UDP-gain"}}
	for i, v := range r.SpeedsMPH {
		t.AddRow(fmt.Sprintf("%.0f", v),
			stats.F(r.TCPWGTT[i]), stats.F(r.TCPBase[i]), gain(r.TCPWGTT[i], r.TCPBase[i]),
			stats.F(r.UDPWGTT[i]), stats.F(r.UDPBase[i]), gain(r.UDPWGTT[i], r.UDPBase[i]))
	}
	return "Fig 13: throughput vs speed (Mb/s)\n" + t.String()
}

func gain(a, b float64) string {
	if b <= 0 {
		return "inf"
	}
	return fmt.Sprintf("%.1fx", a/b)
}

// TimelineResult is the Fig. 14/15 style view: throughput per 100 ms bin
// plus the AP-association timeline for one drive.
type TimelineResult struct {
	Label     string
	Bin       sim.Time
	Mbps      []float64
	BitrateTS []float64 // per-bin mean link bit rate of transmitted frames
	// APSeq samples the serving AP per bin (-1 when unknown).
	APSeq []int
	// Switches is the total number of AP changes during the drive.
	Switches int
	// Timeouts is the TCP sender's RTO count (TCP runs only).
	Timeouts uint64
}

// Fig14TCPTimeline reproduces Fig. 14: TCP throughput and AP association
// over time during a 15 mph drive, for the given mode.
func Fig14TCPTimeline(mode core.Mode, opt Options) (*TimelineResult, error) {
	return timeline(mode, opt, true)
}

// Fig15UDPTimeline reproduces Fig. 15 (UDP variant).
func Fig15UDPTimeline(mode core.Mode, opt Options) (*TimelineResult, error) {
	return timeline(mode, opt, false)
}

func timeline(mode core.Mode, opt Options, tcp bool) (*TimelineResult, error) {
	s := core.DriveScenario(mode, 15, opt.Seed)
	n, err := opt.build(s)
	if err != nil {
		return nil, err
	}
	bin := 100 * sim.Millisecond
	ts := stats.NewThroughputSeries(bin)
	nbins := int(s.Duration/bin) + 1
	rateSum := make([]float64, nbins)
	rateN := make([]int, nbins)
	for _, a := range n.APs {
		a.OnFrameTx = func(rate float64, mpdus int, at sim.Time) {
			b := int(at / bin)
			if b < nbins {
				rateSum[b] += rate
				rateN[b]++
			}
		}
	}

	var timeouts uint64
	if tcp {
		flow := n.AddDownlinkTCP(0, 0, nil)
		flow.Receiver.OnDeliver = func(_ uint32, bytes int, at sim.Time) { ts.Add(at, bytes) }
		flow.Sender.Start()
		defer func() { timeouts = flow.Sender.Timeouts }()
	} else {
		flow := n.AddDownlinkUDP(0, offeredUDPMbps, 1400)
		prev := uint64(0)
		n.Every(bin, func(at sim.Time) {
			ts.Add(at-1, int(flow.Receiver.Bytes-prev))
			prev = flow.Receiver.Bytes
		})
		flow.Sender.Start()
	}

	res := &TimelineResult{Label: fmt.Sprintf("%s 15mph %s", fmtMode(mode), proto(tcp)), Bin: bin}
	last := -2
	n.Every(bin, func(at sim.Time) {
		cur := n.ServingAP(0)
		res.APSeq = append(res.APSeq, cur)
		if cur != last && last != -2 {
			res.Switches++
		}
		last = cur
	})
	n.Run()
	res.Mbps = ts.Mbps()
	for b := 0; b < nbins; b++ {
		if rateN[b] > 0 {
			res.BitrateTS = append(res.BitrateTS, rateSum[b]/float64(rateN[b]))
		} else {
			res.BitrateTS = append(res.BitrateTS, 0)
		}
	}
	res.Timeouts = timeouts
	return res, nil
}

func proto(tcp bool) string {
	if tcp {
		return "TCP"
	}
	return "UDP"
}

// Render implements Result.
func (r *TimelineResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Timeline (%s), %v bins, %d AP switches, %d TCP timeouts\n",
		r.Label, r.Bin, r.Switches, r.Timeouts)
	b.WriteString(seriesString("  Mb/s ", r.Mbps, 1))
	b.WriteString(seriesString("  rate ", r.BitrateTS, 0))
	b.WriteString("  APseq:")
	for _, a := range r.APSeq {
		fmt.Fprintf(&b, " %d", a)
	}
	b.WriteString("\n")
	return b.String()
}

// Fig16Result is the link bit-rate CDF comparison.
type Fig16Result struct {
	// Quantiles of the transmitted-frame bit rate per (system, protocol).
	Rows []Fig16Row
}

// Fig16Row is one CDF summary.
type Fig16Row struct {
	System, Proto       string
	P10, P50, P90, P100 float64
}

// Fig16BitrateCDF reproduces Fig. 16: the CDF of the link bit rate during a
// 15 mph drive (TCP and UDP), WGTT vs Enhanced 802.11r.
func Fig16BitrateCDF(opt Options) (*Fig16Result, error) {
	res := &Fig16Result{}
	for _, mode := range []core.Mode{core.ModeWGTT, core.ModeBaseline} {
		for _, tcp := range []bool{true, false} {
			s := core.DriveScenario(mode, 15, opt.Seed)
			n, err := opt.build(s)
			if err != nil {
				return nil, err
			}
			cdf := &stats.CDF{}
			for _, a := range n.APs {
				a.OnFrameTx = func(rate float64, mpdus int, _ sim.Time) {
					// Weight by MPDUs so the distribution reflects data
					// volume, as a packet capture would.
					for i := 0; i < mpdus; i++ {
						cdf.Add(rate)
					}
				}
			}
			if tcp {
				f := n.AddDownlinkTCP(0, 0, nil)
				f.Sender.Start()
			} else {
				f := n.AddDownlinkUDP(0, offeredUDPMbps, 1400)
				f.Sender.Start()
			}
			n.Run()
			res.Rows = append(res.Rows, Fig16Row{
				System: fmtMode(mode), Proto: proto(tcp),
				P10: cdf.Quantile(0.1), P50: cdf.Quantile(0.5),
				P90: cdf.Quantile(0.9), P100: cdf.Quantile(1),
			})
		}
	}
	return res, nil
}

// Render implements Result.
func (r *Fig16Result) Render() string {
	t := &stats.Table{Header: []string{"system", "proto", "p10", "p50", "p90", "max"}}
	for _, row := range r.Rows {
		t.AddRow(row.System, row.Proto, stats.F(row.P10), stats.F(row.P50), stats.F(row.P90), stats.F(row.P100))
	}
	return "Fig 16: link bit rate CDF quantiles (Mb/s), 15 mph\n" + t.String()
}

// Fig17Result holds per-client throughput vs number of clients.
type Fig17Result struct {
	Clients []int
	Rows    map[string][]float64 // "TCP-WGTT" etc → per-count mean per-client Mb/s
}

// Fig17MultiClient reproduces Fig. 17: average per-client downlink
// throughput with 1–3 clients at 15 mph.
func Fig17MultiClient(opt Options) (*Fig17Result, error) {
	counts := []int{1, 2, 3}
	if opt.Quick {
		counts = []int{1, 2}
	}
	res := &Fig17Result{Clients: counts, Rows: map[string][]float64{}}
	for _, nc := range counts {
		for _, mode := range []core.Mode{core.ModeWGTT, core.ModeBaseline} {
			for _, tcp := range []bool{true, false} {
				s := core.MultiClientScenario(mode, mobility.Following, nc, 15, opt.Seed)
				n, err := opt.build(s)
				if err != nil {
					return nil, err
				}
				var total float64
				var tcps []*core.DownTCP
				var udps []*core.DownUDP
				for c := 0; c < nc; c++ {
					if tcp {
						f := n.AddDownlinkTCP(c, 0, nil)
						f.Sender.Start()
						tcps = append(tcps, f)
					} else {
						f := n.AddDownlinkUDP(c, offeredUDPMbps/float64(nc)+10, 1400)
						f.Sender.Start()
						udps = append(udps, f)
					}
				}
				n.Run()
				for _, f := range tcps {
					total += throughput(f.Receiver.DeliveredBytes, s.Duration)
				}
				for _, f := range udps {
					total += throughput(f.Receiver.Bytes, s.Duration)
				}
				key := proto(tcp) + "-" + fmtMode(mode)
				res.Rows[key] = append(res.Rows[key], total/float64(nc))
			}
		}
	}
	return res, nil
}

// Render implements Result.
func (r *Fig17Result) Render() string {
	t := &stats.Table{Header: []string{"clients", "TCP-WGTT", "TCP-Enh-802.11r", "UDP-WGTT", "UDP-Enh-802.11r"}}
	for i, nc := range r.Clients {
		t.AddRow(fmt.Sprintf("%d", nc),
			stats.F(r.Rows["TCP-WGTT"][i]), stats.F(r.Rows["TCP-Enh-802.11r"][i]),
			stats.F(r.Rows["UDP-WGTT"][i]), stats.F(r.Rows["UDP-Enh-802.11r"][i]))
	}
	return "Fig 17: per-client throughput vs client count (Mb/s), 15 mph\n" + t.String()
}

// Fig20Result holds throughput for the three driving patterns.
type Fig20Result struct {
	Patterns []string
	Rows     map[string][]float64
}

// Fig20DrivingPatterns reproduces Fig. 20: two clients at 15 mph in
// following / parallel / opposing arrangements.
func Fig20DrivingPatterns(opt Options) (*Fig20Result, error) {
	pats := []mobility.Pattern{mobility.Following, mobility.Parallel, mobility.Opposing}
	res := &Fig20Result{Rows: map[string][]float64{}}
	for _, p := range pats {
		res.Patterns = append(res.Patterns, p.String())
		for _, mode := range []core.Mode{core.ModeWGTT, core.ModeBaseline} {
			for _, tcp := range []bool{true, false} {
				s := core.MultiClientScenario(mode, p, 2, 15, opt.Seed)
				n, err := opt.build(s)
				if err != nil {
					return nil, err
				}
				var total float64
				var tcps []*core.DownTCP
				var udps []*core.DownUDP
				for c := 0; c < 2; c++ {
					if tcp {
						f := n.AddDownlinkTCP(c, 0, nil)
						f.Sender.Start()
						tcps = append(tcps, f)
					} else {
						// The paper sends 15 Mb/s CBR per client here.
						f := n.AddDownlinkUDP(c, 15, 1400)
						f.Sender.Start()
						udps = append(udps, f)
					}
				}
				n.Run()
				for _, f := range tcps {
					total += throughput(f.Receiver.DeliveredBytes, s.Duration)
				}
				for _, f := range udps {
					total += throughput(f.Receiver.Bytes, s.Duration)
				}
				key := proto(tcp) + "-" + fmtMode(mode)
				res.Rows[key] = append(res.Rows[key], total/2)
			}
		}
	}
	return res, nil
}

// Render implements Result.
func (r *Fig20Result) Render() string {
	t := &stats.Table{Header: []string{"pattern", "TCP-WGTT", "TCP-Enh-802.11r", "UDP-WGTT", "UDP-Enh-802.11r"}}
	for i, p := range r.Patterns {
		t.AddRow(p,
			stats.F(r.Rows["TCP-WGTT"][i]), stats.F(r.Rows["TCP-Enh-802.11r"][i]),
			stats.F(r.Rows["UDP-WGTT"][i]), stats.F(r.Rows["UDP-Enh-802.11r"][i]))
	}
	return "Fig 20: per-client throughput by driving pattern (Mb/s), 2 clients, 15 mph\n" + t.String()
}

// Fig22Result holds TCP throughput for different switching hysteresis T.
type Fig22Result struct {
	HysteresisMS []float64
	Mbps         []float64
	Switches     []int
}

// Fig22Hysteresis reproduces Fig. 22: WGTT TCP throughput at 15 mph with
// time hysteresis T = 40/80/120 ms.
func Fig22Hysteresis(opt Options) (*Fig22Result, error) {
	ts := []sim.Time{40 * sim.Millisecond, 80 * sim.Millisecond, 120 * sim.Millisecond}
	if opt.Quick {
		ts = ts[:2]
	}
	res := &Fig22Result{}
	for _, T := range ts {
		s := core.DriveScenario(core.ModeWGTT, 15, opt.Seed)
		cfg := controllerConfigWith(T)
		s.Controller = &cfg
		n, err := opt.build(s)
		if err != nil {
			return nil, err
		}
		flow := n.AddDownlinkTCP(0, 0, nil)
		flow.Sender.Start()
		n.Run()
		res.HysteresisMS = append(res.HysteresisMS, T.Milliseconds())
		res.Mbps = append(res.Mbps, throughput(flow.Receiver.DeliveredBytes, s.Duration))
		res.Switches = append(res.Switches, len(n.Ctl.History))
	}
	return res, nil
}

// Render implements Result.
func (r *Fig22Result) Render() string {
	t := &stats.Table{Header: []string{"hysteresis(ms)", "TCP Mb/s", "switches"}}
	for i := range r.HysteresisMS {
		t.AddRow(stats.F(r.HysteresisMS[i]), stats.F(r.Mbps[i]), fmt.Sprintf("%d", r.Switches[i]))
	}
	return "Fig 22: WGTT TCP throughput vs switching hysteresis, 15 mph\n" + t.String()
}

// Fig23Result holds UDP throughput in dense vs sparse AP segments.
type Fig23Result struct {
	SpeedsMPH []float64
	Rows      map[string][]float64 // "dense-WGTT" etc
}

// Fig23APDensity reproduces Fig. 23: UDP throughput while transiting the
// densely deployed APs (AP2–AP4) vs the sparse segment (AP5–AP7), at low
// speeds, for both systems.
func Fig23APDensity(opt Options) (*Fig23Result, error) {
	speeds := []float64{2, 4, 6, 8, 10}
	if opt.Quick {
		speeds = []float64{4, 8}
	}
	segments := map[string][]int{
		"dense":  {1, 2, 3}, // paper's AP2–AP4
		"sparse": {4, 5, 6}, // paper's AP5–AP7
	}
	res := &Fig23Result{SpeedsMPH: speeds, Rows: map[string][]float64{}}
	for _, v := range speeds {
		for seg, subset := range segments {
			for _, mode := range []core.Mode{core.ModeWGTT, core.ModeBaseline} {
				s := core.DriveScenario(mode, v, opt.Seed)
				s.APSubset = subset
				// Re-span the drive over just this segment.
				all := mobility.DefaultAPPositions()
				var pos []mobility.Point
				for _, i := range subset {
					pos = append(pos, all[i])
				}
				s.Clients[0].Trace = mobility.TransitDrive(pos, v, 8)
				s.Duration = mobility.TransitDuration(pos, v, 8) + sim.Second
				n, err := opt.build(s)
				if err != nil {
					return nil, err
				}
				flow := n.AddDownlinkUDP(0, offeredUDPMbps, 1400)
				flow.Sender.Start()
				n.Run()
				key := seg + "-" + fmtMode(mode)
				res.Rows[key] = append(res.Rows[key], throughput(flow.Receiver.Bytes, s.Duration))
			}
		}
	}
	return res, nil
}

// Render implements Result.
func (r *Fig23Result) Render() string {
	t := &stats.Table{Header: []string{"speed(mph)", "dense-WGTT", "dense-Enh", "sparse-WGTT", "sparse-Enh"}}
	for i, v := range r.SpeedsMPH {
		t.AddRow(fmt.Sprintf("%.0f", v),
			stats.F(r.Rows["dense-WGTT"][i]), stats.F(r.Rows["dense-Enh-802.11r"][i]),
			stats.F(r.Rows["sparse-WGTT"][i]), stats.F(r.Rows["sparse-Enh-802.11r"][i]))
	}
	return "Fig 23: UDP throughput, dense (AP2-4) vs sparse (AP5-7) segments (Mb/s)\n" + t.String()
}
