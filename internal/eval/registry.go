package eval

import "wgtt/internal/core"

// Experiment names one regenerable table or figure.
type Experiment struct {
	// ID is the paper artifact ("fig13", "table2", "ablation-ba", …).
	ID string
	// Title describes what it shows.
	Title string
	// Run executes the experiment.
	Run func(Options) (Result, error)
}

// Experiments returns every regenerable artifact, in paper order, followed
// by the ablations from DESIGN.md §4.
func Experiments() []Experiment {
	return []Experiment{
		{"fig2", "Best-AP churn at millisecond timescales (25 mph)",
			func(o Options) (Result, error) { return Fig02BestAPChurn(o) }},
		{"fig4", "Enhanced 802.11r roaming failure (§2)",
			func(o Options) (Result, error) { return Fig04RoamingFailure(o) }},
		{"fig10", "ESNR heatmap along the road",
			func(o Options) (Result, error) { return Fig10Heatmap(o) }},
		{"table1", "Switching protocol execution time",
			func(o Options) (Result, error) { return Table1SwitchTime(o) }},
		{"fig13", "TCP/UDP throughput vs speed",
			func(o Options) (Result, error) { return Fig13ThroughputVsSpeed(o) }},
		{"fig14", "TCP timeline at 15 mph (WGTT + baseline)",
			func(o Options) (Result, error) { return bothTimelines(o, true) }},
		{"fig15", "UDP timeline at 15 mph (WGTT + baseline)",
			func(o Options) (Result, error) { return bothTimelines(o, false) }},
		{"fig16", "Link bit rate CDF",
			func(o Options) (Result, error) { return Fig16BitrateCDF(o) }},
		{"table2", "Switching accuracy",
			func(o Options) (Result, error) { return Table2SwitchingAccuracy(o) }},
		{"fig17", "Per-client throughput, 1–3 clients",
			func(o Options) (Result, error) { return Fig17MultiClient(o) }},
		{"fig18", "Uplink loss, 3 clients",
			func(o Options) (Result, error) { return Fig18UplinkLoss(o) }},
		{"fig20", "Driving patterns (following/parallel/opposing)",
			func(o Options) (Result, error) { return Fig20DrivingPatterns(o) }},
		{"fig21", "Selection window size sweep",
			func(o Options) (Result, error) { return Fig21WindowSize(o) }},
		{"table3", "Link-layer ACK collision rate",
			func(o Options) (Result, error) { return Table3AckCollision(o) }},
		{"fig22", "Switching hysteresis sweep",
			func(o Options) (Result, error) { return Fig22Hysteresis(o) }},
		{"fig23", "Dense vs sparse AP segments",
			func(o Options) (Result, error) { return Fig23APDensity(o) }},
		{"table4", "Video rebuffer ratio",
			func(o Options) (Result, error) { return Table4VideoRebuffer(o) }},
		{"fig24", "Video conference frame rate",
			func(o Options) (Result, error) { return Fig24ConferenceFPS(o) }},
		{"table5", "Web page load time",
			func(o Options) (Result, error) { return Table5PageLoad(o) }},
		{"ablation-ba", "Ablation: Block ACK forwarding",
			func(o Options) (Result, error) { return AblationBAForwarding(o) }},
		{"ablation-uplink", "Ablation: uplink multi-AP reception",
			func(o Options) (Result, error) { return AblationUplinkDiversity(o) }},
		{"ablation-fanout", "Ablation: cyclic-queue fan-out",
			func(o Options) (Result, error) { return AblationFanout(o) }},
		{"ablation-median", "Ablation: selection statistic",
			func(o Options) (Result, error) { return AblationSelectionMetric(o) }},
		{"ext-multichannel", "Extension (§7): multi-channel deployment",
			func(o Options) (Result, error) { return ExtMultiChannel(o) }},
		{"ext-controlloss", "Extension: control-packet loss robustness",
			func(o Options) (Result, error) { return ExtControlLoss(o) }},
		{"ext-omni", "Extension (§4.2): omni small-cell antennas",
			func(o Options) (Result, error) { return ExtOmni(o) }},
		{"ext-scale", "Extension (§7): 16-AP corridor scale-out",
			func(o Options) (Result, error) { return ExtScale(o) }},
		{"ext-resilience", "Extension (§11): AP-crash fault injection and recovery",
			func(o Options) (Result, error) { return ExtResilience(o) }},
		{"ext-federation", "Extension (§13): sharded controller tier and inter-controller handoff",
			func(o Options) (Result, error) { return ExtFederation(o) }},
		{"ext-selector", "Extension (§15): AP-selection policy ablation",
			func(o Options) (Result, error) { return ExtSelector(o) }},
		{"ext-urban", "Extension (§16): urban street-grid city with bus riders",
			func(o Options) (Result, error) { return ExtUrban(o) }},
		{"ext-metro", "Extension (§17): connected metro vs isolated tiles",
			func(o Options) (Result, error) { return ExtMetro(o) }},
	}
}

// multiResult concatenates several results.
type multiResult []Result

// Render implements Result.
func (m multiResult) Render() string {
	out := ""
	for _, r := range m {
		out += r.Render()
	}
	return out
}

func bothTimelines(o Options, tcp bool) (Result, error) {
	var out multiResult
	w, err := timeline(core.ModeWGTT, o, tcp)
	if err != nil {
		return nil, err
	}
	b, err := timeline(core.ModeBaseline, o, tcp)
	if err != nil {
		return nil, err
	}
	out = append(out, w, b)
	return out, nil
}
