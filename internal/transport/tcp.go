package transport

import (
	"wgtt/internal/packet"
	"wgtt/internal/sim"
)

// TCP timing constants (Linux-flavoured).
const (
	// MinRTO is the minimum retransmission timeout.
	MinRTO = 200 * sim.Millisecond
	// MaxRTO caps exponential backoff.
	MaxRTO = 60 * sim.Second
	// InitialRTO before any RTT sample.
	InitialRTO = 1 * sim.Second
	// DefaultMSS is the segment payload size.
	DefaultMSS = 1400
	// AckBytes is the wire size of a pure ACK.
	AckBytes = 40
	// RcvWindow is the receiver window in segments.
	RcvWindow = 256
)

// TCPConfig configures one TCP flow (sender side).
type TCPConfig struct {
	FlowID    uint32
	MSS       int
	SrcIP     packet.IPv4Addr
	DstIP     packet.IPv4Addr
	ClientMAC packet.MACAddr
	// Uplink marks a client→server flow (segments travel uplink, ACKs
	// downlink).
	Uplink bool
	// TotalSegments bounds the transfer (0 = unbounded bulk flow).
	TotalSegments uint32
	// OnComplete fires when a bounded transfer is fully acknowledged.
	OnComplete func(at sim.Time)
}

// TCPSender is a Reno-style sender operating in MSS-sized segment units.
// Sequence numbers count segments, not bytes; the wire packets carry
// MSS-byte payloads so airtime accounting is faithful.
type TCPSender struct {
	eng  *sim.Engine
	cfg  TCPConfig
	send SendFunc

	cwnd     float64 // congestion window, segments
	ssthresh float64
	sndUna   uint32 // oldest unacknowledged segment
	sndNxt   uint32 // next segment to send
	dupAcks  int

	srtt, rttvar sim.Time
	haveRTT      bool
	rto          sim.Time
	rtoTimer     sim.Timer
	backoff      int

	sentAt   map[uint32]sim.Time // send time per segment (cleared on rtx)
	ipid     uint16
	started  bool
	complete bool
	inFR     bool   // fast recovery
	recover  uint32 // NewReno recovery point (sndNxt at FR entry)

	// Stats.
	Sent        uint64
	Retransmits uint64
	Timeouts    uint64
	AckedSegs   uint32
	// CwndTrace records (time, cwnd) when enabled.
	TraceCwnd bool
	CwndTrace []CwndSample
}

// CwndSample is one recorded congestion-window value.
type CwndSample struct {
	At   sim.Time
	Cwnd float64
}

// NewTCPSender creates a sender; Start launches the flow.
func NewTCPSender(eng *sim.Engine, cfg TCPConfig, send SendFunc) *TCPSender {
	if cfg.MSS <= 0 {
		cfg.MSS = DefaultMSS
	}
	return &TCPSender{
		eng:      eng,
		cfg:      cfg,
		send:     send,
		cwnd:     10, // RFC 6928 initial window
		ssthresh: 64,
		rto:      InitialRTO,
		sentAt:   make(map[uint32]sim.Time),
	}
}

// Start begins transmission.
func (s *TCPSender) Start() {
	if s.started {
		return
	}
	s.started = true
	s.pump()
}

// Acked returns the number of cumulatively acknowledged segments.
func (s *TCPSender) Acked() uint32 { return s.sndUna }

// Cwnd returns the current congestion window in segments.
func (s *TCPSender) Cwnd() float64 { return s.cwnd }

// Complete reports whether a bounded transfer has finished.
func (s *TCPSender) Complete() bool { return s.complete }

// pump sends while the window allows.
func (s *TCPSender) pump() {
	if s.complete {
		return
	}
	limit := s.sndUna + uint32(s.cwnd)
	if w := s.sndUna + RcvWindow; w < limit {
		limit = w
	}
	if s.cfg.TotalSegments > 0 && limit > s.cfg.TotalSegments {
		limit = s.cfg.TotalSegments
	}
	for s.sndNxt < limit {
		s.emit(s.sndNxt, false)
		s.sndNxt++
	}
	s.armRTO()
}

func (s *TCPSender) emit(seq uint32, rtx bool) {
	p := &packet.Packet{
		FlowID:    s.cfg.FlowID,
		Seq:       seq,
		IPID:      s.ipid,
		SrcIP:     s.cfg.SrcIP,
		DstIP:     s.cfg.DstIP,
		ClientMAC: s.cfg.ClientMAC,
		Bytes:     s.cfg.MSS,
		Uplink:    s.cfg.Uplink,
		Created:   s.eng.Now(),
		Kind:      packet.KindData,
	}
	s.ipid++
	s.Sent++
	if rtx {
		s.Retransmits++
		delete(s.sentAt, seq) // Karn: no RTT sample from retransmission
	} else {
		s.sentAt[seq] = s.eng.Now()
	}
	s.send(p)
}

func (s *TCPSender) armRTO() {
	s.rtoTimer.Stop()
	if s.sndUna == s.sndNxt {
		return // nothing outstanding
	}
	s.rtoTimer = s.eng.After(s.rto, s.onRTO)
}

// onRTO is the retransmission timeout: Reno collapses to one segment.
func (s *TCPSender) onRTO() {
	if s.sndUna == s.sndNxt || s.complete {
		return
	}
	s.Timeouts++
	s.ssthresh = maxf(s.cwnd/2, 2)
	s.cwnd = 1
	s.dupAcks = 0
	s.inFR = false
	s.backoff++
	s.rto = minT(s.rto*2, MaxRTO)
	s.traceCwnd()
	s.emit(s.sndUna, true)
	// Go-back-N: everything past sndUna is treated as lost and will be
	// resent by pump as the window reopens (receiver-side reassembly
	// discards any duplicates that did survive).
	s.sndNxt = s.sndUna + 1
	s.armRTO()
}

// OnAck processes a cumulative acknowledgement for "next expected segment"
// ackSeq.
func (s *TCPSender) OnAck(ackSeq uint32, at sim.Time) {
	if s.complete {
		return
	}
	switch {
	case ackSeq > s.sndUna:
		// New data acknowledged.
		if t, ok := s.sentAt[ackSeq-1]; ok {
			s.sampleRTT(at - t)
		}
		for seq := s.sndUna; seq < ackSeq; seq++ {
			delete(s.sentAt, seq)
		}
		newly := ackSeq - s.sndUna
		s.sndUna = ackSeq
		s.AckedSegs = ackSeq
		s.dupAcks = 0
		s.backoff = 0
		if s.inFR {
			if ackSeq < s.recover {
				// NewReno partial ack: the next hole is lost too —
				// retransmit it immediately and stay in recovery.
				s.emit(ackSeq, true)
				s.armRTO()
				return
			}
			// Full ack: exit fast recovery.
			s.cwnd = s.ssthresh
			s.inFR = false
		} else if s.cwnd < s.ssthresh {
			s.cwnd += float64(newly) // slow start
		} else {
			s.cwnd += float64(newly) / s.cwnd // congestion avoidance
		}
		s.traceCwnd()
		if s.cfg.TotalSegments > 0 && s.sndUna >= s.cfg.TotalSegments {
			s.complete = true
			s.rtoTimer.Stop()
			if s.cfg.OnComplete != nil {
				s.cfg.OnComplete(at)
			}
			return
		}
		s.pump()
	case ackSeq == s.sndUna && s.sndNxt > s.sndUna:
		s.dupAcks++
		if s.dupAcks == 3 && !s.inFR {
			// Fast retransmit + fast recovery.
			s.ssthresh = maxf(s.cwnd/2, 2)
			s.cwnd = s.ssthresh
			s.inFR = true
			s.recover = s.sndNxt
			s.traceCwnd()
			s.emit(s.sndUna, true)
			s.armRTO()
		}
	}
}

func (s *TCPSender) sampleRTT(rtt sim.Time) {
	if rtt <= 0 {
		return
	}
	if !s.haveRTT {
		s.srtt = rtt
		s.rttvar = rtt / 2
		s.haveRTT = true
	} else {
		diff := s.srtt - rtt
		if diff < 0 {
			diff = -diff
		}
		s.rttvar = (3*s.rttvar + diff) / 4
		s.srtt = (7*s.srtt + rtt) / 8
	}
	s.rto = s.srtt + 4*s.rttvar
	if s.rto < MinRTO {
		s.rto = MinRTO
	}
}

func (s *TCPSender) traceCwnd() {
	if s.TraceCwnd {
		s.CwndTrace = append(s.CwndTrace, CwndSample{At: s.eng.Now(), Cwnd: s.cwnd})
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minT(a, b sim.Time) sim.Time {
	if a < b {
		return a
	}
	return b
}

// TCPReceiver reassembles the segment stream and emits cumulative ACKs back
// toward the sender.
type TCPReceiver struct {
	FlowID uint32
	// SendAck injects an ACK packet into the reverse path.
	SendAck SendFunc
	// AckTemplate provides addressing for generated ACKs.
	AckTemplate packet.Packet

	rcvNxt uint32
	ooo    map[uint32]bool
	ipid   uint16

	// Delivered counts in-order segments handed to the application.
	Delivered uint64
	// DeliveredBytes counts in-order payload bytes.
	DeliveredBytes uint64
	// OnDeliver observes each in-order segment (for app-layer models).
	OnDeliver func(seq uint32, bytes int, at sim.Time)
	// Progress records the in-order delivery frontier over time when
	// Record is set (rebuffer/page-load analysis).
	Record   bool
	Progress []ProgressSample
}

// ProgressSample is one (time, contiguous segments) point.
type ProgressSample struct {
	At   sim.Time
	Segs uint32
}

// OnPacket consumes one delivered data segment.
func (r *TCPReceiver) OnPacket(p *packet.Packet, at sim.Time) {
	if p.FlowID != r.FlowID || p.Kind != packet.KindData {
		return
	}
	if r.ooo == nil {
		r.ooo = make(map[uint32]bool)
	}
	if p.Seq >= r.rcvNxt && !r.ooo[p.Seq] {
		r.ooo[p.Seq] = true
	}
	// Advance the in-order frontier.
	advanced := false
	for r.ooo[r.rcvNxt] {
		delete(r.ooo, r.rcvNxt)
		r.Delivered++
		r.DeliveredBytes += uint64(p.Bytes)
		if r.OnDeliver != nil {
			r.OnDeliver(r.rcvNxt, p.Bytes, at)
		}
		r.rcvNxt++
		advanced = true
	}
	if advanced && r.Record {
		r.Progress = append(r.Progress, ProgressSample{At: at, Segs: r.rcvNxt})
	}
	r.ack(at)
}

// ack emits a cumulative acknowledgement.
func (r *TCPReceiver) ack(at sim.Time) {
	if r.SendAck == nil {
		return
	}
	p := r.AckTemplate // copy
	p.FlowID = r.FlowID
	p.Seq = r.rcvNxt
	p.IPID = r.ipid
	p.Bytes = AckBytes
	p.Kind = packet.KindAck
	p.Created = at
	r.ipid++
	r.SendAck(&p)
}

// NextExpected returns the receiver's in-order frontier.
func (r *TCPReceiver) NextExpected() uint32 { return r.rcvNxt }
