// Package transport provides the traffic endpoints the evaluation drives
// through the network: a constant-bit-rate UDP sender/receiver pair (the
// paper's iperf3 tests) and a Reno-flavoured TCP with slow start, fast
// retransmit/recovery, and exponential RTO backoff — enough machinery to
// reproduce the paper's TCP phenomenology (throughput collapse and timeout
// at a failed baseline handover, §5.2.1).
package transport

import (
	"wgtt/internal/packet"
	"wgtt/internal/sim"
)

// SendFunc injects a packet into the network (controller downlink entry or
// client uplink queue).
type SendFunc func(p *packet.Packet)

// UDPSender emits fixed-size datagrams at a constant bit rate.
type UDPSender struct {
	eng       *sim.Engine
	send      SendFunc
	flowID    uint32
	bytes     int
	interval  sim.Time
	seq       uint32
	ipid      uint16
	srcIP     packet.IPv4Addr
	dstIP     packet.IPv4Addr
	clientMAC packet.MACAddr
	uplink    bool
	timer     sim.Timer
	running   bool

	Sent uint64
}

// UDPConfig configures a CBR flow.
type UDPConfig struct {
	FlowID    uint32
	RateMbps  float64
	Bytes     int // datagram size (default 1400)
	SrcIP     packet.IPv4Addr
	DstIP     packet.IPv4Addr
	ClientMAC packet.MACAddr
	Uplink    bool
}

// NewUDPSender creates a CBR sender; call Start to begin.
func NewUDPSender(eng *sim.Engine, cfg UDPConfig, send SendFunc) *UDPSender {
	if cfg.Bytes <= 0 {
		cfg.Bytes = 1400
	}
	interval := sim.Time(float64(cfg.Bytes*8) / cfg.RateMbps * float64(sim.Microsecond))
	return &UDPSender{
		eng:       eng,
		send:      send,
		flowID:    cfg.FlowID,
		bytes:     cfg.Bytes,
		interval:  interval,
		srcIP:     cfg.SrcIP,
		dstIP:     cfg.DstIP,
		clientMAC: cfg.ClientMAC,
		uplink:    cfg.Uplink,
	}
}

// Start begins emission.
func (u *UDPSender) Start() {
	if u.running {
		return
	}
	u.running = true
	u.tick()
}

// Stop halts emission.
func (u *UDPSender) Stop() {
	u.running = false
	u.timer.Stop()
}

// Cursor returns the sender's next sequence number and IP ID. Together with
// Resume it lets a flow continue across simulations: when a metro client
// migrates between cells, the destination cell's sender resumes exactly
// where the source cell's stopped, so receiver-side loss accounting (which
// infers the horizon from the highest sequence seen) stays truthful.
func (u *UDPSender) Cursor() (seq uint32, ipid uint16) { return u.seq, u.ipid }

// Resume positions the sender at the given sequence/IP-ID cursor. Call
// before Start on a stopped sender.
func (u *UDPSender) Resume(seq uint32, ipid uint16) {
	u.seq = seq
	u.ipid = ipid
}

func (u *UDPSender) tick() {
	p := &packet.Packet{
		FlowID:    u.flowID,
		Seq:       u.seq,
		IPID:      u.ipid,
		SrcIP:     u.srcIP,
		DstIP:     u.dstIP,
		ClientMAC: u.clientMAC,
		Bytes:     u.bytes,
		Uplink:    u.uplink,
		Created:   u.eng.Now(),
	}
	u.seq++
	u.ipid++
	u.Sent++
	u.send(p)
	u.timer = u.eng.After(u.interval, u.tick)
}

// UDPReceiver counts and time-stamps datagram arrivals for one flow.
type UDPReceiver struct {
	FlowID   uint32
	Received uint64
	Bytes    uint64
	// Arrivals holds (time, seq) pairs when recording is enabled.
	Arrivals []Arrival
	Record   bool

	maxSeq   uint32
	sawAny   bool
	Reorders uint64
}

// Arrival is one recorded datagram arrival.
type Arrival struct {
	At  sim.Time
	Seq uint32
}

// OnPacket consumes one delivered datagram.
func (r *UDPReceiver) OnPacket(p *packet.Packet, at sim.Time) {
	if p.FlowID != r.FlowID {
		return
	}
	r.Received++
	r.Bytes += uint64(p.Bytes)
	if r.Record {
		r.Arrivals = append(r.Arrivals, Arrival{At: at, Seq: p.Seq})
	}
	if r.sawAny && p.Seq < r.maxSeq {
		r.Reorders++
	}
	if p.Seq > r.maxSeq || !r.sawAny {
		r.maxSeq = p.Seq
	}
	r.sawAny = true
}

// LossRate estimates the flow loss fraction from the highest sequence seen.
func (r *UDPReceiver) LossRate() float64 {
	if !r.sawAny || r.maxSeq == 0 {
		return 0
	}
	expect := uint64(r.maxSeq) + 1
	if r.Received >= expect {
		return 0
	}
	return float64(expect-r.Received) / float64(expect)
}
