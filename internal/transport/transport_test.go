package transport

import (
	"testing"

	"wgtt/internal/packet"
	"wgtt/internal/sim"
)

// pipe is a bidirectional delay/loss channel for transport tests.
type pipe struct {
	eng     *sim.Engine
	oneWay  sim.Time
	dropFwd func(seq uint32) bool // data direction
	dropRev func(seq uint32) bool // ack direction
	rx      *TCPReceiver
	tx      *TCPSender
}

func newPipe(eng *sim.Engine, oneWay sim.Time) *pipe { return &pipe{eng: eng, oneWay: oneWay} }

func (pp *pipe) wire(tx *TCPSender, rx *TCPReceiver) {
	pp.tx, pp.rx = tx, rx
}

func (pp *pipe) sendData(p *packet.Packet) {
	if pp.dropFwd != nil && pp.dropFwd(p.Seq) {
		return
	}
	cp := *p
	pp.eng.After(pp.oneWay, func() { pp.rx.OnPacket(&cp, pp.eng.Now()) })
}

func (pp *pipe) sendAck(p *packet.Packet) {
	if pp.dropRev != nil && pp.dropRev(p.Seq) {
		return
	}
	seq := p.Seq
	pp.eng.After(pp.oneWay, func() { pp.tx.OnAck(seq, pp.eng.Now()) })
}

func tcpPair(eng *sim.Engine, total uint32, oneWay sim.Time) (*TCPSender, *TCPReceiver, *pipe) {
	pp := newPipe(eng, oneWay)
	tx := NewTCPSender(eng, TCPConfig{FlowID: 1, TotalSegments: total}, pp.sendData)
	rx := &TCPReceiver{FlowID: 1, SendAck: pp.sendAck}
	pp.wire(tx, rx)
	return tx, rx, pp
}

func TestTCPLosslessTransfer(t *testing.T) {
	eng := sim.NewEngine()
	done := sim.Time(0)
	tx, rx, _ := tcpPair(eng, 500, 5*sim.Millisecond)
	tx.cfg.OnComplete = func(at sim.Time) { done = at }
	tx.Start()
	eng.RunUntil(30 * sim.Second)
	if !tx.Complete() {
		t.Fatalf("transfer incomplete: acked %d/500", tx.Acked())
	}
	if rx.Delivered != 500 {
		t.Errorf("receiver delivered %d", rx.Delivered)
	}
	if tx.Retransmits != 0 {
		t.Errorf("retransmissions on a lossless pipe: %d", tx.Retransmits)
	}
	if done == 0 {
		t.Error("OnComplete not invoked")
	}
	// Slow start should make this fast: 500 segments, RTT 10 ms, initial
	// window 10 ⇒ ~6 round trips ≈ 60–100 ms.
	if done > 300*sim.Millisecond {
		t.Errorf("transfer took %v", done)
	}
}

func TestTCPFastRetransmit(t *testing.T) {
	eng := sim.NewEngine()
	tx, rx, pp := tcpPair(eng, 200, 5*sim.Millisecond)
	dropped := false
	pp.dropFwd = func(seq uint32) bool {
		if seq == 50 && !dropped {
			dropped = true
			return true
		}
		return false
	}
	tx.Start()
	eng.RunUntil(30 * sim.Second)
	if !tx.Complete() {
		t.Fatalf("transfer incomplete: acked %d/200", tx.Acked())
	}
	if rx.Delivered != 200 {
		t.Errorf("delivered %d", rx.Delivered)
	}
	if tx.Retransmits == 0 {
		t.Error("no retransmission recorded")
	}
	if tx.Timeouts != 0 {
		t.Errorf("single loss should be repaired by fast retransmit, got %d timeouts", tx.Timeouts)
	}
}

func TestTCPTimeoutOnBlackout(t *testing.T) {
	eng := sim.NewEngine()
	tx, _, pp := tcpPair(eng, 0, 5*sim.Millisecond) // bulk flow
	blackout := false
	pp.dropFwd = func(uint32) bool { return blackout }
	tx.TraceCwnd = true
	tx.Start()
	eng.RunUntil(sim.Second)
	ackedBefore := tx.Acked()
	if ackedBefore == 0 {
		t.Fatal("flow never started")
	}
	// Total blackout for 5 s: RTO fires and backs off; cwnd pinned at 1.
	blackout = true
	eng.RunUntil(6 * sim.Second)
	if tx.Timeouts < 2 {
		t.Errorf("timeouts = %d during blackout", tx.Timeouts)
	}
	if tx.Cwnd() != 1 {
		t.Errorf("cwnd = %v during blackout, want 1", tx.Cwnd())
	}
	// Heal the path: the flow recovers (the WGTT case; the baseline in
	// Fig. 14 never heals within the drive).
	blackout = false
	eng.RunUntil(16 * sim.Second)
	if tx.Acked() <= ackedBefore {
		t.Error("flow did not recover after blackout ended")
	}
}

func TestTCPRTOBackoffGrowth(t *testing.T) {
	eng := sim.NewEngine()
	tx, _, pp := tcpPair(eng, 0, 5*sim.Millisecond)
	pp.dropFwd = func(uint32) bool { return true } // never deliver
	tx.Start()
	eng.RunUntil(20 * sim.Second)
	// 1s, 2s, 4s, 8s… ⇒ about 4–5 timeouts in 20 s.
	if tx.Timeouts < 3 || tx.Timeouts > 7 {
		t.Errorf("timeouts = %d in 20 s of blackout", tx.Timeouts)
	}
}

func TestTCPReceiverReordering(t *testing.T) {
	eng := sim.NewEngine()
	var acks []uint32
	rx := &TCPReceiver{FlowID: 1, SendAck: func(p *packet.Packet) { acks = append(acks, p.Seq) }}
	mk := func(seq uint32) *packet.Packet {
		return &packet.Packet{FlowID: 1, Seq: seq, Bytes: DefaultMSS, Kind: packet.KindData}
	}
	rx.OnPacket(mk(0), eng.Now())
	rx.OnPacket(mk(2), eng.Now()) // gap at 1
	rx.OnPacket(mk(3), eng.Now())
	if rx.NextExpected() != 1 {
		t.Fatalf("frontier = %d, want 1", rx.NextExpected())
	}
	// Duplicate ACKs for the gap.
	if acks[1] != 1 || acks[2] != 1 {
		t.Errorf("acks = %v, want dup acks at 1", acks)
	}
	rx.OnPacket(mk(1), eng.Now())
	if rx.NextExpected() != 4 {
		t.Errorf("frontier after fill = %d, want 4", rx.NextExpected())
	}
	if rx.Delivered != 4 {
		t.Errorf("delivered = %d", rx.Delivered)
	}
	// Duplicate data does not double-deliver.
	rx.OnPacket(mk(2), eng.Now())
	if rx.Delivered != 4 {
		t.Error("duplicate segment delivered twice")
	}
}

func TestTCPRTTEstimator(t *testing.T) {
	eng := sim.NewEngine()
	tx, _, _ := tcpPair(eng, 100, 20*sim.Millisecond)
	tx.Start()
	eng.RunUntil(10 * sim.Second)
	if !tx.haveRTT {
		t.Fatal("no RTT samples")
	}
	// RTT is 40 ms; srtt should be in that ballpark.
	if tx.srtt < 30*sim.Millisecond || tx.srtt > 80*sim.Millisecond {
		t.Errorf("srtt = %v, want ≈ 40 ms", tx.srtt)
	}
	if tx.rto != MinRTO {
		t.Errorf("rto = %v, want clamped to MinRTO", tx.rto)
	}
}

func TestUDPSenderRate(t *testing.T) {
	eng := sim.NewEngine()
	var got []*packet.Packet
	u := NewUDPSender(eng, UDPConfig{FlowID: 2, RateMbps: 11.2, Bytes: 1400},
		func(p *packet.Packet) { got = append(got, p) })
	u.Start()
	eng.RunUntil(sim.Second)
	u.Stop()
	// 11.2 Mb/s at 11200 bits/pkt = 1000 pkt/s.
	if len(got) < 990 || len(got) > 1010 {
		t.Errorf("sent %d packets in 1 s, want ≈ 1000", len(got))
	}
	// Sequences and IPIDs increment.
	if got[5].Seq != 5 || got[5].IPID != 5 {
		t.Error("sequence numbering wrong")
	}
	eng.RunUntil(2 * sim.Second)
	if u.Sent != uint64(len(got)) {
		t.Error("Stop did not halt emission")
	}
}

func TestUDPReceiverLoss(t *testing.T) {
	r := &UDPReceiver{FlowID: 2, Record: true}
	for _, seq := range []uint32{0, 1, 3, 4, 2, 9} {
		r.OnPacket(&packet.Packet{FlowID: 2, Seq: seq, Bytes: 1400}, sim.Time(seq)*sim.Millisecond)
	}
	if r.Received != 6 {
		t.Errorf("received = %d", r.Received)
	}
	// Highest seq 9 ⇒ 10 expected, 6 seen ⇒ 40% loss.
	if lr := r.LossRate(); lr < 0.39 || lr > 0.41 {
		t.Errorf("loss rate = %v", lr)
	}
	if r.Reorders != 1 {
		t.Errorf("reorders = %d", r.Reorders)
	}
	if len(r.Arrivals) != 6 {
		t.Error("arrivals not recorded")
	}
	// Foreign flows ignored.
	r.OnPacket(&packet.Packet{FlowID: 7, Seq: 100}, 0)
	if r.Received != 6 {
		t.Error("foreign flow counted")
	}
}

func TestTCPProgressRecording(t *testing.T) {
	eng := sim.NewEngine()
	tx, rx, _ := tcpPair(eng, 50, sim.Millisecond)
	rx.Record = true
	tx.Start()
	eng.RunUntil(5 * sim.Second)
	if len(rx.Progress) == 0 {
		t.Fatal("no progress samples")
	}
	last := rx.Progress[len(rx.Progress)-1]
	if last.Segs != 50 {
		t.Errorf("final frontier = %d", last.Segs)
	}
	// Monotone non-decreasing.
	for i := 1; i < len(rx.Progress); i++ {
		if rx.Progress[i].Segs < rx.Progress[i-1].Segs ||
			rx.Progress[i].At < rx.Progress[i-1].At {
			t.Fatal("progress not monotone")
		}
	}
}
