package selector

import (
	"math/rand/v2"
	"sort"
	"testing"

	"wgtt/internal/sim"
)

// refWindow is the pre-optimization implementation — slice eviction plus a
// copy+sort per median — kept as the golden reference for the incremental
// order-statistic window.
type refWindow struct {
	at   []sim.Time
	val  []float64
	span sim.Time
}

func (w *refWindow) push(at sim.Time, esnr float64) {
	w.at = append(w.at, at)
	w.val = append(w.val, esnr)
	w.evict(at)
}

func (w *refWindow) evict(now sim.Time) {
	cut := 0
	for cut < len(w.at) && w.at[cut] < now-w.span {
		cut++
	}
	if cut > 0 {
		w.at = append(w.at[:0], w.at[cut:]...)
		w.val = append(w.val[:0], w.val[cut:]...)
	}
}

func (w *refWindow) median(now sim.Time) (float64, bool) {
	w.evict(now)
	n := len(w.val)
	if n == 0 {
		return 0, false
	}
	scratch := make([]float64, n)
	copy(scratch, w.val)
	sort.Float64s(scratch)
	return scratch[n/2], true
}

// The incremental window must agree exactly with the sort-based reference
// under a randomized schedule of pushes, quiet gaps, and median queries —
// including windows that fully drain and duplicate values.
func TestWindowMatchesReference(t *testing.T) {
	rnd := rand.New(rand.NewPCG(41, 43))
	span := 10 * sim.Millisecond
	w := newWindow(span)
	ref := &refWindow{span: span}

	now := sim.Time(0)
	for i := 0; i < 20000; i++ {
		// Mostly dense arrivals; occasionally a gap long enough to drain
		// the whole window.
		switch rnd.IntN(20) {
		case 0:
			now += sim.Time(rnd.Int64N(int64(3 * span)))
		default:
			now += sim.Time(rnd.Int64N(int64(span / 8)))
		}
		// Quantized values force duplicates into the multiset.
		v := float64(rnd.IntN(64)) / 4
		w.push(now, v)
		ref.push(now, v)

		if w.size() != len(ref.val) {
			t.Fatalf("step %d: size %d, reference %d", i, w.size(), len(ref.val))
		}
		// Query at a probe time at or after the last push.
		probe := now + sim.Time(rnd.Int64N(int64(span/4)))
		gm, gok := w.median(probe)
		rm, rok := ref.median(probe)
		if gok != rok || gm != rm {
			t.Fatalf("step %d: median(%v) = (%v,%v), reference (%v,%v)", i, probe, gm, gok, rm, rok)
		}
		if gl, gok := w.lastHeard(); gok {
			if rl := ref.at[len(ref.at)-1]; gl != rl {
				t.Fatalf("step %d: lastHeard %v, reference %v", i, gl, rl)
			}
		} else if len(ref.at) != 0 {
			t.Fatalf("step %d: lastHeard empty, reference has %d", i, len(ref.at))
		}
	}
}

// A steady-state push+median cycle must not allocate once the window's
// buffers have reached their high-water capacity.
func TestWindowZeroAllocSteadyState(t *testing.T) {
	span := 10 * sim.Millisecond
	w := newWindow(span)
	now := sim.Time(0)
	step := 100 * sim.Microsecond
	val := func(i int) float64 { return float64(i%37) / 4 }
	for i := 0; i < 1024; i++ { // warm to steady size (~100 entries)
		now += step
		w.push(now, val(i))
		w.median(now)
	}
	i := 0
	if avg := testing.AllocsPerRun(500, func() {
		i++
		now += step
		w.push(now, val(i))
		if _, ok := w.median(now); !ok {
			t.Fatal("window drained unexpectedly")
		}
	}); avg != 0 {
		t.Errorf("steady-state push+median allocates %.2f times per sample, want 0", avg)
	}
}

func TestWindowMedianAndEviction(t *testing.T) {
	w := newWindow(10 * sim.Millisecond)
	if _, ok := w.median(0); ok {
		t.Error("empty window reported a median")
	}
	w.push(1*sim.Millisecond, 10)
	w.push(2*sim.Millisecond, 30)
	w.push(3*sim.Millisecond, 20)
	med, ok := w.median(3 * sim.Millisecond)
	if !ok || med != 20 {
		t.Errorf("median = %v, %v", med, ok)
	}
	// Paper's upper median for even counts: sorted[n/2].
	w.push(4*sim.Millisecond, 40)
	med, _ = w.median(4 * sim.Millisecond)
	if med != 30 {
		t.Errorf("even-count median = %v, want 30 (upper)", med)
	}
	// Everything slides out after 10 ms.
	if _, ok := w.median(20 * sim.Millisecond); ok {
		t.Error("stale window still reported a median")
	}
	if w.size() != 0 {
		t.Errorf("window not evicted, size=%d", w.size())
	}
}

func TestWindowLastHeard(t *testing.T) {
	w := newWindow(10 * sim.Millisecond)
	if _, ok := w.lastHeard(); ok {
		t.Error("empty window has lastHeard")
	}
	w.push(5*sim.Millisecond, 1)
	at, ok := w.lastHeard()
	if !ok || at != 5*sim.Millisecond {
		t.Errorf("lastHeard = %v, %v", at, ok)
	}
}

// Property: the window median matches a sort-based reference for random
// sample sets (upper median at even counts, like the paper's e_{L/2}).
func TestWindowMedianMatchesReference(t *testing.T) {
	rnd := sim.NewRNG(77).Stream("median")
	for trial := 0; trial < 200; trial++ {
		w := newWindow(sim.Second)
		n := 1 + rnd.IntN(40)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rnd.Float64()*40 - 10
			w.push(sim.Time(i)*sim.Millisecond, vals[i])
		}
		got, ok := w.median(sim.Time(n) * sim.Millisecond)
		if !ok {
			t.Fatal("median missing")
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		if want := sorted[n/2]; got != want {
			t.Fatalf("median = %v, want %v (n=%d)", got, want, n)
		}
	}
}

// The least-squares fit must recover an exact linear ramp's slope and
// extrapolate it to the horizon.
func TestWindowFitLinearRamp(t *testing.T) {
	w := newWindow(100 * sim.Millisecond)
	// ESNR falling 20 dB/s: y = 30 - 20 t.
	for i := 0; i <= 10; i++ {
		at := sim.Time(i) * 5 * sim.Millisecond
		w.push(at, 30-20*at.Seconds())
	}
	now := 50 * sim.Millisecond
	ref := now + 50*sim.Millisecond
	slope, pred, ok := w.fit(now, ref)
	if !ok {
		t.Fatal("fit failed on 11 samples")
	}
	if slope < -20.01 || slope > -19.99 {
		t.Errorf("slope = %v dB/s, want -20", slope)
	}
	want := 30 - 20*ref.Seconds()
	if pred < want-0.01 || pred > want+0.01 {
		t.Errorf("predicted = %v at %v, want %v", pred, ref, want)
	}
	// Degenerate cases: one sample, and all samples at one instant.
	w2 := newWindow(100 * sim.Millisecond)
	w2.push(sim.Millisecond, 5)
	if _, _, ok := w2.fit(sim.Millisecond, 2*sim.Millisecond); ok {
		t.Error("fit succeeded with one sample")
	}
	w2.push(sim.Millisecond, 7)
	if _, _, ok := w2.fit(sim.Millisecond, 2*sim.Millisecond); ok {
		t.Error("fit succeeded with zero time spread")
	}
}
