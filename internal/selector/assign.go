package selector

import (
	"sort"

	"wgtt/internal/metrics"
	"wgtt/internal/packet"
	"wgtt/internal/sim"
)

// GlobalAssign is the fleet-wide assignment policy (DESIGN.md §15; the
// SDN-style global AP selection of arXiv 2403.18745): instead of each
// client greedily taking its own argmax AP — which piles co-located
// clients onto the same picocell — the policy periodically recomputes one
// AP↔client assignment for the whole fleet, capping each AP at APBudget
// clients and giving each client's incumbent a StickinessDB scoring bonus
// to damp churn. Between rounds clients follow their assigned AP; clients
// the budget leaves unassigned stay where they are.
//
// Determinism: rounds are triggered lazily from Decide (no timers), so the
// recomputation instant is a deterministic function of the CSI arrival
// sequence; candidate scoring iterates clients in registration order and
// ties break by (client order, AP id).
type GlobalAssign struct {
	base
	cfg    Config
	nextAt sim.Time

	// pairs is the recomputation scratch (reused across rounds; the
	// Observe/Decide hot path between rounds is allocation-free).
	pairs []assignPair
	load  []int
}

// assignPair is one (client, AP) candidate in a recomputation round.
type assignPair struct {
	ci    int // index into base.order
	ap    int
	score float64
}

// Policy implements Selector.
func (s *GlobalAssign) Policy() Policy { return GlobalAssignPolicy }

// Decide implements Selector: trigger a reassignment round when due, then
// steer this client toward its assigned AP.
func (s *GlobalAssign) Decide(mac packet.MACAddr, serving int, now sim.Time, alive func(int) bool) Decision {
	cl := s.clients[mac]
	if cl == nil {
		return stay()
	}
	d := stay()
	if now >= s.nextAt {
		s.recompute(now, alive)
		s.nextAt = now + s.cfg.AssignPeriod
		d.NewRound = true
	}
	tgt := cl.assigned
	if tgt >= 0 && tgt != cl.lastBest {
		d.Flip = true
		cl.lastBest = tgt
	}
	if tgt < 0 || tgt == serving || !alive(tgt) {
		return d
	}
	med, ok := cl.windows[tgt].median(now)
	if !ok || med < s.p.MinSwitchESNRdB {
		return d // assignment evidence went stale; wait for the next round
	}
	servMed, servOK := cl.windows[serving].median(now)
	if !alive(serving) {
		servOK = false
	}
	if !servOK {
		servMed = 0
	}
	d.Target = tgt
	d.Cause = metrics.CauseGlobalAssign
	d.FromMetric = servMed
	d.ToMetric = med
	return d
}

// recompute runs one fleet-wide assignment round: score every usable
// (client, AP) pair by median ESNR (+StickinessDB for the incumbent),
// sort, and greedily assign under the per-AP budget. Clients the budget
// leaves out keep their serving AP.
func (s *GlobalAssign) recompute(now sim.Time, alive func(int) bool) {
	pairs := s.pairs[:0]
	for ci, mac := range s.order {
		cl := s.clients[mac]
		for ap, w := range cl.windows {
			if !alive(ap) {
				continue
			}
			med, ok := w.median(now)
			if !ok || (ap != cl.serving && w.size() < s.p.MinSamples) {
				continue
			}
			if ap != cl.serving && med < s.p.MinSwitchESNRdB {
				continue
			}
			score := med
			if ap == cl.serving {
				score += s.cfg.StickinessDB
			}
			pairs = append(pairs, assignPair{ci: ci, ap: ap, score: score})
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].score != pairs[j].score {
			return pairs[i].score > pairs[j].score
		}
		if pairs[i].ci != pairs[j].ci {
			return pairs[i].ci < pairs[j].ci
		}
		return pairs[i].ap < pairs[j].ap
	})
	s.pairs = pairs

	if cap(s.load) < s.numAPs {
		s.load = make([]int, s.numAPs)
	}
	load := s.load[:s.numAPs]
	for i := range load {
		load[i] = 0
	}
	for _, mac := range s.order {
		s.clients[mac].assigned = -1
	}
	assigned := 0
	for _, pr := range pairs {
		if assigned == len(s.order) {
			break
		}
		cl := s.clients[s.order[pr.ci]]
		if cl.assigned != -1 || load[pr.ap] >= s.cfg.APBudget {
			continue
		}
		cl.assigned = pr.ap
		load[pr.ap]++
		assigned++
	}
	// Unassigned clients (every usable AP at budget) stay put.
	for _, mac := range s.order {
		if cl := s.clients[mac]; cl.assigned == -1 {
			cl.assigned = cl.serving
		}
	}
}
