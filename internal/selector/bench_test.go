package selector

import (
	"testing"

	"wgtt/internal/sim"
)

// BenchmarkWindowMedian drives one (client, AP) ESNR window the way the
// controller's CSI ingest does: one push plus one median query per report,
// with a ~100-entry steady-state window (10 ms span, 100 µs inter-report
// spacing).
func BenchmarkWindowMedian(b *testing.B) {
	w := newWindow(10 * sim.Millisecond)
	vals := [16]float64{21, 18.5, 23, 19, 25.5, 17, 22, 24, 20, 18, 26, 21.5, 19.5, 23.5, 20.5, 22.5}
	at := sim.Time(0)
	for i := 0; i < 128; i++ { // warm to steady state
		at += 100 * sim.Microsecond
		w.push(at, vals[i&15])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at += 100 * sim.Microsecond
		w.push(at, vals[i&15])
		if _, ok := w.median(at); !ok {
			b.Fatal("empty window")
		}
	}
}
