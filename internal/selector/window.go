package selector

import (
	"sort"

	"wgtt/internal/sim"
)

// esnrWindow is a time-bounded deque of ESNR readings for one client-AP
// link: the short-term history E(a) of §3.1.1. It lives here, with the
// selection policies, because the window *is* the evidence every policy
// decides on — the controller only routes CSI into it (selector.go).
//
// Every CSI report triggers a median query (the selection rule re-evaluates
// on each report), so the window keeps an incrementally maintained sorted
// copy of the in-window values: push and evict adjust it by binary-search
// insert/remove (an O(n) memmove over ~100 float64s — a few cache lines),
// and median is an O(1) index. The historical copy+sort.Float64s per query
// did the same work at O(n log n) with an allocation per call.
type esnrWindow struct {
	// at/val hold the readings in arrival order starting at index head
	// (entries before head are evicted; compaction keeps the dead prefix
	// bounded, amortized O(1) per eviction).
	at   []sim.Time
	val  []float64
	head int

	// sorted is the multiset of in-window values in ascending order.
	sorted []float64

	span sim.Time
}

func newWindow(span sim.Time) *esnrWindow { return &esnrWindow{span: span} }

// push appends a reading and evicts everything older than the span.
func (w *esnrWindow) push(at sim.Time, esnr float64) {
	w.at = append(w.at, at)
	w.val = append(w.val, esnr)
	w.insertSorted(esnr)
	w.evict(at)
}

func (w *esnrWindow) insertSorted(v float64) {
	i := sort.SearchFloat64s(w.sorted, v)
	w.sorted = append(w.sorted, 0)
	copy(w.sorted[i+1:], w.sorted[i:])
	w.sorted[i] = v
}

func (w *esnrWindow) removeSorted(v float64) {
	// v was previously inserted, so the leftmost position with sorted[i] ≥ v
	// holds exactly v.
	i := sort.SearchFloat64s(w.sorted, v)
	w.sorted = append(w.sorted[:i], w.sorted[i+1:]...)
}

func (w *esnrWindow) evict(now sim.Time) {
	for w.head < len(w.at) && w.at[w.head] < now-w.span {
		w.removeSorted(w.val[w.head])
		w.head++
	}
	// Compact once the dead prefix reaches half the slice, so the copy cost
	// is covered by the evictions that built the prefix.
	if w.head > 0 && w.head*2 >= len(w.at) {
		n := copy(w.at, w.at[w.head:])
		copy(w.val, w.val[w.head:])
		w.at = w.at[:n]
		w.val = w.val[:n]
		w.head = 0
	}
}

// median returns the median ESNR of the in-window readings and whether the
// window holds any samples as of now.
func (w *esnrWindow) median(now sim.Time) (float64, bool) {
	w.evict(now)
	n := len(w.sorted)
	if n == 0 {
		return 0, false
	}
	// The paper indexes the sorted sequence at L/2; for even n this is the
	// upper median, which we reproduce exactly.
	return w.sorted[n/2], true
}

// lastHeard returns the time of the most recent reading (0, false if none).
func (w *esnrWindow) lastHeard() (sim.Time, bool) {
	if w.head == len(w.at) {
		return 0, false
	}
	return w.at[len(w.at)-1], true
}

// size returns the number of buffered readings.
func (w *esnrWindow) size() int { return len(w.at) - w.head }

// fit computes the least-squares line through the in-window readings
// (Predictive's trajectory model): slope in dB/s and the predicted ESNR at
// the reference time ref. ok is false with fewer than two samples or a
// degenerate time spread. Evicts first, like median.
func (w *esnrWindow) fit(now sim.Time, ref sim.Time) (slope, predicted float64, ok bool) {
	w.evict(now)
	n := w.size()
	if n < 2 {
		return 0, 0, false
	}
	t0 := w.at[w.head]
	var sx, sy float64
	for i := w.head; i < len(w.at); i++ {
		sx += (w.at[i] - t0).Seconds()
		sy += w.val[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var sxx, sxy float64
	for i := w.head; i < len(w.at); i++ {
		dx := (w.at[i] - t0).Seconds() - mx
		sxx += dx * dx
		sxy += dx * (w.val[i] - my)
	}
	if sxx == 0 {
		return 0, 0, false
	}
	slope = sxy / sxx
	predicted = my + slope*((ref-t0).Seconds()-mx)
	return slope, predicted, true
}
