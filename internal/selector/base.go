package selector

import (
	"wgtt/internal/metrics"
	"wgtt/internal/packet"
	"wgtt/internal/sim"
)

// base is the state every policy shares: one §3.1.1 median window per
// (client, AP) link, the client registration order (whole-fleet sweeps
// iterate the slice, never the map — map order would break run-to-run
// determinism), and the per-client argmax memory behind the
// selection-flips metric. Because the evidence store is common, the
// federation layer's Median export and SeedESNR→Observe import behave
// identically under every policy.
type base struct {
	p       Params
	numAPs  int
	clients map[packet.MACAddr]*clientState
	order   []packet.MACAddr

	// histSpan > 0 additionally maintains a longer fitting window per
	// link (the Predictive policy's trajectory history).
	histSpan sim.Time
}

// clientState is one client's selection evidence.
type clientState struct {
	windows []*esnrWindow // indexed by AP id
	hist    []*esnrWindow // trajectory-fit windows (nil unless histSpan > 0)
	serving int
	// lastBest is the previous decision's preferred AP (-1 before any),
	// the reference point for Decision.Flip.
	lastBest int
	// assigned is GlobalAssign's current target for this client
	// (-1 before the first round).
	assigned int
}

func newBase(p Params, numAPs int) base {
	return base{
		p:       p,
		numAPs:  numAPs,
		clients: make(map[packet.MACAddr]*clientState),
	}
}

func (b *base) AddClient(mac packet.MACAddr, serving int) {
	cl := &clientState{
		windows:  make([]*esnrWindow, b.numAPs),
		serving:  serving,
		lastBest: -1,
		assigned: -1,
	}
	for i := range cl.windows {
		cl.windows[i] = newWindow(b.p.Window)
	}
	if b.histSpan > 0 {
		cl.hist = make([]*esnrWindow, b.numAPs)
		for i := range cl.hist {
			cl.hist[i] = newWindow(b.histSpan)
		}
	}
	if _, ok := b.clients[mac]; !ok {
		b.order = append(b.order, mac)
	}
	b.clients[mac] = cl
}

func (b *base) RemoveClient(mac packet.MACAddr) {
	if _, ok := b.clients[mac]; !ok {
		return
	}
	delete(b.clients, mac)
	for i, m := range b.order {
		if m == mac {
			b.order = append(b.order[:i], b.order[i+1:]...)
			break
		}
	}
}

func (b *base) SetServing(mac packet.MACAddr, ap int) {
	if cl := b.clients[mac]; cl != nil {
		cl.serving = ap
	}
}

func (b *base) ResetClient(mac packet.MACAddr) {
	cl := b.clients[mac]
	if cl == nil {
		return
	}
	for i := range cl.windows {
		cl.windows[i] = newWindow(b.p.Window)
	}
	for i := range cl.hist {
		cl.hist[i] = newWindow(b.histSpan)
	}
	cl.lastBest = -1
	cl.assigned = -1
}

func (b *base) Observe(mac packet.MACAddr, ap int, esnrDB float64, at sim.Time) int {
	cl := b.clients[mac]
	if cl == nil || ap < 0 || ap >= len(cl.windows) {
		return 0
	}
	cl.windows[ap].push(at, esnrDB)
	if cl.hist != nil {
		cl.hist[ap].push(at, esnrDB)
	}
	return cl.windows[ap].size()
}

func (b *base) Median(mac packet.MACAddr, ap int, now sim.Time) (float64, bool) {
	cl := b.clients[mac]
	if cl == nil || ap < 0 || ap >= len(cl.windows) {
		return 0, false
	}
	return cl.windows[ap].median(now)
}

func (b *base) BestAlive(mac packet.MACAddr, now sim.Time, alive func(int) bool) int {
	cl := b.clients[mac]
	if cl == nil {
		return -1
	}
	best, bestMed := -1, 0.0
	for id, w := range cl.windows {
		if !alive(id) {
			continue
		}
		med, ok := w.median(now)
		if !ok {
			continue
		}
		if best == -1 || med > bestMed {
			best, bestMed = id, med
		}
	}
	return best
}

// decideMedian is the §3.1.1 rule shared by WindowedMedian (its whole
// decision) and Predictive (its base case): maximal windowed median over
// alive APs, with the MinSamples gate exempting the serving AP, the
// MinSwitchESNRdB usability floor, and the incumbent-defense margin. A
// dead incumbent defends nothing, however fresh its window looks.
func (b *base) decideMedian(cl *clientState, serving int, now sim.Time, alive func(int) bool) Decision {
	d := stay()
	best, bestMed := -1, 0.0
	for id, w := range cl.windows {
		if !alive(id) {
			continue // dead APs are not selection candidates
		}
		med, ok := w.median(now)
		if !ok || (id != serving && w.size() < b.p.MinSamples) {
			continue
		}
		if best == -1 || med > bestMed {
			best, bestMed = id, med
		}
	}
	if best != -1 && best != cl.lastBest {
		// The argmax moved — selection churn, whether or not the gates
		// below let it become a switch.
		d.Flip = true
		cl.lastBest = best
	}
	if best == -1 || best == serving {
		return d
	}
	if bestMed < b.p.MinSwitchESNRdB {
		return d // nobody usable; switching would just churn
	}
	servMed, servOK := cl.windows[serving].median(now)
	if !alive(serving) {
		servOK = false
	}
	if servOK && bestMed < servMed+b.p.MedianMarginDB {
		return d
	}
	if !servOK {
		servMed = 0
	}
	d.Target = best
	d.Cause = metrics.CauseMedianArgmax
	d.FromMetric = servMed
	d.ToMetric = bestMed
	return d
}
