package selector

import (
	"wgtt/internal/metrics"
	"wgtt/internal/packet"
	"wgtt/internal/sim"
)

// Predictive is the trajectory-forecasting policy (DESIGN.md §15; the
// handover-prediction idea of arXiv 2111.13879 reduced to a linear model):
// alongside each §3.1.1 median window it keeps a longer fitting window per
// (client, AP) link and extrapolates a least-squares line Horizon into the
// future. Whenever the median rule would stay put but the serving AP's
// ESNR is falling, it switches early to the challenger predicted to be
// best at the horizon — cutting the lag between the ground-truth best AP
// changing and the client actually moving, at the cost of occasionally
// jumping before the fade it predicted materializes.
//
// The base median rule still runs first and wins when it fires: Predictive
// only adds switches, never suppresses one, so its worst case degrades to
// WindowedMedian plus early (possibly premature) moves.
type Predictive struct {
	base
	cfg Config
}

// Policy implements Selector.
func (s *Predictive) Policy() Policy { return PredictivePolicy }

// Decide implements Selector: the §3.1.1 rule first, then the early-switch
// forecast when the median rule stays put.
func (s *Predictive) Decide(mac packet.MACAddr, serving int, now sim.Time, alive func(int) bool) Decision {
	cl := s.clients[mac]
	if cl == nil {
		return stay()
	}
	d := s.decideMedian(cl, serving, now, alive)
	if d.Target != -1 {
		return d // the base rule already switches; nothing to anticipate
	}
	if !alive(serving) {
		return d // failover territory, not forecasting
	}
	horizon := now + s.cfg.Horizon
	servSlope, servPred, ok := cl.hist[serving].fit(now, horizon)
	if !ok || servSlope >= 0 {
		return d // serving link steady or improving — no collapse to beat
	}
	if servPred >= s.cfg.CollapseDB {
		// Falling but still predicted usable at the horizon: a premature
		// jump would trade a working link for a forecast. Wait.
		return d
	}
	// Find the challenger with the best predicted ESNR at the horizon,
	// under the same evidence gates the median rule applies: enough fresh
	// in-window samples and a usable current median.
	best, bestPred := -1, 0.0
	for id := range cl.windows {
		if id == serving || !alive(id) {
			continue
		}
		med, ok := cl.windows[id].median(now)
		if !ok || cl.windows[id].size() < s.p.MinSamples {
			continue
		}
		if med < s.p.MinSwitchESNRdB {
			continue
		}
		pred := med
		if _, p, ok := cl.hist[id].fit(now, horizon); ok {
			pred = p
		}
		if best == -1 || pred > bestPred {
			best, bestPred = id, pred
		}
	}
	if best == -1 || bestPred < servPred+s.cfg.PredictMarginDB {
		return d
	}
	d.Target = best
	d.Cause = metrics.CausePredictedCollapse
	d.FromMetric = servPred
	d.ToMetric = bestPred
	d.Early = true
	return d
}
