package selector

import (
	"wgtt/internal/packet"
	"wgtt/internal/sim"
)

// WindowedMedian is the paper's §3.1.1 selection rule, verbatim: on every
// evaluation pick the alive AP with the maximal windowed median ESNR, gated
// by MinSamples (challengers only), MinSwitchESNRdB, and the incumbent-
// defense margin. It is the default policy and is pinned byte-identical to
// the pre-extraction inline controller logic by the equivalence test and
// the regenerated experiment outputs.
type WindowedMedian struct {
	base
}

// Policy implements Selector.
func (s *WindowedMedian) Policy() Policy { return WindowedMedianPolicy }

// Decide implements Selector: the pure §3.1.1 median rule.
func (s *WindowedMedian) Decide(mac packet.MACAddr, serving int, now sim.Time, alive func(int) bool) Decision {
	cl := s.clients[mac]
	if cl == nil {
		return stay()
	}
	return s.decideMedian(cl, serving, now, alive)
}
