package selector

import (
	"math/rand/v2"
	"testing"

	"wgtt/internal/metrics"
	"wgtt/internal/packet"
	"wgtt/internal/sim"
)

func allAlive(int) bool { return true }

func testParams() Params {
	return Params{
		Window:          10 * sim.Millisecond,
		MedianMarginDB:  0,
		MinSamples:      2,
		MinSwitchESNRdB: -5,
	}
}

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		in   string
		want Policy
		err  bool
	}{
		{"", WindowedMedianPolicy, false},
		{"windowed-median", WindowedMedianPolicy, false},
		{"predictive", PredictivePolicy, false},
		{"global-assign", GlobalAssignPolicy, false},
		{"oracle", "", true},
		{"Windowed-Median", "", true},
	}
	for _, c := range cases {
		got, err := ParsePolicy(c.in)
		if c.err != (err != nil) || got != c.want {
			t.Errorf("ParsePolicy(%q) = %q, %v; want %q, err=%v", c.in, got, err, c.want, c.err)
		}
	}
	if got := Policies(); len(got) != 3 {
		t.Fatalf("Policies() = %v, want 3 entries", got)
	}
}

// refSelect is an independent coding of the controller's pre-refactor
// inline §3.1.1 selection block, running on the sort-based reference
// windows. The extracted WindowedMedian policy must agree with it decision
// for decision — target, cause, metrics, and flip tracking — under a
// randomized CSI schedule.
type refSelect struct {
	p        Params
	windows  []*refWindow
	lastBest int
}

func newRefSelect(p Params, numAPs int) *refSelect {
	r := &refSelect{p: p, windows: make([]*refWindow, numAPs), lastBest: -1}
	for i := range r.windows {
		r.windows[i] = &refWindow{span: p.Window}
	}
	if r.p.MinSamples < 1 {
		r.p.MinSamples = 1
	}
	return r
}

func (r *refSelect) decide(serving int, now sim.Time, alive func(int) bool) Decision {
	d := Decision{Target: -1}
	best, bestMed := -1, 0.0
	for id, w := range r.windows {
		if !alive(id) {
			continue
		}
		med, ok := w.median(now)
		if !ok || (id != serving && len(w.val) < r.p.MinSamples) {
			continue
		}
		if best == -1 || med > bestMed {
			best, bestMed = id, med
		}
	}
	if best != -1 && best != r.lastBest {
		d.Flip = true
		r.lastBest = best
	}
	if best == -1 || best == serving {
		return d
	}
	if bestMed < r.p.MinSwitchESNRdB {
		return d
	}
	servMed, servOK := r.windows[serving].median(now)
	if !alive(serving) {
		servOK = false
	}
	if servOK && bestMed < servMed+r.p.MedianMarginDB {
		return d
	}
	if !servOK {
		servMed = 0
	}
	d.Target = best
	d.Cause = metrics.CauseMedianArgmax
	d.FromMetric = servMed
	d.ToMetric = bestMed
	return d
}

// Randomized equivalence: the extracted WindowedMedian policy against the
// independent reference rule, with CSI arrivals, quiet gaps, serving-AP
// moves, AP deaths, and evidence resets interleaved.
func TestWindowedMedianMatchesInlineReference(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		rnd := rand.New(rand.NewPCG(seed, 17))
		const nAPs = 5
		p := testParams()
		mac := packet.ClientMAC(1)
		sel := New(Config{}, p, nAPs)
		sel.AddClient(mac, 0)
		ref := newRefSelect(p, nAPs)
		serving := 0
		dead := make([]bool, nAPs)
		alive := func(id int) bool { return !dead[id] }

		now := sim.Time(0)
		for step := 0; step < 5000; step++ {
			switch op := rnd.IntN(100); {
			case op < 60: // CSI from a random AP
				ap := rnd.IntN(nAPs)
				esnr := -10 + 40*rnd.Float64()
				sel.Observe(mac, ap, esnr, now)
				ref.windows[ap].push(now, esnr)
			case op < 80: // time passes
				now += sim.Time(rnd.IntN(6)) * sim.Millisecond
			case op < 88: // AP dies or recovers
				dead[rnd.IntN(nAPs)] = rnd.IntN(2) == 0
			case op < 95: // decide (and act on the verdict)
				got := sel.Decide(mac, serving, now, alive)
				want := ref.decide(serving, now, alive)
				if got != want {
					t.Fatalf("seed %d step %d: Decide = %+v, reference = %+v",
						seed, step, got, want)
				}
				if got.Target >= 0 {
					serving = got.Target
					sel.SetServing(mac, serving)
				}
			default: // controller restart: evidence resets
				sel.ResetClient(mac)
				for i := range ref.windows {
					ref.windows[i] = &refWindow{span: p.Window}
				}
				ref.lastBest = -1
			}
			now += 50 * sim.Microsecond
		}
	}
}

// feedRamp pushes a linear ESNR ramp into one (client, AP) link at a fixed
// reporting period.
func feedRamp(sel Selector, mac packet.MACAddr, ap int, from, to sim.Time,
	startDB, slopeDBPerSec float64) {
	for at := from; at <= to; at += sim.Millisecond {
		esnr := startDB + slopeDBPerSec*(at-from).Seconds()
		sel.Observe(mac, ap, esnr, at)
	}
}

// Predictive must fire the switch while the serving AP's median still wins
// — strictly before the §3.1.1 rule would move — when the serving link is
// collapsing and the challenger is rising.
func TestPredictiveSwitchesBeforeMedianCrossover(t *testing.T) {
	p := testParams()
	mac := packet.ClientMAC(1)
	med := New(Config{}, p, 2)
	pred := New(Config{Policy: PredictivePolicy}, p, 2)
	for _, s := range []Selector{med, pred} {
		s.AddClient(mac, 0)
	}

	// Serving AP 0 falls 200 dB/s from 20 dB; challenger AP 1 rises
	// 200 dB/s from 10 dB. Medians cross at ~25 ms; the predictor should
	// move as soon as the extrapolated gap exceeds its margin.
	var medAt, predAt sim.Time = -1, -1
	for at := sim.Time(0); at <= 60*sim.Millisecond; at += sim.Millisecond {
		for _, s := range []Selector{med, pred} {
			s.Observe(mac, 0, 20-200*at.Seconds(), at)
			s.Observe(mac, 1, 10+200*at.Seconds(), at)
		}
		if medAt < 0 {
			if d := med.Decide(mac, 0, at, allAlive); d.Target == 1 {
				medAt = at
			}
		}
		if predAt < 0 {
			d := pred.Decide(mac, 0, at, allAlive)
			if d.Target == 1 {
				predAt = at
				if !d.Early || d.Cause != metrics.CausePredictedCollapse {
					t.Fatalf("predictive switch not marked early: %+v", d)
				}
				if d.ToMetric < d.FromMetric+1.0 {
					t.Fatalf("predicted gap below margin: %+v", d)
				}
			}
		}
	}
	if medAt < 0 || predAt < 0 {
		t.Fatalf("no switch: median at %v, predictive at %v", medAt, predAt)
	}
	if predAt >= medAt {
		t.Fatalf("predictive switched at %v, not before the median rule's %v", predAt, medAt)
	}
}

// When the §3.1.1 rule itself fires, Predictive must return exactly its
// verdict — the forecast only adds switches, never changes one.
func TestPredictiveDefersToMedianRule(t *testing.T) {
	p := testParams()
	mac := packet.ClientMAC(1)
	med := New(Config{}, p, 3)
	pred := New(Config{Policy: PredictivePolicy}, p, 3)
	rnd := rand.New(rand.NewPCG(7, 9))
	for _, s := range []Selector{med, pred} {
		s.AddClient(mac, 0)
	}
	now := sim.Time(0)
	for step := 0; step < 3000; step++ {
		ap := rnd.IntN(3)
		esnr := -10 + 40*rnd.Float64()
		med.Observe(mac, ap, esnr, now)
		pred.Observe(mac, ap, esnr, now)
		dm := med.Decide(mac, 0, now, allAlive)
		dp := pred.Decide(mac, 0, now, allAlive)
		if dm.Target != -1 && dp != dm {
			t.Fatalf("step %d: median rule fired %+v but predictive returned %+v", step, dm, dp)
		}
		now += 200 * sim.Microsecond
	}
}

// GlobalAssign must spread clients across APs under the per-AP budget even
// when one AP is everyone's argmax, and it must leave a client on its
// serving AP when the budget squeezes it out entirely.
func TestGlobalAssignRespectsBudget(t *testing.T) {
	p := testParams()
	cfg := Config{Policy: GlobalAssignPolicy, APBudget: 1, StickinessDB: 0.1}
	sel := New(cfg, p, 3)
	macs := []packet.MACAddr{packet.ClientMAC(1), packet.ClientMAC(2), packet.ClientMAC(3)}
	for _, m := range macs {
		sel.AddClient(m, 0)
	}
	// AP 0 is best for everyone; APs 1 and 2 are usable but worse.
	now := sim.Time(0)
	for i := 0; i < 20; i++ {
		for _, m := range macs {
			sel.Observe(m, 0, 30, now)
			sel.Observe(m, 1, 20, now)
			sel.Observe(m, 2, 10, now)
		}
		now += 500 * sim.Microsecond
	}
	serving := map[packet.MACAddr]int{macs[0]: 0, macs[1]: 0, macs[2]: 0}
	var rounds int
	targets := make(map[packet.MACAddr]int)
	for _, m := range macs {
		d := sel.Decide(m, serving[m], now, allAlive)
		if d.NewRound {
			rounds++
		}
		targets[m] = d.Target
		if d.Target >= 0 {
			if d.Cause != metrics.CauseGlobalAssign {
				t.Fatalf("cause = %q, want %q", d.Cause, metrics.CauseGlobalAssign)
			}
			serving[m] = d.Target
			sel.SetServing(m, d.Target)
		}
	}
	if rounds != 1 {
		t.Fatalf("assignment rounds = %d, want exactly 1 (lazy trigger)", rounds)
	}
	// Budget 1: exactly one client keeps AP 0 (stays, Target -1), the other
	// two are pushed to APs 1 and 2.
	assigned := map[int]int{}
	for _, m := range macs {
		assigned[serving[m]]++
	}
	for ap, n := range assigned {
		if n > 1 {
			t.Fatalf("AP %d assigned %d clients, budget is 1 (targets %v)", ap, n, targets)
		}
	}
	if len(assigned) != 3 {
		t.Fatalf("clients not spread: serving map %v", serving)
	}
}

// A recomputation round is triggered lazily by the first Decide past the
// period boundary, and between rounds clients follow the stored assignment
// without re-sorting.
func TestGlobalAssignPeriodicRounds(t *testing.T) {
	p := testParams()
	cfg := Config{Policy: GlobalAssignPolicy, AssignPeriod: 10 * sim.Millisecond}
	sel := New(cfg, p, 2)
	mac := packet.ClientMAC(1)
	sel.AddClient(mac, 0)
	rounds := 0
	now := sim.Time(0)
	for ; now < 35*sim.Millisecond; now += sim.Millisecond {
		sel.Observe(mac, 0, 20, now)
		sel.Observe(mac, 1, 15, now)
		if d := sel.Decide(mac, 0, now, allAlive); d.NewRound {
			rounds++
		}
	}
	if rounds != 4 {
		t.Fatalf("rounds in 35 ms at a 10 ms period = %d, want 4", rounds)
	}
}

// The Observe+Decide hot path must be allocation-free at steady state for
// every policy — the controller calls it per CSI report.
func TestSelectorZeroAllocSteadyState(t *testing.T) {
	for _, pol := range Policies() {
		t.Run(string(pol), func(t *testing.T) {
			p := testParams()
			sel := New(Config{Policy: pol}, p, 8)
			mac := packet.ClientMAC(1)
			sel.AddClient(mac, 0)
			now := sim.Time(0)
			vals := [4]float64{21, 18, 24, 19}
			warm := func(n int) {
				for i := 0; i < n; i++ {
					now += 100 * sim.Microsecond
					sel.Observe(mac, i%8, vals[i&3], now)
					_ = sel.Decide(mac, 0, now, allAlive)
				}
			}
			warm(512) // fill windows, run assignment rounds, size scratch
			allocs := testing.AllocsPerRun(200, func() { warm(1) })
			if allocs != 0 {
				t.Fatalf("%s Observe+Decide allocates %.1f/op at steady state, want 0", pol, allocs)
			}
		})
	}
}

// BenchmarkSelectorDecide measures one Observe+Decide round trip per
// policy against an 8-AP deployment at vehicular CSI rates.
func BenchmarkSelectorDecide(b *testing.B) {
	for _, pol := range Policies() {
		b.Run(string(pol), func(b *testing.B) {
			p := testParams()
			sel := New(Config{Policy: pol}, p, 8)
			mac := packet.ClientMAC(1)
			sel.AddClient(mac, 0)
			now := sim.Time(0)
			vals := [4]float64{21, 18, 24, 19}
			for i := 0; i < 512; i++ {
				now += 100 * sim.Microsecond
				sel.Observe(mac, i%8, vals[i&3], now)
				_ = sel.Decide(mac, 0, now, allAlive)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				now += 100 * sim.Microsecond
				sel.Observe(mac, i%8, vals[i&3], now)
				_ = sel.Decide(mac, 0, now, allAlive)
			}
		})
	}
}
