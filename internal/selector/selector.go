// Package selector holds the controller's pluggable AP-selection policies:
// the paper's windowed-median maximal rule (§3.1.1) plus two extensions —
// predictive handover, which fits per-AP ESNR trajectories and fires the
// §3.1.2 stop→start→ack switch ahead of signal collapse, and global
// assignment, which replaces greedy per-client argmax with a periodic
// fleet-wide AP↔client assignment under per-AP budgets.
//
// The controller owns *when* a client is evaluated — the one-outstanding-
// switch, frozen-during-handoff, and hysteresis gates all stay in
// internal/controller — and the Selector owns *what the evidence says*: it
// ingests every ESNR observation via Observe and answers Decide with a
// target AP and the cause to record on the switch span. All policies keep
// the same per-(client, AP) median windows, so the federation layer's
// evidence export (MedianESNR) and import (SeedESNR → Observe) work
// identically whichever policy a domain runs (DESIGN.md §15).
//
// Determinism contract: selectors are called from the single
// controller goroutine, never read wall-clock time or randomness, and
// iterate clients in registration order — the fleet's byte-identical-
// reports-for-any-worker-count property does not depend on the policy
// chosen.
package selector

import (
	"fmt"

	"wgtt/internal/packet"
	"wgtt/internal/sim"
)

// Policy names an AP-selection policy.
type Policy string

// The three policies (DESIGN.md §15).
const (
	// WindowedMedianPolicy is the paper's §3.1.1 rule: argmax over
	// per-AP windowed median ESNR, with margin and sample-count gates.
	WindowedMedianPolicy Policy = "windowed-median"
	// PredictivePolicy extends the median rule with a linear trajectory
	// fit per AP; it switches early when the serving AP's ESNR is
	// falling and a challenger is predicted to be better at the horizon.
	PredictivePolicy Policy = "predictive"
	// GlobalAssignPolicy recomputes a fleet-wide AP↔client assignment
	// every AssignPeriod under a per-AP client budget, trading a little
	// per-client ESNR for bounded per-AP load.
	GlobalAssignPolicy Policy = "global-assign"
)

// ParsePolicy maps a CLI flag value to a Policy; "" selects the default
// windowed-median rule.
func ParsePolicy(s string) (Policy, error) {
	switch Policy(s) {
	case "", WindowedMedianPolicy:
		return WindowedMedianPolicy, nil
	case PredictivePolicy:
		return PredictivePolicy, nil
	case GlobalAssignPolicy:
		return GlobalAssignPolicy, nil
	}
	return "", fmt.Errorf("unknown selection policy %q (want %s, %s or %s)",
		s, WindowedMedianPolicy, PredictivePolicy, GlobalAssignPolicy)
}

// Policies lists every selectable policy in documentation order.
func Policies() []Policy {
	return []Policy{WindowedMedianPolicy, PredictivePolicy, GlobalAssignPolicy}
}

// Params carries the base §3.1.1 windowed-median parameters. They live in
// controller.Config (Window, MedianMarginDB, MinSamples, MinSwitchESNRdB
// are swept by the Fig. 21/22 experiments) and are handed to every policy:
// the extensions refine the median rule rather than replace its gates.
type Params struct {
	// Window is the ESNR comparison window W of §3.1.1.
	Window sim.Time
	// MedianMarginDB is the challenger-beats-incumbent margin.
	MedianMarginDB float64
	// MinSamples gates challengers on in-window evidence (the serving AP
	// is exempt — it defends with whatever it has).
	MinSamples int
	// MinSwitchESNRdB is the usability floor below which no switch is
	// worth making.
	MinSwitchESNRdB float64
}

// Config selects and parameterizes a policy. The zero value is the
// windowed-median rule — the configuration every pre-existing scenario
// implicitly ran.
type Config struct {
	// Policy picks the implementation; "" means WindowedMedianPolicy.
	Policy Policy

	// Predictive knobs.
	//
	// Horizon is how far ahead the trajectory fit extrapolates when
	// comparing APs (default 50 ms — a few hysteresis-free evaluation
	// rounds at vehicular CSI rates).
	Horizon sim.Time
	// HistSpan is the fitting window for the per-AP linear model
	// (default 100 ms; longer than the median window so the slope sees
	// through fast fading).
	HistSpan sim.Time
	// PredictMarginDB is how much better the challenger's predicted ESNR
	// must be than the serving AP's predicted ESNR (default 1 dB).
	PredictMarginDB float64
	// CollapseDB arms the early switch: the serving AP must be predicted
	// to fall below this ESNR at the horizon before Predictive jumps
	// (default 10 dB). Without the floor every transient dip would trigger
	// a premature move to a challenger that is not yet better.
	CollapseDB float64

	// GlobalAssign knobs.
	//
	// AssignPeriod is the fleet-wide recomputation period (default 50 ms).
	AssignPeriod sim.Time
	// APBudget caps how many clients one AP may be assigned (default 2).
	APBudget int
	// StickinessDB is the incumbent bonus added to a client's serving AP
	// during assignment scoring, damping churn (default 1 dB).
	StickinessDB float64
}

func (c Config) withDefaults() Config {
	if c.Policy == "" {
		c.Policy = WindowedMedianPolicy
	}
	if c.Horizon <= 0 {
		c.Horizon = 50 * sim.Millisecond
	}
	if c.HistSpan <= 0 {
		c.HistSpan = 100 * sim.Millisecond
	}
	if c.PredictMarginDB == 0 {
		c.PredictMarginDB = 1.0
	}
	if c.CollapseDB == 0 {
		c.CollapseDB = 10.0
	}
	if c.AssignPeriod <= 0 {
		c.AssignPeriod = 50 * sim.Millisecond
	}
	if c.APBudget <= 0 {
		c.APBudget = 2
	}
	if c.StickinessDB == 0 {
		c.StickinessDB = 1.0
	}
	return c
}

// Decision is one policy verdict for one client.
type Decision struct {
	// Target is the AP to switch to, or -1 to stay on the serving AP.
	Target int
	// Cause labels the switch span (metrics.CauseMedianArgmax,
	// CausePredictedCollapse, or CauseGlobalAssign).
	Cause string
	// FromMetric/ToMetric are the incumbent and target figures the
	// decision compared (medians, or predicted ESNRs for an early
	// switch), recorded on the span.
	FromMetric, ToMetric float64
	// Flip reports that the policy's preferred AP changed since the
	// previous decision for this client (the selection_flips metric).
	Flip bool
	// Early marks a predictive switch fired before the median rule would
	// have moved (the predictive_early_switches metric).
	Early bool
	// NewRound marks the decision that triggered a fleet-wide
	// reassignment (the assignment_rounds metric).
	NewRound bool
}

// stay is the no-switch decision.
func stay() Decision { return Decision{Target: -1} }

// Selector is a pluggable AP-selection policy. Implementations are
// single-goroutine (the controller's), deterministic, and allocation-free
// on the Observe/Decide hot path once steady state is reached.
type Selector interface {
	// Policy identifies the implementation.
	Policy() Policy
	// AddClient installs per-client state with its initial serving AP.
	AddClient(mac packet.MACAddr, serving int)
	// RemoveClient drops a client (federation release).
	RemoveClient(mac packet.MACAddr)
	// SetServing records a completed switch, keeping the policy's view of
	// the association current (GlobalAssign scores incumbents with it).
	SetServing(mac packet.MACAddr, ap int)
	// ResetClient clears a client's ESNR evidence in place (controller
	// restart: the windows are soft state).
	ResetClient(mac packet.MACAddr)
	// Observe ingests one ESNR reading and returns the (client, AP)
	// window occupancy after the push — the window_occupancy sample.
	Observe(mac packet.MACAddr, ap int, esnrDB float64, at sim.Time) int
	// Decide evaluates the policy for one client. alive filters APs the
	// health monitor has excluded; the controller's own gates (in-flight
	// op, frozen, hysteresis) have already passed when Decide runs.
	Decide(mac packet.MACAddr, serving int, now sim.Time, alive func(int) bool) Decision
	// Median exposes the (client, AP) windowed median — the federation
	// tier's evidence export and the evaluation hook.
	Median(mac packet.MACAddr, ap int, now sim.Time) (float64, bool)
	// BestAlive picks the best alive AP by median with no sample-count or
	// usability gates — the failover tier for stranded clients
	// (DESIGN.md §11). Returns -1 when no alive AP holds any evidence.
	BestAlive(mac packet.MACAddr, now sim.Time, alive func(int) bool) int
}

// New builds the configured policy for a deployment of numAPs APs.
// Unknown policy names are a programming error (ParsePolicy validates
// user input), so New panics rather than guessing.
func New(cfg Config, p Params, numAPs int) Selector {
	cfg = cfg.withDefaults()
	if p.MinSamples < 1 {
		p.MinSamples = 1
	}
	switch cfg.Policy {
	case WindowedMedianPolicy:
		return &WindowedMedian{base: newBase(p, numAPs)}
	case PredictivePolicy:
		b := newBase(p, numAPs)
		b.histSpan = cfg.HistSpan
		return &Predictive{base: b, cfg: cfg}
	case GlobalAssignPolicy:
		return &GlobalAssign{base: newBase(p, numAPs), cfg: cfg}
	}
	panic(fmt.Sprintf("selector: unknown policy %q", cfg.Policy))
}
