// Package sim provides the discrete-event simulation engine that underlies
// the WGTT reproduction: a virtual clock, an ordered event queue, cancellable
// timers, and deterministic named random-number streams.
//
// All simulated components (radio channel, MAC, APs, controller, transports)
// share one Engine and advance strictly in virtual-time order, which makes
// every experiment in the paper's evaluation (§5) reproducible from a
// single seed. The engine has no paper counterpart of its own — it is the
// substrate the §3 system and §5 experiments run on; its timers pace the
// protocol deadlines (the §3.1.2 30 ms stop-retransmission timeout, the
// §3.1.1 10 ms selection window).
package sim

import (
	"fmt"
	"time"
)

// Time is a point in virtual time, in nanoseconds since scenario start.
// It doubles as a duration: the zero Time is both "scenario start" and
// "zero elapsed". Using one type keeps component arithmetic simple.
type Time int64

// Convenient virtual-time units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds returns t expressed in milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Microseconds returns t expressed in microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Duration converts t to a time.Duration. Virtual nanoseconds map one-to-one
// onto wall-clock nanoseconds.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// FromDuration converts a time.Duration into a sim.Time.
func FromDuration(d time.Duration) Time { return Time(d) }

// FromSeconds converts a floating-point second count into a sim.Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// String renders the time with a unit that keeps it readable, e.g. "12.5ms".
func (t Time) String() string {
	switch {
	case t >= Second || t <= -Second:
		return fmt.Sprintf("%.6gs", t.Seconds())
	case t >= Millisecond || t <= -Millisecond:
		return fmt.Sprintf("%.6gms", t.Milliseconds())
	case t >= Microsecond || t <= -Microsecond:
		return fmt.Sprintf("%.6gus", t.Microseconds())
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}
