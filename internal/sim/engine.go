package sim

import (
	"container/heap"
	"fmt"
)

// Engine is a discrete-event simulator. Events fire in nondecreasing time
// order; events scheduled for the same instant fire in scheduling order,
// which keeps runs fully deterministic.
//
// Engine is not safe for concurrent use: the entire simulation is
// single-threaded by design (see DESIGN.md §5), so component code never
// needs locks.
type Engine struct {
	now    Time
	queue  eventQueue
	seq    uint64
	nfired uint64
}

// NewEngine returns an Engine positioned at time zero with an empty queue.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of events currently scheduled.
func (e *Engine) Pending() int { return e.queue.Len() }

// Fired returns the total number of events that have been dispatched.
func (e *Engine) Fired() uint64 { return e.nfired }

// Timer is a handle to a scheduled event. The zero Timer is invalid; timers
// are created by Engine.At and Engine.After.
type Timer struct {
	ev *event
}

// Stop cancels the timer if it has not fired yet. It reports whether the
// cancellation prevented the event from firing.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.fn == nil {
		return false
	}
	t.ev.fn = nil // the queue drops cancelled events lazily
	return true
}

// Active reports whether the timer is still scheduled to fire.
func (t *Timer) Active() bool { return t != nil && t.ev != nil && t.ev.fn != nil }

// When returns the virtual time at which the timer fires (or fired).
func (t *Timer) When() Time {
	if t == nil || t.ev == nil {
		return 0
	}
	return t.ev.at
}

// At schedules fn to run at absolute virtual time at. Scheduling in the past
// panics: it always indicates a component bug, and silently reordering time
// would corrupt every downstream measurement.
func (e *Engine) At(at Time, fn func()) *Timer {
	if fn == nil {
		panic("sim: At called with nil function")
	}
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past (now=%v, at=%v)", e.now, at))
	}
	ev := &event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return &Timer{ev: ev}
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) *Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Step dispatches the single next event. It reports false when the queue is
// empty.
func (e *Engine) Step() bool {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*event)
		if ev.fn == nil { // cancelled
			continue
		}
		e.now = ev.at
		fn := ev.fn
		ev.fn = nil
		e.nfired++
		fn()
		return true
	}
	return false
}

// Run dispatches events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil dispatches events with time ≤ deadline and then advances the
// clock to exactly deadline. Events scheduled after deadline remain queued.
func (e *Engine) RunUntil(deadline Time) {
	for {
		ev := e.queue.peek()
		if ev == nil || ev.at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// event is a single queue entry. fn == nil marks a cancelled or consumed
// event.
type event struct {
	at    Time
	seq   uint64
	fn    func()
	index int
}

// eventQueue is a binary min-heap ordered by (time, insertion sequence).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

func (q eventQueue) peek() *event {
	if len(q) == 0 {
		return nil
	}
	return q[0]
}
