package sim

import (
	"fmt"
	"math"
)

// Engine is a discrete-event simulator. Events fire in nondecreasing time
// order; events scheduled for the same instant fire in scheduling order,
// which keeps runs fully deterministic.
//
// Events live in a slab arena indexed by a hand-rolled binary min-heap of
// small value records, so steady-state scheduling performs no per-event heap
// allocations: At/After reuse arena slots freed by fired or compacted
// events, and Timer is a value handle (slot + generation), not a pointer.
//
// Engine is not safe for concurrent use: the entire simulation is
// single-threaded by design (see DESIGN.md §5), so component code never
// needs locks.
type Engine struct {
	now    Time
	heap   []eventRef // binary min-heap ordered by (at, seq)
	arena  []event    // slot-addressed event storage
	free   []int32    // reusable arena slots
	seq    uint64
	nfired uint64
	// ncancelled counts lazily-cancelled events still sitting in the heap;
	// when they outnumber the live ones the heap is compacted so keepalive-
	// style arm/cancel churn cannot bloat the queue.
	ncancelled int
}

// event is one arena slot. fn == nil marks a cancelled or consumed event;
// gen increments every time the slot is recycled, invalidating stale Timer
// handles.
type event struct {
	fn  func()
	gen uint32
}

// eventRef is one heap entry: the firing time, the FIFO tiebreak sequence,
// and the arena slot holding the callback.
type eventRef struct {
	at   Time
	seq  uint64
	slot int32
}

// NewEngine returns an Engine positioned at time zero with an empty queue.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of live (non-cancelled) events currently
// scheduled.
func (e *Engine) Pending() int { return len(e.heap) - e.ncancelled }

// Fired returns the total number of events that have been dispatched.
func (e *Engine) Fired() uint64 { return e.nfired }

// Timer is a value handle to a scheduled event. The zero Timer is inert:
// Stop and Active report false, When reports 0. Timers are created by
// Engine.At and Engine.After and stay valid (as inert handles) after firing.
type Timer struct {
	eng  *Engine
	at   Time
	slot int32
	gen  uint32
}

// valid reports whether the timer still references its original arena slot.
func (t Timer) valid() bool {
	return t.eng != nil && int(t.slot) < len(t.eng.arena) && t.eng.arena[t.slot].gen == t.gen
}

// Stop cancels the timer if it has not fired yet. It reports whether the
// cancellation prevented the event from firing.
func (t Timer) Stop() bool {
	if !t.valid() || t.eng.arena[t.slot].fn == nil {
		return false
	}
	t.eng.arena[t.slot].fn = nil // the queue drops cancelled events lazily
	t.eng.ncancelled++
	t.eng.maybeCompact()
	return true
}

// Active reports whether the timer is still scheduled to fire.
func (t Timer) Active() bool { return t.valid() && t.eng.arena[t.slot].fn != nil }

// When returns the virtual time at which the timer fires (or fired).
func (t Timer) When() Time { return t.at }

// At schedules fn to run at absolute virtual time at. Scheduling in the past
// panics: it always indicates a component bug, and silently reordering time
// would corrupt every downstream measurement.
func (e *Engine) At(at Time, fn func()) Timer {
	if fn == nil {
		panic("sim: At called with nil function")
	}
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past (now=%v, at=%v)", e.now, at))
	}
	var slot int32
	if n := len(e.free); n > 0 {
		slot = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		e.arena = append(e.arena, event{})
		slot = int32(len(e.arena) - 1)
	}
	e.arena[slot].fn = fn
	ref := eventRef{at: at, seq: e.seq, slot: slot}
	e.seq++
	e.heap = append(e.heap, ref)
	e.siftUp(len(e.heap) - 1)
	return Timer{eng: e, at: at, slot: slot, gen: e.arena[slot].gen}
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Step dispatches the single next event. It reports false when the queue is
// empty.
func (e *Engine) Step() bool { return e.stepUntil(Time(math.MaxInt64)) }

// stepUntil dispatches the next live event if it is due at or before
// deadline. Cancelled events encountered at the head are discarded without
// advancing the clock, so a cancelled head never licenses a post-deadline
// dispatch.
func (e *Engine) stepUntil(deadline Time) bool {
	for len(e.heap) > 0 {
		ref := e.heap[0]
		ev := &e.arena[ref.slot]
		if ev.fn == nil { // cancelled: discard and keep looking
			e.popHead()
			e.ncancelled--
			e.recycle(ref.slot)
			continue
		}
		if ref.at > deadline {
			return false
		}
		e.popHead()
		e.now = ref.at
		fn := ev.fn
		ev.fn = nil
		e.recycle(ref.slot)
		e.nfired++
		fn()
		return true
	}
	return false
}

// popHead removes the root of the heap.
func (e *Engine) popHead() {
	n := len(e.heap) - 1
	e.heap[0] = e.heap[n]
	e.heap = e.heap[:n]
	if n > 0 {
		e.siftDown(0)
	}
}

// recycle returns an arena slot to the free list, invalidating outstanding
// Timer handles to it.
func (e *Engine) recycle(slot int32) {
	e.arena[slot].gen++
	e.free = append(e.free, slot)
}

// compactThreshold is the minimum heap size before cancelled-entry
// compaction is considered; below it the lazy scheme is already cheap.
const compactThreshold = 64

// maybeCompact rebuilds the heap without its cancelled entries once they
// outnumber the live ones. Rebuilding is O(n) and amortizes to O(1) per
// cancellation, bounding queue memory under arm/cancel churn.
func (e *Engine) maybeCompact() {
	if e.ncancelled < compactThreshold || e.ncancelled*2 <= len(e.heap) {
		return
	}
	kept := e.heap[:0]
	for _, ref := range e.heap {
		if e.arena[ref.slot].fn != nil {
			kept = append(kept, ref)
		} else {
			e.recycle(ref.slot)
		}
	}
	e.heap = kept
	for i := len(e.heap)/2 - 1; i >= 0; i-- {
		e.siftDown(i)
	}
	e.ncancelled = 0
}

// Run dispatches events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil dispatches events with time ≤ deadline and then advances the
// clock to exactly deadline. Events scheduled after deadline remain queued.
func (e *Engine) RunUntil(deadline Time) {
	for e.stepUntil(deadline) {
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// refLess orders heap entries by (time, insertion sequence).
func refLess(a, b eventRef) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) siftUp(i int) {
	ref := e.heap[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !refLess(ref, e.heap[parent]) {
			break
		}
		e.heap[i] = e.heap[parent]
		i = parent
	}
	e.heap[i] = ref
}

func (e *Engine) siftDown(i int) {
	n := len(e.heap)
	ref := e.heap[i]
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && refLess(e.heap[r], e.heap[child]) {
			child = r
		}
		if !refLess(e.heap[child], ref) {
			break
		}
		e.heap[i] = e.heap[child]
		i = child
	}
	e.heap[i] = ref
}
