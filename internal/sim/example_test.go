package sim_test

import (
	"fmt"

	"wgtt/internal/sim"
)

// Events fire in virtual-time order; nested scheduling is the norm.
func ExampleEngine() {
	eng := sim.NewEngine()
	eng.At(10*sim.Millisecond, func() {
		fmt.Println("beacon at", eng.Now())
		eng.After(5*sim.Millisecond, func() {
			fmt.Println("probe at", eng.Now())
		})
	})
	eng.Run()
	// Output:
	// beacon at 10ms
	// probe at 15ms
}

// Named streams make every component's randomness independent and
// reproducible from one scenario seed.
func ExampleRNG() {
	a := sim.NewRNG(2017).Stream("fading/ap1/car1")
	b := sim.NewRNG(2017).Stream("fading/ap1/car1")
	fmt.Println(a.IntN(1000) == b.IntN(1000))
	// Output:
	// true
}
