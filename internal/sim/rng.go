package sim

import (
	"hash/fnv"
	"math"
	"math/rand/v2"
)

// RNG hands out independent, named random streams derived from one scenario
// seed. Two runs with the same seed see identical randomness in every
// component; changing one component's draw pattern never perturbs another's,
// because each stream is seeded from the (seed, name) pair alone.
type RNG struct {
	seed uint64
}

// NewRNG returns a stream factory for the given scenario seed.
func NewRNG(seed uint64) *RNG { return &RNG{seed: seed} }

// Seed returns the scenario seed this factory was built from.
func (r *RNG) Seed() uint64 { return r.seed }

// Stream returns the deterministic substream for name, e.g.
// "fading/ap3/client1" or "mac/backoff/ap0".
func (r *RNG) Stream(name string) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(name))
	s1 := h.Sum64()
	// Mix the name hash with the scenario seed through splitmix64 so that
	// related names and adjacent seeds do not yield correlated streams.
	return rand.New(rand.NewPCG(splitmix64(s1^r.seed), splitmix64(s1+0x9e3779b97f4a7c15^r.seed<<1)))
}

// splitmix64 is the finalizer of the SplitMix64 generator; it is a strong
// 64-bit mixing function suitable for seed derivation.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Rayleigh draws a Rayleigh-distributed magnitude with the given scale σ.
// If X,Y ~ N(0,σ²) then √(X²+Y²) is Rayleigh(σ).
func Rayleigh(rnd *rand.Rand, sigma float64) float64 {
	x := rnd.NormFloat64() * sigma
	y := rnd.NormFloat64() * sigma
	return math.Hypot(x, y)
}
