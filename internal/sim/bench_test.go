package sim

import "testing"

// BenchmarkEngineSelfReschedule measures the per-event schedule+dispatch
// cost of a self-rescheduling tick — the keepalive/sampling pattern that
// dominates the engine's steady-state load.
func BenchmarkEngineSelfReschedule(b *testing.B) {
	e := NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.After(Millisecond, tick)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.After(Millisecond, tick)
	e.Run()
	if n != b.N {
		b.Fatalf("fired %d, want %d", n, b.N)
	}
}

// BenchmarkEngineScheduleCancel measures the schedule-then-cancel churn of
// retransmission timeouts (armed per frame, almost always stopped) and
// verifies the queue does not bloat with lazily-cancelled entries.
func BenchmarkEngineScheduleCancel(b *testing.B) {
	e := NewEngine()
	nop := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := e.After(Second, nop)
		t.Stop()
	}
	b.StopTimer()
	b.ReportMetric(float64(e.Pending()), "pending-after")
}

// BenchmarkEngineMixedLoad interleaves live ticks with cancelled timeouts,
// the shape of a real run (data exchanges armed with timeouts that a Block
// ACK then cancels).
func BenchmarkEngineMixedLoad(b *testing.B) {
	e := NewEngine()
	nop := func() {}
	n := 0
	var tick func()
	tick = func() {
		n++
		t := e.After(30*Millisecond, nop) // timeout...
		t.Stop()                          // ...cancelled by the "ack"
		if n < b.N {
			e.After(Millisecond, tick)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.After(Millisecond, tick)
	e.Run()
}
