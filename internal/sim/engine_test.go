package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestTimeUnits(t *testing.T) {
	if Second != 1e9 {
		t.Fatalf("Second = %d, want 1e9", int64(Second))
	}
	if got := (2500 * Millisecond).Seconds(); got != 2.5 {
		t.Errorf("Seconds() = %v, want 2.5", got)
	}
	if got := (3 * Millisecond).Milliseconds(); got != 3 {
		t.Errorf("Milliseconds() = %v, want 3", got)
	}
	if got := (7 * Microsecond).Microseconds(); got != 7 {
		t.Errorf("Microseconds() = %v, want 7", got)
	}
	if got := FromSeconds(1.5); got != 1500*Millisecond {
		t.Errorf("FromSeconds(1.5) = %v, want 1.5s", got)
	}
	if got := FromDuration(2 * time.Millisecond); got != 2*Millisecond {
		t.Errorf("FromDuration = %v, want 2ms", got)
	}
	if got := (42 * Millisecond).Duration(); got != 42*time.Millisecond {
		t.Errorf("Duration() = %v, want 42ms", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{2 * Second, "2s"},
		{12500 * Microsecond, "12.5ms"},
		{3 * Microsecond, "3us"},
		{17, "17ns"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30*Millisecond, func() { order = append(order, 3) })
	e.At(10*Millisecond, func() { order = append(order, 1) })
	e.At(20*Millisecond, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired out of order: %v", order)
	}
	if e.Now() != 30*Millisecond {
		t.Errorf("Now() = %v, want 30ms", e.Now())
	}
}

func TestEngineSameInstantFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(Millisecond, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var times []Time
	e.At(Millisecond, func() {
		times = append(times, e.Now())
		e.After(2*Millisecond, func() {
			times = append(times, e.Now())
		})
	})
	e.Run()
	if len(times) != 2 || times[0] != Millisecond || times[1] != 3*Millisecond {
		t.Fatalf("nested scheduling times = %v", times)
	}
}

func TestEnginePastPanics(t *testing.T) {
	e := NewEngine()
	e.At(5*Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling into the past did not panic")
			}
		}()
		e.At(Millisecond, func() {})
	})
	e.Run()
}

func TestEngineNilFnPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("nil fn did not panic")
		}
	}()
	e.At(0, nil)
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	e.After(-Millisecond, func() {})
}

func TestTimerStop(t *testing.T) {
	e := NewEngine()
	fired := false
	tm := e.At(Millisecond, func() { fired = true })
	if !tm.Active() {
		t.Error("timer should be active before firing")
	}
	if !tm.Stop() {
		t.Error("Stop() should report true on an active timer")
	}
	if tm.Stop() {
		t.Error("second Stop() should report false")
	}
	e.Run()
	if fired {
		t.Error("stopped timer fired")
	}
	if tm.Active() {
		t.Error("stopped timer should not be active")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	e := NewEngine()
	tm := e.At(Millisecond, func() {})
	e.Run()
	if tm.Active() {
		t.Error("fired timer should be inactive")
	}
	if tm.Stop() {
		t.Error("Stop() after fire should report false")
	}
	if tm.When() != Millisecond {
		t.Errorf("When() = %v, want 1ms", tm.When())
	}
}

func TestZeroTimer(t *testing.T) {
	var tm Timer
	if tm.Stop() || tm.Active() || tm.When() != 0 {
		t.Error("zero timer should be inert")
	}
}

// A Timer handle must go stale once its arena slot is recycled by a later
// event: stopping the old handle must not cancel the new occupant.
func TestTimerStaleHandle(t *testing.T) {
	e := NewEngine()
	old := e.At(Millisecond, func() {})
	e.Run() // fires and recycles the slot
	fired := false
	fresh := e.At(2*Millisecond, func() { fired = true })
	if old.Stop() {
		t.Error("stale handle Stop() reported true")
	}
	if !fresh.Active() {
		t.Error("stale handle invalidated the slot's new occupant")
	}
	e.Run()
	if !fired {
		t.Error("recycled-slot event did not fire")
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{Millisecond, 2 * Millisecond, 5 * Millisecond} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(3 * Millisecond)
	if len(fired) != 2 {
		t.Fatalf("fired %d events before deadline, want 2", len(fired))
	}
	if e.Now() != 3*Millisecond {
		t.Errorf("Now() = %v, want exactly the deadline", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending() = %d, want 1", e.Pending())
	}
	e.Run()
	if len(fired) != 3 {
		t.Errorf("remaining event did not fire after deadline")
	}
}

// Regression: a cancelled event at the queue head with at ≤ deadline must
// not license RunUntil to dispatch the next live event past the deadline.
func TestRunUntilCancelledHead(t *testing.T) {
	e := NewEngine()
	head := e.At(10*Millisecond, func() { t.Error("cancelled event fired") })
	lateFired := false
	e.At(50*Millisecond, func() { lateFired = true })
	head.Stop()
	e.RunUntil(20 * Millisecond)
	if lateFired {
		t.Error("RunUntil dispatched a live event scheduled after the deadline")
	}
	if e.Now() != 20*Millisecond {
		t.Errorf("Now() = %v, want exactly the 20ms deadline", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending() = %d, want the post-deadline event still queued", e.Pending())
	}
	e.Run()
	if !lateFired {
		t.Error("post-deadline event lost")
	}
}

// The heap must compact lazily-cancelled entries so keepalive-style
// arm/cancel churn cannot bloat the queue.
func TestEngineCancelCompaction(t *testing.T) {
	e := NewEngine()
	nop := func() {}
	for i := 0; i < 100000; i++ {
		tm := e.After(Second, nop)
		tm.Stop()
	}
	if n := len(e.heap); n > 2*compactThreshold+2 {
		t.Errorf("heap holds %d entries after pure cancel churn; compaction broken", n)
	}
	if e.Pending() != 0 {
		t.Errorf("Pending() = %d, want 0", e.Pending())
	}
}

// Steady-state scheduling must not allocate: slots and heap capacity are
// reused once the engine has warmed up.
func TestEngineZeroAllocSteadyState(t *testing.T) {
	e := NewEngine()
	nop := func() {}
	var tick func()
	tick = func() {
		tm := e.After(30*Millisecond, nop)
		tm.Stop()
		e.After(Millisecond, tick)
	}
	e.After(Millisecond, tick)
	for i := 0; i < 1000; i++ { // warm arena, heap, and free list
		e.Step()
	}
	if avg := testing.AllocsPerRun(200, func() { e.Step() }); avg != 0 {
		t.Errorf("Engine.Step allocates %.1f times per event in steady state, want 0", avg)
	}
}

func TestEngineStepEmpty(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Error("Step() on empty queue should report false")
	}
}

func TestEngineFiredCount(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.At(Time(i)*Millisecond, func() {})
	}
	tm := e.At(10*Millisecond, func() {})
	tm.Stop()
	e.Run()
	if e.Fired() != 5 {
		t.Errorf("Fired() = %d, want 5 (cancelled events don't count)", e.Fired())
	}
}

// Property: for any set of (bounded, non-negative) event offsets, the engine
// dispatches them in sorted order.
func TestEngineOrderProperty(t *testing.T) {
	f := func(offsets []uint16) bool {
		e := NewEngine()
		var fired []Time
		for _, off := range offsets {
			at := Time(off) * Microsecond
			e.At(at, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != len(offsets) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42).Stream("fading/ap1")
	b := NewRNG(42).Stream("fading/ap1")
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same (seed, name) produced different streams")
		}
	}
}

func TestRNGIndependentStreams(t *testing.T) {
	r := NewRNG(42)
	a := r.Stream("fading/ap1")
	b := r.Stream("fading/ap2")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("streams with different names coincided %d/100 times", same)
	}
}

func TestRNGSeedMatters(t *testing.T) {
	a := NewRNG(1).Stream("x")
	b := NewRNG(2).Stream("x")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds coincided %d/100 times", same)
	}
}

func TestRayleighMoments(t *testing.T) {
	rnd := NewRNG(7).Stream("rayleigh")
	const sigma = 2.0
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += Rayleigh(rnd, sigma)
	}
	mean := sum / n
	want := sigma * 1.2533141373155003 // σ√(π/2)
	if diff := mean - want; diff > 0.02 || diff < -0.02 {
		t.Errorf("Rayleigh mean = %v, want %v", mean, want)
	}
}
