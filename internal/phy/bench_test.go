package phy

import "testing"

// BenchmarkBER measures one per-subcarrier BER evaluation (56 of these per
// ESNR computation).
func BenchmarkBER(b *testing.B) {
	snrs := [8]float64{0.5, 2, 8, 30, 100, 400, 1500, 6000}
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += QAM64.BER(snrs[i&7])
	}
	_ = sink
}

// BenchmarkInvBER measures the BER-curve inversion that closes every ESNR
// computation.
func BenchmarkInvBER(b *testing.B) {
	bers := [8]float64{1e-12, 1e-9, 1e-6, 1e-4, 1e-3, 1e-2, 0.05, 0.2}
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += QAM64.InvBER(bers[i&7])
	}
	_ = sink
}
