package phy

import (
	"math"

	"wgtt/internal/sim"
)

// 802.11n (2.4 GHz, HT20, short guard interval) timing constants.
const (
	// SIFS is the short interframe space.
	SIFS = 10 * sim.Microsecond
	// Slot is the (short) slot time.
	Slot = 9 * sim.Microsecond
	// DIFS = SIFS + 2·Slot.
	DIFS = SIFS + 2*Slot
	// HTPreamble is the HT-mixed-format PHY preamble + header for one
	// spatial stream: L-STF(8) + L-LTF(8) + L-SIG(4) + HT-SIG(8) +
	// HT-STF(4) + HT-LTF(4) µs.
	HTPreamble = 36 * sim.Microsecond
	// LegacyPreamble covers control responses (ACK/Block ACK) sent in
	// non-HT OFDM format: 20 µs preamble+header.
	LegacyPreamble = 20 * sim.Microsecond
	// SymbolDuration is one OFDM symbol with short guard interval.
	SymbolDuration = 3600 * sim.Nanosecond

	// CWMin and CWMax bound the DCF contention window.
	CWMin = 15
	CWMax = 1023

	// MACHeaderBytes is a QoS data MPDU header (24 + 2 QoS).
	MACHeaderBytes = 26
	// FCSBytes is the frame check sequence.
	FCSBytes = 4
	// MPDUDelimiterBytes precedes each MPDU inside an A-MPDU.
	MPDUDelimiterBytes = 4

	// BasicRateMbps is the legacy OFDM rate used for control responses.
	BasicRateMbps = 24.0

	// BlockAckBytes is a compressed Block ACK frame body (2 control, 2
	// duration, 12 addresses, 2 BA control, 2 SSN, 8 bitmap, 4 FCS).
	BlockAckBytes = 32
	// AckBytes is a legacy ACK frame.
	AckBytes = 14
)

// MPDUOverheadBytes is the fixed per-MPDU cost inside an A-MPDU (header,
// FCS, delimiter; padding averaged in).
const MPDUOverheadBytes = MACHeaderBytes + FCSBytes + MPDUDelimiterBytes

// DataDuration returns the on-air time of payload bits (with PHY padding to
// whole OFDM symbols) at the given MCS, excluding the preamble.
func DataDuration(m MCS, bytes int) sim.Time {
	if bytes <= 0 {
		return 0
	}
	rate := Lookup(m).DataRateMbps // Mbit/s == bits/µs
	bits := float64(bytes*8 + 22)  // SERVICE(16) + tail(6)
	symbols := math.Ceil(bits / (rate * SymbolDuration.Microseconds()))
	return sim.Time(symbols) * SymbolDuration
}

// AMPDUDuration returns the full on-air time of an A-MPDU carrying the given
// MPDU payload sizes at MCS m: HT preamble plus all MPDUs (with per-MPDU
// overhead) back to back in one PPDU.
func AMPDUDuration(m MCS, payloadBytes []int) sim.Time {
	total := 0
	for _, b := range payloadBytes {
		total += b + MPDUOverheadBytes
	}
	return HTPreamble + DataDuration(m, total)
}

// legacyDuration returns the on-air time of a legacy-OFDM control frame.
func legacyDuration(bytes int) sim.Time {
	bits := float64(bytes*8 + 22)
	symbols := math.Ceil(bits / (BasicRateMbps * 4)) // legacy symbols are 4 µs
	return LegacyPreamble + sim.Time(symbols)*4*sim.Microsecond
}

// BlockAckDuration is the on-air time of a compressed Block ACK response.
func BlockAckDuration() sim.Time { return legacyDuration(BlockAckBytes) }

// AckDuration is the on-air time of a legacy ACK.
func AckDuration() sim.Time { return legacyDuration(AckBytes) }

// TXOPLimit is the maximum time one A-MPDU may occupy the medium (the
// best-effort TXOP cap drivers enforce so low-rate senders cannot hog the
// channel).
const TXOPLimit = 4 * sim.Millisecond

// TXOPByteBudget returns how many payload bytes fit in a TXOPLimit-long
// A-MPDU at the given MCS.
func TXOPByteBudget(m MCS) int {
	usable := (TXOPLimit - HTPreamble).Microseconds()
	return int(Lookup(m).DataRateMbps * usable / 8)
}

// TXOPDuration returns the complete exchange time for an aggregate:
// A-MPDU + SIFS + Block ACK.
func TXOPDuration(m MCS, payloadBytes []int) sim.Time {
	return AMPDUDuration(m, payloadBytes) + SIFS + BlockAckDuration()
}

// EffectiveThroughputMbps returns goodput of a full TXOP exchange carrying
// the given payloads at MCS m, including DIFS and mean backoff — the number
// a saturated sender would sustain. Useful for capacity estimates in the
// evaluation harness.
func EffectiveThroughputMbps(m MCS, payloadBytes []int) float64 {
	var payload int
	for _, b := range payloadBytes {
		payload += b
	}
	if payload == 0 {
		return 0
	}
	meanBackoff := sim.Time(CWMin) / 2 * Slot
	total := DIFS + meanBackoff + TXOPDuration(m, payloadBytes)
	return float64(payload*8) / total.Microseconds()
}
