package phy_test

import (
	"fmt"

	"wgtt/internal/phy"
)

// Rate selection from a channel-quality estimate: the highest MCS whose
// predicted loss stays under budget.
func ExampleBestMCS() {
	for _, esnr := range []float64{6, 16, 30} {
		m := phy.BestMCS(esnr, 1500, 0.1)
		fmt.Printf("%2.0f dB -> %v\n", esnr, m)
	}
	// Output:
	//  6 dB -> MCS0(7.2 Mb/s)
	// 16 dB -> MCS3(28.9 Mb/s)
	// 30 dB -> MCS7(72.2 Mb/s)
}

// Aggregation amortizes the fixed preamble: twenty 1,500-byte MPDUs cost
// barely more airtime per byte than one.
func ExampleAMPDUDuration() {
	one := phy.AMPDUDuration(7, []int{1500})
	var sizes []int
	for i := 0; i < 20; i++ {
		sizes = append(sizes, 1500)
	}
	twenty := phy.AMPDUDuration(7, sizes)
	fmt.Printf("1 MPDU: %v, 20 MPDUs: %v (%.1fx airtime for 20x data)\n",
		one, twenty, float64(twenty)/float64(one))
	// Output:
	// 1 MPDU: 208.8us, 20 MPDUs: 3.438ms (16.5x airtime for 20x data)
}
