package phy

import (
	"math"
	"testing"
)

// Documented BER-table tolerances (see bertab.go and DESIGN.md §9): the
// interpolated forward curve stays within 0.2% relative of the closed form
// over the physically meaningful range (BER ≥ minBER), and the inverse stays
// within 0.01 dB of the closed-form bisection. Below minBER the per-step
// log-curvature grows, so the underflow tail is only held to order-of-
// magnitude agreement — ESNR inverts the mean BER, which is clamped at
// minBER, so nothing observable lives down there.
const (
	berTabRelTol    = 2e-3
	berTabTailLog10 = 0.5
	invBERTolDB     = 0.01
)

var allMods = []Modulation{BPSK, QPSK, QAM16, QAM64}

// Forward table vs. closed form, swept off-grid across the whole domain.
func TestBERTableForwardTolerance(t *testing.T) {
	for _, m := range allMods {
		for db := -70.0; db <= 70.0; db += 0.00537 {
			lin := dbToLinear(db)
			got := m.BER(lin)
			want := m.berClosed(lin)
			switch {
			case want >= minBER:
				if diff := math.Abs(got - want); diff > berTabRelTol*want {
					t.Fatalf("%v: BER(%.3f dB) = %g, closed form %g (rel err %.2e)",
						m, db, got, want, diff/want)
				}
			case want >= 1e-300 && got > 0:
				if d := math.Abs(math.Log10(got / want)); d > berTabTailLog10 {
					t.Fatalf("%v: BER(%.3f dB) = %g, closed form %g (log10 err %.2f)",
						m, db, got, want, d)
				}
			}
		}
	}
}

// Inverse via tables vs. the 200-iteration bisection, swept log-uniformly
// over the invertible BER range.
func TestInvBERTableTolerance(t *testing.T) {
	for _, m := range allMods {
		cut := berTables[m].invCut
		for u := math.Log(minBER); u <= math.Log(cut); u += 0.01 {
			ber := math.Exp(u)
			if ber > cut {
				break
			}
			got := m.InvBERdB(ber)
			want := linearToDB(m.invBERBisect(ber))
			if diff := math.Abs(got - want); diff > invBERTolDB {
				t.Fatalf("%v: InvBERdB(%g) = %.5f dB, bisection %.5f dB (err %.4f dB)",
					m, ber, got, want, diff)
			}
		}
	}
}

// Round-trip: InvBER(BER(x)) must recover x across the range where the
// curve is invertible (BER between minBER and saturation).
func TestInvBERTableRoundTrip(t *testing.T) {
	for _, m := range allMods {
		for db := -40.0; db <= 40.0; db += 0.1303 {
			x := dbToLinear(db)
			ber := m.berClosed(x)
			if ber <= minBER || ber >= berTables[m].invCut {
				continue
			}
			back := linearToDB(m.InvBER(ber))
			if diff := math.Abs(back - db); diff > invBERTolDB {
				t.Fatalf("%v: InvBER(BER(%.2f dB)) = %.4f dB (err %.4f dB)", m, db, back, diff)
			}
		}
	}
}

// Boundary semantics preserved from the bisection implementation.
func TestInvBERBoundaries(t *testing.T) {
	for _, m := range allMods {
		if got := m.InvBER(0.5); got != 0 {
			t.Errorf("%v: InvBER(0.5) = %v, want 0 (saturated)", m, got)
		}
		if got := m.InvBER(berTables[m].satur); got != 0 {
			t.Errorf("%v: InvBER(saturation) = %v, want 0", m, got)
		}
		// Sub-minBER values clamp to the minBER ceiling, not +inf.
		ceiling := m.InvBER(minBER)
		if got := m.InvBER(minBER / 1e3); got != ceiling {
			t.Errorf("%v: InvBER below minBER = %v, want ceiling %v", m, got, ceiling)
		}
		if ceiling <= 0 || math.IsInf(ceiling, 0) || math.IsNaN(ceiling) {
			t.Errorf("%v: minBER ceiling = %v, want finite positive", m, ceiling)
		}
	}
}

// BER must stay monotone non-increasing in SNR after tabulation — the
// property both the inverse search and ESNR's frequency-selectivity penalty
// rely on.
func TestBERTableMonotone(t *testing.T) {
	for _, m := range allMods {
		prev := math.Inf(1)
		for db := -70.0; db <= 70.0; db += 0.01 {
			b := m.BERdB(db)
			if b > prev+1e-18 {
				t.Fatalf("%v: BER not monotone at %.2f dB (%g after %g)", m, db, b, prev)
			}
			prev = b
		}
	}
}

// The table paths must not allocate.
func TestBERTableZeroAlloc(t *testing.T) {
	if avg := testing.AllocsPerRun(200, func() {
		_ = QAM64.BERdB(17.3)
		_ = QAM64.InvBERdB(1e-5)
	}); avg != 0 {
		t.Errorf("BERdB/InvBERdB allocate %.1f times per call, want 0", avg)
	}
}
