package phy

import (
	"fmt"
	"math"
)

// MCS is an 802.11n modulation-and-coding-scheme index, 0–7 (one spatial
// stream).
type MCS int

// NumMCS is the number of single-stream rates.
const NumMCS = 8

// Info describes one MCS.
type Info struct {
	Index        MCS
	Modulation   Modulation
	CodeRate     float64 // convolutional code rate
	DataRateMbps float64 // HT20, short guard interval
	// Threshold50 is the Effective SNR (dB) at which a 1500-byte frame
	// sees 50% loss — the anchor of the PER model. Values follow published
	// 802.11n HT20 link-level results.
	Threshold50 float64
}

// table holds HT20 short-GI single-stream rates.
var table = [NumMCS]Info{
	{0, BPSK, 1.0 / 2, 7.2, 2.5},
	{1, QPSK, 1.0 / 2, 14.4, 5.5},
	{2, QPSK, 3.0 / 4, 21.7, 8.5},
	{3, QAM16, 1.0 / 2, 28.9, 11.5},
	{4, QAM16, 3.0 / 4, 43.3, 15.0},
	{5, QAM64, 2.0 / 3, 57.8, 19.0},
	{6, QAM64, 3.0 / 4, 65.0, 21.0},
	{7, QAM64, 5.0 / 6, 72.2, 23.0},
}

// Lookup returns the MCS description. It panics on an out-of-range index —
// rate-control code must never fabricate one.
func Lookup(m MCS) Info {
	if m < 0 || m >= NumMCS {
		panic(fmt.Sprintf("phy: MCS %d out of range", m))
	}
	return table[m]
}

// All returns the full rate table, lowest rate first.
func All() []Info {
	out := make([]Info, NumMCS)
	copy(out[:], table[:])
	return out
}

// String implements fmt.Stringer.
func (m MCS) String() string {
	if m < 0 || m >= NumMCS {
		return fmt.Sprintf("MCS?%d", int(m))
	}
	return fmt.Sprintf("MCS%d(%.1f Mb/s)", int(m), table[m].DataRateMbps)
}

// DataRateMbps is shorthand for Lookup(m).DataRateMbps.
func (m MCS) DataRateMbps() float64 { return Lookup(m).DataRateMbps }

// perWidthDB is the logistic slope of the ESNR→PER curve: the transition
// from 90% to 10% loss spans roughly 4·width dB, matching the steep
// waterfall of coded OFDM links.
const perWidthDB = 0.9

// refFrameBytes anchors the Threshold50 calibration.
const refFrameBytes = 1500

// Sync-failure curve: the PHY preamble and PLCP header go out in the most
// robust format, but below ~0 dB the receiver cannot synchronize at all, no
// matter how short the payload. Without this floor, the per-bit length
// scaling would let tiny frames "decode" at −10 dB, which no hardware does.
const (
	syncThresholdDB = 0.5
	syncWidthDB     = 0.7
)

// SyncFailureProb returns the probability that frame detection/PLCP
// decoding fails outright at the given ESNR.
func SyncFailureProb(esnrDB float64) float64 {
	return 1 / (1 + math.Exp((esnrDB-syncThresholdDB)/syncWidthDB))
}

// PayloadPER returns the probability that a frameBytes-long MPDU at the
// given MCS fails its CRC *given that the receiver synchronized to the
// PPDU*. The 1500-byte anchor curve is logistic in dB; other lengths scale
// by the per-bit survival probability (short frames are hardier, long
// frames more fragile).
func PayloadPER(m MCS, esnrDB float64, frameBytes int) float64 {
	if frameBytes <= 0 {
		return 0
	}
	info := Lookup(m)
	ref := 1 / (1 + math.Exp((esnrDB-info.Threshold50)/perWidthDB))
	// ref is PER at 1500 bytes: logistic increasing as esnr drops.
	// Convert to per-reference survival and re-scale to the actual length.
	surv := 1 - ref
	if surv <= 0 {
		return 1
	}
	scaled := 1 - math.Pow(surv, float64(frameBytes)/refFrameBytes)
	if scaled < 0 {
		return 0
	}
	if scaled > 1 {
		return 1
	}
	return scaled
}

// PER returns the total loss probability of a frameBytes-long MPDU at the
// given MCS: PHY synchronization failure composed with the payload error
// given sync.
func PER(m MCS, esnrDB float64, frameBytes int) float64 {
	if frameBytes <= 0 {
		return 0
	}
	loss := 1 - (1-PayloadPER(m, esnrDB, frameBytes))*(1-SyncFailureProb(esnrDB))
	if loss < 0 {
		return 0
	}
	if loss > 1 {
		return 1
	}
	return loss
}

// BestMCS returns the highest MCS whose predicted PER for frameBytes at
// esnrDB does not exceed maxPER, or MCS 0 if none qualifies. This is the
// ESNR-directed rate pick a Halperin-style rate controller would make.
func BestMCS(esnrDB float64, frameBytes int, maxPER float64) MCS {
	best := MCS(0)
	for i := 0; i < NumMCS; i++ {
		if PER(MCS(i), esnrDB, frameBytes) <= maxPER {
			best = MCS(i)
		}
	}
	return best
}
