package phy

import (
	"math"
	"testing"
	"testing/quick"

	"wgtt/internal/sim"
)

func TestModulationBits(t *testing.T) {
	cases := map[Modulation]int{BPSK: 1, QPSK: 2, QAM16: 4, QAM64: 6, Modulation(9): 0}
	for m, want := range cases {
		if got := m.BitsPerSymbol(); got != want {
			t.Errorf("%v bits = %d, want %d", m, got, want)
		}
	}
}

func TestModulationString(t *testing.T) {
	if BPSK.String() != "BPSK" || QAM64.String() != "64-QAM" {
		t.Error("modulation names wrong")
	}
}

func TestBERMonotone(t *testing.T) {
	for _, m := range []Modulation{BPSK, QPSK, QAM16, QAM64} {
		prev := m.BER(0.001)
		for snr := 0.01; snr < 1e6; snr *= 1.3 {
			b := m.BER(snr)
			if b > prev+1e-18 {
				t.Fatalf("%v BER not monotone at snr=%v", m, snr)
			}
			prev = b
		}
	}
}

func TestBEROrderingAcrossModulations(t *testing.T) {
	// In the approximations' valid regime (≳6 dB), denser constellations
	// have (weakly) higher BER. Below that the closed-form prefactors
	// saturate differently and ordering is not meaningful.
	for snr := 4.0; snr < 1e5; snr *= 2 {
		if BPSK.BER(snr) > QPSK.BER(snr)+1e-18 ||
			QPSK.BER(snr) > QAM16.BER(snr)+1e-18 ||
			QAM16.BER(snr) > QAM64.BER(snr)+1e-18 {
			t.Fatalf("BER ordering violated at snr=%v", snr)
		}
	}
}

func TestBERKnownValues(t *testing.T) {
	// BPSK at 9.6 dB (γ ≈ 9.12) gives BER ≈ 1e-5.
	if b := BPSK.BER(9.12); b < 0.6e-5 || b > 1.5e-5 {
		t.Errorf("BPSK BER at 9.6 dB = %v, want ≈ 1e-5", b)
	}
	if b := BPSK.BER(0); b != 0.5 {
		t.Errorf("BER at zero SNR = %v, want 0.5", b)
	}
	if b := BPSK.BER(-1); b != 0.5 {
		t.Errorf("BER at negative SNR = %v, want 0.5", b)
	}
	if b := Modulation(42).BER(10); b != 0.5 {
		t.Errorf("unknown modulation BER = %v, want 0.5", b)
	}
}

func TestInvBERRoundTrip(t *testing.T) {
	for _, m := range []Modulation{BPSK, QPSK, QAM16, QAM64} {
		for _, ber := range []float64{0.1, 1e-2, 1e-4, 1e-8} {
			snr := m.InvBER(ber)
			got := m.BER(snr)
			if math.Abs(math.Log10(got)-math.Log10(ber)) > 0.01 {
				t.Errorf("%v InvBER(%v) = %v, BER back = %v", m, ber, snr, got)
			}
		}
	}
	if QPSK.InvBER(0.5) != 0 {
		t.Error("InvBER(0.5) should be 0")
	}
	// 16-QAM's approximation saturates at 0.375; anything at or above that
	// maps to zero SNR.
	if QAM16.InvBER(0.4) != 0 {
		t.Error("InvBER above saturation should be 0")
	}
	if snr := BPSK.InvBER(0.4); math.Abs(BPSK.BER(snr)-0.4) > 1e-6 {
		t.Errorf("BPSK InvBER(0.4) round trip = %v", BPSK.BER(snr))
	}
	if snr := QPSK.InvBER(0); math.IsInf(snr, 1) || math.IsNaN(snr) {
		t.Error("InvBER(0) must stay finite")
	}
}

func TestMCSTable(t *testing.T) {
	all := All()
	if len(all) != NumMCS {
		t.Fatalf("table has %d entries", len(all))
	}
	for i, info := range all {
		if int(info.Index) != i {
			t.Errorf("entry %d has index %d", i, info.Index)
		}
		if i > 0 {
			if info.DataRateMbps <= all[i-1].DataRateMbps {
				t.Errorf("rates not increasing at MCS%d", i)
			}
			if info.Threshold50 <= all[i-1].Threshold50 {
				t.Errorf("thresholds not increasing at MCS%d", i)
			}
		}
	}
	// HT20 SGI endpoints.
	if all[0].DataRateMbps != 7.2 || all[7].DataRateMbps != 72.2 {
		t.Errorf("rate endpoints = %v, %v", all[0].DataRateMbps, all[7].DataRateMbps)
	}
	if MCS(3).DataRateMbps() != 28.9 {
		t.Error("DataRateMbps shorthand wrong")
	}
}

func TestLookupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Lookup(-1) did not panic")
		}
	}()
	Lookup(-1)
}

func TestMCSString(t *testing.T) {
	if MCS(7).String() != "MCS7(72.2 Mb/s)" {
		t.Errorf("MCS7 string = %q", MCS(7).String())
	}
	if MCS(-3).String() != "MCS?-3" {
		t.Errorf("invalid MCS string = %q", MCS(-3).String())
	}
}

func TestPERShape(t *testing.T) {
	// At the anchor point: 1500 bytes, ESNR = threshold ⇒ PER = 0.5.
	for i := 0; i < NumMCS; i++ {
		m := MCS(i)
		th := Lookup(m).Threshold50
		// The sync-failure floor nudges the anchor up slightly (most for
		// MCS0, whose threshold sits nearest the sync region).
		if p := PER(m, th, 1500); p < 0.5 || p > 0.56 {
			t.Errorf("%v PER at threshold = %v, want ≈ 0.5", m, p)
		}
		// Well above threshold: nearly lossless. Well below: lost.
		if p := PER(m, th+8, 1500); p > 0.02 {
			t.Errorf("%v PER at +8 dB = %v", m, p)
		}
		if p := PER(m, th-8, 1500); p < 0.99 {
			t.Errorf("%v PER at −8 dB = %v", m, p)
		}
	}
}

func TestPERLengthScaling(t *testing.T) {
	m := MCS(4)
	th := Lookup(m).Threshold50
	short := PER(m, th+2, 100)
	long := PER(m, th+2, 3000)
	if short >= long {
		t.Errorf("short frame PER %v not < long frame PER %v", short, long)
	}
	if p := PER(m, th, 0); p != 0 {
		t.Errorf("zero-length PER = %v", p)
	}
}

func TestPERMonotoneInESNR(t *testing.T) {
	f := func(mq uint8, e1q, e2q uint8) bool {
		m := MCS(mq % NumMCS)
		e1 := float64(e1q)/4 - 10
		e2 := float64(e2q)/4 - 10
		if e1 > e2 {
			e1, e2 = e2, e1
		}
		return PER(m, e1, 1500) >= PER(m, e2, 1500)-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBestMCS(t *testing.T) {
	// Very high ESNR picks the top rate; very low picks MCS0.
	if m := BestMCS(40, 1500, 0.1); m != 7 {
		t.Errorf("BestMCS(40dB) = %v", m)
	}
	if m := BestMCS(-5, 1500, 0.1); m != 0 {
		t.Errorf("BestMCS(-5dB) = %v", m)
	}
	// Mid ESNR picks something in between, monotone in ESNR.
	prev := MCS(0)
	for e := 0.0; e <= 40; e += 0.5 {
		m := BestMCS(e, 1500, 0.1)
		if m < prev {
			t.Fatalf("BestMCS not monotone at %v dB", e)
		}
		prev = m
	}
	mid := BestMCS(16, 1500, 0.1)
	if mid <= 1 || mid >= 7 {
		t.Errorf("BestMCS(16dB) = %v, want mid-range", mid)
	}
}

func TestDataDuration(t *testing.T) {
	// 1500 bytes at MCS7 (72.2 Mb/s): 12022 bits / 260 bits-per-symbol
	// ≈ 46.3 ⇒ 47 symbols ⇒ 169.2 µs.
	d := DataDuration(7, 1500)
	if d < 160*sim.Microsecond || d > 180*sim.Microsecond {
		t.Errorf("DataDuration(MCS7, 1500B) = %v", d)
	}
	if DataDuration(7, 0) != 0 {
		t.Error("zero bytes should take zero time")
	}
	// Lower MCS takes longer.
	if DataDuration(0, 1500) <= DataDuration(7, 1500) {
		t.Error("MCS0 not slower than MCS7")
	}
}

func TestAMPDUDuration(t *testing.T) {
	one := AMPDUDuration(7, []int{1500})
	ten := AMPDUDuration(7, []int{1500, 1500, 1500, 1500, 1500, 1500, 1500, 1500, 1500, 1500})
	// Aggregation amortizes the preamble: 10 frames take far less than 10×.
	if ten > 10*one-8*HTPreamble {
		t.Errorf("aggregation saves too little: 1=%v 10=%v", one, ten)
	}
	if one <= HTPreamble {
		t.Error("A-MPDU shorter than its preamble")
	}
}

func TestControlDurations(t *testing.T) {
	ba := BlockAckDuration()
	if ba < 24*sim.Microsecond || ba > 40*sim.Microsecond {
		t.Errorf("BlockAckDuration = %v", ba)
	}
	if AckDuration() >= ba {
		t.Error("legacy ACK should be shorter than Block ACK")
	}
	txop := TXOPDuration(7, []int{1500})
	if txop != AMPDUDuration(7, []int{1500})+SIFS+ba {
		t.Error("TXOP arithmetic wrong")
	}
}

func TestEffectiveThroughput(t *testing.T) {
	// Aggregated MCS7 goodput should approach but not exceed the PHY rate.
	var payloads []int
	for i := 0; i < 20; i++ {
		payloads = append(payloads, 1500)
	}
	tp := EffectiveThroughputMbps(7, payloads)
	if tp < 45 || tp >= 72.2 {
		t.Errorf("aggregated MCS7 goodput = %v Mb/s", tp)
	}
	// A single small frame is dominated by overhead.
	small := EffectiveThroughputMbps(7, []int{100})
	if small > 10 {
		t.Errorf("single 100B frame goodput = %v Mb/s", small)
	}
	if EffectiveThroughputMbps(7, nil) != 0 {
		t.Error("empty payload throughput should be 0")
	}
}
