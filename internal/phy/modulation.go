// Package phy models the 802.11n physical layer used by the testbed: HT20
// single-spatial-stream MCS 0–7 (the splitter-combined parabolic antenna
// yields one stream, §4.2), AWGN bit-error-rate curves per modulation, a
// packet-error model driven by Effective SNR, and the airtime arithmetic for
// aggregate frames and (block) acknowledgements.
package phy

import (
	"fmt"
	"math"
)

// Modulation is an 802.11 constellation.
type Modulation int

// The constellations used by MCS 0–7.
const (
	BPSK Modulation = iota
	QPSK
	QAM16
	QAM64
)

// String implements fmt.Stringer.
func (m Modulation) String() string {
	switch m {
	case BPSK:
		return "BPSK"
	case QPSK:
		return "QPSK"
	case QAM16:
		return "16-QAM"
	case QAM64:
		return "64-QAM"
	default:
		return fmt.Sprintf("Modulation(%d)", int(m))
	}
}

// BitsPerSymbol returns the bits carried per subcarrier per OFDM symbol.
func (m Modulation) BitsPerSymbol() int {
	switch m {
	case BPSK:
		return 1
	case QPSK:
		return 2
	case QAM16:
		return 4
	case QAM64:
		return 6
	default:
		return 0
	}
}

// qfunc is the Gaussian tail probability Q(x).
func qfunc(x float64) float64 { return 0.5 * math.Erfc(x/math.Sqrt2) }

// BER returns the uncoded bit error rate of the modulation at the given
// per-symbol SNR (linear). These are the standard AWGN approximations used
// by Halperin et al.'s Effective SNR construction, which the paper's AP
// selection metric is built on. Served from the per-modulation dB-domain
// lookup table (see bertab.go); per-frame code that already has the SNR in
// dB should call BERdB and skip the conversion round-trip entirely.
func (m Modulation) BER(snrLinear float64) float64 {
	if snrLinear <= 0 {
		return 0.5
	}
	if m < BPSK || m > QAM64 {
		return 0.5
	}
	return m.BERdB(linearToDB(snrLinear))
}

// berClosed is the closed-form AWGN bit error rate — the golden reference
// the lookup tables are built from, and the fallback outside their domain.
func (m Modulation) berClosed(snrLinear float64) float64 {
	if snrLinear <= 0 {
		return 0.5
	}
	var b float64
	switch m {
	case BPSK:
		b = qfunc(math.Sqrt(2 * snrLinear))
	case QPSK:
		b = qfunc(math.Sqrt(snrLinear))
	case QAM16:
		b = 0.75 * qfunc(math.Sqrt(snrLinear/5))
	case QAM64:
		b = (7.0 / 12.0) * qfunc(math.Sqrt(snrLinear/21))
	default:
		return 0.5
	}
	if b > 0.5 {
		b = 0.5
	}
	return b
}

// minBER floors BER values so that the inverse stays finite: beyond this the
// channel is error-free for any practical frame count.
const minBER = 1e-15

// InvBER returns the per-symbol SNR (linear) at which the modulation attains
// the given bit error rate — the inverse of BER, served by interpolated
// table search (bisection only in the near-saturation fallback sliver).
// BERs at or below minBER map to the SNR achieving minBER (an effective
// ceiling); BERs at or above the modulation's zero-SNR saturation value map
// to 0.
func (m Modulation) InvBER(ber float64) float64 {
	db := m.InvBERdB(ber)
	if math.IsInf(db, -1) {
		return 0
	}
	return dbToLinear(db)
}

// InvBERdB is InvBER in the dB domain: the per-symbol SNR (dB) at which the
// modulation attains ber, or −Inf for BERs at or above the zero-SNR
// saturation value. ESNR code composes this directly, skipping the
// linear↔dB round-trip.
func (m Modulation) InvBERdB(ber float64) float64 {
	if m < BPSK || m > QAM64 {
		return linearToDB(m.invBERBisect(math.Max(ber, minBER)))
	}
	tab := &berTables[m]
	if ber >= tab.satur {
		return math.Inf(-1)
	}
	if ber < minBER {
		ber = minBER
	}
	if ber > tab.invCut {
		// Nearly saturated: the dB-domain inverse is ill-conditioned here,
		// so use the closed-form bisection (a −60 dB-or-worse link; cold).
		return linearToDB(m.invBERBisect(ber))
	}
	return m.invBERdB(ber)
}
