// Package phy models the 802.11n physical layer used by the testbed: HT20
// single-spatial-stream MCS 0–7 (the splitter-combined parabolic antenna
// yields one stream, §4.2), AWGN bit-error-rate curves per modulation, a
// packet-error model driven by Effective SNR, and the airtime arithmetic for
// aggregate frames and (block) acknowledgements.
package phy

import (
	"fmt"
	"math"
)

// Modulation is an 802.11 constellation.
type Modulation int

// The constellations used by MCS 0–7.
const (
	BPSK Modulation = iota
	QPSK
	QAM16
	QAM64
)

// String implements fmt.Stringer.
func (m Modulation) String() string {
	switch m {
	case BPSK:
		return "BPSK"
	case QPSK:
		return "QPSK"
	case QAM16:
		return "16-QAM"
	case QAM64:
		return "64-QAM"
	default:
		return fmt.Sprintf("Modulation(%d)", int(m))
	}
}

// BitsPerSymbol returns the bits carried per subcarrier per OFDM symbol.
func (m Modulation) BitsPerSymbol() int {
	switch m {
	case BPSK:
		return 1
	case QPSK:
		return 2
	case QAM16:
		return 4
	case QAM64:
		return 6
	default:
		return 0
	}
}

// qfunc is the Gaussian tail probability Q(x).
func qfunc(x float64) float64 { return 0.5 * math.Erfc(x/math.Sqrt2) }

// BER returns the uncoded bit error rate of the modulation at the given
// per-symbol SNR (linear). These are the standard AWGN approximations used
// by Halperin et al.'s Effective SNR construction, which the paper's AP
// selection metric is built on.
func (m Modulation) BER(snrLinear float64) float64 {
	if snrLinear <= 0 {
		return 0.5
	}
	var b float64
	switch m {
	case BPSK:
		b = qfunc(math.Sqrt(2 * snrLinear))
	case QPSK:
		b = qfunc(math.Sqrt(snrLinear))
	case QAM16:
		b = 0.75 * qfunc(math.Sqrt(snrLinear/5))
	case QAM64:
		b = (7.0 / 12.0) * qfunc(math.Sqrt(snrLinear/21))
	default:
		return 0.5
	}
	if b > 0.5 {
		b = 0.5
	}
	return b
}

// minBER floors BER values so that the inverse stays finite: beyond this the
// channel is error-free for any practical frame count.
const minBER = 1e-15

// InvBER returns the per-symbol SNR (linear) at which the modulation attains
// the given bit error rate — the inverse of BER, found by bisection. BERs at
// or below minBER map to the SNR achieving minBER (an effective ceiling);
// BERs at or above the modulation's zero-SNR saturation value map to 0.
func (m Modulation) InvBER(ber float64) float64 {
	if ber >= m.BER(1e-9) {
		return 0
	}
	if ber < minBER {
		ber = minBER
	}
	lo, hi := 1e-9, 1e9 // linear SNR bracket: −90 dB … +90 dB
	for i := 0; i < 200; i++ {
		mid := math.Sqrt(lo * hi) // geometric bisection: BER is log-linear-ish in dB
		if m.BER(mid) > ber {
			lo = mid
		} else {
			hi = mid
		}
		if hi/lo < 1+1e-12 {
			break
		}
	}
	return math.Sqrt(lo * hi)
}
