package phy

import "math"

// BER/InvBER lookup tables.
//
// Halperin-style Effective SNR evaluates one BER per subcarrier per CSI
// report and then inverts the BER curve once per report; with the closed
// forms that is 56 erfc calls plus a 200-iteration bisection (each step
// another erfc) on every uplink frame at every overhearing AP. The AWGN
// curves are smooth and monotone in the dB domain, so both directions are
// served from one precomputed table per modulation:
//
//   - forward: BER sampled on a uniform dB grid (berTabMinDB..berTabMaxDB,
//     berTabStep apart), linearly interpolated. The curve's log-curvature
//     over one 1/64 dB step bounds the relative error at ~2e-3 deep in the
//     tail (BER ≈ 1e-15) and far tighter at operating BERs; TestBERTable*
//     asserts the documented tolerance.
//   - inverse: a binary search over the same monotone grid followed by the
//     matching linear interpolation in dB, so InvBER is consistent with the
//     interpolated forward curve by construction.
//
// Outside the grid, and in the near-saturation sliver where the inverse
// becomes ill-conditioned, the closed forms are used directly — those
// regimes are links far too dead to matter per-sample.
const (
	berTabMinDB = -60.0
	berTabMaxDB = 60.0
	berTabStep  = 1.0 / 64
)

var berTabScale = 1 / berTabStep

// berTable holds the per-modulation dB-domain samples of the closed-form
// BER curve, plus its endpoints' saturation bookkeeping.
type berTable struct {
	ber []float64 // closed-form BER at berTabMinDB + i·berTabStep
	// satur is the zero-SNR saturation BER (the closed form at 1e-9 linear,
	// matching InvBER's historical "unreachable" threshold).
	satur float64
	// invCut is the BER above which the inverse falls back to bisection:
	// nearly saturated means linear SNR ≈ 0, where the dB-domain inverse
	// slope blows up. tab.ber[0] (the −60 dB sample) sits ~4e-5 below
	// saturation, so the fallback region is vanishingly cold.
	invCut float64
}

var berTables [QAM64 + 1]berTable

func init() {
	n := int(math.Round((berTabMaxDB-berTabMinDB)*berTabScale)) + 1
	for m := BPSK; m <= QAM64; m++ {
		tab := berTable{ber: make([]float64, n)}
		for i := 0; i < n; i++ {
			db := berTabMinDB + float64(i)*berTabStep
			tab.ber[i] = m.berClosed(dbToLinear(db))
		}
		tab.satur = m.berClosed(1e-9)
		tab.invCut = tab.ber[0]
		berTables[m] = tab
	}
}

// dbToLinear mirrors radio.DBToLinear without importing radio (phy sits
// below radio in the package graph).
func dbToLinear(db float64) float64 { return math.Pow(10, db/10) }

// linearToDB mirrors radio.LinearToDB.
func linearToDB(lin float64) float64 {
	if lin <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(lin)
}

// BERdB returns the modulation's uncoded bit error rate at the given
// per-symbol SNR in dB — the table-driven fast path the per-subcarrier ESNR
// loop runs on (no pow/erfc in the hot range).
func (m Modulation) BERdB(snrDB float64) float64 {
	if m < BPSK || m > QAM64 {
		return 0.5
	}
	tab := &berTables[m]
	if snrDB < berTabMinDB {
		return m.berClosed(dbToLinear(snrDB))
	}
	if snrDB >= berTabMaxDB {
		// Beyond the grid every curve has underflowed to 0 in float64.
		return 0
	}
	pos := (snrDB - berTabMinDB) * berTabScale
	i := int(pos)
	t := pos - float64(i)
	a := tab.ber[i]
	return a + (tab.ber[i+1]-a)*t
}

// invBERdB returns the SNR in dB at which the interpolated table attains
// ber, or NaN when the caller must fall back to the closed form. ber must
// be in (0, invCut].
func (m Modulation) invBERdB(ber float64) float64 {
	tab := &berTables[m]
	// Binary search the monotone non-increasing grid for the bracketing
	// pair tab.ber[i] ≥ ber ≥ tab.ber[i+1].
	lo, hi := 0, len(tab.ber)-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if tab.ber[mid] >= ber {
			lo = mid
		} else {
			hi = mid
		}
	}
	a, b := tab.ber[lo], tab.ber[hi]
	var t float64
	if a > b {
		t = (a - ber) / (a - b)
	}
	return berTabMinDB + (float64(lo)+t)*berTabStep
}

// invBERBisect is the original closed-form inversion by geometric bisection,
// kept as the golden reference and as the cold-path fallback near
// saturation.
func (m Modulation) invBERBisect(ber float64) float64 {
	lo, hi := 1e-9, 1e9 // linear SNR bracket: −90 dB … +90 dB
	for i := 0; i < 200; i++ {
		mid := math.Sqrt(lo * hi) // geometric bisection: BER is log-linear-ish in dB
		if m.berClosed(mid) > ber {
			lo = mid
		} else {
			hi = mid
		}
		if hi/lo < 1+1e-12 {
			break
		}
	}
	return math.Sqrt(lo * hi)
}
