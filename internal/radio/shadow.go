package radio

import (
	"math"
	"math/rand/v2"
)

// Shadower produces spatially-correlated log-normal shadowing for one link:
// the slow, meters-scale gain variation caused by buildings, poles, and
// parked cars that a vehicle drives through. It is the second-scale fading
// visible in the paper's Fig. 2 on top of the ms-scale multipath component.
//
// The process is a sum of spatial sinusoids over the mobile endpoint's
// along-road position, so it is a pure function of position (hence of time)
// and correlates over roughly CorrLength meters, after Gudmundson's model.
type Shadower struct {
	sigma float64
	waves []shadowWave
	norm  float64
}

type shadowWave struct {
	k     float64 // spatial angular frequency, rad/m
	phase float64
	dirX  float64 // projection direction (cos of wave heading)
	dirY  float64
}

// NewShadower builds a shadowing process with standard deviation sigmaDB
// and correlation length corrM meters.
func NewShadower(sigmaDB, corrM float64, rnd *rand.Rand) *Shadower {
	const nWaves = 8
	s := &Shadower{sigma: sigmaDB, norm: math.Sqrt(2.0 / nWaves)}
	for i := 0; i < nWaves; i++ {
		// Wavelengths spread around the correlation length give an
		// approximately exponential autocorrelation.
		wl := corrM * (0.5 + 3*rnd.Float64())
		theta := rnd.Float64() * 2 * math.Pi
		s.waves = append(s.waves, shadowWave{
			k:     2 * math.Pi / wl,
			phase: rnd.Float64() * 2 * math.Pi,
			dirX:  math.Cos(theta),
			dirY:  math.Sin(theta),
		})
	}
	return s
}

// GainDB returns the shadowing gain (zero-mean, in dB) at position (x, y).
func (s *Shadower) GainDB(x, y float64) float64 {
	if s == nil {
		return 0
	}
	var sum float64
	for _, w := range s.waves {
		sum += math.Cos(w.k*(x*w.dirX+y*w.dirY) + w.phase)
	}
	return s.sigma * s.norm * sum
}
