package radio

import (
	"math"
	"math/cmplx"
	"math/rand/v2"
	"testing"
)

// gainsDBDirect re-evaluates the pre-optimization per-sample formula — a
// fresh tap-gain slice and one cmplx.Exp per (tap × subcarrier) — as the
// golden reference for the twiddle-table path.
func gainsDBDirect(f *Fader, tSeconds, spacingHz float64, dst []float64) {
	tapGains := f.TapGains(tSeconds)
	n := len(dst)
	mid := float64(n-1) / 2
	for m := 0; m < n; m++ {
		freq := (float64(m) - mid) * spacingHz
		var h complex128
		for i := range tapGains {
			ph := -2 * math.Pi * freq * f.taps[i].delayNS * 1e-9
			h += tapGains[i] * cmplx.Exp(complex(0, ph))
		}
		p := real(h)*real(h) + imag(h)*imag(h)
		dst[m] = LinearToDB(p)
	}
}

// The twiddle-table GainsDB must reproduce the direct cmplx.Exp evaluation
// bit-for-bit: same Sincos arguments, same accumulation order.
func TestGainsDBTwiddleExact(t *testing.T) {
	rnd := rand.New(rand.NewPCG(3, 7))
	f := NewFader(nil, 8, 22, 1.5, rnd)
	got := make([]float64, 56)
	want := make([]float64, 56)
	for i := 0; i < 500; i++ {
		ts := float64(i) * 137e-6
		f.GainsDB(ts, 312.5e3, got)
		gainsDBDirect(f, ts, 312.5e3, want)
		for m := range got {
			if got[m] != want[m] {
				t.Fatalf("t=%v subcarrier %d: table %v != direct %v", ts, m, got[m], want[m])
			}
		}
	}
}

// Switching subcarrier geometry mid-stream must transparently rebuild the
// twiddle table.
func TestGainsDBGeometryChange(t *testing.T) {
	rnd := rand.New(rand.NewPCG(5, 9))
	f := NewFader(nil, 8, 22, 1.5, rnd)
	for _, n := range []int{56, 64, 56, 114} {
		got := make([]float64, n)
		want := make([]float64, n)
		f.GainsDB(0.042, 312.5e3, got)
		gainsDBDirect(f, 0.042, 312.5e3, want)
		for m := range got {
			if got[m] != want[m] {
				t.Fatalf("n=%d subcarrier %d: table %v != direct %v", n, m, got[m], want[m])
			}
		}
	}
}

// FlatGainDB must match the power sum over freshly computed tap gains.
func TestFlatGainDBScratchExact(t *testing.T) {
	rnd := rand.New(rand.NewPCG(11, 13))
	f := NewFader(nil, 8, 22, 1.5, rnd)
	for i := 0; i < 500; i++ {
		ts := float64(i) * 211e-6
		got := f.FlatGainDB(ts)
		var p float64
		for _, g := range f.TapGains(ts) {
			p += real(g)*real(g) + imag(g)*imag(g)
		}
		if want := LinearToDB(p); got != want {
			t.Fatalf("t=%v: FlatGainDB %v != direct %v", ts, got, want)
		}
	}
}

// The steady-state fading sample path must not allocate.
func TestFadingZeroAlloc(t *testing.T) {
	rnd := rand.New(rand.NewPCG(17, 19))
	f := NewFader(nil, 8, 22, 1.5, rnd)
	f.Prime(56, 312.5e3)
	dst := make([]float64, 56)
	i := 0
	if avg := testing.AllocsPerRun(200, func() {
		i++
		f.GainsDB(float64(i)*1e-4, 312.5e3, dst)
	}); avg != 0 {
		t.Errorf("GainsDB allocates %.1f times per sample, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() {
		i++
		_ = f.FlatGainDB(float64(i) * 1e-4)
	}); avg != 0 {
		t.Errorf("FlatGainDB allocates %.1f times per sample, want 0", avg)
	}
}
