package radio

import (
	"math"
	"math/rand/v2"
)

// Tap is one path of a tapped-delay-line multipath profile.
type Tap struct {
	DelayNS float64 // excess delay, nanoseconds
	PowerDB float64 // relative power, dB (normalized internally)
}

// DefaultTaps is a 4-tap exponential power-delay profile with an RMS delay
// spread of roughly 70 ns. The paper notes (§4) that WGTT's small cells keep
// the delay spread indoor-like, so the standard Wi-Fi cyclic prefix
// suffices; this profile matches that regime while still being frequency-
// selective enough across 20 MHz for ESNR to out-predict plain RSSI.
func DefaultTaps() []Tap {
	return []Tap{
		{DelayNS: 0, PowerDB: 0},
		{DelayNS: 50, PowerDB: -3},
		{DelayNS: 120, PowerDB: -7},
		{DelayNS: 250, PowerDB: -12},
	}
}

// Fader generates the time-varying, frequency-selective small-scale fading
// of one AP↔client link. Each tap's complex gain is a Jakes-style sum of
// sinusoids whose Doppler spread is set by the client's speed
// (f_d = v/λ; ~22 Hz at 25 mph and 2.4 GHz ⇒ coherence time ≈ 0.423/f_d ≈
// 19 ms for deep decorrelation, with noticeable decorrelation after 2–3 ms,
// matching the paper's §1 channel-coherence discussion).
//
// The process is a pure function of time — sampling is stateless and may
// happen out of order — and is normalized to unit average power so it
// composes additively (in dB) with path loss and antenna gain.
//
// Sampling reuses internal scratch storage and a cached per-subcarrier
// twiddle table, so a Fader is NOT safe for concurrent use. Every fader
// belongs to exactly one simulation cell, and each cell runs on one
// goroutine (DESIGN.md §5/§8), so this needs no locking.
type Fader struct {
	taps  []fadeTap
	norm  float64 // 1/sqrt(total linear tap power · oscillators)
	waveN int

	// scratch holds per-tap gains between tapGainsInto and the subcarrier
	// combine, avoiding a per-sample allocation.
	scratch []complex128
	// twiddle caches exp(−j 2π f_m τ_i) for subcarrier m and tap i, laid
	// out row-major by subcarrier: twiddle[m*len(taps)+i]. Tap delays and
	// subcarrier offsets are fixed per link, so this is computed once (per
	// (count, spacing), which in practice never changes for a fader).
	twiddle     []complex128
	twidN       int
	twidSpacing float64
}

type fadeTap struct {
	amp     float64 // sqrt of normalized linear tap power
	delayNS float64
	// Oscillator parameters: phase offsets and angular Doppler rates.
	phase []float64
	omega []float64 // rad/s
}

// NewFader builds a fader for one link.
//
//	taps        multipath profile (nil ⇒ DefaultTaps)
//	oscillators sinusoids per tap (≥ 4; 8 is a good fidelity/cost balance)
//	dopplerHz   maximum Doppler frequency f_d = v/λ (clamped to minDoppler)
//	rnd         the link's dedicated random stream
func NewFader(taps []Tap, oscillators int, dopplerHz, minDopplerHz float64, rnd *rand.Rand) *Fader {
	if taps == nil {
		taps = DefaultTaps()
	}
	if oscillators < 4 {
		oscillators = 4
	}
	if dopplerHz < minDopplerHz {
		dopplerHz = minDopplerHz
	}
	var total float64
	for _, tp := range taps {
		total += DBToLinear(tp.PowerDB)
	}
	f := &Fader{waveN: oscillators}
	for _, tp := range taps {
		ft := fadeTap{
			amp:     math.Sqrt(DBToLinear(tp.PowerDB) / total),
			delayNS: tp.DelayNS,
			phase:   make([]float64, oscillators),
			omega:   make([]float64, oscillators),
		}
		for n := 0; n < oscillators; n++ {
			// Arrival angles uniform on the circle give the classic Jakes
			// Doppler spectrum; random initial phases decorrelate taps.
			alpha := rnd.Float64() * 2 * math.Pi
			ft.phase[n] = rnd.Float64() * 2 * math.Pi
			ft.omega[n] = 2 * math.Pi * dopplerHz * math.Cos(alpha)
		}
		f.taps = append(f.taps, ft)
	}
	f.norm = 1 / math.Sqrt(float64(oscillators))
	return f
}

// Prime precomputes the twiddle table and scratch storage for the given
// subcarrier count and spacing, so even the first GainsDB sample is
// allocation-free. Called at link-assembly time; sampling with a different
// geometry later just rebuilds the table.
func (f *Fader) Prime(subcarriers int, spacingHz float64) {
	if subcarriers <= 0 {
		return
	}
	f.buildTwiddle(subcarriers, spacingHz)
	f.tapScratch()
}

// TapGains returns the instantaneous complex gain of each tap at time
// tSeconds.
func (f *Fader) TapGains(tSeconds float64) []complex128 {
	out := make([]complex128, len(f.taps))
	f.tapGainsInto(tSeconds, out)
	return out
}

// tapScratch returns the reusable per-tap gain buffer.
func (f *Fader) tapScratch() []complex128 {
	if cap(f.scratch) < len(f.taps) {
		f.scratch = make([]complex128, len(f.taps))
	}
	return f.scratch[:len(f.taps)]
}

func (f *Fader) tapGainsInto(tSeconds float64, out []complex128) {
	for i := range f.taps {
		tp := &f.taps[i]
		var re, im float64
		for n := 0; n < f.waveN; n++ {
			ph := tp.omega[n]*tSeconds + tp.phase[n]
			s, c := math.Sincos(ph)
			re += c
			im += s
		}
		out[i] = complex(re, im) * complex(tp.amp*f.norm, 0)
	}
}

// GainsDB fills dst with the fading power gain, in dB, on each of len(dst)
// subcarriers at time tSeconds. Subcarrier m (0-based) sits at frequency
// offset (m − (len−1)/2) · spacingHz from the channel center; the DC
// subcarrier is unused in 802.11 so the half-spacing asymmetry is harmless.
func (f *Fader) GainsDB(tSeconds float64, spacingHz float64, dst []float64) {
	n := len(dst)
	if f.twidN != n || f.twidSpacing != spacingHz {
		f.buildTwiddle(n, spacingHz)
	}
	tapGains := f.tapScratch()
	f.tapGainsInto(tSeconds, tapGains)
	nt := len(f.taps)
	for m := 0; m < n; m++ {
		var h complex128
		row := f.twiddle[m*nt : (m+1)*nt]
		for i, g := range tapGains {
			h += g * row[i]
		}
		p := real(h)*real(h) + imag(h)*imag(h)
		dst[m] = LinearToDB(p)
	}
}

// buildTwiddle precomputes the per-(subcarrier, tap) phase rotations
// exp(−j 2π f_m τ_i). The entries are bit-identical to what cmplx.Exp
// produced in the direct evaluation (e^0 · (cos, sin) via math.Sincos), so
// switching to the table changes no sampled value.
func (f *Fader) buildTwiddle(n int, spacingHz float64) {
	nt := len(f.taps)
	if cap(f.twiddle) < n*nt {
		f.twiddle = make([]complex128, n*nt)
	}
	f.twiddle = f.twiddle[:n*nt]
	mid := float64(n-1) / 2
	for m := 0; m < n; m++ {
		freq := (float64(m) - mid) * spacingHz
		for i := 0; i < nt; i++ {
			// exp(−j 2π f τ) phase rotation per tap.
			ph := -2 * math.Pi * freq * f.taps[i].delayNS * 1e-9
			s, c := math.Sincos(ph)
			f.twiddle[m*nt+i] = complex(c, s)
		}
	}
	f.twidN = n
	f.twidSpacing = spacingHz
}

// FlatGainDB returns the wideband (frequency-flat) fading power gain in dB
// at time tSeconds — the power sum over taps, as a broadband receiver
// measuring RSSI would see it.
func (f *Fader) FlatGainDB(tSeconds float64) float64 {
	tapGains := f.tapScratch()
	f.tapGainsInto(tSeconds, tapGains)
	var p float64
	for _, g := range tapGains {
		p += real(g)*real(g) + imag(g)*imag(g)
	}
	return LinearToDB(p)
}

// DopplerHz computes the maximum Doppler shift for a client speed (m/s) at
// carrier frequency freqHz.
func DopplerHz(speedMS, freqHz float64) float64 {
	return speedMS / Wavelength(freqHz)
}

// CoherenceTimeSeconds returns the classic Clarke-model channel coherence
// time 0.423/f_d for a Doppler spread of dopplerHz.
func CoherenceTimeSeconds(dopplerHz float64) float64 {
	if dopplerHz <= 0 {
		return math.Inf(1)
	}
	return 0.423 / dopplerHz
}
