package radio

import (
	"fmt"
	"math"
	"sort"

	"wgtt/internal/mobility"
	"wgtt/internal/sim"
)

// Params configures the channel model. The defaults describe the paper's
// testbed: channel 11 at 2.4 GHz, 20 MHz HT channel with 56 used OFDM
// subcarriers (what the Atheros CSI tool reports), directional roadside APs
// behind an office window.
type Params struct {
	FrequencyHz         float64 // carrier frequency (channel 11: 2.462 GHz)
	BandwidthHz         float64 // channel bandwidth for the noise floor
	NoiseFigureDB       float64 // receiver noise figure
	PathLossExponent    float64 // log-distance exponent (urban street canyon)
	RefDistanceM        float64 // path-loss reference distance
	RefLossDB           float64 // loss at RefDistanceM (0 ⇒ free-space value)
	Subcarriers         int     // CSI-visible subcarriers (56 for HT20)
	SubcarrierSpacingHz float64 // 312.5 kHz in 802.11 OFDM
	Taps                []Tap   // multipath profile (nil ⇒ DefaultTaps)
	Oscillators         int     // Jakes sinusoids per tap
	MinDopplerHz        float64 // residual environmental Doppler when parked
	// ShadowSigmaDB is the log-normal shadowing standard deviation; the
	// street-canyon obstructions it models are what makes one AP's link
	// sag for seconds while a neighbour's stays strong (Fig. 2, top).
	ShadowSigmaDB float64
	// ShadowCorrM is the shadowing correlation length in meters.
	ShadowCorrM float64
	// NoFading disables both small-scale fading and shadowing, leaving
	// deterministic links from geometry alone — for controlled tests and
	// ablations.
	NoFading bool
	// Obstruction, when non-nil, adds a deterministic geometry-dependent
	// blockage loss (dB) between two positions — e.g. the street-canyon
	// corner diffraction of an urban map, where a link that bends around a
	// building corner is tens of dB down on a same-street link. It must be
	// symmetric in its arguments (channel reciprocity) and pure. nil keeps
	// the open-corridor model byte-identical.
	Obstruction func(a, b mobility.Point) float64
}

// DefaultParams returns the testbed channel parameters.
func DefaultParams() Params {
	return Params{
		FrequencyHz:         2.462e9,
		BandwidthHz:         20e6,
		NoiseFigureDB:       6,
		PathLossExponent:    2.7,
		RefDistanceM:        1,
		Subcarriers:         56,
		SubcarrierSpacingHz: 312.5e3,
		Oscillators:         8,
		MinDopplerHz:        1.5,
		ShadowSigmaDB:       4,
		ShadowCorrM:         4,
	}
}

func (p Params) refLossDB() float64 {
	if p.RefLossDB != 0 {
		return p.RefLossDB
	}
	return FreeSpacePathLossDB(p.RefDistanceM, p.FrequencyHz)
}

func (p Params) noiseFloorDBm() float64 {
	return ThermalNoiseDBm(p.BandwidthHz, p.NoiseFigureDB)
}

// Channel owns every radio endpoint and hands out (and caches) pairwise
// links, each with its own deterministic fading process seeded from the
// scenario RNG by the endpoint names.
type Channel struct {
	params    Params
	rng       *sim.RNG
	endpoints map[string]*Endpoint
	links     map[[2]string]*Link
	disturbs  []disturber
}

type disturber struct {
	trace mobility.Trace
	speed float64
}

// NewChannel creates a channel with the given parameters and random source.
func NewChannel(params Params, rng *sim.RNG) *Channel {
	if params.Subcarriers <= 0 {
		params.Subcarriers = 56
	}
	if params.Taps == nil {
		params.Taps = DefaultTaps()
	}
	return &Channel{
		params:    params,
		rng:       rng,
		endpoints: make(map[string]*Endpoint),
		links:     make(map[[2]string]*Link),
	}
}

// Params returns the channel parameters.
func (c *Channel) Params() Params { return c.params }

// AddEndpoint registers a radio node. Name must be unique.
func (c *Channel) AddEndpoint(e *Endpoint) error {
	if e.Name == "" {
		return fmt.Errorf("radio: endpoint needs a name")
	}
	if _, dup := c.endpoints[e.Name]; dup {
		return fmt.Errorf("radio: duplicate endpoint %q", e.Name)
	}
	if e.Trace == nil {
		return fmt.Errorf("radio: endpoint %q has no trace", e.Name)
	}
	if e.Antenna == nil {
		e.Antenna = Isotropic{}
	}
	c.endpoints[e.Name] = e
	return nil
}

// Endpoint returns a registered endpoint, or nil.
func (c *Channel) Endpoint(name string) *Endpoint { return c.endpoints[name] }

// Endpoints returns all endpoint names in sorted order.
func (c *Channel) Endpoints() []string {
	names := make([]string, 0, len(c.endpoints))
	for n := range c.endpoints {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// AddDisturber registers a moving scatterer (another vehicle) that is not a
// radio endpoint of interest but perturbs nearby links — the paper's §5.2.2
// observation that multiple vehicles introduce dynamic multipath and higher
// loss. Each (link, disturber) pair gets an independent slow fading process;
// when the disturber is near the link's client and that process is in a deep
// fade, the link sees extra attenuation.
func (c *Channel) AddDisturber(trace mobility.Trace, speedHintMS float64) {
	c.disturbs = append(c.disturbs, disturber{trace: trace, speed: speedHintMS})
	// Invalidate cached links so they pick up the new disturber.
	c.links = make(map[[2]string]*Link)
}

// Link returns (creating on first use) the channel between two endpoints.
// The link is symmetric: Link(a, b) and Link(b, a) are the same object.
func (c *Channel) Link(a, b string) (*Link, error) {
	ea, ok := c.endpoints[a]
	if !ok {
		return nil, fmt.Errorf("radio: unknown endpoint %q", a)
	}
	eb, ok := c.endpoints[b]
	if !ok {
		return nil, fmt.Errorf("radio: unknown endpoint %q", b)
	}
	if a == b {
		return nil, fmt.Errorf("radio: self-link %q", a)
	}
	key := [2]string{a, b}
	if a > b {
		key = [2]string{b, a}
	}
	if l, ok := c.links[key]; ok {
		return l, nil
	}
	doppler := DopplerHz(math.Max(ea.SpeedHintMS, eb.SpeedHintMS), c.params.FrequencyHz)
	fader := NewFader(c.params.Taps, c.params.Oscillators,
		doppler, c.params.MinDopplerHz, c.rng.Stream("fading/"+key[0]+"/"+key[1]))
	fader.Prime(c.params.Subcarriers, c.params.SubcarrierSpacingHz)
	l := &Link{A: ea, B: eb, fader: fader, params: c.params}
	if c.params.ShadowSigmaDB > 0 && !c.params.NoFading {
		l.shadow = NewShadower(c.params.ShadowSigmaDB, math.Max(c.params.ShadowCorrM, 0.5),
			c.rng.Stream("shadow/"+key[0]+"/"+key[1]))
		l.mobile = ea
		if eb.SpeedHintMS > ea.SpeedHintMS {
			l.mobile = eb
		}
	}
	l.disturb = c.buildDisturb(key, ea, eb)
	c.links[key] = l
	return l, nil
}

// MustLink is Link but panics on error; for assembly code with known names.
func (c *Channel) MustLink(a, b string) *Link {
	l, err := c.Link(a, b)
	if err != nil {
		panic(err)
	}
	return l
}

// buildDisturb composes the per-disturber obstruction processes for a link.
// The client side of the link is whichever endpoint moves (falls back to B).
func (c *Channel) buildDisturb(key [2]string, ea, eb *Endpoint) func(sim.Time) float64 {
	if len(c.disturbs) == 0 {
		return nil
	}
	mobile := ea
	if eb.SpeedHintMS > ea.SpeedHintMS {
		mobile = eb
	}
	type proc struct {
		trace mobility.Trace
		fader *Fader
	}
	procs := make([]proc, 0, len(c.disturbs))
	for i, d := range c.disturbs {
		// A slow, flat process: the disturber's scattering channel. Doppler
		// scaled down — the geometry changes slower than the carrier phase.
		dop := DopplerHz(d.speed, c.params.FrequencyHz) * 0.25
		f := NewFader([]Tap{{DelayNS: 0, PowerDB: 0}}, c.params.Oscillators, dop,
			c.params.MinDopplerHz, c.rng.Stream(fmt.Sprintf("disturb/%s/%s/%d", key[0], key[1], i)))
		procs = append(procs, proc{trace: d.trace, fader: f})
	}
	const nearM, farM = 5.0, 25.0
	return func(t sim.Time) float64 {
		var loss float64
		cp := mobile.Position(t)
		for _, p := range procs {
			d := p.trace.Position(t).Distance(cp)
			if d >= farM || d < 0.01 { // 0.01: the "disturber" is this client itself
				continue
			}
			severity := 1.0
			if d > nearM {
				severity = (farM - d) / (farM - nearM)
			}
			// Extra loss only when the scattering process is in a fade:
			// occasional deep dips, small average penalty.
			if fade := p.fader.FlatGainDB(t.Seconds()); fade < 0 {
				loss += severity * -fade
			}
		}
		return loss
	}
}
