package radio

import (
	"math"
	"testing"
	"testing/quick"

	"wgtt/internal/mobility"
	"wgtt/internal/sim"
)

func TestDBConversions(t *testing.T) {
	if got := DBToLinear(10); math.Abs(got-10) > 1e-12 {
		t.Errorf("DBToLinear(10) = %v", got)
	}
	if got := LinearToDB(100); math.Abs(got-20) > 1e-12 {
		t.Errorf("LinearToDB(100) = %v", got)
	}
	if !math.IsInf(LinearToDB(0), -1) {
		t.Error("LinearToDB(0) should be -inf")
	}
	// Round trip property.
	f := func(q uint16) bool {
		db := float64(q)/100 - 300
		return math.Abs(LinearToDB(DBToLinear(db))-db) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWavelength(t *testing.T) {
	// ~12.2 cm at 2.462 GHz, the paper's "12 cm at 2.4 GHz".
	if wl := Wavelength(2.462e9); wl < 0.12 || wl > 0.125 {
		t.Errorf("wavelength = %v m", wl)
	}
}

func TestFreeSpacePathLoss(t *testing.T) {
	// Known value: FSPL at 1 m, 2.4 GHz ≈ 40.05 dB.
	if pl := FreeSpacePathLossDB(1, 2.4e9); math.Abs(pl-40.05) > 0.1 {
		t.Errorf("FSPL(1m, 2.4GHz) = %v dB", pl)
	}
	// Doubling distance adds 6.02 dB.
	d1 := FreeSpacePathLossDB(10, 2.4e9)
	d2 := FreeSpacePathLossDB(20, 2.4e9)
	if math.Abs(d2-d1-6.02) > 0.01 {
		t.Errorf("doubling distance added %v dB", d2-d1)
	}
	// Near-field clamp keeps the loss finite.
	if pl := FreeSpacePathLossDB(0, 2.4e9); math.IsInf(pl, 0) || math.IsNaN(pl) {
		t.Error("zero distance must be clamped")
	}
}

func TestThermalNoise(t *testing.T) {
	// 20 MHz, 0 dB NF: −174 + 73 = −101 dBm.
	if n := ThermalNoiseDBm(20e6, 0); math.Abs(n+100.99) > 0.05 {
		t.Errorf("noise floor = %v dBm", n)
	}
}

func TestParabolicPattern(t *testing.T) {
	a := NewLairdGD24BP()
	if g := a.GainDB(0); g != 14 {
		t.Errorf("boresight gain = %v", g)
	}
	// −3 dB at half the beamwidth.
	half := a.HalfPowerHalfWidthRad()
	if g := a.GainDB(half); math.Abs(g-11) > 0.01 {
		t.Errorf("gain at half-beamwidth = %v, want 11", g)
	}
	// Symmetric.
	if a.GainDB(0.3) != a.GainDB(-0.3) {
		t.Error("pattern not symmetric")
	}
	// Side-lobe floor at large angles.
	if g := a.GainDB(math.Pi); g != a.PeakDBi-a.SideLobeDB {
		t.Errorf("back-lobe gain = %v, want %v", g, a.PeakDBi-a.SideLobeDB)
	}
	// Monotone non-increasing with angle in [0, π].
	prev := a.GainDB(0)
	for th := 0.01; th <= math.Pi; th += 0.01 {
		g := a.GainDB(th)
		if g > prev+1e-9 {
			t.Fatalf("gain increased with angle at %v", th)
		}
		prev = g
	}
}

func TestIsotropicAndOmni(t *testing.T) {
	if (Isotropic{}).GainDB(1.2) != 0 {
		t.Error("isotropic gain != 0")
	}
	if (Omni{PeakDBi: 3}).GainDB(2.2) != 3 {
		t.Error("omni gain != 3")
	}
}

func newTestFader(doppler float64, seed uint64) *Fader {
	rng := sim.NewRNG(seed)
	return NewFader(nil, 8, doppler, 1.5, rng.Stream("test"))
}

func TestFaderUnitMeanPower(t *testing.T) {
	f := newTestFader(20, 1)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += DBToLinear(f.FlatGainDB(float64(i) * 0.003))
	}
	mean := sum / n
	if mean < 0.8 || mean > 1.25 {
		t.Errorf("mean fading power = %v, want ≈ 1", mean)
	}
}

func TestFaderTemporalCorrelation(t *testing.T) {
	// At vehicular Doppler (~22 Hz at 25 mph), gains 100 µs apart are nearly
	// identical while gains 100 ms apart decorrelate.
	f := newTestFader(22, 2)
	var closeDiff, farDiff float64
	const n = 500
	for i := 0; i < n; i++ {
		t0 := float64(i) * 0.050
		g0 := f.FlatGainDB(t0)
		closeDiff += math.Abs(f.FlatGainDB(t0+100e-6) - g0)
		farDiff += math.Abs(f.FlatGainDB(t0+0.100) - g0)
	}
	if closeDiff/n > 0.5 {
		t.Errorf("mean gain change over 100µs = %v dB, want ≈ 0", closeDiff/n)
	}
	if farDiff/n < 1.5 {
		t.Errorf("mean gain change over 100ms = %v dB, want noticeable", farDiff/n)
	}
}

func TestFaderFrequencySelectivity(t *testing.T) {
	// With a multi-tap profile, subcarriers at opposite band edges should
	// see meaningfully different gains at least some of the time.
	f := newTestFader(10, 3)
	gains := make([]float64, 56)
	var maxSpread float64
	for i := 0; i < 200; i++ {
		f.GainsDB(float64(i)*0.01, 312.5e3, gains)
		lo, hi := gains[0], gains[0]
		for _, g := range gains {
			lo = math.Min(lo, g)
			hi = math.Max(hi, g)
		}
		maxSpread = math.Max(maxSpread, hi-lo)
	}
	if maxSpread < 5 {
		t.Errorf("max subcarrier spread = %v dB; channel not frequency-selective", maxSpread)
	}
}

func TestFaderFlatProfileIsFlat(t *testing.T) {
	rng := sim.NewRNG(9)
	f := NewFader([]Tap{{DelayNS: 0, PowerDB: 0}}, 8, 10, 1.5, rng.Stream("flat"))
	gains := make([]float64, 56)
	f.GainsDB(1.0, 312.5e3, gains)
	for _, g := range gains[1:] {
		if math.Abs(g-gains[0]) > 1e-9 {
			t.Fatal("single-tap profile should be frequency-flat")
		}
	}
}

func TestFaderDeterminism(t *testing.T) {
	a := newTestFader(22, 7)
	b := newTestFader(22, 7)
	for i := 0; i < 50; i++ {
		ts := float64(i) * 0.013
		if a.FlatGainDB(ts) != b.FlatGainDB(ts) {
			t.Fatal("same seed produced different fading")
		}
	}
	// Pure function of time: out-of-order sampling is consistent.
	g1 := a.FlatGainDB(0.5)
	_ = a.FlatGainDB(2.0)
	if a.FlatGainDB(0.5) != g1 {
		t.Error("fading not a pure function of time")
	}
}

func TestDopplerAndCoherence(t *testing.T) {
	// 25 mph ≈ 11.18 m/s at 2.462 GHz ⇒ f_d ≈ 91.8 Hz? No: 11.18/0.1218 ≈ 91.8.
	fd := DopplerHz(mobility.MPH(25), 2.462e9)
	if fd < 85 || fd > 95 {
		t.Errorf("Doppler at 25 mph = %v Hz", fd)
	}
	// Coherence time at that Doppler is a few ms — the paper's ~2–3 ms.
	tc := CoherenceTimeSeconds(fd)
	if tc < 0.002 || tc > 0.008 {
		t.Errorf("coherence time = %v s, want a few ms", tc)
	}
	if !math.IsInf(CoherenceTimeSeconds(0), 1) {
		t.Error("zero Doppler should give infinite coherence")
	}
}

func testChannel(t *testing.T) *Channel {
	t.Helper()
	ch := NewChannel(DefaultParams(), sim.NewRNG(42))
	ap := &Endpoint{
		Name:         "ap1",
		Trace:        mobility.Stationary{At: mobility.Point{X: 20, Y: mobility.APSetback}},
		Antenna:      NewLairdGD24BP(),
		BoresightRad: -math.Pi / 2, // facing the road
		TxPowerDBm:   17,
		ExtraLossDB:  28,
	}
	client := &Endpoint{
		Name:        "car1",
		Trace:       mobility.DriveBy(0, 0, 15),
		TxPowerDBm:  15,
		SpeedHintMS: mobility.MPH(15),
	}
	if err := ch.AddEndpoint(ap); err != nil {
		t.Fatal(err)
	}
	if err := ch.AddEndpoint(client); err != nil {
		t.Fatal(err)
	}
	return ch
}

func TestChannelLinkBudget(t *testing.T) {
	ch := testChannel(t)
	l := ch.MustLink("ap1", "car1")
	// The car reaches X=20 (boresight) at t = 20 / 6.7056 ≈ 2.98 s.
	atBoresight := sim.FromSeconds(20 / mobility.MPH(15))
	g := l.PathGainDB(atBoresight)
	// Budget: +14 (AP ant) + 0 (client) − PL(12 m) − 28 extra.
	// PL(12m) = 40.3 + 27 log10(12) ≈ 69.5 dB ⇒ ≈ −83.5 dB.
	if g < -90 || g > -75 {
		t.Errorf("boresight path gain = %v dB", g)
	}
	// Mean downlink SNR at boresight ≈ 17 + g + 95 ≈ 28 dB (±fading).
	snr := l.MeanSNRDB(atBoresight, 17)
	if snr < 10 || snr > 45 {
		t.Errorf("boresight SNR = %v dB", snr)
	}
	// Far away (car at start, 23.3 m off-boresight), SNR is much worse.
	far := l.MeanSNRDB(0, 17)
	if far > snr-8 {
		t.Errorf("SNR off-cell (%v) not clearly below boresight (%v)", far, snr)
	}
}

func TestChannelSNRSnapshot(t *testing.T) {
	ch := testChannel(t)
	l := ch.MustLink("ap1", "car1")
	snr := l.SNRSnapshot(sim.FromSeconds(2.98), ch.Endpoint("car1"))
	if len(snr) != 56 {
		t.Fatalf("snapshot has %d subcarriers, want 56", len(snr))
	}
	// Uplink is 2 dB below downlink on average (15 vs 17 dBm).
	down := make([]float64, 56)
	l.SNRPerSubcarrierDB(sim.FromSeconds(2.98), 17, down)
	for i := range snr {
		if math.Abs((down[i]-snr[i])-2) > 1e-9 {
			t.Fatal("uplink/downlink asymmetry should be exactly the power difference")
		}
	}
}

func TestChannelLinkCachingAndSymmetry(t *testing.T) {
	ch := testChannel(t)
	l1 := ch.MustLink("ap1", "car1")
	l2 := ch.MustLink("car1", "ap1")
	if l1 != l2 {
		t.Error("links not symmetric/cached")
	}
}

func TestChannelErrors(t *testing.T) {
	ch := testChannel(t)
	if _, err := ch.Link("ap1", "nope"); err == nil {
		t.Error("unknown endpoint accepted")
	}
	if _, err := ch.Link("nope", "ap1"); err == nil {
		t.Error("unknown endpoint accepted")
	}
	if _, err := ch.Link("ap1", "ap1"); err == nil {
		t.Error("self-link accepted")
	}
	if err := ch.AddEndpoint(&Endpoint{Name: "ap1", Trace: mobility.Stationary{}}); err == nil {
		t.Error("duplicate endpoint accepted")
	}
	if err := ch.AddEndpoint(&Endpoint{Trace: mobility.Stationary{}}); err == nil {
		t.Error("unnamed endpoint accepted")
	}
	if err := ch.AddEndpoint(&Endpoint{Name: "x"}); err == nil {
		t.Error("traceless endpoint accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustLink should panic on error")
		}
	}()
	ch.MustLink("ap1", "nope")
}

func TestChannelEndpointsSorted(t *testing.T) {
	ch := testChannel(t)
	names := ch.Endpoints()
	if len(names) != 2 || names[0] != "ap1" || names[1] != "car1" {
		t.Errorf("Endpoints() = %v", names)
	}
}

func TestDisturberAddsLoss(t *testing.T) {
	params := DefaultParams()
	mkch := func(withDisturber bool) *Link {
		ch := NewChannel(params, sim.NewRNG(5))
		ap := &Endpoint{
			Name:         "ap1",
			Trace:        mobility.Stationary{At: mobility.Point{X: 20, Y: mobility.APSetback}},
			Antenna:      NewLairdGD24BP(),
			BoresightRad: -math.Pi / 2,
			TxPowerDBm:   17,
		}
		car := &Endpoint{Name: "car1", Trace: mobility.DriveBy(0, 0, 15), SpeedHintMS: mobility.MPH(15), TxPowerDBm: 15}
		_ = ch.AddEndpoint(ap)
		_ = ch.AddEndpoint(car)
		if withDisturber {
			// A second car shadowing the first at 3 m.
			ch.AddDisturber(mobility.DriveBy(-3, 0, 15), mobility.MPH(15))
		}
		return ch.MustLink("ap1", "car1")
	}
	clean := mkch(false)
	dirty := mkch(true)
	var cleanSum, dirtySum float64
	for i := 0; i < 2000; i++ {
		ts := sim.Time(i) * 5 * sim.Millisecond
		cleanSum += clean.PathGainDB(ts)
		dirtySum += dirty.PathGainDB(ts)
	}
	if dirtySum >= cleanSum {
		t.Errorf("disturber did not reduce mean path gain (%v vs %v)", dirtySum/2000, cleanSum/2000)
	}
	if dirtySum < cleanSum-2000*10 {
		t.Errorf("disturber penalty implausibly large: mean %v dB", (cleanSum-dirtySum)/2000)
	}
}

// Property: RSSI is tx power plus path gain plus flat fading; scaling tx
// power moves RSSI one-for-one.
func TestRSSILinearInTxPower(t *testing.T) {
	ch := testChannel(t)
	l := ch.MustLink("ap1", "car1")
	f := func(q uint8) bool {
		tx := float64(q)/8 - 10
		at := sim.FromSeconds(1.5)
		return math.Abs((l.RSSIdBm(at, tx)-l.RSSIdBm(at, 0))-tx) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShadowerStatistics(t *testing.T) {
	rng := sim.NewRNG(31)
	sh := NewShadower(4, 4, rng.Stream("shadow"))
	var sum, sumsq float64
	const n = 20000
	for i := 0; i < n; i++ {
		g := sh.GainDB(float64(i)*0.37, 0)
		sum += g
		sumsq += g * g
	}
	mean := sum / n
	std := math.Sqrt(sumsq/n - mean*mean)
	if math.Abs(mean) > 0.6 {
		t.Errorf("shadowing mean = %v dB, want ≈ 0", mean)
	}
	if std < 2.5 || std > 5.5 {
		t.Errorf("shadowing std = %v dB, want ≈ 4", std)
	}
}

func TestShadowerSpatialCorrelation(t *testing.T) {
	rng := sim.NewRNG(32)
	sh := NewShadower(4, 4, rng.Stream("shadow"))
	var nearDiff, farDiff float64
	const n = 2000
	for i := 0; i < n; i++ {
		x := float64(i) * 1.7
		g := sh.GainDB(x, 0)
		nearDiff += math.Abs(sh.GainDB(x+0.2, 0) - g) // well inside corr length
		farDiff += math.Abs(sh.GainDB(x+40, 0) - g)   // many corr lengths away
	}
	if nearDiff/n > 1.0 {
		t.Errorf("gain changes %v dB over 20 cm; not spatially correlated", nearDiff/n)
	}
	if farDiff/n < 2 {
		t.Errorf("gain changes only %v dB over 40 m; no decorrelation", farDiff/n)
	}
}

func TestShadowerNilSafe(t *testing.T) {
	var sh *Shadower
	if sh.GainDB(1, 2) != 0 {
		t.Error("nil shadower should be transparent")
	}
}

func TestNoFadingDisablesEverything(t *testing.T) {
	params := DefaultParams()
	params.NoFading = true
	ch := NewChannel(params, sim.NewRNG(3))
	_ = ch.AddEndpoint(&Endpoint{Name: "a", Trace: mobility.Stationary{At: mobility.Point{X: 0, Y: 12}}, TxPowerDBm: 17})
	_ = ch.AddEndpoint(&Endpoint{Name: "b", Trace: mobility.DriveBy(0, 0, 15), TxPowerDBm: 15, SpeedHintMS: mobility.MPH(15)})
	l := ch.MustLink("a", "b")
	// Two samples at the same geometry must be identical: no fading, no
	// shadowing, no randomness.
	p1 := l.PathGainDB(sim.FromSeconds(1))
	snr := make([]float64, params.Subcarriers)
	l.SNRPerSubcarrierDB(sim.FromSeconds(1), 15, snr)
	for _, v := range snr[1:] {
		if v != snr[0] {
			t.Fatal("NoFading link is not frequency-flat")
		}
	}
	if l.RSSIdBm(sim.FromSeconds(1), 15)-15 != p1 {
		t.Error("NoFading RSSI should equal tx power + path gain")
	}
}
