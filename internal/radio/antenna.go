package radio

import "math"

// Antenna models a transmit/receive antenna gain pattern in the road plane.
// Angle is measured in radians relative to the antenna's boresight; patterns
// are symmetric about boresight.
type Antenna interface {
	// GainDB returns the antenna gain, in dBi, at the given off-boresight
	// angle in radians.
	GainDB(offBoresightRad float64) float64
}

// Isotropic is a 0 dBi omnidirectional antenna, used for clients (the
// paper's laptops / phone) and for the omni small-cell variant mentioned in
// §4.2.
type Isotropic struct{}

// GainDB implements Antenna.
func (Isotropic) GainDB(float64) float64 { return 0 }

// Omni is an omnidirectional antenna with a fixed gain.
type Omni struct {
	PeakDBi float64
}

// GainDB implements Antenna.
func (o Omni) GainDB(float64) float64 { return o.PeakDBi }

// Parabolic models the testbed's Laird GD24BP-style grid parabolic: 14 dBi
// peak gain and a 21° half-power beamwidth, with a side-lobe floor. The main
// lobe follows the standard quadratic (Gaussian, in dB) approximation
//
//	G(θ) = peak − 12 (θ/θ₃dB)² dB
//
// where θ₃dB is the full half-power beamwidth, clamped at peak − SideLobeDB.
// The side lobes matter: the paper (§5.3.2) credits them with letting
// adjacent APs hear the client (and each other) well enough for monitor-mode
// overhearing while keeping link-layer ACK collisions rare.
type Parabolic struct {
	PeakDBi      float64 // boresight gain, dBi
	BeamwidthDeg float64 // full −3 dB beamwidth, degrees
	SideLobeDB   float64 // side-lobe level below peak, dB (positive number)
}

// NewLairdGD24BP returns the testbed antenna: 14 dBi, 21° beamwidth. The
// 30 dB side-lobe floor keeps each AP's usable cell a few meters wide (the
// paper's 5.2 m cells with 6–10 m overlap) while still letting adjacent
// monitor-mode APs overhear robust control frames.
func NewLairdGD24BP() Parabolic {
	return Parabolic{PeakDBi: 14, BeamwidthDeg: 21, SideLobeDB: 30}
}

// GainDB implements Antenna.
func (p Parabolic) GainDB(offBoresightRad float64) float64 {
	theta := math.Abs(offBoresightRad)
	// Fold into [0, π]: the pattern is symmetric front/back about the
	// side-lobe floor anyway.
	for theta > math.Pi {
		theta -= 2 * math.Pi
		theta = math.Abs(theta)
	}
	bwRad := p.BeamwidthDeg * math.Pi / 180
	loss := 12 * (theta / bwRad) * (theta / bwRad)
	if loss > p.SideLobeDB {
		loss = p.SideLobeDB
	}
	return p.PeakDBi - loss
}

// HalfPowerHalfWidthRad returns the off-boresight angle at which the gain is
// 3 dB below peak — i.e. half the full beamwidth, in radians.
func (p Parabolic) HalfPowerHalfWidthRad() float64 {
	return p.BeamwidthDeg / 2 * math.Pi / 180
}
