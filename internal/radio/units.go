// Package radio models the wireless channel of the WGTT testbed (§2,
// §4.2): log-distance path loss, the 21°-beamwidth parabolic AP antennas of
// the §4.2 deployment, and temporally-correlated, frequency-selective
// Rayleigh fading (a Jakes sum-of-sinusoids process over a tapped delay
// line).
//
// The model is built to reproduce the two phenomena of the paper's Fig. 2
// (§2) that define the vehicular picocell regime: second-scale fading with
// distance as a car crosses a cell, and millisecond-scale fast fading from
// constructive/destructive multipath (coherence time ≈ 2–3 ms at 2.4 GHz),
// which together flip the best-AP choice every few milliseconds.
//
// All quantities are sampled as pure functions of virtual time, so any
// component may probe the channel at any instant and out of order (the
// paper's Fig. 21 window-size emulation replays recorded ESNR traces).
package radio

import "math"

// DBToLinear converts a power ratio in dB to linear scale.
func DBToLinear(db float64) float64 { return math.Pow(10, db/10) }

// LinearToDB converts a linear power ratio to dB. Zero or negative input
// maps to -inf dB.
func LinearToDB(lin float64) float64 {
	if lin <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(lin)
}

// DBmToMilliwatts converts dBm to milliwatts.
func DBmToMilliwatts(dbm float64) float64 { return DBToLinear(dbm) }

// MilliwattsToDBm converts milliwatts to dBm.
func MilliwattsToDBm(mw float64) float64 { return LinearToDB(mw) }

// SpeedOfLight in meters per second.
const SpeedOfLight = 299792458.0

// Wavelength returns the RF wavelength in meters for a carrier frequency in
// Hz. At 2.4 GHz this is ≈ 12.5 cm — the spatial scale of the fast fading
// the paper exploits.
func Wavelength(freqHz float64) float64 { return SpeedOfLight / freqHz }

// FreeSpacePathLossDB returns the free-space path loss in dB at distance d
// meters and carrier frequency freqHz.
func FreeSpacePathLossDB(d, freqHz float64) float64 {
	if d < 0.1 {
		d = 0.1 // clamp: the model is not valid in the reactive near field
	}
	return 20 * math.Log10(4*math.Pi*d*freqHz/SpeedOfLight)
}

// ThermalNoiseDBm returns the thermal noise floor for the given bandwidth in
// Hz at 290 K plus the given receiver noise figure in dB.
func ThermalNoiseDBm(bandwidthHz, noiseFigureDB float64) float64 {
	return -174 + 10*math.Log10(bandwidthHz) + noiseFigureDB
}
