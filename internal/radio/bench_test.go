package radio

import (
	"math/rand/v2"
	"testing"
)

func benchFader() *Fader {
	rnd := rand.New(rand.NewPCG(1, 2))
	return NewFader(nil, 8, 22, 1.5, rnd)
}

// BenchmarkFaderGainsDB is the per-CSI-sample hot path: one frequency-
// selective 56-subcarrier snapshot per overhearing AP per uplink frame.
func BenchmarkFaderGainsDB(b *testing.B) {
	f := benchFader()
	dst := make([]float64, 56)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.GainsDB(float64(i)*1e-4, 312.5e3, dst)
	}
}

// BenchmarkFaderFlatGainDB is the wideband RSSI sample (baseline roaming,
// capture arbitration).
func BenchmarkFaderFlatGainDB(b *testing.B) {
	f := benchFader()
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += f.FlatGainDB(float64(i) * 1e-4)
	}
	_ = sink
}
